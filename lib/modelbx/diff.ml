(** Model differencing: compute and apply edit scripts between models.
    The minimal-edit machinery MDE tools build on; also a convenient way
    for tests to generate "nearby" models. *)

type edit =
  | Add_object of Model.obj
  | Remove_object of Model.oid
  | Set_attr of Model.oid * string * Model.value
  | Remove_attr of Model.oid * string

let pp_edit fmt = function
  | Add_object o -> Format.fprintf fmt "add #%d:%s" o.Model.id o.Model.cls
  | Remove_object id -> Format.fprintf fmt "remove #%d" id
  | Set_attr (id, n, v) ->
      Format.fprintf fmt "set #%d.%s = %s" id n (Model.value_to_string v)
  | Remove_attr (id, n) -> Format.fprintf fmt "unset #%d.%s" id n

let equal_edit e1 e2 =
  match (e1, e2) with
  | Add_object o1, Add_object o2 -> Model.equal_obj o1 o2
  | Remove_object i1, Remove_object i2 -> i1 = i2
  | Set_attr (i1, n1, v1), Set_attr (i2, n2, v2) ->
      i1 = i2 && String.equal n1 n2 && Model.equal_value v1 v2
  | Remove_attr (i1, n1), Remove_attr (i2, n2) ->
      i1 = i2 && String.equal n1 n2
  | (Add_object _ | Remove_object _ | Set_attr _ | Remove_attr _), _ -> false

(** Edit script transforming [m_from] into [m_to]: removals, then
    per-object attribute updates, then additions.  Id lookups go through
    hash indices so the script is computed in (near-)linear time. *)
let diff (m_from : Model.t) (m_to : Model.t) : edit list =
  let index m =
    let tbl = Hashtbl.create (max 16 (Model.size m)) in
    List.iter (fun (o : Model.obj) -> Hashtbl.replace tbl o.Model.id o) (Model.objects m);
    tbl
  in
  let from_index = index m_from and to_index = index m_to in
  let removals =
    List.filter_map
      (fun (o : Model.obj) ->
        if Hashtbl.mem to_index o.Model.id then None
        else Some (Remove_object o.Model.id))
      (Model.objects m_from)
  in
  let updates =
    List.concat_map
      (fun (o_to : Model.obj) ->
        match Hashtbl.find_opt from_index o_to.Model.id with
        | None -> []
        | Some o_from when String.equal o_from.Model.cls o_to.Model.cls ->
            let sets =
              List.filter_map
                (fun (n, v) ->
                  match Model.attr o_from n with
                  | Some v' when Model.equal_value v v' -> None
                  | Some _ | None -> Some (Set_attr (o_to.Model.id, n, v)))
                o_to.Model.attrs
            in
            let unsets =
              List.filter_map
                (fun (n, _) ->
                  if Option.is_none (Model.attr o_to n) then
                    Some (Remove_attr (o_to.Model.id, n))
                  else None)
                o_from.Model.attrs
            in
            sets @ unsets
        | Some _ ->
            (* class changed: replace wholesale *)
            [ Remove_object o_to.Model.id; Add_object o_to ])
      (Model.objects m_to)
  in
  let additions =
    List.filter_map
      (fun (o : Model.obj) ->
        if Hashtbl.mem from_index o.Model.id then None else Some (Add_object o))
      (Model.objects m_to)
  in
  removals @ updates @ additions

let apply_edit (m : Model.t) : edit -> Model.t = function
  | Add_object o -> Model.add m o
  | Remove_object id -> Model.remove m id
  | Set_attr (id, n, v) -> (
      match Model.find m id with
      | None -> Model.errorf "apply: no object %d" id
      | Some o -> Model.update m (Model.set_attr o n v))
  | Remove_attr (id, n) -> (
      match Model.find m id with
      | None -> Model.errorf "apply: no object %d" id
      | Some o -> Model.update m (Model.remove_attr o n))

let apply (m : Model.t) (edits : edit list) : Model.t =
  List.fold_left apply_edit m edits

(** Collapse a burst of edits before applying them — the batched commit
    path of [Esm_sync]: a coalesced script touches each surviving
    (object, attribute) once, so one sync commit does one pass of work
    however chatty the session was.

    Two conservative rules, each sound on any model where the original
    script applies without error (the equivalence
    [apply m (coalesce es) = apply m es] is property-tested in
    [test/test_modelbx.ml]):

    - an attribute write ([Set_attr]/[Remove_attr]) superseded by a
      later write to the same (object, attribute) is dropped, provided
      no object-level edit on that object sits between them (an
      [Add_object]/[Remove_object] re-anchors what the write means);
    - an [Add_object] whose {e next} object-level edit on that id is a
      [Remove_object] is dropped together with that remove and the
      attribute edits on the id between them: the add succeeded, so the
      id was absent before, and the remove restores exactly that. *)
let coalesce (edits : edit list) : edit list =
  let arr = Array.of_list edits in
  let n = Array.length arr in
  let live = Array.make n true in
  let is_obj_op_on id = function
    | Add_object o -> o.Model.id = id
    | Remove_object id' -> id' = id
    | Set_attr _ | Remove_attr _ -> false
  in
  let attr_target = function
    | Set_attr (id, a, _) | Remove_attr (id, a) -> Some (id, a)
    | Add_object _ | Remove_object _ -> None
  in
  (* rule 1: superseded attribute writes *)
  for i = 0 to n - 1 do
    match attr_target arr.(i) with
    | None -> ()
    | Some (id, a) ->
        let j = ref (i + 1) in
        let blocked = ref false in
        let superseded = ref false in
        while (not !blocked) && (not !superseded) && !j < n do
          (if is_obj_op_on id arr.(!j) then blocked := true
           else
             match attr_target arr.(!j) with
             | Some (id', a') when id' = id && String.equal a a' ->
                 superseded := true
             | _ -> ());
          incr j
        done;
        if !superseded then live.(i) <- false
  done;
  (* rule 2: add cancelled by the next object-level edit being a remove *)
  for i = 0 to n - 1 do
    match arr.(i) with
    | Add_object o when live.(i) -> (
        let id = o.Model.id in
        let j = ref (i + 1) in
        let found = ref (-1) in
        while !found < 0 && !j < n do
          if is_obj_op_on id arr.(!j) then found := !j;
          incr j
        done;
        match !found with
        | j when j >= 0 -> (
            match arr.(j) with
            | Remove_object _ ->
                live.(i) <- false;
                live.(j) <- false;
                for k = i + 1 to j - 1 do
                  match attr_target arr.(k) with
                  | Some (id', _) when id' = id -> live.(k) <- false
                  | _ -> ()
                done
            | _ -> ())
        | _ -> ())
    | _ -> ()
  done;
  List.filteri (fun i _ -> live.(i)) (Array.to_list arr)

(** Number of edits — a crude model distance. *)
let distance (m1 : Model.t) (m2 : Model.t) : int = List.length (diff m1 m2)
