(** Model-to-model bidirectional transformations, QVT-R style: a
    correspondence spec induces a consistency relation and forward /
    backward restorers — an algebraic bx in Stevens' sense, which the
    paper's Lemma 5 turns into an entangled state monad over consistent
    model pairs ({!Esm_core.Of_algebraic}).

    Restorers are Correct and Hippocratic by construction, provided keys
    are unique per side and correspondences target disjoint class pairs
    (property-tested); they are generally {e not} undoable — deleted
    objects lose their private attributes — so the induced set-bx is
    lawful but not overwriteable. *)

type correspondence = {
  left_class : string;
  right_class : string;
  key : (string * string) list;
      (** (left attr, right attr) pairs identifying corresponding
          objects; key values must be unique per side *)
  synced : (string * string) list;
      (** (left attr, right attr) pairs kept equal *)
}

type spec

val v :
  ?name:string ->
  left_mm:Metamodel.t ->
  right_mm:Metamodel.t ->
  correspondence list ->
  spec

val consistent : spec -> Model.t -> Model.t -> bool

val fwd : spec -> Model.t -> Model.t -> Model.t
(** Repair the right model to match the left: update synced attributes
    of partnered objects, create missing partners (fresh ids, metamodel
    defaults), delete unmatched corresponded objects.  Hippocratic: a
    consistent pair is returned unchanged. *)

val bwd : spec -> Model.t -> Model.t -> Model.t
(** Symmetrically, repair the left model to match the right. *)

val fwd_delta : spec -> old_left:Model.t -> Model.t -> Model.t -> Model.t
(** [fwd_delta spec ~old_left left right]: incremental {!fwd} — the edit
    script [Diff.diff old_left left] is propagated through indexed
    partner maps instead of re-restoring the whole right model.
    Precondition: [(old_left, right)] is consistent; under it,
    single-object edit scripts produce a model equal to
    [fwd spec left right] (property-tested oracle).  On a degradable
    failure ({!Esm_core.Error.is_degradable}: an injected fault in the
    incremental mirror) the answer is recomputed with the full {!fwd}
    oracle instead of raising. *)

val to_algbx : spec -> (Model.t, Model.t) Esm_algbx.Algbx.t
