(** Metamodels: class definitions that models conform to — the MDE
    analogue of a database schema. *)

type attr_ty =
  | Tstr
  | Tint
  | Tbool
  | Tref of string  (** reference to an instance of the named class *)

let attr_ty_to_string = function
  | Tstr -> "string"
  | Tint -> "int"
  | Tbool -> "bool"
  | Tref c -> "ref " ^ c

type class_def = {
  cls_name : string;
  attributes : (string * attr_ty) list;
}

type t = { class_defs : class_def list }

exception Metamodel_error of string

let errorf fmt =
  Esm_core.Error.raisef Esm_core.Error.Metamodel
    ~wrap:(fun m -> Metamodel_error m)
    fmt

let () =
  Esm_core.Error.register_classifier (function
    | Metamodel_error m ->
        Some (Esm_core.Error.of_message Esm_core.Error.Metamodel m)
    | _ -> None)

let v (class_defs : class_def list) : t =
  let names = List.map (fun c -> c.cls_name) class_defs in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then errorf "duplicate class definitions";
  List.iter
    (fun c ->
      List.iter
        (function
          | _, Tref target when not (List.mem target names) ->
              errorf "class %s references undefined class %s" c.cls_name
                target
          | _ -> ())
        c.attributes)
    class_defs;
  { class_defs }

let class_def (mm : t) (name : string) : class_def option =
  List.find_opt (fun c -> String.equal c.cls_name name) mm.class_defs

let class_names (mm : t) : string list =
  List.map (fun c -> c.cls_name) mm.class_defs

(** A default value of each attribute type (fresh objects created by
    consistency restoration use these for attributes the other side does
    not determine).  References default to [Vref 0] — the "null" id —
    which conformance reports unless the attribute is set. *)
let default_of_ty : attr_ty -> Model.value = function
  | Tstr -> Model.Vstr ""
  | Tint -> Model.Vint 0
  | Tbool -> Model.Vbool false
  | Tref _ -> Model.Vref 0

let value_matches (m : Model.t) (ty : attr_ty) (v : Model.value) : bool =
  match (ty, v) with
  | Tstr, Model.Vstr _ | Tint, Model.Vint _ | Tbool, Model.Vbool _ -> true
  | Tref target, Model.Vref id -> (
      match Model.find m id with
      | Some o -> String.equal o.Model.cls target
      | None -> false)
  | (Tstr | Tint | Tbool | Tref _), _ -> false

(** Check conformance; returns the list of violations (empty = conforms). *)
let check (mm : t) (m : Model.t) : string list =
  List.concat_map
    (fun (o : Model.obj) ->
      match class_def mm o.Model.cls with
      | None -> [ Printf.sprintf "object #%d has undefined class %s" o.Model.id o.Model.cls ]
      | Some cd ->
          let missing =
            List.filter_map
              (fun (n, _) ->
                if Option.is_none (Model.attr o n) then
                  Some (Printf.sprintf "object #%d misses attribute %s" o.Model.id n)
                else None)
              cd.attributes
          in
          let ill_typed =
            List.filter_map
              (fun (n, v) ->
                match List.assoc_opt n cd.attributes with
                | None ->
                    Some
                      (Printf.sprintf "object #%d has undeclared attribute %s"
                         o.Model.id n)
                | Some ty ->
                    if value_matches m ty v then None
                    else
                      Some
                        (Printf.sprintf
                           "object #%d attribute %s is not a %s"
                           o.Model.id n (attr_ty_to_string ty)))
              o.Model.attrs
          in
          missing @ ill_typed)
    (Model.objects m)

let conforms (mm : t) (m : Model.t) : bool = check mm m = []

(** A fresh, conformant object of the named class with default
    attributes. *)
let fresh_object (mm : t) ~(cls : string) ~(id : Model.oid) : Model.obj =
  match class_def mm cls with
  | None -> errorf "fresh_object: undefined class %s" cls
  | Some cd ->
      Model.obj ~id ~cls
        (List.map (fun (n, ty) -> (n, default_of_ty ty)) cd.attributes)
