(** Model differencing: compute and apply edit scripts.  [apply m (diff
    m m') = m'] exactly (property-tested). *)

type edit =
  | Add_object of Model.obj
  | Remove_object of Model.oid
  | Set_attr of Model.oid * string * Model.value
  | Remove_attr of Model.oid * string

val pp_edit : Format.formatter -> edit -> unit
val equal_edit : edit -> edit -> bool

val diff : Model.t -> Model.t -> edit list
(** Edit script transforming the first model into the second (removals,
    updates, additions; id lookups are hash-indexed). *)

val apply_edit : Model.t -> edit -> Model.t
val apply : Model.t -> edit list -> Model.t

val coalesce : edit list -> edit list
(** Collapse a burst of edits: attribute writes superseded by a later
    write to the same (object, attribute) with no intervening
    object-level edit on that object are dropped, and an [Add_object]
    whose next object-level edit on that id is a [Remove_object] is
    dropped together with the remove and the attribute edits on the id
    between them.  On any model where [edits] applies without error,
    [apply m (coalesce edits) = apply m edits] — the batched-commit
    equivalence [Esm_sync] relies on. *)

val distance : Model.t -> Model.t -> int
(** Length of {!diff} — a crude model distance. *)
