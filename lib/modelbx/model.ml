(** Object models: the "models" of model-driven development that motivate
    the paper ("UML models of a system to be developed ... we use the
    term 'models' broadly").

    A model is a set of typed objects; each object has a numeric
    identity, a class name, and a record of attribute values (possibly
    referencing other objects by id).  Models are kept in a canonical
    form — objects sorted by id, attributes sorted by name — so
    structural equality is model equality, which the bx law checkers
    rely on. *)

type oid = int

type value =
  | Vstr of string
  | Vint of int
  | Vbool of bool
  | Vref of oid  (** reference to another object *)

let equal_value v1 v2 =
  match (v1, v2) with
  | Vstr s1, Vstr s2 -> String.equal s1 s2
  | Vint i1, Vint i2 -> Int.equal i1 i2
  | Vbool b1, Vbool b2 -> Bool.equal b1 b2
  | Vref r1, Vref r2 -> Int.equal r1 r2
  | (Vstr _ | Vint _ | Vbool _ | Vref _), _ -> false

let value_to_string = function
  | Vstr s -> Printf.sprintf "%S" s
  | Vint i -> string_of_int i
  | Vbool b -> string_of_bool b
  | Vref r -> Printf.sprintf "@%d" r

type obj = {
  id : oid;
  cls : string;  (** class (metamodel type) name *)
  attrs : (string * value) list;  (** sorted by attribute name *)
}

let obj ~id ~cls attrs =
  {
    id;
    cls;
    attrs = List.sort (fun (n1, _) (n2, _) -> String.compare n1 n2) attrs;
  }

let attr (o : obj) (name : string) : value option = List.assoc_opt name o.attrs

let set_attr (o : obj) (name : string) (v : value) : obj =
  let rec go = function
    | [] -> [ (name, v) ]
    | (n, _) :: rest when String.equal n name -> (name, v) :: rest
    | binding :: rest -> binding :: go rest
  in
  { o with attrs = List.sort (fun (n1, _) (n2, _) -> String.compare n1 n2) (go o.attrs) }

let remove_attr (o : obj) (name : string) : obj =
  { o with attrs = List.filter (fun (n, _) -> not (String.equal n name)) o.attrs }

let equal_obj o1 o2 =
  o1.id = o2.id
  && String.equal o1.cls o2.cls
  && List.length o1.attrs = List.length o2.attrs
  && List.for_all2
       (fun (n1, v1) (n2, v2) -> String.equal n1 n2 && equal_value v1 v2)
       o1.attrs o2.attrs

type t = { objects : obj list (* sorted by id, unique *) }

exception Model_error of string

let errorf fmt =
  Esm_core.Error.raisef Esm_core.Error.Model
    ~wrap:(fun m -> Model_error m)
    fmt

let () =
  Esm_core.Error.register_classifier (function
    | Model_error m -> Some (Esm_core.Error.of_message Esm_core.Error.Model m)
    | _ -> None)

let of_objects (objects : obj list) : t =
  let sorted = List.sort (fun o1 o2 -> Int.compare o1.id o2.id) objects in
  let rec check = function
    | o1 :: (o2 :: _ as rest) ->
        if o1.id = o2.id then errorf "duplicate object id %d" o1.id
        else check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  { objects = sorted }

let empty : t = { objects = [] }
let objects (m : t) : obj list = m.objects
let size (m : t) : int = List.length m.objects
let find (m : t) (id : oid) : obj option =
  (* objects are sorted by id: stop as soon as we pass it *)
  let rec go = function
    | [] -> None
    | o :: rest -> if o.id = id then Some o else if o.id > id then None else go rest
  in
  go m.objects

let mem (m : t) (id : oid) : bool = Option.is_some (find m id)

let add (m : t) (o : obj) : t =
  (* sorted insertion: no re-sort, duplicate check on the way *)
  let rec go = function
    | [] -> [ o ]
    | o' :: rest ->
        if o'.id = o.id then errorf "add: object %d already present" o.id
        else if o'.id > o.id then o :: o' :: rest
        else o' :: go rest
  in
  { objects = go m.objects }

let remove (m : t) (id : oid) : t =
  { objects = List.filter (fun o -> o.id <> id) m.objects }

(** Replace the object with the same id (which must exist). *)
let update (m : t) (o : obj) : t =
  if not (mem m o.id) then errorf "update: no object %d" o.id
  else { objects = List.map (fun o' -> if o'.id = o.id then o else o') m.objects }

let of_class (m : t) (cls : string) : obj list =
  List.filter (fun o -> String.equal o.cls cls) m.objects

let classes (m : t) : string list =
  List.sort_uniq String.compare (List.map (fun o -> o.cls) m.objects)

let next_id (m : t) : oid =
  (* sorted by id: the last object carries the maximum *)
  let rec last = function
    | [] -> 0
    | [ o ] -> o.id
    | _ :: rest -> last rest
  in
  1 + last m.objects

let equal (m1 : t) (m2 : t) : bool =
  List.length m1.objects = List.length m2.objects
  && List.for_all2 equal_obj m1.objects m2.objects

let pp fmt (m : t) =
  List.iter
    (fun o ->
      Format.fprintf fmt "#%d : %s {%s}@." o.id o.cls
        (String.concat "; "
           (List.map
              (fun (n, v) -> n ^ " = " ^ value_to_string v)
              o.attrs)))
    m.objects

let to_string m = Format.asprintf "%a" pp m
