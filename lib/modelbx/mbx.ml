(** Model-to-model bidirectional transformations, QVT-R style — the
    setting of Stevens' algebraic bx (reference [5] of the paper), which
    Lemma 5 turns into an entangled state monad.

    A {e correspondence} declares that objects of one class in the left
    model relate to objects of another class in the right model: objects
    correspond when their {e key} attributes agree, and corresponding
    objects must also agree on the {e synced} attributes.  A {!spec} is
    a set of correspondences; it induces

    - a consistency relation on pairs of models, and
    - forward/backward restorers that create, update and delete objects
      on one side to match the other (attributes outside the
      correspondence are preserved on surviving objects and defaulted on
      created ones, per the target metamodel).

    The restorers are Correct and Hippocratic by construction (checked
    by property tests), so {!to_algbx} feeds directly into
    {!Esm_core.Of_algebraic}: editing either model through the resulting
    set-bx silently repairs the other — entanglement at MDE scale. *)

type correspondence = {
  left_class : string;
  right_class : string;
  key : (string * string) list;
      (** (left attr, right attr) pairs identifying corresponding
          objects; key values are required unique per side *)
  synced : (string * string) list;
      (** (left attr, right attr) pairs kept equal *)
}

type spec = {
  name : string;
  left_mm : Metamodel.t;
  right_mm : Metamodel.t;
  correspondences : correspondence list;
}

let v ?(name = "<mbx>") ~left_mm ~right_mm correspondences =
  { name; left_mm; right_mm; correspondences }

(* Key of an object on the chosen side: the list of key attribute
   values, or None if any is missing. *)
let key_of (side : [ `Left | `Right ]) (c : correspondence) (o : Model.obj) :
    Model.value list option =
  let names =
    List.map (match side with `Left -> fst | `Right -> snd) c.key
  in
  let values = List.map (Model.attr o) names in
  if List.for_all Option.is_some values then Some (List.map Option.get values)
  else None

let equal_key k1 k2 =
  List.length k1 = List.length k2 && List.for_all2 Model.equal_value k1 k2

let synced_values (side : [ `Left | `Right ]) (c : correspondence)
    (o : Model.obj) : Model.value option list =
  let names =
    List.map (match side with `Left -> fst | `Right -> snd) c.synced
  in
  List.map (Model.attr o) names

(* The indexed partner map of one correspondence side: key tuple ->
   object, over the corresponded class.  Built in one pass; keys are
   unique per side by the spec's precondition. *)
let partner_map (side : [ `Left | `Right ]) (c : correspondence)
    (m : Model.t) : (Model.value list, Model.obj) Hashtbl.t =
  Esm_core.Chaos.point "mbx.partner_map";
  let cls = match side with `Left -> c.left_class | `Right -> c.right_class in
  let objs = Model.of_class m cls in
  let idx = Hashtbl.create (max 16 (List.length objs)) in
  List.iter
    (fun o ->
      match key_of side c o with
      | Some k -> Hashtbl.replace idx k o
      | None -> ())
    objs;
  idx

let synced_agree side c o o' =
  let mine = synced_values side c o in
  let theirs =
    synced_values (match side with `Left -> `Right | `Right -> `Left) c o'
  in
  List.for_all2
    (fun v v' ->
      match (v, v') with
      | Some v, Some v' -> Model.equal_value v v'
      | _ -> false)
    mine theirs

(* One correspondence is consistent when the key-indexed objects match
   both ways and synced attributes agree: two index builds and two
   linear passes instead of nested partner scans. *)
let correspondence_consistent (c : correspondence) (left : Model.t)
    (right : Model.t) : bool =
  let left_idx = partner_map `Left c left in
  let right_idx = partner_map `Right c right in
  let check_side side objs opposite_idx =
    List.for_all
      (fun o ->
        match key_of side c o with
        | None -> false
        | Some k -> (
            match Hashtbl.find_opt opposite_idx k with
            | None -> false
            | Some o' -> synced_agree side c o o'))
      objs
  in
  check_side `Left (Model.of_class left c.left_class) right_idx
  && check_side `Right (Model.of_class right c.right_class) left_idx

let consistent (spec : spec) (left : Model.t) (right : Model.t) : bool =
  List.for_all
    (fun c -> correspondence_consistent c left right)
    spec.correspondences

(* Copy the source object's synced attribute values onto the target
   object (missing source values leave the target attribute alone). *)
let sync_onto ~(source_side : [ `Left | `Right ]) (c : correspondence)
    (source_obj : Model.obj) (target_obj : Model.obj) : Model.obj =
  List.fold_left2
    (fun o' (ln, rn) v ->
      let target_attr = match source_side with `Left -> rn | `Right -> ln in
      match v with
      | Some v -> Model.set_attr o' target_attr v
      | None -> o')
    target_obj c.synced
    (synced_values source_side c source_obj)

(* Stamp the source object's key onto the target side of a fresh
   partner. *)
let with_key ~(source_side : [ `Left | `Right ]) (c : correspondence)
    (k : Model.value list) (target_obj : Model.obj) : Model.obj =
  List.fold_left2
    (fun o' (ln, rn) v ->
      let target_attr = match source_side with `Left -> rn | `Right -> ln in
      Model.set_attr o' target_attr v)
    target_obj c.key k

(* Update-or-create the partner of source object [o] in [acc].
   [target_idx] is the partner map of [acc]'s corresponded class, kept
   in sync across calls (keys are unique and syncing never rewrites a
   target key, so entries only change on create).  Hippocratic at the
   object level: an already-synced partner leaves [acc] untouched. *)
let mirror_object ~(source_side : [ `Left | `Right ]) (c : correspondence)
    ~(target_class : string) ~(target_mm : Metamodel.t)
    (target_idx : (Model.value list, Model.obj) Hashtbl.t) (acc : Model.t)
    (o : Model.obj) : Model.t =
  match key_of source_side c o with
  | None -> acc (* malformed source object: nothing to mirror *)
  | Some k -> (
      match Hashtbl.find_opt target_idx k with
      | Some existing ->
          let synced = sync_onto ~source_side c o existing in
          if Model.equal_obj existing synced then acc
          else begin
            Hashtbl.replace target_idx k synced;
            Model.update acc synced
          end
      | None ->
          let fresh =
            Metamodel.fresh_object target_mm ~cls:target_class
              ~id:(Model.next_id acc)
          in
          let created =
            sync_onto ~source_side c o (with_key ~source_side c k fresh)
          in
          Hashtbl.replace target_idx k created;
          Model.add acc created)

(* Restore the target model to match the source, for one correspondence:
   update synced attrs on partnered objects, create missing partners
   (fresh ids, defaults from the target metamodel), delete unmatched
   target objects of the corresponded class.  Partner lookups go through
   one-pass key indexes on each side. *)
let restore_correspondence ~(source_side : [ `Left | `Right ]) (spec : spec)
    (c : correspondence) (source : Model.t) (target : Model.t) : Model.t =
  let target_side = match source_side with `Left -> `Right | `Right -> `Left in
  let source_class, target_class, target_mm =
    match source_side with
    | `Left -> (c.left_class, c.right_class, spec.right_mm)
    | `Right -> (c.right_class, c.left_class, spec.left_mm)
  in
  let source_objs = Model.of_class source source_class in
  let source_idx = partner_map source_side c source in
  (* 1. delete target objects with no source partner *)
  let target1 =
    List.fold_left
      (fun acc (o : Model.obj) ->
        let partnered =
          match key_of target_side c o with
          | Some k -> Hashtbl.mem source_idx k
          | None -> false
        in
        if partnered then acc else Model.remove acc o.Model.id)
      target
      (Model.of_class target target_class)
  in
  (* 2. update or create a partner for each source object *)
  let target_idx = partner_map target_side c target1 in
  List.fold_left
    (mirror_object ~source_side c ~target_class ~target_mm target_idx)
    target1 source_objs

let fwd (spec : spec) (left : Model.t) (right : Model.t) : Model.t =
  if consistent spec left right then right
  else
    List.fold_left
      (fun right c -> restore_correspondence ~source_side:`Left spec c left right)
      right spec.correspondences

let bwd (spec : spec) (left : Model.t) (right : Model.t) : Model.t =
  if consistent spec left right then left
  else
    List.fold_left
      (fun left c -> restore_correspondence ~source_side:`Right spec c right left)
      left spec.correspondences

(* ------------------------------------------------------------------ *)
(* Incremental forward propagation                                     *)
(* ------------------------------------------------------------------ *)

(** [fwd_delta spec ~old_left left right]: propagate the edit script
    [Diff.diff old_left left] through the correspondences instead of
    re-restoring the whole right model.  Precondition: [(old_left,
    right)] is consistent (the pair being incrementally maintained);
    under it, single-object edit scripts produce a model equal to
    [fwd spec left right] — the oracle property in
    [test/test_mbx.ml].  Cost is one diff plus, per correspondence, one
    partner-map build and O(edits) mirror steps. *)
let fwd_delta_fast (spec : spec) ~(old_left : Model.t) (left : Model.t)
    (right : Model.t) : Model.t =
  Esm_core.Chaos.point "mbx.fwd_delta";
  let edits = Diff.diff old_left left in
  if edits = [] then right
  else
    List.fold_left
      (fun right c ->
        let target_idx = partner_map `Right c right in
        let unmirror right (o : Model.obj) =
          match key_of `Left c o with
          | None -> right
          | Some k -> (
              match Hashtbl.find_opt target_idx k with
              | None -> right
              | Some p ->
                  Hashtbl.remove target_idx k;
                  Model.remove right p.Model.id)
        in
        let mirror =
          mirror_object ~source_side:`Left c ~target_class:c.right_class
            ~target_mm:spec.right_mm target_idx
        in
        List.fold_left
          (fun right edit ->
            match edit with
            | Diff.Add_object o ->
                if String.equal o.Model.cls c.left_class then mirror right o
                else right
            | Diff.Remove_object oid -> (
                match Model.find old_left oid with
                | Some o when String.equal o.Model.cls c.left_class ->
                    unmirror right o
                | _ -> right)
            | Diff.Set_attr (oid, _, _) | Diff.Remove_attr (oid, _) -> (
                (* attribute edits keep the class (class changes diff as
                   remove + add) *)
                match (Model.find old_left oid, Model.find left oid) with
                | Some o_old, Some o_new
                  when String.equal o_new.Model.cls c.left_class ->
                    let keys_equal =
                      match (key_of `Left c o_old, key_of `Left c o_new) with
                      | Some k1, Some k2 -> equal_key k1 k2
                      | None, None -> true
                      | _ -> false
                    in
                    let right =
                      if keys_equal then right else unmirror right o_old
                    in
                    mirror right o_new
                | _ -> right))
          right edits)
      right spec.correspondences

let fwd_delta (spec : spec) ~(old_left : Model.t) (left : Model.t)
    (right : Model.t) : Model.t =
  match fwd_delta_fast spec ~old_left left right with
  | result -> result
  | exception e when Esm_core.Error.degradable_exn e ->
      (* Graceful degradation: a fault inside the incremental mirror
         (diff application, partner-map build) means its intermediate
         state cannot be trusted; recompute with the full restoration
         oracle, injection suppressed so recovery cannot be faulted.
         Genuine model/metamodel errors still raise. *)
      Esm_core.Chaos.note_fallback "mbx.fwd_delta";
      Esm_core.Chaos.protected (fun () -> fwd spec left right)

(** The induced algebraic bx (feed into {!Esm_core.Of_algebraic} /
    {!Esm_core.Concrete.of_algebraic} for the entangled state monad). *)
let to_algbx (spec : spec) : (Model.t, Model.t) Esm_algbx.Algbx.t =
  Esm_algbx.Algbx.v ~name:spec.name ~consistent:(consistent spec)
    ~fwd:(fwd spec) ~bwd:(bwd spec) ()
