(** Data-manipulation statements over tables, and their translation
    through updatable views.

    [apply] executes insert/delete/update statements against a table;
    [through] is the view-update pattern the paper's database motivation
    is about: run the statement {e on the view} of a lens, then push the
    modified view back through [put] — the stored table absorbs the
    change while everything outside the view is preserved.

    Property tests in [test/test_dml.ml] include the classic view-update
    correctness statement: for a select-lens view, running a
    view-compatible statement through the view equals running it directly
    on the store. *)

type assignment = string * Pred.expr
(** column := expression (evaluated against the pre-update row) *)

type t =
  | Insert of Row.t
  | Delete of Pred.t
  | Update of Pred.t * assignment list

let pp fmt = function
  | Insert r -> Format.fprintf fmt "insert %s" (Row.to_string r)
  | Delete p -> Format.fprintf fmt "delete where %a" Pred.pp p
  | Update (p, assigns) ->
      Format.fprintf fmt "update set %s where %a"
        (String.concat ", "
           (List.map
              (fun (c, e) -> Format.asprintf "%s = %a" c Pred.pp_expr e)
              assigns))
        Pred.pp p

let apply (table : Table.t) (stmt : t) : Table.t =
  let schema = Table.schema table in
  match stmt with
  | Insert r -> Table.insert table r
  | Delete p ->
      let matches = Pred.compile schema p in
      Table.filter (fun r -> not (matches r)) table
  | Update (p, assigns) ->
      let matches = Pred.compile schema p in
      let compiled =
        List.map
          (fun (c, e) -> (Schema.index schema c, Pred.compile_expr schema e))
          assigns
      in
      Table.map schema
        (fun r ->
          if matches r then (
            (* assignments read the pre-update row [r] *)
            let r' = Array.copy r in
            List.iter (fun (i, f) -> r'.(i) <- f r) compiled;
            r')
          else r)
        table

let apply_all (table : Table.t) (stmts : t list) : Table.t =
  List.fold_left apply table stmts

(** Run a statement on the lens's view, then push the updated view back
    into the source: the updatable-view reading of DML. *)
let through (lens : (Table.t, Table.t) Esm_lens.Lens.t) (stmt : t)
    (source : Table.t) : Table.t =
  let view = Esm_lens.Lens.get lens source in
  Esm_lens.Lens.put lens source (apply view stmt)

(** The row deltas a statement induces on a table:
    [apply table stmt = Row_delta.apply_all table (delta table stmt)].
    Removals precede additions, so an update that permutes rows (e.g. a
    swap) still lands on the right set. *)
let delta (table : Table.t) (stmt : t) : Row_delta.t list =
  let schema = Table.schema table in
  match stmt with
  | Insert r -> if Table.mem table r then [] else [ Row_delta.Add r ]
  | Delete p ->
      let matches = Pred.compile schema p in
      Table.fold
        (fun acc r -> if matches r then Row_delta.Remove r :: acc else acc)
        [] table
  | Update (p, assigns) ->
      let matches = Pred.compile schema p in
      let compiled =
        List.map
          (fun (c, e) -> (Schema.index schema c, Pred.compile_expr schema e))
          assigns
      in
      let removes = ref [] and adds = ref [] in
      Table.iter
        (fun r ->
          if matches r then begin
            let r' = Array.copy r in
            List.iter (fun (i, f) -> r'.(i) <- f r) compiled;
            if not (Row.equal r r') then begin
              removes := Row_delta.Remove r :: !removes;
              adds := Row_delta.Add r' :: !adds
            end
          end)
        table;
      List.rev_append !removes (List.rev !adds)

(** Delta-propagating [through]: compute the statement's deltas on the
    view and push them through {!Rlens.put_delta} instead of replacing
    the whole view. *)
let through_delta (dl : Rlens.dlens) (stmt : t) (source : Table.t) : Table.t =
  let view = Esm_lens.Lens.get dl.Rlens.lens source in
  Rlens.put_delta dl source (delta view stmt)

(** The provenance of the {!through} path on a delta pipeline: the lens
    pipeline itself (the statement runs on the view, the whole edited
    view goes through [put]). *)
let through_pedigree (dl : Rlens.dlens) : Esm_core.Pedigree.t =
  dl.Rlens.pedigree

(** The provenance of the {!through_delta} path: delta propagation over
    the pipeline — same law level as the full put it agrees with (the
    oracle property), recorded as {!Esm_core.Pedigree.Delta_of}. *)
let through_delta_pedigree (dl : Rlens.dlens) : Esm_core.Pedigree.t =
  Esm_core.Pedigree.Delta_of dl.Rlens.pedigree
