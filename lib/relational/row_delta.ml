(** Row-level deltas over tables: the change language of the incremental
    [put] path.  A view edit is described as a list of row additions and
    removals rather than a whole replacement table, and
    {!Rlens.put_delta} translates view deltas into source deltas instead
    of rebuilding the source — the relational face of the paper's
    entangled-update story, where a small edit on one side should induce
    a correspondingly small restoration step on the other. *)

type t =
  | Add of Row.t
  | Remove of Row.t

let pp fmt = function
  | Add r -> Format.fprintf fmt "+%s" (Row.to_string r)
  | Remove r -> Format.fprintf fmt "-%s" (Row.to_string r)

let to_string d = Format.asprintf "%a" pp d

let apply (table : Table.t) : t -> Table.t = function
  | Add r -> Table.insert table r
  | Remove r -> Table.delete table r

let apply_all (table : Table.t) (deltas : t list) : Table.t =
  List.fold_left apply table deltas

(** [diff t1 t2]: deltas turning [t1] into [t2]
    ([apply_all t1 (diff t1 t2)] is relationally equal to [t2]).  A
    single merge walk over the two sorted arrays; removals precede
    additions. *)
let diff (t1 : Table.t) (t2 : Table.t) : t list =
  if not (Schema.equal (Table.schema t1) (Table.schema t2)) then
    Table.errorf "Row_delta.diff: schema mismatch: %s vs %s"
      (Schema.to_string (Table.schema t1))
      (Schema.to_string (Table.schema t2));
  let r1 = Table.row_array t1 and r2 = Table.row_array t2 in
  let n1 = Array.length r1 and n2 = Array.length r2 in
  let removes = ref [] and adds = ref [] in
  let i = ref 0 and j = ref 0 in
  while !i < n1 && !j < n2 do
    let c = Row.compare r1.(!i) r2.(!j) in
    if c < 0 then (
      removes := Remove r1.(!i) :: !removes;
      incr i)
    else if c > 0 then (
      adds := Add r2.(!j) :: !adds;
      incr j)
    else (
      incr i;
      incr j)
  done;
  while !i < n1 do
    removes := Remove r1.(!i) :: !removes;
    incr i
  done;
  while !j < n2 do
    adds := Add r2.(!j) :: !adds;
    incr j
  done;
  List.rev_append !removes (List.rev !adds)
