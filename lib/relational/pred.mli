(** A small predicate language over rows, used by selections and the
    select lens. *)

type expr = Col of string | Lit of Value.t

type t =
  | Const of bool
  | Eq of expr * expr
  | Lt of expr * expr
  | Le of expr * expr
  | And of t * t
  | Or of t * t
  | Not of t

val eval_expr : Schema.t -> Row.t -> expr -> Value.t
val eval : Schema.t -> t -> Row.t -> bool

val compile_expr : Schema.t -> expr -> Row.t -> Value.t
(** Resolve the column position once; the returned closure does no name
    lookup per row. *)

val compile : Schema.t -> t -> Row.t -> bool
(** Compile a predicate against a schema: column references are resolved
    to row positions once, so per-row evaluation does no name lookups.
    Agrees with {!eval} on conforming rows; used by the selection hot
    paths (algebra, select lens, DML). *)

val columns_used : t -> string list
(** Column names referenced (with duplicates). *)

val pp : Format.formatter -> t -> unit
val pp_expr : Format.formatter -> expr -> unit

(** {1 Convenience constructors}

    [Pred.(col "age" < int 40 && not_ (col "name" = str "bob"))] *)

val col : string -> expr
val int : int -> expr
val str : string -> expr
val bool : bool -> expr
val ( = ) : expr -> expr -> t
val ( < ) : expr -> expr -> t
val ( <= ) : expr -> expr -> t
val ( && ) : t -> t -> t
val ( || ) : t -> t -> t
val not_ : t -> t
