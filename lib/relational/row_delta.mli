(** Row-level deltas over tables: the change language of the incremental
    [put] path ({!Rlens.put_delta}).  A view edit is a list of row
    additions and removals instead of a whole replacement table. *)

type t =
  | Add of Row.t
  | Remove of Row.t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val apply : Table.t -> t -> Table.t
(** Set-semantics application: [Add] of a present row and [Remove] of an
    absent row are no-ops. *)

val apply_all : Table.t -> t list -> Table.t

val diff : Table.t -> Table.t -> t list
(** [diff t1 t2]: deltas turning [t1] into [t2], as one merge walk over
    the sorted arrays ([apply_all t1 (diff t1 t2)] is relationally equal
    to [t2]); removals precede additions.  {!Table.Table_error} on
    schema mismatch. *)
