(** Relational lenses: asymmetric lenses between tables, in the spirit of
    Bohannon, Pierce & Vaughan's "Relational lenses" (PODS 2006).  These
    are the database instantiation of the lenses the paper feeds into its
    Lemma 4: composing them with {!Esm_core.Of_lens} gives an entangled
    state monad whose A-side is the stored table and whose B-side is the
    view.

    Well-behavedness caveats (as in the relational-lenses literature):

    - {!select} is very well-behaved provided the updated view only
      contains rows satisfying the predicate ([put] raises
      {!Esm_lens.Lens.Shape_error} otherwise).
    - {!project} is well-behaved on sources satisfying the functional
      dependency [key -> dropped columns]; [put] recovers dropped values
      from the old source by key, falling back to per-type defaults.
    - {!rename} is an isomorphism, hence very well-behaved.

    Alongside the whole-view lenses, the {!dlens} layer propagates
    {!Row_delta} edit scripts: [put_delta] translates view deltas to
    source deltas instead of rebuilding the source, which is the
    incremental restoration path the benchmarks measure.

    The property suites in [test/test_rlens.ml] generate sources and views
    inside those domains; [test/test_row_delta.ml] checks [put_delta]
    against the full [put] oracle. *)

open Esm_lens

(* ------------------------------------------------------------------ *)
(* Pedigrees for the relational combinators                            *)
(* ------------------------------------------------------------------ *)

(** The {!Esm_core.Pedigree} of a select lens over [p].  [key] (when
    known) enables the key-preservation analysis: a predicate reading
    only key columns decides view membership by the key alone, which is
    the condition for the select lens to keep (PutPut). *)
let select_pedigree ?key (p : Pred.t) : Esm_core.Pedigree.t =
  Algebra.select_pedigree ?key p

(** The pedigree of a project lens: lossless iff every source column is
    kept (a column-order iso). *)
let project_pedigree ~(keep : string list) ~(key : string list)
    (source_schema : Schema.t) : Esm_core.Pedigree.t =
  Algebra.project_pedigree ~keep ~key source_schema

let rename_pedigree = Algebra.rename_pedigree

(** The pedigree of a join lens.  [right_fds] are functional dependencies
    declared (or {!Fd.not_refuted_by}-checked) on the right table; the
    join's undo law is claimed only when some declared FD proves the
    shared columns determine the rest of the right row — i.e. the shared
    columns key the right table, so a view key picks exactly one right
    partner.  (As with the [join] put itself, the claim additionally
    assumes no dangling left rows.) *)
let join_pedigree ?right_fds ~(left : Schema.t) ~(right : Schema.t) () :
    Esm_core.Pedigree.t =
  Algebra.join_pedigree ?right_fds ~left ~right ()

(** [select p]: the view is the subtable satisfying [p].  [put] keeps the
    non-matching source rows and replaces the matching ones by the view. *)
let select (p : Pred.t) : (Table.t, Table.t) Lens.t =
  Lens.v
    ~name:(Format.asprintf "select %a" Pred.pp p)
    ~get:(Algebra.select p)
    ~put:(fun source view ->
      Esm_core.Chaos.point "rlens.select.put";
      let schema = Table.schema source in
      if not (Schema.equal schema (Table.schema view)) then
        Lens.shape_errorf "select lens: view schema %s differs from source %s"
          (Schema.to_string (Table.schema view))
          (Schema.to_string schema);
      let matches = Pred.compile schema p in
      Table.iter
        (fun r ->
          if not (matches r) then
            Lens.shape_errorf
              "select lens: view row %s violates the selection predicate"
              (Row.to_string r))
        view;
      let untouched = Table.filter (fun r -> not (matches r)) source in
      Table.union untouched view)
    ()

(* ------------------------------------------------------------------ *)
(* Projection plans (shared by the full put and the delta path)        *)
(* ------------------------------------------------------------------ *)

(* Per-source-column recipe: copy from the view row, or recover a
   dropped value from the old source row with the same key (falling back
   to the per-type default). *)
type projection_plan = {
  view_schema : Schema.t;
  column_plan : [ `Kept of int | `Dropped of int * Value.t ] array;
  view_key_indices : int list;
  source_key_indices : int list;
}

let projection_plan ~(keep : string list) ~(key : string list)
    (source_schema : Schema.t) : projection_plan =
  if not (List.for_all (fun k -> List.mem k keep) key) then
    Schema.errorf "project lens: key columns must be kept";
  let view_schema = Schema.project source_schema keep in
  let column_plan =
    Array.of_list
      (List.map
         (fun (n, ty) ->
           match List.find_index (fun k -> String.equal k n) keep with
           | Some view_index -> `Kept view_index
           | None ->
               `Dropped (Schema.index source_schema n, Value.default_of_type ty))
         (Schema.columns source_schema))
  in
  {
    view_schema;
    column_plan;
    view_key_indices = List.map (Schema.index view_schema) key;
    source_key_indices = List.map (Schema.index source_schema) key;
  }

(* Rebuild a source row from a view row, recovering dropped columns from
   the source's memoized key index. *)
let restore_row (plan : projection_plan)
    (old_by_key : (Value.t list, Row.t) Hashtbl.t) (view_row : Row.t) : Row.t =
  let k = Table.key_of_row plan.view_key_indices view_row in
  let recovered = Hashtbl.find_opt old_by_key k in
  Array.map
    (function
      | `Kept j -> view_row.(j)
      | `Dropped (i, default) -> (
          match recovered with
          | Some old_row -> old_row.(i)
          | None -> default))
    plan.column_plan

let check_view_schema what expected view =
  if not (Schema.equal (Table.schema view) expected) then
    Lens.shape_errorf "%s lens: view schema %s does not match %s" what
      (Schema.to_string (Table.schema view))
      (Schema.to_string expected)

(** [project ~keep ~key source_schema]: the view keeps columns [keep] (in
    order); [key ⊆ keep] identifies rows.  [put] recovers each dropped
    column of a view row from the source row with the same key, or from
    the per-type default when the key is new. *)
let project ~(keep : string list) ~(key : string list)
    (source_schema : Schema.t) : (Table.t, Table.t) Lens.t =
  let plan = projection_plan ~keep ~key source_schema in
  let put source view =
    Esm_core.Chaos.point "rlens.project.put";
    check_view_schema "project" plan.view_schema view;
    (* The memoized key index on the source: built once per (table, key)
       pair, shared across repeated puts against the same source. *)
    let old_by_key = Table.key_index source plan.source_key_indices in
    (* Restored rows conform by construction (values copied from
       conforming rows or per-type defaults); only renormalise. *)
    let restored =
      List.sort_uniq Row.compare
        (Array.to_list
           (Array.map (restore_row plan old_by_key) (Table.row_array view)))
    in
    Table.of_sorted_array_unchecked source_schema (Array.of_list restored)
  in
  Lens.v
    ~name:(Printf.sprintf "project [%s]" (String.concat "," keep))
    ~get:(Algebra.project keep)
    ~put ()

(** [rename mapping]: bijective column renaming; an iso lens. *)
let rename (mapping : (string * string) list) : (Table.t, Table.t) Lens.t =
  let inverse = List.map (fun (a, b) -> (b, a)) mapping in
  Lens.v
    ~name:
      (Printf.sprintf "rename [%s]"
         (String.concat ","
            (List.map (fun (a, b) -> a ^ ">" ^ b) mapping)))
    ~get:(Algebra.rename mapping)
    ~put:(fun _ view -> Algebra.rename inverse view)
    ()

(** [drop column ~key schema]: drop a single column (projection keeping
    the rest). *)
let drop (column : string) ~(key : string list) (schema : Schema.t) :
    (Table.t, Table.t) Lens.t =
  let keep =
    List.filter
      (fun n -> not (String.equal n column))
      (Schema.column_names schema)
  in
  Lens.with_name (Printf.sprintf "drop %s" column)
    (project ~keep ~key schema)

(** [join ~left ~right]: the view is the natural join of two stored
    tables; the source is the pair.  Put policy (a simplified
    Bohannon-Pierce "join template"):

    - the left table is replaced by the view's projection onto the left
      schema;
    - the right table keeps its rows for keys absent from the view and
      takes the view's projection onto the right schema for keys present.

    Well-behaved on sources where (i) the shared columns are a key of the
    right table and (ii) every left row joins (no dangling left rows) —
    the standard functional-dependency conditions for relational join
    lenses.  [put] raises {!Esm_lens.Lens.Shape_error} if the view schema
    does not match the join schema. *)
(* The computed pieces of a natural join, shared by the whole-view lens
   and the delta translation. *)
type join_plan = {
  join_schema : Schema.t;
  join_key_indices : int list;  (** shared columns in the view *)
  left_key_indices : int list;  (** shared columns in the left table *)
  right_key_indices : int list;  (** shared columns in the right table *)
  left_of_view : int array;  (** view positions of the left columns *)
  right_of_view : int array;  (** view positions of the right columns *)
  right_rest_of_right : int array;
      (** right positions of the non-shared right columns *)
}

let join_plan ~(left : Schema.t) ~(right : Schema.t) : join_plan =
  let shared = Schema.shared left right in
  let right_rest =
    List.filter
      (fun n -> not (List.mem n shared))
      (Schema.column_names right)
  in
  let join_schema =
    Schema.make
      (Schema.columns left
      @ List.map (fun n -> (n, Schema.ty_of right n)) right_rest)
  in
  {
    join_schema;
    join_key_indices = List.map (Schema.index join_schema) shared;
    left_key_indices = List.map (Schema.index left) shared;
    right_key_indices = List.map (Schema.index right) shared;
    left_of_view =
      Array.of_list
        (List.map (Schema.index join_schema) (Schema.column_names left));
    right_of_view =
      Array.of_list
        (List.map (Schema.index join_schema) (Schema.column_names right));
    right_rest_of_right =
      Array.of_list (List.map (Schema.index right) right_rest);
  }

let join ~(left : Schema.t) ~(right : Schema.t) :
    (Table.t * Table.t, Table.t) Lens.t =
  let plan = join_plan ~left ~right in
  let join_schema = plan.join_schema in
  let join_key_indices = plan.join_key_indices in
  let right_key_indices = plan.right_key_indices in
  let left_of_view = plan.left_of_view in
  let right_of_view = plan.right_of_view in
  let reproject indices rows =
    List.sort_uniq Row.compare
      (Array.to_list
         (Array.map (fun r -> Array.map (fun i -> r.(i)) indices) rows))
  in
  let put (_l, r) view =
    check_view_schema "join" join_schema view;
    let view_rows = Table.row_array view in
    let new_left =
      Table.of_sorted_array_unchecked left
        (Array.of_list (reproject left_of_view view_rows))
    in
    let view_keys = Hashtbl.create (max 16 (Array.length view_rows)) in
    Array.iter
      (fun row ->
        Hashtbl.replace view_keys (Table.key_of_row join_key_indices row) ())
      view_rows;
    let untouched_right =
      Table.filter
        (fun row ->
          not (Hashtbl.mem view_keys (Table.key_of_row right_key_indices row)))
        r
    in
    let new_right =
      Table.union untouched_right
        (Table.of_sorted_array_unchecked right
           (Array.of_list (reproject right_of_view view_rows)))
    in
    (new_left, new_right)
  in
  Lens.v ~name:"join"
    ~get:(fun (l, r) -> Algebra.join l r)
    ~put ()

(* ------------------------------------------------------------------ *)
(* Delta propagation                                                   *)
(* ------------------------------------------------------------------ *)

(** A delta-capable lens: the whole-view lens plus a translation of view
    deltas into source deltas.  [translate source view_deltas] assumes
    the deltas describe an edit of [get lens source] (the current view);
    under that precondition [put_delta] agrees with running the full
    [put] on the edited view — the oracle property checked in
    [test/test_row_delta.ml]. *)
type dlens = {
  lens : (Table.t, Table.t) Lens.t;
  translate : Table.t -> Row_delta.t list -> Row_delta.t list;
  pedigree : Esm_core.Pedigree.t;
      (** How this pipeline was constructed, combinator by combinator —
          the input to {!Esm_analysis.Law_infer}'s per-combinator
          lemmas. *)
  mutable view_cache : (Table.t * Table.t) option;
      (** The last (source, view) materialised by {!get_memo} — a
          single-entry cache keyed by the source table (physical
          witness first, then structural hash + equality), invisible
          benign mutation like the key-index memo. *)
}

let put_delta (l : dlens) (source : Table.t) (deltas : Row_delta.t list) :
    Table.t =
  match Row_delta.apply_all source (l.translate source deltas) with
  | result -> result
  | exception e when Esm_core.Error.degradable_exn e ->
      (* Graceful degradation: an injected fault or a failed index
         self-check means the incremental machinery cannot be trusted —
         distrust the memo, then compute the answer with the full put
         oracle (under [protected] so the recovery path cannot itself be
         faulted).  Genuine shape errors are NOT caught: they mean the
         deltas are invalid and must surface to the caller. *)
      Esm_core.Chaos.note_fallback "rlens.put_delta";
      ignore (Table.revalidate_indexes source);
      Esm_core.Chaos.protected (fun () ->
          let view = Lens.get l.lens source in
          Lens.put l.lens source (Row_delta.apply_all view deltas))

(** Memoized view materialization: [get] through the pipeline's lens,
    short-circuited when the source is the table the cached view was
    computed from.  The O(1) fast path is the physical witness
    [src == source]; otherwise the memoized structural hashes give O(1)
    rejection and a hash match is verified with {!Table.equal} before
    the hit is trusted — hash equality alone proves nothing.  An
    injected fault at the incr.hash gate bypasses the cache and
    rematerializes in full (never a stale view). *)
let get_memo (l : dlens) (source : Table.t) : Table.t =
  let recompute () =
    let view = Lens.get l.lens source in
    l.view_cache <- Some (source, view);
    view
  in
  match l.view_cache with
  | Some (src, view) when src == source ->
      Esm_incr.Stats.hit "rlens.view";
      view
  | Some (src, view) -> (
      match
        Esm_core.Chaos.point Esm_core.Shash.site;
        Table.hash src = Table.hash source && Table.equal src source
      with
      | true ->
          Esm_incr.Stats.hit "rlens.view";
          (* refresh the witness so the next read is the O(1) path *)
          l.view_cache <- Some (source, view);
          view
      | false ->
          Esm_incr.Stats.miss "rlens.view";
          recompute ()
      | exception exn when Esm_core.Error.degradable_exn exn ->
          Esm_core.Chaos.note_fallback Esm_core.Shash.site;
          Esm_incr.Stats.miss "rlens.view";
          Esm_core.Chaos.protected recompute)
  | None ->
      Esm_incr.Stats.miss "rlens.view";
      recompute ()

(** The identity dlens (a pipeline's base table). *)
let did : dlens =
  {
    lens = Lens.with_name "base" Lens.id;
    translate = (fun _ ds -> ds);
    pedigree = Esm_core.Pedigree.Identity;
    view_cache = None;
  }

(** Delta select: additions must satisfy the predicate (as in the full
    [put]); removals of rows outside the view are dropped — the full
    [put] would not see them either, since they cannot occur in the
    view.  [key] (when known) feeds {!select_pedigree}'s
    key-preservation analysis. *)
let dselect ?key (p : Pred.t) : dlens =
  let translate source deltas =
    Esm_core.Chaos.point "rlens.dselect.translate";
    let matches = Pred.compile (Table.schema source) p in
    List.filter_map
      (function
        | Row_delta.Add r ->
            if not (matches r) then
              Lens.shape_errorf
                "select lens: delta row %s violates the selection predicate"
                (Row.to_string r);
            Some (Row_delta.Add r)
        | Row_delta.Remove r ->
            if matches r then Some (Row_delta.Remove r) else None)
      deltas
  in
  {
    lens = select p;
    translate;
    pedigree = select_pedigree ?key p;
    view_cache = None;
  }

(** Delta project: each view delta restores to a source delta through the
    source's memoized key index — an added view row recovers its dropped
    columns from the old row with the same key (defaults for fresh
    keys); a removed view row removes its restored source row. *)
let dproject ~(keep : string list) ~(key : string list)
    (source_schema : Schema.t) : dlens =
  let plan = projection_plan ~keep ~key source_schema in
  let translate source deltas =
    Esm_core.Chaos.point "rlens.dproject.translate";
    (* The checked variant: a corrupt memo raises [Index], which
       [put_delta] turns into a full-put fallback instead of silently
       restoring from stale bindings. *)
    let old_by_key = Table.key_index_checked source plan.source_key_indices in
    let restore = restore_row plan old_by_key in
    List.map
      (function
        | Row_delta.Add v ->
            if not (Row.conforms plan.view_schema v) then
              Lens.shape_errorf
                "project lens: delta row %s does not conform to the view \
                 schema %s"
                (Row.to_string v)
                (Schema.to_string plan.view_schema);
            Row_delta.Add (restore v)
        | Row_delta.Remove v -> Row_delta.Remove (restore v))
      deltas
  in
  {
    lens = project ~keep ~key source_schema;
    translate;
    pedigree = project_pedigree ~keep ~key source_schema;
    view_cache = None;
  }

(** Delta rename: rows are untouched by renaming, so deltas pass through
    unchanged. *)
let drename (mapping : (string * string) list) : dlens =
  {
    lens = rename mapping;
    translate = (fun _ ds -> ds);
    pedigree = rename_pedigree mapping;
    view_cache = None;
  }

(** [dcompose outer inner]: [outer] is closer to the source (same
    orientation as {!Esm_lens.Lens.compose}).  View deltas are first
    translated through [inner] against the intermediate view, then
    through [outer] against the source. *)
let dcompose (outer : dlens) (inner : dlens) : dlens =
  {
    lens = Lens.compose outer.lens inner.lens;
    translate =
      (fun source vds ->
        outer.translate source
          (inner.translate (Lens.get outer.lens source) vds));
    pedigree =
      (* composing with the identity base adds nothing to the
         provenance, so keep pipelines flat *)
      (match (outer.pedigree, inner.pedigree) with
      | Esm_core.Pedigree.Identity, p | p, Esm_core.Pedigree.Identity -> p
      | po, pi -> Esm_core.Pedigree.Dcompose (po, pi));
    view_cache = None;
  }

(** Pack a delta pipeline as a pedigreed entangled state monad: the A
    side is the source table, the B side the view.  With [delta] (the
    default), [set_b] actually executes the incremental path — the new
    view is diffed against the current one and pushed through
    {!put_delta} — and the pedigree records {!Esm_core.Pedigree.Delta_of}
    over the combinator pipeline; with [~delta:false] the plain full-put
    lens is packed under the pipeline pedigree. *)
let packed_of_dlens ?(delta = true) ~(init : Table.t) (dl : dlens) :
    (Table.t, Table.t) Esm_core.Concrete.packed =
  let module C = Esm_core.Concrete in
  let base = C.of_lens dl.lens in
  let bx =
    if not delta then base
    else
      {
        base with
        C.set_b =
          (fun view source ->
            let cur = Lens.get dl.lens source in
            (* removals precede additions, as in [Dml.delta] *)
            let removes =
              Table.fold
                (fun acc r ->
                  if Table.mem view r then acc else Row_delta.Remove r :: acc)
                [] cur
            in
            let adds =
              Table.fold
                (fun acc r ->
                  if Table.mem cur r then acc else Row_delta.Add r :: acc)
                [] view
            in
            put_delta dl source (List.rev_append removes (List.rev adds)));
      }
  in
  C.pack_pedigreed
    ~pedigree:
      (if delta then Esm_core.Pedigree.Delta_of dl.pedigree else dl.pedigree)
    ~bx ~init ~eq_state:Table.equal

(* ------------------------------------------------------------------ *)
(* Delta join                                                          *)
(* ------------------------------------------------------------------ *)

(** A delta-capable join: the whole-view {!join} lens plus a translation
    of view deltas into (left, right) source delta pairs.  The source is
    a table {e pair}, so the join does not fit the single-table {!dlens}
    shape. *)
type djoin = {
  jlens : (Table.t * Table.t, Table.t) Esm_lens.Lens.t;
  jtranslate :
    Table.t * Table.t ->
    Row_delta.t list ->
    Row_delta.t list * Row_delta.t list;
  jpedigree : Esm_core.Pedigree.t;
      (** {!join_pedigree} of the two schemas and any declared right-side
          FDs. *)
}

let djoin ?(right_fds : Fd.t list = []) ~(left : Schema.t)
    ~(right : Schema.t) () : djoin =
  let plan = join_plan ~left ~right in
  let proj indices (r : Row.t) = Array.map (fun i -> r.(i)) indices in
  let jtranslate ((l, r) : Table.t * Table.t) (deltas : Row_delta.t list) :
      Row_delta.t list * Row_delta.t list =
    Esm_core.Chaos.point "rlens.djoin.translate";
    (* The checked memo: a corrupt index raises [Index] and
       [put_delta_join] degrades to the full put. *)
    let right_by_key = Table.key_index_checked r plan.right_key_indices in
    (* Left rows grouped by shared key — the view rows for a key are
       exactly these joined against the key's (unique) right partner. *)
    let left_by_key : (Value.t list, Row.t list) Hashtbl.t =
      Hashtbl.create (max 16 (Table.cardinality l))
    in
    Table.iter
      (fun row ->
        let k = Table.key_of_row plan.left_key_indices row in
        Hashtbl.replace left_by_key k
          (row :: Option.value ~default:[] (Hashtbl.find_opt left_by_key k)))
      l;
    let join_row lrow rho =
      Array.append lrow (proj plan.right_rest_of_right rho)
    in
    (* Current view rows per touched key, materialised lazily; local to
       this translation so the table-owned memo is never mutated. *)
    let vcur : (Value.t list, Row.t list) Hashtbl.t = Hashtbl.create 16 in
    let view_rows k =
      match Hashtbl.find_opt vcur k with
      | Some rows -> rows
      | None ->
          let rows =
            match Hashtbl.find_opt right_by_key k with
            | None -> []
            | Some rho ->
                List.map
                  (fun lrow -> join_row lrow rho)
                  (Option.value ~default:[] (Hashtbl.find_opt left_by_key k))
          in
          Hashtbl.replace vcur k rows;
          rows
    in
    let check v =
      if not (Row.conforms plan.join_schema v) then
        Lens.shape_errorf
          "join lens: delta row %s does not conform to the join schema %s"
          (Row.to_string v)
          (Schema.to_string plan.join_schema)
    in
    let dl = ref [] in
    let touched = ref [] in
    List.iter
      (fun d ->
        match d with
        | Row_delta.Add v ->
            check v;
            let k = Table.key_of_row plan.join_key_indices v in
            let rows = view_rows k in
            if not (List.exists (fun w -> Row.compare w v = 0) rows) then (
              Hashtbl.replace vcur k (v :: rows);
              touched := k :: !touched;
              (* set semantics make this a no-op if the left row is
                 already present (another view row shares it) *)
              dl := Row_delta.Add (proj plan.left_of_view v) :: !dl)
        | Row_delta.Remove v ->
            check v;
            let k = Table.key_of_row plan.join_key_indices v in
            let rows = view_rows k in
            if List.exists (fun w -> Row.compare w v = 0) rows then (
              let rows' =
                List.filter (fun w -> Row.compare w v <> 0) rows
              in
              Hashtbl.replace vcur k rows';
              touched := k :: !touched;
              let lam = proj plan.left_of_view v in
              (* only drop the left row if no remaining view row still
                 projects to it (possible mid-burst, before the
                 key-determines-right-row invariant is restored) *)
              if
                not
                  (List.exists
                     (fun w ->
                       Row.compare (proj plan.left_of_view w) lam = 0)
                     rows')
              then dl := Row_delta.Remove lam :: !dl))
      deltas;
    (* Right deltas, per touched key, from the initial-vs-final view:
       a key present in the final view dictates its right rows (the
       view's right projections); a key absent from the final view keeps
       the original right row untouched (it is merely unjoined). *)
    let dr = ref [] in
    let seen = Hashtbl.create 16 in
    List.iter
      (fun k ->
        if not (Hashtbl.mem seen k) then (
          Hashtbl.replace seen k ();
          let orig = Hashtbl.find_opt right_by_key k in
          let final_rows = view_rows k in
          let final_rhos =
            List.sort_uniq Row.compare
              (List.map (proj plan.right_of_view) final_rows)
          in
          let wanted =
            if final_rows = [] then Option.to_list orig else final_rhos
          in
          (match orig with
          | Some rho
            when not
                   (List.exists (fun w -> Row.compare w rho = 0) wanted) ->
              dr := Row_delta.Remove rho :: !dr
          | _ -> ());
          List.iter
            (fun rho ->
              match orig with
              | Some rho0 when Row.compare rho0 rho = 0 -> ()
              | _ -> dr := Row_delta.Add rho :: !dr)
            wanted))
      (List.rev !touched);
    (List.rev !dl, List.rev !dr)
  in
  {
    jlens = join ~left ~right;
    jtranslate;
    jpedigree =
      Esm_core.Pedigree.Delta_of (join_pedigree ~right_fds ~left ~right ());
  }

let put_delta_join (j : djoin) ((l, r) : Table.t * Table.t)
    (deltas : Row_delta.t list) : Table.t * Table.t =
  match
    let dl, dr = j.jtranslate (l, r) deltas in
    (Row_delta.apply_all l dl, Row_delta.apply_all r dr)
  with
  | result -> result
  | exception e when Esm_core.Error.degradable_exn e ->
      (* Same degradation policy as {!put_delta}: distrust the memoized
         indexes, then recompute with the full join put oracle. *)
      Esm_core.Chaos.note_fallback "rlens.put_delta_join";
      ignore (Table.revalidate_indexes l);
      ignore (Table.revalidate_indexes r);
      Esm_core.Chaos.protected (fun () ->
          let view = Lens.get j.jlens (l, r) in
          Lens.put j.jlens (l, r) (Row_delta.apply_all view deltas))
