(** Tables with set semantics: rows are kept in a sorted, deduplicated
    array, so structural equality of tables is relational equality and
    membership is a binary search.

    Two performance structures live behind the pure interface:

    - the sorted array itself gives O(log n) {!mem}/{!delete} and
      O(n + m) merge-based set operations ({!union}/{!inter}/{!diff})
      with no re-sort;
    - a lazily-built, memoized {e key index} ({!key_index}) maps a key
      tuple (values at a fixed list of column positions) to its row, so
      key-directed lookups — the heart of the relational-lens [put]
      directions and the delta-propagation path — are O(1) after the
      first use.

    Tables are immutable values; the index cache is invisible mutation
    (build-once memoization), safe to share across readers. *)

exception Table_error of string

let errorf fmt =
  Esm_core.Error.raisef Esm_core.Error.Table
    ~wrap:(fun m -> Table_error m)
    fmt

let () =
  Esm_core.Error.register_classifier (function
    | Table_error m -> Some (Esm_core.Error.of_message Esm_core.Error.Table m)
    | _ -> None)

type t = {
  schema : Schema.t;
  rows : Row.t array; (* sorted by Row.compare, distinct *)
  mutable key_indexes : (int list * (Value.t list, Row.t) Hashtbl.t) list;
      (* memoized key-tuple indexes, keyed by the column positions *)
  mutable hash_acc : int option;
      (* memoized xor of per-row structural hashes — [None] until first
         use, maintained incrementally across insert/delete (xor is
         history-independent, so order does not matter), rebuilt from
         the rows through the incr.hash chaos gate like the key-index
         memo is rebuilt by the validate-and-rebuild policy *)
}

let make_sorted schema rows = { schema; rows; key_indexes = []; hash_acc = None }

let normalise rows = Array.of_list (List.sort_uniq Row.compare rows)

let check_conforms what (schema : Schema.t) (r : Row.t) =
  if not (Row.conforms schema r) then
    errorf "%s: row %s does not conform to schema %s" what (Row.to_string r)
      (Schema.to_string schema)

let of_rows (schema : Schema.t) (rows : Row.t list) : t =
  List.iter (check_conforms "of_rows" schema) rows;
  make_sorted schema (normalise rows)

(** Trusted constructor: [rows] must conform to [schema], be sorted by
    {!Row.compare} and contain no duplicates; the array is owned by the
    table afterwards.  Used by the algebra and the lens/delta hot paths
    to skip re-validation and re-sorting. *)
let of_sorted_array_unchecked (schema : Schema.t) (rows : Row.t array) : t =
  make_sorted schema rows

(** Build from value lists (convenience for examples and tests). *)
let of_lists (schema : Schema.t) (rows : Value.t list list) : t =
  of_rows schema (List.map Row.of_list rows)

let empty (schema : Schema.t) : t = make_sorted schema [||]
let schema t = t.schema
let rows t = Array.to_list t.rows

let row_array t = t.rows
(* Callers must treat the returned array as read-only. *)

let cardinality t = Array.length t.rows
let iter f t = Array.iter f t.rows
let fold f init t = Array.fold_left f init t.rows
let for_all p t = Array.for_all p t.rows
let exists p t = Array.exists p t.rows

(* Binary search over the sorted row array: [Ok i] = found at [i],
   [Error i] = absent, belongs at position [i]. *)
let search (rows : Row.t array) (r : Row.t) : (int, int) result =
  let rec go lo hi =
    if lo >= hi then Error lo
    else
      let mid = (lo + hi) / 2 in
      let c = Row.compare r rows.(mid) in
      if c = 0 then Ok mid else if c < 0 then go lo mid else go (mid + 1) hi
  in
  go 0 (Array.length rows)

let mem t r = match search t.rows r with Ok _ -> true | Error _ -> false

(* The per-row structural hash feeding the table hash: must be the one
   function everywhere — the incremental xor maintenance and the
   ground-truth rebuild have to agree bit for bit. *)
let row_hash (r : Row.t) : int = Esm_core.Shash.of_value r

(* Carry a parent's memoized hash accumulator across a one-row edit:
   xor'ing the touched row's hash in (insert) or out (delete) is exact
   because the accumulator is order-independent.  A parent without a
   memoized hash passes nothing on (lazy, like the key indexes). *)
let inherit_hash (parent : t) (child : t) (r : Row.t) : t =
  (match parent.hash_acc with
  | Some acc -> child.hash_acc <- Some (acc lxor row_hash r)
  | None -> ());
  child

let insert t r =
  check_conforms "insert" t.schema r;
  match search t.rows r with
  | Ok _ -> t (* set semantics: already present *)
  | Error i ->
      let n = Array.length t.rows in
      let rows = Array.make (n + 1) r in
      Array.blit t.rows 0 rows 0 i;
      Array.blit t.rows i rows (i + 1) (n - i);
      inherit_hash t (make_sorted t.schema rows) r

let delete t r =
  match search t.rows r with
  | Error _ -> t
  | Ok i ->
      let n = Array.length t.rows in
      let rows = Array.make (n - 1) t.rows.(0) in
      Array.blit t.rows 0 rows 0 i;
      Array.blit t.rows (i + 1) rows i (n - i - 1);
      inherit_hash t (make_sorted t.schema rows) r

let filter (keep : Row.t -> bool) t =
  (* filtering preserves sortedness and distinctness *)
  make_sorted t.schema
    (Array.of_seq (Seq.filter keep (Array.to_seq t.rows)))

(** Map a per-row transformation; the result is renormalised under the new
    schema. *)
let map (schema' : Schema.t) (f : Row.t -> Row.t) t : t =
  of_rows schema' (List.map f (rows t))

(* ------------------------------------------------------------------ *)
(* Merge-based set operations (both sides already sorted + distinct)   *)
(* ------------------------------------------------------------------ *)

let check_same_schema op t1 t2 =
  if not (Schema.equal t1.schema t2.schema) then
    errorf "%s: schema mismatch: %s vs %s" op
      (Schema.to_string t1.schema)
      (Schema.to_string t2.schema)

let merge_walk ~(keep_left_only : bool) ~(keep_both : bool)
    ~(keep_right_only : bool) (r1 : Row.t array) (r2 : Row.t array) :
    Row.t array =
  let n1 = Array.length r1 and n2 = Array.length r2 in
  let out = ref [] and k = ref 0 in
  let push r =
    out := r :: !out;
    incr k
  in
  let i = ref 0 and j = ref 0 in
  while !i < n1 && !j < n2 do
    let c = Row.compare r1.(!i) r2.(!j) in
    if c < 0 then (
      if keep_left_only then push r1.(!i);
      incr i)
    else if c > 0 then (
      if keep_right_only then push r2.(!j);
      incr j)
    else (
      if keep_both then push r1.(!i);
      incr i;
      incr j)
  done;
  if keep_left_only then
    while !i < n1 do
      push r1.(!i);
      incr i
    done;
  if keep_right_only then
    while !j < n2 do
      push r2.(!j);
      incr j
    done;
  let arr = Array.make !k (Row.of_list []) in
  (* !out is in reverse order *)
  List.iteri (fun idx r -> arr.(!k - 1 - idx) <- r) !out;
  arr

let union (t1 : t) (t2 : t) : t =
  check_same_schema "union" t1 t2;
  if Array.length t2.rows = 0 then t1
  else if Array.length t1.rows = 0 then t2
  else
    make_sorted t1.schema
      (merge_walk ~keep_left_only:true ~keep_both:true ~keep_right_only:true
         t1.rows t2.rows)

let inter (t1 : t) (t2 : t) : t =
  check_same_schema "inter" t1 t2;
  make_sorted t1.schema
    (merge_walk ~keep_left_only:false ~keep_both:true ~keep_right_only:false
       t1.rows t2.rows)

let diff (t1 : t) (t2 : t) : t =
  check_same_schema "diff" t1 t2;
  if Array.length t2.rows = 0 then t1
  else
    make_sorted t1.schema
      (merge_walk ~keep_left_only:true ~keep_both:false ~keep_right_only:false
         t1.rows t2.rows)

(* ------------------------------------------------------------------ *)
(* Key indexes                                                         *)
(* ------------------------------------------------------------------ *)

let key_of_row (key : int list) (r : Row.t) : Value.t list =
  List.map (fun i -> r.(i)) key

(** The memoized index from key tuple (values at positions [key]) to
    row.  Built on first use, O(n); later calls on the same table and
    key are O(1).  If the key does not functionally determine the row,
    later rows win (callers enforce their own FD preconditions). *)
let key_index (t : t) (key : int list) : (Value.t list, Row.t) Hashtbl.t =
  match List.assoc_opt key t.key_indexes with
  | Some idx -> idx
  | None ->
      Esm_core.Chaos.point "table.key_index";
      let idx = Hashtbl.create (max 16 (Array.length t.rows)) in
      Array.iter (fun r -> Hashtbl.replace idx (key_of_row key r) r) t.rows;
      t.key_indexes <- (key, idx) :: t.key_indexes;
      idx

(** Forget every memoized index (they rebuild on next use).  The table
    value itself is untouched. *)
let drop_indexes (t : t) : unit = t.key_indexes <- []

(** Full consistency check of every memoized index against the rows:
    every row's key tuple must be present, and every binding must map a
    key [k] to a member row whose key is [k].  (When the key does not
    functionally determine rows, several rows share a key and the index
    legitimately holds just one of them — membership, not identity, is
    the invariant.)  O(n) per index. *)
let validate_indexes (t : t) : bool =
  let row_mem r =
    let rec bsearch lo hi =
      if lo >= hi then false
      else
        let mid = (lo + hi) / 2 in
        let c = Row.compare r t.rows.(mid) in
        if c = 0 then true
        else if c < 0 then bsearch lo mid
        else bsearch (mid + 1) hi
    in
    bsearch 0 (Array.length t.rows)
  in
  let index_ok (key, idx) =
    Array.for_all (fun r -> Hashtbl.mem idx (key_of_row key r)) t.rows
    && Hashtbl.fold
         (fun k r ok -> ok && row_mem r && key_of_row key r = k)
         idx true
  in
  List.for_all index_ok t.key_indexes

(** Distrust-and-check the memo after a failed transaction: if any
    memoized index fails {!validate_indexes}, drop them all (to be
    rebuilt lazily from the rows).  Returns [true] iff the memo was
    healthy. *)
let revalidate_indexes (t : t) : bool =
  if validate_indexes t then true
  else begin
    drop_indexes t;
    false
  end

(** {!key_index} plus an O(1) self-check on the memo — the cheap sanity
    gate the delta fast paths use before trusting a cached index.  A
    corrupt memo raises an {!Esm_core.Error.Index} error, which the fast
    paths treat as "fall back to the full oracle". *)
let key_index_checked (t : t) (key : int list) :
    (Value.t list, Row.t) Hashtbl.t =
  let idx = key_index t key in
  let n = Array.length t.rows in
  let plausible =
    Hashtbl.length idx <= n
    && (n = 0 || Hashtbl.length idx > 0)
    && (n = 0
       ||
       let r0 = t.rows.(0) in
       match Hashtbl.find_opt idx (key_of_row key r0) with
       | Some r -> key_of_row key r = key_of_row key r0
       | None -> false)
  in
  if plausible then idx
  else
    Esm_core.Error.raise_error Esm_core.Error.Index ~op:"table.key_index"
      "memoized index failed its self-check (%d bindings over %d rows)"
      (Hashtbl.length idx) n

let find_by_key (t : t) ~(key : int list) (k : Value.t list) : Row.t option =
  Hashtbl.find_opt (key_index t key) k

let mem_key (t : t) ~(key : int list) (k : Value.t list) : bool =
  Hashtbl.mem (key_index t key) k

(* ------------------------------------------------------------------ *)
(* Structural hash, equality and printing                              *)
(* ------------------------------------------------------------------ *)

(* The memoized accumulator, read through the incr.hash chaos gate: an
   injected fault distrusts the cache and rebuilds from the rows (under
   [protected]), re-caching the ground truth — the same
   invalidate-and-rebuild policy as {!revalidate_indexes}. *)
let hash_acc (t : t) : int =
  Esm_core.Shash.trusted ~cached:t.hash_acc ~recompute:(fun () ->
      let acc = Array.fold_left (fun h r -> h lxor row_hash r) 0 t.rows in
      t.hash_acc <- Some acc;
      acc)

(** The structural hash: O(1) once memoized (and maintained across
    {!insert}/{!delete}), O(n) to build.  Equal tables hash equal;
    unequal hashes certify unequal tables — the rejection direction the
    caches rely on.  Hash equality proves nothing and must be verified
    with {!equal}. *)
let hash (t : t) : int =
  Esm_core.Shash.combine
    (Esm_core.Shash.of_value (Schema.columns t.schema))
    (Esm_core.Shash.combine (Array.length t.rows) (hash_acc t))

(* O(1) certain-inequality: when both sides already memoized their
   accumulator and the accumulators differ, the row sets differ.  The
   rejection trusts cached hashes, so it too passes through the
   incr.hash gate — a fault there just declines to reject (degrading to
   the row-wise comparison), never answers wrongly. *)
let hashes_reject (t1 : t) (t2 : t) : bool =
  match (t1.hash_acc, t2.hash_acc) with
  | Some h1, Some h2 when h1 <> h2 -> (
      match Esm_core.Chaos.point Esm_core.Shash.site with
      | () -> true
      | exception exn when Esm_core.Error.degradable_exn exn ->
          Esm_core.Chaos.note_fallback Esm_core.Shash.site;
          false)
  | _ -> false

let equal t1 t2 =
  t1 == t2
  || Schema.equal t1.schema t2.schema
     && (t1.rows == t2.rows
        || Array.length t1.rows = Array.length t2.rows
           && (not (hashes_reject t1 t2))
           && (let n = Array.length t1.rows in
               let rec go i =
                 i >= n || (Row.equal t1.rows.(i) t2.rows.(i) && go (i + 1))
               in
               go 0))

let pp fmt t =
  let widths =
    List.mapi
      (fun i (n, _) ->
        Array.fold_left
          (fun w r -> max w (String.length (Value.to_string r.(i))))
          (String.length n) t.rows)
      (Schema.columns t.schema)
  in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let hline =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "+"
  in
  Format.fprintf fmt "%s@\n" hline;
  Format.fprintf fmt "|%s|@\n"
    (String.concat "|"
       (List.map2
          (fun (n, _) w -> " " ^ pad n w ^ " ")
          (Schema.columns t.schema) widths));
  Format.fprintf fmt "%s@\n" hline;
  Array.iter
    (fun r ->
      Format.fprintf fmt "|%s|@\n"
        (String.concat "|"
           (List.mapi
              (fun i w -> " " ^ pad (Value.to_string r.(i)) w ^ " ")
              widths)))
    t.rows;
  Format.fprintf fmt "%s" hline

let to_string t = Format.asprintf "%a" pp t
