(** Relational lenses: asymmetric lenses between tables, in the spirit of
    Bohannon, Pierce & Vaughan's "Relational lenses" (PODS 2006).
    Composing them with {!Esm_core.Of_lens} gives an entangled state
    monad whose A side is the stored table and whose B side is the view.

    Well-behavedness caveats (as in the relational-lenses literature) are
    documented per lens; the property suites in [test/test_rlens.ml]
    generate sources and views inside those domains. *)

(** {1 Combinator pedigrees}

    Construction provenance for the relational layer, feeding
    {!Esm_analysis.Law_infer}'s per-combinator lemmas.  Each lens
    constructor has a companion pedigree so both the whole-view and the
    delta pipelines carry lemma-backed provenance instead of
    [Opaque]. *)

val select_pedigree : ?key:string list -> Pred.t -> Esm_core.Pedigree.t
(** [Select { pred; key_preserving }]; [key_preserving] holds when [key]
    is supplied and the predicate reads only key columns (view
    membership decided by the key ⇒ (PutPut) is kept). *)

val project_pedigree :
  keep:string list -> key:string list -> Schema.t -> Esm_core.Pedigree.t
(** [Project { keep; key; lossless }]; lossless iff every source column
    is kept. *)

val rename_pedigree : (string * string) list -> Esm_core.Pedigree.t

val join_pedigree :
  ?right_fds:Fd.t list ->
  left:Schema.t ->
  right:Schema.t ->
  unit ->
  Esm_core.Pedigree.t
(** [Join { on; fd_proven }]; the undo law is claimed only when a
    declared right-table FD proves the shared columns determine the rest
    of the right row. *)

val select : Pred.t -> (Table.t, Table.t) Esm_lens.Lens.t
(** The view is the subtable satisfying the predicate.  [put] keeps the
    non-matching source rows and replaces the matching ones by the view;
    it raises {!Esm_lens.Lens.Shape_error} if a view row violates the
    predicate.  Very well-behaved on predicate-respecting views. *)

val project :
  keep:string list -> key:string list -> Schema.t ->
  (Table.t, Table.t) Esm_lens.Lens.t
(** The view keeps columns [keep] (in order); [key ⊆ keep] identifies
    rows.  [put] recovers each dropped column from the old source row
    with the same key (hashtable-indexed), defaulting for fresh keys.
    Well-behaved on sources satisfying the FD [key -> dropped]. *)

val rename : (string * string) list -> (Table.t, Table.t) Esm_lens.Lens.t
(** Bijective column renaming; an iso, hence very well-behaved. *)

val drop :
  string -> key:string list -> Schema.t -> (Table.t, Table.t) Esm_lens.Lens.t
(** Drop a single column (projection keeping the rest). *)

val join :
  left:Schema.t -> right:Schema.t ->
  (Table.t * Table.t, Table.t) Esm_lens.Lens.t
(** The view is the natural join of the two stored tables.  [put]
    replaces the left table by the view's left projection and updates
    the right table by key, keeping unjoined right rows.  Well-behaved
    when the shared columns key the right table and every left row
    joins. *)

(** {1 Delta propagation}

    The incremental [put] path: a view edit described as a {!Row_delta}
    list is translated into source deltas instead of rebuilding the
    source table.  [translate source view_deltas] assumes the deltas
    describe an edit of [get lens source]; under that precondition
    [put_delta l s ds] is relationally equal to
    [put l.lens s (Row_delta.apply_all (get l.lens s) ds)] — the oracle
    property checked in [test/test_row_delta.ml]. *)

type dlens = {
  lens : (Table.t, Table.t) Esm_lens.Lens.t;
  translate : Table.t -> Row_delta.t list -> Row_delta.t list;
  pedigree : Esm_core.Pedigree.t;
      (** Combinator-by-combinator provenance of the pipeline. *)
  mutable view_cache : (Table.t * Table.t) option;
      (** {!get_memo}'s single-entry (source, view) cache — benign
          mutation, owned by the dlens. *)
}

val get_memo : dlens -> Table.t -> Table.t
(** Memoized [Lens.get]: returns the cached view when the source is
    unchanged — O(1) on a physical witness match, structural hash
    rejection plus {!Table.equal} verification otherwise (a hash match
    is never trusted unverified).  An injected fault at the
    ["incr.hash"] chaos site bypasses the cache and rematerializes in
    full, so a corrupted cache costs work, never staleness.  Reports to
    the ["rlens.view"] {!Esm_incr.Stats} counter. *)

val put_delta : dlens -> Table.t -> Row_delta.t list -> Table.t
(** Apply view deltas through the translated source deltas.  On a
    {e degradable} failure ({!Esm_core.Error.is_degradable}: an injected
    fault or an index self-check failure) the source's memoized indexes
    are revalidated and the answer is recomputed with the full
    [get]/[put] oracle — graceful degradation rather than error.
    Genuine shape errors still raise. *)

val did : dlens
(** The identity dlens (a pipeline's base table). *)

val dselect : ?key:string list -> Pred.t -> dlens
(** Additions must satisfy the predicate ({!Esm_lens.Lens.Shape_error}
    otherwise, as in the full [put]); removals of rows outside the view
    are dropped as no-ops.  [key] feeds {!select_pedigree}'s
    key-preservation analysis. *)

val dproject : keep:string list -> key:string list -> Schema.t -> dlens
(** View deltas restore to source deltas through the source's memoized
    key index (dropped columns recovered by key, defaults for fresh
    keys). *)

val drename : (string * string) list -> dlens
(** Rows are untouched by renaming; deltas pass through unchanged. *)

val dcompose : dlens -> dlens -> dlens
(** [dcompose outer inner] with [outer] closer to the source (same
    orientation as {!Esm_lens.Lens.compose}).  Pedigrees compose with
    {!Esm_core.Pedigree.Dcompose} (identity bases are flattened away). *)

val packed_of_dlens :
  ?delta:bool -> init:Table.t -> dlens -> (Table.t, Table.t) Esm_core.Concrete.packed
(** Pack the pipeline as a pedigreed entangled state monad (A = source
    table, B = view).  With [delta] (default), [set_b] diffs the new
    view against the current one and runs {!put_delta} — the packed
    pedigree is [Delta_of] the pipeline's; with [~delta:false] the plain
    full-put lens is packed. *)

(** {1 Delta join}

    The incremental path for joined views: the source is a table pair,
    so the join does not fit the single-table {!dlens} shape. *)

type djoin = {
  jlens : (Table.t * Table.t, Table.t) Esm_lens.Lens.t;
  jtranslate :
    Table.t * Table.t ->
    Row_delta.t list ->
    Row_delta.t list * Row_delta.t list;
  jpedigree : Esm_core.Pedigree.t;
      (** [Delta_of] over {!join_pedigree} of the two schemas and any
          declared right-side FDs. *)
}

val djoin : ?right_fds:Fd.t list -> left:Schema.t -> right:Schema.t -> unit -> djoin
(** Translate view deltas over the natural join into (left, right)
    source delta pairs.  A removed view row drops its left projection
    (the right row is kept — either still dictated by surviving view
    rows with the same key, or merely unjoined); an added view row adds
    its left projection and updates the key's right row to the view's
    right projection.  [jtranslate (l, r) ds] assumes the deltas
    describe an edit of [get (join ...) (l, r)]; under that precondition
    {!put_delta_join} agrees with the full [put] on the edited view —
    the oracle property checked in [test/test_row_delta.ml]. *)

val put_delta_join :
  djoin -> Table.t * Table.t -> Row_delta.t list -> Table.t * Table.t
(** Apply view deltas through the translated source delta pairs, with
    the same graceful degradation as {!put_delta}: on a degradable
    failure both tables' memoized indexes are revalidated and the answer
    is recomputed with the full join [get]/[put] oracle. *)
