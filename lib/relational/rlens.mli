(** Relational lenses: asymmetric lenses between tables, in the spirit of
    Bohannon, Pierce & Vaughan's "Relational lenses" (PODS 2006).
    Composing them with {!Esm_core.Of_lens} gives an entangled state
    monad whose A side is the stored table and whose B side is the view.

    Well-behavedness caveats (as in the relational-lenses literature) are
    documented per lens; the property suites in [test/test_rlens.ml]
    generate sources and views inside those domains. *)

val select : Pred.t -> (Table.t, Table.t) Esm_lens.Lens.t
(** The view is the subtable satisfying the predicate.  [put] keeps the
    non-matching source rows and replaces the matching ones by the view;
    it raises {!Esm_lens.Lens.Shape_error} if a view row violates the
    predicate.  Very well-behaved on predicate-respecting views. *)

val project :
  keep:string list -> key:string list -> Schema.t ->
  (Table.t, Table.t) Esm_lens.Lens.t
(** The view keeps columns [keep] (in order); [key ⊆ keep] identifies
    rows.  [put] recovers each dropped column from the old source row
    with the same key (hashtable-indexed), defaulting for fresh keys.
    Well-behaved on sources satisfying the FD [key -> dropped]. *)

val rename : (string * string) list -> (Table.t, Table.t) Esm_lens.Lens.t
(** Bijective column renaming; an iso, hence very well-behaved. *)

val drop :
  string -> key:string list -> Schema.t -> (Table.t, Table.t) Esm_lens.Lens.t
(** Drop a single column (projection keeping the rest). *)

val join :
  left:Schema.t -> right:Schema.t ->
  (Table.t * Table.t, Table.t) Esm_lens.Lens.t
(** The view is the natural join of the two stored tables.  [put]
    replaces the left table by the view's left projection and updates
    the right table by key, keeping unjoined right rows.  Well-behaved
    when the shared columns key the right table and every left row
    joins. *)

(** {1 Delta propagation}

    The incremental [put] path: a view edit described as a {!Row_delta}
    list is translated into source deltas instead of rebuilding the
    source table.  [translate source view_deltas] assumes the deltas
    describe an edit of [get lens source]; under that precondition
    [put_delta l s ds] is relationally equal to
    [put l.lens s (Row_delta.apply_all (get l.lens s) ds)] — the oracle
    property checked in [test/test_row_delta.ml]. *)

type dlens = {
  lens : (Table.t, Table.t) Esm_lens.Lens.t;
  translate : Table.t -> Row_delta.t list -> Row_delta.t list;
}

val put_delta : dlens -> Table.t -> Row_delta.t list -> Table.t
(** Apply view deltas through the translated source deltas.  On a
    {e degradable} failure ({!Esm_core.Error.is_degradable}: an injected
    fault or an index self-check failure) the source's memoized indexes
    are revalidated and the answer is recomputed with the full
    [get]/[put] oracle — graceful degradation rather than error.
    Genuine shape errors still raise. *)

val did : dlens
(** The identity dlens (a pipeline's base table). *)

val dselect : Pred.t -> dlens
(** Additions must satisfy the predicate ({!Esm_lens.Lens.Shape_error}
    otherwise, as in the full [put]); removals of rows outside the view
    are dropped as no-ops. *)

val dproject : keep:string list -> key:string list -> Schema.t -> dlens
(** View deltas restore to source deltas through the source's memoized
    key index (dropped columns recovered by key, defaults for fresh
    keys). *)

val drename : (string * string) list -> dlens
(** Rows are untouched by renaming; deltas pass through unchanged. *)

val dcompose : dlens -> dlens -> dlens
(** [dcompose outer inner] with [outer] closer to the source (same
    orientation as {!Esm_lens.Lens.compose}). *)

(** {1 Delta join}

    The incremental path for joined views: the source is a table pair,
    so the join does not fit the single-table {!dlens} shape. *)

type djoin = {
  jlens : (Table.t * Table.t, Table.t) Esm_lens.Lens.t;
  jtranslate :
    Table.t * Table.t ->
    Row_delta.t list ->
    Row_delta.t list * Row_delta.t list;
}

val djoin : left:Schema.t -> right:Schema.t -> djoin
(** Translate view deltas over the natural join into (left, right)
    source delta pairs.  A removed view row drops its left projection
    (the right row is kept — either still dictated by surviving view
    rows with the same key, or merely unjoined); an added view row adds
    its left projection and updates the key's right row to the view's
    right projection.  [jtranslate (l, r) ds] assumes the deltas
    describe an edit of [get (join ...) (l, r)]; under that precondition
    {!put_delta_join} agrees with the full [put] on the edited view —
    the oracle property checked in [test/test_row_delta.ml]. *)

val put_delta_join :
  djoin -> Table.t * Table.t -> Row_delta.t list -> Table.t * Table.t
(** Apply view deltas through the translated source delta pairs, with
    the same graceful degradation as {!put_delta}: on a degradable
    failure both tables' memoized indexes are revalidated and the answer
    is recomputed with the full join [get]/[put] oracle. *)
