(** The shared positioned lexer for the query surface syntax (see the
    interface).  Deliberately exception-free: both parsers build their
    own typed errors from the returned positions. *)

type pos = { line : int; col : int }

let pos_string p = Printf.sprintf "line %d, column %d" p.line p.col

type token =
  | Ident of string
  | Int of int
  | Str of string
  | Pipe
  | Lparen
  | Rparen
  | Comma
  | Eq
  | Lt
  | Le
  | Semi
  | Plus
  | Minus

type t = { tok : token; pos : pos }

let describe = function
  | Ident s -> Printf.sprintf "'%s'" s
  | Int i -> Printf.sprintf "integer %d" i
  | Str _ -> "a string literal"
  | Pipe -> "'|'"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Comma -> "','"
  | Eq -> "'='"
  | Lt -> "'<'"
  | Le -> "'<='"
  | Semi -> "';'"
  | Plus -> "'+'"
  | Minus -> "'-'"

type error = { at : pos; what : string }

let is_digit c = c >= '0' && c <= '9'

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || is_digit c || c = '_'

let tokenize (input : string) : (t list * pos, error) result =
  let n = String.length input in
  (* [line]/[bol]: current line number and the offset of its first
     character, so a column is [i - bol + 1]. *)
  let rec go i line bol acc =
    if i >= n then Ok (List.rev acc, { line; col = n - bol + 1 })
    else
      let pos = { line; col = i - bol + 1 } in
      let one tok = go (i + 1) line bol ({ tok; pos } :: acc) in
      match input.[i] with
      | '\n' -> go (i + 1) (line + 1) (i + 1) acc
      | ' ' | '\t' | '\r' -> go (i + 1) line bol acc
      | '#' ->
          (* comment to end of line — the ESMQL surface allows them and
             they are harmless in pipeline expressions *)
          let rec skip j = if j < n && input.[j] <> '\n' then skip (j + 1) else j in
          go (skip i) line bol acc
      | '|' -> one Pipe
      | '(' -> one Lparen
      | ')' -> one Rparen
      | ',' -> one Comma
      | ';' -> one Semi
      | '+' -> one Plus
      | '=' -> one Eq
      | '<' ->
          if i + 1 < n && input.[i + 1] = '=' then
            go (i + 2) line bol ({ tok = Le; pos } :: acc)
          else one Lt
      | '"' ->
          let rec scan j buf =
            if j >= n then Error { at = pos; what = "unterminated string literal" }
            else if input.[j] = '"' then Ok (j + 1, Buffer.contents buf)
            else if input.[j] = '\n' then
              Error { at = pos; what = "unterminated string literal" }
            else begin
              Buffer.add_char buf input.[j];
              scan (j + 1) buf
            end
          in
          (match scan (i + 1) (Buffer.create 8) with
          | Error e -> Error e
          | Ok (j, s) -> go j line bol ({ tok = Str s; pos } :: acc))
      | '-' when i + 1 < n && is_digit input.[i + 1] ->
          let rec scan j = if j < n && is_digit input.[j] then scan (j + 1) else j in
          let j = scan (i + 1) in
          int_token i j line bol pos acc
      | '-' -> one Minus
      | c when is_digit c ->
          let rec scan j = if j < n && is_digit input.[j] then scan (j + 1) else j in
          let j = scan i in
          int_token i j line bol pos acc
      | c when is_ident_char c ->
          let rec scan j = if j < n && is_ident_char input.[j] then scan (j + 1) else j in
          let j = scan i in
          go j line bol ({ tok = Ident (String.sub input i (j - i)); pos } :: acc)
      | c -> Error { at = pos; what = Printf.sprintf "unexpected character %C" c }
  and int_token i j line bol pos acc =
    match int_of_string_opt (String.sub input i (j - i)) with
    | Some v -> go j line bol ({ tok = Int v; pos } :: acc)
    | None -> Error { at = pos; what = "integer literal out of range" }
  in
  go 0 1 0 []
