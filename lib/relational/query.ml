(** A small pipeline query language over the relational substrate, with a
    parser and pretty-printer.  Gives the examples and the CLI a textual
    surface, and exercises the algebra end-to-end:

    {v
    employees | where dept = "Engineering" and salary < 70000
              | select id, name
              | rename name as who
    employees join depts
    (a union b) | where x <= 3
    v}

    Grammar (pipelines bind tighter than the infix set operators, which
    associate to the left):

    {v
    query := term (("union" | "diff" | "join" | "product") term)*
    term  := atom ("|" stage)*
    atom  := IDENT | "(" query ")"
    stage := "where" pred
           | "select" IDENT ("," IDENT)*
           | "rename" IDENT "as" IDENT ("," IDENT "as" IDENT)*
    pred  := conj ("or" conj)* ; conj := neg ("and" neg)*
    neg   := "not" neg | "(" pred ")" | expr ("=" | "<=" | "<") expr
    expr  := IDENT | INT | STRING | "true" | "false"
    v} *)

type t =
  | Base of string
  | Where of Pred.t * t
  | Project of string list * t
  | Rename of (string * string) list * t
  | Union of t * t
  | Diff of t * t
  | Join of t * t
  | Product of t * t

exception Parse_error of string

let parse_errorf fmt =
  Esm_core.Error.raisef Esm_core.Error.Parse
    ~wrap:(fun m -> Parse_error m)
    fmt

let () =
  Esm_core.Error.register_classifier (function
    | Parse_error m -> Some (Esm_core.Error.of_message Esm_core.Error.Parse m)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

(** Evaluate against an environment of named base tables. *)
let rec eval (env : string -> Table.t) : t -> Table.t = function
  | Base name -> env name
  | Where (p, q) -> Algebra.select p (eval env q)
  | Project (cols, q) -> Algebra.project cols (eval env q)
  | Rename (mapping, q) -> Algebra.rename mapping (eval env q)
  | Union (q1, q2) -> Algebra.union (eval env q1) (eval env q2)
  | Diff (q1, q2) -> Algebra.diff (eval env q1) (eval env q2)
  | Join (q1, q2) -> Algebra.join (eval env q1) (eval env q2)
  | Product (q1, q2) -> Algebra.product (eval env q1) (eval env q2)

(** Base tables referenced by the query. *)
let rec bases : t -> string list = function
  | Base name -> [ name ]
  | Where (_, q) | Project (_, q) | Rename (_, q) -> bases q
  | Union (q1, q2) | Diff (q1, q2) | Join (q1, q2) | Product (q1, q2) ->
      bases q1 @ bases q2

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let rec pp fmt = function
  | Base name -> Format.fprintf fmt "%s" name
  | Where (p, q) -> Format.fprintf fmt "%a | where %a" pp_term q pp_pred p
  | Project (cols, q) ->
      Format.fprintf fmt "%a | select %s" pp_term q (String.concat ", " cols)
  | Rename (mapping, q) ->
      Format.fprintf fmt "%a | rename %s" pp_term q
        (String.concat ", "
           (List.map (fun (a, b) -> a ^ " as " ^ b) mapping))
  | Union (q1, q2) -> Format.fprintf fmt "(%a) union (%a)" pp q1 pp q2
  | Diff (q1, q2) -> Format.fprintf fmt "(%a) diff (%a)" pp q1 pp q2
  | Join (q1, q2) -> Format.fprintf fmt "(%a) join (%a)" pp q1 pp q2
  | Product (q1, q2) -> Format.fprintf fmt "(%a) product (%a)" pp q1 pp q2

(* A pipeline stage binds tighter than the set operators, so a set-op
   operand of a stage needs parentheses. *)
and pp_term fmt q =
  match q with
  | Union _ | Diff _ | Join _ | Product _ -> Format.fprintf fmt "(%a)" pp q
  | Base _ | Where _ | Project _ | Rename _ -> pp fmt q

and pp_pred fmt (p : Pred.t) =
  match p with
  | Pred.Const b -> Format.fprintf fmt "%b" b
  | Pred.Eq (e1, e2) -> Format.fprintf fmt "%a = %a" pp_expr e1 pp_expr e2
  | Pred.Lt (e1, e2) -> Format.fprintf fmt "%a < %a" pp_expr e1 pp_expr e2
  | Pred.Le (e1, e2) -> Format.fprintf fmt "%a <= %a" pp_expr e1 pp_expr e2
  | Pred.And (p1, p2) -> Format.fprintf fmt "(%a and %a)" pp_pred p1 pp_pred p2
  | Pred.Or (p1, p2) -> Format.fprintf fmt "(%a or %a)" pp_pred p1 pp_pred p2
  | Pred.Not p -> Format.fprintf fmt "not (%a)" pp_pred p

and pp_expr fmt = function
  | Pred.Col c -> Format.fprintf fmt "%s" c
  | Pred.Lit (Value.Int i) -> Format.fprintf fmt "%d" i
  | Pred.Lit (Value.Str s) -> Format.fprintf fmt "%S" s
  | Pred.Lit (Value.Bool b) -> Format.fprintf fmt "%b" b

let to_string q = Format.asprintf "%a" pp q

(* ------------------------------------------------------------------ *)
(* Parser (recursive descent over the shared positioned token stream)  *)
(* ------------------------------------------------------------------ *)

(* The lexer lives in Qlex, shared with the ESMQL statement language —
   one token grammar, two parsers.  Every failure names the position
   (line, column) and the offending token. *)

let parse_prefix (toks : Qlex.t list) ~(eof : Qlex.pos) : t * Qlex.t list =
  let tokens = ref toks in
  let peek () = match !tokens with [] -> None | t :: _ -> Some t.Qlex.tok in
  let advance () = match !tokens with [] -> () | _ :: rest -> tokens := rest in
  let here () = match !tokens with [] -> eof | t :: _ -> t.Qlex.pos in
  let got () =
    match !tokens with
    | [] -> "end of input"
    | t :: _ -> Qlex.describe t.Qlex.tok
  in
  let fail what =
    parse_errorf "%s: expected %s, got %s" (Qlex.pos_string (here ())) what
      (got ())
  in
  let expect t what =
    match peek () with Some t' when t' = t -> advance () | _ -> fail what
  in
  let ident what =
    match peek () with
    | Some (Qlex.Ident s) ->
        advance ();
        s
    | _ -> fail what
  in
  let parse_expr () : Pred.expr =
    match peek () with
    | Some (Qlex.Int i) ->
        advance ();
        Pred.Lit (Value.Int i)
    | Some (Qlex.Str s) ->
        advance ();
        Pred.Lit (Value.Str s)
    | Some (Qlex.Ident "true") ->
        advance ();
        Pred.Lit (Value.Bool true)
    | Some (Qlex.Ident "false") ->
        advance ();
        Pred.Lit (Value.Bool false)
    | Some (Qlex.Ident c) ->
        advance ();
        Pred.Col c
    | _ -> fail "an expression"
  in
  let rec parse_neg () : Pred.t =
    match peek () with
    | Some (Qlex.Ident "not") ->
        advance ();
        Pred.Not (parse_neg ())
    | Some Qlex.Lparen ->
        advance ();
        let p = parse_pred () in
        expect Qlex.Rparen "')'";
        p
    | _ -> (
        let e1 = parse_expr () in
        match peek () with
        | Some Qlex.Eq ->
            advance ();
            Pred.Eq (e1, parse_expr ())
        | Some Qlex.Le ->
            advance ();
            Pred.Le (e1, parse_expr ())
        | Some Qlex.Lt ->
            advance ();
            Pred.Lt (e1, parse_expr ())
        | _ -> fail "a comparison operator ('=', '<' or '<=')")
  and parse_conj () : Pred.t =
    let p = parse_neg () in
    match peek () with
    | Some (Qlex.Ident "and") ->
        advance ();
        Pred.And (p, parse_conj ())
    | _ -> p
  and parse_pred () : Pred.t =
    let p = parse_conj () in
    match peek () with
    | Some (Qlex.Ident "or") ->
        advance ();
        Pred.Or (p, parse_pred ())
    | _ -> p
  in
  let parse_columns () : string list =
    let rec go acc =
      let c = ident "a column name" in
      match peek () with
      | Some Qlex.Comma ->
          advance ();
          go (c :: acc)
      | _ -> List.rev (c :: acc)
    in
    go []
  in
  let parse_renames () : (string * string) list =
    let rec go acc =
      let a = ident "a column name" in
      (match peek () with
      | Some (Qlex.Ident "as") -> advance ()
      | _ -> fail "'as'");
      let b = ident "a column name" in
      match peek () with
      | Some Qlex.Comma ->
          advance ();
          go ((a, b) :: acc)
      | _ -> List.rev ((a, b) :: acc)
    in
    go []
  in
  let rec parse_query () : t =
    let q = parse_term () in
    parse_ops q
  and parse_ops q =
    match peek () with
    | Some (Qlex.Ident (("union" | "diff" | "join" | "product") as op)) ->
        advance ();
        let rhs = parse_term () in
        let q' =
          match op with
          | "union" -> Union (q, rhs)
          | "diff" -> Diff (q, rhs)
          | "join" -> Join (q, rhs)
          | _ -> Product (q, rhs)
        in
        parse_ops q'
    | _ -> q
  and parse_term () : t =
    let q = parse_atom () in
    parse_stages q
  and parse_stages q =
    match peek () with
    | Some Qlex.Pipe -> (
        advance ();
        match peek () with
        | Some (Qlex.Ident "where") ->
            advance ();
            parse_stages (Where (parse_pred (), q))
        | Some (Qlex.Ident "select") ->
            advance ();
            parse_stages (Project (parse_columns (), q))
        | Some (Qlex.Ident "rename") ->
            advance ();
            parse_stages (Rename (parse_renames (), q))
        | _ -> fail "a stage ('where', 'select' or 'rename')")
    | _ -> q
  and parse_atom () : t =
    match peek () with
    | Some Qlex.Lparen ->
        advance ();
        let q = parse_query () in
        expect Qlex.Rparen "')'";
        q
    | Some (Qlex.Ident name) ->
        advance ();
        Base name
    | _ -> fail "a table name or '('"
  in
  let q = parse_query () in
  (q, !tokens)

let tokenize (input : string) : Qlex.t list * Qlex.pos =
  match Qlex.tokenize input with
  | Ok (toks, eof) -> (toks, eof)
  | Error { Qlex.at; what } ->
      parse_errorf "%s: %s" (Qlex.pos_string at) what

let parse (input : string) : t =
  let toks, eof = tokenize input in
  let q, rest = parse_prefix toks ~eof in
  (match rest with
  | [] -> ()
  | { Qlex.tok; pos } :: _ ->
      parse_errorf "%s: trailing input after the query (%s)"
        (Qlex.pos_string pos) (Qlex.describe tok));
  q

(** Parse and evaluate in one step. *)
let run (env : string -> Table.t) (input : string) : Table.t =
  eval env (parse input)

(* ------------------------------------------------------------------ *)
(* Updatable views: compile a view definition into a relational lens   *)
(* ------------------------------------------------------------------ *)

exception Not_updatable of string

let not_updatable fmt =
  Esm_core.Error.raisef Esm_core.Error.Other
    ~wrap:(fun m -> Not_updatable m)
    fmt

let () =
  Esm_core.Error.register_classifier (function
    | Not_updatable m ->
        Some (Esm_core.Error.of_message Esm_core.Error.Other m)
    | _ -> None)

(** Compile a single-base pipeline query into a relational lens from the
    base table to the view — the view-update problem, end to end: parse a
    view definition, get a lens, feed it to {!Esm_core.Of_lens} and edit
    the view through the entangled state monad.

    Supported stages: [where] (select lens), [select] (project lens —
    the key columns must survive the projection), [rename] (iso).  Set
    operations are not updatable here and raise {!Not_updatable}.

    [schema] is the base-table schema and [key] the columns that
    identify rows (used by the project lens to restore dropped values,
    and renamed along with everything else by [rename] stages). *)
let to_lens ~(schema : Schema.t) ~(key : string list) (q : t) :
    (Table.t, Table.t) Esm_lens.Lens.t =
  (* Walk from the base outward, threading the current schema and the
     current names of the key columns. *)
  let rec go :
      t -> (Table.t, Table.t) Esm_lens.Lens.t * Schema.t * string list =
    function
    | Base _ ->
        (Esm_lens.Lens.with_name "base" Esm_lens.Lens.id, schema, key)
    | Where (p, q) ->
        let l, sch, key = go q in
        List.iter
          (fun c ->
            if not (Schema.mem sch c) then
              not_updatable "where: unknown column %s" c)
          (Pred.columns_used p);
        (Esm_lens.Lens.compose l (Rlens.select p), sch, key)
    | Project (cols, q) ->
        let l, sch, key = go q in
        List.iter
          (fun k ->
            if not (List.mem k cols) then
              not_updatable
                "select: key column %s must be kept for the view to be \
                 updatable"
                k)
          key;
        ( Esm_lens.Lens.compose l (Rlens.project ~keep:cols ~key sch),
          Schema.project sch cols,
          key )
    | Rename (mapping, q) ->
        let l, sch, key = go q in
        let rename_one n =
          match List.assoc_opt n mapping with Some n' -> n' | None -> n
        in
        ( Esm_lens.Lens.compose l (Rlens.rename mapping),
          Schema.rename sch mapping,
          List.map rename_one key )
    | Union _ -> not_updatable "union views are not updatable"
    | Diff _ -> not_updatable "diff views are not updatable"
    | Join _ ->
        not_updatable
          "join views over one base are not updatable (use Rlens.join on a \
           pair of tables)"
    | Product _ -> not_updatable "product views are not updatable"
  in
  let lens, _, _ = go q in
  Esm_lens.Lens.with_name ("view: " ^ to_string q) lens

(** Parse a view definition and compile it in one step. *)
let lens_of_string ~schema ~key (input : string) :
    (Table.t, Table.t) Esm_lens.Lens.t =
  to_lens ~schema ~key (parse input)

(** The pedigree {!to_lens} compilation produces: a [Plan] node over the
    composed combinator pedigrees, mirroring the compilation walk.
    Total — shapes {!to_lens} rejects get an [Opaque] body instead of
    raising, so audits can always render a provenance. *)
let pedigree ~(schema : Schema.t) ~(key : string list) (q : t) :
    Esm_core.Pedigree.t =
  let compose p1 p2 =
    match (p1, p2) with
    | Esm_core.Pedigree.Identity, p | p, Esm_core.Pedigree.Identity -> p
    | p1, p2 -> Esm_core.Pedigree.Compose (p1, p2)
  in
  let rec go : t -> Esm_core.Pedigree.t * Schema.t * string list = function
    | Base _ -> (Esm_core.Pedigree.Identity, schema, key)
    | Where (p, q) ->
        let pe, sch, key = go q in
        (compose pe (Rlens.select_pedigree ~key p), sch, key)
    | Project (cols, q) ->
        let pe, sch, key = go q in
        ( compose pe (Rlens.project_pedigree ~keep:cols ~key sch),
          Schema.project sch cols,
          key )
    | Rename (mapping, q) ->
        let pe, sch, key = go q in
        let rename_one n =
          match List.assoc_opt n mapping with Some n' -> n' | None -> n
        in
        ( compose pe (Rlens.rename_pedigree mapping),
          Schema.rename sch mapping,
          List.map rename_one key )
    | (Union _ | Diff _ | Join _ | Product _) as q ->
        (Esm_core.Pedigree.opaque (to_string q), schema, key)
  in
  let body, _, _ = go q in
  Esm_core.Pedigree.Plan { query = to_string q; body }

(** Compile a single-base pipeline into a delta-capable lens
    ({!Rlens.dlens}): same supported stages and checks as {!to_lens},
    but view edits can be pushed back incrementally with
    {!Rlens.put_delta} / {!Dml.through_delta} instead of replacing the
    whole view.  This is the cold compiler; {!to_dlens} routes through
    the plan cache. *)
let to_dlens_uncached ~(schema : Schema.t) ~(key : string list) (q : t) :
    Rlens.dlens =
  let rec go : t -> Rlens.dlens * Schema.t * string list = function
    | Base _ -> (Rlens.did, schema, key)
    | Where (p, q) ->
        let l, sch, key = go q in
        List.iter
          (fun c ->
            if not (Schema.mem sch c) then
              not_updatable "where: unknown column %s" c)
          (Pred.columns_used p);
        (Rlens.dcompose l (Rlens.dselect ~key p), sch, key)
    | Project (cols, q) ->
        let l, sch, key = go q in
        List.iter
          (fun k ->
            if not (List.mem k cols) then
              not_updatable
                "select: key column %s must be kept for the view to be \
                 updatable"
                k)
          key;
        ( Rlens.dcompose l (Rlens.dproject ~keep:cols ~key sch),
          Schema.project sch cols,
          key )
    | Rename (mapping, q) ->
        let l, sch, key = go q in
        let rename_one n =
          match List.assoc_opt n mapping with Some n' -> n' | None -> n
        in
        ( Rlens.dcompose l (Rlens.drename mapping),
          Schema.rename sch mapping,
          List.map rename_one key )
    | Union _ -> not_updatable "union views are not updatable"
    | Diff _ -> not_updatable "diff views are not updatable"
    | Join _ ->
        not_updatable
          "join views over one base are not updatable (use Rlens.join on a \
           pair of tables)"
    | Product _ -> not_updatable "product views are not updatable"
  in
  let dl, _, _ = go q in
  {
    dl with
    Rlens.lens =
      Esm_lens.Lens.with_name ("view: " ^ to_string q) dl.Rlens.lens;
    Rlens.pedigree =
      Esm_core.Pedigree.Plan
        { query = to_string q; body = dl.Rlens.pedigree };
  }

(* ------------------------------------------------------------------ *)
(* The plan cache                                                      *)
(* ------------------------------------------------------------------ *)

(* Compiled plans are pure closures over (query, schema, key) — the
   printer is deterministic and [parse ∘ pp] round-trips, so the
   printed forms are a faithful cache key.  The cached dlens carries
   its full [Pedigree.Plan] provenance, so a cache hit reports exactly
   the law level of its cold-compile twin — memoization can never
   launder law levels (regression-tested in test/test_incr.ml and the
   "relational/memoized-plan" catalog entry). *)
let plan_cache : (string * string * string, Rlens.dlens) Hashtbl.t =
  Hashtbl.create 64

(* One workload compiles a handful of plans; the bound only guards
   against adversarial churn.  Eviction is wholesale — simplicity over
   LRU bookkeeping at this size. *)
let plan_cache_bound = 512

let clear_plan_cache () = Hashtbl.reset plan_cache

(** {!to_dlens_uncached} through the plan cache, keyed by the printed
    query, the schema, and the key columns.  Reports to the
    ["query.plan"] {!Esm_incr.Stats} counter.  Uncompilable shapes
    raise before anything is cached. *)
let to_dlens ~(schema : Schema.t) ~(key : string list) (q : t) : Rlens.dlens =
  let k = (to_string q, Schema.to_string schema, String.concat "," key) in
  match Hashtbl.find_opt plan_cache k with
  | Some dl ->
      Esm_incr.Stats.hit "query.plan";
      dl
  | None ->
      Esm_incr.Stats.miss "query.plan";
      let dl = to_dlens_uncached ~schema ~key q in
      if Hashtbl.length plan_cache >= plan_cache_bound then
        Hashtbl.reset plan_cache;
      Hashtbl.replace plan_cache k dl;
      dl

(** Parse a view definition and compile it to a delta-capable lens. *)
let dlens_of_string ~schema ~key (input : string) : Rlens.dlens =
  to_dlens ~schema ~key (parse input)
