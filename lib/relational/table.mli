(** Tables with set semantics: rows are kept in a sorted, deduplicated
    array, so structural equality of tables is relational equality,
    membership is a binary search, and the set operations are linear
    merges.  A lazily-built, memoized key index gives O(1) key-directed
    row lookup — the substrate for the relational-lens [put] directions
    and the delta-propagation path. *)

exception Table_error of string

val errorf : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Table_error} with a formatted message. *)

type t

val of_rows : Schema.t -> Row.t list -> t
(** Build a table; every row must conform to the schema (otherwise
    {!Table_error}); rows are deduplicated and sorted. *)

val of_sorted_array_unchecked : Schema.t -> Row.t array -> t
(** Trusted constructor: the rows must conform to the schema, be sorted
    by {!Row.compare} and contain no duplicates; the array is owned by
    the table afterwards.  For hot paths that preserve those invariants
    by construction — misuse silently breaks relational equality. *)

val of_lists : Schema.t -> Value.t list list -> t
(** Convenience wrapper over {!of_rows}. *)

val empty : Schema.t -> t
val schema : t -> Schema.t

val rows : t -> Row.t list
(** Rows in canonical (sorted) order. *)

val row_array : t -> Row.t array
(** The backing sorted array — treat as read-only; mutating it breaks
    the table's invariants. *)

val cardinality : t -> int
val iter : (Row.t -> unit) -> t -> unit
val fold : ('acc -> Row.t -> 'acc) -> 'acc -> t -> 'acc
val for_all : (Row.t -> bool) -> t -> bool
val exists : (Row.t -> bool) -> t -> bool

val mem : t -> Row.t -> bool
(** Binary search over the sorted rows: O(log n). *)

val insert : t -> Row.t -> t
(** Set insertion (idempotent); the row must conform to the schema.
    Binary search + array splice — no re-sort.  Inserting a present row
    returns the table physically unchanged. *)

val delete : t -> Row.t -> t
(** Binary search + array splice; absent rows return the table
    physically unchanged. *)

val filter : (Row.t -> bool) -> t -> t

val map : Schema.t -> (Row.t -> Row.t) -> t -> t
(** Per-row transformation; the result is renormalised under the new
    schema. *)

(** {1 Merge-based set operations}

    All three require equal schemas ({!Table_error} otherwise) and run
    in O(n + m) single merge passes over the sorted arrays. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

(** {1 Key indexes} *)

val key_of_row : int list -> Row.t -> Value.t list
(** The key tuple of a row at the given column positions. *)

val key_index : t -> int list -> (Value.t list, Row.t) Hashtbl.t
(** The memoized index from key tuple (values at the given column
    positions) to row: built on first use in O(n), O(1) afterwards for
    the same table and key.  Callers must treat the table as the owner
    of the hashtable (read-only).  If the key does not functionally
    determine rows, later rows win. *)

val key_index_checked : t -> int list -> (Value.t list, Row.t) Hashtbl.t
(** {!key_index} plus an O(1) self-check of the memo — the gate the
    delta fast paths use before trusting a cached index.
    @raise Esm_core.Error.Bx_error
      (kind [Index]) when the memo fails its check; fast paths treat
      this as "fall back to the full oracle". *)

val drop_indexes : t -> unit
(** Forget every memoized index (they rebuild lazily on next use). *)

val validate_indexes : t -> bool
(** Full O(n)-per-index consistency check of the memo against the
    rows. *)

val revalidate_indexes : t -> bool
(** Validate-and-rebuild policy after a failed transaction: [true] iff
    the memo was healthy; otherwise the indexes are dropped (rebuilt
    lazily) and [false] is returned. *)

val find_by_key : t -> key:int list -> Value.t list -> Row.t option
(** Indexed key lookup (amortised O(1)). *)

val mem_key : t -> key:int list -> Value.t list -> bool

(** {1 Structural hash}

    The substrate of the incremental recomputation layer (see
    [docs/PERFORMANCE.md], "Incremental recomputation"): an O(1)
    memoized hash whose {e inequality} certifies table inequality, used
    by the view/plan caches for fast rejection.  The accumulator is the
    xor of per-row structural hashes — history-independent, so
    {!insert}/{!delete} maintain it in O(1) from the parent's; other
    constructors leave it to be rebuilt lazily.  Cached reads pass
    through the ["incr.hash"] chaos gate ({!Esm_core.Shash.site}): an
    injected fault rebuilds from the rows, mirroring the key-index
    validate-and-rebuild policy. *)

val hash : t -> int
(** O(1) once memoized (first call is O(n)).  Equal tables hash equal;
    distinct hashes certify distinct tables; matching hashes must be
    verified with {!equal}. *)

val equal : t -> t -> bool
(** Relational equality; short-circuits on physically shared row
    storage, then on memoized structural hashes that certify
    inequality, before falling back to the row-wise comparison. *)

val pp : Format.formatter -> t -> unit
(** ASCII-art rendering with padded columns. *)

val to_string : t -> string
