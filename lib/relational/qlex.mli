(** The shared positioned lexer for the query surface syntax.

    One token grammar serves both {!Query}'s pipeline expressions and the
    ESMQL statement language ([Esm_ql]): every token carries the 1-based
    line/column where it starts, so parse errors can point at the exact
    offending input instead of failing bare.  Lexing failures are typed
    values, never exceptions — the parsers decide how to raise. *)

type pos = { line : int; col : int }  (** both 1-based *)

val pos_string : pos -> string
(** ["line L, column C"]. *)

type token =
  | Ident of string
  | Int of int
  | Str of string  (** double-quoted; no escape sequences (as printed) *)
  | Pipe
  | Lparen
  | Rparen
  | Comma
  | Eq
  | Lt
  | Le
  | Semi  (** [;] — ESMQL statement terminator *)
  | Plus  (** [+] — ESMQL delta addition *)
  | Minus  (** [-] not followed by a digit — ESMQL delta removal *)

type t = { tok : token; pos : pos }

val describe : token -> string
(** A quotable rendering for error messages: [Ident "where"] is
    ["'where'"], [Pipe] is ["'|'"], [Str s] is ["a string literal"], … *)

type error = { at : pos; what : string }

val tokenize : string -> (t list * pos, error) result
(** Lex the whole input.  [Ok (tokens, eof)] carries the position just
    past the final character — where "unexpected end of input" points.
    [-42] lexes as [Int (-42)]; a [-] not followed by a digit is
    {!Minus}. *)
