(** Table schemas: an ordered list of distinct, typed column names. *)

exception Schema_error of string

let errorf fmt =
  Esm_core.Error.raisef Esm_core.Error.Schema
    ~wrap:(fun m -> Schema_error m)
    fmt

let () =
  Esm_core.Error.register_classifier (function
    | Schema_error m ->
        Some (Esm_core.Error.of_message Esm_core.Error.Schema m)
    | _ -> None)

type t = { columns : (string * Value.ty) list }

let make columns =
  let names = List.map fst columns in
  let sorted = List.sort_uniq String.compare names in
  if List.length sorted <> List.length names then
    errorf "duplicate column names in schema [%s]" (String.concat "; " names);
  { columns }

let columns t = t.columns
let column_names t = List.map fst t.columns
let arity t = List.length t.columns
let mem t name = List.mem_assoc name t.columns

let ty_of t name =
  match List.assoc_opt name t.columns with
  | Some ty -> ty
  | None -> errorf "no column %s" name

(** Position of a column in the row layout. *)
let index t name =
  let rec go i = function
    | [] -> errorf "no column %s" name
    | (n, _) :: _ when String.equal n name -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.columns

let equal t1 t2 =
  List.length t1.columns = List.length t2.columns
  && List.for_all2
       (fun (n1, ty1) (n2, ty2) -> String.equal n1 n2 && Value.equal_ty ty1 ty2)
       t1.columns t2.columns

(** Keep only the named columns, in the order given. *)
let project t names =
  make (List.map (fun n -> (n, ty_of t n)) names)

(** Rename columns according to [mapping] (old name, new name); columns
    not mentioned keep their names. *)
let rename t mapping =
  let rename_one n =
    match List.assoc_opt n mapping with Some n' -> n' | None -> n
  in
  make (List.map (fun (n, ty) -> (rename_one n, ty)) t.columns)

(** Concatenation for cartesian product; column names must be disjoint. *)
let concat t1 t2 =
  make (t1.columns @ t2.columns)

(** Columns common to both schemas (for natural join); their types must
    agree. *)
let shared t1 t2 =
  List.filter_map
    (fun (n, ty) ->
      match List.assoc_opt n t2.columns with
      | Some ty2 ->
          if Value.equal_ty ty ty2 then Some n
          else errorf "shared column %s has conflicting types" n
      | None -> None)
    t1.columns

let pp fmt t =
  Format.fprintf fmt "(%s)"
    (String.concat ", "
       (List.map
          (fun (n, ty) -> n ^ ":" ^ Value.type_to_string ty)
          t.columns))

let to_string t = Format.asprintf "%a" pp t
