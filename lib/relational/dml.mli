(** Data-manipulation statements over tables, and their translation
    through updatable views ([through]: run on the view, push back with
    the lens's [put]). *)

type assignment = string * Pred.expr
(** column := expression (evaluated against the pre-update row) *)

type t =
  | Insert of Row.t
  | Delete of Pred.t
  | Update of Pred.t * assignment list

val pp : Format.formatter -> t -> unit

val apply : Table.t -> t -> Table.t
val apply_all : Table.t -> t list -> Table.t

val through :
  (Table.t, Table.t) Esm_lens.Lens.t -> t -> Table.t -> Table.t
(** Run the statement on the lens's view of the source, then put the
    updated view back. *)

val delta : Table.t -> t -> Row_delta.t list
(** The row deltas the statement induces on the table:
    [apply table stmt] equals [Row_delta.apply_all table (delta table
    stmt)].  Removals precede additions. *)

val through_delta : Rlens.dlens -> t -> Table.t -> Table.t
(** Delta-propagating {!through}: the statement's view deltas are pushed
    through {!Rlens.put_delta} instead of replacing the whole view. *)

val through_pedigree : Rlens.dlens -> Esm_core.Pedigree.t
(** Provenance of the {!through} path: the lens pipeline itself. *)

val through_delta_pedigree : Rlens.dlens -> Esm_core.Pedigree.t
(** Provenance of the {!through_delta} path:
    [Delta_of] the pipeline — the delta translation agrees with the full
    put (the oracle property), so the law level is preserved. *)
