(** Relational algebra over {!Table}. *)

val select : Pred.t -> Table.t -> Table.t
val project : string list -> Table.t -> Table.t

val rename : (string * string) list -> Table.t -> Table.t
(** Rename columns per the (old, new) mapping. *)

val union : Table.t -> Table.t -> Table.t
(** Set union; schemas must be equal ({!Table.Table_error} otherwise). *)

val diff : Table.t -> Table.t -> Table.t
val inter : Table.t -> Table.t -> Table.t

val product : Table.t -> Table.t -> Table.t
(** Cartesian product; column names must be disjoint. *)

val join : Table.t -> Table.t -> Table.t
(** Natural join: rows agreeing on all shared columns; the result schema
    is the left schema followed by the right-only columns. *)

(** {1 Aggregation} *)

(** Aggregate functions for {!group_by}; [Avg] uses integer division. *)
type aggregate =
  | Count
  | Sum of string
  | Avg of string
  | Min of string
  | Max of string

val group_by :
  keys:string list -> aggs:(string * aggregate) list -> Table.t -> Table.t
(** One output row per distinct key tuple: the key columns followed by
    one column per named aggregate. *)

val sort_rows : by:string list -> ?desc:bool -> Table.t -> Row.t list
(** Rows sorted by the given columns, for ordered presentation (tables
    themselves are canonical sets). *)

(** {1 Provenance}

    Each read-only operator is the [get] side of (at most) one updatable
    relational lens; these are the lemma-backed
    {!Esm_core.Pedigree} claims a bx built over such a pipeline may
    make.  {!Rlens} re-exports them at its lens constructors; {!Query}
    composes them into [Plan] nodes. *)

val select_pedigree : ?key:string list -> Pred.t -> Esm_core.Pedigree.t
(** [Select { pred; key_preserving }]; key-preserving iff [key] is given
    and the predicate reads only key columns. *)

val project_pedigree :
  keep:string list -> key:string list -> Schema.t -> Esm_core.Pedigree.t
(** [Project { keep; key; lossless }]; lossless iff every source column
    is kept. *)

val rename_pedigree : (string * string) list -> Esm_core.Pedigree.t

val join_pedigree :
  ?right_fds:Fd.t list ->
  left:Schema.t ->
  right:Schema.t ->
  unit ->
  Esm_core.Pedigree.t
(** [Join { on; fd_proven }]; proven iff a declared right-table FD shows
    the shared columns determine the rest of the right row. *)

val opaque_pedigree : string -> Esm_core.Pedigree.t
(** For operators with no updatable counterpart (set operations,
    grouping, sorting): nothing beyond the set-bx laws. *)
