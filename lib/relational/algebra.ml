(** Relational algebra over {!Table}: selection, projection, renaming,
    set operations, cartesian product and natural join.

    The operators lean on {!Table}'s sorted-array representation:
    selections run compiled predicates ({!Pred.compile}), the set
    operations are linear merges, renaming shares the row storage
    outright, and join builds a hash index over the smaller side.
    Operators that construct rows in canonical order hand them to
    {!Table.of_sorted_array_unchecked} to skip renormalisation. *)

let select (p : Pred.t) (t : Table.t) : Table.t =
  Table.filter (Pred.compile (Table.schema t) p) t

(* Column positions for a projection, resolved once. *)
let projection_indices (schema : Schema.t) (columns : string list) : int array =
  Array.of_list (List.map (Schema.index schema) columns)

let project_row (indices : int array) (r : Row.t) : Row.t =
  Array.map (fun i -> r.(i)) indices

let project (columns : string list) (t : Table.t) : Table.t =
  let schema = Table.schema t in
  let schema' = Schema.project schema columns in
  let indices = projection_indices schema columns in
  (* Projection of conforming rows conforms by construction, but can
     introduce duplicates and break the sort order: renormalise only. *)
  let projected =
    List.sort_uniq Row.compare
      (Array.to_list (Array.map (project_row indices) (Table.row_array t)))
  in
  Table.of_sorted_array_unchecked schema' (Array.of_list projected)

let rename (mapping : (string * string) list) (t : Table.t) : Table.t =
  (* Renaming changes no row values, so the sorted array is shared. *)
  Table.of_sorted_array_unchecked
    (Schema.rename (Table.schema t) mapping)
    (Table.row_array t)

let union = Table.union
let diff = Table.diff
let inter = Table.inter

let product (t1 : Table.t) (t2 : Table.t) : Table.t =
  let schema' = Schema.concat (Table.schema t1) (Table.schema t2) in
  let r1 = Table.row_array t1 and r2 = Table.row_array t2 in
  let n1 = Array.length r1 and n2 = Array.length r2 in
  (* Major order by t1's sorted rows, minor by t2's: the concatenated
     rows come out sorted and distinct. *)
  let out =
    Array.init (n1 * n2) (fun i -> Row.concat r1.(i / n2) r2.(i mod n2))
  in
  Table.of_sorted_array_unchecked schema' out

(** Natural join: match rows agreeing on all shared columns; the result
    schema is [t1]'s columns followed by [t2]'s non-shared columns.
    Hash join: index [t2] by the shared-column key, probe from [t1]. *)
let join (t1 : Table.t) (t2 : Table.t) : Table.t =
  let s1 = Table.schema t1 and s2 = Table.schema t2 in
  let shared = Schema.shared s1 s2 in
  let s2_rest =
    List.filter
      (fun n -> not (List.mem n shared))
      (Schema.column_names s2)
  in
  let schema' =
    Schema.make
      (Schema.columns s1
      @ List.map (fun n -> (n, Schema.ty_of s2 n)) s2_rest)
  in
  let key1 = List.map (Schema.index s1) shared in
  let key2 = List.map (Schema.index s2) shared in
  let rest2 = projection_indices s2 s2_rest in
  let by_key = Hashtbl.create (max 16 (Table.cardinality t2)) in
  Table.iter
    (fun r2 ->
      let k = Table.key_of_row key2 r2 in
      Hashtbl.replace by_key k (r2 :: Option.value ~default:[] (Hashtbl.find_opt by_key k)))
    t2;
  let out = ref [] in
  Table.iter
    (fun r1 ->
      match Hashtbl.find_opt by_key (Table.key_of_row key1 r1) with
      | None -> ()
      | Some matches ->
          List.iter
            (fun r2 -> out := Row.concat r1 (project_row rest2 r2) :: !out)
            matches)
    t1;
  Table.of_sorted_array_unchecked schema'
    (Array.of_list (List.sort_uniq Row.compare !out))

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)
(* ------------------------------------------------------------------ *)

(** Aggregate functions for {!group_by}.  [Avg] uses integer division
    (the value model has no floats). *)
type aggregate =
  | Count
  | Sum of string
  | Avg of string
  | Min of string
  | Max of string

let aggregate_ty (schema : Schema.t) : aggregate -> Value.ty = function
  | Count -> Value.Tint
  | Sum c | Avg c -> (
      match Schema.ty_of schema c with
      | Value.Tint -> Value.Tint
      | ty ->
          Table.errorf "aggregate: cannot sum column %s of type %s" c
            (Value.type_to_string ty))
  | Min c | Max c -> Schema.ty_of schema c

let rec eval_aggregate (schema : Schema.t) (rows : Row.t list) :
    aggregate -> Value.t = function
  | Count -> Value.Int (List.length rows)
  | Sum c ->
      let i = Schema.index schema c in
      Value.Int
        (List.fold_left
           (fun acc r ->
             match r.(i) with
             | Value.Int n -> acc + n
             | v ->
                 Table.errorf "sum: non-integer value %s" (Value.to_string v))
           0 rows)
  | Avg c -> (
      match (rows, eval_aggregate schema rows (Sum c)) with
      | [], _ -> Value.Int 0
      | _, Value.Int total -> Value.Int (total / List.length rows)
      | _, v -> v)
  | Min c ->
      let i = Schema.index schema c in
      List.fold_left
        (fun acc r -> if Value.compare r.(i) acc < 0 then r.(i) else acc)
        (List.hd rows).(i) rows
  | Max c ->
      let i = Schema.index schema c in
      List.fold_left
        (fun acc r -> if Value.compare r.(i) acc > 0 then r.(i) else acc)
        (List.hd rows).(i) rows

(** [group_by ~keys ~aggs t]: one output row per distinct key tuple,
    carrying the key columns followed by one column per named aggregate.
    [Min]/[Max] require non-empty groups (guaranteed by construction). *)
let group_by ~(keys : string list) ~(aggs : (string * aggregate) list)
    (t : Table.t) : Table.t =
  let schema = Table.schema t in
  let out_schema =
    Schema.make
      (List.map (fun k -> (k, Schema.ty_of schema k)) keys
      @ List.map (fun (n, agg) -> (n, aggregate_ty schema agg)) aggs)
  in
  let key_indices = List.map (Schema.index schema) keys in
  let groups = Hashtbl.create 16 in
  Table.iter
    (fun r ->
      let key = Table.key_of_row key_indices r in
      let existing = Option.value ~default:[] (Hashtbl.find_opt groups key) in
      Hashtbl.replace groups key (r :: existing))
    t;
  let out_rows =
    Hashtbl.fold
      (fun key rows acc ->
        Row.of_list
          (key @ List.map (fun (_, agg) -> eval_aggregate schema rows agg) aggs)
        :: acc)
      groups []
  in
  Table.of_rows out_schema out_rows

(** Rows sorted by the given columns (tables themselves are canonical
    sets; use this for ordered presentation). *)
let sort_rows ~(by : string list) ?(desc = false) (t : Table.t) : Row.t list =
  let schema = Table.schema t in
  let by_indices = List.map (Schema.index schema) by in
  let cmp r1 r2 =
    let c =
      List.fold_left
        (fun acc i -> if acc <> 0 then acc else Value.compare r1.(i) r2.(i))
        0 by_indices
    in
    if desc then -c else c
  in
  List.sort cmp (Table.rows t)

(* ------------------------------------------------------------------ *)
(* Provenance                                                          *)
(* ------------------------------------------------------------------ *)

(** Pedigrees for the algebra's operators.  Each read-only operator here
    is the [get] side of (at most) one updatable relational lens, and a
    bx built over such a pipeline may claim exactly that lens's
    pedigree; {!Rlens} re-exports these at its lens constructors and
    {!Query} composes them into [Plan] nodes.  Operators with no
    updatable counterpart (the set operations, grouping, sorting) are
    {!opaque_pedigree}: nothing beyond the basic set-bx laws may ever be
    claimed of a bx built over them. *)

let select_pedigree ?key (p : Pred.t) : Esm_core.Pedigree.t =
  let key_preserving =
    match key with
    | None -> false
    | Some key ->
        List.for_all (fun c -> List.mem c key) (Pred.columns_used p)
  in
  Esm_core.Pedigree.Select
    { pred = Format.asprintf "%a" Pred.pp p; key_preserving }

let project_pedigree ~(keep : string list) ~(key : string list)
    (source_schema : Schema.t) : Esm_core.Pedigree.t =
  let lossless =
    List.for_all
      (fun c -> List.mem c keep)
      (Schema.column_names source_schema)
  in
  Esm_core.Pedigree.Project { keep; key; lossless }

let rename_pedigree (mapping : (string * string) list) : Esm_core.Pedigree.t =
  Esm_core.Pedigree.Rename mapping

let join_pedigree ?(right_fds : Fd.t list = []) ~(left : Schema.t)
    ~(right : Schema.t) () : Esm_core.Pedigree.t =
  let shared = Schema.shared left right in
  let right_rest =
    List.filter
      (fun n -> not (List.mem n shared))
      (Schema.column_names right)
  in
  let fd_proven =
    List.exists
      (fun (fd : Fd.t) ->
        List.for_all (fun c -> List.mem c shared) fd.Fd.determinant
        && List.for_all (fun c -> List.mem c fd.Fd.dependent) right_rest)
      right_fds
  in
  Esm_core.Pedigree.Join { on = shared; fd_proven }

let opaque_pedigree (operator : string) : Esm_core.Pedigree.t =
  Esm_core.Pedigree.opaque ("algebra." ^ operator)
