(** A small predicate language over rows, used by selections and by the
    select lens.  Expressions reference columns by name or literal
    values; predicates combine comparisons with boolean connectives. *)

type expr = Col of string | Lit of Value.t

type t =
  | Const of bool
  | Eq of expr * expr
  | Lt of expr * expr
  | Le of expr * expr
  | And of t * t
  | Or of t * t
  | Not of t

let eval_expr (schema : Schema.t) (row : Row.t) : expr -> Value.t = function
  | Col name -> Row.get schema row name
  | Lit v -> v

let rec eval (schema : Schema.t) (p : t) (row : Row.t) : bool =
  match p with
  | Const b -> b
  | Eq (e1, e2) ->
      Value.equal (eval_expr schema row e1) (eval_expr schema row e2)
  | Lt (e1, e2) ->
      Value.compare (eval_expr schema row e1) (eval_expr schema row e2) < 0
  | Le (e1, e2) ->
      Value.compare (eval_expr schema row e1) (eval_expr schema row e2) <= 0
  | And (p1, p2) -> eval schema p1 row && eval schema p2 row
  | Or (p1, p2) -> eval schema p1 row || eval schema p2 row
  | Not p -> not (eval schema p row)

(* ------------------------------------------------------------------ *)
(* Compilation: resolve column positions once, evaluate many times     *)
(* ------------------------------------------------------------------ *)

let compile_expr (schema : Schema.t) (e : expr) : Row.t -> Value.t =
  match e with
  | Col name ->
      let i = Schema.index schema name in
      fun r -> r.(i)
  | Lit v -> fun _ -> v

(** Compile a predicate against a schema: every column reference is
    resolved to its row position once, so per-row evaluation does no
    name lookups.  [eval schema p r = compile schema p r] for conforming
    rows; the compiled form is what the selection hot paths (algebra,
    select lens, DML) run. *)
let rec compile (schema : Schema.t) (p : t) : Row.t -> bool =
  match p with
  | Const b -> fun _ -> b
  | Eq (e1, e2) ->
      let f1 = compile_expr schema e1 and f2 = compile_expr schema e2 in
      fun r -> Value.equal (f1 r) (f2 r)
  | Lt (e1, e2) ->
      let f1 = compile_expr schema e1 and f2 = compile_expr schema e2 in
      fun r -> Value.compare (f1 r) (f2 r) < 0
  | Le (e1, e2) ->
      let f1 = compile_expr schema e1 and f2 = compile_expr schema e2 in
      fun r -> Value.compare (f1 r) (f2 r) <= 0
  | And (p1, p2) ->
      let f1 = compile schema p1 and f2 = compile schema p2 in
      fun r -> f1 r && f2 r
  | Or (p1, p2) ->
      let f1 = compile schema p1 and f2 = compile schema p2 in
      fun r -> f1 r || f2 r
  | Not p ->
      let f = compile schema p in
      fun r -> not (f r)

let rec columns_used : t -> string list = function
  | Const _ -> []
  | Eq (e1, e2) | Lt (e1, e2) | Le (e1, e2) ->
      List.filter_map (function Col c -> Some c | Lit _ -> None) [ e1; e2 ]
  | And (p1, p2) | Or (p1, p2) ->
      columns_used p1 @ columns_used p2
  | Not p -> columns_used p

let rec pp fmt = function
  | Const b -> Format.fprintf fmt "%b" b
  | Eq (e1, e2) -> Format.fprintf fmt "%a = %a" pp_expr e1 pp_expr e2
  | Lt (e1, e2) -> Format.fprintf fmt "%a < %a" pp_expr e1 pp_expr e2
  | Le (e1, e2) -> Format.fprintf fmt "%a <= %a" pp_expr e1 pp_expr e2
  | And (p1, p2) -> Format.fprintf fmt "(%a && %a)" pp p1 pp p2
  | Or (p1, p2) -> Format.fprintf fmt "(%a || %a)" pp p1 pp p2
  | Not p -> Format.fprintf fmt "!(%a)" pp p

and pp_expr fmt = function
  | Col c -> Format.fprintf fmt "%s" c
  | Lit v -> Format.fprintf fmt "%s" (Value.to_string v)

(* Convenience constructors. *)
let col c = Col c
let int i = Lit (Value.Int i)
let str s = Lit (Value.Str s)
let bool b = Lit (Value.Bool b)
let ( = ) e1 e2 = Eq (e1, e2)
let ( < ) e1 e2 = Lt (e1, e2)
let ( <= ) e1 e2 = Le (e1, e2)
let ( && ) p1 p2 = And (p1, p2)
let ( || ) p1 p2 = Or (p1, p2)
let not_ p = Not p
