(** A small pipeline query language over the relational substrate:
    parser, evaluator, pretty-printer, and the compilers from view
    definitions to (delta-capable) relational lenses.

    {v
    employees | where dept = "Engineering" and salary < 70000
              | select id, name
              | rename name as who
    employees join depts
    (a union b) | where x <= 3
    v}

    Grammar (pipelines bind tighter than the infix set operators, which
    associate to the left):

    {v
    query := term (("union" | "diff" | "join" | "product") term)*
    term  := atom ("|" stage)*
    atom  := IDENT | "(" query ")"
    stage := "where" pred
           | "select" IDENT ("," IDENT)*
           | "rename" IDENT "as" IDENT ("," IDENT "as" IDENT)*
    pred  := conj ("or" conj)* ; conj := neg ("and" neg)*
    neg   := "not" neg | "(" pred ")" | expr ("=" | "<=" | "<") expr
    expr  := IDENT | INT | STRING | "true" | "false"
    v} *)

(** Query syntax.  Kept concrete: the demo, the tests and the examples
    pattern-match and build queries directly. *)
type t =
  | Base of string
  | Where of Pred.t * t
  | Project of string list * t
  | Rename of (string * string) list * t
  | Union of t * t
  | Diff of t * t
  | Join of t * t
  | Product of t * t

exception Parse_error of string
(** Lexing/parsing failure; classified as {!Esm_core.Error.Parse} by
    {!Esm_core.Error.of_exn}. *)

(** {1 Evaluation} *)

val eval : (string -> Table.t) -> t -> Table.t
(** Evaluate against an environment of named base tables. *)

val bases : t -> string list
(** Base tables referenced by the query, left to right (with
    duplicates). *)

val run : (string -> Table.t) -> string -> Table.t
(** Parse and evaluate in one step. *)

(** {1 Printing and parsing}

    [parse] and [pp]/[to_string] round-trip: printing uses the same
    surface syntax the parser accepts. *)

val pp : Format.formatter -> t -> unit
val pp_term : Format.formatter -> t -> unit
(** Like {!pp} but parenthesising set operations, as required in
    pipeline-stage position. *)

val pp_pred : Format.formatter -> Pred.t -> unit
val pp_expr : Format.formatter -> Pred.expr -> unit
val to_string : t -> string

val parse : string -> t
(** @raise Parse_error on malformed input (including trailing tokens).
    Messages carry the 1-based line/column and the offending token,
    e.g. ["line 1, column 12: expected a stage ('where', 'select' or
    'rename'), got integer 3"]. *)

val parse_prefix : Qlex.t list -> eof:Qlex.pos -> t * Qlex.t list
(** Parse the longest query expression at the head of a token stream,
    returning it with the unconsumed suffix.  [eof] positions
    end-of-input errors.  The ESMQL statement parser ([Esm_ql]) embeds
    query expressions through this entry point so there is exactly one
    grammar.
    @raise Parse_error on malformed input. *)

(** {1 Updatable views}

    Compile a single-base pipeline into a relational lens from the base
    table to the view.  Supported stages: [where] (select lens),
    [select] (project lens — the key columns must be kept), [rename]
    (iso).  Set operations are not updatable and raise
    {!Not_updatable}. *)

exception Not_updatable of string

val to_lens :
  schema:Schema.t ->
  key:string list ->
  t ->
  (Table.t, Table.t) Esm_lens.Lens.t
(** [schema] is the base-table schema, [key] the columns identifying
    rows (used by project's [put] to restore dropped values; renamed
    along with everything else by [rename] stages).
    @raise Not_updatable on unsupported stages or key-dropping selects. *)

val lens_of_string :
  schema:Schema.t ->
  key:string list ->
  string ->
  (Table.t, Table.t) Esm_lens.Lens.t
(** Parse a view definition and compile it in one step. *)

val pedigree : schema:Schema.t -> key:string list -> t -> Esm_core.Pedigree.t
(** The {!Esm_core.Pedigree.Plan} provenance {!to_lens} compilation
    produces: the composed per-combinator pedigrees under a [Plan] node
    carrying the query's surface syntax.  Total — shapes {!to_lens}
    rejects get an [Opaque] body instead of raising. *)

val to_dlens : schema:Schema.t -> key:string list -> t -> Rlens.dlens
(** Like {!to_lens}, but delta-capable: view edits can be pushed back
    incrementally with {!Rlens.put_delta} instead of replacing the whole
    view.  The result's [pedigree] is a [Plan] node over the combinator
    pipeline.

    Memoized: compilation is pure in (query, schema, key) — the printed
    forms key a process-wide plan cache, so repeated compilations of
    the same view are O(1) hits (the ["query.plan"] {!Esm_incr.Stats}
    counter).  A cached plan carries its full pedigree; a hit reports
    exactly the law level of a cold compile. *)

val to_dlens_uncached : schema:Schema.t -> key:string list -> t -> Rlens.dlens
(** The cold compiler behind {!to_dlens}, bypassing the plan cache —
    the reference for cache-transparency tests (law-level parity of a
    memo hit vs a fresh compile). *)

val clear_plan_cache : unit -> unit
(** Drop every cached plan (they recompile on next use).  For tests
    that need a guaranteed cold compile through {!to_dlens} itself. *)

val dlens_of_string :
  schema:Schema.t -> key:string list -> string -> Rlens.dlens
(** Parse a view definition and compile it to a delta-capable lens. *)
