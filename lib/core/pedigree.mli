(** Construction provenance for packed bx.

    Records which of the paper's constructions (Lemmas 4–6, §3.4, §4,
    composition, wrappers) produced a packed bx, so that
    {!Esm_analysis.Law_infer} can replay the lemmas and infer statically
    which law level the instance satisfies.  A pedigree is a {e claim}
    about how the bx was built; `bxlint` cross-checks the inferred level
    against the sampling {!Certify} report, surfacing over-claims. *)

type t =
  | Of_lens of { name : string; vwb : bool }
      (** Lemma 4; [vwb] claims (PutPut), upgrading the induced bx to
          overwriteable. *)
  | Of_algebraic of { name : string; undoable : bool }
      (** Lemma 5; [undoable] claims undoable restorers, giving (SS). *)
  | Of_symmetric of { name : string }
      (** Lemma 6; only the plain set-bx laws are claimed. *)
  | Pair  (** §3.4: the independent state monad on [A * B]; commuting. *)
  | Identity
      (** The identity bx: overwriteable but not commuting (both sides
          write the same cell). *)
  | Compose of t * t
      (** Sequential composition; laws are the meet of the components'. *)
  | Flip of t  (** A and B swapped; laws are side-symmetric. *)
  | Journalled of t
      (** {!Journal} wrappers: observable history destroys (SS) and
          commutation regardless of the base. *)
  | Effectful of { name : string }
      (** §4: change-triggered I/O destroys (SS). *)
  | Opaque of { name : string }
      (** Unknown construction; assume only the basic set-bx laws. *)
  | Atomic of t
      (** {!Atomic.harden_packed}: setters run transactionally with
          snapshot-rollback; law level is the base level (on fault-free
          inputs the wrapper is observationally the base bx). *)
  | Replicated of t
      (** [Esm_sync.Store]: the base bx behind a versioned oplog with
          snapshot/replay recovery; commits are transactional, so the
          base law level is preserved and rollback protection added. *)
  | Select of { pred : string; key_preserving : bool }
      (** [Rlens.select]; [key_preserving] claims the predicate reads
          only key columns, which restores (PutPut). *)
  | Project of { keep : string list; key : string list; lossless : bool }
      (** [Rlens.project]; [lossless] claims all source columns are
          kept (an iso).  Lossy projections restore dropped columns from
          the old source, so only the plain set-bx laws are claimed. *)
  | Rename of (string * string) list
      (** [Rlens.rename]: a schema iso — very well-behaved. *)
  | Join of { on : string list; fd_proven : bool }
      (** [Rlens.join] on shared columns [on]; [fd_proven] claims the
          view key functionally determines the joined rows (undo law). *)
  | Dcompose of t * t
      (** [Rlens.dcompose] (outer first); laws are the meet. *)
  | Delta_of of t
      (** A delta-propagation path that agrees with the base full-put
          lens; law level is the base level. *)
  | Plan of { query : string; body : t }
      (** A compiled [Query] plan; [query] is the surface syntax, law
          level is the body's. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val opaque : string -> t
(** [opaque name] — the pedigree of a bx of unknown construction. *)

val has_opaque : t -> bool
(** Does any node of the pedigree tree record an unknown construction?
    Used by the `bxlint` catalog gate: a compiled query plan whose
    pedigree contains [Opaque] lost its provenance somewhere. *)
