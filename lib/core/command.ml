(** A command language over entangled state monads, with a law-driven
    optimizer.

    Programs are built from sets, view-dependent modifications and
    view-dependent branches.  The optimizer is a small abstract
    interpretation tracking the {e known} current value of each view —
    and its soundness argument is exactly the paper's algebra:

    - (GS) justifies deleting a set of the already-current value;
    - (SG) justifies constant-folding a read that follows a set (branch
      selection, modify-to-set strengthening);
    - {e entanglement} (the absence of the §3.4 commutation law) forces
      the analysis to INVALIDATE its knowledge of the opposite view at
      every set — an optimizer that assumed independence would be
      unsound, and tests exhibit a concrete miscompilation on the parity
      bx ({!optimize_unsafe_commuting});
    - (SS) justifies collapsing adjacent same-side sets, so that rewrite
      is only available in {!optimize_overwriteable}.

    [test/test_command.ml] property-checks each optimizer level against
    direct execution on instances with exactly the matching laws. *)

type ('a, 'b) t =
  | Skip
  | Seq of ('a, 'b) t * ('a, 'b) t
  | Set_a of 'a
  | Set_b of 'b
  | Modify_a of ('a -> 'a)  (** [get_a >>= fun v -> set_a (f v)] *)
  | Modify_b of ('b -> 'b)
  | If_a of ('a -> bool) * ('a, 'b) t * ('a, 'b) t
      (** branch on the current A view *)
  | If_b of ('b -> bool) * ('a, 'b) t * ('a, 'b) t

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let rec exec (bx : ('a, 'b, 's) Concrete.set_bx) (cmd : ('a, 'b) t) (s : 's) :
    's =
  match cmd with
  | Skip -> s
  | Seq (c1, c2) -> exec bx c2 (exec bx c1 s)
  | Set_a a -> bx.Concrete.set_a a s
  | Set_b b -> bx.Concrete.set_b b s
  | Modify_a f -> bx.Concrete.set_a (f (bx.Concrete.get_a s)) s
  | Modify_b f -> bx.Concrete.set_b (f (bx.Concrete.get_b s)) s
  | If_a (p, c1, c2) ->
      if p (bx.Concrete.get_a s) then exec bx c1 s else exec bx c2 s
  | If_b (p, c1, c2) ->
      if p (bx.Concrete.get_b s) then exec bx c1 s else exec bx c2 s

(** Number of bx operations a command performs in the worst case
    (branches count the larger arm). *)
let rec cost : ('a, 'b) t -> int = function
  | Skip -> 0
  | Seq (c1, c2) -> cost c1 + cost c2
  | Set_a _ | Set_b _ -> 1
  | Modify_a _ | Modify_b _ -> 2
  | If_a (_, c1, c2) | If_b (_, c1, c2) -> 1 + max (cost c1) (cost c2)

(* ------------------------------------------------------------------ *)
(* The optimizer                                                       *)
(* ------------------------------------------------------------------ *)

type ('a, 'b) knowledge = { known_a : 'a option; known_b : 'b option }

let nothing = { known_a = None; known_b = None }

(** How much may be assumed about the instance:
    - [`Any] — only the set-bx laws (GS/SG/GG);
    - [`Undoable] — additionally the undo law
      [set_a (get_a s) (set_a v s) = s]: writing back the original value
      cancels an intervening same-side set;
    - [`Overwriteable] — additionally (SS);
    - [`Commuting] — additionally §3.4 commutation ([set_a]/[set_b]
      independent); UNSOUND on entangled instances. *)
type level = [ `Any | `Undoable | `Overwriteable | `Commuting ]

let level_rank : level -> int = function
  | `Any -> 0
  | `Undoable -> 1
  | `Overwriteable -> 2
  | `Commuting -> 3

let optimize_at (type a b) (level : level) ~(eq_a : a -> a -> bool)
    ~(eq_b : b -> b -> bool) (cmd : (a, b) t) : (a, b) t =
  let at_least l = level_rank level >= level_rank l in
  let merge_known eq k1 k2 =
    match (k1, k2) with
    | Some x, Some y when eq x y -> Some x
    | _ -> None
  in
  let seq c1 c2 =
    match (c1, c2) with
    | Skip, c | c, Skip -> c
    | Set_a _, Set_a _ when at_least `Overwriteable -> c2 (* (SS) *)
    | Set_b _, Set_b _ when at_least `Overwriteable -> c2
    | _ -> Seq (c1, c2)
  in
  (* Returns the optimized command and the post-knowledge. *)
  let rec go (k : (a, b) knowledge) : (a, b) t -> (a, b) t * (a, b) knowledge
      = function
    | Skip -> (Skip, k)
    | Seq (c1, c2) -> (
        let c1', k1 = go k c1 in
        let c2', k2 = go k1 c2 in
        (* Undo cancellation: [set_a v; set_a a0] where [a0] is the
           statically-known pre-value of A is exactly the undo law's
           left-hand side, so the pair restores the pre-state.  (At
           [`Overwriteable] the same collapse follows from (SS) then
           (GS).)  Post-knowledge is the untouched pre-knowledge [k]. *)
        match (c1', c2') with
        | Set_a _, Set_a a0
          when at_least `Undoable
               && (match k.known_a with
                  | Some a' -> eq_a a' a0
                  | None -> false) ->
            (Skip, k)
        | Set_b _, Set_b b0
          when at_least `Undoable
               && (match k.known_b with
                  | Some b' -> eq_b b' b0
                  | None -> false) ->
            (Skip, k)
        | _ -> (seq c1' c2', k2))
    | Set_a a -> (
        match k.known_a with
        | Some a0 when eq_a a a0 ->
            (* (GS): setting the current value is the identity *)
            (Skip, k)
        | _ ->
            ( Set_a a,
              {
                known_a = Some a;
                (* entanglement: the write may have changed B — unless
                   the instance is known commuting *)
                known_b = (if level = `Commuting then k.known_b else None);
              } ))
    | Set_b b -> (
        match k.known_b with
        | Some b0 when eq_b b b0 -> (Skip, k)
        | _ ->
            ( Set_b b,
              {
                known_b = Some b;
                known_a = (if level = `Commuting then k.known_a else None);
              } ))
    | Modify_a f -> (
        match k.known_a with
        | Some a0 ->
            (* (SG) lets us fold the read; re-enter as a plain set so the
               (GS)/(SS) rules above also apply to it *)
            go k (Set_a (f a0))
        | None ->
            ( Modify_a f,
              {
                known_a = None;
                known_b = (if level = `Commuting then k.known_b else None);
              } ))
    | Modify_b f -> (
        match k.known_b with
        | Some b0 -> go k (Set_b (f b0))
        | None ->
            ( Modify_b f,
              {
                known_b = None;
                known_a = (if level = `Commuting then k.known_a else None);
              } ))
    | If_a (p, c1, c2) -> (
        match k.known_a with
        | Some a0 ->
            (* (SG): the guard's read is statically known *)
            go k (if p a0 then c1 else c2)
        | None ->
            let c1', k1 = go k c1 in
            let c2', k2 = go k c2 in
            ( If_a (p, c1', c2'),
              {
                known_a = merge_known eq_a k1.known_a k2.known_a;
                known_b = merge_known eq_b k1.known_b k2.known_b;
              } ))
    | If_b (p, c1, c2) -> (
        match k.known_b with
        | Some b0 -> go k (if p b0 then c1 else c2)
        | None ->
            let c1', k1 = go k c1 in
            let c2', k2 = go k c2 in
            ( If_b (p, c1', c2'),
              {
                known_a = merge_known eq_a k1.known_a k2.known_a;
                known_b = merge_known eq_b k1.known_b k2.known_b;
              } ))
  in
  fst (go nothing cmd)

(** Sound for every set-bx (uses only GS/SG and Skip elimination). *)
let optimize ~eq_a ~eq_b cmd = optimize_at `Any ~eq_a ~eq_b cmd

(** Additionally cancels [set; set-back-the-original] pairs via the undo
    law; sound for undoable (and stronger) instances. *)
let optimize_undoable ~eq_a ~eq_b cmd = optimize_at `Undoable ~eq_a ~eq_b cmd

(** Additionally collapses adjacent same-side sets; sound exactly for
    overwriteable instances. *)
let optimize_overwriteable ~eq_a ~eq_b cmd =
  optimize_at `Overwriteable ~eq_a ~eq_b cmd

(** Additionally assumes [set_a]/[set_b] commute, retaining knowledge of
    the opposite view across sets.  Sound for §3.4-style independent
    instances; {e unsound} for entangled ones (tests exhibit the
    miscompilation).  Static precondition:
    [Esm_analysis.Law_infer.level (Concrete.pedigree p) = `Commuting] —
    run `bxlint` (or {!Esm_analysis.Lint}) to check it before reaching
    for this level. *)
let optimize_unsafe_commuting ~eq_a ~eq_b cmd =
  optimize_at `Commuting ~eq_a ~eq_b cmd
