(** A bx with a richer witness structure: every {e effective} update is
    recorded in a journal carried inside the hidden state.

    The paper's conclusions anticipate "bx with richer complements or
    witness structures" being absorbed into the monad's hidden state; this
    wrapper is a concrete demonstration.  Because only {e changing} sets
    are journalled (like the change-triggered prints of Section 4), the
    wrapped bx still satisfies (GG), (GS) and (SG) with the journal
    included in state equality — but not (SS): overwriting leaves a longer
    journal than writing once, so the wrapper is a natural example of a
    lawful set-bx that is {e not} overwriteable even when the underlying
    bx is. *)

type ('a, 'b) edit = Edited_a of 'a | Edited_b of 'b

let equal_edit ~eq_a ~eq_b e1 e2 =
  match (e1, e2) with
  | Edited_a a1, Edited_a a2 -> eq_a a1 a2
  | Edited_b b1, Edited_b b2 -> eq_b b1 b2
  | (Edited_a _ | Edited_b _), _ -> false

(** The journalled state: underlying state plus the edit log, newest
    first. *)
type ('a, 'b, 's) state = { current : 's; log : ('a, 'b) edit list }

let initial (s : 's) : ('a, 'b, 's) state = { current = s; log = [] }
let history (st : ('a, 'b, 's) state) : ('a, 'b) edit list = List.rev st.log

let equal_state ~eq_a ~eq_b ~eq_s st1 st2 =
  eq_s st1.current st2.current
  && Esm_laws.Equality.list (equal_edit ~eq_a ~eq_b) st1.log st2.log

(** Wrap a concrete set-bx with change journalling. *)
let journalled ~(eq_a : 'a -> 'a -> bool) ~(eq_b : 'b -> 'b -> bool)
    (t : ('a, 'b, 's) Concrete.set_bx) :
    ('a, 'b, ('a, 'b, 's) state) Concrete.set_bx =
  {
    Concrete.name = "journalled " ^ t.Concrete.name;
    get_a = (fun st -> t.Concrete.get_a st.current);
    get_b = (fun st -> t.Concrete.get_b st.current);
    set_a =
      (fun a st ->
        if eq_a (t.Concrete.get_a st.current) a then st
        else
          let current = t.Concrete.set_a a st.current in
          (* Journal only updates that took effect: a hardened inner bx
             ({!Atomic.harden}) rolls a failing set back to the snapshot,
             and by (SG) an effective set leaves [get_a = a] — so a
             post-set mismatch means the update never happened and must
             not leave a phantom entry in the log. *)
          if eq_a (t.Concrete.get_a current) a then
            { current; log = Edited_a a :: st.log }
          else { current; log = st.log });
    set_b =
      (fun b st ->
        if eq_b (t.Concrete.get_b st.current) b then st
        else
          let current = t.Concrete.set_b b st.current in
          if eq_b (t.Concrete.get_b current) b then
            { current; log = Edited_b b :: st.log }
          else { current; log = st.log });
  }

(* ------------------------------------------------------------------ *)
(* Undo                                                                *)
(* ------------------------------------------------------------------ *)

(** Checkpointing with undo: the hidden state additionally stacks every
    {e prior} state that an effective update replaced, so synchronisation
    history can be rolled back — witness structure put to work.  Like
    {!journalled}, the wrapper preserves (GG)/(GS)/(SG) (no-op sets do
    not checkpoint) and loses (SS). *)
module Undo = struct
  type ('s) state = { current : 's; past : 's list }

  let initial (s : 's) : 's state = { current = s; past = [] }
  let depth (st : 's state) : int = List.length st.past

  let equal_state ~(eq_s : 's -> 's -> bool) (st1 : 's state)
      (st2 : 's state) : bool =
    eq_s st1.current st2.current
    && Esm_laws.Equality.list eq_s st1.past st2.past

  (** Roll back to the state before the most recent effective update. *)
  let undo (st : 's state) : 's state option =
    match st.past with
    | [] -> None
    | prev :: rest -> Some { current = prev; past = rest }

  let wrap ~(eq_a : 'a -> 'a -> bool) ~(eq_b : 'b -> 'b -> bool)
      (t : ('a, 'b, 's) Concrete.set_bx) :
      ('a, 'b, 's state) Concrete.set_bx =
    {
      Concrete.name = "undoable " ^ t.Concrete.name;
      get_a = (fun st -> t.Concrete.get_a st.current);
      get_b = (fun st -> t.Concrete.get_b st.current);
      set_a =
        (fun a st ->
          if eq_a (t.Concrete.get_a st.current) a then st
          else
            let current = t.Concrete.set_a a st.current in
            (* As in {!journalled}: only checkpoint updates that took
               effect, so a rolled-back inner set leaves no phantom
               checkpoint for {!undo} to restore. *)
            if eq_a (t.Concrete.get_a current) a then
              { current; past = st.current :: st.past }
            else { current; past = st.past });
      set_b =
        (fun b st ->
          if eq_b (t.Concrete.get_b st.current) b then st
          else
            let current = t.Concrete.set_b b st.current in
            if eq_b (t.Concrete.get_b current) b then
              { current; past = st.current :: st.past }
            else { current; past = st.past });
    }
end
