(** The typed bx error taxonomy (see [docs/ROBUSTNESS.md]).

    A structured error — kind, operation name, detail — behind every
    failure an entangled update can surface.  Subsystems keep their
    historical string exceptions as thin wrappers for compatibility but
    build them through {!raisef} and register a classifier, so {!of_exn}
    recovers the structure from any bx exception and {!Atomic} can
    distinguish bx failures (roll back) from programming errors
    (propagate). *)

type kind =
  | Shape  (** a partial lens applied outside its domain *)
  | Table  (** relational table construction or set operations *)
  | Schema  (** schema construction and column lookup *)
  | Model  (** MDE model construction and object updates *)
  | Metamodel  (** metamodel validation and fresh-object synthesis *)
  | Parse  (** query-language lexing and parsing *)
  | Fault  (** an injected failure ({!Chaos}) *)
  | Index  (** a memoized-index self-check failure *)
  | Conflict
      (** an optimistic version check failed: a concurrent session
          committed against the same base first ([Esm_sync]); losers
          rebase (pull the winning entries and replay through the bx)
          and retry *)
  | Corrupt
      (** an on-disk oplog failed validation beyond what crash recovery
          may repair — bad magic or format version, a mid-file checksum
          mismatch, a version gap ([Esm_sync.Durable_log]).  A torn
          {e tail} is {e not} [Corrupt]: that is the artifact an honest
          crash leaves, and recovery truncates it silently. *)
  | Transport of [ `Transient | `Permanent ]
      (** a network-layer failure ([Esm_sync.Transport]): a broken or
          half-open connection, a mangled frame, a classified
          [Unix.Unix_error].  The flag makes retry policy type-driven:
          [`Transient] failures (connection reset, timeout family,
          unreachable peer) are worth a backoff-and-resend, [`Permanent]
          ones (bad descriptor, permissions, misconfigured address) are
          not. *)
  | Timeout  (** a per-request or retry-budget deadline expired *)
  | Overload
      (** the server shed this request unexecuted: the connection's
          pending-response queue exceeded its bound
          ([Esm_sync.Transport]) — back off and resend *)
  | Other  (** a classified bx error of no more specific kind *)

val kind_name : kind -> string

type t = {
  kind : kind;
  op : string;  (** the operation that failed, e.g. ["of_rows"] *)
  detail : string;  (** human-readable description, offending value included *)
}

exception Bx_error of t

val v : kind -> op:string -> string -> t
val message : t -> string
(** ["op: detail"] (or just the detail when the op is unknown). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_message : kind -> string -> t
(** Recover the [(op, detail)] structure from a legacy ["op: detail"]
    message. *)

val raise_error :
  kind -> op:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Bx_error} with an explicit operation name. *)

val raisef :
  kind ->
  ?wrap:(string -> exn) ->
  ('a, Format.formatter, unit, 'b) format4 ->
  'a
(** Format the message and raise [wrap msg] — the subsystem's legacy
    exception constructor — or {!Bx_error} when no wrapper is given.
    The wrapped form stays classifiable through the subsystem's
    registered classifier. *)

val register_classifier : (exn -> t option) -> unit
(** Hook a legacy exception into {!of_exn}.  Called once at module
    initialisation by each subsystem that keeps a compatibility
    exception (e.g. [Table_error]). *)

val of_exn : exn -> t option
(** The structured error behind any bx exception; [None] for exceptions
    that are not bx errors. *)

val is_bx_exn : exn -> bool

val is_fault : t -> bool

val is_degradable : t -> bool
(** [Fault] and [Index]: broken acceleration machinery rather than an
    invalid update — fast paths respond by falling back to the full
    oracle instead of failing the operation. *)

val degradable_exn : exn -> bool

val of_unix_error : Unix.error -> string -> string -> t
(** Classify a [Unix.Unix_error (err, fn, arg)] payload into a
    [Transport] error whose transient/permanent flag is decided by the
    errno (the interrupted/again family and peer-or-path failures are
    transient; descriptor, permission and address errors are
    permanent).  {!of_exn} applies this to raw [Unix.Unix_error]
    exceptions, so socket code needs no string matching to build a
    retry policy. *)

val is_transient : t -> bool
(** [Transport `Transient], [Timeout] and [Overload]: the request may
    never have executed — resend the {e same} request (same idempotency
    key) after a backoff. *)

val retryable : t -> bool
(** {!is_transient} plus [Conflict] and [Fault]: failures where
    retrying can succeed, though for these the server definitely
    executed (and rejected) the request, so a retry must re-execute
    under a {e fresh} idempotency key. *)
