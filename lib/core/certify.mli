(** Programmatic law certification for packed bx: a sampling-based law
    report without a test framework.  "Pass" means "no violation found
    on the sampled reachable states and supplied values" — use the
    QCheck suites ({!Bx_laws}, {!Concrete_laws}) for serious coverage. *)

type verdict = { law : string; holds : bool; counterexample : string option }

type report = { subject : string; verdicts : verdict list }

val passed : report -> bool
(** Every verdict holds (including the informative (SS)/commute rows). *)

val well_behaved : report -> bool
(** The required set-bx laws (GS/SG on both sides) hold; (SS) and
    commutation are informative extras a set-bx may legitimately fail. *)

val observed_level :
  report -> [ `Set_bx | `Undoable | `Overwriteable | `Commuting ] option
(** The highest law level the sampled evidence is consistent with
    ([None] if a required law failed).  [`Undoable]'s distinguishing law
    is [set (get s) (set v s) = s], sampled as the UNDO_a/UNDO_b
    verdicts.  Sampling only falsifies, so a statically inferred level
    is refuted iff strictly above this — the cross-check hook used by
    `bxlint` against {!Esm_analysis.Law_infer.level}. *)

val pp_report : Format.formatter -> report -> unit

val certify :
  ?walk_length:int ->
  ?walks:int ->
  values_a:'a list ->
  values_b:'b list ->
  eq_a:('a -> 'a -> bool) ->
  eq_b:('b -> 'b -> bool) ->
  show_a:('a -> string) ->
  show_b:('b -> string) ->
  ('a, 'b) Concrete.packed ->
  report
(** Check (GS), (SG) per side plus the informative UNDO and (SS) per
    side and §3.4 commutation, on states reached by deterministic
    pseudo-random walks from the packed initial state. *)
