(** Composition of entangled state monads — the other open problem in the
    paper's conclusions ("the question of whether entangled state monads
    can be composed seems nontrivial").

    For the state-based instances in this library there is a natural
    candidate: given [t1 : A <-> B] over state [s1] and [t2 : B <-> C]
    over state [s2], take the composite state to be pairs [(x1, x2)] that
    are {e aligned} — [t1.get_b x1 = t2.get_a x2] — and propagate updates
    through the shared middle type:

    {v
    set_a a (x1, x2) = let x1' = t1.set_a a x1 in
                       (x1', t2.set_a (t1.get_b x1') x2)
    set_c c (x1, x2) = let x2' = t2.set_b c x2 in
                       (t1.set_b (t2.get_a x2') x1, x2')
    v}

    On the aligned subset, the composite satisfies the set-bx laws
    whenever both components do (property-tested in
    [test/test_compose.ml]); on unaligned states law (GS) can fail, which
    is precisely the subtlety the paper anticipates — composition demands
    a restriction of the state space, mirroring how symmetric lenses must
    be quotiented for composition to behave.

    Overwriteability is also preserved: (SS) for the composite follows
    from (SS) of each component pointwise. *)

(** The alignment invariant of the composite state. *)
let aligned ~(eq_mid : 'b -> 'b -> bool) (t1 : ('a, 'b, 's1) Concrete.set_bx)
    (t2 : ('b, 'c, 's2) Concrete.set_bx) ((x1, x2) : 's1 * 's2) : bool =
  eq_mid (t1.Concrete.get_b x1) (t2.Concrete.get_a x2)

(** Force alignment by pushing the left component's B view into the right
    component. *)
let align (t1 : ('a, 'b, 's1) Concrete.set_bx)
    (t2 : ('b, 'c, 's2) Concrete.set_bx) ((x1, x2) : 's1 * 's2) : 's1 * 's2 =
  (x1, t2.Concrete.set_a (t1.Concrete.get_b x1) x2)

(** Sequential composition.  The result is law-abiding on the
    {!aligned} subset of ['s1 * 's2]; use {!align} to construct valid
    initial states. *)
let compose (t1 : ('a, 'b, 's1) Concrete.set_bx)
    (t2 : ('b, 'c, 's2) Concrete.set_bx) : ('a, 'c, 's1 * 's2) Concrete.set_bx
    =
  {
    Concrete.name = t1.Concrete.name ^ " ; " ^ t2.Concrete.name;
    get_a = (fun (x1, _) -> t1.Concrete.get_a x1);
    get_b = (fun (_, x2) -> t2.Concrete.get_b x2);
    set_a =
      (fun a (x1, x2) ->
        let x1' = t1.Concrete.set_a a x1 in
        (x1', t2.Concrete.set_a (t1.Concrete.get_b x1') x2));
    set_b =
      (fun c (x1, x2) ->
        let x2' = t2.Concrete.set_b c x2 in
        (t1.Concrete.set_b (t2.Concrete.get_a x2') x1, x2'));
  }

(** Infix composition. *)
let ( >>> ) = compose

(** Compose packed bx, aligning the initial states. *)
let compose_packed (Concrete.Packed p1 : ('a, 'b) Concrete.packed)
    (Concrete.Packed p2 : ('b, 'c) Concrete.packed) : ('a, 'c) Concrete.packed
    =
  let bx = compose p1.Concrete.bx p2.Concrete.bx in
  let init = align p1.Concrete.bx p2.Concrete.bx (p1.Concrete.init, p2.Concrete.init) in
  Concrete.Packed
    {
      bx;
      init;
      eq_state =
        (fun (x1, x2) (y1, y2) ->
          p1.Concrete.eq_state x1 y1 && p2.Concrete.eq_state x2 y2);
      pedigree = Pedigree.Compose (p1.Concrete.pedigree, p2.Concrete.pedigree);
    }

(** The identity bx over a single value: unit for composition up to
    observational equivalence. *)
let identity () : ('a, 'a, 'a) Concrete.set_bx =
  {
    Concrete.name = "id";
    get_a = Fun.id;
    get_b = Fun.id;
    set_a = (fun a _ -> a);
    set_b = (fun a _ -> a);
  }

(** An n-fold chain of the same bx (used by the composition-scaling
    benchmark).  [chain n t] has state ['s] nested [n] deep on the right:
    since OCaml cannot express that type statically for dynamic [n], the
    chain is built over packed bx. *)
let rec chain_packed (n : int) (p : ('a, 'a) Concrete.packed) :
    ('a, 'a) Concrete.packed =
  if n <= 1 then p else compose_packed p (chain_packed (n - 1) p)
