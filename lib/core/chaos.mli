(** Deterministic, seed-keyed fault injection (see
    [docs/ROBUSTNESS.md]).

    A chaos instance raises injected {!Error.Fault}s at registered fault
    sites, with a schedule fully determined by (seed, site name, visit
    count) — the same seed replays the same faults on the same workload.
    Installation is scoped with {!with_chaos}; with no instance
    installed, every {!point} is a one-ref-read no-op. *)

type t

val make : ?rate:float -> seed:int -> unit -> t
(** A chaos instance firing at each fault site with probability [rate]
    (default [0.01]), decided deterministically from [seed].
    @raise Invalid_argument if [rate] is outside [[0, 1]]. *)

val with_chaos : t -> (unit -> 'a) -> 'a
(** Run the thunk with the instance installed; restores the previous
    instance (if any) afterwards, exceptions included. *)

val protected : (unit -> 'a) -> 'a
(** Run the thunk with injection suspended — the fallback oracles of the
    delta fast paths run under [protected] so recovery cannot itself be
    faulted.  Nests. *)

val active : unit -> t option
(** The installed instance, unless injection is suspended. *)

val at_sites : string list -> (unit -> 'a) -> 'a
(** Run the thunk with injection restricted to the listed sites, matched
    by exact name or prefix (["net."] enables every network site).
    Filtered-out sites neither fire nor advance their visit counters, so
    the schedule at the enabled sites is the same as it would be in an
    unfiltered run.  Scoped and restored like {!with_chaos}; composes
    with it in either order. *)

val point : string -> unit
(** A fault site.  No-op without an active instance; otherwise counts
    the visit and raises an injected {!Error.Fault} ({!Error.Bx_error})
    when the deterministic schedule says so. *)

val note_fallback : string -> unit
(** Record a delta→full fallback (called by [Rlens.put_delta] /
    [Mbx.fwd_delta] when degrading). *)

val injected : t -> int
(** Faults this instance has raised. *)

val fallbacks : t -> int
(** Fallbacks recorded while this instance was installed. *)

val fallbacks_total : unit -> int
(** Process-wide fallback count (degradations also happen without chaos
    installed, e.g. on index self-check failures). *)

val reset : t -> unit
(** Clear counters and the per-site visit state (replays the schedule
    from the start). *)

val wrap_lens : ('s, 'v) Esm_lens.Lens.t -> ('s, 'v) Esm_lens.Lens.t
(** Fault sites around [get]/[put], keyed by the lens name. *)

val wrap_bx : ('a, 'b, 's) Concrete.set_bx -> ('a, 'b, 's) Concrete.set_bx
(** Fault sites around all four operations, keyed by the bx name. *)
