(** Structural hashing for the incremental recomputation layer (see
    [docs/PERFORMANCE.md], "Incremental recomputation").

    A cached structural hash buys O(1) {e rejection}: two values whose
    hashes differ are certainly different, so a memo can skip comparing
    (or recomputing) them.  Hash {e equality} proves nothing — every
    cache that accepts on matching hashes must verify with a real
    equality before trusting the hit.

    Cached hashes are performance state, not truth: the chaos site
    {!site} ["incr.hash"] models a corrupted cache, and {!trusted} is
    the one gate through which cached hashes are read — an injected
    fault there degrades to recomputing the hash from the underlying
    value (under {!Chaos.protected}), mirroring the delta-path
    degradation policy.  A corrupted hash can therefore cost a spurious
    recomputation, never a wrong answer. *)

val site : string
(** The chaos site guarding every cached-hash read: ["incr.hash"]. *)

val combine : int -> int -> int
(** Mix two hashes, order-dependently. *)

val of_value : 'a -> int
(** Structural hash of an immutable value
    ({!Hashtbl.hash_param} with widened meaningful/total node limits, so
    rows of realistic width hash on their full contents). *)

val trusted : cached:int option -> recompute:(unit -> int) -> int
(** Read a cached hash through the {!site} chaos gate.  [None] always
    recomputes.  [Some h] visits the site and returns [h] — unless an
    injected degradable fault fires, in which case the fallback is
    recorded and [recompute] runs under {!Chaos.protected} (the
    recovery may not itself be faulted).  [recompute] is expected to
    rebuild from the ground truth and re-cache. *)
