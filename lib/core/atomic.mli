(** Transactional (all-or-nothing) execution of entangled updates (see
    [docs/ROBUSTNESS.md]).

    States are immutable values, so a snapshot is the input state and
    rollback is returning it unchanged: a failed
    [set_a]/[set_b]/[put_ab]/[put_ba] leaves the state observably equal
    to the pre-call snapshot.  Only bx exceptions ({!Error.of_exn}) roll
    back; programming errors propagate. *)

type ('s, 'a) state = 's -> 'a * 's
(** The (transparent) shape of every state-monad computation in this
    library, polymorphic in the state type. *)

val run : ('s, 'a) state -> 's -> ('a, Error.t) result * 's
(** [(Ok a, s')] on success; [(Error e, s)] — the original snapshot —
    when a bx exception aborts the computation. *)

val atomic : ('s, 'a) state -> ('s, ('a, Error.t) result) state
(** {!run} re-packaged as a state computation: the error-monad
    transformer applied to the entangled state monad. *)

(** {1 Transactional single operations} *)

val set_a :
  ('a, 'b, 's) Concrete.set_bx -> 'a -> 's -> ('s, Error.t) result

val set_b :
  ('a, 'b, 's) Concrete.set_bx -> 'b -> 's -> ('s, Error.t) result

val put_ab :
  ('a, 'b, 's) Concrete.put_bx -> 'a -> 's -> ('b * 's, Error.t) result

val put_ba :
  ('a, 'b, 's) Concrete.put_bx -> 'b -> 's -> ('a * 's, Error.t) result

val exec_command :
  ('a, 'b, 's) Concrete.set_bx ->
  ('a, 'b) Command.t ->
  's ->
  ('s, Error.t) result
(** Run a whole command transactionally: any failure inside rolls the
    state back to the snapshot taken before the command started. *)

(** {1 Hardening} *)

val harden : ('a, 'b, 's) Concrete.set_bx -> ('a, 'b, 's) Concrete.set_bx
(** Each setter becomes its own transaction: on failure the state is
    left unchanged instead of raising.  The name gains an
    ["atomic(...)"] wrapper. *)

val harden_packed : ('a, 'b) Concrete.packed -> ('a, 'b) Concrete.packed
(** {!harden} under the pack, recording {!Pedigree.Atomic} so static
    law-level inference sees the rollback protection. *)
