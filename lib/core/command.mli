(** A command language over entangled state monads, with a law-driven
    optimizer: (GS) deletes sets of the already-current value, (SG)
    constant-folds reads after sets, entanglement forces invalidation of
    the opposite view's known value at every set, and (SS) — available
    only at the overwriteable level — collapses adjacent same-side sets.
    Each optimization level is property-tested sound exactly on the
    instances with the matching laws. *)

type ('a, 'b) t =
  | Skip
  | Seq of ('a, 'b) t * ('a, 'b) t
  | Set_a of 'a
  | Set_b of 'b
  | Modify_a of ('a -> 'a)  (** [get_a >>= fun v -> set_a (f v)] *)
  | Modify_b of ('b -> 'b)
  | If_a of ('a -> bool) * ('a, 'b) t * ('a, 'b) t
  | If_b of ('b -> bool) * ('a, 'b) t * ('a, 'b) t

val exec : ('a, 'b, 's) Concrete.set_bx -> ('a, 'b) t -> 's -> 's

val cost : ('a, 'b) t -> int
(** Worst-case number of bx operations performed. *)

(** Optimizer knowledge: the statically-known current value per view. *)
type ('a, 'b) knowledge = { known_a : 'a option; known_b : 'b option }

val nothing : ('a, 'b) knowledge
(** The empty knowledge (both views unknown) — the abstract domain's top
    element, also used by the {!Esm_analysis.Lint} abstract
    interpreter. *)

type level = [ `Any | `Undoable | `Overwriteable | `Commuting ]

val level_rank : level -> int
(** Position in the total order
    [`Any < `Undoable < `Overwriteable < `Commuting] (0–3). *)

val optimize_at :
  level ->
  eq_a:('a -> 'a -> bool) ->
  eq_b:('b -> 'b -> bool) ->
  ('a, 'b) t ->
  ('a, 'b) t

val optimize :
  eq_a:('a -> 'a -> bool) -> eq_b:('b -> 'b -> bool) -> ('a, 'b) t -> ('a, 'b) t
(** Sound for every set-bx. *)

val optimize_undoable :
  eq_a:('a -> 'a -> bool) -> eq_b:('b -> 'b -> bool) -> ('a, 'b) t -> ('a, 'b) t
(** Additionally cancels [set_a v; set_a a0] pairs where [a0] is the
    statically-known pre-value (the undo law
    [set_a (get_a s) (set_a v s) = s]); sound for undoable instances. *)

val optimize_overwriteable :
  eq_a:('a -> 'a -> bool) -> eq_b:('b -> 'b -> bool) -> ('a, 'b) t -> ('a, 'b) t
(** Additionally collapses adjacent same-side sets ((SS)); sound exactly
    for overwriteable instances. *)

val optimize_unsafe_commuting :
  eq_a:('a -> 'a -> bool) -> eq_b:('b -> 'b -> bool) -> ('a, 'b) t -> ('a, 'b) t
(** Additionally assumes [set_a]/[set_b] commute; UNSOUND on entangled
    instances (tests exhibit a concrete miscompilation).  Static
    precondition: the target bx's inferred law level must be
    [`Commuting] — i.e. [Esm_analysis.Law_infer.level (Concrete.pedigree
    p) = `Commuting].  `bxlint` checks this precondition over the example
    catalog and rejects programs optimized at a level above what their
    bx's pedigree justifies. *)
