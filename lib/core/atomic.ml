(** Transactional execution of entangled updates: all-or-nothing
    [set_a]/[set_b]/[put_ab]/[put_ba].

    Every bx instance in this library is a state monad over an immutable
    state value, so a {e snapshot} is just the input state itself and
    {e rollback} is returning it unchanged — {!run} evaluates a stateful
    computation and, if any bx exception escapes ({!Error.of_exn}
    recognises it), answers [Error e] {e paired with the original
    state}.  The caller's state is observably identical to the pre-call
    snapshot: no torn update between the two entangled components can
    survive a failed transaction, which is exactly the all-or-nothing
    reading of (GS)/(SG) for partial bx.

    Exceptions that are {e not} bx errors ([Invalid_argument],
    [Stack_overflow], …) are programming errors and propagate untouched.

    Mutation caveat: rollback restores the {e state value}; memoized
    caches hanging off that value (e.g. [Table.key_index]) survive by
    construction because indexes are only attached to tables that were
    fully built.  After a failed transaction over relational state,
    [Table.revalidate_indexes] additionally distrusts-and-checks the
    memo — {!Rlens} wires that in. *)

type ('s, 'a) state = 's -> 'a * 's
(** The shape every [Esm_monad.State.Make(S).t] has, exposed
    polymorphically in ['s]. *)

(** [run m s] executes the transaction [m] from snapshot [s]:
    [(Ok a, s')] on success, [(Error e, s)] — state rolled back — when a
    bx exception aborts it. *)
let run (m : ('s, 'a) state) (s : 's) : ('a, Error.t) result * 's =
  match m s with
  | (a, s') -> (Ok a, s')
  | exception e -> (
      match Error.of_exn e with
      | Some err -> (Error err, s)
      | None -> raise e)

(** [atomic m] is [run m] as a state computation again: the transformer
    form [('s, 'a) t -> ('s, ('a, bx_error) result) t]. *)
let atomic (m : ('s, 'a) state) : ('s, ('a, Error.t) result) state =
 fun s -> run m s

(* ------------------------------------------------------------------ *)
(* Transactional single operations over concrete bx records            *)
(* ------------------------------------------------------------------ *)

let attempt (f : 's -> 'x) (s : 's) : ('x, Error.t) result =
  match f s with
  | x -> Ok x
  | exception e -> (
      match Error.of_exn e with Some err -> Error err | None -> raise e)

let set_a (bx : ('a, 'b, 's) Concrete.set_bx) (a : 'a) (s : 's) :
    ('s, Error.t) result =
  attempt (bx.Concrete.set_a a) s

let set_b (bx : ('a, 'b, 's) Concrete.set_bx) (b : 'b) (s : 's) :
    ('s, Error.t) result =
  attempt (bx.Concrete.set_b b) s

let put_ab (p : ('a, 'b, 's) Concrete.put_bx) (a : 'a) (s : 's) :
    ('b * 's, Error.t) result =
  attempt (p.Concrete.put_ab a) s

let put_ba (p : ('a, 'b, 's) Concrete.put_bx) (b : 'b) (s : 's) :
    ('a * 's, Error.t) result =
  attempt (p.Concrete.put_ba b) s

let exec_command (bx : ('a, 'b, 's) Concrete.set_bx)
    (cmd : ('a, 'b) Command.t) (s : 's) : ('s, Error.t) result =
  attempt (Command.exec bx cmd) s

(* ------------------------------------------------------------------ *)
(* Hardening: absorb failures into no-ops                              *)
(* ------------------------------------------------------------------ *)

(** [harden bx] behaves like [bx] except that a failing setter leaves
    the state unchanged instead of raising — each [set] becomes its own
    committed-or-rolled-back transaction.  Getters are untouched (they
    cannot tear state; a failing getter still raises). *)
let harden (bx : ('a, 'b, 's) Concrete.set_bx) : ('a, 'b, 's) Concrete.set_bx
    =
  {
    bx with
    Concrete.name = "atomic(" ^ bx.Concrete.name ^ ")";
    set_a =
      (fun a s ->
        match set_a bx a s with Ok s' -> s' | Error _ -> s);
    set_b =
      (fun b s ->
        match set_b bx b s with Ok s' -> s' | Error _ -> s);
  }

(** [harden_packed p] hardens the underlying bx and records the wrapping
    in the pedigree ([Pedigree.Atomic]) so static analysis knows the
    pipeline is rollback-protected. *)
let harden_packed (p : ('a, 'b) Concrete.packed) : ('a, 'b) Concrete.packed =
  match p with
  | Concrete.Packed r ->
      Concrete.Packed
        {
          r with
          Concrete.bx = harden r.Concrete.bx;
          pedigree = Pedigree.Atomic r.Concrete.pedigree;
        }
