(** Construction provenance for packed bx.

    The paper derives its law hierarchy {e constructively}: Lemma 4 says a
    well-behaved lens induces a lawful set-bx (and a very well-behaved one
    an overwriteable set-bx); Section 3.4 exhibits the plain state monad
    on [A * B] as the commuting special case; Lemmas 5–6 cover algebraic
    bx and symmetric lenses; wrappers such as {!Journal} deliberately
    weaken (SS) by making history observable.  A pedigree records which of
    those constructions produced a packed bx, so that a static analysis
    ({!Esm_analysis.Law_infer}) can replay the lemmas and conclude which
    laws hold — without sampling a single state.

    Pedigrees are {e claims}: [Of_lens { vwb = true }] asserts the
    underlying lens satisfies (PutPut).  The analysis is sound relative to
    those claims, and `bxlint` cross-checks every static verdict against
    the sampling {!Certify} report, so an over-claimed pedigree is
    surfaced loudly rather than silently trusted. *)

type t =
  | Of_lens of { name : string; vwb : bool }
      (** Lemma 4: induced by an asymmetric lens.  [vwb] claims (PutPut),
          which upgrades the induced bx from lawful to overwriteable. *)
  | Of_algebraic of { name : string; undoable : bool }
      (** Lemma 5: induced by an algebraic bx over consistent pairs.
          [undoable] claims the restorers are undoable, which gives
          (SS). *)
  | Of_symmetric of { name : string }
      (** Lemma 6: induced by a symmetric lens over consistent triples.
          Symmetric lenses carry no (PutPut)-style law, so only the plain
          set-bx laws are claimed. *)
  | Pair
      (** Section 3.4: the independent state monad on [A * B]; sets
          commute. *)
  | Identity
      (** The identity bx (unit of composition).  Both sides overwrite
          the same single cell, so it is overwriteable but {e not}
          commuting: [set_a a] then [set_b b] ends at [b], the reverse
          order at [a]. *)
  | Compose of t * t
      (** Sequential composition through a shared middle view; laws are
          the meet of the component laws. *)
  | Flip of t  (** A and B swapped; laws are side-symmetric. *)
  | Journalled of t
      (** {!Journal.journalled} / {!Journal.Undo.wrap}: effective updates
          are recorded in observable history, so (SS) and commutation are
          destroyed no matter how lawful the base is. *)
  | Effectful of { name : string }
      (** Section 4: sets perform observable I/O; change-triggered output
          destroys (SS). *)
  | Opaque of { name : string }
      (** Unknown construction — e.g. a hand-rolled record.  Nothing
          beyond the basic set-bx laws may be assumed. *)
  | Atomic of t
      (** {!Atomic.harden_packed}: each setter runs as its own
          transaction, rolling back to the snapshot on any bx failure.
          On fault-free inputs the wrapper is observationally the base
          bx, so the law level is the base level; what it adds is
          rollback protection for the partial domain. *)
  | Replicated of t
      (** [Esm_sync.Store]: the base bx served behind a versioned oplog
          with snapshot/replay recovery.  Commits are transactional
          (failed applications append nothing), so replication preserves
          the base law level and adds rollback protection. *)

let rec pp fmt = function
  | Of_lens { name; vwb } ->
      Format.fprintf fmt "of_lens[%s%s]" name (if vwb then ",vwb" else "")
  | Of_algebraic { name; undoable } ->
      Format.fprintf fmt "of_algebraic[%s%s]" name
        (if undoable then ",undoable" else "")
  | Of_symmetric { name } -> Format.fprintf fmt "of_symmetric[%s]" name
  | Pair -> Format.fprintf fmt "pair"
  | Identity -> Format.fprintf fmt "id"
  | Compose (p, q) -> Format.fprintf fmt "(%a ; %a)" pp p pp q
  | Flip p -> Format.fprintf fmt "flip(%a)" pp p
  | Journalled p -> Format.fprintf fmt "journalled(%a)" pp p
  | Effectful { name } -> Format.fprintf fmt "effectful[%s]" name
  | Opaque { name } -> Format.fprintf fmt "opaque[%s]" name
  | Atomic p -> Format.fprintf fmt "atomic(%a)" pp p
  | Replicated p -> Format.fprintf fmt "replicated(%a)" pp p

let to_string (p : t) : string = Format.asprintf "%a" pp p

let opaque (name : string) : t = Opaque { name }
