(** Construction provenance for packed bx.

    The paper derives its law hierarchy {e constructively}: Lemma 4 says a
    well-behaved lens induces a lawful set-bx (and a very well-behaved one
    an overwriteable set-bx); Section 3.4 exhibits the plain state monad
    on [A * B] as the commuting special case; Lemmas 5–6 cover algebraic
    bx and symmetric lenses; wrappers such as {!Journal} deliberately
    weaken (SS) by making history observable.  A pedigree records which of
    those constructions produced a packed bx, so that a static analysis
    ({!Esm_analysis.Law_infer}) can replay the lemmas and conclude which
    laws hold — without sampling a single state.

    Pedigrees are {e claims}: [Of_lens { vwb = true }] asserts the
    underlying lens satisfies (PutPut).  The analysis is sound relative to
    those claims, and `bxlint` cross-checks every static verdict against
    the sampling {!Certify} report, so an over-claimed pedigree is
    surfaced loudly rather than silently trusted. *)

type t =
  | Of_lens of { name : string; vwb : bool }
      (** Lemma 4: induced by an asymmetric lens.  [vwb] claims (PutPut),
          which upgrades the induced bx from lawful to overwriteable. *)
  | Of_algebraic of { name : string; undoable : bool }
      (** Lemma 5: induced by an algebraic bx over consistent pairs.
          [undoable] claims the restorers are undoable, which gives
          (SS). *)
  | Of_symmetric of { name : string }
      (** Lemma 6: induced by a symmetric lens over consistent triples.
          Symmetric lenses carry no (PutPut)-style law, so only the plain
          set-bx laws are claimed. *)
  | Pair
      (** Section 3.4: the independent state monad on [A * B]; sets
          commute. *)
  | Identity
      (** The identity bx (unit of composition).  Both sides overwrite
          the same single cell, so it is overwriteable but {e not}
          commuting: [set_a a] then [set_b b] ends at [b], the reverse
          order at [a]. *)
  | Compose of t * t
      (** Sequential composition through a shared middle view; laws are
          the meet of the component laws. *)
  | Flip of t  (** A and B swapped; laws are side-symmetric. *)
  | Journalled of t
      (** {!Journal.journalled} / {!Journal.Undo.wrap}: effective updates
          are recorded in observable history, so (SS) and commutation are
          destroyed no matter how lawful the base is. *)
  | Effectful of { name : string }
      (** Section 4: sets perform observable I/O; change-triggered output
          destroys (SS). *)
  | Opaque of { name : string }
      (** Unknown construction — e.g. a hand-rolled record.  Nothing
          beyond the basic set-bx laws may be assumed. *)
  | Atomic of t
      (** {!Atomic.harden_packed}: each setter runs as its own
          transaction, rolling back to the snapshot on any bx failure.
          On fault-free inputs the wrapper is observationally the base
          bx, so the law level is the base level; what it adds is
          rollback protection for the partial domain. *)
  | Replicated of t
      (** [Esm_sync.Store]: the base bx served behind a versioned oplog
          with snapshot/replay recovery.  Commits are transactional
          (failed applications append nothing), so replication preserves
          the base law level and adds rollback protection. *)
  | Select of { pred : string; key_preserving : bool }
      (** Relational selection lens [Rlens.select].  [pred] is the
          rendered predicate; [key_preserving] claims the predicate only
          reads key columns, so membership in the view is decided by the
          key alone and put-put overwrites compose ((PutPut) holds).
          Without the claim, the put still validates every view row
          against the predicate — a second put of the same shape erases
          the first, so the undo law survives even where (PutPut) may
          not. *)
  | Project of { keep : string list; key : string list; lossless : bool }
      (** Relational projection lens [Rlens.project].  [lossless] claims
          the projection keeps every source column (an iso up to column
          order), giving a very well-behaved lens.  A lossy projection
          restores dropped columns from the {e old} source by key, so two
          puts remember the first — (PutPut) and the undo law both
          fail. *)
  | Rename of (string * string) list
      (** Relational column renaming [Rlens.rename]: a schema iso, hence
          a very well-behaved lens (overwriteable, never commuting). *)
  | Join of { on : string list; fd_proven : bool }
      (** Relational join lens [Rlens.join] on shared columns [on].
          [fd_proven] claims an FD analysis showed the view key
          functionally determines the joined source rows, which restores
          the undo law; otherwise nothing beyond set-bx is claimed
          because put reshuffles rows across both sources. *)
  | Dcompose of t * t
      (** Delta-lens composition [Rlens.dcompose] (outer first): the
          full-put semantics is lens composition, so laws are the meet of
          the components'. *)
  | Delta_of of t
      (** A delta-propagating execution path ([Rlens.put_delta],
          [Dml.through_delta], [Delta_lens.to_lens]) whose translation
          agrees with the underlying full-put lens — the oracle the
          chaos suite checks.  Law level is the base level. *)
  | Plan of { query : string; body : t }
      (** A compiled query plan ([Query.to_lens] / [Query.to_dlens]):
          [query] is the surface syntax, [body] the pedigree of the lens
          pipeline it compiled to.  Law level is the body's. *)

let rec pp fmt = function
  | Of_lens { name; vwb } ->
      Format.fprintf fmt "of_lens[%s%s]" name (if vwb then ",vwb" else "")
  | Of_algebraic { name; undoable } ->
      Format.fprintf fmt "of_algebraic[%s%s]" name
        (if undoable then ",undoable" else "")
  | Of_symmetric { name } -> Format.fprintf fmt "of_symmetric[%s]" name
  | Pair -> Format.fprintf fmt "pair"
  | Identity -> Format.fprintf fmt "id"
  | Compose (p, q) -> Format.fprintf fmt "(%a ; %a)" pp p pp q
  | Flip p -> Format.fprintf fmt "flip(%a)" pp p
  | Journalled p -> Format.fprintf fmt "journalled(%a)" pp p
  | Effectful { name } -> Format.fprintf fmt "effectful[%s]" name
  | Opaque { name } -> Format.fprintf fmt "opaque[%s]" name
  | Atomic p -> Format.fprintf fmt "atomic(%a)" pp p
  | Replicated p -> Format.fprintf fmt "replicated(%a)" pp p
  | Select { pred; key_preserving } ->
      Format.fprintf fmt "select[%s%s]" pred
        (if key_preserving then ",key" else "")
  | Project { keep; key = _; lossless } ->
      Format.fprintf fmt "project[%s%s]"
        (String.concat "," keep)
        (if lossless then ",lossless" else "")
  | Rename mapping ->
      Format.fprintf fmt "rename[%s]"
        (String.concat ","
           (List.map (fun (o, n) -> o ^ "->" ^ n) mapping))
  | Join { on; fd_proven } ->
      Format.fprintf fmt "join[%s%s]" (String.concat "," on)
        (if fd_proven then ",fd" else "")
  | Dcompose (p, q) -> Format.fprintf fmt "(%a ;d %a)" pp p pp q
  | Delta_of p -> Format.fprintf fmt "delta(%a)" pp p
  | Plan { query; body } -> Format.fprintf fmt "plan[%s](%a)" query pp body

let to_string (p : t) : string = Format.asprintf "%a" pp p

let opaque (name : string) : t = Opaque { name }

let rec has_opaque : t -> bool = function
  | Opaque _ -> true
  | Of_lens _ | Of_algebraic _ | Of_symmetric _ | Pair | Identity
  | Effectful _ | Select _ | Project _ | Rename _ | Join _ ->
      false
  | Compose (p, q) | Dcompose (p, q) -> has_opaque p || has_opaque q
  | Flip p | Journalled p | Atomic p | Replicated p | Delta_of p -> has_opaque p
  | Plan { body; _ } -> has_opaque body
