(** Deterministic, seed-keyed fault injection for bx pipelines.

    A chaos instance decides, at every registered {e fault site} (a
    [Chaos.point "table.key_index"] call inside lens/table/restorer
    code), whether to raise an injected {!Error.Fault} — purely from the
    instance seed, the site name and a per-site visit counter, so a
    given seed replays the exact same fault schedule on the exact same
    workload.  That determinism is what makes the chaos property suites
    ([test/test_atomic.ml]) and the CI seed matrix reproducible.

    Injection is scoped: {!with_chaos} installs an instance for the
    extent of a thunk, and {!protected} suspends injection — the
    delta→full fallbacks run their oracle under [protected] so a fault
    on the fast path cannot also fault the recovery path.

    When no instance is installed every [point] is a no-op costing one
    ref read, so production code paths pay nothing for carrying the
    sites. *)

type t = {
  seed : int;
  rate_ppm : int;  (** faults per million points *)
  counters : (string, int) Hashtbl.t;  (** per-site visit counts *)
  mutable injected : int;
  mutable fallbacks : int;
}

let make ?(rate = 0.01) ~seed () : t =
  if rate < 0.0 || rate > 1.0 then
    invalid_arg "Chaos.make: rate must be within [0, 1]";
  {
    seed;
    rate_ppm = int_of_float ((rate *. 1_000_000.0) +. 0.5);
    counters = Hashtbl.create 16;
    injected = 0;
    fallbacks = 0;
  }

let current : t option ref = ref None
let suppressed : int ref = ref 0

(* Fallbacks observed across the whole process, chaos installed or not:
   index self-check failures degrade gracefully even outside a chaos
   run, and tests assert on this counter. *)
let global_fallbacks : int ref = ref 0

let with_chaos (t : t) (f : unit -> 'a) : 'a =
  let prev = !current in
  current := Some t;
  Fun.protect ~finally:(fun () -> current := prev) f

let protected (f : unit -> 'a) : 'a =
  incr suppressed;
  Fun.protect ~finally:(fun () -> decr suppressed) f

let active () : t option = if !suppressed > 0 then None else !current

(* When set, only the listed sites (by exact name or prefix) inject;
   other sites neither fire nor advance their visit counters, so a
   filtered schedule at the enabled sites matches the unfiltered one. *)
let only_sites : string list option ref = ref None

let at_sites (sites : string list) (f : unit -> 'a) : 'a =
  let prev = !only_sites in
  only_sites := Some sites;
  Fun.protect ~finally:(fun () -> only_sites := prev) f

let site_enabled (site : string) : bool =
  match !only_sites with
  | None -> true
  | Some l ->
      List.exists
        (fun p ->
          String.length site >= String.length p
          && String.sub site 0 (String.length p) = p)
        l

(* The per-(seed, site, visit) decision.  [Hashtbl.hash] hashes
   structurally with a fixed seed, so the schedule is stable across runs
   and machines. *)
let fires (t : t) (site : string) (visit : int) : bool =
  Hashtbl.hash (t.seed, site, visit) mod 1_000_000 < t.rate_ppm

let point (site : string) : unit =
  match active () with
  | None -> ()
  | Some _ when not (site_enabled site) -> ()
  | Some t ->
      let visit =
        match Hashtbl.find_opt t.counters site with Some n -> n | None -> 0
      in
      Hashtbl.replace t.counters site (visit + 1);
      if fires t site visit then begin
        t.injected <- t.injected + 1;
        raise
          (Error.Bx_error
             (Error.v Error.Fault ~op:site
                (Printf.sprintf "injected fault (seed %d, visit %d)" t.seed
                   visit)))
      end

let note_fallback (_site : string) : unit =
  incr global_fallbacks;
  match !current with
  | Some t -> t.fallbacks <- t.fallbacks + 1
  | None -> ()

let injected (t : t) : int = t.injected
let fallbacks (t : t) : int = t.fallbacks
let fallbacks_total () : int = !global_fallbacks

let reset (t : t) : unit =
  Hashtbl.reset t.counters;
  t.injected <- 0;
  t.fallbacks <- 0

(* ------------------------------------------------------------------ *)
(* Wrappers: name-keyed fault sites around existing operations          *)
(* ------------------------------------------------------------------ *)

(** Wrap every operation of a lens in a fault site keyed by the lens
    name — the cheap way to chaos-test a pipeline built from lenses
    that carry no internal sites. *)
let wrap_lens (l : ('s, 'v) Esm_lens.Lens.t) : ('s, 'v) Esm_lens.Lens.t =
  let name = Esm_lens.Lens.name l in
  Esm_lens.Lens.v ~name
    ~get:(fun s ->
      point ("lens.get:" ^ name);
      Esm_lens.Lens.get l s)
    ~put:(fun s v ->
      point ("lens.put:" ^ name);
      Esm_lens.Lens.put l s v)
    ()

(** Wrap the four operations of a set-bx in fault sites keyed by the bx
    name. *)
let wrap_bx (bx : ('a, 'b, 's) Concrete.set_bx) : ('a, 'b, 's) Concrete.set_bx
    =
  {
    bx with
    Concrete.get_a =
      (fun s ->
        point ("bx.get_a:" ^ bx.Concrete.name);
        bx.Concrete.get_a s);
    get_b =
      (fun s ->
        point ("bx.get_b:" ^ bx.Concrete.name);
        bx.Concrete.get_b s);
    set_a =
      (fun a s ->
        point ("bx.set_a:" ^ bx.Concrete.name);
        bx.Concrete.set_a a s);
    set_b =
      (fun b s ->
        point ("bx.set_b:" ^ bx.Concrete.name);
        bx.Concrete.set_b b s);
  }
