(** The typed bx error taxonomy: one structured error value for every
    failure an entangled update can surface, replacing the stringly
    exceptions ([Lens.Shape_error], [Table_error], [Model_error], …) at
    the API boundary.

    Subsystems keep their historical exception constructors for
    compatibility, but route construction through {!raisef} and register
    a {e classifier} ({!register_classifier}) so that {!of_exn} can
    recover the structured payload — kind, operation name, detail — from
    any bx exception, however it was raised.  {!Atomic} uses exactly
    this recovery to decide which exceptions roll back a transaction and
    which (genuine programming errors such as [Invalid_argument])
    propagate untouched.

    Two kinds are special to the robustness layer:

    - [Fault] — an injected failure from the {!Chaos} harness;
    - [Index] — a memoized-index self-check failure.

    Both are {e degradable} ({!is_degradable}): the delta fast paths
    ([Rlens.put_delta], [Mbx.fwd_delta]) treat them as "distrust the
    incremental machinery and fall back to the full oracle", never as
    user-facing errors. *)

type kind =
  | Shape  (** a partial lens applied outside its domain *)
  | Table  (** relational table construction or set operations *)
  | Schema  (** schema construction and column lookup *)
  | Model  (** MDE model construction and object updates *)
  | Metamodel  (** metamodel validation and fresh-object synthesis *)
  | Parse  (** query-language lexing and parsing *)
  | Fault  (** an injected failure ({!Chaos}) *)
  | Index  (** a memoized-index self-check failure *)
  | Conflict
      (** an optimistic version check failed: a concurrent session
          committed first ([Esm_sync]) *)
  | Corrupt
      (** an on-disk log failed validation beyond what crash recovery
          may repair ([Esm_sync.Durable_log]) *)
  | Transport of [ `Transient | `Permanent ]
      (** a network-layer failure ([Esm_sync.Transport]): a broken or
          half-open connection, a mangled frame, a classified
          [Unix.Unix_error].  The flag drives retry policy: [`Transient]
          failures are worth a backoff-and-resend, [`Permanent] ones are
          not *)
  | Timeout  (** a per-request or retry-budget deadline expired *)
  | Overload
      (** the server shed this request: the connection's pending-response
          queue exceeded its bound ([Esm_sync.Transport]) *)
  | Other  (** a classified bx error of no more specific kind *)

let kind_name = function
  | Shape -> "shape"
  | Table -> "table"
  | Schema -> "schema"
  | Model -> "model"
  | Metamodel -> "metamodel"
  | Parse -> "parse"
  | Fault -> "fault"
  | Index -> "index"
  | Conflict -> "conflict"
  | Corrupt -> "corrupt"
  | Transport `Transient -> "transport.transient"
  | Transport `Permanent -> "transport.permanent"
  | Timeout -> "timeout"
  | Overload -> "overload"
  | Other -> "other"

type t = {
  kind : kind;
  op : string;  (** the operation that failed, e.g. ["of_rows"] *)
  detail : string;  (** human-readable description, offending value included *)
}

exception Bx_error of t

let v kind ~op detail = { kind; op; detail }

let message (e : t) : string =
  if e.op = "" then e.detail else e.op ^ ": " ^ e.detail

let pp fmt (e : t) =
  Format.fprintf fmt "[%s] %s" (kind_name e.kind) (message e)

let to_string (e : t) : string = Format.asprintf "%a" pp e

(* Recover the (op, detail) structure from a legacy "op: detail"
   message; messages with no "op: " prefix classify with an empty op. *)
let of_message kind (msg : string) : t =
  match String.index_opt msg ':' with
  | Some i
    when i > 0
         && i + 1 < String.length msg
         && msg.[i + 1] = ' '
         && not (String.contains (String.sub msg 0 i) ' ') ->
      {
        kind;
        op = String.sub msg 0 i;
        detail = String.sub msg (i + 2) (String.length msg - i - 2);
      }
  | _ -> { kind; op = ""; detail = msg }

let raise_error kind ~op fmt =
  Format.kasprintf (fun detail -> raise (Bx_error (v kind ~op detail))) fmt

(** [raisef kind ~wrap fmt] formats the message and raises [wrap msg] —
    the legacy exception constructor — keeping old [with Table_error _]
    handlers working while {!of_exn} (via the subsystem's registered
    classifier) recovers the structured form. *)
let raisef kind ?wrap fmt =
  Format.kasprintf
    (fun msg ->
      match wrap with
      | Some w -> raise (w msg)
      | None -> raise (Bx_error (of_message kind msg)))
    fmt

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

(* A [Unix_error] is transient exactly when the same call stands a
   chance of succeeding after a reconnect or a short wait: the
   interrupted/again family, and the peer-or-path failures a lossy
   network produces.  Everything else — bad descriptors, permissions,
   address misconfiguration — retrying cannot fix. *)
let transient_unix_error : Unix.error -> bool = function
  | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.EINPROGRESS
  | Unix.EALREADY | Unix.ECONNRESET | Unix.ECONNABORTED | Unix.ECONNREFUSED
  | Unix.EPIPE | Unix.ETIMEDOUT | Unix.EHOSTUNREACH | Unix.EHOSTDOWN
  | Unix.ENETDOWN | Unix.ENETUNREACH | Unix.ENETRESET | Unix.ENOBUFS ->
      true
  | _ -> false

let of_unix_error (e : Unix.error) (fn : string) (arg : string) : t =
  let flag = if transient_unix_error e then `Transient else `Permanent in
  {
    kind = Transport flag;
    op = fn;
    detail =
      (Unix.error_message e ^ if arg = "" then "" else Printf.sprintf " (%s)" arg);
  }

let classifiers : (exn -> t option) list ref = ref []

let register_classifier (f : exn -> t option) : unit =
  classifiers := f :: !classifiers

(** Recover the structured error behind any bx exception; [None] for
    exceptions that are not bx errors (those must propagate through
    {!Atomic} untouched). *)
let of_exn (exn : exn) : t option =
  match exn with
  | Bx_error e -> Some e
  | Esm_lens.Lens.Shape_error msg -> Some (of_message Shape msg)
  | Unix.Unix_error (e, fn, arg) -> Some (of_unix_error e fn arg)
  | _ -> List.find_map (fun f -> f exn) !classifiers

let is_bx_exn (exn : exn) : bool = Option.is_some (of_exn exn)

let is_fault (e : t) : bool = e.kind = Fault

(** Degradable errors signal broken {e acceleration} machinery (an
    injected fault, a corrupt memoized index) rather than an invalid
    update; fast paths respond by falling back to the full oracle. *)
let is_degradable (e : t) : bool =
  match e.kind with Fault | Index -> true | _ -> false

let degradable_exn (exn : exn) : bool =
  match of_exn exn with Some e -> is_degradable e | None -> false

(** Transient errors are worth a backoff-and-resend of the {e same}
    request: the network broke ([Transport `Transient]), the answer
    never came ([Timeout]), or the server shed the request unexecuted
    ([Overload]). *)
let is_transient (e : t) : bool =
  match e.kind with
  | Transport `Transient | Timeout | Overload -> true
  | _ -> false

(** Retryable extends transient with the failures where {e re-executing}
    the operation can succeed: an optimistic-concurrency [Conflict]
    (rebase and go again) and an injected [Fault] (the chaos schedule
    moves on at the next visit).  Retry loops distinguish the two
    classes by what the server saw — a transient failure retries under
    the same idempotency key, a retryable execution failure needs a
    fresh one ([Esm_sync.Transport.Remote_session]). *)
let retryable (e : t) : bool =
  match e.kind with
  | Conflict | Fault -> true
  | _ -> is_transient e
