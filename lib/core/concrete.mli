(** First-class (record) representations of entangled state monads over
    an explicit state type.

    Every instance the paper constructs (Lemmas 4–6, §3.4, §4) is a state
    monad over some concrete state; specialising the abstract operations
    at that state monad yields plain functions.  This module is the
    value-level mirror of the functor-level constructions in {!Of_lens},
    {!Of_algebraic}, {!Of_symmetric} and {!Translate}; tests confirm the
    two levels agree observationally.  The record form is what
    {!Compose}, {!Equivalence} and the benchmarks manipulate. *)

(** A set-bx between ['a] and ['b] entangled through state ['s]. *)
type ('a, 'b, 's) set_bx = {
  name : string;
  get_a : 's -> 'a;
  get_b : 's -> 'b;
  set_a : 'a -> 's -> 's;
  set_b : 'b -> 's -> 's;
}

(** A put-bx between ['a] and ['b] entangled through state ['s]. *)
type ('a, 'b, 's) put_bx = {
  p_name : string;
  p_get_a : 's -> 'a;
  p_get_b : 's -> 'b;
  put_ab : 'a -> 's -> 'b * 's;
  put_ba : 'b -> 's -> 'a * 's;
}

(** A set-bx packaged with an initial state and state equality, hiding
    the state type — the form used to compare bx with different hidden
    state representations ({!Equivalence}). *)
type ('a, 'b) packed = Packed : ('a, 'b, 's) packed_repr -> ('a, 'b) packed

and ('a, 'b, 's) packed_repr = {
  bx : ('a, 'b, 's) set_bx;
  init : 's;
  eq_state : 's -> 's -> bool;
  pedigree : Pedigree.t;
      (** How this bx was constructed — the input to static law-level
          inference ({!Esm_analysis.Law_infer}). *)
}

val pack :
  bx:('a, 'b, 's) set_bx ->
  init:'s ->
  eq_state:('s -> 's -> bool) ->
  ('a, 'b) packed
(** Pack with an {!Pedigree.Opaque} pedigree (unknown construction);
    prefer {!pack_pedigreed} or the [packed_of_*] smart constructors so
    static analysis can infer a law level above the set-bx floor. *)

val pack_pedigreed :
  pedigree:Pedigree.t ->
  bx:('a, 'b, 's) set_bx ->
  init:'s ->
  eq_state:('s -> 's -> bool) ->
  ('a, 'b) packed

val pedigree : ('a, 'b) packed -> Pedigree.t
(** The recorded construction provenance. *)

val with_pedigree : Pedigree.t -> ('a, 'b) packed -> ('a, 'b) packed
(** Override the recorded pedigree (e.g. after wrapping the underlying
    bx in a way the packers cannot see). *)

(** {1 The value-level translations of Section 3.3 (Lemmas 1–3)} *)

val set_to_put : ('a, 'b, 's) set_bx -> ('a, 'b, 's) put_bx
(** [set2pp]: derive a put-bx by setting then reading the opposite
    side. *)

val put_to_set : ('a, 'b, 's) put_bx -> ('a, 'b, 's) set_bx
(** [pp2set]: derive a set-bx by putting and discarding the returned
    view. *)

(** {1 Instances (value level)} *)

val of_lens : ('s, 'v) Esm_lens.Lens.t -> ('s, 'v, 's) set_bx
(** Lemma 4: a well-behaved asymmetric lens gives a set-bx over the
    source state. *)

val of_algebraic : ('a, 'b) Esm_algbx.Algbx.t -> ('a, 'b, 'a * 'b) set_bx
(** Lemma 5: an algebraic bx gives a set-bx over consistent pairs. *)

val pair : unit -> ('a, 'b, 'a * 'b) set_bx
(** Section 3.4: the plain (non-entangled) state monad on [A * B]; also
    satisfies the commutation law [set_a a >> set_b b = set_b b >>
    set_a a]. *)

val of_symlens_instance :
  (module Esm_symlens.Symlens.INSTANCE
     with type a = 'x
      and type b = 'y
      and type c = 'c) ->
  ('x, 'y, 'x * 'y * 'c) put_bx
(** Lemma 6 at the value level: the state type mentions the complement,
    so this takes the module form. *)

val packed_of_symlens :
  seed_a:'x ->
  eq_a:('x -> 'x -> bool) ->
  eq_b:('y -> 'y -> bool) ->
  ('x, 'y) Esm_symlens.Symlens.t ->
  ('x, 'y) packed
(** Lemma 6, fully first-class: the complement is hidden inside a
    {!packed} set-bx whose initial state pushes [seed_a] through the
    fresh lens.  Pedigree: {!Pedigree.Of_symmetric}. *)

(** {1 Pedigreed packers}

    Like {!pack}, but building the bx from a source construction and
    recording the matching {!Pedigree.t} so static law-level inference
    has something to work with. *)

val packed_of_lens :
  vwb:bool ->
  init:'s ->
  eq_state:('s -> 's -> bool) ->
  ('s, 'v) Esm_lens.Lens.t ->
  ('s, 'v) packed
(** Lemma 4, packed.  [vwb] claims the lens satisfies (PutPut). *)

val packed_of_algebraic :
  undoable:bool ->
  init:'a * 'b ->
  eq_state:('a * 'b -> 'a * 'b -> bool) ->
  ('a, 'b) Esm_algbx.Algbx.t ->
  ('a, 'b) packed
(** Lemma 5, packed.  [undoable] claims the restorers are undoable. *)

val packed_pair :
  init:'a * 'b ->
  eq_state:('a * 'b -> 'a * 'b -> bool) ->
  unit ->
  ('a, 'b) packed
(** §3.4, packed: the independent (commuting) pair bx. *)

(** {1 Helpers} *)

val update_a : ('a, 'b, 's) set_bx -> ('a -> 'a) -> 's -> 's
(** Modify the A side through a function (get-modify-set round trip). *)

val update_b : ('a, 'b, 's) set_bx -> ('b -> 'b) -> 's -> 's

val flip : ('a, 'b, 's) set_bx -> ('b, 'a, 's) set_bx
(** Swap the roles of A and B. *)

val sets_commute_at :
  ('a, 'b, 's) set_bx ->
  eq_state:('s -> 's -> bool) ->
  'a -> 'b -> 's -> bool
(** Does [set_a] commute with [set_b] at this state (Section 3.4)?  True
    everywhere for {!pair}; generally false for entangled instances. *)
