(** Programmatic law certification for packed bx — the "does my bx
    satisfy the paper's laws?" entry point for downstream users, without
    going through a test framework.

    Laws are checked on sampled states reachable from the packed initial
    state (random walks over the provided update values) together with
    the supplied value samples.  The report records, per law, whether it
    held on every sample and a counterexample description otherwise.

    This is deliberately a {e sampling} certifier: "pass" means "no
    violation found on the samples", exactly like the QCheck suites the
    test directory runs with far more samples. *)

type verdict = { law : string; holds : bool; counterexample : string option }

type report = {
  subject : string;
  verdicts : verdict list;
}

let passed (r : report) : bool = List.for_all (fun v -> v.holds) r.verdicts

let well_behaved_laws = [ "GS_a"; "GS_b"; "SG_a"; "SG_b" ]

let pp_report fmt (r : report) =
  Format.fprintf fmt "%s:@." r.subject;
  List.iter
    (fun v ->
      Format.fprintf fmt "  %-10s %s%s@." v.law
        (if v.holds then "ok" else "VIOLATED")
        (match v.counterexample with
        | Some c when not v.holds -> " at " ^ c
        | _ -> ""))
    r.verdicts

(** Certify a packed set-bx against the set-bx laws (plus (SS) and the
    §3.4 commutation law, reported informatively — they are not required
    of a set-bx). *)
let certify (type a b) ?(walk_length = 5) ?(walks = 40)
    ~(values_a : a list) ~(values_b : b list) ~(eq_a : a -> a -> bool)
    ~(eq_b : b -> b -> bool) ~(show_a : a -> string) ~(show_b : b -> string)
    (packed : (a, b) Concrete.packed) : report =
  match packed with
  | Concrete.Packed (type s0) (p : (a, b, s0) Concrete.packed_repr) ->
      let bx = p.Concrete.bx in
      let eq_s = p.Concrete.eq_state in
      (* deterministic pseudo-random walks from init *)
      let all_updates =
        List.map (fun v s -> bx.Concrete.set_a v s) values_a
        @ List.map (fun v s -> bx.Concrete.set_b v s) values_b
      in
      let n_upd = List.length all_updates in
      let states =
        if n_upd = 0 then [ p.Concrete.init ]
        else
          List.init walks (fun w ->
              let rec go s i seed =
                if i >= walk_length then s
                else
                  let k = (seed * 1103515245 + 12345) land 0x3FFFFFFF in
                  go ((List.nth all_updates (k mod n_upd)) s) (i + 1) k
              in
              go p.Concrete.init (w mod walk_length) (w + 1))
      in
      let first_failure check describe =
        let rec go = function
          | [] -> None
          | x :: rest -> if check x then go rest else Some (describe x)
        in
        go
      in
      let with_values values items = List.concat_map (fun s -> List.map (fun v -> (s, v)) values) items in
      let gs_a =
        first_failure
          (fun s -> eq_s (bx.Concrete.set_a (bx.Concrete.get_a s) s) s)
          (fun s -> "state with get_a = " ^ show_a (bx.Concrete.get_a s))
          states
      in
      let gs_b =
        first_failure
          (fun s -> eq_s (bx.Concrete.set_b (bx.Concrete.get_b s) s) s)
          (fun s -> "state with get_b = " ^ show_b (bx.Concrete.get_b s))
          states
      in
      let sg_a =
        first_failure
          (fun (s, v) -> eq_a (bx.Concrete.get_a (bx.Concrete.set_a v s)) v)
          (fun (_, v) -> "set_a " ^ show_a v)
          (with_values values_a states)
      in
      let sg_b =
        first_failure
          (fun (s, v) -> eq_b (bx.Concrete.get_b (bx.Concrete.set_b v s)) v)
          (fun (_, v) -> "set_b " ^ show_b v)
          (with_values values_b states)
      in
      let ss_a =
        first_failure
          (fun ((s, v), v') ->
            eq_s
              (bx.Concrete.set_a v' (bx.Concrete.set_a v s))
              (bx.Concrete.set_a v' s))
          (fun ((_, v), v') -> "set_a " ^ show_a v ^ "; set_a " ^ show_a v')
          (with_values values_a (with_values values_a states))
      in
      let ss_b =
        first_failure
          (fun ((s, v), v') ->
            eq_s
              (bx.Concrete.set_b v' (bx.Concrete.set_b v s))
              (bx.Concrete.set_b v' s))
          (fun ((_, v), v') -> "set_b " ^ show_b v ^ "; set_b " ^ show_b v')
          (with_values values_b (with_values values_b states))
      in
      let undo_a =
        first_failure
          (fun (s, v) ->
            eq_s
              (bx.Concrete.set_a (bx.Concrete.get_a s)
                 (bx.Concrete.set_a v s))
              s)
          (fun (s, v) ->
            "set_a " ^ show_a v ^ "; set_a "
            ^ show_a (bx.Concrete.get_a s)
            ^ " (undo)")
          (with_values values_a states)
      in
      let undo_b =
        first_failure
          (fun (s, v) ->
            eq_s
              (bx.Concrete.set_b (bx.Concrete.get_b s)
                 (bx.Concrete.set_b v s))
              s)
          (fun (s, v) ->
            "set_b " ^ show_b v ^ "; set_b "
            ^ show_b (bx.Concrete.get_b s)
            ^ " (undo)")
          (with_values values_b states)
      in
      let commute =
        first_failure
          (fun ((s, va), vb) ->
            Concrete.sets_commute_at bx ~eq_state:eq_s va vb s)
          (fun ((_, va), vb) ->
            "set_a " ^ show_a va ^ " vs set_b " ^ show_b vb)
          (with_values values_b (with_values values_a states))
      in
      let verdict law = function
        | None -> { law; holds = true; counterexample = None }
        | Some c -> { law; holds = false; counterexample = Some c }
      in
      {
        subject = bx.Concrete.name;
        verdicts =
          [
            verdict "GS_a" gs_a;
            verdict "GS_b" gs_b;
            verdict "SG_a" sg_a;
            verdict "SG_b" sg_b;
            verdict "UNDO_a" undo_a;
            verdict "UNDO_b" undo_b;
            verdict "SS_a" ss_a;
            verdict "SS_b" ss_b;
            verdict "commute" commute;
          ];
      }

(** Did the {e required} set-bx laws (GS/SG both sides) pass?  (SS) and
    commutation are informative extras. *)
let well_behaved (r : report) : bool =
  List.for_all
    (fun v -> (not (List.mem v.law well_behaved_laws)) || v.holds)
    r.verdicts

(* ------------------------------------------------------------------ *)
(* Cross-check hook for static law-level inference                     *)
(* ------------------------------------------------------------------ *)

(** The highest law level this sampling report is consistent with:
    [None] if a required set-bx law was violated, otherwise the strongest
    of [`Set_bx] ⊑ [`Undoable] ⊑ [`Overwriteable] ⊑ [`Commuting] whose
    extra laws all held on the samples ([`Undoable]'s distinguishing law
    is [set_a (get_a s) (set_a v s) = s], the UNDO verdicts).  Because
    sampling can only {e falsify} laws, a static level claimed by
    {!Esm_analysis.Law_infer} is refuted exactly when it is strictly
    above this observation — the cross-check `bxlint` performs on every
    catalog entry. *)
let observed_level (r : report) :
    [ `Set_bx | `Undoable | `Overwriteable | `Commuting ] option =
  if not (well_behaved r) then None
  else
    let holds law =
      List.exists (fun v -> String.equal v.law law && v.holds) r.verdicts
    in
    let ss = holds "SS_a" && holds "SS_b" in
    let undo = holds "UNDO_a" && holds "UNDO_b" in
    if ss && holds "commute" then Some `Commuting
    else if ss then Some `Overwriteable
    else if undo then Some `Undoable
    else Some `Set_bx
