(** First-class (record) representations of entangled state monads over an
    explicit state type.

    Every instance the paper constructs (Lemmas 4–6, Section 3.4,
    Section 4) is a state monad over some concrete state; specialising the
    abstract operations at that state monad turns a set-bx into four plain
    functions, and a put-bx into two getters and two put functions.  This
    module is the value-level mirror of the functor-level constructions in
    {!Of_lens}, {!Of_algebraic}, {!Of_symmetric} and {!Translate}; tests
    confirm the two levels agree observationally.

    The record form is what composition ({!Compose}), observational
    equivalence ({!Equivalence}) and the benchmarks manipulate, since it
    allows whole bx to be built, paired and chained dynamically. *)

(** A set-bx between ['a] and ['b] entangled through state ['s]. *)
type ('a, 'b, 's) set_bx = {
  name : string;
  get_a : 's -> 'a;
  get_b : 's -> 'b;
  set_a : 'a -> 's -> 's;
  set_b : 'b -> 's -> 's;
}

(** A put-bx between ['a] and ['b] entangled through state ['s]. *)
type ('a, 'b, 's) put_bx = {
  p_name : string;
  p_get_a : 's -> 'a;
  p_get_b : 's -> 'b;
  put_ab : 'a -> 's -> 'b * 's;
  put_ba : 'b -> 's -> 'a * 's;
}

(** A set-bx packaged with an initial state and state equality, hiding the
    state type.  This is the form used to compare bx with {e different}
    state representations ({!Equivalence}) and to drive examples. *)
type ('a, 'b) packed = Packed : ('a, 'b, 's) packed_repr -> ('a, 'b) packed

and ('a, 'b, 's) packed_repr = {
  bx : ('a, 'b, 's) set_bx;
  init : 's;
  eq_state : 's -> 's -> bool;
  pedigree : Pedigree.t;
      (** How this bx was constructed — the input to static law-level
          inference ({!Esm_analysis.Law_infer}).  Defaults to
          {!Pedigree.Opaque} when unknown. *)
}

let pack ~bx ~init ~eq_state =
  Packed { bx; init; eq_state; pedigree = Pedigree.opaque bx.name }

let pack_pedigreed ~pedigree ~bx ~init ~eq_state =
  Packed { bx; init; eq_state; pedigree }

let pedigree (Packed p : ('a, 'b) packed) : Pedigree.t = p.pedigree

let with_pedigree (pedigree : Pedigree.t) (Packed p : ('a, 'b) packed) :
    ('a, 'b) packed =
  Packed { p with pedigree }

(* ------------------------------------------------------------------ *)
(* The value-level translations of Section 3.3 (Lemmas 1-3)            *)
(* ------------------------------------------------------------------ *)

(** [set2pp]: derive a put-bx by setting then reading the opposite side. *)
let set_to_put (t : ('a, 'b, 's) set_bx) : ('a, 'b, 's) put_bx =
  {
    p_name = t.name;
    p_get_a = t.get_a;
    p_get_b = t.get_b;
    put_ab =
      (fun a s ->
        let s' = t.set_a a s in
        (t.get_b s', s'));
    put_ba =
      (fun b s ->
        let s' = t.set_b b s in
        (t.get_a s', s'));
  }

(** [pp2set]: derive a set-bx by putting and discarding the returned
    view. *)
let put_to_set (u : ('a, 'b, 's) put_bx) : ('a, 'b, 's) set_bx =
  {
    name = u.p_name;
    get_a = u.p_get_a;
    get_b = u.p_get_b;
    set_a = (fun a s -> snd (u.put_ab a s));
    set_b = (fun b s -> snd (u.put_ba b s));
  }

(* ------------------------------------------------------------------ *)
(* Instances (value level)                                             *)
(* ------------------------------------------------------------------ *)

(** Lemma 4: a well-behaved asymmetric lens gives a set-bx over the
    source state; the A side is the identity lens, the B side goes
    through [l]. *)
let of_lens (l : ('s, 'v) Esm_lens.Lens.t) : ('s, 'v, 's) set_bx =
  {
    name = "of_lens " ^ Esm_lens.Lens.name l;
    get_a = Fun.id;
    get_b = Esm_lens.Lens.get l;
    set_a = (fun a _ -> a);
    set_b = (fun v s -> Esm_lens.Lens.put l s v);
  }

(** Lemma 5: an algebraic bx gives a set-bx over consistent pairs; each
    setter repairs the opposite side with the matching restorer. *)
let of_algebraic (t : ('a, 'b) Esm_algbx.Algbx.t) : ('a, 'b, 'a * 'b) set_bx =
  {
    name = "of_algebraic " ^ Esm_algbx.Algbx.name t;
    get_a = fst;
    get_b = snd;
    set_a = (fun a' (_, b) -> (a', Esm_algbx.Algbx.fwd t a' b));
    set_b = (fun b' (a, _) -> (Esm_algbx.Algbx.bwd t a b', b'));
  }

(** Section 3.4: the plain (non-entangled) state monad on [A * B]; the
    special case of {!of_algebraic} for the universally-true consistency
    relation.  Satisfies the extra commutation law
    [set_a a >> set_b b = set_b b >> set_a a]. *)
let pair () : ('a, 'b, 'a * 'b) set_bx =
  {
    name = "pair";
    get_a = fst;
    get_b = snd;
    set_a = (fun a (_, b) -> (a, b));
    set_b = (fun b (a, _) -> (a, b));
  }

(** Lemma 6 at the value level: a symmetric lens gives a put-bx over
    consistent triples [(a, b, c)].  The state type mentions the lens's
    complement, so this takes the module form ({!Esm_symlens.Symlens.INSTANCE});
    {!packed_of_symlens} offers a fully first-class variant. *)
let of_symlens_instance (type x y c0)
    (module I : Esm_symlens.Symlens.INSTANCE
      with type a = x
       and type b = y
       and type c = c0) : (x, y, x * y * c0) put_bx =
  {
    p_name = "of_symlens " ^ I.name;
    p_get_a = (fun (a, _, _) -> a);
    p_get_b = (fun (_, b, _) -> b);
    put_ab =
      (fun a' (_, _, c) ->
        let b', c' = I.put_r a' c in
        (b', (a', b', c')));
    put_ba =
      (fun b' (_, _, c) ->
        let a', c' = I.put_l b' c in
        (a', (a', b', c')));
  }

(** Lemma 6, fully first-class: hide the complement inside a {!packed}
    set-bx.  The initial state is the consistent triple obtained by
    pushing [seed_a] through the fresh lens. *)
let packed_of_symlens (type x y) ~(seed_a : x) ~(eq_a : x -> x -> bool)
    ~(eq_b : y -> y -> bool) (lens : (x, y) Esm_symlens.Symlens.t) :
    (x, y) packed =
  match lens with
  | Esm_symlens.Symlens.Sym (type c0)
      (l : (x, y, c0) Esm_symlens.Symlens.repr) ->
      let module I = struct
        type a = x
        type b = y
        type c = c0

        let name = l.name
        let init = l.init
        let put_r = l.put_r
        let put_l = l.put_l
        let equal_c = l.equal_c
      end in
      let put = of_symlens_instance (module I) in
      let b0, c0 = l.put_r seed_a l.init in
      Packed
        {
          bx = put_to_set put;
          init = (seed_a, b0, c0);
          eq_state =
            (fun (a1, b1, c1) (a2, b2, c2) ->
              eq_a a1 a2 && eq_b b1 b2 && l.equal_c c1 c2);
          pedigree = Pedigree.Of_symmetric { name = l.name };
        }

(* ------------------------------------------------------------------ *)
(* Pedigreed packers                                                   *)
(* ------------------------------------------------------------------ *)

(** Pack a lens-induced bx (Lemma 4) with its pedigree.  [vwb] claims the
    lens satisfies (PutPut) — the claim static analysis will rely on, and
    `bxlint` cross-checks by sampling. *)
let packed_of_lens ~(vwb : bool) ~(init : 's) ~(eq_state : 's -> 's -> bool)
    (l : ('s, 'v) Esm_lens.Lens.t) : ('s, 'v) packed =
  pack_pedigreed
    ~pedigree:(Pedigree.Of_lens { name = Esm_lens.Lens.name l; vwb })
    ~bx:(of_lens l) ~init ~eq_state

(** Pack an algebraic-bx-induced bx (Lemma 5) with its pedigree.
    [undoable] claims the restorers are undoable, which gives (SS). *)
let packed_of_algebraic ~(undoable : bool) ~(init : 'a * 'b)
    ~(eq_state : 'a * 'b -> 'a * 'b -> bool) (t : ('a, 'b) Esm_algbx.Algbx.t)
    : ('a, 'b) packed =
  pack_pedigreed
    ~pedigree:
      (Pedigree.Of_algebraic { name = Esm_algbx.Algbx.name t; undoable })
    ~bx:(of_algebraic t) ~init ~eq_state

(** Pack the §3.4 independent pair bx with its (commuting) pedigree. *)
let packed_pair ~(init : 'a * 'b) ~(eq_state : 'a * 'b -> 'a * 'b -> bool) ()
    : ('a, 'b) packed =
  pack_pedigreed ~pedigree:Pedigree.Pair ~bx:(pair ()) ~init ~eq_state

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

(** Modify the A side through a function (get-modify-set round trip). *)
let update_a (t : ('a, 'b, 's) set_bx) (f : 'a -> 'a) (s : 's) : 's =
  t.set_a (f (t.get_a s)) s

let update_b (t : ('a, 'b, 's) set_bx) (f : 'b -> 'b) (s : 's) : 's =
  t.set_b (f (t.get_b s)) s

(** Swap the roles of A and B. *)
let flip (t : ('a, 'b, 's) set_bx) : ('b, 'a, 's) set_bx =
  {
    name = "flip " ^ t.name;
    get_a = t.get_b;
    get_b = t.get_a;
    set_a = t.set_b;
    set_b = t.set_a;
  }

(** Does [set_a] commute with [set_b] at this state (Section 3.4)?  True
    everywhere for {!pair}; generally false for entangled instances. *)
let sets_commute_at (t : ('a, 'b, 's) set_bx) ~(eq_state : 's -> 's -> bool)
    (a : 'a) (b : 'b) (s : 's) : bool =
  eq_state (t.set_b b (t.set_a a s)) (t.set_a a (t.set_b b s))
