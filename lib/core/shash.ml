(* Structural hashing + the cached-hash trust gate; see shash.mli. *)

let site = "incr.hash"

let combine (h1 : int) (h2 : int) : int =
  (* FNV-style mix: multiply by a large odd constant, xor the next
     word; order-dependent, cheap, good enough for rejection hashing *)
  ((h1 * 0x01000193) lxor h2) land max_int

let of_value (v : 'a) : int =
  (* the default (10, 100) limits would silently ignore columns of
     wide rows; 64/1024 covers every realistic row and schema while
     still bounding pathological values *)
  Hashtbl.hash_param 64 1024 v

let trusted ~(cached : int option) ~(recompute : unit -> int) : int =
  match cached with
  | None -> recompute ()
  | Some h -> (
      match Chaos.point site with
      | () -> h
      | exception exn when Error.degradable_exn exn ->
          Chaos.note_fallback site;
          Chaos.protected recompute)
