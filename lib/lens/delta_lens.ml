(** Delta lenses (Diskin, Xiong, Czarnecki; "From state- to delta-based
    bidirectional model transformations", 2011): the update-propagating
    refinement of asymmetric lenses.

    Where a state-based lens sees only the {e new} view value, a delta
    lens sees the {e edit} that produced it, and translates view edits
    into source edits.  Deltas are modelled as a monoid acting on states
    ({!module-type:ACTION}); a delta lens between two actions is a [get]
    on states plus a [dput] on deltas satisfying

    - (DPutId)   [dput s id = id]
    - (DPutGet)  [apply (get s) dv = get (apply s (dput s dv))]
    - (DPutComp) [dput s (dv ; dv') =
                  dput s dv ; dput (apply s (dput s dv)) dv']

    i.e. [dput] is functorial: it preserves identities and composition
    of edits.  {!of_lens} recovers a delta lens from a state-based lens
    via "absolute" deltas (replace-with), and {!to_lens} forgets deltas
    again; the paper's state-based world embeds in the delta-based one.

    The laws are property-checked in [test/test_delta_lens.ml] for the
    list-edit and model-edit instances. *)

(** Construction provenance for delta lenses.  [Esm_lens] sits {e below}
    [Esm_core] in the dependency order, so it cannot name
    {!Esm_core.Pedigree.t} itself; instead each constructor records one
    of these local descriptors, and packing sites above (the analysis
    catalog, {!Esm_relational.Rlens.packed_of_dlens}-style helpers)
    translate them into [Pedigree.Delta_of] claims. *)
type provenance =
  | Of_state_lens of { name : string }
      (** {!Of_lens}: absolute deltas over a state-based lens — the
          delta behaviour is exactly the lens's [put], so the packed
          pedigree is [Delta_of (Of_lens ...)] with the lens's own law
          claims. *)
  | List_mapped of { name : string }
      (** {!List_map}: positional edits translated element-wise through
          the element lens.  Functorial, but the induced state-based
          lens carries no (PutPut)-style claim. *)

let provenance_to_string = function
  | Of_state_lens { name } -> "delta_of_lens[" ^ name ^ "]"
  | List_mapped { name } -> "delta_list_map[" ^ name ^ "]"

(** A monoid of deltas acting on a state set. *)
module type ACTION = sig
  type state
  type delta

  val id : delta
  val compose : delta -> delta -> delta
  (** [compose d d'] applies [d] first, then [d']. *)

  val apply : state -> delta -> state
  val equal_delta : delta -> delta -> bool
  val equal_state : state -> state -> bool
end

(** A delta lens between a source action [S] and a view action [V]. *)
module type S = sig
  module Src : ACTION
  module View : ACTION

  val get : Src.state -> View.state

  val dput : Src.state -> View.delta -> Src.delta
  (** Translate a view edit into a source edit, relative to the current
      source. *)
end

(** The action of "absolute" deltas: a delta is [None] (identity) or
    [Some new_value] (replace).  This is how state-based lenses embed in
    the delta world. *)
module Absolute (X : sig
  type t

  val equal : t -> t -> bool
end) : ACTION with type state = X.t and type delta = X.t option = struct
  type state = X.t
  type delta = X.t option

  let id = None

  let compose d d' = match d' with Some _ -> d' | None -> d

  let apply s = function Some s' -> s' | None -> s

  let equal_delta d1 d2 =
    match (d1, d2) with
    | None, None -> true
    | Some x, Some y -> X.equal x y
    | None, Some _ | Some _, None -> false

  let equal_state = X.equal
end

(** Lists with positional edit scripts — the classic structured-delta
    example. *)
module List_edits (X : sig
  type t

  val equal : t -> t -> bool
end) : sig
  type edit = Insert of int * X.t | Delete of int | Replace of int * X.t

  include ACTION with type state = X.t list and type delta = edit list

  val apply_edit : X.t list -> edit -> X.t list
end = struct
  type edit = Insert of int * X.t | Delete of int | Replace of int * X.t

  type state = X.t list
  type delta = edit list

  let id = []
  let compose = ( @ )

  (* Out-of-range positions clamp (insert) or no-op (delete/replace), so
     [apply] is total. *)
  let apply_edit (xs : X.t list) : edit -> X.t list = function
    | Insert (i, x) ->
        let i = max 0 (min i (List.length xs)) in
        List.filteri (fun j _ -> j < i) xs
        @ (x :: List.filteri (fun j _ -> j >= i) xs)
    | Delete i -> List.filteri (fun j _ -> j <> i) xs
    | Replace (i, x) -> List.mapi (fun j y -> if j = i then x else y) xs

  let apply xs delta = List.fold_left apply_edit xs delta

  let equal_edit e1 e2 =
    match (e1, e2) with
    | Insert (i1, x1), Insert (i2, x2) -> i1 = i2 && X.equal x1 x2
    | Delete i1, Delete i2 -> i1 = i2
    | Replace (i1, x1), Replace (i2, x2) -> i1 = i2 && X.equal x1 x2
    | (Insert _ | Delete _ | Replace _), _ -> false

  let equal_delta d1 d2 =
    List.length d1 = List.length d2 && List.for_all2 equal_edit d1 d2

  let equal_state s1 s2 =
    List.length s1 = List.length s2 && List.for_all2 X.equal s1 s2
end

(** Embed a state-based lens as a delta lens over absolute deltas: a
    view replacement becomes a source replacement through [put]. *)
module Of_lens (X : sig
  type s
  type v

  val lens : (s, v) Lens.t
  val equal_s : s -> s -> bool
  val equal_v : v -> v -> bool
end) : sig
  module Src : ACTION with type state = X.s and type delta = X.s option
  module View : ACTION with type state = X.v and type delta = X.v option

  val get : X.s -> X.v
  val dput : X.s -> View.delta -> Src.delta

  val provenance : provenance
  (** [Of_state_lens] over the embedded lens's name. *)
end = struct
  module Src = Absolute (struct
    type t = X.s

    let equal = X.equal_s
  end)

  module View = Absolute (struct
    type t = X.v

    let equal = X.equal_v
  end)

  let get = Lens.get X.lens

  let dput (s : X.s) (dv : X.v option) : X.s option =
    match dv with None -> None | Some v -> Some (Lens.put X.lens s v)

  let provenance = Of_state_lens { name = X.lens.Lens.name }
end

(** Forget deltas: a delta lens over absolute deltas is exactly a
    state-based lens. *)
let to_lens (type s v) ?(name = "of_delta")
    (module D : S
      with type Src.state = s
       and type Src.delta = s option
       and type View.state = v
       and type View.delta = v option) : (s, v) Lens.t =
  Lens.v ~name ~get:D.get
    ~put:(fun s v -> D.Src.apply s (D.dput s (Some v)))
    ()

(** The delta lens mapping an element-wise lens over lists with
    positional edits: inserts create sources with [create], deletes and
    replaces translate positionally.  Functorial because edit
    translation is positionwise. *)
module List_map (X : sig
  type s
  type v

  val lens : (s, v) Lens.t
  val create : v -> s
  val equal_s : s -> s -> bool
  val equal_v : v -> v -> bool
end) =
struct
  module Src = List_edits (struct
    type t = X.s

    let equal = X.equal_s
  end)

  module View = List_edits (struct
    type t = X.v

    let equal = X.equal_v
  end)

  let get (xs : X.s list) : X.v list = List.map (Lens.get X.lens) xs

  let dput_edit (xs : X.s list) : View.edit -> Src.edit = function
    | View.Insert (i, v) -> Src.Insert (i, X.create v)
    | View.Delete i -> Src.Delete i
    | View.Replace (i, v) -> (
        match List.nth_opt xs i with
        | Some s -> Src.Replace (i, Lens.put X.lens s v)
        | None -> Src.Replace (i, X.create v))

  let dput (xs : X.s list) (dv : View.delta) : Src.delta =
    (* translate edit by edit, tracking the evolving source *)
    let _, rev =
      List.fold_left
        (fun (xs, acc) ev ->
          let es = dput_edit xs ev in
          (Src.apply_edit xs es, es :: acc))
        (xs, []) dv
    in
    List.rev rev

  let provenance = List_mapped { name = X.lens.Lens.name }
end
