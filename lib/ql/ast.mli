(** The typed ESMQL statement AST (see [docs/QUERY.md] for the surface
    grammar).  A script is a statement list; query expressions inside
    [view] statements are {!Esm_relational.Query.t} — the one pipeline
    grammar, shared with [Query.parse] through
    {!Esm_relational.Qlex}/[Query.parse_prefix].

    {!to_string} and {!Parser.parse} round-trip:
    [parse (to_string s) = Ok s] for every printable script (string
    literals are printed with OCaml escapes the lexer reads literally,
    so scripts whose strings avoid ["\""], ["\\"] and control characters
    — everything the printer would escape — round-trip exactly; the
    QCheck property in [test/test_ql.ml] drives this). *)

open Esm_analysis
open Esm_relational

type mode = Strict | Fallback
(** How a view whose requested law level exceeds the inferred one is
    handled: [Strict] rejects the script at compile time, [Fallback]
    downgrades the view to runtime-validated execution. *)

val mode_name : mode -> string
val mode_of_string : string -> mode option

val level_name : Law_infer.level -> string
(** Surface keyword of a law level: [setbx], [undoable],
    [overwriteable], [commuting] (identifiers, unlike
    {!Law_infer.to_string}'s hyphenated forms). *)

val level_of_string : string -> Law_infer.level option

type stmt =
  | Mode of mode  (** [mode strict;] / [mode fallback;] *)
  | Expect of Law_infer.level
      (** [expect level = commuting;] — applies to the {e next} [view] *)
  | View of string * Query.t  (** [view v = employees | where …;] *)
  | Get of string  (** [get v;] — read the view *)
  | Put of string * Row.t list
      (** [put v = (1, "a"), (2, "b");] — replace the view wholesale *)
  | Delta of string * Row_delta.t list
      (** [delta v + (1, "a") - (2, "b");] — edit the view incrementally *)

type script = stmt list

val pp_stmt : Format.formatter -> stmt -> unit
val pp : Format.formatter -> script -> unit
val stmt_to_string : stmt -> string
val to_string : script -> string

val equal : script -> script -> bool
(** Structural equality (the round-trip property's comparison). *)
