(** The ESMQL statement parser: {!Esm_relational.Qlex} tokens in, typed
    {!Ast.script} out.  [view] bodies are parsed by
    {!Esm_relational.Query.parse_prefix} — the same grammar, the same
    positioned errors, one lexer.

    Total: every failure (lexing included) is a typed
    {!Esm_core.Error.t} of kind [Parse] whose message carries the
    1-based line/column and the offending token — never an exception
    escape.  The fuzz property in [test/test_ql.ml] drives this over
    malformed input. *)

val parse : string -> (Ast.script, Esm_core.Error.t) result
