open Esm_core
open Esm_relational

(* Local parse failure carrying a fully formatted positioned message;
   converted to a typed [Error.t] at the [parse] boundary. *)
exception Fail of string

let failf fmt = Format.kasprintf (fun m -> raise (Fail m)) fmt

type state = { mutable toks : Qlex.t list; eof : Qlex.pos }

let peek st = match st.toks with [] -> None | t :: _ -> Some t.Qlex.tok
let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest
let here st = match st.toks with [] -> st.eof | t :: _ -> t.Qlex.pos

let got st =
  match st.toks with
  | [] -> "end of input"
  | t :: _ -> Qlex.describe t.Qlex.tok

let fail st what =
  failf "%s: expected %s, got %s" (Qlex.pos_string (here st)) what (got st)

let expect st tok what =
  match peek st with Some t when t = tok -> advance st | _ -> fail st what

let ident st what =
  match peek st with
  | Some (Qlex.Ident s) ->
      advance st;
      s
  | _ -> fail st what

let semi st = expect st Qlex.Semi "';'"

let value st : Value.t =
  match peek st with
  | Some (Qlex.Int i) ->
      advance st;
      Value.Int i
  | Some (Qlex.Str s) ->
      advance st;
      Value.Str s
  | Some (Qlex.Ident "true") ->
      advance st;
      Value.Bool true
  | Some (Qlex.Ident "false") ->
      advance st;
      Value.Bool false
  | _ -> fail st "a literal (integer, string, true or false)"

let row st : Row.t =
  expect st Qlex.Lparen "'('";
  let rec go acc =
    let v = value st in
    match peek st with
    | Some Qlex.Comma ->
        advance st;
        go (v :: acc)
    | _ ->
        expect st Qlex.Rparen "')' or ','";
        List.rev (v :: acc)
  in
  Row.of_list (go [])

let rows st : Row.t list =
  (* possibly empty, up to the terminating ';' *)
  match peek st with
  | Some Qlex.Semi -> []
  | _ ->
      let rec go acc =
        let r = row st in
        match peek st with
        | Some Qlex.Comma ->
            advance st;
            go (r :: acc)
        | _ -> List.rev (r :: acc)
      in
      go []

let deltas st : Row_delta.t list =
  let rec go acc =
    match peek st with
    | Some Qlex.Plus ->
        advance st;
        go (Row_delta.Add (row st) :: acc)
    | Some Qlex.Minus ->
        advance st;
        go (Row_delta.Remove (row st) :: acc)
    | _ -> List.rev acc
  in
  go []

let query st : Query.t =
  let q, rest = Query.parse_prefix st.toks ~eof:st.eof in
  st.toks <- rest;
  q

let stmt st : Ast.stmt =
  match peek st with
  | Some (Qlex.Ident "mode") ->
      advance st;
      let m =
        match peek st with
        | Some (Qlex.Ident s) when Ast.mode_of_string s <> None ->
            advance st;
            Option.get (Ast.mode_of_string s)
        | _ -> fail st "'strict' or 'fallback'"
      in
      semi st;
      Ast.Mode m
  | Some (Qlex.Ident "expect") ->
      advance st;
      (match peek st with
      | Some (Qlex.Ident "level") -> advance st
      | _ -> fail st "'level'");
      expect st Qlex.Eq "'='";
      let l =
        match peek st with
        | Some (Qlex.Ident s) when Ast.level_of_string s <> None ->
            advance st;
            Option.get (Ast.level_of_string s)
        | _ -> fail st "a law level (setbx, undoable, overwriteable or commuting)"
      in
      semi st;
      Ast.Expect l
  | Some (Qlex.Ident "view") ->
      advance st;
      let v = ident st "a view name" in
      expect st Qlex.Eq "'='";
      let q = query st in
      semi st;
      Ast.View (v, q)
  | Some (Qlex.Ident "get") ->
      advance st;
      let v = ident st "a view name" in
      semi st;
      Ast.Get v
  | Some (Qlex.Ident "put") ->
      advance st;
      let v = ident st "a view name" in
      expect st Qlex.Eq "'='";
      let rs = rows st in
      semi st;
      Ast.Put (v, rs)
  | Some (Qlex.Ident "delta") ->
      advance st;
      let v = ident st "a view name" in
      let ds = deltas st in
      semi st;
      Ast.Delta (v, ds)
  | _ ->
      fail st "a statement ('mode', 'expect', 'view', 'get', 'put' or 'delta')"

let parse (input : string) : (Ast.script, Error.t) result =
  match Qlex.tokenize input with
  | Error { Qlex.at; what } ->
      Error (Error.v Error.Parse ~op:"esmql.parse"
               (Printf.sprintf "%s: %s" (Qlex.pos_string at) what))
  | Ok (toks, eof) -> (
      let st = { toks; eof } in
      let rec go acc =
        match peek st with None -> List.rev acc | Some _ -> go (stmt st :: acc)
      in
      try Ok (go [])
      with
      | Fail m -> Error (Error.v Error.Parse ~op:"esmql.parse" m)
      | Query.Parse_error m -> Error (Error.v Error.Parse ~op:"esmql.parse" m))
