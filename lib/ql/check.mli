(** The ESMQL compile-time gate: typed AST → schema/key-checked,
    law-levelled, executable plans.

    Each [view] statement compiles through the existing machinery —
    {!Esm_relational.Query.to_dlens} for the delta-capable plan,
    {!Esm_analysis.Lint.lint_plan} for schema/key diagnostics,
    {!Esm_analysis.Law_infer.of_packed} for the inferred law level —
    and is then gated against the level the preceding
    [expect level = …] pragma requested:

    - requested ≤ inferred: the plan runs as compiled (the fast delta
      path), in either mode;
    - requested > inferred, [Strict] mode: the script is rejected with
      the {!Esm_analysis.Lint.check_level} diagnostic;
    - requested > inferred, [Fallback] mode: the view is downgraded to
      {e runtime-validated} execution — every put runs through the full
      get/put oracle and re-checks (PutGet) on the result, raising a
      typed error instead of silently propagating a law violation.

    Plan-lint errors ([Unknown_column], [Dropped_key]) reject in both
    modes: no runtime validation makes an ill-schemed plan executable. *)

open Esm_core
open Esm_analysis
open Esm_relational

type base = {
  bname : string;
  bschema : Schema.t;
  bkey : string list;
  binit : Table.t;
}
(** A named base table the script's queries may draw from. *)

type cview = {
  vname : string;
  query : Query.t;
  base : base;
  view_schema : Schema.t;  (** schema of the view [query] produces *)
  view_key : string list;  (** the key columns, renamed along the plan *)
  raw_dlens : Rlens.dlens;  (** the plan exactly as compiled *)
  dlens : Rlens.dlens;
      (** what executes: [raw_dlens], or its validated wrapper when
          [downgraded] *)
  inferred : Law_infer.level;
  requested : Law_infer.level;
  mode : Ast.mode;
  downgraded : bool;
  lint : Lint.diagnostic list;  (** {!Lint.lint_plan} output (no errors) *)
}

type item =
  | I_view of cview
  | I_get of cview
  | I_put of cview * Row.t list
  | I_delta of cview * Row_delta.t list

type compiled = { views : cview list; items : item list }
(** [views] in definition order; [items] in statement order (every
    reference resolved, every row checked against its view schema). *)

val validated_dlens : Rlens.dlens -> Rlens.dlens
(** The fallback wrapper: translate view deltas through the full
    get/put oracle and re-check (PutGet) on the produced source,
    raising a typed [Error] (kind [Other], op ["esmql.validate"]) on a
    round-trip violation.  Pedigree and lens are unchanged — only the
    delta path is replaced. *)

val compile :
  ?mode:Ast.mode -> bases:base list -> Ast.script -> (compiled, Error.t) result
(** Compile a script against named base tables.  [mode] (default
    [Strict]) seeds the mode; [mode …;] statements change it for
    subsequent views.  Never raises: schema errors, unknown views or
    bases, non-conforming rows and gate rejections all come back as
    typed [Error]s. *)
