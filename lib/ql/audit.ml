open Esm_core
open Esm_analysis
module Rel = Esm_relational

let strict_label = "esmql/key-slice-strict"
let fallback_label = "esmql/roster-fallback"
let labels = [ strict_label; fallback_label ]

(* A key-preserving select: the predicate reads only the key column, so
   the inferred level is `Overwriteable and the `Overwriteable request
   passes the gate as asked. *)
let strict_source = {|employees | where 0 <= id|}

(* The engineering roster: the lossy project drops the meet to `Set_bx,
   so the `Commuting request is downgraded — the registered bx is the
   runtime-validated fallback artifact itself. *)
let fallback_source =
  {|employees | where dept = "Engineering" | select id, name, dept|}

let base () : Check.base =
  {
    Check.bname = "employees";
    bschema = Rel.Workload.employees_schema;
    bkey = [ "id" ];
    binit = Rel.Workload.employees ~seed:3 ~size:8;
  }

let compile_view ~mode ~requested name source : Check.cview =
  let q = Rel.Query.parse source in
  match
    Check.compile ~mode ~bases:[ base () ]
      [ Ast.Expect requested; Ast.View (name, q) ]
  with
  | Ok c -> List.hd c.Check.views
  | Error e -> raise (Error.Bx_error e)

(* The level the view actually executes at: what its pipelines may be
   linted against without a Level_mismatch error. *)
let effective (cv : Check.cview) : Law_infer.level =
  if cv.Check.downgraded then cv.Check.inferred else cv.Check.requested

let entry_of_view ~label ~description ~values_b (cv : Check.cview) :
    Catalog.entry =
  let level = effective cv in
  let session name views : (Rel.Table.t, Rel.Table.t) Catalog.subject =
    Catalog.Puts
      ( name,
        level,
        Lint.Pget_b
        :: List.concat_map (fun v -> [ Lint.Put_ba v; Lint.Pget_a ]) views )
  in
  Catalog.Entry
    {
      Catalog.label;
      description;
      packed =
        Rel.Rlens.packed_of_dlens ~init:cv.Check.base.Check.binit
          cv.Check.dlens;
      values_a =
        [
          Rel.Workload.employees ~seed:1 ~size:6;
          Rel.Workload.employees ~seed:7 ~size:10;
          Rel.Workload.employees ~seed:2 ~size:0;
        ];
      values_b;
      eq_a = Rel.Table.equal;
      eq_b = Rel.Table.equal;
      show_a = Rel.Table.to_string;
      show_b = Rel.Table.to_string;
      subjects = [ session "esmql session" (List.filteri (fun i _ -> i < 2) values_b) ];
      plan =
        Some
          {
            Catalog.plan_schema = cv.Check.base.Check.bschema;
            plan_key = cv.Check.base.Check.bkey;
            plan_query = cv.Check.query;
            plan_requested = Some cv.Check.requested;
          };
    }

let registered = ref false

let register_catalog () =
  if not !registered then begin
    registered := true;
    let strict_cv =
      compile_view ~mode:Ast.Strict ~requested:`Overwriteable "key_slice"
        strict_source
    in
    Catalog.register
      (entry_of_view ~label:strict_label
         ~description:
           "ESMQL strict-mode view: key-preserving select over employees, \
            `Overwriteable requested and inferred — the gate passes the \
            plan as asked"
         ~values_b:
           [
             Rel.Workload.employees ~seed:4 ~size:6;
             Rel.Workload.employees ~seed:9 ~size:10;
             Rel.Workload.employees ~seed:1 ~size:0;
           ]
         strict_cv);
    let fallback_cv =
      compile_view ~mode:Ast.Fallback ~requested:`Commuting "eng_roster"
        fallback_source
    in
    Catalog.register
      (entry_of_view ~label:fallback_label
         ~description:
           "ESMQL fallback-mode view: `Commuting requested over a lossy \
            project (inferred set-bx) — downgraded to runtime-validated \
            execution; the packed bx is the validated fallback artifact"
         ~values_b:
           [
             Rel.Workload.engineering_view ~seed:4 ~size:12;
             Rel.Workload.engineering_view ~seed:9 ~size:20;
             Rel.Workload.engineering_view ~seed:1 ~size:0;
           ]
         fallback_cv)
  end
