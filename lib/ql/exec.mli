(** Run a compiled ESMQL script against one backend kind, one backend
    instance per view, collecting a step-by-step outcome trace.

    Failures are per-step: a failed put records its typed error and the
    script continues (the store is unchanged — commits are atomic), so
    a trace always covers every statement.  [ok] is false iff any step
    failed. *)

open Esm_core
open Esm_relational

type step =
  | Defined of Check.cview
  | Got of { vname : string; version : int; table : Table.t }
  | Committed of { vname : string; version : int; op : string }
      (** [op] is ["put"] or ["delta"] *)
  | Failed of { vname : string; op : string; err : Error.t }

type trace = { steps : step list; ok : bool }

val run : ?dir:string -> kind:Backend.kind -> Check.compiled -> trace
(** Execute every item; backends are created at their [view] statement
    and all closed before returning (exceptions included). *)

val pp_step : Format.formatter -> step -> unit
val pp : Format.formatter -> trace -> unit

val step_to_json : step -> string
val to_json : backend:Backend.kind -> trace -> string
(** [{"backend":…,"ok":…,"steps":[…]}]; tables render as sorted row
    arrays of value strings, so equal views render equally — what the
    CI differential diff compares across backends. *)
