open Esm_core
open Esm_analysis
open Esm_relational

type step =
  | Defined of Check.cview
  | Got of { vname : string; version : int; table : Table.t }
  | Committed of { vname : string; version : int; op : string }
  | Failed of { vname : string; op : string; err : Error.t }

type trace = { steps : step list; ok : bool }

let run ?dir ~(kind : Backend.kind) (c : Check.compiled) : trace =
  let backends : (string * Backend.t) list ref = ref [] in
  let backend (cv : Check.cview) = List.assoc cv.Check.vname !backends in
  let step (item : Check.item) : step =
    match item with
    | Check.I_view cv ->
        backends := (cv.Check.vname, Backend.make ?dir kind cv) :: !backends;
        Defined cv
    | Check.I_get cv -> (
        let b = backend cv in
        match Backend.view b with
        | Ok table ->
            Got { vname = cv.Check.vname; version = Backend.version b; table }
        | Error err -> Failed { vname = cv.Check.vname; op = "get"; err })
    | Check.I_put (cv, rows) -> (
        let b = backend cv in
        match Backend.put b rows with
        | Ok version -> Committed { vname = cv.Check.vname; version; op = "put" }
        | Error err -> Failed { vname = cv.Check.vname; op = "put"; err })
    | Check.I_delta (cv, ds) -> (
        let b = backend cv in
        match Backend.batch b ds with
        | Ok version ->
            Committed { vname = cv.Check.vname; version; op = "delta" }
        | Error err -> Failed { vname = cv.Check.vname; op = "delta"; err })
  in
  let close_all () = List.iter (fun (_, b) -> Backend.close b) !backends in
  let steps =
    match List.map step c.Check.items with
    | steps ->
        close_all ();
        steps
    | exception e ->
        close_all ();
        raise e
  in
  let ok =
    not (List.exists (function Failed _ -> true | _ -> false) steps)
  in
  { steps; ok }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_step fmt = function
  | Defined cv ->
      Format.fprintf fmt "view %s: inferred %s, requested %s%s%s"
        cv.Check.vname
        (Law_infer.to_string cv.Check.inferred)
        (Law_infer.to_string cv.Check.requested)
        (if cv.Check.downgraded then " — downgraded (runtime-validated)"
         else "")
        (Printf.sprintf " [%s]" (Ast.mode_name cv.Check.mode))
  | Got { vname; version; table } ->
      Format.fprintf fmt "get %s @@v%d:@.%a" vname version Table.pp table
  | Committed { vname; version; op } ->
      Format.fprintf fmt "%s %s -> v%d" op vname version
  | Failed { vname; op; err } ->
      Format.fprintf fmt "%s %s FAILED: %s" op vname (Error.message err)

let pp fmt (t : trace) =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_step fmt t.steps;
  Format.fprintf fmt "@.%s@." (if t.ok then "ok" else "FAILED")

let table_json (t : Table.t) =
  let row_json r =
    "["
    ^ String.concat ","
        (List.map
           (fun v -> Printf.sprintf "\"%s\"" (Lint.json_escape (Value.to_string v)))
           (Row.to_list r))
    ^ "]"
  in
  "[" ^ String.concat "," (List.map row_json (Table.rows t)) ^ "]"

let step_to_json = function
  | Defined cv ->
      Printf.sprintf
        {|{"step":"view","view":"%s","inferred":"%s","requested":"%s","mode":"%s","downgraded":%b}|}
        (Lint.json_escape cv.Check.vname)
        (Law_infer.to_string cv.Check.inferred)
        (Law_infer.to_string cv.Check.requested)
        (Ast.mode_name cv.Check.mode)
        cv.Check.downgraded
  | Got { vname; version = _; table } ->
      (* the version is backend-local (store commit counters vs a mem
         counter) and deliberately left out: the JSON is what the
         cross-backend differential diff compares *)
      Printf.sprintf {|{"step":"get","view":"%s","rows":%s}|}
        (Lint.json_escape vname) (table_json table)
  | Committed { vname; version = _; op } ->
      Printf.sprintf {|{"step":"%s","view":"%s","committed":true}|} op
        (Lint.json_escape vname)
  | Failed { vname; op; err } ->
      Printf.sprintf {|{"step":"%s","view":"%s","error":"%s"}|} op
        (Lint.json_escape vname)
        (Lint.json_escape (Error.message err))

let to_json ~backend (t : trace) =
  Printf.sprintf {|{"backend":"%s","ok":%b,"steps":[%s]}|}
    (Backend.kind_name backend) t.ok
    (String.concat "," (List.map step_to_json t.steps))
