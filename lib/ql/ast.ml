open Esm_analysis
open Esm_relational

type mode = Strict | Fallback

let mode_name = function Strict -> "strict" | Fallback -> "fallback"

let mode_of_string = function
  | "strict" -> Some Strict
  | "fallback" -> Some Fallback
  | _ -> None

let level_name : Law_infer.level -> string = function
  | `Set_bx -> "setbx"
  | `Undoable -> "undoable"
  | `Overwriteable -> "overwriteable"
  | `Commuting -> "commuting"

let level_of_string : string -> Law_infer.level option = function
  | "setbx" -> Some `Set_bx
  | "undoable" -> Some `Undoable
  | "overwriteable" -> Some `Overwriteable
  | "commuting" -> Some `Commuting
  | _ -> None

type stmt =
  | Mode of mode
  | Expect of Law_infer.level
  | View of string * Query.t
  | Get of string
  | Put of string * Row.t list
  | Delta of string * Row_delta.t list

type script = stmt list

let pp_value fmt (v : Value.t) =
  match v with
  | Value.Int i -> Format.fprintf fmt "%d" i
  | Value.Str s -> Format.fprintf fmt "%S" s
  | Value.Bool b -> Format.fprintf fmt "%b" b

let pp_row fmt (r : Row.t) =
  Format.fprintf fmt "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
       pp_value)
    (Row.to_list r)

let pp_stmt fmt = function
  | Mode m -> Format.fprintf fmt "mode %s;" (mode_name m)
  | Expect l -> Format.fprintf fmt "expect level = %s;" (level_name l)
  | View (v, q) -> Format.fprintf fmt "view %s = %a;" v Query.pp q
  | Get v -> Format.fprintf fmt "get %s;" v
  | Put (v, rows) ->
      Format.fprintf fmt "put %s =%s%a;" v
        (if rows = [] then "" else " ")
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
           pp_row)
        rows
  | Delta (v, ds) ->
      let pp_delta fmt (d : Row_delta.t) =
        match d with
        | Row_delta.Add r -> Format.fprintf fmt "+ %a" pp_row r
        | Row_delta.Remove r -> Format.fprintf fmt "- %a" pp_row r
      in
      Format.fprintf fmt "delta %s%s%a;" v
        (if ds = [] then "" else " ")
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt " ")
           pp_delta)
        ds

let pp fmt (s : script) =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.fprintf fmt "@.")
    pp_stmt fmt s

let stmt_to_string s = Format.asprintf "%a" pp_stmt s
let to_string s = Format.asprintf "%a" pp s
let equal (s1 : script) (s2 : script) = s1 = s2
