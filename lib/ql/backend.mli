(** Pluggable execution backends for compiled ESMQL views: one
    signature, three implementations, identical observable behaviour
    (the cross-backend differential property in [test/test_ql.ml]).

    - [Mem] — the compiled dlens over an in-process source table
      ({!Esm_relational.Rlens.put_delta} directly);
    - [Store] — a replicated {!Esm_sync.Store} serving the packed
      pipeline, edits submitted through a B-side {!Esm_sync.Session}
      with rebase; optionally durable ([?dir]);
    - [Remote] — the same store behind {!Esm_sync.Wire.serve} and the
      deterministic {!Esm_sync.Transport.Chaos_net}, driven by a
      retrying {!Esm_sync.Transport.Remote_session} — so the [net.*]
      chaos sites exercise the full loss/retry/dedup machinery while
      the other two backends stay fault-free.

    Every operation returns a typed result; bx failures (shape errors,
    validation failures, conflicts) never escape as exceptions. *)

open Esm_core
open Esm_relational

module type S = sig
  type t

  val label : t -> string
  val version : t -> int
  (** Backend-local commit counter (store/remote versions; a plain
      counter for [Mem]) — not part of the differential contract. *)

  val view : t -> (Table.t, Error.t) result
  val put : t -> Row.t list -> (int, Error.t) result
  val batch : t -> Row_delta.t list -> (int, Error.t) result
  val close : t -> unit
end

type t = B : (module S with type t = 'a) * 'a -> t

type kind = Mem | Store | Remote

val kind_name : kind -> string
val kind_of_string : string -> kind option

val make : ?dir:string -> kind -> Check.cview -> t
(** Instantiate a backend for one compiled view.  [dir] makes the
    [Store] backend durable (ignored by the others). *)

val label : t -> string
val version : t -> int
val view : t -> (Table.t, Error.t) result
val put : t -> Row.t list -> (int, Error.t) result
val batch : t -> Row_delta.t list -> (int, Error.t) result
val close : t -> unit
