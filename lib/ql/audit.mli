(** Catalog registration for ESMQL-derived bx: the representative
    compiled queries — one strict (gate passed as asked), one fallback
    (gate downgraded to runtime-validated execution) — packaged as
    {!Esm_analysis.Catalog} scenarios, so `bxlint`'s audit, sampling
    cross-check and opaque-plan gate cover plans born from the query
    front-end, with the per-entry requested-vs-inferred levels in the
    JSON report (schema_version 3). *)

val register_catalog : unit -> unit
(** Compile the two scenarios and {!Esm_analysis.Catalog.register}
    them.  Idempotent (registration is keyed by label). *)

val labels : string list
(** The labels [register_catalog] contributes, for tests and docs. *)

val strict_label : string
val fallback_label : string

val strict_source : string
(** Surface syntax of the strict scenario's view: a key-preserving
    select, inferred [`Overwriteable]. *)

val fallback_source : string
(** Surface syntax of the fallback scenario's view: a lossy project,
    inferred [`Set_bx], downgraded from a [`Commuting] request. *)
