open Esm_core
open Esm_relational
open Esm_sync

module type S = sig
  type t

  val label : t -> string
  val version : t -> int
  val view : t -> (Table.t, Error.t) result
  val put : t -> Row.t list -> (int, Error.t) result
  val batch : t -> Row_delta.t list -> (int, Error.t) result
  val close : t -> unit
end

type t = B : (module S with type t = 'a) * 'a -> t

type kind = Mem | Store | Remote

let kind_name = function Mem -> "mem" | Store -> "store" | Remote -> "remote"

let kind_of_string = function
  | "mem" -> Some Mem
  | "store" -> Some Store
  | "remote" -> Some Remote
  | _ -> None

(* Convert bx exceptions into typed results; programming errors keep
   propagating. *)
let wrap f =
  try Ok (f ()) with
  | Error.Bx_error e -> Error e
  | e -> (
      match Error.of_exn e with Some t -> Error t | None -> raise e)

let apply_deltas t ds = Row_delta.apply_all t ds

(* ------------------------------------------------------------------ *)
(* In-memory: the dlens over a mutable source table                    *)
(* ------------------------------------------------------------------ *)

module Mem_b = struct
  type t = {
    cv : Check.cview;
    mutable src : Table.t;
    mutable ver : int;
  }

  let create (cv : Check.cview) = { cv; src = cv.Check.base.Check.binit; ver = 0 }
  let label _ = "mem"
  let version b = b.ver
  let view b = wrap (fun () -> Rlens.get_memo b.cv.Check.dlens b.src)

  let commit b ds =
    wrap (fun () ->
        b.src <- Rlens.put_delta b.cv.Check.dlens b.src ds;
        b.ver <- b.ver + 1;
        b.ver)

  let put b rows =
    match
      wrap (fun () ->
          let nv = Table.of_rows b.cv.Check.view_schema rows in
          let cur = Rlens.get_memo b.cv.Check.dlens b.src in
          Row_delta.diff cur nv)
    with
    | Error e -> Error e
    | Ok ds -> commit b ds

  let batch = commit
  let close _ = ()
end

(* ------------------------------------------------------------------ *)
(* Replicated store: packed pipeline behind a B-side session           *)
(* ------------------------------------------------------------------ *)

module Store_b = struct
  type t = { store : Wire.rstore; sess : Wire.rsession; vschema : Schema.t }

  let create ?dir (cv : Check.cview) =
    let packed =
      Rlens.packed_of_dlens ~init:cv.Check.base.Check.binit cv.Check.dlens
    in
    let persist =
      Option.map
        (fun dir ->
          Store.persist ~dir
            (Wire.durable_op_codec ~schema_a:cv.Check.base.Check.bschema
               ~schema_b:cv.Check.view_schema))
        dir
    in
    let store =
      Store.of_packed
        ~name:("esmql/" ^ cv.Check.vname)
        ~apply_da:apply_deltas ~apply_db:apply_deltas ?persist packed
    in
    let sess = Session.bind store ~name:"esmql" ~side:`B in
    { store; sess; vschema = cv.Check.view_schema }

  let label _ = "store"
  let version b = Store.version b.store
  let view b = wrap (fun () -> Store.view_b b.store)

  let submit b op =
    match Session.submit_rebase b.sess op with
    | Ok (v, _rebased) -> Ok v
    | Error e -> Error e

  let put b rows =
    match wrap (fun () -> Table.of_rows b.vschema rows) with
    | Error e -> Error e
    | Ok table -> submit b (Store.Set_b table)

  let batch b ds = submit b (Store.Batch_b ds)
  let close b = Store.close b.store
end

(* ------------------------------------------------------------------ *)
(* Remote: the same store behind the wire protocol and the chaos net   *)
(* ------------------------------------------------------------------ *)

module Remote_b = struct
  type t = {
    store : Wire.rstore;
    net : Transport.Chaos_net.t;
    rs : Transport.Remote_session.t;
    vschema : Schema.t;
  }

  let create (cv : Check.cview) =
    let packed =
      Rlens.packed_of_dlens ~init:cv.Check.base.Check.binit cv.Check.dlens
    in
    let store =
      Store.of_packed
        ~name:("esmql/" ^ cv.Check.vname)
        ~apply_da:apply_deltas ~apply_db:apply_deltas packed
    in
    let net = Transport.Chaos_net.create (Wire.serve store) in
    let rs =
      (* binding is the one step with no idempotent retry story (a
         fresh session has no dedup window yet), so it runs with
         injection suspended — as the soak harnesses do *)
      Chaos.protected (fun () ->
          match
            Transport.Remote_session.bind
              ~clock:(Transport.Chaos_net.clock net)
              (Transport.Chaos_net.endpoint net)
              ~name:"esmql" ~side:`B
          with
          | Ok rs -> rs
          | Error e -> raise (Error.Bx_error e))
    in
    { store; net; rs; vschema = cv.Check.view_schema }

  let label _ = "remote"
  let version b = Store.version b.store

  (* A transient failure leaves the request in doubt: the server may or
     may not have executed it.  Heal the net and ask — [resolve] resends
     the same envelope id, so dedup guarantees exactly-once even when
     the original did land.  This is what makes the remote backend give
     the same answers as mem/store under net.* chaos. *)
  let settle b (r : ('a, Error.t) result)
      ~(ok : Wire.response -> ('a, Error.t) result) : ('a, Error.t) result =
    match r with
    | Ok _ as r -> r
    | Error e when Error.is_transient e -> (
        Transport.Chaos_net.drain b.net;
        match
          Chaos.protected (fun () -> Transport.Remote_session.resolve b.rs)
        with
        | Ok resp -> ok resp
        | Error e -> Error e)
    | Error _ as r -> r

  let commit_of_resp = function
    | Wire.Resp_ok v -> Ok v
    | Wire.Resp_conflict (_, msg) ->
        Error (Error.v Error.Conflict ~op:"esmql.remote" msg)
    | Wire.Resp_error (kind, msg) ->
        Error (Error.v kind ~op:"esmql.remote" msg)
    | _ ->
        Error
          (Error.v Error.(Transport `Permanent) ~op:"esmql.remote"
             "unexpected response to a settled commit")

  let view b =
    let r =
      settle b
        (Transport.Remote_session.view b.rs)
        ~ok:(function
          | Wire.Resp_view (v, rows) -> Ok (v, rows)
          | resp -> (
              match commit_of_resp resp with
              | Error e -> Error e
              | Ok _ ->
                  Error
                    (Error.v Error.(Transport `Permanent) ~op:"esmql.remote"
                       "unexpected response to a settled view")))
    in
    match r with
    | Error e -> Error e
    | Ok (_v, rows) -> wrap (fun () -> Table.of_rows b.vschema rows)

  let put b rows =
    settle b (Transport.Remote_session.submit b.rs (`Set rows))
      ~ok:commit_of_resp

  let batch b ds =
    settle b (Transport.Remote_session.submit b.rs (`Batch ds))
      ~ok:commit_of_resp

  let close b =
    Transport.Remote_session.close b.rs;
    Store.close b.store
end

(* ------------------------------------------------------------------ *)

let make ?dir kind (cv : Check.cview) : t =
  match kind with
  | Mem -> B ((module Mem_b), Mem_b.create cv)
  | Store -> B ((module Store_b), Store_b.create ?dir cv)
  | Remote -> B ((module Remote_b), Remote_b.create cv)

let label (B ((module M), b)) = M.label b
let version (B ((module M), b)) = M.version b
let view (B ((module M), b)) = M.view b
let put (B ((module M), b)) rows = M.put b rows
let batch (B ((module M), b)) ds = M.batch b ds
let close (B ((module M), b)) = M.close b
