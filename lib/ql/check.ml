open Esm_core
open Esm_analysis
open Esm_relational

type base = {
  bname : string;
  bschema : Schema.t;
  bkey : string list;
  binit : Table.t;
}

type cview = {
  vname : string;
  query : Query.t;
  base : base;
  view_schema : Schema.t;
  view_key : string list;
  raw_dlens : Rlens.dlens;
  dlens : Rlens.dlens;
  inferred : Law_infer.level;
  requested : Law_infer.level;
  mode : Ast.mode;
  downgraded : bool;
  lint : Lint.diagnostic list;
}

type item =
  | I_view of cview
  | I_get of cview
  | I_put of cview * Row.t list
  | I_delta of cview * Row_delta.t list

type compiled = { views : cview list; items : item list }

exception Reject of Error.t

let rejectf fmt =
  Format.kasprintf
    (fun m -> raise (Reject (Error.v Error.Other ~op:"esmql.compile" m)))
    fmt

(* The schema and key the single-base pipeline produces, stage by stage
   (set operations and joins never reach here: [Query.to_dlens] has
   already rejected them, and [compile] checks the base count first). *)
let rec replay (schema, key) (q : Query.t) =
  match q with
  | Query.Base _ -> (schema, key)
  | Query.Where (_, q') -> replay (schema, key) q'
  | Query.Project (cols, q') ->
      let s, k = replay (schema, key) q' in
      (Schema.project s cols, k)
  | Query.Rename (m, q') ->
      let s, k = replay (schema, key) q' in
      ( Schema.rename s m,
        List.map (fun c -> match List.assoc_opt c m with Some c' -> c' | None -> c) k )
  | Query.Union _ | Query.Diff _ | Query.Join _ | Query.Product _ ->
      rejectf "set operations are not updatable views"

let validated_dlens (d : Rlens.dlens) : Rlens.dlens =
  let l = d.Rlens.lens in
  let translate src ds =
    let view = Esm_lens.Lens.get l src in
    let view' = Row_delta.apply_all view ds in
    let src' = Esm_lens.Lens.put l src view' in
    let got = Esm_lens.Lens.get l src' in
    if not (Table.equal got view') then
      Error.raise_error Error.Other ~op:"esmql.validate"
        "runtime validation failed for %s: put/get round-trip diverged"
        (Esm_lens.Lens.name l);
    Row_delta.diff src src'
  in
  { d with Rlens.translate; view_cache = None }

let compile_view ~mode ~requested (bases : base list) vname q : cview =
  let base_names = List.sort_uniq String.compare (Query.bases q) in
  let base =
    match base_names with
    | [ b ] -> (
        match List.find_opt (fun bb -> bb.bname = b) bases with
        | Some bb -> bb
        | None ->
            rejectf "view %s: unknown base table %s (have: %s)" vname b
              (String.concat ", " (List.map (fun bb -> bb.bname) bases)))
    | [] -> rejectf "view %s: no base table" vname
    | bs ->
        rejectf "view %s: a view draws from one base table, got %d (%s)" vname
          (List.length bs) (String.concat ", " bs)
  in
  let schema = base.bschema and key = base.bkey in
  let lint = Lint.lint_plan ~schema ~key q in
  if Lint.has_errors lint then
    rejectf "view %s: plan rejected:@.%a" vname
      (Format.pp_print_list ~pp_sep:Format.pp_print_newline Lint.pp_diagnostic)
      (List.filter Lint.is_error lint);
  let raw_dlens =
    try Query.to_dlens ~schema ~key q
    with Query.Not_updatable m -> rejectf "view %s: not updatable: %s" vname m
  in
  let view_schema, view_key = replay (schema, key) q in
  let packed = Rlens.packed_of_dlens ~init:base.binit raw_dlens in
  let inferred = Law_infer.of_packed packed in
  let gate = Lint.check_level ~requested ~inferred ~subject:vname in
  let downgraded =
    match gate with
    | None -> false
    | Some diag -> (
        match mode with
        | Ast.Strict ->
            rejectf
              "view %s: %s (strict mode rejects; rerun under 'mode \
               fallback;' for runtime-validated execution)"
              vname diag.Lint.message
        | Ast.Fallback -> true)
  in
  let dlens = if downgraded then validated_dlens raw_dlens else raw_dlens in
  {
    vname;
    query = q;
    base;
    view_schema;
    view_key;
    raw_dlens;
    dlens;
    inferred;
    requested;
    mode;
    downgraded;
    lint;
  }

let check_rows cv what (rs : Row.t list) =
  List.iter
    (fun r ->
      if not (Row.conforms cv.view_schema r) then
        rejectf "%s %s: row %s does not conform to the view schema (%s)" what
          cv.vname (Row.to_string r)
          (Schema.to_string cv.view_schema))
    rs

let compile ?(mode = Ast.Strict) ~(bases : base list) (script : Ast.script) :
    (compiled, Error.t) result =
  try
    let cur_mode = ref mode in
    let pending : Law_infer.level option ref = ref None in
    let views = ref [] in
    let find_view what v =
      match List.find_opt (fun cv -> cv.vname = v) !views with
      | Some cv -> cv
      | None -> rejectf "%s %s: no such view defined" what v
    in
    let items =
      List.filter_map
        (fun (s : Ast.stmt) ->
          match s with
          | Ast.Mode m ->
              cur_mode := m;
              None
          | Ast.Expect l ->
              pending := Some l;
              None
          | Ast.View (v, q) ->
              if List.exists (fun cv -> cv.vname = v) !views then
                rejectf "view %s: already defined" v;
              let requested = Option.value !pending ~default:`Set_bx in
              pending := None;
              let cv = compile_view ~mode:!cur_mode ~requested bases v q in
              views := cv :: !views;
              Some (I_view cv)
          | Ast.Get v -> Some (I_get (find_view "get" v))
          | Ast.Put (v, rs) ->
              let cv = find_view "put" v in
              check_rows cv "put" rs;
              Some (I_put (cv, rs))
          | Ast.Delta (v, ds) ->
              let cv = find_view "delta" v in
              check_rows cv "delta"
                (List.map
                   (function Row_delta.Add r | Row_delta.Remove r -> r)
                   ds);
              Some (I_delta (cv, ds)))
        script
    in
    Ok { views = List.rev !views; items }
  with
  | Reject e -> Error e
  | Error.Bx_error e -> Error e
  | Schema.Schema_error m -> Error (Error.v Error.Schema ~op:"esmql.compile" m)
  | Table.Table_error m -> Error (Error.v Error.Table ~op:"esmql.compile" m)
