(** The error (result) monad transformer: [ResultT E M A = M (A, E) result].

    Composing this over the entangled state monad gives the transactional
    shape [S -> ((A, E) result * S)] that {!Esm_core.Atomic} runs with
    snapshot-rollback; the transformer itself is backend-agnostic, mirroring
    {!State_t} over an arbitrary inner monad. *)

module Make
    (E : sig
      type t
    end)
    (M : Monad_intf.MONAD) =
struct
  type error = E.t
  type 'a inner = 'a M.t

  include Extend.Make (struct
    type 'a t = ('a, E.t) result M.t

    let return a = M.return (Ok a)

    let bind ma f =
      M.bind ma (function Error e -> M.return (Error e) | Ok a -> f a)
  end)

  let fail (e : error) : 'a t = M.return (Error e)
  let lift (ma : 'a M.t) : 'a t = M.bind ma (fun a -> M.return (Ok a))

  let catch (ma : 'a t) (handler : error -> 'a t) : 'a t =
    M.bind ma (function Error e -> handler e | Ok _ as ok -> M.return ok)

  let map_error (f : error -> error) (ma : 'a t) : 'a t =
    M.bind ma (function
      | Error e -> M.return (Error (f e))
      | Ok _ as ok -> M.return ok)

  let run (ma : 'a t) : ('a, error) result M.t = ma
end
