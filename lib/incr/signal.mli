(** A versioned input cell — the root of a [Signal → Memo → Memo]
    pipeline (after the two-memo incremental parser pipeline in
    SNIPPETS.md).

    A signal holds a value, its structural hash, and a version number.
    {!set} {e backdates}: writing a value that hashes (and, when an
    equality is supplied, compares) equal to the current one keeps the
    old value {e and the old version}, so downstream memos keyed on
    {!version} see no change and skip their recomputation. *)

type 'a t

val create : ?equal:('a -> 'a -> bool) -> hash:('a -> int) -> 'a -> 'a t
(** A signal at version 1.  [hash] must be a structural hash of the
    value ({!Esm_core.Shash.of_value} when in doubt); [equal] makes
    backdating exact — without it, matching hashes alone are trusted,
    which is fine for rejection-quality hashes over small values but
    admits collisions in principle. *)

val get : 'a t -> 'a
val version : 'a t -> int
(** Bumped by every {!set} that actually changed the value. *)

val hash : 'a t -> int
(** The cached structural hash of the current value (O(1)). *)

val set : 'a t -> 'a -> unit
(** Write a new value.  If it is structurally identical to the current
    one (hash fast-path, then [equal] when supplied) the signal is
    backdated: value and version are untouched.  Otherwise value, hash
    and version all advance. *)

val dep : 'a t -> unit -> int
(** The version thunk a downstream {!Memo.t} registers as a
    dependency. *)
