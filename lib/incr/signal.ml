(* Versioned input cells with backdating; see signal.mli. *)

type 'a t = {
  s_hash : 'a -> int;
  s_equal : ('a -> 'a -> bool) option;
  mutable value : 'a;
  mutable vhash : int;
  mutable version : int;
}

let create ?equal ~hash v =
  { s_hash = hash; s_equal = equal; value = v; vhash = hash v; version = 1 }

let get t = t.value
let version t = t.version
let hash t = t.vhash

let set t v =
  let h = t.s_hash v in
  let same =
    h = t.vhash
    && match t.s_equal with Some eq -> eq t.value v | None -> true
  in
  if not same then begin
    t.value <- v;
    t.vhash <- h;
    t.version <- t.version + 1
  end

let dep t () = t.version
