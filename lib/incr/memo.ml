(* Memoized computation nodes with backdating; see memo.mli. *)

type 'a t = {
  name : string;
  compute : unit -> 'a;
  m_hash : 'a -> int;
  m_equal : ('a -> 'a -> bool) option;
  deps : (unit -> int) list;
  mutable dep_versions : int array;  (* [||] = never ran *)
  mutable cached : 'a option;
  mutable cached_hash : int;
  mutable version : int;
}

let create ?equal ~name ~hash ~deps compute =
  {
    name;
    compute;
    m_hash = hash;
    m_equal = equal;
    deps;
    dep_versions = [||];
    cached = None;
    cached_hash = 0;
    version = 0;
  }

let version t = t.version

let current_deps t = Array.of_list (List.map (fun f -> f ()) t.deps)

let recompute (t : 'a t) (vs : int array) : 'a =
  Stats.miss t.name;
  let v = t.compute () in
  let h = t.m_hash v in
  t.dep_versions <- vs;
  match t.cached with
  | Some old
    when t.cached_hash = h
         && (match t.m_equal with Some eq -> eq old v | None -> true) ->
      (* backdating: the recomputation round-tripped to the same value,
         so keep the old value (physically shared downstream) and the
         old version — downstream memos see no change *)
      Stats.backdate t.name;
      old
  | _ ->
      t.cached <- Some v;
      t.cached_hash <- h;
      t.version <- t.version + 1;
      v

let rec force (t : 'a t) : 'a =
  let vs = current_deps t in
  let unchanged =
    Array.length t.dep_versions = Array.length vs
    &&
    let n = Array.length vs in
    let rec go i = i >= n || (vs.(i) = t.dep_versions.(i) && go (i + 1)) in
    go 0
  in
  match t.cached with
  | Some v when unchanged -> (
      (* the hit path trusts cached bookkeeping — gate it through the
         incr.hash chaos site, degrading to a full recomputation *)
      match Esm_core.Chaos.point Esm_core.Shash.site with
      | () ->
          Stats.hit t.name;
          v
      | exception exn when Esm_core.Error.degradable_exn exn ->
          Esm_core.Chaos.note_fallback Esm_core.Shash.site;
          Esm_core.Chaos.protected (fun () -> recompute t vs))
  | _ -> recompute t vs

and dep t () =
  (* pull-based dirtiness propagation: bring this memo up to date
     before reporting its version, so a downstream force sees the
     version a backdated recomputation kept (and skips), or the bumped
     one a real change produced (and re-runs) *)
  ignore (force t);
  t.version

let poison t =
  (* flip the cached hash (disables backdating for the next run) and
     desynchronise the recorded dependency versions (forces a
     recomputation) — the worst a corrupted cache can do here is spend
     work, by construction of [force]'s hit condition *)
  t.cached_hash <- t.cached_hash lxor 0x5A5A5A5A;
  t.dep_versions <- Array.map (fun v -> lnot v) t.dep_versions
