(** Process-wide hit/miss counters for the memoization layer.

    Every cache in the incremental stack reports to a named counter
    ("session.poll", "store.view", "rlens.view", "query.plan",
    memo names, ...), so the soak driver and the bench harness can
    assert the caches are actually exercised rather than silently
    bypassed.  Counters are plain mutable state — cheap, not
    thread-safe, and resettable for tests. *)

val hit : string -> unit
(** Record a cache hit on the named counter. *)

val miss : string -> unit
(** Record a cache miss (a full recomputation) on the named counter. *)

val backdate : string -> unit
(** Record a backdating event: a recomputation whose result was
    structurally identical to the cached value, so downstream was not
    dirtied.  Counted separately from hits and misses (a backdate
    always rides on a miss of the same counter). *)

val counts : string -> int * int
(** [(hits, misses)] of the named counter ([0, 0] if never touched). *)

val backdates : string -> int
val all : unit -> (string * (int * int * int)) list
(** Every touched counter, sorted by name:
    [(name, (hits, misses, backdates))]. *)

val reset : unit -> unit
(** Zero every counter (tests and bench isolation). *)
