(* Named hit/miss/backdate counters; see stats.mli. *)

type counter = {
  mutable hits : int;
  mutable misses : int;
  mutable backdates : int;
}

let table : (string, counter) Hashtbl.t = Hashtbl.create 16

let counter (name : string) : counter =
  match Hashtbl.find_opt table name with
  | Some c -> c
  | None ->
      let c = { hits = 0; misses = 0; backdates = 0 } in
      Hashtbl.replace table name c;
      c

let hit name =
  let c = counter name in
  c.hits <- c.hits + 1

let miss name =
  let c = counter name in
  c.misses <- c.misses + 1

let backdate name =
  let c = counter name in
  c.backdates <- c.backdates + 1

let counts name =
  match Hashtbl.find_opt table name with
  | None -> (0, 0)
  | Some c -> (c.hits, c.misses)

let backdates name =
  match Hashtbl.find_opt table name with None -> 0 | Some c -> c.backdates

let all () =
  Hashtbl.fold
    (fun name c acc -> (name, (c.hits, c.misses, c.backdates)) :: acc)
    table []
  |> List.sort compare

let reset () = Hashtbl.reset table
