(** A memoized computation node: re-runs only when an upstream changed,
    with {e backdating} — a recomputation whose result is structurally
    identical to the cached value does not dirty downstream memos.

    Change detection is by upstream {e version}: a memo records the
    version of every dependency (a {!Signal.dep} or another memo's
    {!dep}) at its last run, and {!force} is a cache hit when all of
    them are unchanged.  After a recomputation, the new value's
    structural hash is compared to the cached one (then verified with
    [equal] when supplied): a match keeps the {e old} value and the
    {e old} version — downstream sees nothing.

    The cached bookkeeping is read through the ["incr.hash"] chaos gate
    ({!Esm_core.Shash.site}): an injected fault on the hit path
    distrusts the cache and recomputes in full under
    {!Esm_core.Chaos.protected}, so a corrupted cache costs a spurious
    recomputation, never a stale value — the same degradation contract
    as {!Esm_relational.Rlens.put_delta}.  {!poison} corrupts the
    bookkeeping on purpose, for tests of exactly that property. *)

type 'a t

val create :
  ?equal:('a -> 'a -> bool) ->
  name:string ->
  hash:('a -> int) ->
  deps:(unit -> int) list ->
  (unit -> 'a) ->
  'a t
(** A memo over [compute], re-run whenever any of [deps] reports a new
    version.  [name] keys the {!Stats} counter.  [compute] must not
    keep private mutable state across runs (it is re-run at
    unpredictable times) and should read its inputs from the
    dependencies' current values. *)

val force : 'a t -> 'a
(** The current value: the cached one when every dependency version is
    unchanged (a {!Stats.hit}), a recomputation otherwise (a
    {!Stats.miss}, plus a {!Stats.backdate} when the result turned out
    identical and downstream is not dirtied). *)

val version : 'a t -> int
(** Bumped only by recomputations that produced a structurally new
    value — the signal downstream memos subscribe to. *)

val dep : 'a t -> unit -> int
(** Register this memo as a dependency of a downstream memo.  The
    thunk {!force}s this memo first (pull-based propagation), so a
    downstream's dependency check observes the version an up-to-date
    run kept or bumped — a backdated recomputation upstream therefore
    reads as "unchanged" downstream. *)

val poison : 'a t -> unit
(** Corrupt the cached hash and dependency-version bookkeeping (test
    hook).  A poisoned memo must degrade to recomputation — observable
    as extra misses, never as a stale {!force} result. *)
