(** The example catalog: the scenarios that the [examples/] directory and
    [bin/esm_demo.ml] run interactively, re-exported as packed, pedigreed
    bx together with representative command/op pipelines — the corpus
    `bxlint` analyses and CI gates on.

    Every entry carries the value samples and equalities needed to run
    the sampling {!Esm_core.Certify} report, so each static verdict can
    be cross-checked: a statically inferred level strictly above the
    sampled observation means the {e analyzer} (or a pedigree claim) is
    wrong, and the audit reports it loudly. *)

open Esm_core
module Rel = Esm_relational

type ('a, 'b) subject =
  | Cmd of string * Law_infer.level * ('a, 'b) Command.t
      (** a command pipeline and the optimizer level it is compiled at *)
  | Prog of string * Law_infer.level * ('a, 'b) Program.op list
      (** a first-order op script and the level its rewriter assumes *)
  | Puts of string * Law_infer.level * ('a, 'b) Lint.put_op list
      (** a put-presentation session script (the language sync sessions
          speak) and the level its rewriter assumes *)

type query_plan = {
  plan_schema : Rel.Schema.t;
  plan_key : string list;
  plan_query : Rel.Query.t;
  plan_requested : Law_infer.level option;
}
(** The relational query plan an entry compiled from, when there is one:
    the subject {!Lint.lint_plan} audits with the abstract domains.
    [plan_requested] is the law level the plan's author asked the
    optimizer for (ESMQL [expect level=…] pragmas) — [None] for plans
    with no surface-level request. *)

type ('a, 'b) scenario = {
  label : string;
  description : string;
  packed : ('a, 'b) Concrete.packed;
  values_a : 'a list;
  values_b : 'b list;
  eq_a : 'a -> 'a -> bool;
  eq_b : 'b -> 'b -> bool;
  show_a : 'a -> string;
  show_b : 'b -> string;
  subjects : ('a, 'b) subject list;
  plan : query_plan option;
}

type entry = Entry : ('a, 'b) scenario -> entry

let entry_label (Entry s) = s.label

(* ------------------------------------------------------------------ *)
(* The instances (mirroring examples/ and bin/esm_demo.ml)             *)
(* ------------------------------------------------------------------ *)

let eq_int_pair (a1, b1) (a2, b2) = Int.equal a1 a2 && Int.equal b1 b2
let int_values = [ -7; -2; 0; 1; 2; 9; 10 ]

(** The parity algebraic bx of [examples/model_sync.ml] and the demo:
    consistency is "same parity", restored undoably by flipping the
    low bit. *)
let parity : (int, int) Esm_algbx.Algbx.t =
  Esm_algbx.Algbx.v ~name:"parity"
    ~consistent:(fun a b -> (a - b) mod 2 = 0)
    ~fwd:(fun a b -> if (a - b) mod 2 = 0 then b else b + 1 - (2 * (b land 1)))
    ~bwd:(fun a b -> if (a - b) mod 2 = 0 then a else a + 1 - (2 * (a land 1)))
    ()

(** Parity restored by incrementing until consistent: correct and
    hippocratic but {e not} undoable. *)
let parity_sticky : (int, int) Esm_algbx.Algbx.t =
  Esm_algbx.Algbx.v ~name:"parity-sticky"
    ~consistent:(fun a b -> (a - b) mod 2 = 0)
    ~fwd:(fun a b -> if (a - b) mod 2 = 0 then b else b + 1)
    ~bwd:(fun a b -> if (a - b) mod 2 = 0 then a else a + 1)
    ()

(** The account/owner lens of [examples/quickstart.ml]. *)
type account = { owner : string; balance : int }

let equal_account a1 a2 =
  String.equal a1.owner a2.owner && Int.equal a1.balance a2.balance

let show_account a = Printf.sprintf "{owner=%s; balance=%d}" a.owner a.balance

let owner_lens : (account, string) Esm_lens.Lens.t =
  Esm_lens.Lens.v ~name:"owner"
    ~get:(fun a -> a.owner)
    ~put:(fun a owner -> { a with owner })
    ()

let shift_symlens : (int, int) Esm_symlens.Symlens.t =
  Esm_symlens.Symlens.of_iso ~name:"shift"
    (fun x -> x + 100)
    (fun x -> x - 100)

let show_bindings kvs =
  "[" ^ String.concat "; " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs) ^ "]"

let eq_bindings k1 k2 =
  List.length k1 = List.length k2
  && List.for_all2
       (fun (a, x) (b, y) -> String.equal a b && String.equal x y)
       k1 k2

(** The bookmarks-document lens of [examples/tree_sync.ml]: hide the
    "meta" subtree, rename "bookmarks" to "links".  Both combinators are
    very well behaved on their domains (Foster et al.), so the vwb claim
    is justified — sources carry "bookmarks" and "meta" edges, views a
    "links" edge and neither of the others. *)
module Tree = Esm_lens.Tree

let bookmarks_lens : (Tree.t, Tree.t) Esm_lens.Lens.t =
  Esm_lens.Lens.(Tree.prune "meta" ~default:Tree.empty // Tree.rename "bookmarks" "links")

let bookmarks_doc entries version =
  Tree.node
    [
      ("bookmarks", Tree.node (List.map (fun (k, v) -> (k, Tree.value v)) entries));
      ("meta", Tree.node [ ("version", Tree.value version) ]);
    ]

let links_view entries =
  Tree.node
    [ ("links", Tree.node (List.map (fun (k, v) -> (k, Tree.value v)) entries)) ]

(** The class<->table correspondence of [examples/mde_sync.ml], packed
    through [Mbx.to_algbx] and Lemma 5.  The restorers are correct and
    hippocratic but {e not} undoable (a deleted partner object cannot be
    resurrected with its private attributes), so [~undoable:false]. *)
module Mbx = Esm_modelbx.Mbx
module Model = Esm_modelbx.Model

let class_table_spec =
  Mbx.v ~name:"class<->table"
    ~left_mm:
      (Esm_modelbx.Metamodel.v
         [
           {
             Esm_modelbx.Metamodel.cls_name = "Class";
             attributes =
               [
                 ("name", Esm_modelbx.Metamodel.Tstr);
                 ("abstract", Esm_modelbx.Metamodel.Tbool);
                 ("doc", Esm_modelbx.Metamodel.Tstr);
               ];
           };
         ])
    ~right_mm:
      (Esm_modelbx.Metamodel.v
         [
           {
             Esm_modelbx.Metamodel.cls_name = "Table";
             attributes =
               [
                 ("name", Esm_modelbx.Metamodel.Tstr);
                 ("persistent", Esm_modelbx.Metamodel.Tbool);
                 ("engine", Esm_modelbx.Metamodel.Tstr);
               ];
           };
         ])
    [
      {
        Mbx.left_class = "Class";
        right_class = "Table";
        key = [ ("name", "name") ];
        synced = [ ("abstract", "persistent") ];
      };
    ]

let class_model names =
  Model.of_objects
    (List.mapi
       (fun i name ->
         Model.obj ~id:(i + 1) ~cls:"Class"
           [
             ("name", Model.Vstr name);
             ("abstract", Model.Vbool (i mod 2 = 0));
             ("doc", Model.Vstr (name ^ " docs"));
           ])
       names)

let table_model names =
  Model.of_objects
    (List.mapi
       (fun i name ->
         Model.obj ~id:(i + 1) ~cls:"Table"
           [
             ("name", Model.Vstr name);
             ("persistent", Model.Vbool (i mod 2 = 1));
             ("engine", Model.Vstr "innodb");
           ])
       names)

(** The compiled engineering-roster pipeline of [examples/view_update.ml]:
    a select+project relational lens over the employees table.  The
    pedigree is the per-combinator {!Rel.Query.pedigree} of the plan: the
    non-key select keeps the undo law, the lossy project drops to set-bx,
    and the meet is set-bx — the same level the old [Of_lens { vwb =
    false }] claim gave, now derived combinator by combinator. *)
let eng_query : Rel.Query.t =
  Rel.Query.parse
    {|employees | where dept = "Engineering" | select id, name, dept|}

let eng_view_lens : (Rel.Table.t, Rel.Table.t) Esm_lens.Lens.t =
  Rel.Query.to_lens ~schema:Rel.Workload.employees_schema ~key:[ "id" ]
    eng_query

let eng_pedigree : Pedigree.t =
  Rel.Query.pedigree ~schema:Rel.Workload.employees_schema ~key:[ "id" ]
    eng_query

(* ---- compiled delta pipelines and sample tables for the relational
   entries ----------------------------------------------------------- *)

let eng_dlens : Rel.Rlens.dlens =
  Rel.Query.to_dlens ~schema:Rel.Workload.employees_schema ~key:[ "id" ]
    eng_query

(** The same compilation through the plan cache a second time — by
    construction a cache {e hit} (the [eng_dlens] compile above warmed
    the cache).  The "relational/memoized-plan" entry audits this
    dlens: a hit returns the cached plan with its full [Pedigree.Plan]
    provenance intact, so the inferred law level must be identical to
    the cold compile's — memoization can never launder law levels
    (cross-checked against {!Rel.Query.to_dlens_uncached} in
    [test/test_incr.ml]). *)
let eng_dlens_memo_hit : Rel.Rlens.dlens =
  Rel.Query.to_dlens ~schema:Rel.Workload.employees_schema ~key:[ "id" ]
    eng_query

(** A key-preserving slice: the predicate reads only the key column, so
    the select lemma yields [`Overwriteable]. *)
let slice_query : Rel.Query.t = Rel.Query.parse {|employees | where id <= 4|}

let slice_dlens : Rel.Rlens.dlens =
  Rel.Query.to_dlens ~schema:Rel.Workload.employees_schema ~key:[ "id" ]
    slice_query

(** Views of [where id <= 4]: any table whose rows all satisfy the
    predicate works (the select put validates them). *)
let id_slice_view tbl = Rel.Algebra.select Rel.Pred.(col "id" <= int 4) tbl

(** A pure column renaming: a schema iso, [`Overwriteable] by the rename
    lemma. *)
let contact_query : Rel.Query.t =
  Rel.Query.parse {|employees | rename email as contact|}

let contact_dlens : Rel.Rlens.dlens =
  Rel.Query.to_dlens ~schema:Rel.Workload.employees_schema ~key:[ "id" ]
    contact_query

let contact_view tbl = Esm_lens.Lens.get contact_dlens.Rel.Rlens.lens tbl

let staff_schema : Rel.Schema.t =
  Rel.Schema.make [ ("id", Rel.Value.Tint); ("name", Rel.Value.Tstr) ]

let comp_schema : Rel.Schema.t =
  Rel.Schema.make [ ("id", Rel.Value.Tint); ("salary", Rel.Value.Tint) ]

let staff names =
  Rel.Table.of_lists staff_schema
    (List.mapi (fun i n -> [ Rel.Value.Int (i + 1); Rel.Value.Str n ]) names)

let comp salaries =
  Rel.Table.of_lists comp_schema
    (List.mapi
       (fun i s -> [ Rel.Value.Int (i + 1); Rel.Value.Int s ])
       salaries)

let staff_comp_view rows =
  Rel.Table.of_lists
    (Rel.Schema.make
       [
         ("id", Rel.Value.Tint);
         ("name", Rel.Value.Tstr);
         ("salary", Rel.Value.Tint);
       ])
    (List.map
       (fun (i, n, s) -> [ Rel.Value.Int i; Rel.Value.Str n; Rel.Value.Int s ])
       rows)

(* ------------------------------------------------------------------ *)
(* The entries                                                         *)
(* ------------------------------------------------------------------ *)

let builtin () : entry list =
  [
    Entry
      {
        label = "demo/pair";
        description =
          "the independent pair state monad of §3.4 (esm-demo `pair`)";
        packed =
          Concrete.packed_pair ~init:(0, 0) ~eq_state:eq_int_pair ();
        values_a = int_values;
        values_b = int_values;
        eq_a = Int.equal;
        eq_b = Int.equal;
        show_a = string_of_int;
        show_b = string_of_int;
        subjects =
          [
            (* the pair bx really commutes, so compiling at `Commuting is
               statically justified — including the rewrite that would
               miscompile parity *)
            Cmd
              ( "independent-updates",
                `Commuting,
                Command.(Seq (Set_a 3, Seq (Set_b 4, Set_a 3))) );
            Prog
              ( "read-after-writes",
                `Commuting,
                Program.[ Set_a 1; Set_b 2; Get_a; Get_b ] );
          ];
        plan = None;
      };
    Entry
      {
        label = "model-sync/parity";
        description =
          "undoable parity algebraic bx (examples/model_sync.ml, Lemma 5)";
        packed =
          Concrete.packed_of_algebraic ~undoable:true ~init:(0, 0)
            ~eq_state:eq_int_pair parity;
        values_a = int_values;
        values_b = int_values;
        eq_a = Int.equal;
        eq_b = Int.equal;
        show_a = string_of_int;
        show_b = string_of_int;
        subjects =
          [
            (* same shape as the known miscompilation, but compiled at
               the level the pedigree supports: the commuting-only
               rewrite is reported as unavailable, not applied *)
            Cmd
              ( "interleaved-repair",
                `Overwriteable,
                Command.(Seq (Set_a 3, Seq (Set_b 4, Set_a 3))) );
            Cmd
              ( "overwrite-burst",
                `Overwriteable,
                Command.(Seq (Set_a 1, Seq (Set_a 2, Modify_a (fun x -> x + 1))))
              );
            Prog
              ( "sync-script",
                `Overwriteable,
                Program.[ Set_a 3; Get_b; Set_b 10; Get_a ] );
          ];
        plan = None;
      };
    Entry
      {
        label = "demo/parity-sticky";
        description =
          "sticky parity: correct + hippocratic but not undoable (Lemma 5)";
        packed =
          Concrete.packed_of_algebraic ~undoable:false ~init:(0, 0)
            ~eq_state:eq_int_pair parity_sticky;
        values_a = int_values;
        values_b = int_values;
        eq_a = Int.equal;
        eq_b = Int.equal;
        show_a = string_of_int;
        show_b = string_of_int;
        subjects =
          [
            Cmd
              ( "plain-sync",
                `Set_bx,
                Command.(Seq (Set_a 4, If_a ((fun x -> x > 0), Set_b 2, Set_b 1)))
              );
          ];
        plan = None;
      };
    Entry
      {
        label = "quickstart/account-owner";
        description =
          "account/owner field lens (examples/quickstart.ml, Lemma 4; vwb)";
        packed =
          Concrete.packed_of_lens ~vwb:true
            ~init:{ owner = "ada"; balance = 100 }
            ~eq_state:equal_account owner_lens;
        values_a =
          [
            { owner = "ada"; balance = 100 };
            { owner = "grace"; balance = 5 };
            { owner = "alan"; balance = 7 };
          ];
        values_b = [ "ada"; "grace"; "barbara" ];
        eq_a = equal_account;
        eq_b = String.equal;
        show_a = show_account;
        show_b = Fun.id;
        subjects =
          [
            Cmd
              ( "rename-twice",
                `Overwriteable,
                Command.(Seq (Set_b "grace", Set_b "barbara")) );
          ];
        plan = None;
      };
    Entry
      {
        label = "config-sync/bindings";
        description =
          "config text <-> parsed bindings (examples/config_sync.ml, Lemma \
           4; wb only — (PutPut) is unclaimed)";
        packed =
          Concrete.packed_of_lens ~vwb:false ~init:"host = localhost\n"
            ~eq_state:String.equal Esm_lens.Config_lens.bindings;
        values_a = [ "host = localhost\n"; "# cfg\nport=5432\n"; "" ];
        values_b =
          [ [ ("host", "db.prod.internal") ]; [ ("port", "5432"); ("debug", "false") ]; [] ];
        eq_a = String.equal;
        eq_b = eq_bindings;
        show_a = String.escaped;
        show_b = show_bindings;
        subjects =
          [
            Prog
              ( "deploy-edit",
                `Set_bx,
                Program.
                  [
                    Get_b;
                    Set_b [ ("host", "db.prod.internal"); ("debug", "false") ];
                    Get_a;
                  ] );
          ];
        plan = None;
      };
    Entry
      {
        label = "demo/shift-symlens";
        description = "symmetric-lens iso b = a + 100 (esm-demo, Lemma 6)";
        packed =
          Concrete.packed_of_symlens ~seed_a:0 ~eq_a:Int.equal
            ~eq_b:Int.equal shift_symlens;
        values_a = int_values;
        values_b = int_values;
        eq_a = Int.equal;
        eq_b = Int.equal;
        show_a = string_of_int;
        show_b = string_of_int;
        subjects =
          [
            Prog
              ("mirror-write", `Set_bx, Program.[ Set_a 1; Get_b; Set_b 7 ]);
          ];
        plan = None;
      };
    Entry
      {
        label = "demo/journalled-parity";
        description =
          "journalled parity bx: lawful but history makes (SS) fail \
           (esm-demo `journal`)";
        packed =
          Concrete.pack_pedigreed
            ~pedigree:
              (Pedigree.Journalled
                 (Pedigree.Of_algebraic { name = "parity"; undoable = true }))
            ~bx:
              (Journal.journalled ~eq_a:Int.equal ~eq_b:Int.equal
                 (Concrete.of_algebraic parity))
            ~init:(Journal.initial (0, 0))
            ~eq_state:
              (Journal.equal_state ~eq_a:Int.equal ~eq_b:Int.equal
                 ~eq_s:eq_int_pair);
        values_a = int_values;
        values_b = int_values;
        eq_a = Int.equal;
        eq_b = Int.equal;
        show_a = string_of_int;
        show_b = string_of_int;
        subjects =
          [
            (* only the always-sound rewrites may be requested here *)
            Prog
              ( "audited-sync",
                `Set_bx,
                Program.[ Set_a 3; Set_a 3; Get_b; Set_b 10 ] );
          ];
        plan = None;
      };
    Entry
      {
        label = "compose/pair-pair";
        description =
          "two independent pair bx composed through the shared middle view";
        packed =
          Compose.compose_packed
            (Concrete.packed_pair ~init:(0, 0) ~eq_state:eq_int_pair ())
            (Concrete.packed_pair ~init:(0, 0) ~eq_state:eq_int_pair ());
        values_a = int_values;
        values_b = int_values;
        eq_a = Int.equal;
        eq_b = Int.equal;
        show_a = string_of_int;
        show_b = string_of_int;
        subjects =
          [
            Cmd
              ( "cross-update",
                `Commuting,
                Command.(Seq (Set_a 5, Seq (Set_b 6, Modify_a (fun x -> x))))
              );
          ];
        plan = None;
      };
    Entry
      {
        label = "compose/parity-shift";
        description =
          "undoable parity composed with the shift symlens: the meet drops \
           to set-bx";
        packed =
          Compose.compose_packed
            (Concrete.packed_of_algebraic ~undoable:true ~init:(0, 0)
               ~eq_state:eq_int_pair parity)
            (Concrete.packed_of_symlens ~seed_a:0 ~eq_a:Int.equal
               ~eq_b:Int.equal shift_symlens);
        values_a = int_values;
        values_b = int_values;
        eq_a = Int.equal;
        eq_b = Int.equal;
        show_a = string_of_int;
        show_b = string_of_int;
        subjects =
          [
            Prog
              ("chained-sync", `Set_bx, Program.[ Set_a 2; Get_b; Set_b 103 ]);
          ];
        plan = None;
      };
    Entry
      {
        label = "tree-sync/bookmarks";
        description =
          "bookmarks document vs meta-free renamed view (examples/tree_sync.ml, Lemma 4; vwb)";
        packed =
          Concrete.packed_of_lens ~vwb:true
            ~init:(bookmarks_doc [ ("ocaml", "https://ocaml.org") ] "3")
            ~eq_state:Tree.equal bookmarks_lens;
        values_a =
          [
            bookmarks_doc [ ("ocaml", "https://ocaml.org") ] "3";
            bookmarks_doc
              [ ("bx", "http://bx-community.wikidot.com"); ("edbt", "https://edbt.org") ]
              "4";
            bookmarks_doc [] "1";
          ];
        values_b =
          [
            links_view [ ("ocaml", "https://ocaml.org") ];
            links_view [ ("icfp", "https://icfpconference.org") ];
            links_view [];
          ];
        eq_a = Tree.equal;
        eq_b = Tree.equal;
        show_a = Tree.to_string;
        show_b = Tree.to_string;
        subjects =
          [
            (* vwb justifies (SS): republishing the view twice keeps only
               the last edit *)
            Cmd
              ( "republish-twice",
                `Overwriteable,
                Command.(
                  Seq
                    ( Set_b (links_view [ ("ocaml", "https://ocaml.org") ]),
                      Set_b (links_view [ ("edbt", "https://edbt.org") ]) ))
              );
          ];
        plan = None;
      };
    Entry
      {
        label = "mde-sync/class-table";
        description =
          "QVT-R-lite class<->table correspondence (examples/mde_sync.ml, \
           Lemma 5; restorers not undoable)";
        packed =
          (let classes0 = class_model [ "Order"; "Item" ] in
           Concrete.packed_of_algebraic ~undoable:false
             ~init:(classes0, Mbx.fwd class_table_spec classes0 Model.empty)
             ~eq_state:(fun (a1, b1) (a2, b2) ->
               Model.equal a1 a2 && Model.equal b1 b2)
             (Mbx.to_algbx class_table_spec));
        values_a =
          [
            class_model [ "Order"; "Item" ];
            class_model [ "Order"; "Invoice"; "Customer" ];
            class_model [];
          ];
        values_b =
          [
            table_model [ "Order"; "Item" ];
            table_model [ "Ledger" ];
            table_model [];
          ];
        eq_a = Model.equal;
        eq_b = Model.equal;
        show_a = Model.to_string;
        show_b = Model.to_string;
        subjects =
          [
            Prog
              ( "refactor-then-migrate",
                `Set_bx,
                Program.
                  [
                    Set_a (class_model [ "Order"; "Invoice"; "Customer" ]);
                    Get_b;
                    Set_b (table_model [ "Order"; "Item" ]);
                    Get_a;
                  ] );
          ];
        plan = None;
      };
    Entry
      {
        label = "relational/engineering-roster";
        description =
          "compiled where|select pipeline over employees \
           (examples/view_update.ml; per-combinator plan pedigree, meet \
           is set-bx)";
        packed =
          Concrete.with_pedigree eng_pedigree
            (Concrete.packed_of_lens ~vwb:false
               ~init:(Rel.Workload.employees ~seed:3 ~size:8)
               ~eq_state:Rel.Table.equal eng_view_lens);
        values_a =
          [
            Rel.Workload.employees ~seed:1 ~size:6;
            Rel.Workload.employees ~seed:7 ~size:10;
            Rel.Workload.employees ~seed:2 ~size:0;
          ];
        values_b =
          [
            Rel.Workload.engineering_view ~seed:4 ~size:12;
            Rel.Workload.engineering_view ~seed:9 ~size:20;
            Rel.Workload.engineering_view ~seed:1 ~size:0;
          ];
        eq_a = Rel.Table.equal;
        eq_b = Rel.Table.equal;
        show_a = Rel.Table.to_string;
        show_b = Rel.Table.to_string;
        subjects =
          [
            (* wb only: request nothing beyond the always-sound rewrites *)
            Cmd
              ( "roster-refresh",
                `Set_bx,
                Command.(
                  Seq
                    ( Set_b (Rel.Workload.engineering_view ~seed:4 ~size:12),
                      Seq
                        ( Set_a (Rel.Workload.employees ~seed:7 ~size:10),
                          Set_b (Rel.Workload.engineering_view ~seed:9 ~size:20)
                        ) )) );
          ];
        plan =
          Some
            {
              plan_schema = Rel.Workload.employees_schema;
              plan_key = [ "id" ];
              plan_query = eng_query;
              plan_requested = None;
            };
      };
    Entry
      {
        label = "relational/engineering-roster-atomic";
        description =
          "the same where|select pipeline hardened with Atomic: failing \
           sets roll back to the snapshot instead of raising";
        packed =
          Atomic.harden_packed
            (Concrete.packed_of_lens ~vwb:false
               ~init:(Rel.Workload.employees ~seed:3 ~size:8)
               ~eq_state:Rel.Table.equal eng_view_lens);
        values_a =
          [
            Rel.Workload.employees ~seed:1 ~size:6;
            Rel.Workload.employees ~seed:7 ~size:10;
            Rel.Workload.employees ~seed:2 ~size:0;
          ];
        values_b =
          [
            Rel.Workload.engineering_view ~seed:4 ~size:12;
            Rel.Workload.engineering_view ~seed:9 ~size:20;
            Rel.Workload.engineering_view ~seed:1 ~size:0;
          ];
        eq_a = Rel.Table.equal;
        eq_b = Rel.Table.equal;
        show_a = Rel.Table.to_string;
        show_b = Rel.Table.to_string;
        subjects =
          [
            (* same pipeline as roster-refresh; the atomic wrapper keeps
               the level and silences unprotected-fallible *)
            Cmd
              ( "roster-refresh-atomic",
                `Set_bx,
                Command.(
                  Seq
                    ( Set_b (Rel.Workload.engineering_view ~seed:4 ~size:12),
                      Seq
                        ( Set_a (Rel.Workload.employees ~seed:7 ~size:10),
                          Set_b (Rel.Workload.engineering_view ~seed:9 ~size:20)
                        ) )) );
          ];
        plan = None;
      };
    Entry
      {
        label = "sync/replicated-roster";
        description =
          "the where|select roster served by an Esm_sync store: commits \
           are transactional behind the oplog, so replication keeps the \
           lens level and silences unprotected-fallible";
        packed =
          Concrete.with_pedigree
            (Pedigree.Replicated
               (Pedigree.Of_lens { name = "employees|where|select"; vwb = false }))
            (Concrete.packed_of_lens ~vwb:false
               ~init:(Rel.Workload.employees ~seed:3 ~size:8)
               ~eq_state:Rel.Table.equal eng_view_lens);
        values_a =
          [
            Rel.Workload.employees ~seed:1 ~size:6;
            Rel.Workload.employees ~seed:7 ~size:10;
            Rel.Workload.employees ~seed:2 ~size:0;
          ];
        values_b =
          [
            Rel.Workload.engineering_view ~seed:4 ~size:12;
            Rel.Workload.engineering_view ~seed:9 ~size:20;
            Rel.Workload.engineering_view ~seed:1 ~size:0;
          ];
        eq_a = Rel.Table.equal;
        eq_b = Rel.Table.equal;
        show_a = Rel.Table.to_string;
        show_b = Rel.Table.to_string;
        subjects =
          [
            (* a B-side session: push the view, re-read the propagated
               source (foldable — the put returned it), push again *)
            Puts
              ( "roster-session",
                `Set_bx,
                Lint.
                  [
                    Put_ba (Rel.Workload.engineering_view ~seed:4 ~size:12);
                    Pget_a;
                    Put_ba (Rel.Workload.engineering_view ~seed:9 ~size:20);
                  ] );
          ];
        plan = None;
      };
    Entry
      {
        label = "sync/replicated-pair";
        description =
          "the independent pair bx behind a replicated store: sessions on \
           opposite views genuinely commute, so the put rewriter may run \
           at the top level";
        packed =
          Concrete.with_pedigree
            (Pedigree.Replicated Pedigree.Pair)
            (Concrete.packed_pair ~init:(0, 0) ~eq_state:eq_int_pair ());
        values_a = int_values;
        values_b = int_values;
        eq_a = Int.equal;
        eq_b = Int.equal;
        show_a = string_of_int;
        show_b = string_of_int;
        subjects =
          [
            (* two sessions' interleaved puts: the same-direction collapse
               across the opposite-direction put needs commutation, which
               the pair pedigree supplies *)
            Puts
              ( "interleaved-sessions",
                `Commuting,
                Lint.[ Put_ab 1; Put_ba 2; Put_ab 1; Pget_b ] );
          ];
        plan = None;
      };
    Entry
      {
        label = "relational/keyed-slice";
        description =
          "delta-compiled where-on-key slice: the predicate reads only \
           the key column, so the select lemma gives (PutPut) — \
           overwriteable";
        packed =
          Rel.Rlens.packed_of_dlens
            ~init:(Rel.Workload.employees ~seed:3 ~size:8)
            slice_dlens;
        values_a =
          [
            Rel.Workload.employees ~seed:1 ~size:6;
            Rel.Workload.employees ~seed:7 ~size:10;
            Rel.Workload.employees ~seed:2 ~size:0;
          ];
        values_b =
          [
            id_slice_view (Rel.Workload.employees ~seed:4 ~size:12);
            id_slice_view (Rel.Workload.employees ~seed:9 ~size:7);
            id_slice_view (Rel.Workload.employees ~seed:1 ~size:0);
          ];
        eq_a = Rel.Table.equal;
        eq_b = Rel.Table.equal;
        show_a = Rel.Table.to_string;
        show_b = Rel.Table.to_string;
        subjects =
          [
            (* key-preserving select justifies (SS): the republished
               slice collapses soundly *)
            Cmd
              ( "slice-republish",
                `Overwriteable,
                Command.(
                  Seq
                    ( Set_b (id_slice_view (Rel.Workload.employees ~seed:4 ~size:12)),
                      Set_b (id_slice_view (Rel.Workload.employees ~seed:9 ~size:7))
                    )) );
          ];
        plan =
          Some
            {
              plan_schema = Rel.Workload.employees_schema;
              plan_key = [ "id" ];
              plan_query = slice_query;
              plan_requested = None;
            };
      };
    Entry
      {
        label = "relational/eng-roster-delta";
        description =
          "the engineering roster compiled to a delta pipeline: view \
           edits propagate through put_delta, and Delta_of keeps the \
           plan's set-bx meet";
        packed =
          Rel.Rlens.packed_of_dlens
            ~init:(Rel.Workload.employees ~seed:3 ~size:8)
            eng_dlens;
        values_a =
          [
            Rel.Workload.employees ~seed:1 ~size:6;
            Rel.Workload.employees ~seed:7 ~size:10;
            Rel.Workload.employees ~seed:2 ~size:0;
          ];
        values_b =
          [
            Rel.Workload.engineering_view ~seed:4 ~size:12;
            Rel.Workload.engineering_view ~seed:9 ~size:20;
            Rel.Workload.engineering_view ~seed:1 ~size:0;
          ];
        eq_a = Rel.Table.equal;
        eq_b = Rel.Table.equal;
        show_a = Rel.Table.to_string;
        show_b = Rel.Table.to_string;
        subjects =
          [
            Prog
              ( "delta-sync",
                `Set_bx,
                Program.
                  [
                    Set_b (Rel.Workload.engineering_view ~seed:4 ~size:12);
                    Get_a;
                  ] );
          ];
        plan =
          Some
            {
              plan_schema = Rel.Workload.employees_schema;
              plan_key = [ "id" ];
              plan_query = eng_query;
              plan_requested = None;
            };
      };
    Entry
      {
        label = "relational/contact-rename";
        description =
          "delta-compiled column rename: a schema iso, overwriteable by \
           the rename lemma (never commuting)";
        packed =
          Rel.Rlens.packed_of_dlens
            ~init:(Rel.Workload.employees ~seed:3 ~size:8)
            contact_dlens;
        values_a =
          [
            Rel.Workload.employees ~seed:1 ~size:6;
            Rel.Workload.employees ~seed:7 ~size:10;
            Rel.Workload.employees ~seed:2 ~size:0;
          ];
        values_b =
          [
            contact_view (Rel.Workload.employees ~seed:4 ~size:5);
            contact_view (Rel.Workload.employees ~seed:9 ~size:9);
            contact_view (Rel.Workload.employees ~seed:1 ~size:0);
          ];
        eq_a = Rel.Table.equal;
        eq_b = Rel.Table.equal;
        show_a = Rel.Table.to_string;
        show_b = Rel.Table.to_string;
        subjects =
          [
            (* publish, overwrite, publish the original again: the
               trailing pair cancels under the undo law alone *)
            Cmd
              ( "edit-undo",
                `Undoable,
                Command.(
                  Seq
                    ( Set_b (contact_view (Rel.Workload.employees ~seed:4 ~size:5)),
                      Seq
                        ( Set_b (contact_view (Rel.Workload.employees ~seed:9 ~size:9)),
                          Set_b (contact_view (Rel.Workload.employees ~seed:4 ~size:5))
                        ) )) );
          ];
        plan =
          Some
            {
              plan_schema = Rel.Workload.employees_schema;
              plan_key = [ "id" ];
              plan_query = contact_query;
              plan_requested = None;
            };
      };
    Entry
      {
        label = "relational/staff-comp-join";
        description =
          "join lens over staff and compensation with the FD id -> \
           salary proven on the right: the join lemma restores the undo \
           law.  Samples keep a fixed key universe (ids 1-3, no dangling \
           rows) — the FD conditions the lemma assumes";
        packed =
          Concrete.with_pedigree
            (Rel.Rlens.join_pedigree
               ~right_fds:
                 [ { Rel.Fd.determinant = [ "id" ]; dependent = [ "salary" ] } ]
               ~left:staff_schema ~right:comp_schema ())
            (Concrete.packed_of_lens ~vwb:false
               ~init:(staff [ "ada"; "grace"; "alan" ], comp [ 100; 200; 300 ])
               ~eq_state:(fun (l1, r1) (l2, r2) ->
                 Rel.Table.equal l1 l2 && Rel.Table.equal r1 r2)
               (Rel.Rlens.join ~left:staff_schema ~right:comp_schema));
        values_a =
          [
            (staff [ "ada"; "grace"; "alan" ], comp [ 100; 200; 300 ]);
            (staff [ "barbara"; "carol"; "dan" ], comp [ 150; 250; 350 ]);
          ];
        values_b =
          [
            staff_comp_view
              [ (1, "ada", 120); (2, "grace", 220); (3, "alan", 320) ];
            staff_comp_view
              [ (1, "barbara", 100); (2, "carol", 200); (3, "dan", 300) ];
          ];
        eq_a =
          (fun (l1, r1) (l2, r2) ->
            Rel.Table.equal l1 l2 && Rel.Table.equal r1 r2);
        eq_b = Rel.Table.equal;
        show_a =
          (fun (l, r) ->
            Printf.sprintf "(%s, %s)" (Rel.Table.to_string l)
              (Rel.Table.to_string r));
        show_b = Rel.Table.to_string;
        subjects =
          [
            (* rebalance then revert: the trailing pair cancels at the
               undo level the FD-proven join supplies; the middle (SS)
               collapse stays out of reach *)
            Cmd
              ( "rebalance-undo",
                `Undoable,
                Command.(
                  Seq
                    ( Set_b
                        (staff_comp_view
                           [ (1, "ada", 120); (2, "grace", 220); (3, "alan", 320) ]),
                      Seq
                        ( Set_b
                            (staff_comp_view
                               [
                                 (1, "barbara", 100);
                                 (2, "carol", 200);
                                 (3, "dan", 300);
                               ]),
                          Set_b
                            (staff_comp_view
                               [ (1, "ada", 120); (2, "grace", 220); (3, "alan", 320) ])
                        ) )) );
          ];
        plan =
          Some
            {
              plan_schema = staff_schema;
              plan_key = [ "id" ];
              plan_query = Rel.Query.Join (Rel.Query.Base "staff", Rel.Query.Base "comp");
              plan_requested = None;
            };
      };
    Entry
      {
        label = "relational/memoized-plan";
        description =
          "the engineering roster compiled through the plan cache (a \
           memo hit): the cached dlens carries the same Plan pedigree \
           as its cold-compile twin, so a cache hit reports the same \
           inferred law level — memoization never launders law levels";
        packed =
          Rel.Rlens.packed_of_dlens
            ~init:(Rel.Workload.employees ~seed:3 ~size:8)
            eng_dlens_memo_hit;
        values_a =
          [
            Rel.Workload.employees ~seed:1 ~size:6;
            Rel.Workload.employees ~seed:7 ~size:10;
            Rel.Workload.employees ~seed:2 ~size:0;
          ];
        values_b =
          [
            Rel.Workload.engineering_view ~seed:4 ~size:12;
            Rel.Workload.engineering_view ~seed:9 ~size:20;
            Rel.Workload.engineering_view ~seed:1 ~size:0;
          ];
        eq_a = Rel.Table.equal;
        eq_b = Rel.Table.equal;
        show_a = Rel.Table.to_string;
        show_b = Rel.Table.to_string;
        subjects =
          [
            Prog
              ( "memoized-delta-sync",
                `Set_bx,
                Program.
                  [
                    Set_b (Rel.Workload.engineering_view ~seed:4 ~size:12);
                    Get_a;
                  ] );
          ];
        plan =
          Some
            {
              plan_schema = Rel.Workload.employees_schema;
              plan_key = [ "id" ];
              plan_query = eng_query;
              plan_requested = None;
            };
      };
  ]

(* Upper layers (the ESMQL front-end lives above esm_analysis) register
   their query-derived scenarios here so the same audit/gate machinery
   covers them.  Registration is by label: re-registering a label
   replaces the previous entry, so callers can be idempotent without
   coordinating. *)
let registered : entry list ref = ref []

let register (e : entry) =
  registered :=
    e :: List.filter (fun e' -> entry_label e' <> entry_label e) !registered

let all () : entry list = builtin () @ List.rev !registered

(* ------------------------------------------------------------------ *)
(* Auditing                                                            *)
(* ------------------------------------------------------------------ *)

type pipeline_result = {
  subject : string;
  requested : Law_infer.level;
  diagnostics : Lint.diagnostic list;
}

type audit = {
  label : string;
  description : string;
  pedigree : Pedigree.t;
  inferred : Law_infer.level;
  rationale : string;
  observed : Law_infer.level option;
      (** what the sampling {!Certify} report supports *)
  cross_check_ok : bool;
      (** static ≤ observed; [false] means the analyzer (or a pedigree
          claim) is wrong — surfaced loudly by `bxlint` *)
  certify : Certify.report;
  pipelines : pipeline_result list;
  plan_query : string option;
      (** surface syntax of the compiled plan, when the scenario has one *)
  plan_requested : Law_infer.level option;
      (** the law level the plan's author asked for, when the plan came
          from a surface request ([expect level=…]) *)
  plan_inferred : Law_infer.level option;
      (** {!Law_infer.level} of the plan's own {!Rel.Query.pedigree} —
          what the compile-time gate compares [plan_requested] against *)
  plan_diagnostics : Lint.diagnostic list;
      (** {!Lint.lint_plan} over that plan; empty when [plan_query] is
          [None] *)
}

let audit_entry (Entry s : entry) : audit =
  let pedigree = Concrete.pedigree s.packed in
  let inferred = Law_infer.level pedigree in
  let certify =
    Certify.certify ~values_a:s.values_a ~values_b:s.values_b ~eq_a:s.eq_a
      ~eq_b:s.eq_b ~show_a:s.show_a ~show_b:s.show_b s.packed
  in
  let observed = Certify.observed_level certify in
  let cross_check_ok =
    Law_infer.consistent_with_observation ~static:inferred ~observed
  in
  let lint_subject subj =
    match subj with
    | Cmd (subject, requested, cmd) ->
        let global =
          Option.to_list (Lint.check_level ~requested ~inferred ~subject)
          @ Option.to_list
              (Lint.check_atomicity ~pedigree
                 ~has_sets:(Lint.command_has_sets cmd) ~subject)
        in
        {
          subject;
          requested;
          diagnostics =
            global
            @ Lint.lint_command ~requested ~inferred ~eq_a:s.eq_a
                ~eq_b:s.eq_b cmd;
        }
    | Prog (subject, requested, ops) ->
        let global =
          Option.to_list (Lint.check_level ~requested ~inferred ~subject)
          @ Option.to_list
              (Lint.check_atomicity ~pedigree
                 ~has_sets:(Lint.program_has_sets ops) ~subject)
        in
        {
          subject;
          requested;
          diagnostics =
            global
            @ Lint.lint_program ~requested ~inferred ~eq_a:s.eq_a
                ~eq_b:s.eq_b ops;
        }
    | Puts (subject, requested, ops) ->
        let global =
          Option.to_list (Lint.check_level ~requested ~inferred ~subject)
          @ Option.to_list
              (Lint.check_atomicity ~pedigree
                 ~has_sets:(Lint.puts_have_sets ops) ~subject)
        in
        {
          subject;
          requested;
          diagnostics =
            global
            @ Lint.lint_puts ~requested ~inferred ~eq_a:s.eq_a ~eq_b:s.eq_b
                ops;
        }
  in
  {
    label = s.label;
    description = s.description;
    pedigree;
    inferred;
    rationale = Law_infer.explain pedigree;
    observed;
    cross_check_ok;
    certify;
    pipelines = List.map lint_subject s.subjects;
    plan_query =
      Option.map
        (fun (p : query_plan) -> Rel.Query.to_string p.plan_query)
        s.plan;
    plan_requested = Option.bind s.plan (fun p -> p.plan_requested);
    plan_inferred =
      Option.map
        (fun (p : query_plan) ->
          Law_infer.level
            (Rel.Query.pedigree ~schema:p.plan_schema ~key:p.plan_key
               p.plan_query))
        s.plan;
    plan_diagnostics =
      (match s.plan with
      | None -> []
      | Some p ->
          Lint.lint_plan ~schema:p.plan_schema ~key:p.plan_key p.plan_query);
  }

let audit_all () : audit list = List.map audit_entry (all ())

let audit_has_errors (a : audit) : bool =
  (not a.cross_check_ok)
  || List.exists (fun p -> Lint.has_errors p.diagnostics) a.pipelines
  || Lint.has_errors a.plan_diagnostics

(* ------------------------------------------------------------------ *)
(* The known miscompilation (the dynamic counterexample of
   test/test_command.ml, rejected statically)                          *)
(* ------------------------------------------------------------------ *)

(** The exact program [test/test_command.ml] shows
    [optimize_unsafe_commuting] miscompiling on the entangled parity bx:
    [set_a 3; set_b 4; set_a 3].  Linting it at the [`Commuting] level
    against the parity pedigree must produce an error — the static
    rejection of the dynamic counterexample. *)
let known_miscompilation () : Lint.diagnostic list =
  let pedigree = Pedigree.Of_algebraic { name = "parity"; undoable = true } in
  let inferred = Law_infer.level pedigree in
  let requested = `Commuting in
  let cmd = Command.(Seq (Set_a 3, Seq (Set_b 4, Set_a 3))) in
  (Lint.check_level ~requested ~inferred ~subject:"parity/commuting"
  |> Option.to_list)
  @ Lint.lint_command ~requested ~inferred ~eq_a:Int.equal ~eq_b:Int.equal cmd

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_audit fmt (a : audit) =
  Format.fprintf fmt "%s — %s@." a.label a.description;
  Format.fprintf fmt "  pedigree:  %s@." (Pedigree.to_string a.pedigree);
  Format.fprintf fmt "  inferred:  %s@." (Law_infer.to_string a.inferred);
  Format.fprintf fmt "  rationale: %s@." a.rationale;
  Format.fprintf fmt "  sampled:   %s%s@."
    (match a.observed with
    | Some l -> Law_infer.to_string l
    | None -> "UNLAWFUL (required set-bx law violated)")
    (if a.cross_check_ok then "" else "  ** STATIC CLAIM REFUTED **");
  List.iter
    (fun p ->
      Format.fprintf fmt "  pipeline %s (optimize at %s):@." p.subject
        (Law_infer.to_string p.requested);
      if p.diagnostics = [] then Format.fprintf fmt "    (clean)@."
      else
        List.iter
          (fun d -> Format.fprintf fmt "    %a@." Lint.pp_diagnostic d)
          p.diagnostics)
    a.pipelines;
  match a.plan_query with
  | None -> ()
  | Some q ->
      Format.fprintf fmt "  plan %s:@." q;
      if a.plan_diagnostics = [] then Format.fprintf fmt "    (clean)@."
      else
        List.iter
          (fun d -> Format.fprintf fmt "    %a@." Lint.pp_diagnostic d)
          a.plan_diagnostics

let audit_to_json (a : audit) : string =
  let pipelines =
    List.map
      (fun p ->
        Printf.sprintf {|{"subject":"%s","requested":"%s","diagnostics":%s}|}
          (Lint.json_escape p.subject)
          (Law_infer.to_string p.requested)
          (Lint.diagnostics_to_json p.diagnostics))
      a.pipelines
  in
  let opt_level = function
    | Some l -> Printf.sprintf "\"%s\"" (Law_infer.to_string l)
    | None -> "null"
  in
  Printf.sprintf
    {|{"label":"%s","pedigree":"%s","inferred":"%s","sampled":%s,"cross_check_ok":%b,"pipelines":[%s],"plan":%s,"plan_requested":%s,"plan_inferred":%s,"plan_diagnostics":%s}|}
    (Lint.json_escape a.label)
    (Lint.json_escape (Pedigree.to_string a.pedigree))
    (Law_infer.to_string a.inferred)
    (opt_level a.observed) a.cross_check_ok
    (String.concat "," pipelines)
    (match a.plan_query with
    | Some q -> Printf.sprintf "\"%s\"" (Lint.json_escape q)
    | None -> "null")
    (opt_level a.plan_requested)
    (opt_level a.plan_inferred)
    (Lint.diagnostics_to_json a.plan_diagnostics)

let audits_to_json (audits : audit list) : string =
  "[" ^ String.concat "," (List.map audit_to_json audits) ^ "]"
