(** The example catalog: the scenarios that the [examples/] directory and
    [bin/esm_demo.ml] run interactively, re-exported as packed, pedigreed
    bx together with representative command/op pipelines — the corpus
    `bxlint` analyses and CI gates on.

    Every entry carries the value samples and equalities needed to run
    the sampling {!Esm_core.Certify} report, so each static verdict can
    be cross-checked: a statically inferred level strictly above the
    sampled observation means the {e analyzer} (or a pedigree claim) is
    wrong, and the audit reports it loudly. *)

open Esm_core

type ('a, 'b) subject =
  | Cmd of string * Law_infer.level * ('a, 'b) Command.t
      (** a command pipeline and the optimizer level it is compiled at *)
  | Prog of string * Law_infer.level * ('a, 'b) Program.op list
      (** a first-order op script and the level its rewriter assumes *)

type ('a, 'b) scenario = {
  label : string;
  description : string;
  packed : ('a, 'b) Concrete.packed;
  values_a : 'a list;
  values_b : 'b list;
  eq_a : 'a -> 'a -> bool;
  eq_b : 'b -> 'b -> bool;
  show_a : 'a -> string;
  show_b : 'b -> string;
  subjects : ('a, 'b) subject list;
}

type entry = Entry : ('a, 'b) scenario -> entry

let entry_label (Entry s) = s.label

(* ------------------------------------------------------------------ *)
(* The instances (mirroring examples/ and bin/esm_demo.ml)             *)
(* ------------------------------------------------------------------ *)

let eq_int_pair (a1, b1) (a2, b2) = Int.equal a1 a2 && Int.equal b1 b2
let int_values = [ -7; -2; 0; 1; 2; 9; 10 ]

(** The parity algebraic bx of [examples/model_sync.ml] and the demo:
    consistency is "same parity", restored undoably by flipping the
    low bit. *)
let parity : (int, int) Esm_algbx.Algbx.t =
  Esm_algbx.Algbx.v ~name:"parity"
    ~consistent:(fun a b -> (a - b) mod 2 = 0)
    ~fwd:(fun a b -> if (a - b) mod 2 = 0 then b else b + 1 - (2 * (b land 1)))
    ~bwd:(fun a b -> if (a - b) mod 2 = 0 then a else a + 1 - (2 * (a land 1)))
    ()

(** Parity restored by incrementing until consistent: correct and
    hippocratic but {e not} undoable. *)
let parity_sticky : (int, int) Esm_algbx.Algbx.t =
  Esm_algbx.Algbx.v ~name:"parity-sticky"
    ~consistent:(fun a b -> (a - b) mod 2 = 0)
    ~fwd:(fun a b -> if (a - b) mod 2 = 0 then b else b + 1)
    ~bwd:(fun a b -> if (a - b) mod 2 = 0 then a else a + 1)
    ()

(** The account/owner lens of [examples/quickstart.ml]. *)
type account = { owner : string; balance : int }

let equal_account a1 a2 =
  String.equal a1.owner a2.owner && Int.equal a1.balance a2.balance

let show_account a = Printf.sprintf "{owner=%s; balance=%d}" a.owner a.balance

let owner_lens : (account, string) Esm_lens.Lens.t =
  Esm_lens.Lens.v ~name:"owner"
    ~get:(fun a -> a.owner)
    ~put:(fun a owner -> { a with owner })
    ()

let shift_symlens : (int, int) Esm_symlens.Symlens.t =
  Esm_symlens.Symlens.of_iso ~name:"shift"
    (fun x -> x + 100)
    (fun x -> x - 100)

let show_bindings kvs =
  "[" ^ String.concat "; " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs) ^ "]"

let eq_bindings k1 k2 =
  List.length k1 = List.length k2
  && List.for_all2
       (fun (a, x) (b, y) -> String.equal a b && String.equal x y)
       k1 k2

(* ------------------------------------------------------------------ *)
(* The entries                                                         *)
(* ------------------------------------------------------------------ *)

let all () : entry list =
  [
    Entry
      {
        label = "demo/pair";
        description =
          "the independent pair state monad of §3.4 (esm-demo `pair`)";
        packed =
          Concrete.packed_pair ~init:(0, 0) ~eq_state:eq_int_pair ();
        values_a = int_values;
        values_b = int_values;
        eq_a = Int.equal;
        eq_b = Int.equal;
        show_a = string_of_int;
        show_b = string_of_int;
        subjects =
          [
            (* the pair bx really commutes, so compiling at `Commuting is
               statically justified — including the rewrite that would
               miscompile parity *)
            Cmd
              ( "independent-updates",
                `Commuting,
                Command.(Seq (Set_a 3, Seq (Set_b 4, Set_a 3))) );
            Prog
              ( "read-after-writes",
                `Commuting,
                Program.[ Set_a 1; Set_b 2; Get_a; Get_b ] );
          ];
      };
    Entry
      {
        label = "model-sync/parity";
        description =
          "undoable parity algebraic bx (examples/model_sync.ml, Lemma 5)";
        packed =
          Concrete.packed_of_algebraic ~undoable:true ~init:(0, 0)
            ~eq_state:eq_int_pair parity;
        values_a = int_values;
        values_b = int_values;
        eq_a = Int.equal;
        eq_b = Int.equal;
        show_a = string_of_int;
        show_b = string_of_int;
        subjects =
          [
            (* same shape as the known miscompilation, but compiled at
               the level the pedigree supports: the commuting-only
               rewrite is reported as unavailable, not applied *)
            Cmd
              ( "interleaved-repair",
                `Overwriteable,
                Command.(Seq (Set_a 3, Seq (Set_b 4, Set_a 3))) );
            Cmd
              ( "overwrite-burst",
                `Overwriteable,
                Command.(Seq (Set_a 1, Seq (Set_a 2, Modify_a (fun x -> x + 1))))
              );
            Prog
              ( "sync-script",
                `Overwriteable,
                Program.[ Set_a 3; Get_b; Set_b 10; Get_a ] );
          ];
      };
    Entry
      {
        label = "demo/parity-sticky";
        description =
          "sticky parity: correct + hippocratic but not undoable (Lemma 5)";
        packed =
          Concrete.packed_of_algebraic ~undoable:false ~init:(0, 0)
            ~eq_state:eq_int_pair parity_sticky;
        values_a = int_values;
        values_b = int_values;
        eq_a = Int.equal;
        eq_b = Int.equal;
        show_a = string_of_int;
        show_b = string_of_int;
        subjects =
          [
            Cmd
              ( "plain-sync",
                `Set_bx,
                Command.(Seq (Set_a 4, If_a ((fun x -> x > 0), Set_b 2, Set_b 1)))
              );
          ];
      };
    Entry
      {
        label = "quickstart/account-owner";
        description =
          "account/owner field lens (examples/quickstart.ml, Lemma 4; vwb)";
        packed =
          Concrete.packed_of_lens ~vwb:true
            ~init:{ owner = "ada"; balance = 100 }
            ~eq_state:equal_account owner_lens;
        values_a =
          [
            { owner = "ada"; balance = 100 };
            { owner = "grace"; balance = 5 };
            { owner = "alan"; balance = 7 };
          ];
        values_b = [ "ada"; "grace"; "barbara" ];
        eq_a = equal_account;
        eq_b = String.equal;
        show_a = show_account;
        show_b = Fun.id;
        subjects =
          [
            Cmd
              ( "rename-twice",
                `Overwriteable,
                Command.(Seq (Set_b "grace", Set_b "barbara")) );
          ];
      };
    Entry
      {
        label = "config-sync/bindings";
        description =
          "config text <-> parsed bindings (examples/config_sync.ml, Lemma \
           4; wb only — (PutPut) is unclaimed)";
        packed =
          Concrete.packed_of_lens ~vwb:false ~init:"host = localhost\n"
            ~eq_state:String.equal Esm_lens.Config_lens.bindings;
        values_a = [ "host = localhost\n"; "# cfg\nport=5432\n"; "" ];
        values_b =
          [ [ ("host", "db.prod.internal") ]; [ ("port", "5432"); ("debug", "false") ]; [] ];
        eq_a = String.equal;
        eq_b = eq_bindings;
        show_a = String.escaped;
        show_b = show_bindings;
        subjects =
          [
            Prog
              ( "deploy-edit",
                `Set_bx,
                Program.
                  [
                    Get_b;
                    Set_b [ ("host", "db.prod.internal"); ("debug", "false") ];
                    Get_a;
                  ] );
          ];
      };
    Entry
      {
        label = "demo/shift-symlens";
        description = "symmetric-lens iso b = a + 100 (esm-demo, Lemma 6)";
        packed =
          Concrete.packed_of_symlens ~seed_a:0 ~eq_a:Int.equal
            ~eq_b:Int.equal shift_symlens;
        values_a = int_values;
        values_b = int_values;
        eq_a = Int.equal;
        eq_b = Int.equal;
        show_a = string_of_int;
        show_b = string_of_int;
        subjects =
          [
            Prog
              ("mirror-write", `Set_bx, Program.[ Set_a 1; Get_b; Set_b 7 ]);
          ];
      };
    Entry
      {
        label = "demo/journalled-parity";
        description =
          "journalled parity bx: lawful but history makes (SS) fail \
           (esm-demo `journal`)";
        packed =
          Concrete.pack_pedigreed
            ~pedigree:
              (Pedigree.Journalled
                 (Pedigree.Of_algebraic { name = "parity"; undoable = true }))
            ~bx:
              (Journal.journalled ~eq_a:Int.equal ~eq_b:Int.equal
                 (Concrete.of_algebraic parity))
            ~init:(Journal.initial (0, 0))
            ~eq_state:
              (Journal.equal_state ~eq_a:Int.equal ~eq_b:Int.equal
                 ~eq_s:eq_int_pair);
        values_a = int_values;
        values_b = int_values;
        eq_a = Int.equal;
        eq_b = Int.equal;
        show_a = string_of_int;
        show_b = string_of_int;
        subjects =
          [
            (* only the always-sound rewrites may be requested here *)
            Prog
              ( "audited-sync",
                `Set_bx,
                Program.[ Set_a 3; Set_a 3; Get_b; Set_b 10 ] );
          ];
      };
    Entry
      {
        label = "compose/pair-pair";
        description =
          "two independent pair bx composed through the shared middle view";
        packed =
          Compose.compose_packed
            (Concrete.packed_pair ~init:(0, 0) ~eq_state:eq_int_pair ())
            (Concrete.packed_pair ~init:(0, 0) ~eq_state:eq_int_pair ());
        values_a = int_values;
        values_b = int_values;
        eq_a = Int.equal;
        eq_b = Int.equal;
        show_a = string_of_int;
        show_b = string_of_int;
        subjects =
          [
            Cmd
              ( "cross-update",
                `Commuting,
                Command.(Seq (Set_a 5, Seq (Set_b 6, Modify_a (fun x -> x))))
              );
          ];
      };
    Entry
      {
        label = "compose/parity-shift";
        description =
          "undoable parity composed with the shift symlens: the meet drops \
           to set-bx";
        packed =
          Compose.compose_packed
            (Concrete.packed_of_algebraic ~undoable:true ~init:(0, 0)
               ~eq_state:eq_int_pair parity)
            (Concrete.packed_of_symlens ~seed_a:0 ~eq_a:Int.equal
               ~eq_b:Int.equal shift_symlens);
        values_a = int_values;
        values_b = int_values;
        eq_a = Int.equal;
        eq_b = Int.equal;
        show_a = string_of_int;
        show_b = string_of_int;
        subjects =
          [
            Prog
              ("chained-sync", `Set_bx, Program.[ Set_a 2; Get_b; Set_b 103 ]);
          ];
      };
  ]

(* ------------------------------------------------------------------ *)
(* Auditing                                                            *)
(* ------------------------------------------------------------------ *)

type pipeline_result = {
  subject : string;
  requested : Law_infer.level;
  diagnostics : Lint.diagnostic list;
}

type audit = {
  label : string;
  description : string;
  pedigree : Pedigree.t;
  inferred : Law_infer.level;
  rationale : string;
  observed : Law_infer.level option;
      (** what the sampling {!Certify} report supports *)
  cross_check_ok : bool;
      (** static ≤ observed; [false] means the analyzer (or a pedigree
          claim) is wrong — surfaced loudly by `bxlint` *)
  certify : Certify.report;
  pipelines : pipeline_result list;
}

let audit_entry (Entry s : entry) : audit =
  let pedigree = Concrete.pedigree s.packed in
  let inferred = Law_infer.level pedigree in
  let certify =
    Certify.certify ~values_a:s.values_a ~values_b:s.values_b ~eq_a:s.eq_a
      ~eq_b:s.eq_b ~show_a:s.show_a ~show_b:s.show_b s.packed
  in
  let observed = Certify.observed_level certify in
  let cross_check_ok =
    Law_infer.consistent_with_observation ~static:inferred ~observed
  in
  let lint_subject subj =
    match subj with
    | Cmd (subject, requested, cmd) ->
        let global =
          Lint.check_level ~requested ~inferred ~subject
          |> Option.to_list
        in
        {
          subject;
          requested;
          diagnostics =
            global
            @ Lint.lint_command ~requested ~inferred ~eq_a:s.eq_a
                ~eq_b:s.eq_b cmd;
        }
    | Prog (subject, requested, ops) ->
        let global =
          Lint.check_level ~requested ~inferred ~subject
          |> Option.to_list
        in
        {
          subject;
          requested;
          diagnostics =
            global
            @ Lint.lint_program ~requested ~inferred ~eq_a:s.eq_a
                ~eq_b:s.eq_b ops;
        }
  in
  {
    label = s.label;
    description = s.description;
    pedigree;
    inferred;
    rationale = Law_infer.explain pedigree;
    observed;
    cross_check_ok;
    certify;
    pipelines = List.map lint_subject s.subjects;
  }

let audit_all () : audit list = List.map audit_entry (all ())

let audit_has_errors (a : audit) : bool =
  (not a.cross_check_ok)
  || List.exists (fun p -> Lint.has_errors p.diagnostics) a.pipelines

(* ------------------------------------------------------------------ *)
(* The known miscompilation (the dynamic counterexample of
   test/test_command.ml, rejected statically)                          *)
(* ------------------------------------------------------------------ *)

(** The exact program [test/test_command.ml] shows
    [optimize_unsafe_commuting] miscompiling on the entangled parity bx:
    [set_a 3; set_b 4; set_a 3].  Linting it at the [`Commuting] level
    against the parity pedigree must produce an error — the static
    rejection of the dynamic counterexample. *)
let known_miscompilation () : Lint.diagnostic list =
  let pedigree = Pedigree.Of_algebraic { name = "parity"; undoable = true } in
  let inferred = Law_infer.level pedigree in
  let requested = `Commuting in
  let cmd = Command.(Seq (Set_a 3, Seq (Set_b 4, Set_a 3))) in
  (Lint.check_level ~requested ~inferred ~subject:"parity/commuting"
  |> Option.to_list)
  @ Lint.lint_command ~requested ~inferred ~eq_a:Int.equal ~eq_b:Int.equal cmd

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_audit fmt (a : audit) =
  Format.fprintf fmt "%s — %s@." a.label a.description;
  Format.fprintf fmt "  pedigree:  %s@." (Pedigree.to_string a.pedigree);
  Format.fprintf fmt "  inferred:  %s@." (Law_infer.to_string a.inferred);
  Format.fprintf fmt "  rationale: %s@." a.rationale;
  Format.fprintf fmt "  sampled:   %s%s@."
    (match a.observed with
    | Some l -> Law_infer.to_string l
    | None -> "UNLAWFUL (required set-bx law violated)")
    (if a.cross_check_ok then "" else "  ** STATIC CLAIM REFUTED **");
  List.iter
    (fun p ->
      Format.fprintf fmt "  pipeline %s (optimize at %s):@." p.subject
        (Law_infer.to_string p.requested);
      if p.diagnostics = [] then Format.fprintf fmt "    (clean)@."
      else
        List.iter
          (fun d -> Format.fprintf fmt "    %a@." Lint.pp_diagnostic d)
          p.diagnostics)
    a.pipelines

let audit_to_json (a : audit) : string =
  let pipelines =
    List.map
      (fun p ->
        Printf.sprintf {|{"subject":"%s","requested":"%s","diagnostics":%s}|}
          (Lint.json_escape p.subject)
          (Law_infer.to_string p.requested)
          (Lint.diagnostics_to_json p.diagnostics))
      a.pipelines
  in
  Printf.sprintf
    {|{"label":"%s","pedigree":"%s","inferred":"%s","sampled":%s,"cross_check_ok":%b,"pipelines":[%s]}|}
    (Lint.json_escape a.label)
    (Lint.json_escape (Pedigree.to_string a.pedigree))
    (Law_infer.to_string a.inferred)
    (match a.observed with
    | Some l -> Printf.sprintf "\"%s\"" (Law_infer.to_string l)
    | None -> "null")
    a.cross_check_ok
    (String.concat "," pipelines)

let audits_to_json (audits : audit list) : string =
  "[" ^ String.concat "," (List.map audit_to_json audits) ^ "]"
