open Esm_core

let level_for (packed : ('a, 'b) Concrete.packed) : Command.level =
  Law_infer.to_command_level (Law_infer.of_packed packed)

let optimize_packed ?(cap : Law_infer.level option)
    (packed : ('a, 'b) Concrete.packed) ~(eq_a : 'a -> 'a -> bool)
    ~(eq_b : 'b -> 'b -> bool) (cmd : ('a, 'b) Command.t) : ('a, 'b) Command.t
    =
  let inferred = Law_infer.of_packed packed in
  let chosen =
    match cap with None -> inferred | Some c -> Law_infer.meet c inferred
  in
  Command.optimize_at (Law_infer.to_command_level chosen) ~eq_a ~eq_b cmd
