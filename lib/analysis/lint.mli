(** Law-level lint over the command and op languages.

    Reports every law-driven rewrite opportunity with the minimum law
    level that justifies it, and grades each against the level the
    optimizer is [requested] to run at and the level [inferred] from the
    target bx's pedigree.  A rewrite that fires at the requested level
    but is above the inferred level is an {e error}: the optimizer will
    miscompile that exact operation. *)

open Esm_core

type side = A | B

type rule =
  | Dead_set of side  (** (GS): setting a statically-known current value *)
  | Foldable_read of side  (** (SG): a read whose value is known *)
  | Collapsible_set of side
      (** (SS): an unread set overwritten by a later same-side set *)
  | Undo_cancel of side
      (** undo law: an unread set overwritten by a same-side set
          restoring the value current before it — the pair cancels at
          [`Undoable], one lattice point below the (SS) collapse *)
  | Reorder_collapse of side
      (** same-side collapse across opposite-side writes — needs
          commutation *)
  | Dead_put of side
      (** put presentation, (GP) analogue of (GS): putting the current
          view is a state no-op *)
  | Collapsible_put of side
      (** put presentation, (PP) analogue of (SS): an unobserved put
          overwritten by a later same-direction put *)
  | Level_mismatch
      (** requested optimizer level exceeds the inferred law level *)
  | Unprotected_fallible
      (** sets through a fallible construction with no [atomic] wrapper *)
  | Dead_where
      (** plan: a [where] stage statically false under accumulated facts *)
  | Foldable_where
      (** plan: a [where] stage implied by accumulated facts *)
  | Foldable_stage
      (** plan: a structurally trivial stage (project of every column,
          identity rename) *)
  | Unknown_column  (** plan: a stage references an absent column *)
  | Dropped_key
      (** plan: a project drops a key column — not updatable *)
  | Unproven_join
      (** plan: a join with no functional-dependency evidence *)

val rule_name : rule -> string

type severity = Info | Warning | Error

val severity_name : severity -> string

type diagnostic = {
  rule : rule;
  severity : severity;
  requires : Law_infer.level;
  at : int;  (** pre-order index of the flagged operation; -1 = global *)
  message : string;
}

val is_error : diagnostic -> bool
val has_errors : diagnostic list -> bool
val pp_diagnostic : Format.formatter -> diagnostic -> unit

val decide_severity :
  requested:Law_infer.level ->
  inferred:Law_infer.level ->
  requires:Law_infer.level ->
  severity
(** Error iff the rewrite fires (requires ≤ requested) but is unsound
    (requires > inferred); Info if it fires soundly; Warning if sound but
    not enabled at the requested level. *)

val check_level :
  requested:Law_infer.level ->
  inferred:Law_infer.level ->
  subject:string ->
  diagnostic option
(** The global precondition: [Some] error diagnostic iff the requested
    optimizer level strictly exceeds the inferred law level. *)

val check_atomicity :
  pedigree:Pedigree.t ->
  has_sets:bool ->
  subject:string ->
  diagnostic option
(** The robustness precondition: [Some] warning iff the pipeline writes
    state ([has_sets]) through a fallible construction
    ({!Law_infer.fallible}) that is not rollback-protected
    ({!Law_infer.rollback_protected}). *)

val command_has_sets : ('a, 'b) Command.t -> bool
(** Does the command write state ([Set_]/[Modify_]) in any branch? *)

val program_has_sets : ('a, 'b) Program.op list -> bool

val lint_command :
  requested:Law_infer.level ->
  inferred:Law_infer.level ->
  eq_a:('a -> 'a -> bool) ->
  eq_b:('b -> 'b -> bool) ->
  ('a, 'b) Command.t ->
  diagnostic list
(** Abstract interpretation of a command with the optimizer's knowledge
    domain run twice (entanglement-sound and commutation-assuming),
    reporting (GS)/(SG)/(SS)/reorder opportunities in pre-order. *)

val lint_program :
  requested:Law_infer.level ->
  inferred:Law_infer.level ->
  eq_a:('a -> 'a -> bool) ->
  eq_b:('b -> 'b -> bool) ->
  ('a, 'b) Program.op list ->
  diagnostic list
(** The same analysis over the first-order get/set op language. *)

(** {1 Put-presentation lint}

    The first-order script language of the paper's {e put} presentation:
    a put pushes one view and returns the propagated opposite view, so
    sync sessions ([Esm_sync.Session]) speak exactly this language. *)

type ('a, 'b) put_op =
  | Pget_a
  | Pget_b
  | Put_ab of 'a  (** push the A view; the updated B view is returned *)
  | Put_ba of 'b  (** push the B view; the updated A view is returned *)

val puts_have_sets : ('a, 'b) put_op list -> bool
(** Does the script write state (either put direction)? *)

val lint_puts :
  requested:Law_infer.level ->
  inferred:Law_infer.level ->
  eq_a:('a -> 'a -> bool) ->
  eq_b:('b -> 'b -> bool) ->
  ('a, 'b) put_op list ->
  diagnostic list
(** The abstract interpretation over put scripts: dead puts ((GP)),
    foldable gets after puts — including [get_a] after [put_ba], whose
    value the put {e returned} to the caller — ((PG)), (PP) collapses of
    unobserved same-direction puts, and commutation-requiring collapses
    across opposite-direction puts. *)

(** {1 Plan lint}

    Abstract interpretation over relational query plans
    ({!Esm_relational.Query.t}) with two domains: {e value intervals}
    (inclusive integer ranges per column, plus pinned literals) and
    {e predicate implication} (three-valued evaluation of each [where]
    against the facts the earlier stages accumulated).  A [where] is a
    plan-level [If_] guard: statically decided guards fold
    ([Foldable_where]) or kill the view ([Dead_where]); trivial stages
    fold ([Foldable_stage]); schema violations ([Unknown_column],
    [Dropped_key]) are errors; FD-less joins are flagged
    ([Unproven_join]).  Severities here are intrinsic to the rule — a
    plan has no requested/inferred optimizer levels. *)

val lint_plan :
  schema:Esm_relational.Schema.t ->
  key:string list ->
  Esm_relational.Query.t ->
  diagnostic list
(** [lint_plan ~schema ~key q] walks [q] in pipeline order ([at] indexes
    stages in evaluation order, base tables included) with [schema] and
    [key] describing the base table. *)

val json_escape : string -> string
val diagnostic_to_json : diagnostic -> string
val diagnostics_to_json : diagnostic list -> string
