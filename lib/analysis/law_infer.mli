(** Static law-level inference from construction provenance.

    Replays the paper's construction lemmas over a {!Esm_core.Pedigree}
    tree to compute the strongest law level guaranteed by how a bx was
    built — the static precondition for the optimizer levels of
    {!Esm_core.Command}, replacing sampling-based confidence with a
    lemma-backed verdict. *)

open Esm_core

(** The law-level lattice, a total order: every instance satisfies the
    set-bx laws; [`Undoable] adds the undo law
    [set (get s) (set v s) = s]; [`Overwriteable] adds (SS); [`Commuting]
    adds §3.4 commutation. *)
type level = [ `Set_bx | `Undoable | `Overwriteable | `Commuting ]

val rank : level -> int
val compare : level -> level -> int
val leq : level -> level -> bool
val meet : level -> level -> level
val to_string : level -> string
val pp : Format.formatter -> level -> unit

val to_command_level : level -> Command.level
(** The optimizer level a law level justifies. *)

val of_command_level : Command.level -> level
(** The law level an optimizer level requires of its target bx. *)

val level : Pedigree.t -> level
(** The paper's lemmas, replayed: Lemma 4 (wb lens ⇒ set-bx, vwb ⇒
    overwriteable), Lemma 5 (undoable ⇒ overwriteable), Lemma 6 (set-bx
    only), §3.4 pair ⇒ commuting, composition takes the meet, journalled
    / effectful wrappers force [`Set_bx] — plus the per-combinator
    relational lemmas: key-preserving select ⇒ overwriteable (else
    undoable), lossless project / rename ⇒ overwriteable (lossy project
    ⇒ set-bx), FD-proven join ⇒ undoable (else set-bx), delta
    composition takes the meet, [Delta_of]/[Plan] preserve the base. *)

val explain : Pedigree.t -> string
(** [level] with the applied lemma spelled out per pedigree node. *)

val of_packed : ('a, 'b) Concrete.packed -> level
(** Infer from the packed bx's recorded pedigree. *)

val fallible : Pedigree.t -> bool
(** Can a setter of a bx with this pedigree raise a bx error?  True for
    lens/algebraic/symmetric/opaque constructions and the relational
    lenses (partial machinery underneath: row validation, key checks,
    schema checks), false for the total built-ins ([Pair], [Identity])
    and for anything already wrapped in [Atomic]. *)

val rollback_protected : Pedigree.t -> bool
(** Is the pedigree wrapped (at the top, possibly under [Flip] /
    [Journalled]) in {!Esm_core.Atomic}'s hardening, so failing sets
    roll back instead of tearing state? *)

val consistent_with_observation :
  static:level -> observed:level option -> bool
(** Cross-check a static claim against {!Esm_core.Certify.observed_level}:
    sampling only falsifies, so the claim is refuted iff strictly above
    the observation. *)
