(** The example catalog: the [examples/] and [bin/esm_demo.ml] scenarios
    re-exported as packed, pedigreed bx with representative pipelines —
    the corpus `bxlint` analyses and CI gates on. *)

open Esm_core

type ('a, 'b) subject =
  | Cmd of string * Law_infer.level * ('a, 'b) Command.t
  | Prog of string * Law_infer.level * ('a, 'b) Program.op list
  | Puts of string * Law_infer.level * ('a, 'b) Lint.put_op list
      (** a put-presentation session script (what sync sessions speak) *)

type query_plan = {
  plan_schema : Esm_relational.Schema.t;
  plan_key : string list;
  plan_query : Esm_relational.Query.t;
  plan_requested : Law_infer.level option;
      (** the law level the plan's author asked the optimizer for
          (ESMQL [expect level=…]); [None] when nothing was requested *)
}
(** The relational source a scenario's bx was compiled from, when there
    is one; `bxlint` runs {!Lint.lint_plan} over it. *)

type ('a, 'b) scenario = {
  label : string;
  description : string;
  packed : ('a, 'b) Concrete.packed;
  values_a : 'a list;
  values_b : 'b list;
  eq_a : 'a -> 'a -> bool;
  eq_b : 'b -> 'b -> bool;
  show_a : 'a -> string;
  show_b : 'b -> string;
  subjects : ('a, 'b) subject list;
  plan : query_plan option;
}

type entry = Entry : ('a, 'b) scenario -> entry

val entry_label : entry -> string

val all : unit -> entry list
(** Every scenario: the built-in corpus plus anything {!register}ed. *)

val register : entry -> unit
(** Add a scenario to {!all} (upper layers — the ESMQL front-end —
    contribute their query-derived bx this way, so `bxlint`'s gates
    cover them).  Registering a label twice replaces the first entry,
    making repeated registration idempotent. *)

(** {1 Auditing} *)

type pipeline_result = {
  subject : string;
  requested : Law_infer.level;
  diagnostics : Lint.diagnostic list;
}

type audit = {
  label : string;
  description : string;
  pedigree : Pedigree.t;
  inferred : Law_infer.level;
  rationale : string;
  observed : Law_infer.level option;
  cross_check_ok : bool;
      (** static ≤ sampled; [false] means the analyzer or a pedigree
          claim is wrong *)
  certify : Certify.report;
  pipelines : pipeline_result list;
  plan_query : string option;
      (** surface syntax of the compiled plan, when the scenario has one *)
  plan_requested : Law_infer.level option;
      (** the surface-requested law level, for query-derived entries *)
  plan_inferred : Law_infer.level option;
      (** {!Law_infer.level} of the plan's own pedigree — what the
          compile-time gate compared [plan_requested] against *)
  plan_diagnostics : Lint.diagnostic list;
      (** {!Lint.lint_plan} over that plan; empty when [plan_query] is
          [None] *)
}

val audit_entry : entry -> audit
(** Infer the level from the pedigree, sample with {!Certify}, cross
    check, and lint every pipeline at its requested level. *)

val audit_all : unit -> audit list
val audit_has_errors : audit -> bool

val known_miscompilation : unit -> Lint.diagnostic list
(** Lint of the exact [set_a 3; set_b 4; set_a 3] program that
    [test/test_command.ml] shows miscompiling under
    [optimize_unsafe_commuting] on parity, at the [`Commuting] level.
    Must contain error diagnostics — the static rejection of the dynamic
    counterexample ([bxlint] fails its self-test otherwise). *)

val pp_audit : Format.formatter -> audit -> unit
val audit_to_json : audit -> string
val audits_to_json : audit list -> string
