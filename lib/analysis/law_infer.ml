(** Static law-level inference: from construction provenance
    ({!Esm_core.Pedigree}) to the strongest law level the paper's lemmas
    guarantee — no sampling involved.

    The level lattice is the total order (after Nakano's chart of the
    territory between well-behaved and very well-behaved)

    {v `Set_bx  ⊑  `Undoable  ⊑  `Overwriteable  ⊑  `Commuting v}

    mirroring {!Esm_core.Command.level} ([`Any]/[`Undoable]/
    [`Overwriteable]/[`Commuting]): every packed instance satisfies the
    set-bx laws (GG)/(GS)/(SG); undoable instances additionally satisfy
    the undo law [set_a (get_a s) (set_a v s) = s] (writing back the
    original value cancels an intervening set — implied by (SS) together
    with (GS), but strictly weaker, as the relational lenses show);
    overwriteable instances additionally satisfy (SS); commuting
    instances additionally satisfy the §3.4 independence law
    [set_a a >> set_b b = set_b b >> set_a a] (and (SS), which follows
    from commutation together with (GS)/(SG) in the instances at hand —
    the optimizer's [`Commuting] level assumes both).

    Inference replays the paper's construction lemmas:

    - Lemma 4: a well-behaved lens induces a lawful set-bx; (PutPut)
      upgrades it to overwriteable.  A lens-induced bx is never inferred
      commuting: side A overwrites the whole source, so
      [set_a a >> set_b b ≠ set_b b >> set_a a] unless the lens is
      degenerate.
    - Lemma 5: an algebraic bx induces a lawful set-bx; undoable
      restorers give (SS).
    - Lemma 6: a symmetric lens induces a lawful set-bx; symmetric
      lenses carry no (PutPut)-like law, so nothing more is claimed.
    - §3.4: the independent pair state monad commutes.
    - Composition takes the {e meet}: the composite construction of
      {!Esm_core.Compose} preserves (SS) when both components have it,
      and preserves commutation when both components commute (a
      commuting component's [set] leaves its opposite view fixed, so the
      propagated middle value is unchanged and the two outer writes act
      on disjoint components of the aligned composite state).
    - Journalling and effectful wrappers record every effective update
      observably, so they force the level back down to [`Set_bx]
      regardless of the base.
    - [Opaque] is the bottom: only the set-bx laws may be assumed.

    The relational/delta combinators get per-combinator lemmas (checked
    by the catalog's sampling cross-checks):

    - Select: the put validates every view row against the predicate, so
      the untouched complement is exactly the non-matching source rows
      and a second put of the same shape erases the first — the undo law
      holds.  When the predicate reads only key columns, view membership
      is decided by the key alone, no view row can collide with a hidden
      row, and (PutPut) holds: overwriteable.
    - Project: a lossy projection restores dropped columns from the
      {e old} source by key, so two puts remember the first and even the
      undo law fails on deleted-then-restored rows — set-bx only.  A
      lossless projection is a column-order iso: overwriteable.
    - Rename: a schema iso, hence a very well-behaved lens:
      overwriteable (never commuting — side A overwrites the whole
      source).
    - Join: the put redistributes view rows across two sources and keeps
      right-rows for keys absent from the view, so nothing beyond set-bx
      holds in general; when the FD analysis proves the view key
      functionally determines the joined source rows, re-putting the
      original view reassembles exactly the original sources — undoable.
    - Dcompose: full-put semantics is lens composition — the meet.
    - Delta_of: the delta path agrees with the base full-put lens (the
      oracle the chaos suite enforces) — the base level.
    - Plan: a compiled query is its body pipeline — the body's level. *)

open Esm_core

type level = [ `Set_bx | `Undoable | `Overwriteable | `Commuting ]

let rank : level -> int = function
  | `Set_bx -> 0
  | `Undoable -> 1
  | `Overwriteable -> 2
  | `Commuting -> 3

let compare (l1 : level) (l2 : level) : int = Int.compare (rank l1) (rank l2)
let leq (l1 : level) (l2 : level) : bool = rank l1 <= rank l2
let meet (l1 : level) (l2 : level) : level = if leq l1 l2 then l1 else l2

let to_string : level -> string = function
  | `Set_bx -> "set-bx"
  | `Undoable -> "undoable"
  | `Overwriteable -> "overwriteable"
  | `Commuting -> "commuting"

let pp fmt (l : level) = Format.pp_print_string fmt (to_string l)

(** The optimizer level justified by a law level: [`Set_bx] only licenses
    the always-sound rewrites. *)
let to_command_level : level -> Command.level = function
  | `Set_bx -> `Any
  | `Undoable -> `Undoable
  | `Overwriteable -> `Overwriteable
  | `Commuting -> `Commuting

(** The law level an optimizer level {e requires} of its target bx. *)
let of_command_level : Command.level -> level = function
  | `Any -> `Set_bx
  | `Undoable -> `Undoable
  | `Overwriteable -> `Overwriteable
  | `Commuting -> `Commuting

(* ------------------------------------------------------------------ *)
(* Inference                                                           *)
(* ------------------------------------------------------------------ *)

let rec level (p : Pedigree.t) : level =
  match p with
  | Pedigree.Of_lens { vwb; _ } -> if vwb then `Overwriteable else `Set_bx
  | Pedigree.Of_algebraic { undoable; _ } ->
      if undoable then `Overwriteable else `Set_bx
  | Pedigree.Of_symmetric _ -> `Set_bx
  | Pedigree.Pair -> `Commuting
  | Pedigree.Identity -> `Overwriteable
  | Pedigree.Compose (p1, p2) -> meet (level p1) (level p2)
  | Pedigree.Flip p -> level p
  | Pedigree.Journalled _ -> `Set_bx
  | Pedigree.Effectful _ -> `Set_bx
  | Pedigree.Opaque _ -> `Set_bx
  | Pedigree.Atomic p -> level p
  | Pedigree.Replicated p -> level p
  | Pedigree.Select { key_preserving; _ } ->
      if key_preserving then `Overwriteable else `Undoable
  | Pedigree.Project { lossless; _ } ->
      if lossless then `Overwriteable else `Set_bx
  | Pedigree.Rename _ -> `Overwriteable
  | Pedigree.Join { fd_proven; _ } -> if fd_proven then `Undoable else `Set_bx
  | Pedigree.Dcompose (p1, p2) -> meet (level p1) (level p2)
  | Pedigree.Delta_of p -> level p
  | Pedigree.Plan { body; _ } -> level body

(** [level], with the applied lemma spelled out per node — the rationale
    `bxlint` prints next to each verdict. *)
let rec explain (p : Pedigree.t) : string =
  let at p = to_string (level p) in
  match p with
  | Pedigree.Of_lens { name; vwb } ->
      if vwb then
        Printf.sprintf
          "Lemma 4: lens %s claims (PutPut), so the induced bx is \
           overwriteable"
          name
      else
        Printf.sprintf
          "Lemma 4: lens %s is well-behaved but not (PutPut), so only the \
           set-bx laws hold"
          name
  | Pedigree.Of_algebraic { name; undoable } ->
      if undoable then
        Printf.sprintf
          "Lemma 5: algebraic bx %s has undoable restorers, giving (SS)" name
      else
        Printf.sprintf
          "Lemma 5: algebraic bx %s restores non-undoably, so only the \
           set-bx laws hold"
          name
  | Pedigree.Of_symmetric { name } ->
      Printf.sprintf
        "Lemma 6: symmetric lens %s carries no (PutPut)-like law, so only \
         the set-bx laws hold"
        name
  | Pedigree.Pair -> "§3.4: the independent pair state monad commutes"
  | Pedigree.Identity ->
      "identity bx: both sides write one cell — overwriteable, not commuting"
  | Pedigree.Compose (p1, p2) ->
      Printf.sprintf "composition takes the meet: %s ⊓ %s = %s; [%s] [%s]"
        (at p1) (at p2)
        (to_string (level p))
        (explain p1) (explain p2)
  | Pedigree.Flip p ->
      Printf.sprintf "flip preserves the level (laws are side-symmetric): %s"
        (explain p)
  | Pedigree.Journalled p ->
      Printf.sprintf
        "journalling makes update history observable, destroying (SS) and \
         commutation (base: %s)"
        (explain p)
  | Pedigree.Effectful { name } ->
      Printf.sprintf
        "§4: %s performs change-triggered I/O, destroying (SS)" name
  | Pedigree.Opaque { name } ->
      Printf.sprintf
        "opaque construction %s: only the set-bx laws may be assumed" name
  | Pedigree.Atomic p ->
      Printf.sprintf
        "atomic wrapping is observationally the base bx on fault-free \
         inputs, preserving the level (and adding rollback): %s"
        (explain p)
  | Pedigree.Replicated p ->
      Printf.sprintf
        "a replicated store serves the base bx behind a versioned oplog; \
         commits are transactional, so the level is preserved (and \
         rollback added): %s"
        (explain p)
  | Pedigree.Select { pred; key_preserving } ->
      if key_preserving then
        Printf.sprintf
          "select lemma: predicate (%s) reads only key columns, so view \
           membership is decided by the key, no view row collides with a \
           hidden row, and (PutPut) holds — overwriteable"
          pred
      else
        Printf.sprintf
          "select lemma: the put validates every view row against (%s), so \
           re-putting the original view erases an intervening put (undo \
           law); (PutPut) is not claimed because a view row may collide \
           with a hidden non-matching row's key"
          pred
  | Pedigree.Project { keep; lossless; _ } ->
      if lossless then
        Printf.sprintf
          "project lemma: keeping every source column (%s) is a \
           column-order iso, a very well-behaved lens — overwriteable"
          (String.concat "," keep)
      else
        Printf.sprintf
          "project lemma: dropped columns are restored from the old source \
           by key, so two puts remember the first and deleted rows lose \
           their hidden columns — only the set-bx laws hold (keep: %s)"
          (String.concat "," keep)
  | Pedigree.Rename mapping ->
      Printf.sprintf
        "rename lemma: %s is a schema iso, a very well-behaved lens — \
         overwriteable, never commuting"
        (String.concat ","
           (List.map (fun (o, n) -> o ^ "->" ^ n) mapping))
  | Pedigree.Join { on; fd_proven } ->
      if fd_proven then
        Printf.sprintf
          "join lemma: FD analysis proves the view key functionally \
           determines the joined rows over (%s), so re-putting the \
           original view reassembles the original sources — undoable"
          (String.concat "," on)
      else
        Printf.sprintf
          "join lemma: the put redistributes rows across both sources \
           (shared columns: %s) with no FD proof, so only the set-bx laws \
           hold"
          (String.concat "," on)
  | Pedigree.Dcompose (p1, p2) ->
      Printf.sprintf
        "delta-lens composition has lens composition as its full-put \
         semantics, so it takes the meet: %s ⊓ %s = %s; [%s] [%s]"
        (at p1) (at p2)
        (to_string (level p))
        (explain p1) (explain p2)
  | Pedigree.Delta_of p ->
      Printf.sprintf
        "delta propagation agrees with the base full-put lens (the chaos \
         suite's oracle), preserving the level: %s"
        (explain p)
  | Pedigree.Plan { query; body } ->
      Printf.sprintf "compiled plan ⟨%s⟩ is its body pipeline: %s" query
        (explain body)

(** Infer the level of a packed bx from its recorded pedigree. *)
let of_packed (p : ('a, 'b) Concrete.packed) : level =
  level (Concrete.pedigree p)

(* ------------------------------------------------------------------ *)
(* Fallibility and rollback protection                                 *)
(* ------------------------------------------------------------------ *)

(** Can a setter of a bx with this pedigree raise a bx error?  Lens,
    algebraic and symmetric constructions route through partial
    machinery (shape-checked [put]s, restorers, schema/metamodel
    validation); only the total built-ins ([Pair], [Identity]) are
    statically infallible.  [Atomic] absorbs failures into no-ops, so
    nothing escapes it. *)
let rec fallible (p : Pedigree.t) : bool =
  match p with
  | Pedigree.Pair | Pedigree.Identity -> false
  | Pedigree.Atomic _ | Pedigree.Replicated _ -> false
  | Pedigree.Of_lens _ | Pedigree.Of_algebraic _ | Pedigree.Of_symmetric _
  | Pedigree.Effectful _ | Pedigree.Opaque _ ->
      true
  (* the relational lenses validate rows, keys and schemas in put, so
     every one of them can raise a bx error on bad inputs *)
  | Pedigree.Select _ | Pedigree.Project _ | Pedigree.Rename _
  | Pedigree.Join _ ->
      true
  | Pedigree.Compose (p1, p2) | Pedigree.Dcompose (p1, p2) ->
      fallible p1 || fallible p2
  | Pedigree.Flip p | Pedigree.Journalled p | Pedigree.Delta_of p -> fallible p
  | Pedigree.Plan { body; _ } -> fallible body

(** Is every failure inside this pedigree caught by an enclosing
    [Atomic] wrapper (so a failing set rolls back instead of tearing the
    entangled state)? *)
let rec rollback_protected (p : Pedigree.t) : bool =
  match p with
  | Pedigree.Atomic _ | Pedigree.Replicated _ -> true
  | Pedigree.Flip p | Pedigree.Journalled p | Pedigree.Plan { body = p; _ } ->
      rollback_protected p
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Cross-check against sampling                                        *)
(* ------------------------------------------------------------------ *)

(** Is a static claim consistent with a sampling observation?  Sampling
    only falsifies: the static level is refuted exactly when it lies
    strictly above what the samples support ([None] = a required set-bx
    law failed, refuting every level). *)
let consistent_with_observation ~(static : level)
    ~(observed : level option) : bool =
  match observed with None -> false | Some o -> leq static o
