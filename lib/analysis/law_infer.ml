(** Static law-level inference: from construction provenance
    ({!Esm_core.Pedigree}) to the strongest law level the paper's lemmas
    guarantee — no sampling involved.

    The level lattice is the total order

    {v `Set_bx  ⊑  `Overwriteable  ⊑  `Commuting v}

    mirroring {!Esm_core.Command.level} ([`Any]/[`Overwriteable]/
    [`Commuting]): every packed instance satisfies the set-bx laws
    (GG)/(GS)/(SG); overwriteable instances additionally satisfy (SS);
    commuting instances additionally satisfy the §3.4 independence law
    [set_a a >> set_b b = set_b b >> set_a a] (and (SS), which follows
    from commutation together with (GS)/(SG) in the instances at hand —
    the optimizer's [`Commuting] level assumes both).

    Inference replays the paper's construction lemmas:

    - Lemma 4: a well-behaved lens induces a lawful set-bx; (PutPut)
      upgrades it to overwriteable.  A lens-induced bx is never inferred
      commuting: side A overwrites the whole source, so
      [set_a a >> set_b b ≠ set_b b >> set_a a] unless the lens is
      degenerate.
    - Lemma 5: an algebraic bx induces a lawful set-bx; undoable
      restorers give (SS).
    - Lemma 6: a symmetric lens induces a lawful set-bx; symmetric
      lenses carry no (PutPut)-like law, so nothing more is claimed.
    - §3.4: the independent pair state monad commutes.
    - Composition takes the {e meet}: the composite construction of
      {!Esm_core.Compose} preserves (SS) when both components have it,
      and preserves commutation when both components commute (a
      commuting component's [set] leaves its opposite view fixed, so the
      propagated middle value is unchanged and the two outer writes act
      on disjoint components of the aligned composite state).
    - Journalling and effectful wrappers record every effective update
      observably, so they force the level back down to [`Set_bx]
      regardless of the base.
    - [Opaque] is the bottom: only the set-bx laws may be assumed. *)

open Esm_core

type level = [ `Set_bx | `Overwriteable | `Commuting ]

let rank : level -> int = function
  | `Set_bx -> 0
  | `Overwriteable -> 1
  | `Commuting -> 2

let compare (l1 : level) (l2 : level) : int = Int.compare (rank l1) (rank l2)
let leq (l1 : level) (l2 : level) : bool = rank l1 <= rank l2
let meet (l1 : level) (l2 : level) : level = if leq l1 l2 then l1 else l2

let to_string : level -> string = function
  | `Set_bx -> "set-bx"
  | `Overwriteable -> "overwriteable"
  | `Commuting -> "commuting"

let pp fmt (l : level) = Format.pp_print_string fmt (to_string l)

(** The optimizer level justified by a law level: [`Set_bx] only licenses
    the always-sound rewrites. *)
let to_command_level : level -> Command.level = function
  | `Set_bx -> `Any
  | `Overwriteable -> `Overwriteable
  | `Commuting -> `Commuting

(** The law level an optimizer level {e requires} of its target bx. *)
let of_command_level : Command.level -> level = function
  | `Any -> `Set_bx
  | `Overwriteable -> `Overwriteable
  | `Commuting -> `Commuting

(* ------------------------------------------------------------------ *)
(* Inference                                                           *)
(* ------------------------------------------------------------------ *)

let rec level (p : Pedigree.t) : level =
  match p with
  | Pedigree.Of_lens { vwb; _ } -> if vwb then `Overwriteable else `Set_bx
  | Pedigree.Of_algebraic { undoable; _ } ->
      if undoable then `Overwriteable else `Set_bx
  | Pedigree.Of_symmetric _ -> `Set_bx
  | Pedigree.Pair -> `Commuting
  | Pedigree.Identity -> `Overwriteable
  | Pedigree.Compose (p1, p2) -> meet (level p1) (level p2)
  | Pedigree.Flip p -> level p
  | Pedigree.Journalled _ -> `Set_bx
  | Pedigree.Effectful _ -> `Set_bx
  | Pedigree.Opaque _ -> `Set_bx
  | Pedigree.Atomic p -> level p
  | Pedigree.Replicated p -> level p

(** [level], with the applied lemma spelled out per node — the rationale
    `bxlint` prints next to each verdict. *)
let rec explain (p : Pedigree.t) : string =
  let at p = to_string (level p) in
  match p with
  | Pedigree.Of_lens { name; vwb } ->
      if vwb then
        Printf.sprintf
          "Lemma 4: lens %s claims (PutPut), so the induced bx is \
           overwriteable"
          name
      else
        Printf.sprintf
          "Lemma 4: lens %s is well-behaved but not (PutPut), so only the \
           set-bx laws hold"
          name
  | Pedigree.Of_algebraic { name; undoable } ->
      if undoable then
        Printf.sprintf
          "Lemma 5: algebraic bx %s has undoable restorers, giving (SS)" name
      else
        Printf.sprintf
          "Lemma 5: algebraic bx %s restores non-undoably, so only the \
           set-bx laws hold"
          name
  | Pedigree.Of_symmetric { name } ->
      Printf.sprintf
        "Lemma 6: symmetric lens %s carries no (PutPut)-like law, so only \
         the set-bx laws hold"
        name
  | Pedigree.Pair -> "§3.4: the independent pair state monad commutes"
  | Pedigree.Identity ->
      "identity bx: both sides write one cell — overwriteable, not commuting"
  | Pedigree.Compose (p1, p2) ->
      Printf.sprintf "composition takes the meet: %s ⊓ %s = %s; [%s] [%s]"
        (at p1) (at p2)
        (to_string (level p))
        (explain p1) (explain p2)
  | Pedigree.Flip p ->
      Printf.sprintf "flip preserves the level (laws are side-symmetric): %s"
        (explain p)
  | Pedigree.Journalled p ->
      Printf.sprintf
        "journalling makes update history observable, destroying (SS) and \
         commutation (base: %s)"
        (explain p)
  | Pedigree.Effectful { name } ->
      Printf.sprintf
        "§4: %s performs change-triggered I/O, destroying (SS)" name
  | Pedigree.Opaque { name } ->
      Printf.sprintf
        "opaque construction %s: only the set-bx laws may be assumed" name
  | Pedigree.Atomic p ->
      Printf.sprintf
        "atomic wrapping is observationally the base bx on fault-free \
         inputs, preserving the level (and adding rollback): %s"
        (explain p)
  | Pedigree.Replicated p ->
      Printf.sprintf
        "a replicated store serves the base bx behind a versioned oplog; \
         commits are transactional, so the level is preserved (and \
         rollback added): %s"
        (explain p)

(** Infer the level of a packed bx from its recorded pedigree. *)
let of_packed (p : ('a, 'b) Concrete.packed) : level =
  level (Concrete.pedigree p)

(* ------------------------------------------------------------------ *)
(* Fallibility and rollback protection                                 *)
(* ------------------------------------------------------------------ *)

(** Can a setter of a bx with this pedigree raise a bx error?  Lens,
    algebraic and symmetric constructions route through partial
    machinery (shape-checked [put]s, restorers, schema/metamodel
    validation); only the total built-ins ([Pair], [Identity]) are
    statically infallible.  [Atomic] absorbs failures into no-ops, so
    nothing escapes it. *)
let rec fallible (p : Pedigree.t) : bool =
  match p with
  | Pedigree.Pair | Pedigree.Identity -> false
  | Pedigree.Atomic _ | Pedigree.Replicated _ -> false
  | Pedigree.Of_lens _ | Pedigree.Of_algebraic _ | Pedigree.Of_symmetric _
  | Pedigree.Effectful _ | Pedigree.Opaque _ ->
      true
  | Pedigree.Compose (p1, p2) -> fallible p1 || fallible p2
  | Pedigree.Flip p | Pedigree.Journalled p -> fallible p

(** Is every failure inside this pedigree caught by an enclosing
    [Atomic] wrapper (so a failing set rolls back instead of tearing the
    entangled state)? *)
let rec rollback_protected (p : Pedigree.t) : bool =
  match p with
  | Pedigree.Atomic _ | Pedigree.Replicated _ -> true
  | Pedigree.Flip p | Pedigree.Journalled p -> rollback_protected p
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Cross-check against sampling                                        *)
(* ------------------------------------------------------------------ *)

(** Is a static claim consistent with a sampling observation?  Sampling
    only falsifies: the static level is refuted exactly when it lies
    strictly above what the samples support ([None] = a required set-bx
    law failed, refuting every level). *)
let consistent_with_observation ~(static : level)
    ~(observed : level option) : bool =
  match observed with None -> false | Some o -> leq static o
