(** Law-level lint: an abstract interpretation over the command language
    ({!Esm_core.Command.t}) and the first-order op language
    ({!Esm_core.Program.op}) that reports every law-driven rewrite
    opportunity together with the {e minimum law level that justifies
    it}, and checks those requirements against the level statically
    inferred from the target bx's pedigree ({!Law_infer}).

    The analysis runs the optimizer's own knowledge domain
    ({!Esm_core.Command.knowledge}) twice in lockstep:

    - [plain] propagates knowledge soundly for {e every} lawful set-bx —
      a set invalidates the opposite view (entanglement);
    - [comm] retains the opposite view across sets, which is valid only
      under §3.4 commutation.

    A rewrite enabled by [plain] requires only [`Set_bx]; one enabled
    only by [comm] requires [`Commuting].  Same-side set collapses are
    tracked syntactically: an unread set overwritten by a later
    same-side set requires (SS) ([`Overwriteable]) if nothing wrote the
    opposite side in between, and full commutation ([`Commuting]) if
    something did — collapsing then reorders the writes.

    Severity is decided against the two levels in play: [requested], the
    level the optimizer will be run at, and [inferred], the level the
    pedigree supports.  A rewrite that {e fires} (requires ≤ requested)
    but is {e unsound} (requires > inferred) is an [Error] — the
    optimizer at that level will miscompile this exact spot.  A sound
    rewrite that fires is [Info]; a sound one the requested level leaves
    on the table is a [Warning] (raise the level); an unjustifiable
    opportunity that does not fire is [Info]. *)

open Esm_core

type side = A | B

let side_name = function A -> "a" | B -> "b"

type rule =
  | Dead_set of side  (** (GS): setting a statically-known current value *)
  | Foldable_read of side
      (** (SG): a read (modify input, branch guard, get) whose value is
          statically known *)
  | Collapsible_set of side
      (** (SS): an unread set overwritten by a later same-side set *)
  | Undo_cancel of side
      (** undo law: an unread set overwritten by a same-side set
          restoring the value current {e before} it — the pair cancels
          to a no-op at [`Undoable], one point below the (SS) collapse *)
  | Reorder_collapse of side
      (** a same-side collapse across opposite-side writes — requires
          commutation to reorder first *)
  | Dead_put of side
      (** put presentation, (GP) analogue of (GS): putting the
          statically-known current view is a state no-op *)
  | Collapsible_put of side
      (** put presentation, (PP) analogue of (SS): an unobserved put
          overwritten by a later same-direction put *)
  | Level_mismatch
      (** the requested optimizer level exceeds the inferred law level *)
  | Unprotected_fallible
      (** a pipeline performing sets through a fallible construction with
          no [atomic] wrapper: a mid-set failure can tear the entangled
          state *)
  | Dead_where
      (** plan: a [where] stage statically false under the facts
          accumulated from earlier stages — the view is provably empty *)
  | Foldable_where
      (** plan: a [where] stage implied by the facts accumulated from
          earlier stages — the filter is the identity and folds away *)
  | Foldable_stage
      (** plan: a structurally trivial stage (project of every column,
          identity rename) that folds away *)
  | Unknown_column
      (** plan: a stage references a column absent from the schema at
          that point — compilation will fail *)
  | Dropped_key
      (** plan: a project drops a key column, so the pipeline is not
          updatable *)
  | Unproven_join
      (** plan: a join with no functional-dependency evidence — compiles
          to set-bx only (see the join lemma in {!Law_infer}) *)

let rule_name = function
  | Dead_set s -> "dead-set-" ^ side_name s
  | Foldable_read s -> "foldable-read-" ^ side_name s
  | Collapsible_set s -> "collapsible-set-" ^ side_name s
  | Undo_cancel s -> "undo-cancel-" ^ side_name s
  | Reorder_collapse s -> "reorder-collapse-" ^ side_name s
  | Dead_put s -> "dead-put-" ^ side_name s
  | Collapsible_put s -> "collapsible-put-" ^ side_name s
  | Level_mismatch -> "level-mismatch"
  | Unprotected_fallible -> "unprotected-fallible"
  | Dead_where -> "dead-where"
  | Foldable_where -> "foldable-where"
  | Foldable_stage -> "foldable-stage"
  | Unknown_column -> "unknown-column"
  | Dropped_key -> "dropped-key"
  | Unproven_join -> "unproven-join"

type severity = Info | Warning | Error

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

type diagnostic = {
  rule : rule;
  severity : severity;
  requires : Law_infer.level;  (** minimum law level justifying the rewrite *)
  at : int;  (** pre-order index of the flagged operation *)
  message : string;
}

let is_error (d : diagnostic) = d.severity = Error
let has_errors (ds : diagnostic list) = List.exists is_error ds

let pp_diagnostic fmt (d : diagnostic) =
  Format.fprintf fmt "%s: [%s] op %d: %s (requires %s)"
    (severity_name d.severity) (rule_name d.rule) d.at d.message
    (Law_infer.to_string d.requires)

(* ------------------------------------------------------------------ *)
(* Severity policy                                                     *)
(* ------------------------------------------------------------------ *)

let decide_severity ~(requested : Law_infer.level)
    ~(inferred : Law_infer.level) ~(requires : Law_infer.level) : severity =
  let fires = Law_infer.leq requires requested in
  let sound = Law_infer.leq requires inferred in
  match (fires, sound) with
  | true, false -> Error (* the optimizer WILL apply an unsound rewrite *)
  | true, true -> Info (* will be applied, soundly *)
  | false, true -> Warning (* sound but left on the table *)
  | false, false -> Info (* would need laws the bx lacks; nothing fires *)

(** The top-level precondition: asking for an optimizer level above what
    the pedigree supports is an error even before any specific rewrite is
    found. *)
let check_level ~(requested : Law_infer.level)
    ~(inferred : Law_infer.level) ~(subject : string) : diagnostic option =
  if Law_infer.leq requested inferred then None
  else
    Some
      {
        rule = Level_mismatch;
        severity = Error;
        requires = requested;
        at = -1;
        message =
          Printf.sprintf
            "%s: optimizer level %s exceeds the level %s inferred from the \
             pedigree"
            subject
            (Law_infer.to_string requested)
            (Law_infer.to_string inferred);
      }

(** The robustness precondition: a pipeline that performs sets through a
    fallible construction ({!Law_infer.fallible}) without rollback
    protection ({!Law_infer.rollback_protected}) risks a torn entangled
    state on a mid-set failure.  Warning, not error — the pipeline is
    law-correct on its fault-free domain; it is the partial domain that
    is unprotected. *)
let check_atomicity ~(pedigree : Pedigree.t) ~(has_sets : bool)
    ~(subject : string) : diagnostic option =
  if
    has_sets
    && Law_infer.fallible pedigree
    && not (Law_infer.rollback_protected pedigree)
  then
    Some
      {
        rule = Unprotected_fallible;
        severity = Warning;
        requires = `Set_bx;
        at = -1;
        message =
          Printf.sprintf
            "%s: pipeline performs sets through fallible construction %s \
             with no atomic wrapper; a mid-set failure can tear the \
             entangled state (wrap with Atomic.harden_packed)"
            subject
            (Pedigree.to_string pedigree);
      }
  else None

(** Does a command perform any state write ([Set_]/[Modify_], in any
    branch)?  Atomicity only matters for pipelines that write. *)
let rec command_has_sets : type a b. (a, b) Command.t -> bool = function
  | Command.Skip -> false
  | Command.Seq (c1, c2) -> command_has_sets c1 || command_has_sets c2
  | Command.Set_a _ | Command.Set_b _ -> true
  | Command.Modify_a _ | Command.Modify_b _ -> true
  | Command.If_a (_, c1, c2) | Command.If_b (_, c1, c2) ->
      command_has_sets c1 || command_has_sets c2

let program_has_sets (ops : ('a, 'b) Program.op list) : bool =
  List.exists
    (function Program.Set_a _ | Program.Set_b _ -> true | _ -> false)
    ops

(* ------------------------------------------------------------------ *)
(* The abstract domain                                                 *)
(* ------------------------------------------------------------------ *)

(** A pending (not yet read) same-side set: its op index, whether the
    opposite side has been written since, and the value that was
    statically known {e before} it (when a later same-side set restores
    exactly that value, the pair cancels under the undo law — one lattice
    point below the (SS) collapse). *)
type 'v pending = { at : int; crossed : bool; prev : 'v option }

type ('a, 'b) st = {
  plain : ('a, 'b) Command.knowledge;  (** sound for any lawful set-bx *)
  comm : ('a, 'b) Command.knowledge;  (** valid only under commutation *)
  pend_a : 'a pending option;
  pend_b : 'b pending option;
}

let top = { plain = Command.nothing; comm = Command.nothing; pend_a = None; pend_b = None }

let cross (p : 'v pending option) : 'v pending option =
  Option.map (fun p -> { p with crossed = true }) p

(* ------------------------------------------------------------------ *)
(* Command lint                                                        *)
(* ------------------------------------------------------------------ *)

let lint_command (type a b) ~(requested : Law_infer.level)
    ~(inferred : Law_infer.level) ~(eq_a : a -> a -> bool)
    ~(eq_b : b -> b -> bool) (cmd : (a, b) Command.t) : diagnostic list =
  let diags = ref [] in
  let emit rule requires at message =
    let severity = decide_severity ~requested ~inferred ~requires in
    diags := { rule; severity; requires; at; message } :: !diags
  in
  let merge eq k1 k2 =
    match (k1, k2) with Some x, Some y when eq x y -> Some x | _ -> None
  in
  (* The transfer function for a set to side A (and mirrored for B),
     shared by [Set_] and the fold-through of [Modify_]. *)
  let set_a_transfer (st : (a, b) st) (i : int) (v : a) : (a, b) st =
    (match st.pend_a with
    | Some { at; crossed = false; prev = Some v0 } when eq_a v v0 ->
        emit (Undo_cancel A) `Undoable at
          (Printf.sprintf
             "set_a at op %d is undone by the set_a at op %d restoring the \
              value current before it; the undo law cancels the pair"
             at i)
    | Some { at; crossed = false; _ } ->
        emit (Collapsible_set A) `Overwriteable at
          (Printf.sprintf
             "set_a at op %d is overwritten by the set_a at op %d before \
              being read; (SS) collapses them"
             at i)
    | Some { at; crossed = true; _ } ->
        emit (Reorder_collapse A) `Commuting at
          (Printf.sprintf
             "set_a at op %d is overwritten by the set_a at op %d, but the \
              opposite side was written in between; collapsing requires \
              commutation"
             at i)
    | None -> ());
    {
      plain = { Command.known_a = Some v; known_b = None };
      comm = { st.comm with Command.known_a = Some v };
      pend_a = Some { at = i; crossed = false; prev = st.plain.Command.known_a };
      pend_b = cross st.pend_b;
    }
  in
  let set_b_transfer (st : (a, b) st) (i : int) (v : b) : (a, b) st =
    (match st.pend_b with
    | Some { at; crossed = false; prev = Some v0 } when eq_b v v0 ->
        emit (Undo_cancel B) `Undoable at
          (Printf.sprintf
             "set_b at op %d is undone by the set_b at op %d restoring the \
              value current before it; the undo law cancels the pair"
             at i)
    | Some { at; crossed = false; _ } ->
        emit (Collapsible_set B) `Overwriteable at
          (Printf.sprintf
             "set_b at op %d is overwritten by the set_b at op %d before \
              being read; (SS) collapses them"
             at i)
    | Some { at; crossed = true; _ } ->
        emit (Reorder_collapse B) `Commuting at
          (Printf.sprintf
             "set_b at op %d is overwritten by the set_b at op %d, but the \
              opposite side was written in between; collapsing requires \
              commutation"
             at i)
    | None -> ());
    {
      plain = { Command.known_a = None; known_b = Some v };
      comm = { st.comm with Command.known_b = Some v };
      pend_a = cross st.pend_a;
      pend_b = Some { at = i; crossed = false; prev = st.plain.Command.known_b };
    }
  in
  (* Pre-order walk; [i] is the index of the next operation. *)
  let rec go (i : int) (st : (a, b) st) (cmd : (a, b) Command.t) :
      int * (a, b) st =
    match cmd with
    | Command.Skip -> (i, st)
    | Command.Seq (c1, c2) ->
        let i, st = go i st c1 in
        go i st c2
    | Command.Set_a v -> (
        match (st.plain.Command.known_a, st.comm.Command.known_a) with
        | Some v0, _ when eq_a v v0 ->
            emit (Dead_set A) `Set_bx i
              "set_a of the already-current value; (GS) deletes it";
            (i + 1, st)
        | _, Some v0 when eq_a v v0 ->
            emit (Dead_set A) `Commuting i
              "set_a of a value current before the opposite-side set(s); \
               deleting it requires commutation";
            (i + 1, set_a_transfer st i v)
        | _ -> (i + 1, set_a_transfer st i v))
    | Command.Set_b v -> (
        match (st.plain.Command.known_b, st.comm.Command.known_b) with
        | Some v0, _ when eq_b v v0 ->
            emit (Dead_set B) `Set_bx i
              "set_b of the already-current value; (GS) deletes it";
            (i + 1, st)
        | _, Some v0 when eq_b v v0 ->
            emit (Dead_set B) `Commuting i
              "set_b of a value current before the opposite-side set(s); \
               deleting it requires commutation";
            (i + 1, set_b_transfer st i v)
        | _ -> (i + 1, set_b_transfer st i v))
    | Command.Modify_a f -> (
        match (st.plain.Command.known_a, st.comm.Command.known_a) with
        | Some v0, _ ->
            emit (Foldable_read A) `Set_bx i
              "modify_a reads a statically-known value; (SG) folds it to a \
               constant set";
            (* mirror the optimizer: the modify becomes [Set_a (f v0)] *)
            (i + 1, set_a_transfer st i (f v0))
        | None, Some v0 ->
            emit (Foldable_read A) `Commuting i
              "modify_a reads a value known only across opposite-side sets; \
               folding it requires commutation";
            let _ = f v0 in
            ( i + 1,
              {
                plain = { Command.known_a = None; known_b = None };
                comm = { st.comm with Command.known_a = Some (f v0) };
                (* the modify both reads (clearing the pending set) and
                   writes A; a modify is not collapsible by the
                   optimizer, so it leaves no pending set of its own *)
                pend_a = None;
                pend_b = cross st.pend_b;
              } )
        | None, None ->
            ( i + 1,
              {
                plain = { Command.known_a = None; known_b = None };
                comm = { st.comm with Command.known_a = None };
                pend_a = None;
                pend_b = cross st.pend_b;
              } ))
    | Command.Modify_b f -> (
        match (st.plain.Command.known_b, st.comm.Command.known_b) with
        | Some v0, _ ->
            emit (Foldable_read B) `Set_bx i
              "modify_b reads a statically-known value; (SG) folds it to a \
               constant set";
            (i + 1, set_b_transfer st i (f v0))
        | None, Some v0 ->
            emit (Foldable_read B) `Commuting i
              "modify_b reads a value known only across opposite-side sets; \
               folding it requires commutation";
            let _ = f v0 in
            ( i + 1,
              {
                plain = { Command.known_a = None; known_b = None };
                comm = { st.comm with Command.known_b = Some (f v0) };
                pend_a = cross st.pend_a;
                pend_b = None;
              } )
        | None, None ->
            ( i + 1,
              {
                plain = { Command.known_a = None; known_b = None };
                comm = { st.comm with Command.known_b = None };
                pend_a = cross st.pend_a;
                pend_b = None;
              } ))
    | Command.If_a (p, c1, c2) -> (
        match (st.plain.Command.known_a, st.comm.Command.known_a) with
        | Some v0, _ ->
            emit (Foldable_read A) `Set_bx i
              "if_a guard reads a statically-known value; (SG) selects the \
               branch";
            go (i + 1) st (if p v0 then c1 else c2)
        | None, comm_known ->
            (match comm_known with
            | Some _ ->
                emit (Foldable_read A) `Commuting i
                  "if_a guard is known only across opposite-side sets; \
                   folding the branch requires commutation"
            | None -> ());
            branch i { st with pend_a = None } c1 c2)
    | Command.If_b (p, c1, c2) -> (
        match (st.plain.Command.known_b, st.comm.Command.known_b) with
        | Some v0, _ ->
            emit (Foldable_read B) `Set_bx i
              "if_b guard reads a statically-known value; (SG) selects the \
               branch";
            go (i + 1) st (if p v0 then c1 else c2)
        | None, comm_known ->
            (match comm_known with
            | Some _ ->
                emit (Foldable_read B) `Commuting i
                  "if_b guard is known only across opposite-side sets; \
                   folding the branch requires commutation"
            | None -> ());
            branch i { st with pend_b = None } c1 c2)
  and branch (i : int) (st : (a, b) st) c1 c2 : int * (a, b) st =
    (* Lint both arms from the guard's post-state; join knowledge
       pointwise and drop pending sets — a collapse across an unfolded
       branch boundary is not a rewrite the optimizer performs. *)
    let st0 = { st with pend_a = None; pend_b = None } in
    let i1, st1 = go (i + 1) st0 c1 in
    let i2, st2 = go i1 st0 c2 in
    ( i2,
      {
        plain =
          {
            Command.known_a =
              merge eq_a st1.plain.Command.known_a st2.plain.Command.known_a;
            known_b =
              merge eq_b st1.plain.Command.known_b st2.plain.Command.known_b;
          };
        comm =
          {
            Command.known_a =
              merge eq_a st1.comm.Command.known_a st2.comm.Command.known_a;
            known_b =
              merge eq_b st1.comm.Command.known_b st2.comm.Command.known_b;
          };
        pend_a = None;
        pend_b = None;
      } )
  in
  let _ = go 0 top cmd in
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Program (op-list) lint                                              *)
(* ------------------------------------------------------------------ *)

let lint_program (type a b) ~(requested : Law_infer.level)
    ~(inferred : Law_infer.level) ~(eq_a : a -> a -> bool)
    ~(eq_b : b -> b -> bool) (ops : (a, b) Program.op list) : diagnostic list
    =
  let diags = ref [] in
  let emit rule requires at message =
    let severity = decide_severity ~requested ~inferred ~requires in
    diags := { rule; severity; requires; at; message } :: !diags
  in
  let collapse_pending side ~undo (p : _ pending option) (i : int) =
    match p with
    | Some { at; crossed = false; _ } when undo ->
        emit (Undo_cancel side) `Undoable at
          (Printf.sprintf
             "set_%s at op %d is undone by the set_%s at op %d restoring \
              the value current before it; the undo law cancels the pair"
             (side_name side) at (side_name side) i)
    | Some { at; crossed = false; _ } ->
        emit (Collapsible_set side) `Overwriteable at
          (Printf.sprintf
             "set_%s at op %d is overwritten by the set_%s at op %d before \
              being read; (SS) collapses them"
             (side_name side) at (side_name side) i)
    | Some { at; crossed = true; _ } ->
        emit (Reorder_collapse side) `Commuting at
          (Printf.sprintf
             "set_%s at op %d is overwritten by the set_%s at op %d across \
              opposite-side writes; collapsing requires commutation"
             (side_name side) at (side_name side) i)
    | None -> ()
  in
  let step (st : (a, b) st) (i : int) (op : (a, b) Program.op) : (a, b) st =
    match op with
    | Program.Get_a ->
        (match (st.plain.Command.known_a, st.comm.Command.known_a) with
        | Some _, _ ->
            emit (Foldable_read A) `Set_bx i
              "get_a returns a statically-known value; (SG) folds it"
        | None, Some _ ->
            emit (Foldable_read A) `Commuting i
              "get_a returns a value known only across opposite-side sets; \
               folding it requires commutation"
        | None, None -> ());
        { st with pend_a = None }
    | Program.Get_b ->
        (match (st.plain.Command.known_b, st.comm.Command.known_b) with
        | Some _, _ ->
            emit (Foldable_read B) `Set_bx i
              "get_b returns a statically-known value; (SG) folds it"
        | None, Some _ ->
            emit (Foldable_read B) `Commuting i
              "get_b returns a value known only across opposite-side sets; \
               folding it requires commutation"
        | None, None -> ());
        { st with pend_b = None }
    | Program.Set_a v -> (
        match (st.plain.Command.known_a, st.comm.Command.known_a) with
        | Some v0, _ when eq_a v v0 ->
            emit (Dead_set A) `Set_bx i
              "set_a of the already-current value; (GS) deletes it";
            st
        | plain_known, comm_known ->
            (match (plain_known, comm_known) with
            | _, Some v0 when eq_a v v0 ->
                emit (Dead_set A) `Commuting i
                  "set_a of a value current before the opposite-side \
                   set(s); deleting it requires commutation"
            | _ -> ());
            collapse_pending A
              ~undo:
                (match st.pend_a with
                | Some { prev = Some v0; _ } -> eq_a v v0
                | _ -> false)
              st.pend_a i;
            {
              plain = { Command.known_a = Some v; known_b = None };
              comm = { st.comm with Command.known_a = Some v };
              pend_a =
                Some { at = i; crossed = false; prev = st.plain.Command.known_a };
              pend_b = cross st.pend_b;
            })
    | Program.Set_b v -> (
        match (st.plain.Command.known_b, st.comm.Command.known_b) with
        | Some v0, _ when eq_b v v0 ->
            emit (Dead_set B) `Set_bx i
              "set_b of the already-current value; (GS) deletes it";
            st
        | plain_known, comm_known ->
            (match (plain_known, comm_known) with
            | _, Some v0 when eq_b v v0 ->
                emit (Dead_set B) `Commuting i
                  "set_b of a value current before the opposite-side \
                   set(s); deleting it requires commutation"
            | _ -> ());
            collapse_pending B
              ~undo:
                (match st.pend_b with
                | Some { prev = Some v0; _ } -> eq_b v v0
                | _ -> false)
              st.pend_b i;
            {
              plain = { Command.known_a = None; known_b = Some v };
              comm = { st.comm with Command.known_b = Some v };
              pend_a = cross st.pend_a;
              pend_b =
                Some { at = i; crossed = false; prev = st.plain.Command.known_b };
            })
  in
  let _ = List.fold_left (fun (st, i) op -> (step st i op, i + 1)) (top, 0) ops in
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Put-presentation lint                                               *)
(* ------------------------------------------------------------------ *)

type ('a, 'b) put_op =
  | Pget_a
  | Pget_b
  | Put_ab of 'a  (** push the A view; the updated B view is returned *)
  | Put_ba of 'b  (** push the B view; the updated A view is returned *)

let puts_have_sets (ops : ('a, 'b) put_op list) : bool =
  List.exists (function Put_ab _ | Put_ba _ -> true | _ -> false) ops

(** The abstract state for the put presentation.  Beyond the two
    knowledge copies of the set lint, a put {e returns} the propagated
    opposite view to the caller, so [ret_a]/[ret_b] track "the current
    value of this view was handed back by the most recent put" — a
    following get re-reads a value the caller already holds and is
    foldable at [`Set_bx] even though the value is not statically
    known. *)
type ('a, 'b) pst = {
  pplain : ('a, 'b) Command.knowledge;
  pcomm : ('a, 'b) Command.knowledge;
  ret_a : bool;
  ret_b : bool;
  pend_ab : 'a pending option;  (** an unobserved [Put_ab] *)
  pend_ba : 'b pending option;  (** an unobserved [Put_ba] *)
}

let ptop =
  {
    pplain = Command.nothing;
    pcomm = Command.nothing;
    ret_a = false;
    ret_b = false;
    pend_ab = None;
    pend_ba = None;
  }

let lint_puts (type a b) ~(requested : Law_infer.level)
    ~(inferred : Law_infer.level) ~(eq_a : a -> a -> bool)
    ~(eq_b : b -> b -> bool) (ops : (a, b) put_op list) : diagnostic list =
  let diags = ref [] in
  let emit rule requires at message =
    let severity = decide_severity ~requested ~inferred ~requires in
    diags := { rule; severity; requires; at; message } :: !diags
  in
  let collapse_pending side (p : _ pending option) (i : int) =
    let dir = match side with A -> "ab" | B -> "ba" in
    match p with
    | Some { at; crossed = false; _ } ->
        emit (Collapsible_put side) `Overwriteable at
          (Printf.sprintf
             "put_%s at op %d is overwritten by the put_%s at op %d before \
              either view is read; (PP) collapses them"
             dir at dir i)
    | Some { at; crossed = true; _ } ->
        emit (Reorder_collapse side) `Commuting at
          (Printf.sprintf
             "put_%s at op %d is overwritten by the put_%s at op %d across \
              opposite-direction puts; collapsing requires commutation"
             dir at dir i)
    | None -> ()
  in
  let step (st : (a, b) pst) (i : int) (op : (a, b) put_op) : (a, b) pst =
    match op with
    | Pget_a ->
        (match (st.pplain.Command.known_a, st.pcomm.Command.known_a) with
        | Some _, _ ->
            emit (Foldable_read A) `Set_bx i
              "get_a returns a statically-known view; (PG) folds it"
        | None, _ when st.ret_a ->
            emit (Foldable_read A) `Set_bx i
              "get_a re-reads the A view the preceding put_ba returned; \
               (PG) folds it to the returned value"
        | None, Some _ ->
            emit (Foldable_read A) `Commuting i
              "get_a returns a view known only across opposite-direction \
               puts; folding it requires commutation"
        | None, None -> ());
        (* any put writes both views, so reading either view observes the
           most recent put in each direction *)
        { st with pend_ab = None; pend_ba = None }
    | Pget_b ->
        (match (st.pplain.Command.known_b, st.pcomm.Command.known_b) with
        | Some _, _ ->
            emit (Foldable_read B) `Set_bx i
              "get_b returns a statically-known view; (PG) folds it"
        | None, _ when st.ret_b ->
            emit (Foldable_read B) `Set_bx i
              "get_b re-reads the B view the preceding put_ab returned; \
               (PG) folds it to the returned value"
        | None, Some _ ->
            emit (Foldable_read B) `Commuting i
              "get_b returns a view known only across opposite-direction \
               puts; folding it requires commutation"
        | None, None -> ());
        { st with pend_ab = None; pend_ba = None }
    | Put_ab v -> (
        match (st.pplain.Command.known_a, st.pcomm.Command.known_a) with
        | Some v0, _ when eq_a v v0 ->
            emit (Dead_put A) `Set_bx i
              "put_ab of the already-current A view is a state no-op; \
               (GP) replaces it with get_b";
            (* deleting the put still hands the caller the current B
               view (via get_b), so the return stays available *)
            { st with ret_b = true }
        | plain_known, comm_known ->
            (match (plain_known, comm_known) with
            | _, Some v0 when eq_a v v0 ->
                emit (Dead_put A) `Commuting i
                  "put_ab of a view current before the opposite-direction \
                   put(s); deleting it requires commutation"
            | _ -> ());
            collapse_pending A st.pend_ab i;
            {
              pplain = { Command.known_a = Some v; known_b = None };
              pcomm = { st.pcomm with Command.known_a = Some v };
              ret_a = false;
              ret_b = true;
              pend_ab = Some { at = i; crossed = false; prev = None };
              pend_ba = cross st.pend_ba;
            })
    | Put_ba v -> (
        match (st.pplain.Command.known_b, st.pcomm.Command.known_b) with
        | Some v0, _ when eq_b v v0 ->
            emit (Dead_put B) `Set_bx i
              "put_ba of the already-current B view is a state no-op; \
               (GP) replaces it with get_a";
            { st with ret_a = true }
        | plain_known, comm_known ->
            (match (plain_known, comm_known) with
            | _, Some v0 when eq_b v v0 ->
                emit (Dead_put B) `Commuting i
                  "put_ba of a view current before the opposite-direction \
                   put(s); deleting it requires commutation"
            | _ -> ());
            collapse_pending B st.pend_ba i;
            {
              pplain = { Command.known_a = None; known_b = Some v };
              pcomm = { st.pcomm with Command.known_b = Some v };
              ret_a = true;
              ret_b = false;
              pend_ab = cross st.pend_ab;
              pend_ba = Some { at = i; crossed = false; prev = None };
            })
  in
  let _ =
    List.fold_left (fun (st, i) op -> (step st i op, i + 1)) (ptop, 0) ops
  in
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Plan lint: abstract domains over relational query pipelines         *)
(* ------------------------------------------------------------------ *)

module Rq = Esm_relational.Query
module Rp = Esm_relational.Pred
module Rs = Esm_relational.Schema
module Rv = Esm_relational.Value

(** The value-interval domain: an inclusive integer range with optional
    bounds.  [Known] literals embed as singletons. *)
type interval = { lo : int option; hi : int option }

let ival_meet (i1 : interval) (i2 : interval) : interval =
  let omax a b =
    match (a, b) with
    | Some x, Some y -> Some (max x y)
    | (Some _ as s), None | None, (Some _ as s) -> s
    | None, None -> None
  in
  let omin a b =
    match (a, b) with
    | Some x, Some y -> Some (min x y)
    | (Some _ as s), None | None, (Some _ as s) -> s
    | None, None -> None
  in
  { lo = omax i1.lo i2.lo; hi = omin i1.hi i2.hi }

let ival_empty { lo; hi } =
  match (lo, hi) with Some l, Some h -> l > h | _ -> false

let ival_singleton { lo; hi } =
  match (lo, hi) with Some l, Some h when l = h -> Some l | _ -> None

(** What the accumulated [where] stages prove about a column: pinned to a
    literal, or confined to an integer interval. *)
type fact = Feq of Rv.t | Fint of interval

type facts = (string * fact) list

(** The abstract value of a predicate expression under [facts]. *)
type abs = Known of Rv.t | Ranged of interval | Anything

let abs_of_expr (facts : facts) : Rp.expr -> abs = function
  | Rp.Lit v -> Known v
  | Rp.Col c -> (
      match List.assoc_opt c facts with
      | Some (Feq v) -> Known v
      | Some (Fint iv) -> Ranged iv
      | None -> Anything)

let as_interval = function
  | Known (Rv.Int n) -> Some { lo = Some n; hi = Some n }
  | Ranged iv -> Some iv
  | _ -> None

(** Three-valued equality: [Some b] when the facts decide it. *)
let abs_eq (a : abs) (b : abs) : bool option =
  match (a, b) with
  | Known x, Known y -> Some (Rv.equal x y)
  | _ -> (
      match (as_interval a, as_interval b) with
      | Some i1, Some i2 ->
          if ival_empty (ival_meet i1 i2) then Some false
          else (
            match (ival_singleton i1, ival_singleton i2) with
            | Some x, Some y -> Some (x = y)
            | _ -> None)
      | _ -> None)

(** Three-valued comparison ([strict] for [<], else [<=]). *)
let abs_cmp ~strict (a : abs) (b : abs) : bool option =
  match (a, b) with
  | Known x, Known y ->
      let c = Rv.compare x y in
      Some (if strict then c < 0 else c <= 0)
  | _ -> (
      match (as_interval a, as_interval b) with
      | Some i1, Some i2 -> (
          match (i1.hi, i2.lo) with
          | Some h1, Some l2 when if strict then h1 < l2 else h1 <= l2 ->
              Some true
          | _ -> (
              match (i1.lo, i2.hi) with
              | Some l1, Some h2 when if strict then l1 >= h2 else l1 > h2 ->
                  Some false
              | _ -> None))
      | _ -> None)

(** Three-valued predicate evaluation under the accumulated facts: the
    predicate-implication half of the domain.  [Some true] means the
    facts imply the predicate (it filters nothing); [Some false] means
    they contradict it (it filters everything). *)
let rec abs_pred (facts : facts) : Rp.t -> bool option = function
  | Rp.Const b -> Some b
  | Rp.Eq (e1, e2) -> abs_eq (abs_of_expr facts e1) (abs_of_expr facts e2)
  | Rp.Lt (e1, e2) ->
      abs_cmp ~strict:true (abs_of_expr facts e1) (abs_of_expr facts e2)
  | Rp.Le (e1, e2) ->
      abs_cmp ~strict:false (abs_of_expr facts e1) (abs_of_expr facts e2)
  | Rp.And (p1, p2) -> (
      match (abs_pred facts p1, abs_pred facts p2) with
      | Some false, _ | _, Some false -> Some false
      | Some true, Some true -> Some true
      | _ -> None)
  | Rp.Or (p1, p2) -> (
      match (abs_pred facts p1, abs_pred facts p2) with
      | Some true, _ | _, Some true -> Some true
      | Some false, Some false -> Some false
      | _ -> None)
  | Rp.Not p -> Option.map not (abs_pred facts p)

let rec conjuncts : Rp.t -> Rp.t list = function
  | Rp.And (p1, p2) -> conjuncts p1 @ conjuncts p2
  | p -> [ p ]

let add_fact (facts : facts) (c : string) (f : fact) : facts =
  let f' =
    match (List.assoc_opt c facts, f) with
    | None, f | Some (Fint _), (Feq _ as f) -> f
    | Some (Feq v), _ -> Feq v (* an equality is already the strongest *)
    | Some (Fint i1), Fint i2 -> Fint (ival_meet i1 i2)
  in
  (c, f') :: List.remove_assoc c facts

(** Absorb one conjunct of a surviving [where] into the fact base.
    Disjunctions and negations are skipped (sound: facts only shrink the
    concretisation). *)
let assimilate_atom (facts : facts) : Rp.t -> facts = function
  | Rp.Eq (Rp.Col c, Rp.Lit v) | Rp.Eq (Rp.Lit v, Rp.Col c) ->
      add_fact facts c (Feq v)
  | Rp.Le (Rp.Col c, Rp.Lit (Rv.Int n)) ->
      add_fact facts c (Fint { lo = None; hi = Some n })
  | Rp.Lt (Rp.Col c, Rp.Lit (Rv.Int n)) ->
      add_fact facts c (Fint { lo = None; hi = Some (n - 1) })
  | Rp.Le (Rp.Lit (Rv.Int n), Rp.Col c) ->
      add_fact facts c (Fint { lo = Some n; hi = None })
  | Rp.Lt (Rp.Lit (Rv.Int n), Rp.Col c) ->
      add_fact facts c (Fint { lo = Some (n + 1); hi = None })
  | _ -> facts

(** The abstract state threaded through a plan walk: the schema at this
    point ([None] once a set operation or join makes it unknown), the key
    columns under their current names, and the accumulated facts. *)
type plan_state = {
  pschema : Rs.t option;
  pkey : string list;
  pfacts : facts;
}

let lint_plan ~(schema : Rs.t) ~(key : string list) (q : Rq.t) :
    diagnostic list =
  let diags = ref [] in
  let emit rule severity requires at message =
    diags := { rule; severity; requires; at; message } :: !diags
  in
  let check_columns (st : plan_state) (i : int) (stage : string)
      (cols : string list) =
    match st.pschema with
    | None -> ()
    | Some sch ->
        List.iter
          (fun c ->
            if not (Rs.mem sch c) then
              emit Unknown_column Error `Set_bx i
                (Printf.sprintf
                   "%s references column %S absent from the schema at this \
                    stage (%s)"
                   stage c (Rs.to_string sch)))
          (List.sort_uniq String.compare cols)
  in
  (* [i] is the pipeline-order index of the next stage (base tables
     included), matching evaluation order. *)
  let rec go (i : int) (q : Rq.t) : int * plan_state =
    match q with
    | Rq.Base _ -> (i + 1, { pschema = Some schema; pkey = key; pfacts = [] })
    | Rq.Where (p, q') -> (
        let i, st = go i q' in
        check_columns st i "where" (Rp.columns_used p);
        match abs_pred st.pfacts p with
        | Some true ->
            emit Foldable_where Info `Set_bx i
              (Format.asprintf
                 "where %a is implied by earlier stages; the filter is the \
                  identity and folds away"
                 Rp.pp p);
            (i + 1, st)
        | Some false ->
            emit Dead_where Warning `Set_bx i
              (Format.asprintf
                 "where %a is statically false under the facts accumulated \
                  from earlier stages; the view is provably empty"
                 Rp.pp p);
            (i + 1, st)
        | None ->
            (* assimilate conjunct by conjunct, checking each against the
               facts gathered so far — catches contradictions between
               conjuncts of a single clause (a = 1 and a = 2) *)
            let dead = ref false in
            let pfacts =
              List.fold_left
                (fun facts cj ->
                  if !dead then facts
                  else
                    match abs_pred facts cj with
                    | Some false ->
                        dead := true;
                        facts
                    | _ -> assimilate_atom facts cj)
                st.pfacts (conjuncts p)
            in
            if !dead then
              emit Dead_where Warning `Set_bx i
                (Format.asprintf
                   "where %a contains contradictory conjuncts; the view is \
                    provably empty"
                   Rp.pp p);
            (i + 1, { st with pfacts }))
    | Rq.Project (cols, q') -> (
        let i, st = go i q' in
        check_columns st i "select" cols;
        match st.pschema with
        | None -> (i + 1, st)
        | Some sch ->
            if List.exists (fun c -> not (Rs.mem sch c)) cols then
              (* unknown columns already reported; the downstream schema
                 is unknowable *)
              (i + 1, { st with pschema = None; pfacts = [] })
            else begin
              let dropped =
                List.filter (fun k -> not (List.mem k cols)) st.pkey
              in
              if dropped <> [] then
                emit Dropped_key Error `Set_bx i
                  (Printf.sprintf
                     "select drops key column(s) %s; the projection is not \
                      updatable"
                     (String.concat ", " dropped));
              if
                List.for_all (fun c -> List.mem c cols) (Rs.column_names sch)
              then
                emit Foldable_stage Info `Set_bx i
                  "select keeps every column; the stage folds away";
              let pschema = try Some (Rs.project sch cols) with _ -> None in
              ( i + 1,
                {
                  st with
                  pschema;
                  pfacts =
                    List.filter (fun (c, _) -> List.mem c cols) st.pfacts;
                } )
            end)
    | Rq.Rename (mapping, q') -> (
        let i, st = go i q' in
        check_columns st i "rename" (List.map fst mapping);
        if List.for_all (fun (o, n) -> String.equal o n) mapping then
          emit Foldable_stage Info `Set_bx i
            "rename maps every column to itself; the stage folds away";
        match st.pschema with
        | Some sch when List.for_all (fun (o, _) -> Rs.mem sch o) mapping ->
            let ren c =
              match List.assoc_opt c mapping with Some n -> n | None -> c
            in
            let pschema = try Some (Rs.rename sch mapping) with _ -> None in
            ( i + 1,
              {
                pschema;
                pkey = List.map ren st.pkey;
                pfacts = List.map (fun (c, f) -> (ren c, f)) st.pfacts;
              } )
        | _ -> (i + 1, { st with pschema = None; pfacts = [] }))
    | Rq.Join (q1, q2) ->
        let i, _ = go i q1 in
        let i, _ = go i q2 in
        emit Unproven_join Info `Undoable i
          "join carries no functional-dependency evidence; it compiles to \
           set-bx unless FDs prove the view keys determine the right-hand \
           rows (the join lemma)";
        (i + 1, { pschema = None; pkey = key; pfacts = [] })
    | Rq.Union (q1, q2) | Rq.Diff (q1, q2) | Rq.Product (q1, q2) ->
        let i, _ = go i q1 in
        let i, _ = go i q2 in
        (i + 1, { pschema = None; pkey = key; pfacts = [] })
  in
  let _ = go 0 q in
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* JSON rendering                                                      *)
(* ------------------------------------------------------------------ *)

let json_escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let diagnostic_to_json (d : diagnostic) : string =
  Printf.sprintf
    {|{"rule":"%s","severity":"%s","requires":"%s","at":%d,"message":"%s"}|}
    (rule_name d.rule) (severity_name d.severity)
    (Law_infer.to_string d.requires)
    d.at (json_escape d.message)

let diagnostics_to_json (ds : diagnostic list) : string =
  "[" ^ String.concat "," (List.map diagnostic_to_json ds) ^ "]"
