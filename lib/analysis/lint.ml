(** Law-level lint: an abstract interpretation over the command language
    ({!Esm_core.Command.t}) and the first-order op language
    ({!Esm_core.Program.op}) that reports every law-driven rewrite
    opportunity together with the {e minimum law level that justifies
    it}, and checks those requirements against the level statically
    inferred from the target bx's pedigree ({!Law_infer}).

    The analysis runs the optimizer's own knowledge domain
    ({!Esm_core.Command.knowledge}) twice in lockstep:

    - [plain] propagates knowledge soundly for {e every} lawful set-bx —
      a set invalidates the opposite view (entanglement);
    - [comm] retains the opposite view across sets, which is valid only
      under §3.4 commutation.

    A rewrite enabled by [plain] requires only [`Set_bx]; one enabled
    only by [comm] requires [`Commuting].  Same-side set collapses are
    tracked syntactically: an unread set overwritten by a later
    same-side set requires (SS) ([`Overwriteable]) if nothing wrote the
    opposite side in between, and full commutation ([`Commuting]) if
    something did — collapsing then reorders the writes.

    Severity is decided against the two levels in play: [requested], the
    level the optimizer will be run at, and [inferred], the level the
    pedigree supports.  A rewrite that {e fires} (requires ≤ requested)
    but is {e unsound} (requires > inferred) is an [Error] — the
    optimizer at that level will miscompile this exact spot.  A sound
    rewrite that fires is [Info]; a sound one the requested level leaves
    on the table is a [Warning] (raise the level); an unjustifiable
    opportunity that does not fire is [Info]. *)

open Esm_core

type side = A | B

let side_name = function A -> "a" | B -> "b"

type rule =
  | Dead_set of side  (** (GS): setting a statically-known current value *)
  | Foldable_read of side
      (** (SG): a read (modify input, branch guard, get) whose value is
          statically known *)
  | Collapsible_set of side
      (** (SS): an unread set overwritten by a later same-side set *)
  | Reorder_collapse of side
      (** a same-side collapse across opposite-side writes — requires
          commutation to reorder first *)
  | Dead_put of side
      (** put presentation, (GP) analogue of (GS): putting the
          statically-known current view is a state no-op *)
  | Collapsible_put of side
      (** put presentation, (PP) analogue of (SS): an unobserved put
          overwritten by a later same-direction put *)
  | Level_mismatch
      (** the requested optimizer level exceeds the inferred law level *)
  | Unprotected_fallible
      (** a pipeline performing sets through a fallible construction with
          no [atomic] wrapper: a mid-set failure can tear the entangled
          state *)

let rule_name = function
  | Dead_set s -> "dead-set-" ^ side_name s
  | Foldable_read s -> "foldable-read-" ^ side_name s
  | Collapsible_set s -> "collapsible-set-" ^ side_name s
  | Reorder_collapse s -> "reorder-collapse-" ^ side_name s
  | Dead_put s -> "dead-put-" ^ side_name s
  | Collapsible_put s -> "collapsible-put-" ^ side_name s
  | Level_mismatch -> "level-mismatch"
  | Unprotected_fallible -> "unprotected-fallible"

type severity = Info | Warning | Error

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

type diagnostic = {
  rule : rule;
  severity : severity;
  requires : Law_infer.level;  (** minimum law level justifying the rewrite *)
  at : int;  (** pre-order index of the flagged operation *)
  message : string;
}

let is_error (d : diagnostic) = d.severity = Error
let has_errors (ds : diagnostic list) = List.exists is_error ds

let pp_diagnostic fmt (d : diagnostic) =
  Format.fprintf fmt "%s: [%s] op %d: %s (requires %s)"
    (severity_name d.severity) (rule_name d.rule) d.at d.message
    (Law_infer.to_string d.requires)

(* ------------------------------------------------------------------ *)
(* Severity policy                                                     *)
(* ------------------------------------------------------------------ *)

let decide_severity ~(requested : Law_infer.level)
    ~(inferred : Law_infer.level) ~(requires : Law_infer.level) : severity =
  let fires = Law_infer.leq requires requested in
  let sound = Law_infer.leq requires inferred in
  match (fires, sound) with
  | true, false -> Error (* the optimizer WILL apply an unsound rewrite *)
  | true, true -> Info (* will be applied, soundly *)
  | false, true -> Warning (* sound but left on the table *)
  | false, false -> Info (* would need laws the bx lacks; nothing fires *)

(** The top-level precondition: asking for an optimizer level above what
    the pedigree supports is an error even before any specific rewrite is
    found. *)
let check_level ~(requested : Law_infer.level)
    ~(inferred : Law_infer.level) ~(subject : string) : diagnostic option =
  if Law_infer.leq requested inferred then None
  else
    Some
      {
        rule = Level_mismatch;
        severity = Error;
        requires = requested;
        at = -1;
        message =
          Printf.sprintf
            "%s: optimizer level %s exceeds the level %s inferred from the \
             pedigree"
            subject
            (Law_infer.to_string requested)
            (Law_infer.to_string inferred);
      }

(** The robustness precondition: a pipeline that performs sets through a
    fallible construction ({!Law_infer.fallible}) without rollback
    protection ({!Law_infer.rollback_protected}) risks a torn entangled
    state on a mid-set failure.  Warning, not error — the pipeline is
    law-correct on its fault-free domain; it is the partial domain that
    is unprotected. *)
let check_atomicity ~(pedigree : Pedigree.t) ~(has_sets : bool)
    ~(subject : string) : diagnostic option =
  if
    has_sets
    && Law_infer.fallible pedigree
    && not (Law_infer.rollback_protected pedigree)
  then
    Some
      {
        rule = Unprotected_fallible;
        severity = Warning;
        requires = `Set_bx;
        at = -1;
        message =
          Printf.sprintf
            "%s: pipeline performs sets through fallible construction %s \
             with no atomic wrapper; a mid-set failure can tear the \
             entangled state (wrap with Atomic.harden_packed)"
            subject
            (Pedigree.to_string pedigree);
      }
  else None

(** Does a command perform any state write ([Set_]/[Modify_], in any
    branch)?  Atomicity only matters for pipelines that write. *)
let rec command_has_sets : type a b. (a, b) Command.t -> bool = function
  | Command.Skip -> false
  | Command.Seq (c1, c2) -> command_has_sets c1 || command_has_sets c2
  | Command.Set_a _ | Command.Set_b _ -> true
  | Command.Modify_a _ | Command.Modify_b _ -> true
  | Command.If_a (_, c1, c2) | Command.If_b (_, c1, c2) ->
      command_has_sets c1 || command_has_sets c2

let program_has_sets (ops : ('a, 'b) Program.op list) : bool =
  List.exists
    (function Program.Set_a _ | Program.Set_b _ -> true | _ -> false)
    ops

(* ------------------------------------------------------------------ *)
(* The abstract domain                                                 *)
(* ------------------------------------------------------------------ *)

(** A pending (not yet read) same-side set: its op index, and whether the
    opposite side has been written since. *)
type pending = { at : int; crossed : bool }

type ('a, 'b) st = {
  plain : ('a, 'b) Command.knowledge;  (** sound for any lawful set-bx *)
  comm : ('a, 'b) Command.knowledge;  (** valid only under commutation *)
  pend_a : pending option;
  pend_b : pending option;
}

let top = { plain = Command.nothing; comm = Command.nothing; pend_a = None; pend_b = None }

let cross (p : pending option) : pending option =
  Option.map (fun p -> { p with crossed = true }) p

(* ------------------------------------------------------------------ *)
(* Command lint                                                        *)
(* ------------------------------------------------------------------ *)

let lint_command (type a b) ~(requested : Law_infer.level)
    ~(inferred : Law_infer.level) ~(eq_a : a -> a -> bool)
    ~(eq_b : b -> b -> bool) (cmd : (a, b) Command.t) : diagnostic list =
  let diags = ref [] in
  let emit rule requires at message =
    let severity = decide_severity ~requested ~inferred ~requires in
    diags := { rule; severity; requires; at; message } :: !diags
  in
  let merge eq k1 k2 =
    match (k1, k2) with Some x, Some y when eq x y -> Some x | _ -> None
  in
  (* The transfer function for a set to side A (and mirrored for B),
     shared by [Set_] and the fold-through of [Modify_]. *)
  let set_a_transfer (st : (a, b) st) (i : int) (v : a) : (a, b) st =
    (match st.pend_a with
    | Some { at; crossed = false } ->
        emit (Collapsible_set A) `Overwriteable at
          (Printf.sprintf
             "set_a at op %d is overwritten by the set_a at op %d before \
              being read; (SS) collapses them"
             at i)
    | Some { at; crossed = true } ->
        emit (Reorder_collapse A) `Commuting at
          (Printf.sprintf
             "set_a at op %d is overwritten by the set_a at op %d, but the \
              opposite side was written in between; collapsing requires \
              commutation"
             at i)
    | None -> ());
    {
      plain = { Command.known_a = Some v; known_b = None };
      comm = { st.comm with Command.known_a = Some v };
      pend_a = Some { at = i; crossed = false };
      pend_b = cross st.pend_b;
    }
  in
  let set_b_transfer (st : (a, b) st) (i : int) (v : b) : (a, b) st =
    (match st.pend_b with
    | Some { at; crossed = false } ->
        emit (Collapsible_set B) `Overwriteable at
          (Printf.sprintf
             "set_b at op %d is overwritten by the set_b at op %d before \
              being read; (SS) collapses them"
             at i)
    | Some { at; crossed = true } ->
        emit (Reorder_collapse B) `Commuting at
          (Printf.sprintf
             "set_b at op %d is overwritten by the set_b at op %d, but the \
              opposite side was written in between; collapsing requires \
              commutation"
             at i)
    | None -> ());
    {
      plain = { Command.known_a = None; known_b = Some v };
      comm = { st.comm with Command.known_b = Some v };
      pend_a = cross st.pend_a;
      pend_b = Some { at = i; crossed = false };
    }
  in
  (* Pre-order walk; [i] is the index of the next operation. *)
  let rec go (i : int) (st : (a, b) st) (cmd : (a, b) Command.t) :
      int * (a, b) st =
    match cmd with
    | Command.Skip -> (i, st)
    | Command.Seq (c1, c2) ->
        let i, st = go i st c1 in
        go i st c2
    | Command.Set_a v -> (
        match (st.plain.Command.known_a, st.comm.Command.known_a) with
        | Some v0, _ when eq_a v v0 ->
            emit (Dead_set A) `Set_bx i
              "set_a of the already-current value; (GS) deletes it";
            (i + 1, st)
        | _, Some v0 when eq_a v v0 ->
            emit (Dead_set A) `Commuting i
              "set_a of a value current before the opposite-side set(s); \
               deleting it requires commutation";
            (i + 1, set_a_transfer st i v)
        | _ -> (i + 1, set_a_transfer st i v))
    | Command.Set_b v -> (
        match (st.plain.Command.known_b, st.comm.Command.known_b) with
        | Some v0, _ when eq_b v v0 ->
            emit (Dead_set B) `Set_bx i
              "set_b of the already-current value; (GS) deletes it";
            (i + 1, st)
        | _, Some v0 when eq_b v v0 ->
            emit (Dead_set B) `Commuting i
              "set_b of a value current before the opposite-side set(s); \
               deleting it requires commutation";
            (i + 1, set_b_transfer st i v)
        | _ -> (i + 1, set_b_transfer st i v))
    | Command.Modify_a f -> (
        match (st.plain.Command.known_a, st.comm.Command.known_a) with
        | Some v0, _ ->
            emit (Foldable_read A) `Set_bx i
              "modify_a reads a statically-known value; (SG) folds it to a \
               constant set";
            (* mirror the optimizer: the modify becomes [Set_a (f v0)] *)
            (i + 1, set_a_transfer st i (f v0))
        | None, Some v0 ->
            emit (Foldable_read A) `Commuting i
              "modify_a reads a value known only across opposite-side sets; \
               folding it requires commutation";
            let _ = f v0 in
            ( i + 1,
              {
                plain = { Command.known_a = None; known_b = None };
                comm = { st.comm with Command.known_a = Some (f v0) };
                (* the modify both reads (clearing the pending set) and
                   writes A; a modify is not collapsible by the
                   optimizer, so it leaves no pending set of its own *)
                pend_a = None;
                pend_b = cross st.pend_b;
              } )
        | None, None ->
            ( i + 1,
              {
                plain = { Command.known_a = None; known_b = None };
                comm = { st.comm with Command.known_a = None };
                pend_a = None;
                pend_b = cross st.pend_b;
              } ))
    | Command.Modify_b f -> (
        match (st.plain.Command.known_b, st.comm.Command.known_b) with
        | Some v0, _ ->
            emit (Foldable_read B) `Set_bx i
              "modify_b reads a statically-known value; (SG) folds it to a \
               constant set";
            (i + 1, set_b_transfer st i (f v0))
        | None, Some v0 ->
            emit (Foldable_read B) `Commuting i
              "modify_b reads a value known only across opposite-side sets; \
               folding it requires commutation";
            let _ = f v0 in
            ( i + 1,
              {
                plain = { Command.known_a = None; known_b = None };
                comm = { st.comm with Command.known_b = Some (f v0) };
                pend_a = cross st.pend_a;
                pend_b = None;
              } )
        | None, None ->
            ( i + 1,
              {
                plain = { Command.known_a = None; known_b = None };
                comm = { st.comm with Command.known_b = None };
                pend_a = cross st.pend_a;
                pend_b = None;
              } ))
    | Command.If_a (p, c1, c2) -> (
        match (st.plain.Command.known_a, st.comm.Command.known_a) with
        | Some v0, _ ->
            emit (Foldable_read A) `Set_bx i
              "if_a guard reads a statically-known value; (SG) selects the \
               branch";
            go (i + 1) st (if p v0 then c1 else c2)
        | None, comm_known ->
            (match comm_known with
            | Some _ ->
                emit (Foldable_read A) `Commuting i
                  "if_a guard is known only across opposite-side sets; \
                   folding the branch requires commutation"
            | None -> ());
            branch i { st with pend_a = None } c1 c2)
    | Command.If_b (p, c1, c2) -> (
        match (st.plain.Command.known_b, st.comm.Command.known_b) with
        | Some v0, _ ->
            emit (Foldable_read B) `Set_bx i
              "if_b guard reads a statically-known value; (SG) selects the \
               branch";
            go (i + 1) st (if p v0 then c1 else c2)
        | None, comm_known ->
            (match comm_known with
            | Some _ ->
                emit (Foldable_read B) `Commuting i
                  "if_b guard is known only across opposite-side sets; \
                   folding the branch requires commutation"
            | None -> ());
            branch i { st with pend_b = None } c1 c2)
  and branch (i : int) (st : (a, b) st) c1 c2 : int * (a, b) st =
    (* Lint both arms from the guard's post-state; join knowledge
       pointwise and drop pending sets — a collapse across an unfolded
       branch boundary is not a rewrite the optimizer performs. *)
    let st0 = { st with pend_a = None; pend_b = None } in
    let i1, st1 = go (i + 1) st0 c1 in
    let i2, st2 = go i1 st0 c2 in
    ( i2,
      {
        plain =
          {
            Command.known_a =
              merge eq_a st1.plain.Command.known_a st2.plain.Command.known_a;
            known_b =
              merge eq_b st1.plain.Command.known_b st2.plain.Command.known_b;
          };
        comm =
          {
            Command.known_a =
              merge eq_a st1.comm.Command.known_a st2.comm.Command.known_a;
            known_b =
              merge eq_b st1.comm.Command.known_b st2.comm.Command.known_b;
          };
        pend_a = None;
        pend_b = None;
      } )
  in
  let _ = go 0 top cmd in
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Program (op-list) lint                                              *)
(* ------------------------------------------------------------------ *)

let lint_program (type a b) ~(requested : Law_infer.level)
    ~(inferred : Law_infer.level) ~(eq_a : a -> a -> bool)
    ~(eq_b : b -> b -> bool) (ops : (a, b) Program.op list) : diagnostic list
    =
  let diags = ref [] in
  let emit rule requires at message =
    let severity = decide_severity ~requested ~inferred ~requires in
    diags := { rule; severity; requires; at; message } :: !diags
  in
  let collapse_pending side (p : pending option) (i : int) =
    match p with
    | Some { at; crossed = false } ->
        emit (Collapsible_set side) `Overwriteable at
          (Printf.sprintf
             "set_%s at op %d is overwritten by the set_%s at op %d before \
              being read; (SS) collapses them"
             (side_name side) at (side_name side) i)
    | Some { at; crossed = true } ->
        emit (Reorder_collapse side) `Commuting at
          (Printf.sprintf
             "set_%s at op %d is overwritten by the set_%s at op %d across \
              opposite-side writes; collapsing requires commutation"
             (side_name side) at (side_name side) i)
    | None -> ()
  in
  let step (st : (a, b) st) (i : int) (op : (a, b) Program.op) : (a, b) st =
    match op with
    | Program.Get_a ->
        (match (st.plain.Command.known_a, st.comm.Command.known_a) with
        | Some _, _ ->
            emit (Foldable_read A) `Set_bx i
              "get_a returns a statically-known value; (SG) folds it"
        | None, Some _ ->
            emit (Foldable_read A) `Commuting i
              "get_a returns a value known only across opposite-side sets; \
               folding it requires commutation"
        | None, None -> ());
        { st with pend_a = None }
    | Program.Get_b ->
        (match (st.plain.Command.known_b, st.comm.Command.known_b) with
        | Some _, _ ->
            emit (Foldable_read B) `Set_bx i
              "get_b returns a statically-known value; (SG) folds it"
        | None, Some _ ->
            emit (Foldable_read B) `Commuting i
              "get_b returns a value known only across opposite-side sets; \
               folding it requires commutation"
        | None, None -> ());
        { st with pend_b = None }
    | Program.Set_a v -> (
        match (st.plain.Command.known_a, st.comm.Command.known_a) with
        | Some v0, _ when eq_a v v0 ->
            emit (Dead_set A) `Set_bx i
              "set_a of the already-current value; (GS) deletes it";
            st
        | plain_known, comm_known ->
            (match (plain_known, comm_known) with
            | _, Some v0 when eq_a v v0 ->
                emit (Dead_set A) `Commuting i
                  "set_a of a value current before the opposite-side \
                   set(s); deleting it requires commutation"
            | _ -> ());
            collapse_pending A st.pend_a i;
            {
              plain = { Command.known_a = Some v; known_b = None };
              comm = { st.comm with Command.known_a = Some v };
              pend_a = Some { at = i; crossed = false };
              pend_b = cross st.pend_b;
            })
    | Program.Set_b v -> (
        match (st.plain.Command.known_b, st.comm.Command.known_b) with
        | Some v0, _ when eq_b v v0 ->
            emit (Dead_set B) `Set_bx i
              "set_b of the already-current value; (GS) deletes it";
            st
        | plain_known, comm_known ->
            (match (plain_known, comm_known) with
            | _, Some v0 when eq_b v v0 ->
                emit (Dead_set B) `Commuting i
                  "set_b of a value current before the opposite-side \
                   set(s); deleting it requires commutation"
            | _ -> ());
            collapse_pending B st.pend_b i;
            {
              plain = { Command.known_a = None; known_b = Some v };
              comm = { st.comm with Command.known_b = Some v };
              pend_a = cross st.pend_a;
              pend_b = Some { at = i; crossed = false };
            })
  in
  let _ = List.fold_left (fun (st, i) op -> (step st i op, i + 1)) (top, 0) ops in
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Put-presentation lint                                               *)
(* ------------------------------------------------------------------ *)

type ('a, 'b) put_op =
  | Pget_a
  | Pget_b
  | Put_ab of 'a  (** push the A view; the updated B view is returned *)
  | Put_ba of 'b  (** push the B view; the updated A view is returned *)

let puts_have_sets (ops : ('a, 'b) put_op list) : bool =
  List.exists (function Put_ab _ | Put_ba _ -> true | _ -> false) ops

(** The abstract state for the put presentation.  Beyond the two
    knowledge copies of the set lint, a put {e returns} the propagated
    opposite view to the caller, so [ret_a]/[ret_b] track "the current
    value of this view was handed back by the most recent put" — a
    following get re-reads a value the caller already holds and is
    foldable at [`Set_bx] even though the value is not statically
    known. *)
type ('a, 'b) pst = {
  pplain : ('a, 'b) Command.knowledge;
  pcomm : ('a, 'b) Command.knowledge;
  ret_a : bool;
  ret_b : bool;
  pend_ab : pending option;  (** an unobserved [Put_ab] *)
  pend_ba : pending option;  (** an unobserved [Put_ba] *)
}

let ptop =
  {
    pplain = Command.nothing;
    pcomm = Command.nothing;
    ret_a = false;
    ret_b = false;
    pend_ab = None;
    pend_ba = None;
  }

let lint_puts (type a b) ~(requested : Law_infer.level)
    ~(inferred : Law_infer.level) ~(eq_a : a -> a -> bool)
    ~(eq_b : b -> b -> bool) (ops : (a, b) put_op list) : diagnostic list =
  let diags = ref [] in
  let emit rule requires at message =
    let severity = decide_severity ~requested ~inferred ~requires in
    diags := { rule; severity; requires; at; message } :: !diags
  in
  let collapse_pending side (p : pending option) (i : int) =
    let dir = match side with A -> "ab" | B -> "ba" in
    match p with
    | Some { at; crossed = false } ->
        emit (Collapsible_put side) `Overwriteable at
          (Printf.sprintf
             "put_%s at op %d is overwritten by the put_%s at op %d before \
              either view is read; (PP) collapses them"
             dir at dir i)
    | Some { at; crossed = true } ->
        emit (Reorder_collapse side) `Commuting at
          (Printf.sprintf
             "put_%s at op %d is overwritten by the put_%s at op %d across \
              opposite-direction puts; collapsing requires commutation"
             dir at dir i)
    | None -> ()
  in
  let step (st : (a, b) pst) (i : int) (op : (a, b) put_op) : (a, b) pst =
    match op with
    | Pget_a ->
        (match (st.pplain.Command.known_a, st.pcomm.Command.known_a) with
        | Some _, _ ->
            emit (Foldable_read A) `Set_bx i
              "get_a returns a statically-known view; (PG) folds it"
        | None, _ when st.ret_a ->
            emit (Foldable_read A) `Set_bx i
              "get_a re-reads the A view the preceding put_ba returned; \
               (PG) folds it to the returned value"
        | None, Some _ ->
            emit (Foldable_read A) `Commuting i
              "get_a returns a view known only across opposite-direction \
               puts; folding it requires commutation"
        | None, None -> ());
        (* any put writes both views, so reading either view observes the
           most recent put in each direction *)
        { st with pend_ab = None; pend_ba = None }
    | Pget_b ->
        (match (st.pplain.Command.known_b, st.pcomm.Command.known_b) with
        | Some _, _ ->
            emit (Foldable_read B) `Set_bx i
              "get_b returns a statically-known view; (PG) folds it"
        | None, _ when st.ret_b ->
            emit (Foldable_read B) `Set_bx i
              "get_b re-reads the B view the preceding put_ab returned; \
               (PG) folds it to the returned value"
        | None, Some _ ->
            emit (Foldable_read B) `Commuting i
              "get_b returns a view known only across opposite-direction \
               puts; folding it requires commutation"
        | None, None -> ());
        { st with pend_ab = None; pend_ba = None }
    | Put_ab v -> (
        match (st.pplain.Command.known_a, st.pcomm.Command.known_a) with
        | Some v0, _ when eq_a v v0 ->
            emit (Dead_put A) `Set_bx i
              "put_ab of the already-current A view is a state no-op; \
               (GP) replaces it with get_b";
            (* deleting the put still hands the caller the current B
               view (via get_b), so the return stays available *)
            { st with ret_b = true }
        | plain_known, comm_known ->
            (match (plain_known, comm_known) with
            | _, Some v0 when eq_a v v0 ->
                emit (Dead_put A) `Commuting i
                  "put_ab of a view current before the opposite-direction \
                   put(s); deleting it requires commutation"
            | _ -> ());
            collapse_pending A st.pend_ab i;
            {
              pplain = { Command.known_a = Some v; known_b = None };
              pcomm = { st.pcomm with Command.known_a = Some v };
              ret_a = false;
              ret_b = true;
              pend_ab = Some { at = i; crossed = false };
              pend_ba = cross st.pend_ba;
            })
    | Put_ba v -> (
        match (st.pplain.Command.known_b, st.pcomm.Command.known_b) with
        | Some v0, _ when eq_b v v0 ->
            emit (Dead_put B) `Set_bx i
              "put_ba of the already-current B view is a state no-op; \
               (GP) replaces it with get_a";
            { st with ret_a = true }
        | plain_known, comm_known ->
            (match (plain_known, comm_known) with
            | _, Some v0 when eq_b v v0 ->
                emit (Dead_put B) `Commuting i
                  "put_ba of a view current before the opposite-direction \
                   put(s); deleting it requires commutation"
            | _ -> ());
            collapse_pending B st.pend_ba i;
            {
              pplain = { Command.known_a = None; known_b = Some v };
              pcomm = { st.pcomm with Command.known_b = Some v };
              ret_a = true;
              ret_b = false;
              pend_ab = cross st.pend_ab;
              pend_ba = Some { at = i; crossed = false };
            })
  in
  let _ =
    List.fold_left (fun (st, i) op -> (step st i op, i + 1)) (ptop, 0) ops
  in
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* JSON rendering                                                      *)
(* ------------------------------------------------------------------ *)

let json_escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let diagnostic_to_json (d : diagnostic) : string =
  Printf.sprintf
    {|{"rule":"%s","severity":"%s","requires":"%s","at":%d,"message":"%s"}|}
    (rule_name d.rule) (severity_name d.severity)
    (Law_infer.to_string d.requires)
    d.at (json_escape d.message)

let diagnostics_to_json (ds : diagnostic list) : string =
  "[" ^ String.concat "," (List.map diagnostic_to_json ds) ^ "]"
