(** Pedigree-directed command optimization.

    The safe entry point to {!Esm_core.Command.optimize_at}: the rewrite
    level is picked automatically from the packed bx's pedigree via
    {!Law_infer.of_packed}, so the unsafe levels are unreachable unless
    the construction lemmas justify them.  There is deliberately {e no}
    parameter that raises the level above the inferred one — callers who
    want to gamble must spell out
    [Command.optimize_unsafe_commuting] themselves (and answer to
    `bxlint`). *)

open Esm_core

val level_for : ('a, 'b) Concrete.packed -> Command.level
(** The strongest optimizer level the packed bx's pedigree justifies
    ([Law_infer.to_command_level (Law_infer.of_packed p)]). *)

val optimize_packed :
  ?cap:Law_infer.level ->
  ('a, 'b) Concrete.packed ->
  eq_a:('a -> 'a -> bool) ->
  eq_b:('b -> 'b -> bool) ->
  ('a, 'b) Command.t ->
  ('a, 'b) Command.t
(** [optimize_packed p ~eq_a ~eq_b cmd] rewrites [cmd] at
    [level_for p].  [?cap] can only {e lower} the level (the meet of the
    cap and the inferred level is used) — e.g. [~cap:`Set_bx] restricts
    to the always-sound rewrites regardless of pedigree. *)
