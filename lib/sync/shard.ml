(** Sharded stores with gossip replication.

    One entangled cell ({!Store}) scales by splitting its state across
    [N] shards with a deterministic key→shard router: every operation
    is routed to the shards owning the rows it touches and committed
    there through the ordinary transactional path, so each shard keeps
    the single-store guarantees (atomic commits, optimistic checks,
    crash recovery) over its partition.

    Replication is anti-entropy gossip over {!Oplog.entries_since}:
    shard [i] holds a {!Store.follower} replica of every peer [j], and
    each gossip round pulls the peer's oplog suffix above the
    follower's high-water mark (its version) and replays it.  When the
    peer has compacted below that mark, {!Store.read_since} answers
    [`Resync] with its latest snapshot and the follower restarts from
    it — the typed "below retained horizon" protocol instead of a
    silently empty suffix.  Once gossip quiesces every follower sits at
    its peer's head, and the cross-shard convergence invariant — all
    shards reconstruct the same entangled whole from their own
    partition plus their replicas — is checkable ({!Relational.converged}).

    Chaos site: ["shard.gossip"] fires per directed edge per round; an
    injected fault drops that edge for the round (a lost gossip
    exchange), which anti-entropy absorbs by retrying next round. *)

open Esm_core

let gossip_site = "shard.gossip"

type ('a, 'b, 'da, 'db) t = {
  stores : ('a, 'b, 'da, 'db) Store.t array;
  route :
    ('a, 'b, 'da, 'db) Store.op -> (int * ('a, 'b, 'da, 'db) Store.op) list;
  followers : ('a, 'b, 'da, 'db) Store.follower option array array;
      (** [followers.(i).(j)]: shard [i]'s replica of peer [j]; [None]
          on the diagonal *)
  mutable rounds : int;
  mutable shipped : int;
  mutable resyncs : int;
  mutable skipped_edges : int;
}

type stats = {
  rounds : int;  (** gossip rounds run *)
  shipped : int;  (** entries replayed into followers *)
  resyncs : int;  (** followers restarted from a peer snapshot *)
  skipped_edges : int;  (** directed edges dropped by injected faults *)
}

let make ~(stores : ('a, 'b, 'da, 'db) Store.t array)
    ~(route :
       ('a, 'b, 'da, 'db) Store.op -> (int * ('a, 'b, 'da, 'db) Store.op) list)
    () : ('a, 'b, 'da, 'db) t =
  let n = Array.length stores in
  if n = 0 then invalid_arg "Shard.make: no stores";
  let followers =
    Array.init n (fun i ->
        Array.init n (fun j ->
            if i = j then None else Some (Store.follower stores.(j))))
  in
  { stores; route; followers; rounds = 0; shipped = 0; resyncs = 0;
    skipped_edges = 0 }

let shards (t : ('a, 'b, 'da, 'db) t) : int = Array.length t.stores
let store (t : ('a, 'b, 'da, 'db) t) (i : int) : ('a, 'b, 'da, 'db) Store.t =
  t.stores.(i)

let heads (t : ('a, 'b, 'da, 'db) t) : int array =
  Array.map Store.head_version t.stores

let stats (t : ('a, 'b, 'da, 'db) t) : stats =
  {
    rounds = t.rounds;
    shipped = t.shipped;
    resyncs = t.resyncs;
    skipped_edges = t.skipped_edges;
  }

(** Route one logical operation and commit each part at its owning
    shard, returning the per-shard outcomes in routing order.  Parts
    commit independently — sharding trades the single cell's atomicity
    for scale, which is why the router must split along key boundaries
    (each row has exactly one owner, so a partial failure leaves no
    row half-updated).  A router that throws a typed error (e.g. on an
    unroutable [Exec]) yields one [(-1, Error _)] outcome. *)
let submit (t : ('a, 'b, 'da, 'db) t) ~(session : string)
    (op : ('a, 'b, 'da, 'db) Store.op) :
    (int * (int, Error.t) result) list =
  match t.route op with
  | exception exn when Error.is_bx_exn exn -> (
      match Error.of_exn exn with
      | Some e -> [ (-1, Error e) ]
      | None -> raise exn)
  | parts ->
      List.map
        (fun (i, sub) ->
          if i < 0 || i >= Array.length t.stores then
            ( i,
              Error
                (Error.v Error.Other ~op:"submit"
                   (Printf.sprintf "router returned shard %d of %d" i
                      (Array.length t.stores))) )
          else (i, Store.commit ~session t.stores.(i) sub))
        parts

(* One directed edge of a gossip round: shard [i] pulls peer [j]'s
   suffix above its replica's high-water mark.  A [`Resync] answer
   (the mark fell below [j]'s compaction horizon) restarts the replica
   from the snapshot, then drains the remaining suffix in the same
   exchange. *)
let gossip_edge (t : ('a, 'b, 'da, 'db) t) (i : int) (j : int) : unit =
  match t.followers.(i).(j) with
  | None -> ()
  | Some f -> (
      let drain () =
        match Store.read_since t.stores.(j) (Store.follower_version f) with
        | `Entries es ->
            List.iter (Store.follower_apply f) es;
            t.shipped <- t.shipped + List.length es
        | `Resync (v, a) ->
            Store.follower_resync f ~version:v a;
            t.resyncs <- t.resyncs + 1;
            let es = Store.entries_since t.stores.(j) v in
            List.iter (Store.follower_apply f) es;
            t.shipped <- t.shipped + List.length es
      in
      try
        Chaos.point gossip_site;
        drain ()
      with exn when Error.degradable_exn exn ->
        (* a dropped exchange: the edge stays behind this round and
           anti-entropy retries it next round *)
        Chaos.note_fallback gossip_site;
        t.skipped_edges <- t.skipped_edges + 1)

let gossip_round (t : ('a, 'b, 'da, 'db) t) : unit =
  let n = Array.length t.stores in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then gossip_edge t i j
    done
  done;
  t.rounds <- t.rounds + 1

(** Every follower at its peer's head?  (The version check suffices:
    follower replay is deterministic, so equal versions mean equal
    states — the view-level check is {!Relational.converged}.) *)
let in_sync (t : ('a, 'b, 'da, 'db) t) : bool =
  let n = Array.length t.stores in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      match t.followers.(i).(j) with
      | None -> ()
      | Some f ->
          if Store.follower_version f <> Store.version t.stores.(j) then
            ok := false
    done
  done;
  !ok

let gossip_until_quiescent ?(max_rounds = 64) (t : ('a, 'b, 'da, 'db) t) :
    bool =
  let rec go n =
    if in_sync t then true
    else if n = 0 then false
    else begin
      gossip_round t;
      go (n - 1)
    end
  in
  go max_rounds

(** Compact every shard ({!Store.compact}); per-shard outcomes. *)
let compact (t : ('a, 'b, 'da, 'db) t) : (int, Error.t) result array =
  Array.map Store.compact t.stores

(* ------------------------------------------------------------------ *)
(* Relational instantiation: row routers and view-level convergence    *)
(* ------------------------------------------------------------------ *)

module Relational = struct
  open Esm_relational

  type rop = (Table.t, Table.t, Row_delta.t, Row_delta.t) Store.op
  type rt = (Table.t, Table.t, Row_delta.t, Row_delta.t) t

  let hash_router ~(shards : int) ~(key : string list) (schema : Schema.t) :
      Row.t -> int =
    if shards <= 0 then invalid_arg "Shard.Relational.hash_router: shards";
    let idx = List.map (Schema.index schema) key in
    fun row ->
      let vals = List.map (List.nth (Row.to_list row)) idx in
      Hashtbl.hash vals mod shards

  let range_router ~(bounds : Value.t list) ~(key : string)
      (schema : Schema.t) : Row.t -> int =
    let i = Schema.index schema key in
    fun row ->
      let v = List.nth (Row.to_list row) i in
      (* shard = how many range bounds sit at or below the key *)
      List.length (List.filter (fun b -> Value.compare b v <= 0) bounds)

  let row_of_delta = function Row_delta.Add r -> r | Row_delta.Remove r -> r

  (* Split one logical op along row ownership.  Whole-view sets reach
     *every* shard (a shard whose partition came out empty must still be
     overwritten — its previous rows were deleted); delta bursts reach
     only the shards owning touched rows.  [Exec] programs close over
     whole-state functions and have no row decomposition. *)
  let route_op ~(shards : int) ~(shard_of_row : Row.t -> int) (op : rop) :
      (int * rop) list =
    let partition (tbl : Table.t) : Table.t array =
      let schema = Table.schema tbl in
      let buckets = Array.make shards [] in
      List.iter
        (fun r ->
          let i = shard_of_row r in
          buckets.(i) <- r :: buckets.(i))
        (Table.rows tbl);
      Array.map (fun rows -> Table.of_rows schema (List.rev rows)) buckets
    in
    let grouped (ds : Row_delta.t list) : (int * Row_delta.t list) list =
      let buckets = Array.make shards [] in
      List.iter
        (fun d ->
          let i = shard_of_row (row_of_delta d) in
          buckets.(i) <- d :: buckets.(i))
        ds;
      Array.to_list buckets
      |> List.mapi (fun i ds -> (i, List.rev ds))
      |> List.filter (fun (_, ds) -> ds <> [])
    in
    match op with
    | Store.Set_a tbl ->
        Array.to_list (partition tbl)
        |> List.mapi (fun i p -> (i, Store.Set_a p))
    | Store.Set_b tbl ->
        Array.to_list (partition tbl)
        |> List.mapi (fun i p -> (i, Store.Set_b p))
    | Store.Batch_a ds ->
        List.map (fun (i, ds) -> (i, Store.Batch_a ds)) (grouped ds)
    | Store.Batch_b ds ->
        List.map (fun (i, ds) -> (i, Store.Batch_b ds)) (grouped ds)
    | Store.Exec _ ->
        Error.raise_error Error.Other ~op:"route"
          "Exec programs are not routable across shards"

  (* Shard [i]'s reconstruction of the whole view: its own partition
     union every replica's.  Sound for row-wise views (select/where and
     per-row projections distribute over union). *)
  let full_view_a (t : rt) (i : int) : Table.t =
    Array.fold_left
      (fun acc f ->
        match f with
        | None -> acc
        | Some f -> Table.union acc (Store.follower_view_a f))
      (Store.view_a t.stores.(i))
      t.followers.(i)

  let full_view_b (t : rt) (i : int) : Table.t =
    Array.fold_left
      (fun acc f ->
        match f with
        | None -> acc
        | Some f -> Table.union acc (Store.follower_view_b f))
      (Store.view_b t.stores.(i))
      t.followers.(i)

  (* The authoritative whole: the union of every shard's own partition
     — what a single unsharded store would hold. *)
  let authoritative_a (t : rt) : Table.t =
    match Array.to_list (Array.map Store.view_a t.stores) with
    | [] -> assert false
    | v :: vs -> List.fold_left Table.union v vs

  let authoritative_b (t : rt) : Table.t =
    match Array.to_list (Array.map Store.view_b t.stores) with
    | [] -> assert false
    | v :: vs -> List.fold_left Table.union v vs

  (* The cross-shard convergence invariant, view-level: once gossip
     quiesces, every shard reconstructs the same entangled whole on
     both sides, and it is the authoritative union. *)
  let converged (t : rt) : bool =
    in_sync t
    &&
    let a = authoritative_a t and b = authoritative_b t in
    let ok = ref true in
    for i = 0 to Array.length t.stores - 1 do
      if
        (not (Table.equal (full_view_a t i) a))
        || not (Table.equal (full_view_b t i) b)
      then ok := false
    done;
    !ok
end
