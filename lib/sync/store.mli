(** A replicated store: a packed bx served behind a versioned
    append-only {!Oplog} with transactional commits, optimistic version
    checks, periodic snapshots and crash recovery by replay (see
    [docs/SYNC.md]).

    Chaos sites: ["sync.oplog.append"] (commit aborts whole),
    ["sync.store.replay"] (recovery absorbs the fault),
    ["sync.durable.write"] (an entry-write fault aborts the commit; a
    snapshot-write fault is absorbed). *)

open Esm_core

type ('a, 'b, 'da, 'db) op =
  | Set_a of 'a  (** overwrite the A view through the bx *)
  | Set_b of 'b
  | Batch_a of 'da list
      (** a coalesced burst of A-side deltas: one materialised view,
          one set through the bx, one oplog record *)
  | Batch_b of 'db list
  | Exec of ('a, 'b) Command.t

val op_kind : ('a, 'b, 'da, 'db) op -> string

type ('a, 'b, 'da, 'db) op_codec = {
  encode_op : ('a, 'b, 'da, 'db) op -> string;
  decode_op : string -> ('a, 'b, 'da, 'db) op;
  encode_a : 'a -> string;
  decode_a : string -> 'a;
}
(** How operations and A views serialise for the durable log
    ({!Durable_log} frames the payloads; {!Wire.durable_op_codec} builds
    the codec for relational stores).  Snapshots record the A view and
    {!reopen} reconstructs the state as [set_a a init] — exact whenever
    the A view determines the state, in particular for every lens-packed
    store.  [encode_op] may raise a typed error for non-serialisable
    operations ([Exec] programs contain functions); such a commit then
    fails whole on a persisted store. *)

type ('a, 'b, 'da, 'db) persist

val persist :
  ?fsync:Durable_log.fsync_policy ->
  dir:string ->
  ('a, 'b, 'da, 'db) op_codec ->
  ('a, 'b, 'da, 'db) persist
(** Persistence configuration for {!of_packed}: append each committed
    entry (and periodic snapshots, at the store's [snapshot_every]
    cadence) to an on-disk log in [dir] under the given fsync policy
    (default [Fsync_every 8] — see [docs/SYNC.md] for the trade-off). *)

type ('a, 'b, 'da, 'db) t

val of_packed :
  ?name:string ->
  ?snapshot_every:int ->
  ?apply_da:('a -> 'da list -> 'a) ->
  ?apply_db:('b -> 'db list -> 'b) ->
  ?persist:('a, 'b, 'da, 'db) persist ->
  ('a, 'b) Concrete.packed ->
  ('a, 'b, 'da, 'db) t
(** Serve a packed bx as a replicated store.  The pedigree is recorded
    as [Pedigree.Replicated] of the base pedigree.  [apply_da] /
    [apply_db] materialise delta bursts for [Batch_a] / [Batch_b]
    (omitting them makes batch commits fail with a typed error).
    [persist] starts a {e fresh} durable log in its directory (any
    existing log there is truncated — resuming one is {!reopen}'s job)
    and every commit then follows the write-ahead discipline: entry
    record on disk first, in-memory state second. *)

val reopen :
  ?name:string ->
  ?snapshot_every:int ->
  ?apply_da:('a -> 'da list -> 'a) ->
  ?apply_db:('b -> 'db list -> 'b) ->
  ?fsync:Durable_log.fsync_policy ->
  codec:('a, 'b, 'da, 'db) op_codec ->
  dir:string ->
  ('a, 'b) Concrete.packed ->
  (('a, 'b, 'da, 'db) t, Error.t) result
(** Reconstruct a persisted store from [dir]: the latest valid snapshot
    plus the validated log suffix.  Tolerates exactly the artifacts a
    real crash produces — a torn final record (truncated before the
    writer resumes), a duplicated tail after a re-append (deduplicated),
    a missing or invalid snapshot file (full replay from the packed
    initial state) — and classifies unrecoverable damage as a typed
    {!Esm_core.Error.Corrupt}: bad magic or format version, a mid-file
    checksum mismatch, a version gap, an undecodable entry payload.  The
    reconstructed store is always at {e some} committed version with
    {!version} = {!head_version} — never a partial commit.

    A compacted directory (the log opens with a base record at horizon
    [h]) loses the full-replay fallback: recovery {e requires} a valid
    snapshot at a version [>= h], and its absence — or an undecodable
    snapshot payload — is [Corrupt] ("below retained horizon"), never a
    silent resurrection of a pre-compaction state. *)

val name : ('a, 'b, 'da, 'db) t -> string

val persisted : ('a, 'b, 'da, 'db) t -> bool
(** Is this store backed by a durable log? *)

val flush : ('a, 'b, 'da, 'db) t -> unit
(** Force an fsync of the durable log now, whatever the policy (no-op on
    an in-memory store). *)

val close : ('a, 'b, 'da, 'db) t -> unit
(** Fsync and close the durable log's file descriptor (no-op on an
    in-memory store).  Further commits on a persisted store are
    undefined after [close]; reopen with {!reopen}. *)

val pedigree : ('a, 'b, 'da, 'db) t -> Pedigree.t

val version : ('a, 'b, 'da, 'db) t -> int
(** The version the in-memory state is at.  Behind {!head_version}
    exactly when the store has crashed and not yet recovered. *)

val head_version : ('a, 'b, 'da, 'db) t -> int

val view_a : ('a, 'b, 'da, 'db) t -> 'a
(** The A view, through a version-keyed single-entry cache: reading an
    unchanged store returns the last materialization in O(1) — the
    common "nothing changed" poll.  Sound because the state at a
    committed version is deterministic (recovery replays to it
    exactly); the cache is dropped on {!crash} and read through the
    ["incr.hash"] chaos gate (an injected fault rematerializes in full,
    never serves stale).  Reports to the ["store.view"]
    {!Esm_incr.Stats} counter. *)

val view_b : ('a, 'b, 'da, 'db) t -> 'b

val view_a_uncached : ('a, 'b, 'da, 'db) t -> 'a
(** Materialise the A view from the state, bypassing the cache — the
    reference for cache-transparency oracles and the bench's
    unmemoized baseline. *)

val view_b_uncached : ('a, 'b, 'da, 'db) t -> 'b

val entries_since :
  ('a, 'b, 'da, 'db) t -> int -> ('a, 'b, 'da, 'db) op Oplog.entry list
(** The oplog suffix strictly above a version, oldest first — what a
    session pulls to rebase.  Raises a typed [Error.Corrupt] when the
    version has fallen below a positive compaction horizon (see
    {!Oplog.entries_since}); use {!read_since} when resync is an
    option. *)

val read_since :
  ('a, 'b, 'da, 'db) t ->
  int ->
  [ `Entries of ('a, 'b, 'da, 'db) op Oplog.entry list | `Resync of int * 'a ]
(** The resync-aware read, total for every integer: the replay suffix
    when the version is still servable, or [`Resync (version, a_view)]
    — the latest snapshot's version and A view, from which a replica
    restarts ({!follower_resync}) — when it has fallen below the
    compaction horizon. *)

val horizon : ('a, 'b, 'da, 'db) t -> int
(** The oplog's compaction horizon; 0 until the first {!compact}. *)

val compact : ('a, 'b, 'da, 'db) t -> (int, Error.t) result
(** Snapshot-anchored compaction: drop the oplog prefix at or below the
    latest snapshot, returning how many entries were dropped (0 when
    the snapshot is already the horizon).  On a persisted store the
    durable side moves first — the anchor snapshot is written to
    [snapshot.bin], then [log.bin] is rewritten with a base record and
    the retained suffix ({!Durable_log.compact}, tmp + fsync + rename)
    — and only then does the in-memory oplog drop its prefix, so a
    failure at any stage (an injected fault at ["sync.durable.write"]
    or ["sync.durable.compact"], a non-serialisable [Exec] in the
    retained suffix) leaves the full history intact and returns the
    typed error.  {!head_version} and every view are unchanged:
    compaction drops representations whose effects the snapshot already
    reflects, never operations. *)

val log_sessions : ('a, 'b, 'da, 'db) t -> string list

val commit :
  ?expect:int ->
  session:string ->
  ('a, 'b, 'da, 'db) t ->
  ('a, 'b, 'da, 'db) op ->
  (int, Error.t) result
(** Commit one operation, returning the new version.  [?expect] is the
    optimistic version check: if another session committed since, the
    result is an [Error.Conflict] naming the winners and nothing is
    applied.  The application itself runs under {!Esm_core.Atomic.run} —
    a failing update rolls back and appends nothing.  A crashed store
    ({!version} behind {!head_version}) refuses commits until
    {!recover}. *)

val crash : ('a, 'b, 'da, 'db) t -> unit
(** Simulate a crash: volatile state resets to the latest snapshot; the
    oplog survives.  Commits are refused until {!recover}. *)

val recover : ('a, 'b, 'da, 'db) t -> unit
(** Recovery by replay: fold the oplog suffix after the snapshot back
    into the state.  Degradable failures (injected faults, distrusted
    indexes) are absorbed by retrying under
    {!Esm_core.Chaos.protected} — every replayed entry committed
    successfully once, so recovery reproduces the pre-crash state. *)

(** {1 Followers}

    A follower is a detached replica of a store's entangled state, fed
    entry-by-entry from a peer's oplog — the receiving half of gossip
    ({!Shard}).  It shares the bx code but owns its state and version;
    it never commits, so it needs no oplog of its own. *)

type ('a, 'b, 'da, 'db) follower

val follower : ('a, 'b, 'da, 'db) t -> ('a, 'b, 'da, 'db) follower
(** A replica forked at the store's current state and version.  Shards
    fork followers of their peers at group construction (version 0), so
    the follower's high-water mark is exactly what it has replayed. *)

val follower_version : ('a, 'b, 'da, 'db) follower -> int
val follower_view_a : ('a, 'b, 'da, 'db) follower -> 'a
val follower_view_b : ('a, 'b, 'da, 'db) follower -> 'b

val follower_apply :
  ('a, 'b, 'da, 'db) follower -> ('a, 'b, 'da, 'db) op Oplog.entry -> unit
(** Replay one gossiped entry; it must be at exactly
    [follower_version + 1] (the gossip loop feeds a dense suffix).
    Degradable faults retry under {!Esm_core.Chaos.protected}, like
    {!recover} — every gossiped entry committed once at its home
    shard. *)

val follower_resync :
  ('a, 'b, 'da, 'db) follower -> version:int -> 'a -> unit
(** Restart the replica from a snapshot's A view at [version] — the
    answer to a [`Resync] from {!read_since} when the follower's
    high-water mark fell below the peer's compaction horizon.  A
    no-op unless [version] is ahead of the replica. *)
