(** A replicated store: a packed bx served behind a versioned
    append-only {!Oplog} with transactional commits, optimistic version
    checks, periodic snapshots and crash recovery by replay (see
    [docs/SYNC.md]).

    Chaos sites: ["sync.oplog.append"] (commit aborts whole),
    ["sync.store.replay"] (recovery absorbs the fault). *)

open Esm_core

type ('a, 'b, 'da, 'db) op =
  | Set_a of 'a  (** overwrite the A view through the bx *)
  | Set_b of 'b
  | Batch_a of 'da list
      (** a coalesced burst of A-side deltas: one materialised view,
          one set through the bx, one oplog record *)
  | Batch_b of 'db list
  | Exec of ('a, 'b) Command.t

val op_kind : ('a, 'b, 'da, 'db) op -> string

type ('a, 'b, 'da, 'db) t

val of_packed :
  ?name:string ->
  ?snapshot_every:int ->
  ?apply_da:('a -> 'da list -> 'a) ->
  ?apply_db:('b -> 'db list -> 'b) ->
  ('a, 'b) Concrete.packed ->
  ('a, 'b, 'da, 'db) t
(** Serve a packed bx as a replicated store.  The pedigree is recorded
    as [Pedigree.Replicated] of the base pedigree.  [apply_da] /
    [apply_db] materialise delta bursts for [Batch_a] / [Batch_b]
    (omitting them makes batch commits fail with a typed error). *)

val name : ('a, 'b, 'da, 'db) t -> string
val pedigree : ('a, 'b, 'da, 'db) t -> Pedigree.t

val version : ('a, 'b, 'da, 'db) t -> int
(** The version the in-memory state is at.  Behind {!head_version}
    exactly when the store has crashed and not yet recovered. *)

val head_version : ('a, 'b, 'da, 'db) t -> int
val view_a : ('a, 'b, 'da, 'db) t -> 'a
val view_b : ('a, 'b, 'da, 'db) t -> 'b

val entries_since :
  ('a, 'b, 'da, 'db) t -> int -> ('a, 'b, 'da, 'db) op Oplog.entry list
(** The oplog suffix strictly above a version, oldest first — what a
    session pulls to rebase. *)

val log_sessions : ('a, 'b, 'da, 'db) t -> string list

val commit :
  ?expect:int ->
  session:string ->
  ('a, 'b, 'da, 'db) t ->
  ('a, 'b, 'da, 'db) op ->
  (int, Error.t) result
(** Commit one operation, returning the new version.  [?expect] is the
    optimistic version check: if another session committed since, the
    result is an [Error.Conflict] naming the winners and nothing is
    applied.  The application itself runs under {!Esm_core.Atomic.run} —
    a failing update rolls back and appends nothing.  A crashed store
    ({!version} behind {!head_version}) refuses commits until
    {!recover}. *)

val crash : ('a, 'b, 'da, 'db) t -> unit
(** Simulate a crash: volatile state resets to the latest snapshot; the
    oplog survives.  Commits are refused until {!recover}. *)

val recover : ('a, 'b, 'da, 'db) t -> unit
(** Recovery by replay: fold the oplog suffix after the snapshot back
    into the state.  Degradable failures (injected faults, distrusted
    indexes) are absorbed by retrying under
    {!Esm_core.Chaos.protected} — every replayed entry committed
    successfully once, so recovery reproduces the pre-crash state. *)
