(** The replicated store: any packed bx served behind a versioned
    append-only {!Oplog}, with transactional commits, optimistic version
    checks, periodic snapshots and crash recovery by replay.

    The paper's set-bx operations {e are} the session protocol — a
    client holding one view issues sets against shared hidden state —
    and the store is the piece that makes many such clients safe: every
    commit runs through {!Esm_core.Atomic.run}, so a failing update
    rolls back to the snapshot and appends {e nothing}; a stale
    [?expect] version is refused with a typed
    {!Esm_core.Error.Conflict}; and because states are immutable values,
    snapshots are free and recovery is a deterministic fold of the
    oplog suffix.

    Batched deltas close the ROADMAP "batch/transactional delta
    application" item: a burst of {!Esm_relational.Row_delta} edits (or
    {!Esm_modelbx.Diff} edits) coalesces into {e one} materialised view,
    one set through the bx — one index rebuild — and one oplog record,
    instead of one commit per edit.

    Chaos sites: ["sync.oplog.append"] (a commit aborts whole, keeping
    state and oplog agreeing), ["sync.store.replay"] (recovery absorbs
    the fault and replays anyway, retrying faulted entries under
    {!Esm_core.Chaos.protected} — each entry committed once already, so
    replay must not invent new failures). *)

open Esm_core

type ('a, 'b, 'da, 'db) op =
  | Set_a of 'a
  | Set_b of 'b
  | Batch_a of 'da list
      (** coalesce the burst into one A view, one set, one record *)
  | Batch_b of 'db list
  | Exec of ('a, 'b) Command.t

let op_kind = function
  | Set_a _ -> "set_a"
  | Set_b _ -> "set_b"
  | Batch_a _ -> "batch_a"
  | Batch_b _ -> "batch_b"
  | Exec _ -> "exec"

type ('a, 'b, 'da, 'db) t =
  | Store : {
      name : string;
      bx : ('a, 'b, 's) Concrete.set_bx;
      eq_state : 's -> 's -> bool;
      pedigree : Pedigree.t;
      apply_da : ('a -> 'da list -> 'a) option;
          (** materialise a burst of A-side deltas against the A view *)
      apply_db : ('b -> 'db list -> 'b) option;
      log : (('a, 'b, 'da, 'db) op, 's) Oplog.t;
      mutable state : 's;
      mutable version : int;  (** the version [state] is at *)
    }
      -> ('a, 'b, 'da, 'db) t

let of_packed ?(name = "store") ?snapshot_every ?apply_da ?apply_db
    (Concrete.Packed repr : ('a, 'b) Concrete.packed) :
    ('a, 'b, 'da, 'db) t =
  Store
    {
      name;
      bx = repr.Concrete.bx;
      eq_state = repr.Concrete.eq_state;
      pedigree = Pedigree.Replicated repr.Concrete.pedigree;
      apply_da;
      apply_db;
      log = Oplog.create ?snapshot_every ~init:repr.Concrete.init ();
      state = repr.Concrete.init;
      version = 0;
    }

let name (Store s) = s.name
let pedigree (Store s) = s.pedigree
let version (Store s) = s.version
let head_version (Store s) = Oplog.head_version s.log
let view_a (Store s) = s.bx.Concrete.get_a s.state
let view_b (Store s) = s.bx.Concrete.get_b s.state
let entries_since (Store s) v = Oplog.entries_since s.log v
let log_sessions (Store s) = Oplog.sessions s.log

(* The single-op state transition; raises bx errors, which the commit
   and replay paths turn into rollback / protected retry. *)
let apply_op :
    type s.
    bx:('a, 'b, s) Concrete.set_bx ->
    apply_da:('a -> 'da list -> 'a) option ->
    apply_db:('b -> 'db list -> 'b) option ->
    ('a, 'b, 'da, 'db) op ->
    s ->
    s =
 fun ~bx ~apply_da ~apply_db op st ->
  match op with
  | Set_a a -> bx.Concrete.set_a a st
  | Set_b b -> bx.Concrete.set_b b st
  | Batch_a ds -> (
      match apply_da with
      | None ->
          Error.raise_error Error.Other ~op:"commit"
            "store has no A-side delta applier (pass ~apply_da)"
      | Some f -> bx.Concrete.set_a (f (bx.Concrete.get_a st) ds) st)
  | Batch_b ds -> (
      match apply_db with
      | None ->
          Error.raise_error Error.Other ~op:"commit"
            "store has no B-side delta applier (pass ~apply_db)"
      | Some f -> bx.Concrete.set_b (f (bx.Concrete.get_b st) ds) st)
  | Exec c -> Command.exec bx c st

let commit ?expect ~(session : string) (Store s : ('a, 'b, 'da, 'db) t)
    (op : ('a, 'b, 'da, 'db) op) : (int, Error.t) result =
  if s.version <> Oplog.head_version s.log then
    Error
      (Error.v Error.Other ~op:"commit"
         (Printf.sprintf
            "store %s is at version %d with oplog head %d: crashed state, \
             recover before committing"
            s.name s.version (Oplog.head_version s.log)))
  else
    match expect with
    | Some v when v <> s.version ->
        (* the oplog is the conflict evidence: someone committed the
           versions between the session's base and the head *)
        let winners =
          Oplog.entries_since s.log v
          |> List.map (fun (e : _ Oplog.entry) -> e.Oplog.session)
          |> List.sort_uniq String.compare
        in
        Error
          (Error.v Error.Conflict ~op:"commit"
             (Printf.sprintf
                "session %s expected version %d but store %s is at %d \
                 (concurrent commits by: %s)"
                session v s.name s.version
                (String.concat ", " winners)))
    | _ -> (
        (* transactional apply: roll back to the snapshot (the input
           state — states are immutable) on any bx failure, including
           an injected fault at the append site; nothing is appended and
           the store is observably untouched *)
        let result, state' =
          Atomic.run
            (fun st ->
              let st =
                apply_op ~bx:s.bx ~apply_da:s.apply_da ~apply_db:s.apply_db
                  op st
              in
              Chaos.point "sync.oplog.append";
              ((), st))
            s.state
        in
        match result with
        | Error e -> Error e
        | Ok () ->
            s.state <- state';
            let version = Oplog.append s.log ~session op in
            s.version <- version;
            if Oplog.snapshot_due s.log then
              Oplog.record_snapshot s.log version state';
            Ok version)

(** Simulate a crash: the volatile state is lost; what survives is the
    oplog and its snapshots.  The store wakes up at the most recent
    snapshot with the suffix still un-replayed (commits are refused
    until {!recover}). *)
let crash (Store s : ('a, 'b, 'da, 'db) t) : unit =
  let version, snap = Oplog.latest_snapshot s.log in
  s.state <- snap;
  s.version <- version

(** Recovery by replay: fold the oplog suffix after the snapshot back
    into the state.  Every replayed entry committed successfully once,
    so replay is deterministic — a degradable failure (an injected
    fault, a distrusted index) is absorbed by retrying that entry under
    {!Esm_core.Chaos.protected}; genuine programming errors still
    propagate. *)
let recover (Store s : ('a, 'b, 'da, 'db) t) : unit =
  (try Chaos.point "sync.store.replay"
   with exn when Error.degradable_exn exn ->
     Chaos.note_fallback "sync.store.replay");
  List.iter
    (fun (e : _ Oplog.entry) ->
      let apply st =
        apply_op ~bx:s.bx ~apply_da:s.apply_da ~apply_db:s.apply_db
          e.Oplog.op st
      in
      let next =
        try apply s.state
        with exn when Error.degradable_exn exn ->
          Chaos.note_fallback "sync.store.replay";
          Chaos.protected (fun () -> apply s.state)
      in
      s.state <- next;
      s.version <- e.Oplog.version)
    (Oplog.entries_since s.log s.version)
