(** The replicated store: any packed bx served behind a versioned
    append-only {!Oplog}, with transactional commits, optimistic version
    checks, periodic snapshots and crash recovery by replay.

    The paper's set-bx operations {e are} the session protocol — a
    client holding one view issues sets against shared hidden state —
    and the store is the piece that makes many such clients safe: every
    commit runs through {!Esm_core.Atomic.run}, so a failing update
    rolls back to the snapshot and appends {e nothing}; a stale
    [?expect] version is refused with a typed
    {!Esm_core.Error.Conflict}; and because states are immutable values,
    snapshots are free and recovery is a deterministic fold of the
    oplog suffix.

    Batched deltas close the ROADMAP "batch/transactional delta
    application" item: a burst of {!Esm_relational.Row_delta} edits (or
    {!Esm_modelbx.Diff} edits) coalesces into {e one} materialised view,
    one set through the bx — one index rebuild — and one oplog record,
    instead of one commit per edit.

    Chaos sites: ["sync.oplog.append"] (a commit aborts whole, keeping
    state and oplog agreeing), ["sync.store.replay"] (recovery absorbs
    the fault and replays anyway, retrying faulted entries under
    {!Esm_core.Chaos.protected} — each entry committed once already, so
    replay must not invent new failures), and ["sync.durable.write"]
    inside {!Durable_log} (an entry-write fault aborts the commit whole;
    a snapshot-write fault is absorbed — the log holds the full
    history).

    Persistence ([?persist] / {!reopen}) follows a write-ahead
    discipline: the entry record reaches the on-disk log {e before} the
    in-memory state and oplog advance, so after a process death the disk
    holds a (possibly longer, never divergent) prefix of the committed
    history and {!reopen} reconstructs a store at some committed
    version — never a partial commit. *)

open Esm_core
module Stats = Esm_incr.Stats

type ('a, 'b, 'da, 'db) op =
  | Set_a of 'a
  | Set_b of 'b
  | Batch_a of 'da list
      (** coalesce the burst into one A view, one set, one record *)
  | Batch_b of 'db list
  | Exec of ('a, 'b) Command.t

let op_kind = function
  | Set_a _ -> "set_a"
  | Set_b _ -> "set_b"
  | Batch_a _ -> "batch_a"
  | Batch_b _ -> "batch_b"
  | Exec _ -> "exec"

(** How operations and A views serialise for the durable log: payloads
    are opaque strings at the {!Durable_log} framing layer, so a store
    over any substrate persists once it has a codec
    ({!Wire.durable_op_codec} covers relational stores).  Snapshots
    store the {e A view}; reopening reconstructs the snapshot state as
    [set_a a init], which is exact whenever the A view determines the
    state — in particular for every lens-packed store, where the state
    {e is} the A side. *)
type ('a, 'b, 'da, 'db) op_codec = {
  encode_op : ('a, 'b, 'da, 'db) op -> string;
  decode_op : string -> ('a, 'b, 'da, 'db) op;
  encode_a : 'a -> string;
  decode_a : string -> 'a;
}

type ('a, 'b, 'da, 'db) persist = {
  dir : string;
  fsync : Durable_log.fsync_policy;
  codec : ('a, 'b, 'da, 'db) op_codec;
}

let persist ?(fsync = Durable_log.Fsync_every 8) ~(dir : string)
    (codec : ('a, 'b, 'da, 'db) op_codec) : ('a, 'b, 'da, 'db) persist =
  { dir; fsync; codec }

type ('a, 'b, 'da, 'db) t =
  | Store : {
      name : string;
      bx : ('a, 'b, 's) Concrete.set_bx;
      eq_state : 's -> 's -> bool;
      pedigree : Pedigree.t;
      apply_da : ('a -> 'da list -> 'a) option;
          (** materialise a burst of A-side deltas against the A view *)
      apply_db : ('b -> 'db list -> 'b) option;
      log : (('a, 'b, 'da, 'db) op, 's) Oplog.t;
      durable : (('a, 'b, 'da, 'db) op_codec * Durable_log.writer) option;
      mutable state : 's;
      mutable version : int;  (** the version [state] is at *)
      mutable view_cache_a : (int * 'a) option;
          (** last materialised A view, keyed by the version it was
              read at — sound because the state at a committed version
              is deterministic (replay reproduces it exactly) *)
      mutable view_cache_b : (int * 'b) option;
    }
      -> ('a, 'b, 'da, 'db) t

let of_packed ?(name = "store") ?snapshot_every ?apply_da ?apply_db ?persist
    (Concrete.Packed repr : ('a, 'b) Concrete.packed) :
    ('a, 'b, 'da, 'db) t =
  let durable =
    match persist with
    | None -> None
    | Some { dir; fsync; codec } ->
        Some (codec, Durable_log.create ~dir ~fsync ())
  in
  Store
    {
      name;
      bx = repr.Concrete.bx;
      eq_state = repr.Concrete.eq_state;
      pedigree = Pedigree.Replicated repr.Concrete.pedigree;
      apply_da;
      apply_db;
      log = Oplog.create ?snapshot_every ~init:repr.Concrete.init ();
      durable;
      state = repr.Concrete.init;
      version = 0;
      view_cache_a = None;
      view_cache_b = None;
    }

let name (Store s) = s.name
let persisted (Store s) = Option.is_some s.durable

let flush (Store s) =
  match s.durable with None -> () | Some (_, w) -> Durable_log.sync w

let close (Store s) =
  match s.durable with None -> () | Some (_, w) -> Durable_log.close w

let pedigree (Store s) = s.pedigree
let version (Store s) = s.version
let head_version (Store s) = Oplog.head_version s.log
let view_a_uncached (Store s) = s.bx.Concrete.get_a s.state
let view_b_uncached (Store s) = s.bx.Concrete.get_b s.state

(* The memoized view-read path: a poll of an unchanged store returns
   the cached materialization in O(1).  The hit path trusts cached
   bookkeeping, so it passes through the incr.hash chaos gate — an
   injected fault bypasses the cache and rematerializes under
   [protected] (a corrupted cache costs work, never a stale view). *)
let cached_view (type v) ~(version : int) ~(read : unit -> (int * v) option)
    ~(write : (int * v) option -> unit) ~(materialise : unit -> v) : v =
  let recompute () =
    let v = materialise () in
    write (Some (version, v));
    v
  in
  match read () with
  | Some (at, v) when at = version -> (
      match Chaos.point Shash.site with
      | () ->
          Stats.hit "store.view";
          v
      | exception exn when Error.degradable_exn exn ->
          Chaos.note_fallback Shash.site;
          Stats.miss "store.view";
          Chaos.protected recompute)
  | _ ->
      Stats.miss "store.view";
      recompute ()

let view_a (Store s) =
  cached_view ~version:s.version
    ~read:(fun () -> s.view_cache_a)
    ~write:(fun c -> s.view_cache_a <- c)
    ~materialise:(fun () -> s.bx.Concrete.get_a s.state)

let view_b (Store s) =
  cached_view ~version:s.version
    ~read:(fun () -> s.view_cache_b)
    ~write:(fun c -> s.view_cache_b <- c)
    ~materialise:(fun () -> s.bx.Concrete.get_b s.state)
let entries_since (Store s) v = Oplog.entries_since s.log v

let read_since (Store s) v =
  match Oplog.read_since s.log v with
  | `Entries es -> `Entries es
  | `Resync (hv, st) -> `Resync (hv, s.bx.Concrete.get_a st)

let horizon (Store s) = Oplog.horizon s.log
let log_sessions (Store s) = Oplog.sessions s.log

(* The single-op state transition; raises bx errors, which the commit
   and replay paths turn into rollback / protected retry. *)
let apply_op :
    type s.
    bx:('a, 'b, s) Concrete.set_bx ->
    apply_da:('a -> 'da list -> 'a) option ->
    apply_db:('b -> 'db list -> 'b) option ->
    ('a, 'b, 'da, 'db) op ->
    s ->
    s =
 fun ~bx ~apply_da ~apply_db op st ->
  match op with
  | Set_a a -> bx.Concrete.set_a a st
  | Set_b b -> bx.Concrete.set_b b st
  | Batch_a ds -> (
      match apply_da with
      | None ->
          Error.raise_error Error.Other ~op:"commit"
            "store has no A-side delta applier (pass ~apply_da)"
      | Some f -> bx.Concrete.set_a (f (bx.Concrete.get_a st) ds) st)
  | Batch_b ds -> (
      match apply_db with
      | None ->
          Error.raise_error Error.Other ~op:"commit"
            "store has no B-side delta applier (pass ~apply_db)"
      | Some f -> bx.Concrete.set_b (f (bx.Concrete.get_b st) ds) st)
  | Exec c -> Command.exec bx c st

let commit ?expect ~(session : string) (Store s : ('a, 'b, 'da, 'db) t)
    (op : ('a, 'b, 'da, 'db) op) : (int, Error.t) result =
  if s.version <> Oplog.head_version s.log then
    Error
      (Error.v Error.Other ~op:"commit"
         (Printf.sprintf
            "store %s is at version %d with oplog head %d: crashed state, \
             recover before committing"
            s.name s.version (Oplog.head_version s.log)))
  else
    match expect with
    | Some v when v <> s.version ->
        (* the oplog is the conflict evidence: someone committed the
           versions between the session's base and the head *)
        let winners =
          Oplog.entries_since s.log v
          |> List.map (fun (e : _ Oplog.entry) -> e.Oplog.session)
          |> List.sort_uniq String.compare
        in
        Error
          (Error.v Error.Conflict ~op:"commit"
             (Printf.sprintf
                "session %s expected version %d but store %s is at %d \
                 (concurrent commits by: %s)"
                session v s.name s.version
                (String.concat ", " winners)))
    | _ -> (
        (* transactional apply: roll back to the snapshot (the input
           state — states are immutable) on any bx failure, including
           an injected fault at the append site; nothing is appended and
           the store is observably untouched *)
        let result, state' =
          Atomic.run
            (fun st ->
              let st =
                apply_op ~bx:s.bx ~apply_da:s.apply_da ~apply_db:s.apply_db
                  op st
              in
              Chaos.point "sync.oplog.append";
              ((), st))
            s.state
        in
        match result with
        | Error e -> Error e
        | Ok () -> (
            (* write-ahead: the durable entry record must reach the log
               before the in-memory commit becomes visible.  An append
               failure (an injected fault at [sync.durable.write], a
               non-serialisable op) aborts the commit whole — the file
               was restored to its pre-append length, nothing here
               mutated. *)
            let version = s.version + 1 in
            let persisted =
              match s.durable with
              | None -> Ok ()
              | Some (codec, w) -> (
                  match codec.encode_op op with
                  | exception exn when Error.is_bx_exn exn -> (
                      match Error.of_exn exn with
                      | Some e -> Error e
                      | None -> raise exn)
                  | payload ->
                      Durable_log.append_entry w ~version ~session ~payload)
            in
            match persisted with
            | Error e -> Error e
            | Ok () ->
                s.state <- state';
                let v' = Oplog.append s.log ~session op in
                assert (v' = version);
                s.version <- version;
                if Oplog.snapshot_due s.log then begin
                  Oplog.record_snapshot s.log version state';
                  (* a snapshot-write failure only lengthens future
                     replays — the log holds the full history, so it is
                     absorbed, not surfaced *)
                  match s.durable with
                  | None -> ()
                  | Some (codec, w) -> (
                      match
                        let payload =
                          codec.encode_a (s.bx.Concrete.get_a state')
                        in
                        Durable_log.write_snapshot w ~version ~payload
                      with
                      | Ok () -> ()
                      | Error _ -> Chaos.note_fallback "sync.durable.write"
                      | exception exn when Error.is_bx_exn exn ->
                          Chaos.note_fallback "sync.durable.write")
                end;
                Ok version))

(** Simulate a crash: the volatile state is lost; what survives is the
    oplog and its snapshots.  The store wakes up at the most recent
    snapshot with the suffix still un-replayed (commits are refused
    until {!recover}). *)
let crash (Store s : ('a, 'b, 'da, 'db) t) : unit =
  let version, snap = Oplog.latest_snapshot s.log in
  s.state <- snap;
  s.version <- version;
  (* volatile caches die with the process they model *)
  s.view_cache_a <- None;
  s.view_cache_b <- None

(** Recovery by replay: fold the oplog suffix after the snapshot back
    into the state.  Every replayed entry committed successfully once,
    so replay is deterministic — a degradable failure (an injected
    fault, a distrusted index) is absorbed by retrying that entry under
    {!Esm_core.Chaos.protected}; genuine programming errors still
    propagate. *)
let recover (Store s : ('a, 'b, 'da, 'db) t) : unit =
  (try Chaos.point "sync.store.replay"
   with exn when Error.degradable_exn exn ->
     Chaos.note_fallback "sync.store.replay");
  List.iter
    (fun (e : _ Oplog.entry) ->
      let apply st =
        apply_op ~bx:s.bx ~apply_da:s.apply_da ~apply_db:s.apply_db
          e.Oplog.op st
      in
      let next =
        try apply s.state
        with exn when Error.degradable_exn exn ->
          Chaos.note_fallback "sync.store.replay";
          Chaos.protected (fun () -> apply s.state)
      in
      s.state <- next;
      s.version <- e.Oplog.version)
    (Oplog.entries_since s.log s.version)

(* Reconstruct a snapshot state from its recorded A view: [set_a a
   init].  Exact whenever the A view determines the state (every
   lens-packed store, where the state is the A side); a degradable fault
   retries under [protected] like any replay step. *)
let s_of_snapshot :
    type s. bx:('a, 'b, s) Concrete.set_bx -> init:s -> 'a -> s =
 fun ~bx ~init a ->
  try bx.Concrete.set_a a init
  with exn when Error.degradable_exn exn ->
    Chaos.note_fallback "sync.store.replay";
    Chaos.protected (fun () -> bx.Concrete.set_a a init)

(* ------------------------------------------------------------------ *)
(* Snapshot-anchored compaction                                        *)
(* ------------------------------------------------------------------ *)

(** Drop the oplog prefix at or below the latest snapshot.  On a
    persisted store the durable side moves first (write-ahead for
    truncation, mirroring the commit discipline): the snapshot at the
    anchor version is made durable, then [log.bin] is rewritten with a
    base record and the retained suffix — only after both succeed does
    the in-memory oplog drop its prefix.  A failure at any stage
    (injected chaos, non-serialisable [Exec] in the retained suffix)
    returns the typed error with nothing compacted. *)
let compact (Store s : ('a, 'b, 'da, 'db) t) : (int, Error.t) result =
  let v, snap = Oplog.latest_snapshot s.log in
  if v <= Oplog.horizon s.log then Ok 0
  else
    let durable_done =
      match s.durable with
      | None -> Ok ()
      | Some (codec, w) -> (
          match
            let payload = codec.encode_a (s.bx.Concrete.get_a snap) in
            Durable_log.write_snapshot w ~version:v ~payload
          with
          | Error e -> Error e
          | exception exn when Error.is_bx_exn exn -> (
              match Error.of_exn exn with
              | Some e -> Error e
              | None -> raise exn)
          | Ok () -> (
              match
                Oplog.entries_since s.log v
                |> List.map (fun (e : _ Oplog.entry) ->
                       ( e.Oplog.version,
                         e.Oplog.session,
                         codec.encode_op e.Oplog.op ))
              with
              | retained -> Durable_log.compact w ~horizon:v ~entries:retained
              | exception exn when Error.is_bx_exn exn -> (
                  match Error.of_exn exn with
                  | Some e -> Error e
                  | None -> raise exn)))
    in
    match durable_done with
    | Error e -> Error e
    | Ok () -> Ok (Oplog.compact s.log)

(* ------------------------------------------------------------------ *)
(* Followers: detached replicas fed by gossip                           *)
(* ------------------------------------------------------------------ *)

type ('a, 'b, 'da, 'db) follower =
  | Follower : {
      bx : ('a, 'b, 's) Concrete.set_bx;
      apply_da : ('a -> 'da list -> 'a) option;
      apply_db : ('b -> 'db list -> 'b) option;
      mutable state : 's;
      mutable version : int;
    }
      -> ('a, 'b, 'da, 'db) follower

let follower (Store s : ('a, 'b, 'da, 'db) t) : ('a, 'b, 'da, 'db) follower =
  Follower
    {
      bx = s.bx;
      apply_da = s.apply_da;
      apply_db = s.apply_db;
      state = s.state;
      version = s.version;
    }

let follower_version (Follower f) = f.version
let follower_view_a (Follower f) = f.bx.Concrete.get_a f.state
let follower_view_b (Follower f) = f.bx.Concrete.get_b f.state

let follower_apply (Follower f : ('a, 'b, 'da, 'db) follower)
    (e : ('a, 'b, 'da, 'db) op Oplog.entry) : unit =
  if e.Oplog.version <> f.version + 1 then
    Error.raise_error Error.Other ~op:"follower_apply"
      "entry version %d does not follow replica version %d" e.Oplog.version
      f.version
  else begin
    let apply st =
      apply_op ~bx:f.bx ~apply_da:f.apply_da ~apply_db:f.apply_db e.Oplog.op
        st
    in
    (* like {!recover}: every gossiped entry committed once at its home
       shard, so replay is deterministic — degradable faults retry under
       [protected] *)
    let next =
      try apply f.state
      with exn when Error.degradable_exn exn ->
        Chaos.note_fallback "sync.store.replay";
        Chaos.protected (fun () -> apply f.state)
    in
    f.state <- next;
    f.version <- e.Oplog.version
  end

let follower_resync (Follower f : ('a, 'b, 'da, 'db) follower)
    ~(version : int) (a : 'a) : unit =
  if version > f.version then begin
    f.state <- s_of_snapshot ~bx:f.bx ~init:f.state a;
    f.version <- version
  end

(** Reopen a persisted store from [dir]: the latest valid snapshot plus
    the validated log suffix, with a torn tail truncated before the
    writer resumes appending.  The packed bx supplies what the disk does
    not: the code, the initial state, the equality — the disk supplies
    the history. *)
let reopen ?(name = "store") ?snapshot_every ?apply_da ?apply_db
    ?(fsync = Durable_log.Fsync_every 8)
    ~(codec : ('a, 'b, 'da, 'db) op_codec) ~(dir : string)
    (Concrete.Packed repr : ('a, 'b) Concrete.packed) :
    (('a, 'b, 'da, 'db) t, Error.t) result =
  match Durable_log.load ~dir with
  | Error e -> Error e
  | Ok { Durable_log.entries; snapshot; valid_bytes; horizon; _ } -> (
      (* an undecodable op behind a valid checksum means the payload
         codec changed under the format version byte — corruption, not
         a torn tail *)
      match
        List.map
          (fun (re : Durable_log.raw_entry) ->
            (re.Durable_log.version, re.Durable_log.session,
             codec.decode_op re.Durable_log.payload))
          entries
      with
      | exception exn when Error.is_bx_exn exn ->
          let detail =
            match Error.of_exn exn with
            | Some e -> Error.message e
            | None -> Printexc.to_string exn
          in
          Error
            (Error.v Error.Corrupt ~op:"reopen"
               ("undecodable entry payload: " ^ detail))
      | decoded -> (
          (* where the oplog restarts.  A full-history log (horizon 0)
             replays from the snapshot state when one is usable
             (present, decodable, not ahead of a truncated log) and the
             initial state otherwise — a missing or broken snapshot only
             lengthens replay.  A compacted log (horizon > 0) has {e no}
             path back to the initial state: a usable snapshot at a
             version >= horizon is mandatory, and its absence is
             [Corrupt], not a silent full replay that would resurrect a
             pre-compaction state. *)
          let seeded =
            if horizon > 0 then
              match snapshot with
              | None ->
                  Error
                    (Error.v Error.Corrupt ~op:"reopen"
                       (Printf.sprintf
                          "log compacted below version %d but snapshot.bin \
                           is missing or invalid: below retained horizon, \
                           cannot recover"
                          horizon))
              | Some (sv, _) when sv < horizon ->
                  Error
                    (Error.v Error.Corrupt ~op:"reopen"
                       (Printf.sprintf
                          "log compacted below version %d but the snapshot \
                           is at older version %d: below retained horizon, \
                           cannot recover"
                          horizon sv))
              | Some (sv, payload) -> (
                  match
                    let a = codec.decode_a payload in
                    s_of_snapshot ~bx:repr.Concrete.bx
                      ~init:repr.Concrete.init a
                  with
                  | st -> Ok (sv, sv, st)
                  | exception exn when Error.is_bx_exn exn ->
                      let detail =
                        match Error.of_exn exn with
                        | Some e -> Error.message e
                        | None -> Printexc.to_string exn
                      in
                      Error
                        (Error.v Error.Corrupt ~op:"reopen"
                           (Printf.sprintf
                              "log compacted below version %d and the \
                               snapshot payload is undecodable (%s): below \
                               retained horizon, cannot recover"
                              horizon detail)))
            else
              let head =
                match List.rev decoded with (v, _, _) :: _ -> v | [] -> 0
              in
              match snapshot with
              | Some (v, payload) when v > 0 && v <= head -> (
                  match
                    let a = codec.decode_a payload in
                    s_of_snapshot ~bx:repr.Concrete.bx
                      ~init:repr.Concrete.init a
                  with
                  | st -> Ok (0, v, st)
                  | exception exn when Error.is_bx_exn exn ->
                      Chaos.note_fallback "sync.store.replay";
                      Ok (0, 0, repr.Concrete.init))
              | _ -> Ok (0, 0, repr.Concrete.init)
          in
          match seeded with
          | Error e -> Error e
          | Ok (oplog_horizon, start, state0) -> (
          let log =
            if oplog_horizon > 0 then
              (* the seed snapshot [(start, state0)] doubles as the
                 in-memory horizon: entries at or below it are already
                 reflected in the snapshot state *)
              Oplog.create ?snapshot_every ~horizon:oplog_horizon
                ~init:state0 ()
            else Oplog.create ?snapshot_every ~init:repr.Concrete.init ()
          in
          List.iter
            (fun (v, session, op) ->
              if v > oplog_horizon then begin
                let v' = Oplog.append log ~session op in
                if v' <> v then
                  (* unreachable: [Durable_log.load] validated density *)
                  Error.raise_error Error.Corrupt ~op:"reopen"
                    "log entries are not dense at version %d" v
              end)
            decoded;
          if oplog_horizon = 0 && start > 0 then
            Oplog.record_snapshot log start state0;
          let writer = Durable_log.open_append ~dir ~fsync ~valid:valid_bytes in
          let store =
            Store
              {
                name;
                bx = repr.Concrete.bx;
                eq_state = repr.Concrete.eq_state;
                pedigree = Pedigree.Replicated repr.Concrete.pedigree;
                apply_da;
                apply_db;
                log;
                durable = Some (codec, writer);
                state = state0;
                version = start;
                view_cache_a = None;
                view_cache_b = None;
              }
          in
          match recover store with
          | () -> Ok store
          | exception exn when Error.is_bx_exn exn ->
              Durable_log.close writer;
              let detail =
                match Error.of_exn exn with
                | Some e -> Error.message e
                | None -> Printexc.to_string exn
              in
              Error
                (Error.v Error.Corrupt ~op:"reopen"
                   ("replay failed: " ^ detail)))))
