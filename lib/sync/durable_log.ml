(** The durable on-disk oplog format (see [docs/SYNC.md], "Durability").

    Framing only: payloads are opaque strings, encoded by the store
    through a {!Store.op_codec}.  Layout of [dir]:

    {v
    log.bin       "ESMLOG" | version (1) | '\n'     8-byte header
                  'B' | len (4 LE) | crc32 (4 LE) | horizon   (compacted only)
                  'E' | len (4 LE) | crc32 (4 LE) | payload   ...repeated
    snapshot.bin  same header, one 'S' record, replaced atomically
    v}

    A fresh log never contains a 'B' (base) record — {!compact} writes
    it when rewriting the log to drop the prefix at or below the
    snapshot horizon, so the golden fixtures for the fresh format stay
    byte-stable within format version 1.

    Entry payloads are [<version> <len>:<session> <op>] so any session
    name round-trips; snapshot payloads are [<version> <view>].

    The reader ({!load}) tolerates exactly what a crash produces — a
    torn final record (truncate), a duplicated tail after a re-append
    (dedup), a missing or broken snapshot file (ignore; the log holds
    the full history) — and classifies everything else as a typed
    {!Esm_core.Error.Corrupt}.  A corrupted {e length} field that makes
    a record overrun the file is indistinguishable from a torn tail
    without trailing markers, and is treated as one (prefix recovery);
    every other in-place mutation is caught by the CRC.

    Chaos site: ["sync.durable.write"] before each record write.  An
    injected fault in {!append_entry} restores the pre-append file
    length so the commit aborts whole; in {!write_snapshot} it is
    returned for the store to absorb (the log suffices for recovery). *)

open Esm_core

let magic = "ESMLOG"
let format_version = 1
let header_len = 8
let record_header_len = 9 (* tag + length + crc *)

let log_file dir = Filename.concat dir "log.bin"
let snapshot_file dir = Filename.concat dir "snapshot.bin"
let compact_tmp dir = log_file dir ^ ".tmp"

let header () =
  let b = Bytes.create header_len in
  Bytes.blit_string magic 0 b 0 6;
  Bytes.set b 6 (Char.chr format_version);
  Bytes.set b 7 '\n';
  Bytes.to_string b

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3), table-driven                                    *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 (s : string) : int32 =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let i =
        Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor table.(i) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* ------------------------------------------------------------------ *)
(* Fsync policy                                                        *)
(* ------------------------------------------------------------------ *)

type fsync_policy = Fsync_always | Fsync_every of int | Fsync_never

let fsync_name = function
  | Fsync_always -> "always"
  | Fsync_every n -> Printf.sprintf "every-%d" n
  | Fsync_never -> "never"

(* ------------------------------------------------------------------ *)
(* The kill switch (--kill-at): hard process death mid-write            *)
(* ------------------------------------------------------------------ *)

let writes = ref 0
let kill_at : int option ref = ref None
let kill_exit : (unit -> unit) ref = ref (fun () -> Unix._exit 130)

let set_kill_at ?exit n =
  (match exit with Some f -> kill_exit := f | None -> ());
  kill_at := Option.map (fun n -> !writes + n) n

let writes_performed () = !writes

(* One tick of the --kill-at clock; {!compact} also ticks it at its
   fsync / rename / switch-over stages so the crash matrix can land a
   kill at every fault site of the compaction path, not just between
   record writes. *)
let kill_tick () =
  incr writes;
  match !kill_at with Some k when !writes >= k -> !kill_exit () | _ -> ()

(* One counted record-write syscall; the kill switch fires *after* the
   bytes reached the kernel, so a kill between the two halves of a
   record leaves a torn tail for recovery to truncate. *)
let write_counted (fd : Unix.file_descr) (b : Bytes.t) : unit =
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write fd b off (n - off))
  in
  go 0;
  kill_tick ()

(* ------------------------------------------------------------------ *)
(* Records                                                             *)
(* ------------------------------------------------------------------ *)

let record_header (tag : char) (payload : string) : Bytes.t =
  let b = Bytes.create record_header_len in
  Bytes.set b 0 tag;
  Bytes.set_int32_le b 1 (Int32.of_int (String.length payload));
  Bytes.set_int32_le b 5 (crc32 payload);
  b

let entry_payload ~version ~session ~payload =
  Printf.sprintf "%d %d:%s %s" version (String.length session) session payload

(* [<version> <len>:<session> <rest>]; raises [Failure] on malformed
   input (the reader maps it to [Corrupt]). *)
let parse_entry_payload (s : string) : int * string * string =
  let sp1 = String.index s ' ' in
  let version = int_of_string (String.sub s 0 sp1) in
  let colon = String.index_from s (sp1 + 1) ':' in
  let slen = int_of_string (String.sub s (sp1 + 1) (colon - sp1 - 1)) in
  if slen < 0 || colon + 1 + slen + 1 > String.length s then
    failwith "bad session length";
  let session = String.sub s (colon + 1) slen in
  if s.[colon + 1 + slen] <> ' ' then failwith "missing separator";
  let rest_off = colon + 2 + slen in
  (version, session, String.sub s rest_off (String.length s - rest_off))

let snapshot_payload ~version ~payload =
  Printf.sprintf "%d %s" version payload

let parse_snapshot_payload (s : string) : int * string =
  let sp = String.index s ' ' in
  (int_of_string (String.sub s 0 sp), String.sub s (sp + 1) (String.length s - sp - 1))

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

type writer = {
  dir : string;
  mutable fd : Unix.file_descr;
      (** mutable: {!compact} switches to the rewritten [log.bin] *)
  fsync : fsync_policy;
  mutable pos : int;  (** current end of [log.bin] *)
  mutable unsynced : int;  (** records appended since the last fsync *)
}

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* A [log.bin.tmp] left behind by a compaction that died before its
   rename is garbage: the real log is intact, the rewrite restarts from
   scratch.  Both writer entry points discard it. *)
let remove_stale_tmp dir =
  let tmp = compact_tmp dir in
  if Sys.file_exists tmp then Sys.remove tmp

let create ~dir ~fsync () : writer =
  mkdir_p dir;
  remove_stale_tmp dir;
  if Sys.file_exists (snapshot_file dir) then Sys.remove (snapshot_file dir);
  let fd =
    Unix.openfile (log_file dir) [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
      0o644
  in
  write_counted fd (Bytes.of_string (header ()));
  { dir; fd; fsync; pos = header_len; unsynced = 0 }

let open_append ~dir ~fsync ~valid : writer =
  remove_stale_tmp dir;
  let fd = Unix.openfile (log_file dir) [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd valid;
  ignore (Unix.lseek fd valid Unix.SEEK_SET);
  { dir; fd; fsync; pos = valid; unsynced = 0 }

let sync (w : writer) : unit =
  Unix.fsync w.fd;
  w.unsynced <- 0

let policy_sync (w : writer) : unit =
  w.unsynced <- w.unsynced + 1;
  match w.fsync with
  | Fsync_always -> sync w
  | Fsync_every n -> if w.unsynced >= n then sync w
  | Fsync_never -> ()

let append_entry (w : writer) ~version ~session ~payload :
    (unit, Error.t) result =
  let before = w.pos in
  try
    Chaos.point "sync.durable.write";
    let body = entry_payload ~version ~session ~payload in
    write_counted w.fd (record_header 'E' body);
    write_counted w.fd (Bytes.of_string body);
    w.pos <- before + record_header_len + String.length body;
    policy_sync w;
    Ok ()
  with exn when Error.is_bx_exn exn ->
    (* restore the pre-append length: the commit aborts whole and the
       file keeps agreeing with the in-memory store *)
    Unix.ftruncate w.fd before;
    ignore (Unix.lseek w.fd before Unix.SEEK_SET);
    w.pos <- before;
    (match Error.of_exn exn with Some e -> Error e | None -> raise exn)

let write_snapshot (w : writer) ~version ~payload : (unit, Error.t) result =
  try
    Chaos.point "sync.durable.write";
    let body = snapshot_payload ~version ~payload in
    let tmp = snapshot_file w.dir ^ ".tmp" in
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    let b = Buffer.create (String.length body + 32) in
    Buffer.add_string b (header ());
    Buffer.add_bytes b (record_header 'S' body);
    Buffer.add_string b body;
    write_counted fd (Buffer.to_bytes b);
    Unix.fsync fd;
    Unix.close fd;
    Sys.rename tmp (snapshot_file w.dir);
    Ok ()
  with exn when Error.is_bx_exn exn -> (
    match Error.of_exn exn with Some e -> Error e | None -> raise exn)

(* Snapshot-anchored compaction: rewrite [log.bin] as header, one 'B'
   (base) record pinning the horizon, then the retained suffix — built
   in [log.bin.tmp], fsynced, renamed over the old log (the same
   atomicity discipline as [snapshot.bin]), and finally the writer's fd
   switched to the new file.  The caller guarantees [snapshot.bin]
   holds a snapshot at a version >= horizon before calling, otherwise
   the dropped prefix would be unrecoverable.

   Kill-switch fault sites, in order: each tmp record write (counted by
   [write_counted] as usual), then one tick after the tmp fsync (tmp
   durable, old log still current), one after the rename (old prefix
   gone, writer still on the unlinked inode), and one after the fd
   switch-over.  A kill at any of them leaves a directory [load]
   recovers to the exact pre-kill head: either the old full log (plus a
   stale tmp that the next open discards) or the new compacted one. *)
let compact (w : writer) ~(horizon : int)
    ~(entries : (int * string * string) list) : (unit, Error.t) result =
  let tmp = compact_tmp w.dir in
  try
    Chaos.point "sync.durable.compact";
    let fd =
      Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    in
    let write_record tag body =
      write_counted fd (record_header tag body);
      write_counted fd (Bytes.of_string body)
    in
    write_counted fd (Bytes.of_string (header ()));
    write_record 'B' (string_of_int horizon);
    List.iter
      (fun (version, session, payload) ->
        write_record 'E' (entry_payload ~version ~session ~payload))
      entries;
    Unix.fsync fd;
    kill_tick ();
    Unix.close fd;
    Sys.rename tmp (log_file w.dir);
    kill_tick ();
    Unix.close w.fd;
    let fd' = Unix.openfile (log_file w.dir) [ Unix.O_WRONLY ] 0o644 in
    let pos = Unix.lseek fd' 0 Unix.SEEK_END in
    w.fd <- fd';
    w.pos <- pos;
    w.unsynced <- 0;
    kill_tick ();
    Ok ()
  with exn when Error.is_bx_exn exn ->
    if Sys.file_exists tmp then Sys.remove tmp;
    (match Error.of_exn exn with Some e -> Error e | None -> raise exn)

let close (w : writer) : unit =
  sync w;
  Unix.close w.fd

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

type raw_entry = { version : int; session : string; payload : string }

type recovered = {
  entries : raw_entry list;
  snapshot : (int * string) option;
  valid_bytes : int;
  torn_bytes : int;
  duplicates : int;
  horizon : int;
}

let corrupt ~file fmt =
  Format.kasprintf (fun detail -> Error (Error.v Error.Corrupt ~op:file detail)) fmt

let read_file (path : string) : string option =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Some s
  end

(* One record at [off]: [`Record (tag, payload, next_off)], [`Torn]
   when the remaining bytes cannot hold it, or [`Bad reason] for
   in-place corruption the CRC or framing catches. *)
let read_record (s : string) (off : int) =
  let len = String.length s in
  if off + record_header_len > len then `Torn
  else
    let tag = s.[off] in
    let plen = Int32.to_int (String.get_int32_le s (off + 1)) in
    let crc = String.get_int32_le s (off + 5) in
    if tag <> 'E' && tag <> 'S' && tag <> 'B' then `Bad "unknown record tag"
    else if plen < 0 then `Bad "negative record length"
    else if off + record_header_len + plen > len then `Torn
    else
      let payload = String.sub s (off + record_header_len) plen in
      if crc32 payload <> crc then `Bad "checksum mismatch"
      else `Record (tag, payload, off + record_header_len + plen)

let check_header ~file (s : string) =
  if String.length s < header_len then corrupt ~file "missing header"
  else if String.sub s 0 6 <> magic then corrupt ~file "bad magic"
  else if Char.code s.[6] <> format_version then
    corrupt ~file "unsupported format version %d (supported: %d)"
      (Char.code s.[6]) format_version
  else Ok ()

(* The snapshot file is an optimisation: when missing or invalid in any
   way, recovery falls back to replaying the log from the initial
   state, so every defect here degrades to [None]. *)
let load_snapshot (dir : string) : (int * string) option =
  match read_file (snapshot_file dir) with
  | None -> None
  | Some s -> (
      match check_header ~file:"snapshot.bin" s with
      | Error _ -> None
      | Ok () -> (
          match read_record s header_len with
          | `Record ('S', payload, _) -> (
              match parse_snapshot_payload payload with
              | v, p when v >= 0 -> Some (v, p)
              | _ -> None
              | exception _ -> None)
          | _ -> None))

let load ~dir : (recovered, Error.t) result =
  let file = "log.bin" in
  match read_file (log_file dir) with
  | None -> corrupt ~file "no log in %s" dir
  | Some s -> (
      match check_header ~file s with
      | Error _ as e -> e
      | Ok () ->
          let len = String.length s in
          let rec scan off head horizon acc dups =
            if off = len then
              Ok
                {
                  entries = List.rev acc;
                  snapshot = load_snapshot dir;
                  valid_bytes = off;
                  torn_bytes = 0;
                  duplicates = dups;
                  horizon;
                }
            else
              match read_record s off with
              | `Torn ->
                  Ok
                    {
                      entries = List.rev acc;
                      snapshot = load_snapshot dir;
                      valid_bytes = off;
                      torn_bytes = len - off;
                      duplicates = dups;
                      horizon;
                    }
              | `Bad reason -> corrupt ~file "%s at offset %d" reason off
              | `Record ('S', _, _) ->
                  corrupt ~file "snapshot record inside the log at offset %d"
                    off
              | `Record ('B', payload, next) -> (
                  (* the base record a compaction pins its horizon with:
                     only valid as the very first record — versions then
                     run densely from horizon + 1 *)
                  if off <> header_len then
                    corrupt ~file "base record not at start (offset %d)" off
                  else
                    match int_of_string payload with
                    | exception _ ->
                        corrupt ~file "undecodable base record at offset %d"
                          off
                    | h when h < 0 ->
                        corrupt ~file "negative horizon %d in base record" h
                    | h -> scan next h h acc dups)
              | `Record (_, payload, next) -> (
                  match parse_entry_payload payload with
                  | exception _ ->
                      corrupt ~file "undecodable entry at offset %d" off
                  | version, session, op_payload ->
                      if version <= head then
                        (* a duplicated tail after a re-append: the
                           entry was already read at its first
                           occurrence *)
                        scan next head horizon acc (dups + 1)
                      else if version = head + 1 then
                        scan next version horizon
                          ({ version; session; payload = op_payload } :: acc)
                          dups
                      else
                        corrupt ~file
                          "version gap at offset %d: %d follows %d" off
                          version head)
          in
          scan header_len 0 0 [] 0)
