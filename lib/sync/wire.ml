(** The line-oriented wire codec and in-process server for replicated
    relational stores.

    One request per line, one response per line — the grammar a
    [telnet]-grade client (or the deterministic script runner in
    [bin/esm_syncd.ml]) speaks:

    {v
    hello <session> a|b          bind a session to the A or B view
    get                          read the bound view
    set <row> ; <row> ; ...      replace the bound view
    batch +<row> ; -<row> ; ...  commit a coalesced delta burst
    pull                         receive entries committed since base
    crash                        simulate a server crash
    recover                      replay the oplog suffix
    bye                          unbind
    v}

    Rows are comma-separated values: integers, [true]/[false],
    double-quoted strings (with backslash escapes for the quote and the
    backslash itself) or bare strings.
    Responses: [ok <version>], [view <version> <rows>],
    [update <version> <n-entries>], [conflict <version> <message>],
    [error <kind> <message>].

    The codec is total in both directions over its own output
    (roundtrip property-tested); parse failures raise typed [Parse]
    errors, and {!handle} converts every bx failure into an [error]
    response instead of tearing the server down. *)

open Esm_core
open Esm_relational

type rstore = (Table.t, Table.t, Row_delta.t, Row_delta.t) Store.t
type rsession = (Table.t, Table.t, Row_delta.t, Row_delta.t) Session.t

type request =
  | Hello of string * Session.side
  | Get
  | Set of Row.t list
  | Batch of Row_delta.t list
  | Pull
  | Ping
  | Crash
  | Recover
  | Bye

type response =
  | Resp_ok of int
  | Resp_conflict of int * string
  | Resp_error of Error.kind * string
  | Resp_view of int * Row.t list
  | Resp_update of int * int
  | Resp_pong

(* {1 Lexing helpers} *)

let parse_error fmt = Error.raise_error Error.Parse ~op:"wire" fmt

(* Split on [sep], but not inside double quotes. *)
let split_outside_quotes (sep : char) (s : string) : string list =
  let parts = ref [] in
  let buf = Buffer.create 16 in
  let in_quotes = ref false in
  let escaped = ref false in
  String.iter
    (fun c ->
      if !escaped then (
        Buffer.add_char buf c;
        escaped := false)
      else if c = '\\' && !in_quotes then (
        Buffer.add_char buf c;
        escaped := true)
      else if c = '"' then (
        Buffer.add_char buf c;
        in_quotes := not !in_quotes)
      else if c = sep && not !in_quotes then (
        parts := Buffer.contents buf :: !parts;
        Buffer.clear buf)
      else Buffer.add_char buf c)
    s;
  if !in_quotes then parse_error "unterminated quote in %S" s;
  List.rev (Buffer.contents buf :: !parts)

(* {1 Value codec} *)

let render_value = function
  | Value.Int n -> string_of_int n
  | Value.Bool true -> "true"
  | Value.Bool false -> "false"
  | Value.Str s ->
      let buf = Buffer.create (String.length s + 2) in
      Buffer.add_char buf '"';
      String.iter
        (fun c ->
          if c = '"' || c = '\\' then Buffer.add_char buf '\\';
          Buffer.add_char buf c)
        s;
      Buffer.add_char buf '"';
      Buffer.contents buf

let parse_value (tok : string) : Value.t =
  let tok = String.trim tok in
  if tok = "" then parse_error "empty value token"
  else if tok = "true" then Value.Bool true
  else if tok = "false" then Value.Bool false
  else
    match int_of_string_opt tok with
    | Some n -> Value.Int n
    | None ->
        if String.length tok >= 2 && tok.[0] = '"' then (
          if tok.[String.length tok - 1] <> '"' then
            parse_error "unterminated string %S" tok;
          let buf = Buffer.create (String.length tok) in
          let escaped = ref false in
          String.iteri
            (fun i c ->
              if i > 0 && i < String.length tok - 1 then
                if !escaped then (
                  Buffer.add_char buf c;
                  escaped := false)
                else if c = '\\' then escaped := true
                else Buffer.add_char buf c)
            tok;
          if !escaped then parse_error "dangling escape in %S" tok;
          Value.Str (Buffer.contents buf))
        else Value.Str tok

let render_row (r : Row.t) : string =
  String.concat ", " (List.map render_value (Row.to_list r))

let parse_row (s : string) : Row.t =
  Row.of_list (List.map parse_value (split_outside_quotes ',' s))

let render_rows (rows : Row.t list) : string =
  String.concat " ; " (List.map render_row rows)

let parse_rows (s : string) : Row.t list =
  match String.trim s with
  | "" -> []
  | s -> List.map parse_row (split_outside_quotes ';' s)

let render_delta = function
  | Row_delta.Add r -> "+" ^ render_row r
  | Row_delta.Remove r -> "-" ^ render_row r

let parse_delta (s : string) : Row_delta.t =
  let s = String.trim s in
  if s = "" then parse_error "empty delta"
  else
    let rest = String.sub s 1 (String.length s - 1) in
    match s.[0] with
    | '+' -> Row_delta.Add (parse_row rest)
    | '-' -> Row_delta.Remove (parse_row rest)
    | _ -> parse_error "delta must start with + or -: %S" s

let render_deltas (ds : Row_delta.t list) : string =
  String.concat " ; " (List.map render_delta ds)

let parse_deltas (s : string) : Row_delta.t list =
  match String.trim s with
  | "" -> []
  | s -> List.map parse_delta (split_outside_quotes ';' s)

(* {1 Request codec} *)

(* First whitespace-separated word and the (trimmed) remainder. *)
let cut_word (s : string) : string * string =
  let s = String.trim s in
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i ->
      ( String.sub s 0 i,
        String.trim (String.sub s (i + 1) (String.length s - i - 1)) )

let render_request = function
  | Hello (name, side) ->
      Printf.sprintf "hello %s %s" name (Session.side_name side)
  | Get -> "get"
  | Set rows -> String.trim ("set " ^ render_rows rows)
  | Batch ds -> String.trim ("batch " ^ render_deltas ds)
  | Pull -> "pull"
  | Ping -> "ping"
  | Crash -> "crash"
  | Recover -> "recover"
  | Bye -> "bye"

let parse_request (line : string) : request =
  let word, rest = cut_word line in
  match word with
  | "hello" -> (
      match String.split_on_char ' ' rest with
      | [ name; "a" ] -> Hello (name, `A)
      | [ name; "b" ] -> Hello (name, `B)
      | _ -> parse_error "expected 'hello <session> a|b', got %S" line)
  | "get" -> Get
  | "set" -> Set (parse_rows rest)
  | "batch" -> Batch (parse_deltas rest)
  | "pull" -> Pull
  | "ping" -> Ping
  | "crash" -> Crash
  | "recover" -> Recover
  | "bye" -> Bye
  | _ -> parse_error "unknown request %S" line

(* {1 Response codec} *)

let render_response = function
  | Resp_ok v -> Printf.sprintf "ok %d" v
  | Resp_conflict (v, msg) -> Printf.sprintf "conflict %d %s" v msg
  | Resp_error (kind, msg) ->
      Printf.sprintf "error %s %s" (Error.kind_name kind) msg
  | Resp_view (v, rows) ->
      String.trim (Printf.sprintf "view %d %s" v (render_rows rows))
  | Resp_update (v, n) -> Printf.sprintf "update %d %d" v n
  | Resp_pong -> "pong"

let kind_of_name = function
  | "shape" -> Error.Shape
  | "table" -> Error.Table
  | "schema" -> Error.Schema
  | "model" -> Error.Model
  | "metamodel" -> Error.Metamodel
  | "parse" -> Error.Parse
  | "fault" -> Error.Fault
  | "index" -> Error.Index
  | "conflict" -> Error.Conflict
  | "corrupt" -> Error.Corrupt
  | "transport.transient" -> Error.Transport `Transient
  | "transport.permanent" -> Error.Transport `Permanent
  | "timeout" -> Error.Timeout
  | "overload" -> Error.Overload
  | "other" -> Error.Other
  | k -> parse_error "unknown error kind %S" k

let parse_int_word (line : string) (s : string) : int =
  match int_of_string_opt s with
  | Some n -> n
  | None -> parse_error "expected a version number in %S" line

let parse_response (line : string) : response =
  let word, rest = cut_word line in
  match word with
  | "ok" -> Resp_ok (parse_int_word line rest)
  | "conflict" ->
      let v, msg = cut_word rest in
      Resp_conflict (parse_int_word line v, msg)
  | "error" ->
      let kind, msg = cut_word rest in
      Resp_error (kind_of_name kind, msg)
  | "view" ->
      let v, rows = cut_word rest in
      Resp_view (parse_int_word line v, parse_rows rows)
  | "update" -> (
      match String.split_on_char ' ' rest with
      | [ v; n ] -> Resp_update (parse_int_word line v, parse_int_word line n)
      | _ -> parse_error "expected 'update <version> <n>', got %S" line)
  | "pong" -> Resp_pong
  | _ -> parse_error "unknown response %S" line

(* {1 Durable-log payload codec} *)

(* The durable log frames opaque payloads (Durable_log); this codec
   fills them in for relational stores by reusing the row/delta wire
   grammar: [set_a <rows>], [set_b <rows>], [batch_a <deltas>],
   [batch_b <deltas>], and the bare A view rows for snapshots.  [Exec]
   programs contain functions and do not serialise — encoding one is a
   typed error, which fails the commit whole on a persisted store. *)
let durable_op_codec ~(schema_a : Schema.t) ~(schema_b : Schema.t) :
    (Table.t, Table.t, Row_delta.t, Row_delta.t) Store.op_codec =
  let table_of schema rows = Table.of_rows schema rows in
  {
    Store.encode_op =
      (fun op ->
        match op with
        | Store.Set_a t -> String.trim ("set_a " ^ render_rows (Table.rows t))
        | Store.Set_b t -> String.trim ("set_b " ^ render_rows (Table.rows t))
        | Store.Batch_a ds -> String.trim ("batch_a " ^ render_deltas ds)
        | Store.Batch_b ds -> String.trim ("batch_b " ^ render_deltas ds)
        | Store.Exec _ ->
            Error.raise_error Error.Other ~op:"durable"
              "Exec ops are not serialisable (programs contain functions); \
               commit the resulting sets instead");
    decode_op =
      (fun s ->
        let word, rest = cut_word s in
        match word with
        | "set_a" -> Store.Set_a (table_of schema_a (parse_rows rest))
        | "set_b" -> Store.Set_b (table_of schema_b (parse_rows rest))
        | "batch_a" -> Store.Batch_a (parse_deltas rest)
        | "batch_b" -> Store.Batch_b (parse_deltas rest)
        | _ -> parse_error "unknown durable op %S" s);
    encode_a = (fun t -> render_rows (Table.rows t));
    decode_a = (fun s -> table_of schema_a (parse_rows s));
  }

(* {1 The in-process server} *)

type server = {
  store : rstore;
  sessions : (string, rsession) Hashtbl.t;
}

let serve (store : rstore) : server =
  { store; sessions = Hashtbl.create 8 }

let store (srv : server) : rstore = srv.store

let session_names (srv : server) : string list =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) srv.sessions [])

let drop_session (srv : server) (name : string) : unit =
  Hashtbl.remove srv.sessions name

let session_of (srv : server) (name : string) : rsession =
  match Hashtbl.find_opt srv.sessions name with
  | Some s -> s
  | None ->
      Error.raise_error Error.Other ~op:"wire"
        "session %s has not said hello" name

(* The schema a session's [set <rows>] builds a table against: the
   session's current view. *)
let view_schema (s : rsession) : Schema.t =
  match Session.view s with
  | `A t | `B t -> Table.schema t

let of_result = function
  | Ok v -> Resp_ok v
  | Error (e : Error.t) when e.Error.kind = Error.Conflict ->
      Resp_conflict (0, Error.message e)
  | Error e -> Resp_error (e.Error.kind, Error.message e)

let handle (srv : server) ~(session : string) (req : request) : response =
  try
    match req with
    | Hello (name, side) ->
        let s = Session.bind srv.store ~name ~side in
        Hashtbl.replace srv.sessions name s;
        Resp_ok (Session.base s)
    | Ping -> Resp_pong
    | Bye ->
        Hashtbl.remove srv.sessions session;
        Resp_ok (Store.version srv.store)
    | Crash ->
        Store.crash srv.store;
        Resp_ok (Store.version srv.store)
    | Recover ->
        Store.recover srv.store;
        Resp_ok (Store.version srv.store)
    | Get -> (
        let s = session_of srv session in
        match Session.view s with
        | `A t | `B t -> Resp_view (Store.version srv.store, Table.rows t))
    | Pull ->
        let s = session_of srv session in
        let entries = Session.pull s in
        Resp_update (Session.base s, List.length entries)
    | Set rows -> (
        let s = session_of srv session in
        let table = Table.of_rows (view_schema s) rows in
        let op =
          match Session.side s with
          | `A -> Store.Set_a table
          | `B -> Store.Set_b table
        in
        match Session.submit_rebase s op with
        | Ok (v, _) -> Resp_ok v
        | Error e -> of_result (Error e))
    | Batch ds -> (
        let s = session_of srv session in
        let op =
          match Session.side s with
          | `A -> Store.Batch_a ds
          | `B -> Store.Batch_b ds
        in
        match Session.submit_rebase s op with
        | Ok (v, _) -> Resp_ok v
        | Error e -> of_result (Error e))
  with exn when Error.is_bx_exn exn -> (
    match Error.of_exn exn with
    | Some e -> of_result (Error e)
    | None -> Resp_error (Error.Other, Printexc.to_string exn))

let handle_line (srv : server) ~(session : string) (line : string) : string =
  render_response (handle srv ~session (parse_request line))
