(** Sharded stores with gossip replication (see [docs/SYNC.md],
    "Sharding and compaction").

    Partition one replicated {!Store} across [N] shards with a
    deterministic key→shard router; each shard is an ordinary store
    over its key range, keeping the single-store guarantees for its
    partition.  Shards replicate each other by anti-entropy gossip:
    shard [i] holds a {!Store.follower} replica of each peer [j] and
    each round pulls the peer's oplog suffix above the replica's
    high-water mark ({!Store.read_since}), replaying it entry by entry.
    A peer that compacted below the mark answers [`Resync] — the typed
    "below retained horizon" protocol — and the replica restarts from
    the peer's snapshot before draining the rest of the suffix.

    Once gossip quiesces ({!in_sync}), the single-store convergence
    invariant lifts to the cross-shard property: every shard
    reconstructs the same entangled whole from its own partition plus
    its replicas ({!Relational.converged} checks it view-for-view).

    Chaos site: ["shard.gossip"] per directed edge per round — an
    injected fault drops that exchange, which anti-entropy absorbs by
    retrying on later rounds. *)

open Esm_core

val gossip_site : string
(** ["shard.gossip"]. *)

type ('a, 'b, 'da, 'db) t

type stats = {
  rounds : int;  (** gossip rounds run *)
  shipped : int;  (** entries replayed into followers *)
  resyncs : int;  (** followers restarted from a peer snapshot *)
  skipped_edges : int;  (** directed edges dropped by injected faults *)
}

val make :
  stores:('a, 'b, 'da, 'db) Store.t array ->
  route:
    (('a, 'b, 'da, 'db) Store.op -> (int * ('a, 'b, 'da, 'db) Store.op) list) ->
  unit ->
  ('a, 'b, 'da, 'db) t
(** A shard group over the given stores (typically fresh, version 0 —
    followers fork at each store's current state) and router.  [route]
    splits a logical operation into per-shard sub-operations along key
    ownership; {!Relational.route_op} builds one for relational
    stores. *)

val shards : ('a, 'b, 'da, 'db) t -> int
val store : ('a, 'b, 'da, 'db) t -> int -> ('a, 'b, 'da, 'db) Store.t
val heads : ('a, 'b, 'da, 'db) t -> int array
val stats : ('a, 'b, 'da, 'db) t -> stats

val submit :
  ('a, 'b, 'da, 'db) t ->
  session:string ->
  ('a, 'b, 'da, 'db) Store.op ->
  (int * (int, Error.t) result) list
(** Route one logical operation and commit each part at its owning
    shard; per-shard outcomes in routing order.  Parts commit
    independently — the router's key-disjointness is what keeps a
    partial failure from leaving any single row half-updated.  A router
    that raises a typed error (an unroutable [Exec]) yields one
    [(-1, Error _)] outcome. *)

val gossip_round : ('a, 'b, 'da, 'db) t -> unit
(** One anti-entropy round: every directed edge [(i, j)] pulls peer
    [j]'s suffix above replica [(i,j)]'s high-water mark and replays
    it, resyncing from the peer's snapshot when compaction dropped the
    suffix.  An injected fault at ["shard.gossip"] drops that edge for
    the round. *)

val in_sync : ('a, 'b, 'da, 'db) t -> bool
(** Every replica at its peer's head.  The version check suffices for
    state agreement because follower replay is deterministic; the
    view-level invariant is {!Relational.converged}. *)

val gossip_until_quiescent : ?max_rounds:int -> ('a, 'b, 'da, 'db) t -> bool
(** Run gossip rounds until {!in_sync} (true) or [max_rounds] (default
    64) rounds pass without quiescing (false — under injected faults a
    round can lose edges, so callers soak with enough headroom). *)

val compact : ('a, 'b, 'da, 'db) t -> (int, Error.t) result array
(** {!Store.compact} on every shard; per-shard outcomes. *)

(** The relational instantiation: row routers for
    [(Table.t, Table.t, Row_delta.t, Row_delta.t)] stores and the
    view-level convergence check. *)
module Relational : sig
  open Esm_relational

  type rop = (Table.t, Table.t, Row_delta.t, Row_delta.t) Store.op
  type rt = (Table.t, Table.t, Row_delta.t, Row_delta.t) t

  val hash_router :
    shards:int -> key:string list -> Schema.t -> Row.t -> int
  (** Balanced ownership: hash of the key columns' values, mod the
      shard count. *)

  val range_router : bounds:Value.t list -> key:string -> Schema.t -> Row.t -> int
  (** Range ownership over [List.length bounds + 1] shards: shard [i]
      owns keys in [[bounds.(i-1), bounds.(i))] ({!Value.compare}
      order) — the count of bounds at or below the key. *)

  val route_op :
    shards:int -> shard_of_row:(Row.t -> int) -> rop -> (int * rop) list
  (** Split along row ownership: whole-view sets partition to {e every}
      shard (an empty partition still overwrites — its rows were
      deleted); delta bursts go only to the shards owning touched rows;
      [Exec] raises a typed error (no row decomposition). *)

  val full_view_a : rt -> int -> Table.t
  (** Shard [i]'s reconstruction of the whole A view: its own partition
      union its replicas' — sound for row-wise views, where
      select/where distribute over union. *)

  val full_view_b : rt -> int -> Table.t

  val authoritative_a : rt -> Table.t
  (** The union of every shard's own partition — what the unsharded
      store would hold. *)

  val authoritative_b : rt -> Table.t

  val converged : rt -> bool
  (** The cross-shard convergence invariant: {!in_sync} and every
      shard's reconstructed A and B views equal the authoritative
      unions. *)
end
