(** Line-oriented wire codec and in-process server for replicated
    relational stores (see [docs/SYNC.md] for the grammar).

    The codec roundtrips ([parse_request (render_request r) = r], same
    for responses over the codec's output); parse failures raise typed
    [Parse] errors; {!handle} converts every bx failure into an [error]
    response. *)

open Esm_core
open Esm_relational

type rstore = (Table.t, Table.t, Row_delta.t, Row_delta.t) Store.t
type rsession = (Table.t, Table.t, Row_delta.t, Row_delta.t) Session.t

type request =
  | Hello of string * Session.side  (** [hello <session> a|b] *)
  | Get  (** read the bound view *)
  | Set of Row.t list  (** replace the bound view *)
  | Batch of Row_delta.t list  (** commit a coalesced delta burst *)
  | Pull  (** receive entries committed since base *)
  | Ping  (** transport heartbeat — keeps an idle session off the reaper *)
  | Crash  (** simulate a server crash *)
  | Recover  (** replay the oplog suffix *)
  | Bye

type response =
  | Resp_ok of int  (** [ok <version>] *)
  | Resp_conflict of int * string  (** [conflict <version> <message>] *)
  | Resp_error of Error.kind * string  (** [error <kind> <message>] *)
  | Resp_view of int * Row.t list  (** [view <version> <rows>] *)
  | Resp_update of int * int  (** [update <version> <n-entries>] *)
  | Resp_pong  (** [pong] *)

(** {1 Codec} *)

val render_value : Value.t -> string
val parse_value : string -> Value.t
val render_row : Row.t -> string
val parse_row : string -> Row.t
val render_delta : Row_delta.t -> string
val parse_delta : string -> Row_delta.t
val render_request : request -> string
val parse_request : string -> request
val render_response : response -> string
val parse_response : string -> response

(** {1 Durable-log payload codec} *)

val durable_op_codec :
  schema_a:Schema.t ->
  schema_b:Schema.t ->
  (Table.t, Table.t, Row_delta.t, Row_delta.t) Store.op_codec
(** The {!Store.op_codec} for relational stores, reusing the row/delta
    wire grammar for durable-log payloads ([set_a <rows>],
    [batch_b +<row> ; -<row>], …).  [schema_a] / [schema_b] rebuild
    tables on decode (the on-disk payload carries rows, not schemas).
    Encoding an [Exec] op raises a typed error — programs contain
    functions and do not serialise. *)

(** {1 Server} *)

type server

val serve : rstore -> server
val store : server -> rstore

val session_names : server -> string list
(** The sessions currently bound (sorted) — what the transport layer's
    dead-session reaper walks. *)

val drop_session : server -> string -> unit
(** Unbind a session without a [Bye] round-trip — the reaper's path for
    sessions whose client went dark. *)

val handle : server -> session:string -> request -> response
(** Process one request on behalf of a named session ([Hello] binds the
    name; subsequent requests use it).  Conflicts and bx failures come
    back as [Resp_conflict] / [Resp_error], never as exceptions. *)

val handle_line : server -> session:string -> string -> string
(** [parse_request], {!handle}, [render_response] in one step; parse
    failures still raise (the caller decides how to report bad input). *)
