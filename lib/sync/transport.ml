(** The sync engine's real transport: length-framed {!Wire} messages
    over byte streams, with the robustness story built in rather than
    bolted on.

    Three ideas carry the whole file:

    {b Idempotency outranks delivery.}  A lossy network cannot promise
    a request is executed exactly once — but a {e dedup window} can
    promise it is {e applied} at most once.  Every request envelope
    carries a per-session, strictly increasing id; the server keeps,
    per session, the high-water id and its cached response.  A
    retransmit of the high-water id is answered from the cache without
    re-execution; anything below it is a stale duplicate and refused.
    The client half of the contract: bump the id for every logical
    send, {e keep} it when the outcome is unknown (timeout, broken or
    half-open connection — the retry must dedup), bump it when the
    outcome is a definite rejection (conflict, injected fault — the
    retry must re-execute).  [Error.is_transient] vs [Error.retryable]
    is exactly this distinction, made type-level.

    {b Degradation is typed.}  A connection whose response queue
    exceeds its bound gets typed [Error.Overload] answers {e without
    execution and without touching the dedup window} — shed load is
    retryable load.  Sessions that go dark are reaped; frames that
    cannot be decoded surface as typed transport errors, never as
    exceptions out of the event loop.

    {b The test network is the real stack.}  {!Chaos_net} runs the
    same {!Core} behind the same {!Frame} decoder as the socket
    server, but every frame crosses the deterministic [net.*] chaos
    sites — so the soak's convergence and no-lost/no-duplicated-commit
    checks exercise precisely the code a real socket exercises. *)

open Esm_core
open Esm_relational

let terr flag ~op fmt =
  Format.kasprintf (fun detail -> Error.v (Error.Transport flag) ~op detail) fmt

(* ------------------------------------------------------------------ *)
(* Frames                                                              *)
(* ------------------------------------------------------------------ *)

module Frame = struct
  let max_payload = 16 * 1024 * 1024

  let encode (payload : string) : string =
    let n = String.length payload in
    if n > max_payload then
      invalid_arg "Transport.Frame.encode: payload exceeds max_payload";
    let b = Bytes.create (4 + n) in
    Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
    Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
    Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
    Bytes.set b 3 (Char.chr (n land 0xff));
    Bytes.blit_string payload 0 b 4 n;
    Bytes.unsafe_to_string b

  type reader = {
    buf : Buffer.t;
    mutable pos : int;  (** consumed prefix of [buf] *)
    mutable failed : Error.t option;
  }

  let reader () = { buf = Buffer.create 256; pos = 0; failed = None }
  let buffered (r : reader) : int = Buffer.length r.buf - r.pos
  let push (r : reader) (s : string) : unit = Buffer.add_string r.buf s

  (* Drop the consumed prefix once it dominates the buffer, so a
     long-lived connection does not grow its buffer forever. *)
  let compact (r : reader) : unit =
    if r.pos > 4096 && r.pos > buffered r then begin
      let rest = Buffer.sub r.buf r.pos (buffered r) in
      Buffer.clear r.buf;
      Buffer.add_string r.buf rest;
      r.pos <- 0
    end

  let next (r : reader) : (string option, Error.t) result =
    match r.failed with
    | Some e -> Error e
    | None ->
        if buffered r < 4 then Ok None
        else begin
          let b i = Char.code (Buffer.nth r.buf (r.pos + i)) in
          let len = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
          if len > max_payload then begin
            (* a mangled header: there is no honest way to find the next
               frame boundary, so the stream is poisoned for good *)
            let e =
              terr `Permanent ~op:"frame"
                "length %d exceeds max payload %d — stream desynchronised"
                len max_payload
            in
            r.failed <- Some e;
            Error e
          end
          else if buffered r < 4 + len then Ok None
          else begin
            let payload = Buffer.sub r.buf (r.pos + 4) len in
            r.pos <- r.pos + 4 + len;
            compact r;
            Ok (Some payload)
          end
        end

  let eof (r : reader) : (unit, Error.t) result =
    match r.failed with
    | Some e -> Error e
    | None ->
        if buffered r = 0 then Ok ()
        else
          Error
            (terr `Transient ~op:"frame"
               "stream truncated mid-frame (%d byte(s) buffered)" (buffered r))
end

(* ------------------------------------------------------------------ *)
(* Envelopes                                                           *)
(* ------------------------------------------------------------------ *)

module Envelope = struct
  type req = { id : int; session : string; body : string }

  let render_req { id; session; body } =
    Printf.sprintf "%d @%s %s" id session body

  let perr fmt =
    Format.kasprintf (fun d -> Error (Error.v Error.Parse ~op:"envelope" d)) fmt

  let cut (s : string) : string * string =
    match String.index_opt s ' ' with
    | None -> (s, "")
    | Some i ->
        (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

  let parse_req (s : string) : (req, Error.t) result =
    let idw, rest = cut (String.trim s) in
    match int_of_string_opt idw with
    | None -> perr "expected '<id> @<session> <request>', got %S" s
    | Some id -> (
        let sessw, body = cut rest in
        if String.length sessw < 2 || sessw.[0] <> '@' then
          perr "expected '@<session>' after the id in %S" s
        else
          match String.sub sessw 1 (String.length sessw - 1) with
          | session -> Ok { id; session; body = String.trim body })

  type resp = { rid : int; body : string }

  let render_resp { rid; body } = Printf.sprintf "%d %s" rid body

  let parse_resp (s : string) : (resp, Error.t) result =
    let idw, body = cut (String.trim s) in
    match int_of_string_opt idw with
    | None -> perr "expected '<id> <response>', got %S" s
    | Some rid -> Ok { rid; body = String.trim body }
end

(* ------------------------------------------------------------------ *)
(* The transport-independent server core                               *)
(* ------------------------------------------------------------------ *)

module Core = struct
  type window = { mutable max_seen : int; mutable cached : string }

  type stats = {
    mutable requests : int;
    mutable executed : int;
    mutable dedup_hits : int;
    mutable stale : int;
    mutable overloads : int;
    mutable reaped : int;
  }

  type t = {
    wire : Wire.server;
    max_pending : int;
    dedup : (string, window) Hashtbl.t;
    last_seen : (string, float) Hashtbl.t;
    stats : stats;
  }

  let create ?(max_pending = 64) (wire : Wire.server) : t =
    {
      wire;
      max_pending;
      dedup = Hashtbl.create 32;
      last_seen = Hashtbl.create 32;
      stats =
        {
          requests = 0;
          executed = 0;
          dedup_hits = 0;
          stale = 0;
          overloads = 0;
          reaped = 0;
        };
    }

  let wire t = t.wire
  let stats t = t.stats

  let touch t ~session ~now = Hashtbl.replace t.last_seen session now

  let error_body kind fmt =
    Format.kasprintf
      (fun d -> Wire.render_response (Wire.Resp_error (kind, d)))
      fmt

  (* Execute one wire request line on behalf of [session].  Every bx
     failure — including an injected chaos fault inside the commit
     path — becomes an [error] response; only genuine programming
     errors propagate. *)
  let execute t ~session (body : string) : string =
    t.stats.executed <- t.stats.executed + 1;
    try Wire.handle_line t.wire ~session body
    with exn when Error.is_bx_exn exn -> (
      match Error.of_exn exn with
      | Some e -> error_body e.Error.kind "%s" (Error.message e)
      | None -> error_body Error.Other "%s" (Printexc.to_string exn))

  let handle_payload t ~(now : float) ~(pending : int) (payload : string) :
      string =
    t.stats.requests <- t.stats.requests + 1;
    match Envelope.parse_req payload with
    | Error e ->
        (* no id to echo: answer on id 0, which no client awaits *)
        Envelope.render_resp
          { rid = 0; body = error_body e.Error.kind "%s" (Error.message e) }
    | Ok { id; session; body } -> (
        touch t ~session ~now;
        let reply body = Envelope.render_resp { rid = id; body } in
        match Hashtbl.find_opt t.dedup session with
        | Some w when id < w.max_seen ->
            t.stats.stale <- t.stats.stale + 1;
            reply
              (error_body (Error.Transport `Permanent)
                 "envelope: stale request id %d (high-water %d)" id w.max_seen)
        | Some w when id = w.max_seen ->
            t.stats.dedup_hits <- t.stats.dedup_hits + 1;
            reply w.cached
        | _ when pending > t.max_pending ->
            (* shed unexecuted, dedup untouched: the retry (same id,
               quieter moment) executes normally *)
            t.stats.overloads <- t.stats.overloads + 1;
            reply
              (error_body Error.Overload
                 "connection has %d pending responses (max %d)" pending
                 t.max_pending)
        | found ->
            let resp = execute t ~session body in
            (match found with
            | Some w ->
                w.max_seen <- id;
                w.cached <- resp
            | None ->
                Hashtbl.replace t.dedup session { max_seen = id; cached = resp });
            reply resp)

  let reap t ~(now : float) ~(idle_timeout : float) : string list =
    let dead =
      Hashtbl.fold
        (fun session last acc ->
          if now -. last > idle_timeout then session :: acc else acc)
        t.last_seen []
    in
    List.iter
      (fun session ->
        Hashtbl.remove t.last_seen session;
        Hashtbl.remove t.dedup session;
        Wire.drop_session t.wire session;
        t.stats.reaped <- t.stats.reaped + 1)
      dead;
    List.sort compare dead
end

(* ------------------------------------------------------------------ *)
(* Socket addresses                                                    *)
(* ------------------------------------------------------------------ *)

let addr_of_string (s : string) : (Unix.sockaddr, Error.t) result =
  let malformed () =
    Error
      (terr `Permanent ~op:"addr"
         "expected 'unix:PATH', 'HOST:PORT' or ':PORT', got %S" s)
  in
  if String.length s > 5 && String.sub s 0 5 = "unix:" then
    Ok (Unix.ADDR_UNIX (String.sub s 5 (String.length s - 5)))
  else
    match String.rindex_opt s ':' with
    | None -> malformed ()
    | Some i -> (
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | None -> malformed ()
        | Some port -> (
            let host = if host = "" then "127.0.0.1" else host in
            match Unix.inet_addr_of_string host with
            | ip -> Ok (Unix.ADDR_INET (ip, port))
            | exception _ -> (
                match Unix.gethostbyname host with
                | { Unix.h_addr_list = [||]; _ } -> malformed ()
                | { Unix.h_addr_list; _ } ->
                    Ok (Unix.ADDR_INET (h_addr_list.(0), port))
                | exception Not_found -> malformed ())))

let string_of_addr = function
  | Unix.ADDR_UNIX path -> "unix:" ^ path
  | Unix.ADDR_INET (ip, port) ->
      Printf.sprintf "%s:%d" (Unix.string_of_inet_addr ip) port

let ignore_sigpipe () =
  (* a peer that dies mid-write must surface as EPIPE, not kill us *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* The non-blocking socket server                                      *)
(* ------------------------------------------------------------------ *)

module Server = struct
  type config = {
    max_pending : int;
    max_conns : int;
    idle_timeout : float;
    drain_grace : float;
  }

  let default_config =
    { max_pending = 64; max_conns = 1024; idle_timeout = 30.0; drain_grace = 5.0 }

  type conn = {
    fd : Unix.file_descr;
    reader : Frame.reader;
    outbox : string Queue.t;
    mutable wbuf : string;
    mutable wpos : int;
    mutable last_activity : float;
    mutable closing : bool;  (** flush the outbox, then die *)
    mutable dead : bool;
  }

  type t = {
    mutable listen_fd : Unix.file_descr option;
    bound : Unix.sockaddr;
    unix_path : string option;
    config : config;
    clock : Retry.clock;
    core : Core.t;
    mutable conns : conn list;
    mutable shutdown : bool;
    mutable closed : bool;
  }

  let listen ?(config = default_config) ?(clock = Retry.system_clock)
      (addr : Unix.sockaddr) (wire : Wire.server) : t =
    ignore_sigpipe ();
    let unix_path =
      match addr with
      | Unix.ADDR_UNIX path ->
          (try Unix.unlink path with Unix.Unix_error _ -> ());
          Some path
      | _ -> None
    in
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    (match addr with
    | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
    | _ -> ());
    Unix.bind fd addr;
    Unix.listen fd 128;
    Unix.set_nonblock fd;
    {
      listen_fd = Some fd;
      bound = Unix.getsockname fd;
      unix_path;
      config;
      clock;
      core = Core.create ~max_pending:config.max_pending wire;
      conns = [];
      shutdown = false;
      closed = false;
    }

  let addr t = t.bound
  let core t = t.core
  let conn_count t = List.length t.conns
  let shutting_down t = t.shutdown
  let request_shutdown t = t.shutdown <- true

  let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

  let close t =
    if not t.closed then begin
      List.iter (fun c -> close_fd c.fd) t.conns;
      t.conns <- [];
      Option.iter close_fd t.listen_fd;
      t.listen_fd <- None;
      Option.iter
        (fun p -> try Unix.unlink p with Unix.Unix_error _ -> ())
        t.unix_path;
      t.closed <- true
    end

  let pending (c : conn) : int =
    Queue.length c.outbox + if c.wpos < String.length c.wbuf then 1 else 0

  let enqueue (c : conn) (payload : string) : unit =
    Queue.add (Frame.encode payload) c.outbox

  (* Decode every complete frame buffered on [c] and answer it.  A
     framing error gets a best-effort typed error response, then the
     connection flushes and dies — the stream cannot be re-synced. *)
  let dispatch t (c : conn) : unit =
    let rec go () =
      match Frame.next c.reader with
      | Ok None -> ()
      | Ok (Some payload) ->
          let resp =
            Core.handle_payload t.core ~now:(c.last_activity)
              ~pending:(pending c) payload
          in
          enqueue c resp;
          go ()
      | Error e ->
          enqueue c
            (Envelope.render_resp
               {
                 rid = 0;
                 body =
                   Wire.render_response
                     (Wire.Resp_error (e.Error.kind, Error.message e));
               });
          c.closing <- true
    in
    go ()

  let read_conn t (c : conn) : unit =
    if not c.closing then begin
      let buf = Bytes.create 65536 in
      let rec go () =
        match Unix.read c.fd buf 0 (Bytes.length buf) with
        | 0 -> c.dead <- true
        | n ->
            Frame.push c.reader (Bytes.sub_string buf 0 n);
            c.last_activity <- t.clock.Retry.now ();
            if n = Bytes.length buf then go ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            ()
        | exception Unix.Unix_error _ -> c.dead <- true
      in
      go ();
      if not c.dead then dispatch t c
    end

  let write_conn (c : conn) : unit =
    let rec go () =
      if c.wpos >= String.length c.wbuf then
        match Queue.take_opt c.outbox with
        | None -> if c.closing then c.dead <- true
        | Some frame ->
            c.wbuf <- frame;
            c.wpos <- 0;
            go ()
      else
        match
          Unix.write_substring c.fd c.wbuf c.wpos
            (String.length c.wbuf - c.wpos)
        with
        | n ->
            c.wpos <- c.wpos + n;
            go ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            ()
        | exception Unix.Unix_error _ -> c.dead <- true
    in
    go ()

  let accept_loop t : unit =
    match t.listen_fd with
    | None -> ()
    | Some lfd ->
        let rec go () =
          match Unix.accept lfd with
          | fd, _peer ->
              if List.length t.conns >= t.config.max_conns then
                (* connection-level load shedding: beyond the bound we
                   cannot even promise queue space, so refuse outright *)
                close_fd fd
              else begin
                Unix.set_nonblock fd;
                t.conns <-
                  {
                    fd;
                    reader = Frame.reader ();
                    outbox = Queue.create ();
                    wbuf = "";
                    wpos = 0;
                    last_activity = t.clock.Retry.now ();
                    closing = false;
                    dead = false;
                  }
                  :: t.conns;
                go ()
              end
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
              ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | exception Unix.Unix_error _ -> ()
        in
        go ()

  let drained t =
    List.for_all
      (fun c -> Queue.is_empty c.outbox && c.wpos >= String.length c.wbuf)
      t.conns

  let step t ~(timeout : float) : unit =
    if not t.closed then begin
      let now = t.clock.Retry.now () in
      (* heartbeat reaping: connections silent past the idle bound die;
         sessions outlive their connection by 4x (a client may be
         reconnecting), then their dedup window and binding go too *)
      List.iter
        (fun c ->
          if now -. c.last_activity > t.config.idle_timeout then c.dead <- true)
        t.conns;
      ignore
        (Core.reap t.core ~now ~idle_timeout:(4.0 *. t.config.idle_timeout));
      List.iter (fun c -> if c.dead then close_fd c.fd) t.conns;
      t.conns <- List.filter (fun c -> not c.dead) t.conns;
      if t.shutdown then begin
        (* stop accepting; what is queued still flushes *)
        Option.iter close_fd t.listen_fd;
        t.listen_fd <- None
      end;
      let reads =
        (match t.listen_fd with Some fd -> [ fd ] | None -> [])
        @ List.map (fun c -> c.fd) t.conns
      in
      let writes =
        List.filter_map
          (fun c -> if pending c > 0 then Some c.fd else None)
          t.conns
      in
      match Unix.select reads writes [] timeout with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | readable, writable, _ ->
          (match t.listen_fd with
          | Some lfd when List.mem lfd readable -> accept_loop t
          | _ -> ());
          List.iter
            (fun c -> if List.mem c.fd readable then read_conn t c)
            t.conns;
          List.iter
            (fun c -> if List.mem c.fd writable then write_conn c)
            t.conns;
          List.iter (fun c -> if c.dead then close_fd c.fd) t.conns;
          t.conns <- List.filter (fun c -> not c.dead) t.conns
    end

  let run t : unit =
    let drain_deadline = ref nan in
    let rec loop () =
      if not t.closed then begin
        step t ~timeout:0.05;
        if t.shutdown then begin
          if Float.is_nan !drain_deadline then
            drain_deadline := t.clock.Retry.now () +. t.config.drain_grace;
          if drained t || t.clock.Retry.now () > !drain_deadline then close t
          else loop ()
        end
        else loop ()
      end
    in
    loop ()
end

(* ------------------------------------------------------------------ *)
(* The retrying client                                                 *)
(* ------------------------------------------------------------------ *)

module Remote_session = struct
  type endpoint = {
    ep_send : string -> (unit, Error.t) result;
    ep_recv : timeout:float -> (string, Error.t) result;
    ep_reconnect : unit -> (unit, Error.t) result;
    ep_close : unit -> unit;
  }

  (* ---- the TCP/Unix-domain endpoint ---- *)

  let tcp_endpoint ?(pump = fun () -> ()) ?(clock = Retry.system_clock)
      (addr : Unix.sockaddr) : endpoint =
    ignore_sigpipe ();
    let fd : Unix.file_descr option ref = ref None in
    let reader = ref (Frame.reader ()) in
    let inbox : string Queue.t = Queue.create () in
    let classify exn =
      match Error.of_exn exn with
      | Some e -> e
      | None -> terr `Transient ~op:"tcp" "%s" (Printexc.to_string exn)
    in
    let disconnect () =
      Option.iter (fun f -> try Unix.close f with Unix.Unix_error _ -> ()) !fd;
      fd := None
    in
    let connect () =
      disconnect ();
      match
        let f = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
        (try Unix.connect f addr
         with exn ->
           (try Unix.close f with Unix.Unix_error _ -> ());
           raise exn);
        f
      with
      | f ->
          fd := Some f;
          reader := Frame.reader ();
          Queue.clear inbox;
          Ok ()
      | exception exn -> Error (classify exn)
    in
    let ensure () =
      match !fd with
      | Some f -> Ok f
      | None -> (
          match connect () with
          | Ok () -> Ok (Option.get !fd)
          | Error e -> Error e)
    in
    let ep_send payload =
      match ensure () with
      | Error e -> Error e
      | Ok f -> (
          let data = Frame.encode payload in
          match
            let n = String.length data in
            let rec w off =
              if off < n then w (off + Unix.write_substring f data off (n - off))
            in
            w 0
          with
          | () -> Ok ()
          | exception exn ->
              disconnect ();
              Error (classify exn))
    in
    let ep_recv ~timeout =
      let deadline = clock.Retry.now () +. timeout in
      let rec wait () =
        if not (Queue.is_empty inbox) then Ok (Queue.take inbox)
        else
          match !fd with
          | None -> Error (terr `Transient ~op:"tcp" "not connected")
          | Some f -> (
              pump ();
              let remaining = deadline -. clock.Retry.now () in
              if remaining <= 0.0 then
                Error (Error.v Error.Timeout ~op:"tcp" "no frame arrived")
              else
                (* short slices so [pump] keeps running while we wait —
                   the hook that lets one thread be client and server *)
                let slice = Float.min remaining 0.05 in
                match Unix.select [ f ] [] [] slice with
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
                | [], _, _ -> wait ()
                | _ :: _, _, _ -> (
                    let buf = Bytes.create 65536 in
                    match Unix.read f buf 0 (Bytes.length buf) with
                    | 0 ->
                        disconnect ();
                        Error
                          (terr `Transient ~op:"tcp"
                             "connection closed by peer")
                    | n -> (
                        Frame.push !reader (Bytes.sub_string buf 0 n);
                        let rec drain () =
                          match Frame.next !reader with
                          | Ok (Some p) ->
                              Queue.add p inbox;
                              drain ()
                          | Ok None -> Ok ()
                          | Error e ->
                              disconnect ();
                              Error e
                        in
                        match drain () with
                        | Ok () -> wait ()
                        | Error e -> Error e)
                    | exception
                        Unix.Unix_error
                          ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                        wait ()
                    | exception exn ->
                        disconnect ();
                        Error (classify exn)))
      in
      wait ()
    in
    {
      ep_send;
      ep_recv;
      ep_reconnect = connect;
      ep_close = disconnect;
    }

  (* ---- the session driver ---- *)

  type t = {
    ep : endpoint;
    name : string;
    side : Session.side;
    policy : Retry.policy;
    clock : Retry.clock;
    mutable base : int;
    mutable next_id : int;
    mutable current : (int * string) option;  (** last (id, payload) sent *)
  }

  let name t = t.name
  let side t = t.side
  let base t = t.base
  let last_id t = match t.current with Some (id, _) -> id | None -> 0
  let close t = t.ep.ep_close ()

  (* One send-and-await under the per-attempt deadline.  Responses to
     other ids (stale retransmits, duplicated frames) are discarded; a
     response to {e our} id whose body cannot be parsed is treated as a
     transient transport failure — resending the same id is safe, the
     dedup window answers from cache. *)
  let attempt_once t ~(id : int) ~(payload : string) :
      (Wire.response, Error.t) result =
    match t.ep.ep_send payload with
    | Error e -> Error e
    | Ok () ->
        let deadline = t.clock.Retry.now () +. t.policy.Retry.attempt_timeout in
        let rec await () =
          let remaining = deadline -. t.clock.Retry.now () in
          if remaining <= 0.0 then
            Error
              (Error.v Error.Timeout ~op:"remote"
                 (Printf.sprintf "%s: no response to request %d" t.name id))
          else
            match t.ep.ep_recv ~timeout:remaining with
            | Error e -> Error e
            | Ok frame -> (
                match Envelope.parse_resp frame with
                | Error _ -> await ()
                | Ok { rid; _ } when rid <> id -> await ()
                | Ok { body; _ } -> (
                    match Wire.parse_response body with
                    | resp -> Ok resp
                    | exception exn when Error.is_bx_exn exn ->
                        Error
                          (terr `Transient ~op:"remote"
                             "unparseable response to request %d: %s" id
                             (String.escaped body))))
        in
        await ()

  (* The full robustness policy around one logical request: see the
     module comment.  [fresh] is the is_transient/retryable split in
     action — unknown outcomes keep the envelope id, definite
     rejections take a new one. *)
  let request t (req : Wire.request) : (Wire.response, Error.t) result =
    let body = Wire.render_request req in
    let fresh = ref true in
    Retry.run ~policy:t.policy ~clock:t.clock ~key:t.name
      ~retryable:Error.retryable (fun ~attempt:_ ->
        if !fresh then begin
          let id = t.next_id in
          t.next_id <- id + 1;
          t.current <-
            Some (id, Envelope.render_req { Envelope.id; session = t.name; body });
          fresh := false
        end;
        let id, payload = Option.get t.current in
        match attempt_once t ~id ~payload with
        | Error e ->
            (* outcome unknown: reconnect, retry under the same id *)
            ignore (t.ep.ep_reconnect ());
            Error e
        | Ok (Wire.Resp_conflict (_, msg)) ->
            fresh := true;
            Error (Error.v Error.Conflict ~op:"remote" msg)
        | Ok (Wire.Resp_error (kind, msg)) ->
            let e = Error.v kind ~op:"remote" msg in
            (* a definite rejection re-executes under a fresh id; a shed
               (Overload) or transport-kind answer never executed, so
               the same id must be kept for the retry *)
            if Error.retryable e && not (Error.is_transient e) then
              fresh := true;
            Error e
        | Ok resp -> Ok resp)

  let protocol_error ~expected resp =
    Error
      (Error.v Error.Other ~op:"remote"
         (Printf.sprintf "expected %s, got %s" expected
            (Wire.render_response resp)))

  let bind ?policy ?(clock = Retry.system_clock) (ep : endpoint)
      ~(name : string) ~(side : Session.side) : (t, Error.t) result =
    let policy =
      match policy with Some p -> p | None -> Retry.default ()
    in
    let t =
      { ep; name; side; policy; clock; base = 0; next_id = 1; current = None }
    in
    match request t (Wire.Hello (name, side)) with
    | Ok (Wire.Resp_ok v) ->
        t.base <- v;
        Ok t
    | Ok resp -> (
        match protocol_error ~expected:"ok" resp with Error e -> Error e | Ok _ -> assert false)
    | Error e -> Error e

  let submit t (op : [ `Set of Row.t list | `Batch of Row_delta.t list ]) :
      (int, Error.t) result =
    let req =
      match op with `Set rows -> Wire.Set rows | `Batch ds -> Wire.Batch ds
    in
    match request t req with
    | Ok (Wire.Resp_ok v) ->
        t.base <- v;
        Ok v
    | Ok resp -> protocol_error ~expected:"ok" resp
    | Error e -> Error e

  let submit_rebase = submit

  let pull t : (int * int, Error.t) result =
    match request t Wire.Pull with
    | Ok (Wire.Resp_update (v, n)) ->
        t.base <- v;
        Ok (v, n)
    | Ok resp -> protocol_error ~expected:"update" resp
    | Error e -> Error e

  let view t : (int * Row.t list, Error.t) result =
    match request t Wire.Get with
    | Ok (Wire.Resp_view (v, rows)) -> Ok (v, rows)
    | Ok resp -> protocol_error ~expected:"view" resp
    | Error e -> Error e

  let ping t : (unit, Error.t) result =
    match request t Wire.Ping with
    | Ok Wire.Resp_pong -> Ok ()
    | Ok resp -> (
        match protocol_error ~expected:"pong" resp with
        | Error e -> Error e
        | Ok _ -> assert false)
    | Error e -> Error e

  let bye t : (unit, Error.t) result =
    match request t Wire.Bye with
    | Ok (Wire.Resp_ok _) -> Ok ()
    | Ok resp -> (
        match protocol_error ~expected:"ok" resp with
        | Error e -> Error e
        | Ok _ -> assert false)
    | Error e -> Error e

  (* Settle an in-doubt request: same id, fresh attempt budget.  Run it
     when {!request} failed transiently and the caller must know
     whether the op applied (the soak's accounting does) — by dedup the
     resend can answer from cache but never double-apply. *)
  let resolve t : (Wire.response, Error.t) result =
    match t.current with
    | None ->
        Error (Error.v Error.Other ~op:"remote" "nothing in flight to resolve")
    | Some (id, payload) ->
        Retry.run ~policy:t.policy ~clock:t.clock ~key:(t.name ^ "/resolve")
          ~retryable:Error.is_transient (fun ~attempt:_ ->
            match attempt_once t ~id ~payload with
            | Error e ->
                ignore (t.ep.ep_reconnect ());
                Error e
            | Ok resp -> Ok resp)
end

(* ------------------------------------------------------------------ *)
(* The deterministic chaos network                                     *)
(* ------------------------------------------------------------------ *)

module Chaos_net = struct
  type stats = {
    mutable dropped : int;
    mutable duped : int;
    mutable reordered : int;
    mutable truncated : int;
    mutable delayed : int;
    mutable half_opened : int;
  }

  type flight = { due : int; chunk : string }

  type cconn = {
    sreader : Frame.reader;  (** server-side reassembly of client bytes *)
    mutable to_server : flight list;  (** oldest first *)
    mutable to_client : flight list;
    mutable round : int;
    mutable alive : bool;
    mutable half_open : bool;
  }

  type slot = { mutable conn : cconn; inbox : string Queue.t }

  type t = {
    core : Core.t;
    clk : Retry.clock;
    stats : stats;
    mutable slots : slot list;
  }

  let create ?max_pending ?clock (wire : Wire.server) : t =
    let clk =
      match clock with Some c -> c | None -> Retry.manual_clock ()
    in
    {
      core = Core.create ?max_pending wire;
      clk;
      stats =
        {
          dropped = 0;
          duped = 0;
          reordered = 0;
          truncated = 0;
          delayed = 0;
          half_opened = 0;
        };
      slots = [];
    }

  let clock t = t.clk
  let core t = t.core
  let stats t = t.stats

  (* A fault site consulted for a yes/no decision: the injected
     Error.Fault is the "yes".  With no chaos instance installed this
     is always "no" — the net is perfect. *)
  let decide (site : string) : bool =
    try
      Chaos.point site;
      false
    with exn when Error.degradable_exn exn -> true

  let fresh_conn () : cconn =
    {
      sreader = Frame.reader ();
      to_server = [];
      to_client = [];
      round = 0;
      alive = true;
      half_open = false;
    }

  (* Deliver everything due on the client->server path, running each
     complete frame through the real core; queue responses (through
     their own loss sites) on the return path. *)
  let pump t (c : cconn) : unit =
    c.round <- c.round + 1;
    let ready, rest = List.partition (fun f -> f.due <= c.round) c.to_server in
    c.to_server <- rest;
    List.iter (fun f -> Frame.push c.sreader f.chunk) ready;
    let rec serve () =
      match Frame.next c.sreader with
      | Ok None -> ()
      | Error _ ->
          (* the server drops a desynchronised connection *)
          c.alive <- false
      | Ok (Some payload) ->
          let resp =
            Core.handle_payload t.core ~now:(t.clk.Retry.now ())
              ~pending:(List.length c.to_client) payload
          in
          if not c.half_open then begin
            if decide "net.drop" then t.stats.dropped <- t.stats.dropped + 1
            else begin
              let due =
                if decide "net.delay" then begin
                  t.stats.delayed <- t.stats.delayed + 1;
                  c.round + 3
                end
                else c.round + 1
              in
              c.to_client <- c.to_client @ [ { due; chunk = resp } ];
              if decide "net.dup" then begin
                t.stats.duped <- t.stats.duped + 1;
                c.to_client <- c.to_client @ [ { due; chunk = resp } ]
              end
            end
          end;
          serve ()
    in
    serve ()

  let deliver_ready (c : cconn) (inbox : string Queue.t) : unit =
    let ready, rest = List.partition (fun f -> f.due <= c.round) c.to_client in
    c.to_client <- rest;
    List.iter (fun f -> Queue.add f.chunk inbox) ready

  let endpoint t : Remote_session.endpoint =
    let slot = { conn = fresh_conn (); inbox = Queue.create () } in
    t.slots <- slot :: t.slots;
    let lost () = terr `Transient ~op:"chaos-net" "connection lost" in
    let ep_send payload =
      let c = slot.conn in
      if not c.alive then Error (lost ())
      else begin
        let frame = Frame.encode payload in
        (if decide "net.truncate" then begin
           (* a prefix arrives, then the wire dies: the server reader is
              left mid-frame, the client finds out on its next receive *)
           t.stats.truncated <- t.stats.truncated + 1;
           let keep = max 1 (String.length frame / 2) in
           c.to_server <-
             c.to_server @ [ { due = c.round + 1; chunk = String.sub frame 0 keep } ];
           c.alive <- false
         end
         else if decide "net.halfopen" then begin
           (* the request side still works; every response from now on
              vanishes — the classic "did my commit apply?" *)
           t.stats.half_opened <- t.stats.half_opened + 1;
           c.half_open <- true;
           c.to_server <- c.to_server @ [ { due = c.round + 1; chunk = frame } ]
         end
         else if decide "net.drop" then t.stats.dropped <- t.stats.dropped + 1
         else begin
           let due =
             if decide "net.reorder" then begin
               (* reordered = overtaken: with one frame outstanding per
                  connection, the observable reordering is a copy that
                  arrives after everything sent later — typically once
                  the session has moved to a higher id, where the
                  server's stale-duplicate refusal catches it *)
               t.stats.reordered <- t.stats.reordered + 1;
               c.round + 150
             end
             else if decide "net.delay" then begin
               t.stats.delayed <- t.stats.delayed + 1;
               c.round + 3
             end
             else c.round + 1
           in
           c.to_server <- c.to_server @ [ { due; chunk = frame } ];
           if decide "net.dup" then begin
             t.stats.duped <- t.stats.duped + 1;
             c.to_server <- c.to_server @ [ { due; chunk = frame } ]
           end
         end);
        Ok ()
      end
    in
    let ep_recv ~timeout =
      let deadline = t.clk.Retry.now () +. timeout in
      let rec wait () =
        if not (Queue.is_empty slot.inbox) then Ok (Queue.take slot.inbox)
        else if not slot.conn.alive then Error (lost ())
        else if t.clk.Retry.now () >= deadline then
          Error (Error.v Error.Timeout ~op:"chaos-net" "no frame arrived")
        else begin
          (* waiting IS time passing: tick the shared clock, move the
             network one round — fully deterministic under a manual
             clock *)
          t.clk.Retry.sleep 0.01;
          pump t slot.conn;
          deliver_ready slot.conn slot.inbox;
          wait ()
        end
      in
      wait ()
    in
    let ep_reconnect () =
      (* in-flight frames die with the old connection *)
      slot.conn <- fresh_conn ();
      Queue.clear slot.inbox;
      Ok ()
    in
    {
      Remote_session.ep_send;
      ep_recv;
      ep_reconnect;
      ep_close = (fun () -> slot.conn.alive <- false);
    }

  let drain t : unit =
    Chaos.protected (fun () ->
        List.iter
          (fun slot ->
            let c = slot.conn in
            if c.alive then begin
              (* everything still in flight — including massively
                 overtaken frames — arrives now *)
              let now_due f = { f with due = 0 } in
              c.to_server <- List.map now_due c.to_server;
              c.to_client <- List.map now_due c.to_client;
              let rec go n =
                if
                  n > 0
                  && (c.to_server <> [] || c.to_client <> []
                     || Frame.buffered c.sreader > 0)
                then begin
                  pump t c;
                  deliver_ready c slot.inbox;
                  go (n - 1)
                end
              in
              go 64
            end)
          t.slots)
end
