(** The versioned append-only operation log behind a replicated store.

    Versions are assigned densely: the [n]-th committed operation has
    version [n], version [0] is the initial state.  Periodic snapshots
    pin (version, state) pairs so crash recovery replays a bounded
    suffix instead of the whole history.  States in this library are
    immutable values, so a snapshot is just a retained binding — there
    is no copying cost, only the decision of {e which} versions stay
    reachable. *)

type 'op entry = { version : int; session : string; op : 'op }

type ('op, 's) t = {
  mutable entries : 'op entry list;  (** newest first *)
  mutable snapshots : (int * 's) list;  (** newest first; [(0, init)] seed *)
  snapshot_every : int;
}

let create ?(snapshot_every = 8) ~(init : 's) () : ('op, 's) t =
  if snapshot_every <= 0 then
    invalid_arg "Oplog.create: snapshot_every must be positive";
  { entries = []; snapshots = [ (0, init) ]; snapshot_every }

let head_version (t : ('op, 's) t) : int =
  match t.entries with [] -> 0 | e :: _ -> e.version

let length (t : ('op, 's) t) : int = List.length t.entries

(** Append the next operation; the new head version is returned. *)
let append (t : ('op, 's) t) ~(session : string) (op : 'op) : int =
  let version = head_version t + 1 in
  t.entries <- { version; session; op } :: t.entries;
  version

(** Entries with versions strictly above [v], oldest first — the replay
    (or rebase) suffix.  Total for every integer [v]: above head it is
    [[]], at or below 0 it is the whole log (snapshots never evict
    entries).  The early exit at the first version [<= v] matches the
    list-filter reference precisely because [append] keeps the
    newest-first list strictly decreasing — see the contract note in
    the interface. *)
let entries_since (t : ('op, 's) t) (v : int) : 'op entry list =
  let rec take acc = function
    | e :: rest when e.version > v -> take (e :: acc) rest
    | _ -> acc
  in
  take [] t.entries

let snapshot_due (t : ('op, 's) t) : bool =
  head_version t mod t.snapshot_every = 0

let record_snapshot (t : ('op, 's) t) (version : int) (state : 's) : unit =
  t.snapshots <- (version, state) :: t.snapshots

(** The most recent snapshot — where a crashed store wakes up. *)
let latest_snapshot (t : ('op, 's) t) : int * 's =
  match t.snapshots with
  | s :: _ -> s
  | [] -> assert false (* [(0, init)] is seeded at creation *)

let sessions (t : ('op, 's) t) : string list =
  List.sort_uniq String.compare
    (List.rev_map (fun e -> e.session) t.entries)
