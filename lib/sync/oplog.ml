(** The versioned append-only operation log behind a replicated store.

    Versions are assigned densely: the [n]-th committed operation has
    version [n], version [0] is the initial state.  Periodic snapshots
    pin (version, state) pairs so crash recovery replays a bounded
    suffix instead of the whole history.  States in this library are
    immutable values, so a snapshot is just a retained binding — there
    is no copying cost, only the decision of {e which} versions stay
    reachable.

    Compaction introduces a {e horizon}: the version below which
    entries have been dropped because their effects are already folded
    into the retained snapshot at that version.  A log with horizon 0
    retains full history and behaves exactly as before. *)

type 'op entry = { version : int; session : string; op : 'op }

type ('op, 's) t = {
  mutable entries : 'op entry list;  (** newest first *)
  mutable snapshots : (int * 's) list;
      (** newest first; seeded [(horizon, init)] *)
  mutable horizon : int;  (** entries with version <= horizon are gone *)
  snapshot_every : int;
}

let create ?(snapshot_every = 8) ?(horizon = 0) ~(init : 's) () :
    ('op, 's) t =
  if snapshot_every <= 0 then
    invalid_arg "Oplog.create: snapshot_every must be positive";
  if horizon < 0 then invalid_arg "Oplog.create: horizon must be >= 0";
  { entries = []; snapshots = [ (horizon, init) ]; horizon; snapshot_every }

let horizon (t : ('op, 's) t) : int = t.horizon

let head_version (t : ('op, 's) t) : int =
  match t.entries with [] -> t.horizon | e :: _ -> e.version

let length (t : ('op, 's) t) : int = List.length t.entries

(** Append the next operation; the new head version is returned. *)
let append (t : ('op, 's) t) ~(session : string) (op : 'op) : int =
  let version = head_version t + 1 in
  t.entries <- { version; session; op } :: t.entries;
  version

(** Entries with versions strictly above [v], oldest first — the replay
    (or rebase) suffix.  Total for every integer [v] {e at or above the
    horizon} (and for any [v] when the horizon is 0): above head it is
    [[]], at or below 0 it is the whole retained log.  Below a positive
    horizon the suffix no longer exists — asking for it is a protocol
    error surfaced as a typed [Error.Corrupt]; callers that can resync
    should use {!read_since} instead.  The early exit at the first
    version [<= v] matches the list-filter reference precisely because
    [append] keeps the newest-first list strictly decreasing — see the
    contract note in the interface. *)
let entries_since (t : ('op, 's) t) (v : int) : 'op entry list =
  if t.horizon > 0 && v < t.horizon then
    Esm_core.Error.raise_error Corrupt ~op:"entries_since"
      "version %d is below retained horizon %d: resync from snapshot" v
      t.horizon
  else
    let rec take acc = function
      | e :: rest when e.version > v -> take (e :: acc) rest
      | _ -> acc
    in
    take [] t.entries

(** The resync-aware read: either the replay suffix or, when [v] has
    fallen below a positive horizon, the latest snapshot to restart
    from.  Total for every integer [v]. *)
let read_since (t : ('op, 's) t) (v : int) :
    [ `Entries of 'op entry list | `Resync of int * 's ] =
  if t.horizon > 0 && v < t.horizon then
    (* resync from the *latest* snapshot — it covers the longest
       prefix, so the caller replays the shortest suffix *)
    let v', s' = match t.snapshots with x :: _ -> x | [] -> assert false in
    `Resync (v', s')
  else `Entries (entries_since t v)

let snapshot_due (t : ('op, 's) t) : bool =
  head_version t mod t.snapshot_every = 0

let record_snapshot (t : ('op, 's) t) (version : int) (state : 's) : unit =
  t.snapshots <- (version, state) :: t.snapshots

(** The most recent snapshot — where a crashed store wakes up. *)
let latest_snapshot (t : ('op, 's) t) : int * 's =
  match t.snapshots with
  | s :: _ -> s
  | [] -> assert false (* [(horizon, init)] is seeded at creation *)

(** Drop every entry at or below the latest snapshot version, and every
    older snapshot binding: after compaction the latest snapshot is the
    new horizon — the exact prefix whose effects it already reflects.
    Returns the number of entries dropped (0 when the snapshot is
    already the horizon).  Idempotent. *)
let compact (t : ('op, 's) t) : int =
  let v, s = latest_snapshot t in
  if v <= t.horizon then 0
  else begin
    let keep, dropped =
      List.partition (fun e -> e.version > v) t.entries
    in
    t.entries <- keep;
    t.snapshots <- [ (v, s) ];
    t.horizon <- v;
    List.length dropped
  end

let sessions (t : ('op, 's) t) : string list =
  List.sort_uniq String.compare
    (List.rev_map (fun e -> e.session) t.entries)
