(** A client session bound to one side of a replicated store.

    A session remembers the store version it last synchronised at (its
    {e base}) and submits operations with an optimistic check against
    it.  When another session committed first the store answers with a
    typed [Conflict]; {!submit_rebase} then pulls the winning suffix —
    rebasing is just reading, because the store already replayed the
    winners through the bx — and resubmits on top, which is
    last-writer-wins {e through the bx}: the losing session's operation
    is re-applied to the state the winners produced, so whatever of the
    winners' work survives is exactly what the bx's put semantics
    preserves.

    Chaos site: ["sync.session.rebase"] (an injected fault while
    rebasing is absorbed — the pull is a pure read and can always be
    retried). *)

open Esm_core

type side = [ `A | `B ]

let side_name = function `A -> "a" | `B -> "b"

type ('a, 'b, 'da, 'db) t = {
  store : ('a, 'b, 'da, 'db) Store.t;
  name : string;
  side : side;
  mutable base : int;  (** last store version this session synced at *)
}

let bind (store : ('a, 'b, 'da, 'db) Store.t) ~(name : string)
    ~(side : side) : ('a, 'b, 'da, 'db) t =
  { store; name; side; base = Store.version store }

let name t = t.name
let side t = t.side
let base t = t.base
let store t = t.store

let view (t : ('a, 'b, 'da, 'db) t) : [ `A of 'a | `B of 'b ] =
  match t.side with
  | `A -> `A (Store.view_a t.store)
  | `B -> `B (Store.view_b t.store)

(* Sessions see one view; an op on the other side is a protocol error,
   not a conflict. *)
let check_side (t : ('a, 'b, 'da, 'db) t) (op : ('a, 'b, 'da, 'db) Store.op)
    : (unit, Error.t) result =
  let ok =
    match (op, t.side) with
    | (Store.Set_a _ | Store.Batch_a _), `A -> true
    | (Store.Set_b _ | Store.Batch_b _), `B -> true
    | Store.Exec _, _ -> true
    | _ -> false
  in
  if ok then Ok ()
  else
    Error
      (Error.v Error.Other ~op:"submit"
         (Printf.sprintf "session %s is bound to the %s view but submitted %s"
            t.name (side_name t.side) (Store.op_kind op)))

let submit (t : ('a, 'b, 'da, 'db) t) (op : ('a, 'b, 'da, 'db) Store.op) :
    (int, Error.t) result =
  match check_side t op with
  | Error _ as e -> e
  | Ok () -> (
      match Store.commit ~expect:t.base ~session:t.name t.store op with
      | Ok v ->
          t.base <- v;
          Ok v
      | Error _ as e -> e)

let pull (t : ('a, 'b, 'da, 'db) t) :
    ('a, 'b, 'da, 'db) Store.op Oplog.entry list =
  (* the overwhelmingly common poll: nothing committed since this
     session's base — answer [] without touching the oplog at all *)
  if t.base = Store.version t.store then begin
    Esm_incr.Stats.hit "session.poll";
    []
  end
  else begin
    Esm_incr.Stats.miss "session.poll";
    (* compaction may have dropped the suffix this session would have
       pulled: the store's current view already reflects those entries
       (that is what made them compactable), so the session resyncs by
       skipping to the snapshot version and pulling what follows *)
    let entries =
      match Store.read_since t.store t.base with
      | `Entries es -> es
      | `Resync (v, _) ->
          Esm_incr.Stats.miss "session.resync";
          Store.entries_since t.store v
    in
    t.base <- Store.version t.store;
    entries
  end

let submit_rebase (t : ('a, 'b, 'da, 'db) t)
    (op : ('a, 'b, 'da, 'db) Store.op) :
    (int * ('a, 'b, 'da, 'db) Store.op Oplog.entry list, Error.t) result =
  match check_side t op with
  | Error e -> Error e
  | Ok () -> (
      (* the rebase itself is a pure read of the oplog suffix — an
         injected fault here is absorbable, nothing was mutated *)
      (try Chaos.point "sync.session.rebase"
       with exn when Error.degradable_exn exn ->
         Chaos.note_fallback "sync.session.rebase");
      let rebased = pull t in
      match submit t op with Ok v -> Ok (v, rebased) | Error e -> Error e)
