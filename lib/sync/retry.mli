(** Bounded, deterministic retry with exponential backoff and
    seed-keyed jitter (see [docs/SYNC.md], "Transport, retries, and
    overload").

    Everything time-shaped goes through a {!clock}, so the whole policy
    — attempt bounds, per-attempt timeouts, the overall deadline, the
    jittered sleeps — is testable against a manual clock without a
    single real wait; and the jitter is derived from
    [(seed, key, attempt)] the same way {!Esm_core.Chaos} derives its
    fault schedule, so a fixed seed replays the exact same delays. *)

open Esm_core

type policy = {
  max_attempts : int;  (** total tries per request, including the first *)
  base_delay : float;  (** seconds before the first retry *)
  max_delay : float;  (** backoff growth cap *)
  multiplier : float;  (** exponential growth factor *)
  jitter : float;
      (** jitter fraction in [[0, 1]]: each delay is scaled by a
          deterministic factor in [[1 - jitter, 1 + jitter]] *)
  seed : int;  (** keys the jitter schedule *)
  attempt_timeout : float;  (** per-attempt response deadline, seconds *)
  deadline : float;  (** overall budget per request, seconds *)
}

val default : ?seed:int -> unit -> policy
(** 6 attempts, 25 ms base doubling to a 1 s cap, 50% jitter, 1 s
    per-attempt timeout, 30 s overall deadline. *)

val delay : policy -> key:string -> attempt:int -> float
(** The backoff before retry [attempt] (1-based): [base_delay *
    multiplier^(attempt-1)] capped at [max_delay], scaled by the
    deterministic jitter factor for [(seed, key, attempt)].  Pure: the
    same policy, key and attempt always yield the same delay. *)

type clock = {
  now : unit -> float;  (** seconds, monotonic enough for deadlines *)
  sleep : float -> unit;
}

val system_clock : clock
(** [Unix.gettimeofday] / [Unix.sleepf]. *)

val manual_clock : ?start:float -> unit -> clock
(** A fake clock for tests and the in-process chaos net: [now] reads a
    counter that only [sleep] advances — sleeping is free and
    deterministic. *)

val run :
  policy:policy ->
  clock:clock ->
  key:string ->
  retryable:(Error.t -> bool) ->
  (attempt:int -> ('a, Error.t) result) ->
  ('a, Error.t) result
(** Run [f ~attempt] for [attempt = 1, 2, …] until it succeeds, fails
    non-retryably, exhausts [max_attempts] (the last error is
    returned), or blows the overall [deadline] (a typed
    {!Esm_core.Error.Timeout} is returned — checked both before each
    attempt and before each backoff sleep).  Between attempts, sleeps
    {!delay} on the given clock. *)
