(** The versioned append-only operation log behind a replicated store
    (see [docs/SYNC.md]).

    Versions are dense: the [n]-th committed operation has version [n];
    version [0] is the initial state.  Snapshots pin (version, state)
    pairs — states are immutable values, so a snapshot is a retained
    binding, and crash recovery replays only the suffix after the most
    recent one.

    {!compact} drops the prefix at or below the latest snapshot and
    records its version as the {e horizon}: the effects of every
    dropped entry are already reflected in that snapshot (the
    effect-quotienting reading), so nothing observable is lost — but
    replicas whose high-water mark has fallen below the horizon can no
    longer be served a suffix and must resync from the snapshot
    ({!read_since}). *)

type 'op entry = { version : int; session : string; op : 'op }

type ('op, 's) t

val create :
  ?snapshot_every:int -> ?horizon:int -> init:'s -> unit -> ('op, 's) t
(** An empty log whose seed snapshot is [(horizon, init)] — [init] must
    be the state {e at} [horizon] (default 0, the genuine initial
    state; reopening a compacted durable log passes the on-disk
    snapshot and its version).  [snapshot_every] (default 8, must be
    positive) is the snapshot period in commits. *)

val horizon : ('op, 's) t -> int
(** The compaction horizon: entries at or below it have been dropped.
    0 until the first {!compact} on a full-history log. *)

val head_version : ('op, 's) t -> int
(** The latest version; equals {!horizon} when no entries are retained. *)

val length : ('op, 's) t -> int
(** Retained entries only — history below the horizon is not counted. *)

val append : ('op, 's) t -> session:string -> 'op -> int
(** Append the next operation; returns the new head version. *)

val entries_since : ('op, 's) t -> int -> 'op entry list
(** Entries with versions strictly above the argument, oldest first —
    the replay (or rebase) suffix.

    Contract (property-tested against a list-filter reference in
    [test_durable_log.ml]): total for {e every} integer argument at or
    above the horizon — and, when the horizon is 0, for every integer
    full stop.  [v >= head_version] (including far above head) yields
    [[]]; [v <= 0] on a horizon-0 log yields every entry; and for any
    servable [v], [entries_since v] equals
    [List.filter (fun e -> e.version > v)] of the retained log, oldest
    first.  Asking for a version {e strictly below} a positive horizon
    raises a typed [Error.Corrupt] ("below retained horizon, resync
    from snapshot") rather than silently returning a truncated list —
    callers that can restart from a snapshot should use {!read_since}.
    Exactly-at-horizon is servable and yields the full retained log.

    The implementation stops scanning at the first version [<= v],
    which is equivalent to the filter only because {!append} keeps
    versions strictly decreasing newest-first — code that reconstructs
    logs by other means (e.g. durable-log replay) must preserve that
    invariant, which is why [Store.reopen] re-appends through {!append}
    after deduplicating the disk entries. *)

val read_since :
  ('op, 's) t -> int -> [ `Entries of 'op entry list | `Resync of int * 's ]
(** The resync-aware read, total for every integer: [`Entries suffix]
    when the argument is servable (same list as {!entries_since}), or
    [`Resync (version, state)] — the latest snapshot to restart from —
    when it has fallen below a positive horizon. *)

val snapshot_due : ('op, 's) t -> bool
(** Is the head version a multiple of the snapshot period? *)

val record_snapshot : ('op, 's) t -> int -> 's -> unit

val latest_snapshot : ('op, 's) t -> int * 's
(** The most recent snapshot — where a crashed store wakes up. *)

val compact : ('op, 's) t -> int
(** Drop every entry at or below the latest snapshot version and every
    older snapshot; that version becomes the new horizon.  Returns the
    number of entries dropped (0 when the latest snapshot is already
    the horizon — compaction is idempotent).  [head_version] is
    unchanged: compaction never loses operations, only their
    already-applied representations. *)

val sessions : ('op, 's) t -> string list
(** The distinct session names appearing in the retained log, sorted. *)
