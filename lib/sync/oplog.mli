(** The versioned append-only operation log behind a replicated store
    (see [docs/SYNC.md]).

    Versions are dense: the [n]-th committed operation has version [n];
    version [0] is the initial state.  Snapshots pin (version, state)
    pairs — states are immutable values, so a snapshot is a retained
    binding, and crash recovery replays only the suffix after the most
    recent one. *)

type 'op entry = { version : int; session : string; op : 'op }

type ('op, 's) t

val create : ?snapshot_every:int -> init:'s -> unit -> ('op, 's) t
(** An empty log whose version-0 snapshot is [init].  [snapshot_every]
    (default 8, must be positive) is the snapshot period in commits. *)

val head_version : ('op, 's) t -> int
val length : ('op, 's) t -> int

val append : ('op, 's) t -> session:string -> 'op -> int
(** Append the next operation; returns the new head version. *)

val entries_since : ('op, 's) t -> int -> 'op entry list
(** Entries with versions strictly above the argument, oldest first —
    the replay (or rebase) suffix.

    Contract (property-tested against a list-filter reference in
    [test_durable_log.ml]): total for {e every} integer argument, not
    just versions in [0, head].  [v >= head_version] (including far
    above head) yields [[]]; [v <= 0] (including far below the latest
    snapshot version — snapshots never evict entries, the log retains
    the full history) yields every entry; and for any [v],
    [entries_since v] equals [List.filter (fun e -> e.version > v)] of
    the whole log, oldest first.  The implementation stops scanning at
    the first version [<= v], which is equivalent to the filter only
    because {!append} keeps versions strictly decreasing newest-first —
    code that reconstructs logs by other means (e.g. durable-log
    replay) must preserve that invariant, which is why
    [Store.reopen] re-appends through {!append} after deduplicating
    the disk entries. *)

val snapshot_due : ('op, 's) t -> bool
(** Is the head version a multiple of the snapshot period? *)

val record_snapshot : ('op, 's) t -> int -> 's -> unit

val latest_snapshot : ('op, 's) t -> int * 's
(** The most recent snapshot — where a crashed store wakes up. *)

val sessions : ('op, 's) t -> string list
(** The distinct session names appearing in the log, sorted. *)
