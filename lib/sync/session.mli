(** A client session bound to one side (A or B view) of a replicated
    store, submitting operations with optimistic version checks and
    rebasing over concurrent winners (see [docs/SYNC.md]).

    Chaos site: ["sync.session.rebase"] (absorbed — rebasing is a pure
    read of the oplog suffix). *)

open Esm_core

type side = [ `A | `B ]

val side_name : side -> string

type ('a, 'b, 'da, 'db) t

val bind :
  ('a, 'b, 'da, 'db) Store.t ->
  name:string ->
  side:side ->
  ('a, 'b, 'da, 'db) t
(** Bind a session at the store's current version. *)

val name : ('a, 'b, 'da, 'db) t -> string
val side : ('a, 'b, 'da, 'db) t -> side

val base : ('a, 'b, 'da, 'db) t -> int
(** The store version this session last synchronised at — what its
    optimistic checks compare against. *)

val store : ('a, 'b, 'da, 'db) t -> ('a, 'b, 'da, 'db) Store.t

val view : ('a, 'b, 'da, 'db) t -> [ `A of 'a | `B of 'b ]
(** The session's current view of its bound side. *)

val submit :
  ('a, 'b, 'da, 'db) t ->
  ('a, 'b, 'da, 'db) Store.op ->
  (int, Error.t) result
(** Submit with an optimistic check against {!base}.  On success the
    base advances to the new version.  A concurrent winner yields a
    typed [Conflict]; an op against the wrong side yields a typed
    [Other] protocol error; neither changes the store. *)

val pull : ('a, 'b, 'da, 'db) t -> ('a, 'b, 'da, 'db) Store.op Oplog.entry list
(** The oplog suffix committed since this session's base (oldest
    first), advancing the base to the store head — how a session
    receives rebased updates.  Polling an unchanged store ({!base} =
    store version) short-circuits to [[]] without touching the oplog;
    hit/miss counts report to the ["session.poll"] {!Esm_incr.Stats}
    counter.  When compaction dropped the suffix below this session's
    base, the pull skips to the retained horizon (the store view
    already reflects the dropped entries) and returns what follows,
    counting a ["session.resync"] miss. *)

val submit_rebase :
  ('a, 'b, 'da, 'db) t ->
  ('a, 'b, 'da, 'db) Store.op ->
  (int * ('a, 'b, 'da, 'db) Store.op Oplog.entry list, Error.t) result
(** Pull the winning suffix, then resubmit on top of it: last-writer
    wins {e through the bx} — the operation re-applies to the state the
    winners produced, so the bx's put semantics decides what of their
    work survives.  Returns the new version and the entries rebased
    over. *)
