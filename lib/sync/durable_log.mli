(** The durable on-disk oplog format: length-prefixed, checksummed
    append/replay framing for oplog entries and snapshots (see
    [docs/SYNC.md], "Durability").

    This module is the {e framing} layer only — payloads are opaque
    strings (the store encodes operations and views through a
    {!Store.op_codec}, typically {!Wire.durable_op_codec}).  Two files
    live in a log directory:

    - [log.bin] — an 8-byte header ([magic, format version]) followed by
      entry records appended in commit order; {!compact} may rewrite it
      whole (same tmp + fsync + rename discipline as the snapshot) to
      drop the prefix already covered by the durable snapshot, pinning
      the drop point with a leading base ('B') record;
    - [snapshot.bin] — the same header and {e one} snapshot record,
      replaced atomically (write-tmp, fsync, rename) at each snapshot.

    Each record is [tag (1) | payload length (4, LE) | CRC-32 of payload
    (4, LE) | payload].  Entry ('E') payloads carry the version, the
    session and the encoded operation; the snapshot ('S') payload
    carries the version and the encoded A view; the base ('B') payload
    is the compaction horizon — the version at or below which entries
    were dropped because the snapshot already reflects them.  A fresh
    log never contains a 'B' record, so the fresh-format golden
    fixtures stay byte-stable within format version 1.

    {!load} is the crash-tolerant reader: it accepts exactly the
    artifacts a real crash produces — a torn final record (truncated),
    an entry re-appended after a partial failure (deduplicated), a
    missing or invalid snapshot file (ignored; the log holds the full
    history) — and classifies everything else ({!Esm_core.Error.Corrupt}):
    bad magic, unknown format version, a mid-file checksum mismatch, an
    undecodable payload, a version gap.

    Chaos site: ["sync.durable.write"] fires before each record write,
    so fault injection covers the persistence path; {!append_entry}
    restores the pre-append length on an injected fault, keeping the
    file and the in-memory store agreeing. *)

open Esm_core

(** {1 Format constants} *)

val format_version : int
(** The on-disk format version byte (today: [1]).  {!load} refuses any
    other value as [Corrupt] — bump it when the record layout or the
    payload codec changes incompatibly. *)

val log_file : string -> string
(** [log_file dir] is [dir ^ "/log.bin"]. *)

val snapshot_file : string -> string
(** [snapshot_file dir] is [dir ^ "/snapshot.bin"]. *)

val crc32 : string -> int32
(** The CRC-32 (IEEE 802.3) of a string — exposed for the format tests. *)

(** {1 Fsync policy} *)

type fsync_policy =
  | Fsync_always  (** fsync after every record: no acked commit is lost *)
  | Fsync_every of int
      (** group commit: fsync once per [n] records — a crash loses at
          most the last unsynced group *)
  | Fsync_never  (** leave flushing to the OS *)

val fsync_name : fsync_policy -> string

(** {1 Writing} *)

type writer

val create : dir:string -> fsync:fsync_policy -> unit -> writer
(** Start a {e fresh} log in [dir] (created if missing): truncates any
    existing [log.bin], writes the header, removes a stale
    [snapshot.bin].  Resuming an existing directory is {!open_append}'s
    job (via [Store.reopen]). *)

val open_append : dir:string -> fsync:fsync_policy -> valid:int -> writer
(** Continue an existing log, truncating [log.bin] to [valid] bytes
    first (the validated prefix {!load} reported — this is what discards
    a torn tail). *)

val append_entry :
  writer -> version:int -> session:string -> payload:string ->
  (unit, Error.t) result
(** Append one entry record, honouring the fsync policy.  On an injected
    fault at ["sync.durable.write"] the file is restored to its
    pre-append length and the error is returned — the commit must abort
    whole. *)

val write_snapshot :
  writer -> version:int -> payload:string -> (unit, Error.t) result
(** Replace [snapshot.bin] atomically (tmp + fsync + rename).  A fault
    here is returned, not raised: the caller degrades gracefully — the
    log still holds the full history, only replay length suffers. *)

val compact :
  writer ->
  horizon:int ->
  entries:(int * string * string) list ->
  (unit, Error.t) result
(** Rewrite [log.bin] as header + base record ([horizon]) + the given
    retained entries ([(version, session, payload)], oldest first,
    versions dense from [horizon + 1]) — built in [log.bin.tmp],
    fsynced, renamed over the old log, then the writer switched to the
    new file.  The caller must have a durable snapshot at a version
    [>= horizon] in [snapshot.bin] first, or the dropped prefix becomes
    unrecoverable; [Store.compact] enforces that ordering.

    Atomic under crashes: a kill at any stage (tmp record writes, after
    the tmp fsync, after the rename, after the fd switch — each a tick
    of the {!set_kill_at} clock) leaves either the old full log (a
    stale [log.bin.tmp] is discarded on the next open) or the new
    compacted one, and {!load} recovers the exact pre-kill head from
    both.  A chaos fault at ["sync.durable.compact"] (fired before any
    byte is written) is returned for the store to absorb — compaction
    is an optimisation, never required for correctness. *)

val sync : writer -> unit
(** Force an fsync now, whatever the policy. *)

val close : writer -> unit

(** {1 Reading} *)

type raw_entry = { version : int; session : string; payload : string }

type recovered = {
  entries : raw_entry list;
      (** validated, deduplicated, versions dense from [horizon + 1],
          oldest first *)
  snapshot : (int * string) option;
      (** latest valid snapshot (version, payload); [None] when the file
          is missing or invalid — replay then starts from the initial
          state, which is only possible while [horizon = 0] *)
  valid_bytes : int;
      (** length of the validated [log.bin] prefix; pass to
          {!open_append} *)
  torn_bytes : int;  (** bytes discarded from a torn tail *)
  duplicates : int;  (** re-appended entries dropped during validation *)
  horizon : int;
      (** the base record's horizon — 0 for a never-compacted log.
          When positive, recovery {e requires} a valid snapshot at a
          version [>= horizon]: the log alone no longer reaches back to
          the initial state ([Store.reopen] reports the violation as
          [Corrupt]) *)
}

val load : dir:string -> (recovered, Error.t) result
(** Read and validate a log directory.  [Error] is always of kind
    [Corrupt] (with [op] naming the offending file) — a torn tail or a
    broken snapshot is repaired silently and reported through
    [torn_bytes] / [snapshot]. *)

(** {1 Crash simulation hooks} *)

val set_kill_at : ?exit:(unit -> unit) -> int option -> unit
(** [set_kill_at (Some n)] hard-exits the process (default
    [Unix._exit 130] — no flushing, no [at_exit]) after [n] more ticks
    of the write clock: each record write syscall is a tick, counting
    both entry-record halves (header, payload) and snapshot writes — so
    a kill can land {e mid-record} — and {!compact} adds one tick after
    each of its fsync, rename and fd switch-over stages, so the torn-
    compaction matrix can kill at every fault site of that path too.
    This is how [esm_syncd --kill-at] turns soak runs into true
    process-death recovery tests.  [None] disables the switch. *)

val writes_performed : unit -> int
(** Ticks of the write clock since process start (the [--kill-at]
    clock). *)
