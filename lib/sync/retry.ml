(** Bounded retry with exponential backoff and seed-deterministic
    jitter.

    The jitter factor for a given [(seed, key, attempt)] comes from
    [Hashtbl.hash] exactly like the {!Esm_core.Chaos} fault schedule
    comes from [(seed, site, visit)] — structural hashing with a fixed
    seed, so the delay sequence of a retry loop is reproducible across
    runs and machines.  That determinism is what lets the chaos-net
    soak assert byte-identical convergence behaviour per seed, and what
    keeps a thundering herd from synchronising: distinct keys (one per
    session) jitter apart. *)

open Esm_core

type policy = {
  max_attempts : int;
  base_delay : float;
  max_delay : float;
  multiplier : float;
  jitter : float;
  seed : int;
  attempt_timeout : float;
  deadline : float;
}

let default ?(seed = 0) () : policy =
  {
    max_attempts = 6;
    base_delay = 0.025;
    max_delay = 1.0;
    multiplier = 2.0;
    jitter = 0.5;
    seed;
    attempt_timeout = 1.0;
    deadline = 30.0;
  }

let delay (p : policy) ~(key : string) ~(attempt : int) : float =
  let attempt = max 1 attempt in
  let raw = p.base_delay *. (p.multiplier ** float_of_int (attempt - 1)) in
  let capped = Float.min raw p.max_delay in
  (* deterministic factor in [1 - jitter, 1 + jitter] *)
  let h = Hashtbl.hash (p.seed, key, attempt) mod 1_000_000 in
  let unit = float_of_int h /. 1_000_000.0 in
  capped *. (1.0 -. p.jitter +. (2.0 *. p.jitter *. unit))

type clock = { now : unit -> float; sleep : float -> unit }

let system_clock : clock = { now = Unix.gettimeofday; sleep = Unix.sleepf }

let manual_clock ?(start = 0.0) () : clock =
  let t = ref start in
  { now = (fun () -> !t); sleep = (fun d -> t := !t +. Float.max 0.0 d) }

let timeout_error ~key ~attempt ~spent : Error.t =
  Error.v Error.Timeout ~op:"retry"
    (Printf.sprintf "%s: deadline exceeded after %d attempt%s (%.3fs)" key
       attempt
       (if attempt = 1 then "" else "s")
       spent)

let run ~(policy : policy) ~(clock : clock) ~(key : string)
    ~(retryable : Error.t -> bool)
    (f : attempt:int -> ('a, Error.t) result) : ('a, Error.t) result =
  let start = clock.now () in
  let over () = clock.now () -. start > policy.deadline in
  let rec go attempt =
    if over () then
      Error (timeout_error ~key ~attempt ~spent:(clock.now () -. start))
    else
      match f ~attempt with
      | Ok _ as ok -> ok
      | Error e when (not (retryable e)) || attempt >= policy.max_attempts ->
          Error e
      | Error _ ->
          let d = delay policy ~key ~attempt in
          if clock.now () +. d -. start > policy.deadline then
            Error
              (timeout_error ~key ~attempt ~spent:(clock.now () -. start))
          else begin
            clock.sleep d;
            go (attempt + 1)
          end
  in
  go 1
