(** A real transport for the sync engine: length-framed {!Wire}
    messages over byte streams, a multiplexing non-blocking server, a
    retrying client, and a deterministic chaos network for testing the
    whole stack under loss (see [docs/SYNC.md], "Transport, retries,
    and overload").

    The layering, bottom up:

    - {!Frame} — length-prefixed framing with an incremental decoder
      whose failures are typed values, never exceptions;
    - {!Envelope} — the idempotency layer: every request carries a
      session name and a per-session monotonic request id, so a retry
      after a half-open connection can be deduplicated server-side;
    - {!Core} — the transport-independent server brain: envelope
      dedup, per-connection load shedding ({!Esm_core.Error.Overload}),
      dead-session reaping, stats;
    - {!Server} — a [select]-driven non-blocking Unix-domain/TCP
      listener multiplexing hundreds of connections over one
      {!Wire.server}, with heartbeat reaping and clean SIGTERM drain;
    - {!Remote_session} — the client: the same
      [bind]/[submit]/[pull]/[submit_rebase] surface as {!Session},
      over any {!Remote_session.endpoint}, with per-request deadlines
      and bounded {!Retry} backoff;
    - {!Chaos_net} — an in-process endpoint that feeds the real
      {!Core} through real {!Frame} decoding while injecting
      deterministic faults at the [net.*] chaos sites. *)

open Esm_core
open Esm_relational

(** {1 Length-prefixed framing} *)

module Frame : sig
  val max_payload : int
  (** Frames above this many payload bytes are refused by both
      directions (16 MiB) — a mangled length header cannot make the
      reader allocate unboundedly. *)

  val encode : string -> string
  (** 4-byte big-endian payload length, then the payload.
      @raise Invalid_argument if the payload exceeds {!max_payload}
      (a programming error, not a network condition). *)

  type reader
  (** An incremental decoder: push byte chunks in, pull complete
      payloads out.  Mangled input surfaces as a typed
      [Error.Transport `Permanent] {e value} — the stream is
      desynchronised and the connection must drop — never as an
      exception and never as a silently resynchronised frame. *)

  val reader : unit -> reader
  val push : reader -> string -> unit

  val next : reader -> (string option, Error.t) result
  (** The next complete payload; [Ok None] when more bytes are needed.
      After an [Error] the reader is poisoned and keeps returning it. *)

  val eof : reader -> (unit, Error.t) result
  (** Declare end-of-stream: an error if the reader holds a partial
      frame (the peer died mid-frame — a truncation, typed
      [Transport `Transient]). *)

  val buffered : reader -> int
end

(** {1 Request/response envelopes} *)

module Envelope : sig
  type req = { id : int; session : string; body : string }
  (** [id] is the idempotency key: per-session, strictly increasing.
      The client bumps it for every {e logical} send and keeps it when
      resending after a transient failure — the server then answers a
      replayed request from its dedup cache instead of re-executing. *)

  val render_req : req -> string
  val parse_req : string -> (req, Error.t) result

  type resp = { rid : int; body : string }

  val render_resp : resp -> string
  val parse_resp : string -> (resp, Error.t) result
end

(** {1 The transport-independent server core} *)

module Core : sig
  type t

  type stats = {
    mutable requests : int;
    mutable executed : int;
    mutable dedup_hits : int;  (** replayed requests answered from cache *)
    mutable stale : int;  (** old duplicate ids refused *)
    mutable overloads : int;  (** requests shed unexecuted *)
    mutable reaped : int;  (** sessions dropped by the idle reaper *)
  }

  val create : ?max_pending:int -> Wire.server -> t
  (** [max_pending] (default 64) bounds a connection's pending-response
      queue: a request arriving beyond it is answered with a typed
      [error overload] {e without being executed} and without touching
      the dedup window — load shedding that stays idempotent. *)

  val handle_payload : t -> now:float -> pending:int -> string -> string
  (** Process one request envelope and return the response envelope.
      Dedup semantics, per session: an id above the session's
      high-water mark executes (and its response is cached); the
      high-water id itself is answered from the cache (the retransmit
      case); anything below is a stale duplicate and is refused with a
      typed transport error.  Never raises: frame-level garbage,
      parse failures and bx errors all come back as [error] responses. *)

  val touch : t -> session:string -> now:float -> unit
  val reap : t -> now:float -> idle_timeout:float -> string list
  (** Drop sessions (dedup window + {!Wire} binding) with no traffic
      since [now - idle_timeout]; returns the reaped names. *)

  val stats : t -> stats
  val wire : t -> Wire.server
end

(** {1 Socket addresses} *)

val addr_of_string : string -> (Unix.sockaddr, Error.t) result
(** ["unix:PATH"], ["HOST:PORT"] or [":PORT"] (loopback). *)

val string_of_addr : Unix.sockaddr -> string

(** {1 The non-blocking socket server} *)

module Server : sig
  type config = {
    max_pending : int;  (** per-connection response-queue bound *)
    max_conns : int;  (** accepted connections beyond this are shed *)
    idle_timeout : float;  (** heartbeat bound before a conn is reaped *)
    drain_grace : float;  (** max seconds to flush queues on shutdown *)
  }

  val default_config : config

  type t

  val listen :
    ?config:config -> ?clock:Retry.clock -> Unix.sockaddr -> Wire.server -> t
  (** Bind, listen and return a stepping server.  Unix-domain paths are
      unlinked first; SIGPIPE is ignored process-wide (broken peers
      must surface as [EPIPE] transport errors, not kill the daemon). *)

  val addr : t -> Unix.sockaddr
  (** The actual bound address (resolves port 0). *)

  val step : t -> timeout:float -> unit
  (** One [select] round: accept, read (decode frames, dispatch to
      {!Core}), write, reap idle connections and sessions.  Never
      blocks longer than [timeout] seconds. *)

  val run : t -> unit
  (** [step] until {!request_shutdown} has been called and every
      connection's response queue has drained (or [drain_grace]
      expires), then close everything.  The clean-SIGTERM path: install
      a handler that calls {!request_shutdown} and let [run] return. *)

  val request_shutdown : t -> unit
  (** Stop accepting; [run] drains queued responses and returns.
      Safe to call from a signal handler. *)

  val shutting_down : t -> bool
  val conn_count : t -> int
  val core : t -> Core.t
  val close : t -> unit
end

(** {1 The retrying client} *)

module Remote_session : sig
  type endpoint = {
    ep_send : string -> (unit, Error.t) result;
        (** send one frame payload *)
    ep_recv : timeout:float -> (string, Error.t) result;
        (** next frame payload; [Error.Timeout] when none arrived *)
    ep_reconnect : unit -> (unit, Error.t) result;
        (** drop the transport and establish a fresh one *)
    ep_close : unit -> unit;
  }

  val tcp_endpoint :
    ?pump:(unit -> unit) -> ?clock:Retry.clock -> Unix.sockaddr -> endpoint
  (** A blocking-connect, [select]-deadline TCP/Unix-domain endpoint.
      [pump] is called inside receive waits — the hook that lets a
      single-threaded test step an in-process {!Server} while its own
      client blocks.  All [Unix_error]s surface classified
      ({!Esm_core.Error.of_unix_error}). *)

  type t

  val bind :
    ?policy:Retry.policy ->
    ?clock:Retry.clock ->
    endpoint ->
    name:string ->
    side:Session.side ->
    (t, Error.t) result
  (** Connect and [hello] — the remote analogue of {!Session.bind}.
      The policy's [seed] and the session name key the jitter, so two
      sessions never share a backoff schedule. *)

  val name : t -> string
  val side : t -> Session.side
  val base : t -> int
  (** The server version this session last synchronised at (mirrors
      the server-side {!Session.base}). *)

  val request : t -> Wire.request -> (Wire.response, Error.t) result
  (** One request under the full robustness policy: fresh envelope id;
      per-attempt timeout; on transient failures (timeout, transport,
      overload) reconnect if needed and {e resend the same id} — the
      server dedups, so a commit is applied at most once even across a
      half-open connection; on retryable {e execution} failures
      (conflict, injected fault) re-execute under a fresh id; bounded
      attempts and an overall deadline ([Error.Timeout]). *)

  val submit :
    t -> [ `Set of Row.t list | `Batch of Row_delta.t list ] ->
    (int, Error.t) result
  (** Submit this session's next write; on success the base advances to
      the returned version.  The server applies it with
      {!Session.submit_rebase} semantics, so like that call this is
      last-writer-wins through the bx. *)

  val submit_rebase :
    t -> [ `Set of Row.t list | `Batch of Row_delta.t list ] ->
    (int, Error.t) result
  (** Alias of {!submit}, mirroring the {!Session} surface (the rebase
      happens server-side). *)

  val pull : t -> (int * int, Error.t) result
  (** [(version, entries-received)] — advances the base like
      {!Session.pull}. *)

  val view : t -> (int * Row.t list, Error.t) result
  val ping : t -> (unit, Error.t) result
  val bye : t -> (unit, Error.t) result

  val last_id : t -> int

  val resolve : t -> (Wire.response, Error.t) result
  (** Resend the last envelope id once more (fresh attempt budget) to
      settle an in-doubt request — after {!request} fails with a
      transient error, the server may or may not have executed it;
      [resolve] asks.  By dedup, this can never double-apply. *)

  val close : t -> unit
end

(** {1 The deterministic chaos network} *)

module Chaos_net : sig
  (** An in-process "network" between {!Remote_session} endpoints and a
      real {!Core}: client bytes travel through real {!Frame} encoding
      and decoding, but every frame passes the [net.*] chaos sites —
      ["net.drop"], ["net.dup"], ["net.reorder"], ["net.truncate"],
      ["net.delay"], ["net.halfopen"] — whose firing is decided by the
      installed {!Esm_core.Chaos} instance, so a fixed seed replays the
      exact same loss pattern.  With no chaos installed the network is
      perfect.  Time is the shared manual clock: receive waits advance
      it, so timeouts and backoff are deterministic too. *)

  type t

  val create :
    ?max_pending:int -> ?clock:Retry.clock -> Wire.server -> t
  (** [clock] should be a {!Retry.manual_clock} (the default makes
      one); pass the same clock to {!Remote_session.bind}. *)

  val clock : t -> Retry.clock
  val core : t -> Core.t

  val endpoint : t -> Remote_session.endpoint
  (** A fresh client connection through the chaos net.  Reconnecting
      abandons any in-flight frames (they are lost with the old
      connection) and clears half-open state — exactly what a real
      reconnect does. *)

  type stats = {
    mutable dropped : int;
    mutable duped : int;
    mutable reordered : int;
    mutable truncated : int;
    mutable delayed : int;
    mutable half_opened : int;
  }

  val stats : t -> stats

  val drain : t -> unit
  (** Deliver every in-flight frame with injection suspended
      ({!Esm_core.Chaos.protected}) — "the network heals".  Responses
      already queued stay queued for their clients. *)
end
