(** Tests for relational lenses: unit behaviour of each lens's [put]
    policy, the lens laws on their documented domains (FD-respecting
    tables), and composition of relational lenses. *)

open Esm_relational
open Esm_lens

let check = Alcotest.check
let test = Alcotest.test_case

let schema = Workload.employees_schema
let eng_pred = Pred.(col "dept" = str "Engineering")

let t0 =
  Table.of_lists schema
    [
      [ Value.Int 1; Value.Str "ada"; Value.Str "Engineering"; Value.Int 50_000; Value.Str "ada@x" ];
      [ Value.Int 2; Value.Str "brian"; Value.Str "Sales"; Value.Int 45_000; Value.Str "brian@x" ];
      [ Value.Int 3; Value.Str "carol"; Value.Str "Engineering"; Value.Int 55_000; Value.Str "carol@x" ];
    ]

let unit_tests =
  [
    test "select lens: get filters" `Quick (fun () ->
        let l = Rlens.select eng_pred in
        check Alcotest.int "two engineers" 2
          (Table.cardinality (Lens.get l t0)));
    test "select lens: put keeps unmatched rows and replaces matched" `Quick
      (fun () ->
        let l = Rlens.select eng_pred in
        let view =
          Table.of_lists schema
            [
              [ Value.Int 1; Value.Str "ada"; Value.Str "Engineering"; Value.Int 60_000; Value.Str "ada@x" ];
            ]
        in
        let t1 = Lens.put l t0 view in
        check Alcotest.int "brian survives, carol dropped" 2
          (Table.cardinality t1);
        check Helpers.table "get returns view" view (Lens.get l t1));
    test "select lens: put rejects predicate-violating view rows" `Quick
      (fun () ->
        let l = Rlens.select eng_pred in
        let bad =
          Table.of_lists schema
            [
              [ Value.Int 9; Value.Str "zoe"; Value.Str "Sales"; Value.Int 1; Value.Str "z@x" ];
            ]
        in
        match Lens.put l t0 bad with
        | _ -> Alcotest.fail "expected Shape_error"
        | exception Lens.Shape_error _ -> ());
    test "project lens: get keeps the requested columns in order" `Quick
      (fun () ->
        let l = Rlens.project ~keep:[ "id"; "name" ] ~key:[ "id" ] schema in
        let v = Lens.get l t0 in
        check
          Alcotest.(list string)
          "columns" [ "id"; "name" ]
          (Schema.column_names (Table.schema v)));
    test "project lens: put recovers dropped columns by key" `Quick
      (fun () ->
        let l = Rlens.project ~keep:[ "id"; "name" ] ~key:[ "id" ] schema in
        let view =
          Table.of_lists
            (Schema.project schema [ "id"; "name" ])
            [
              [ Value.Int 1; Value.Str "ada lovelace" ];
              [ Value.Int 2; Value.Str "brian" ];
            ]
        in
        let t1 = Lens.put l t0 view in
        check Alcotest.int "two rows" 2 (Table.cardinality t1);
        (* ada kept her salary through the rename *)
        let ada =
          List.find
            (fun r -> Value.equal (Row.get schema r "id") (Value.Int 1))
            (Table.rows t1)
        in
        check Helpers.value "salary recovered" (Value.Int 50_000)
          (Row.get schema ada "salary");
        check Helpers.value "name updated" (Value.Str "ada lovelace")
          (Row.get schema ada "name"));
    test "project lens: unknown keys get typed defaults" `Quick (fun () ->
        let l = Rlens.project ~keep:[ "id"; "name" ] ~key:[ "id" ] schema in
        let view =
          Table.of_lists
            (Schema.project schema [ "id"; "name" ])
            [ [ Value.Int 99; Value.Str "newbie" ] ]
        in
        let t1 = Lens.put l t0 view in
        let newbie = List.hd (Table.rows t1) in
        check Helpers.value "default salary" (Value.Int 0)
          (Row.get schema newbie "salary"));
    test "project lens: key must be kept" `Quick (fun () ->
        match Rlens.project ~keep:[ "name" ] ~key:[ "id" ] schema with
        | _ -> Alcotest.fail "expected Schema_error"
        | exception Schema.Schema_error _ -> ());
    test "rename lens is invertible" `Quick (fun () ->
        let l = Rlens.rename [ ("dept", "team") ] in
        let v = Lens.get l t0 in
        check Alcotest.bool "renamed" true (Schema.mem (Table.schema v) "team");
        check Helpers.table "round trip" t0 (Lens.put l t0 v));
    test "drop lens removes one column" `Quick (fun () ->
        let l = Rlens.drop "email" ~key:[ "id" ] schema in
        check Alcotest.int "arity" 4
          (Schema.arity (Table.schema (Lens.get l t0))));
  ]

(* ------------------------------------------------------------------ *)
(* Law suites on FD-respecting generated tables                        *)
(* ------------------------------------------------------------------ *)

let gen_table : Table.t QCheck.arbitrary =
  QCheck.make ~print:Table.to_string
    QCheck.Gen.(
      let* seed = int_bound 10_000 in
      let* size = int_bound 25 in
      return (Workload.employees ~seed ~size))

(* Views for select: engineering-only tables. *)
let gen_eng_view : Table.t QCheck.arbitrary =
  QCheck.make ~print:Table.to_string
    QCheck.Gen.(
      let* seed = int_bound 10_000 in
      let* size = int_bound 25 in
      return (Algebra.select eng_pred (Workload.employees ~seed ~size)))

(* Views for project id,name: key-unique projections. *)
let gen_proj_view : Table.t QCheck.arbitrary =
  QCheck.make ~print:Table.to_string
    QCheck.Gen.(
      let* seed = int_bound 10_000 in
      let* size = int_bound 25 in
      return (Algebra.project [ "id"; "name" ] (Workload.employees ~seed ~size)))

let law_tests =
  List.concat
    [
      Esm_lens.Lens_laws.very_well_behaved ~count:100 ~name:"rlens select"
        (Rlens.select eng_pred) ~gen_s:gen_table ~gen_v:gen_eng_view
        ~eq_s:Table.equal ~eq_v:Table.equal;
      Esm_lens.Lens_laws.well_behaved ~count:100 ~name:"rlens project"
        (Rlens.project ~keep:[ "id"; "name" ] ~key:[ "id" ] schema)
        ~gen_s:gen_table ~gen_v:gen_proj_view ~eq_s:Table.equal
        ~eq_v:Table.equal;
      Esm_lens.Lens_laws.very_well_behaved ~count:100 ~name:"rlens rename"
        (Rlens.rename [ ("dept", "team") ])
        ~gen_s:gen_table
        ~gen_v:
          (QCheck.map (Algebra.rename [ ("dept", "team") ]) gen_table)
        ~eq_s:Table.equal ~eq_v:Table.equal;
      (* Composition: select then project — the classic view definition. *)
      Esm_lens.Lens_laws.well_behaved ~count:100 ~name:"rlens select;project"
        Lens.(
          Rlens.select eng_pred
          // Rlens.project ~keep:[ "id"; "name"; "dept" ] ~key:[ "id" ] schema)
        ~gen_s:gen_table
        ~gen_v:
          (QCheck.map
             (Algebra.project [ "id"; "name"; "dept" ])
             gen_eng_view)
        ~eq_s:Table.equal ~eq_v:Table.equal;
    ]

(* ------------------------------------------------------------------ *)
(* Join lens                                                           *)
(* ------------------------------------------------------------------ *)

let people_schema =
  Schema.make [ ("id", Value.Tint); ("name", Value.Tstr) ]

let salary_schema =
  Schema.make [ ("id", Value.Tint); ("salary", Value.Tint) ]

let join_lens = Rlens.join ~left:people_schema ~right:salary_schema

let join_unit_tests =
  [
    test "join lens: get is the natural join" `Quick (fun () ->
        let l =
          Table.of_lists people_schema
            [ [ Value.Int 1; Value.Str "ada" ]; [ Value.Int 2; Value.Str "brian" ] ]
        in
        let r =
          Table.of_lists salary_schema
            [ [ Value.Int 1; Value.Int 50 ]; [ Value.Int 2; Value.Int 45 ] ]
        in
        let v = Lens.get join_lens (l, r) in
        check Alcotest.int "two rows" 2 (Table.cardinality v);
        check
          Alcotest.(list string)
          "schema" [ "id"; "name"; "salary" ]
          (Schema.column_names (Table.schema v)));
    test "join lens: put splits an edit into both tables" `Quick (fun () ->
        let l = Table.of_lists people_schema [ [ Value.Int 1; Value.Str "ada" ] ] in
        let r = Table.of_lists salary_schema [ [ Value.Int 1; Value.Int 50 ] ] in
        let v' =
          Table.of_lists
            (Table.schema (Lens.get join_lens (l, r)))
            [ [ Value.Int 1; Value.Str "ada lovelace"; Value.Int 60 ] ]
        in
        let l', r' = Lens.put join_lens (l, r) v' in
        check Helpers.value "name in left" (Value.Str "ada lovelace")
          (Row.get people_schema (List.hd (Table.rows l')) "name");
        check Helpers.value "salary in right" (Value.Int 60)
          (Row.get salary_schema (List.hd (Table.rows r')) "salary"));
    test "join lens: unjoined right rows survive a put" `Quick (fun () ->
        let l = Table.of_lists people_schema [ [ Value.Int 1; Value.Str "ada" ] ] in
        let r =
          Table.of_lists salary_schema
            [ [ Value.Int 1; Value.Int 50 ]; [ Value.Int 9; Value.Int 1 ] ]
        in
        let v = Lens.get join_lens (l, r) in
        let _, r' = Lens.put join_lens (l, r) v in
        check Alcotest.int "id 9 kept" 2 (Table.cardinality r'));
  ]

(* FD-respecting generated sources: left rows all join; shared column is
   a key of the right table. *)
let gen_join_source : (Table.t * Table.t) QCheck.arbitrary =
  QCheck.make
    ~print:(fun (l, r) -> Table.to_string l ^ "\n" ^ Table.to_string r)
    QCheck.Gen.(
      let* seed = int_bound 10_000 in
      let* size = int_bound 20 in
      let t = Workload.employees ~seed ~size in
      let l = Algebra.project [ "id"; "name" ] t in
      let r = Algebra.project [ "id"; "salary" ] t in
      return (l, r))

let gen_join_view : Table.t QCheck.arbitrary =
  QCheck.make ~print:Table.to_string
    QCheck.Gen.(
      let* seed = int_bound 10_000 in
      let* size = int_bound 20 in
      let t = Workload.employees ~seed ~size in
      return (Algebra.project [ "id"; "name"; "salary" ] t))

let join_law_tests =
  Esm_lens.Lens_laws.well_behaved ~count:100 ~name:"rlens join"
    (Rlens.join
       ~left:(Schema.make [ ("id", Value.Tint); ("name", Value.Tstr) ])
       ~right:(Schema.make [ ("id", Value.Tint); ("salary", Value.Tint) ]))
    ~gen_s:gen_join_source ~gen_v:gen_join_view
    ~eq_s:(Esm_laws.Equality.pair Table.equal Table.equal)
    ~eq_v:Table.equal

(* ------------------------------------------------------------------ *)
(* Delta-capable join (djoin)                                          *)
(* ------------------------------------------------------------------ *)

let dj = Rlens.djoin ~left:people_schema ~right:salary_schema ()

(* The full-put oracle: apply the deltas to the materialised view, push
   the whole edited view back. *)
let djoin_oracle (l, r) deltas =
  let view = Lens.get dj.Rlens.jlens (l, r) in
  Lens.put dj.Rlens.jlens (l, r) (Row_delta.apply_all view deltas)

let gen_join_deltas ((l, r) : Table.t * Table.t) :
    Row_delta.t list QCheck.Gen.t =
  QCheck.Gen.(
    let view_rows = Table.rows (Lens.get dj.Rlens.jlens (l, r)) in
    let n = List.length view_rows in
    let fresh i =
      Row.of_list
        [
          Value.Int (10_000 + i);
          Value.Str ("nu" ^ string_of_int i);
          Value.Int (40 + i);
        ]
    in
    let* ops = list_size (int_bound 6) (int_bound 2) in
    return
      (List.mapi
         (fun i -> function
           | 0 -> Row_delta.Add (fresh i)
           | 1 ->
               if n = 0 then Row_delta.Add (fresh (900 + i))
               else Row_delta.Remove (List.nth view_rows (i mod n))
           | _ ->
               (* an update in delta form: re-add an existing key with a
                  new salary, breaking the key FD mid-burst *)
               if n = 0 then Row_delta.Add (fresh (500 + i))
               else
                 let row = List.nth view_rows (i mod n) in
                 Row_delta.Add
                   (Row.set
                      (Table.schema (Lens.get dj.Rlens.jlens (l, r)))
                      row "salary" (Value.Int (777 + i))))
         ops))

let gen_djoin_case : ((Table.t * Table.t) * Row_delta.t list) QCheck.arbitrary
    =
  QCheck.make
    ~print:(fun ((l, r), ds) ->
      Table.to_string l ^ "\n" ^ Table.to_string r ^ "\ndeltas: "
      ^ String.concat "; " (List.map Row_delta.to_string ds))
    QCheck.Gen.(
      let* source = QCheck.gen gen_join_source in
      let* deltas = gen_join_deltas source in
      return (source, deltas))

let djoin_property_tests =
  [
    QCheck.Test.make ~count:300 ~name:"djoin: put_delta_join agrees with put"
      gen_djoin_case
      (fun (source, deltas) ->
        let l', r' = Rlens.put_delta_join dj source deltas in
        let ol, or_ = djoin_oracle source deltas in
        Table.equal l' ol && Table.equal r' or_);
    QCheck.Test.make ~count:300
      ~name:"djoin: translated deltas reproduce the put tables"
      gen_djoin_case
      (fun (source, deltas) ->
        let l, r = source in
        let dl, dr = dj.Rlens.jtranslate source deltas in
        let ol, or_ = djoin_oracle source deltas in
        Table.equal (Row_delta.apply_all l dl) ol
        && Table.equal (Row_delta.apply_all r dr) or_);
  ]

let djoin_unit_tests =
  [
    test "djoin: add-then-remove on one key settles on the final row"
      `Quick
      (fun () ->
        (* mid-burst the view holds two rows for id 1 (FD break); the
           burst as a whole is a plain salary update *)
        let l = Table.of_lists people_schema [ [ Value.Int 1; Value.Str "ada" ] ] in
        let r = Table.of_lists salary_schema [ [ Value.Int 1; Value.Int 50 ] ] in
        let deltas =
          [
            Row_delta.Add
              (Row.of_list [ Value.Int 1; Value.Str "ada"; Value.Int 60 ]);
            Row_delta.Remove
              (Row.of_list [ Value.Int 1; Value.Str "ada"; Value.Int 50 ]);
          ]
        in
        let l', r' = Rlens.put_delta_join dj (l, r) deltas in
        let ol, or_ = djoin_oracle (l, r) deltas in
        check Alcotest.bool "left agrees" true (Table.equal l' ol);
        check Alcotest.bool "right agrees" true (Table.equal r' or_);
        check Alcotest.int "one right row" 1 (Table.cardinality r');
        check Helpers.value "salary updated" (Value.Int 60)
          (Row.get salary_schema (List.hd (Table.rows r')) "salary"));
    test "djoin: remove-then-re-add of a key is a net update" `Quick
      (fun () ->
        (* the opposite order: the key disappears mid-burst, then comes
           back with a new salary — still a plain update overall *)
        let l = Table.of_lists people_schema [ [ Value.Int 1; Value.Str "ada" ] ] in
        let r = Table.of_lists salary_schema [ [ Value.Int 1; Value.Int 50 ] ] in
        let deltas =
          [
            Row_delta.Remove
              (Row.of_list [ Value.Int 1; Value.Str "ada"; Value.Int 50 ]);
            Row_delta.Add
              (Row.of_list [ Value.Int 1; Value.Str "ada"; Value.Int 60 ]);
          ]
        in
        let l', r' = Rlens.put_delta_join dj (l, r) deltas in
        let ol, or_ = djoin_oracle (l, r) deltas in
        check Alcotest.bool "left agrees" true (Table.equal l' ol);
        check Alcotest.bool "right agrees" true (Table.equal r' or_);
        check Alcotest.int "left row survives" 1 (Table.cardinality l'));
  ]

let suite =
  unit_tests @ join_unit_tests @ djoin_unit_tests
  @ Helpers.q (law_tests @ join_law_tests @ djoin_property_tests)
