(** Shared example structures: lenses, algebraic bx and symmetric lenses
    reused across the suites.  Each is annotated with the laws it is
    known to satisfy (and tested accordingly). *)

open Esm_lens
open Esm_algbx

(* ------------------------------------------------------------------ *)
(* A record source for lens tests                                      *)
(* ------------------------------------------------------------------ *)

type person = { name : string; age : int; email : string }

let equal_person p1 p2 =
  String.equal p1.name p2.name && Int.equal p1.age p2.age
  && String.equal p1.email p2.email

let gen_person : person QCheck.arbitrary =
  QCheck.map
    (fun (name, age, email) -> { name; age; email })
    (QCheck.triple QCheck.small_string QCheck.small_nat QCheck.small_string)

(** Field lenses on [person]: all very well-behaved. *)
let name_lens : (person, string) Lens.t =
  Lens.v ~name:"person.name" ~get:(fun p -> p.name)
    ~put:(fun p name -> { p with name })
    ()

let age_lens : (person, int) Lens.t =
  Lens.v ~name:"person.age" ~get:(fun p -> p.age)
    ~put:(fun p age -> { p with age })
    ()

(** A deliberately broken lens: [put] forgets the view (violates
    PutGet). *)
let broken_lens : (person, int) Lens.t =
  Lens.v ~name:"broken" ~get:(fun p -> p.age) ~put:(fun p _ -> p) ()

(** A well-behaved but NOT very-well-behaved lens: the source remembers
    how many times the (changing) view was written.  (GetPut)/(PutGet)
    hold; (PutPut) fails because two writes bump the counter twice. *)
type counted = { value : int; writes : int }

let equal_counted c1 c2 = c1.value = c2.value && c1.writes = c2.writes

let gen_counted : counted QCheck.arbitrary =
  QCheck.map
    (fun (value, writes) -> { value; writes })
    (QCheck.pair QCheck.small_signed_int QCheck.small_nat)

let counted_lens : (counted, int) Lens.t =
  Lens.v ~name:"counted" ~get:(fun c -> c.value)
    ~put:(fun c v ->
      if v = c.value then c else { value = v; writes = c.writes + 1 })
    ()

(* ------------------------------------------------------------------ *)
(* Algebraic bx on integers: parity consistency                        *)
(* ------------------------------------------------------------------ *)

(** Consistency: [a] and [b] have the same parity.

    [parity_undoable] restores by overwriting b's parity bit, which is
    undoable; [parity_sticky] restores by incrementing until consistent,
    which is correct and hippocratic but NOT undoable. *)
let parity_undoable : (int, int) Algbx.t =
  Algbx.v ~name:"parity-undoable"
    ~consistent:(fun a b -> (a - b) mod 2 = 0)
    ~fwd:(fun a b -> if (a - b) mod 2 = 0 then b else b + 1 - (2 * (b land 1)))
    ~bwd:(fun a b -> if (a - b) mod 2 = 0 then a else a + 1 - (2 * (a land 1)))
    ()

let parity_sticky : (int, int) Algbx.t =
  Algbx.v ~name:"parity-sticky"
    ~consistent:(fun a b -> (a - b) mod 2 = 0)
    ~fwd:(fun a b -> if (a - b) mod 2 = 0 then b else b + 1)
    ~bwd:(fun a b -> if (a - b) mod 2 = 0 then a else a + 1)
    ()

(** A broken algebraic bx: fwd ignores consistency (violates Correct). *)
let broken_algbx : (int, int) Algbx.t =
  Algbx.v ~name:"broken"
    ~consistent:(fun a b -> a = b)
    ~fwd:(fun _ b -> b)
    ~bwd:(fun a _ -> a)
    ()

let gen_parity_consistent : (int * int) QCheck.arbitrary =
  QCheck.map
    (fun (a, d) -> (a, a + (2 * d)))
    (QCheck.pair QCheck.small_signed_int QCheck.small_signed_int)

(* ------------------------------------------------------------------ *)
(* Symmetric lenses                                                    *)
(* ------------------------------------------------------------------ *)

(** Celsius/Fahrenheit-ish integer iso (scaled to stay exact). *)
let double_iso : (int, int) Esm_symlens.Symlens.t =
  Esm_symlens.Symlens.of_iso ~name:"double" (fun c -> 2 * c) (fun f -> f / 2)

(** Symmetric lens from the person.name field lens. *)
let name_symlens : (person, string) Esm_symlens.Symlens.t =
  Esm_symlens.Symlens.of_lens
    ~create:(fun name -> { name; age = 0; email = "" })
    ~eq_s:equal_person name_lens

(** A deliberately broken symmetric lens: [put_l] drops the pushed value
    (violates PutLR). *)
let broken_symlens : (int, int) Esm_symlens.Symlens.t =
  Esm_symlens.Symlens.v ~name:"broken" ~init:0
    ~put_r:(fun a _ -> (a, a))
    ~put_l:(fun _ c -> (c, c))
    ~equal_c:Int.equal ()

(* ------------------------------------------------------------------ *)
(* Packed, pedigreed instances for the static-analysis suites          *)
(* ------------------------------------------------------------------ *)

open Esm_core

let eq_int_pair (a1, b1) (a2, b2) = Int.equal a1 a2 && Int.equal b1 b2

let packed_pair () : (int, int) Concrete.packed =
  Concrete.packed_pair ~init:(0, 0) ~eq_state:eq_int_pair ()

let packed_parity_undoable () : (int, int) Concrete.packed =
  Concrete.packed_of_algebraic ~undoable:true ~init:(0, 0)
    ~eq_state:eq_int_pair parity_undoable

let packed_parity_sticky () : (int, int) Concrete.packed =
  Concrete.packed_of_algebraic ~undoable:false ~init:(0, 0)
    ~eq_state:eq_int_pair parity_sticky

let p0 = { name = "ada"; age = 36; email = "ada@lovelace.example" }

let packed_name_lens () : (person, string) Concrete.packed =
  Concrete.packed_of_lens ~vwb:true ~init:p0 ~eq_state:equal_person name_lens

let packed_counted_lens () : (counted, int) Concrete.packed =
  Concrete.packed_of_lens ~vwb:false
    ~init:{ value = 0; writes = 0 }
    ~eq_state:equal_counted counted_lens

let packed_double_iso () : (int, int) Concrete.packed =
  Concrete.packed_of_symlens ~seed_a:0 ~eq_a:Int.equal ~eq_b:Int.equal
    double_iso

let packed_journalled_parity () : (int, int) Concrete.packed =
  Concrete.pack_pedigreed
    ~pedigree:
      (Pedigree.Journalled
         (Pedigree.Of_algebraic { name = "parity-undoable"; undoable = true }))
    ~bx:
      (Journal.journalled ~eq_a:Int.equal ~eq_b:Int.equal
         (Concrete.of_algebraic parity_undoable))
    ~init:(Journal.initial (0, 0))
    ~eq_state:
      (Journal.equal_state ~eq_a:Int.equal ~eq_b:Int.equal ~eq_s:eq_int_pair)

let packed_identity () : (int, int) Concrete.packed =
  Concrete.pack_pedigreed ~pedigree:Pedigree.Identity ~bx:(Compose.identity ())
    ~init:0 ~eq_state:Int.equal

let packed_parity_then_pair () : (int, int) Concrete.packed =
  Compose.compose_packed (packed_parity_undoable ()) (packed_pair ())

let packed_parity_twice () : (int, int) Concrete.packed =
  Compose.compose_packed
    (packed_parity_undoable ())
    (packed_parity_undoable ())

(** A deliberately over-claimed pedigree: [broken_lens] violates (PutGet),
    yet the pedigree asserts a very-well-behaved lens.  The sampling
    cross-check must refute the resulting static level. *)
let packed_overclaimed_broken () : (person, int) Concrete.packed =
  Concrete.packed_of_lens ~vwb:true ~init:p0 ~eq_state:equal_person
    broken_lens
