(** ESMQL front-end: parser round-trip and fuzz properties, the
    compile-time law gate (strict reject / fallback downgrade), the
    cross-backend differential — the same script gives the same answers
    on mem, store and remote, chaos seeds included — and the catalog
    registration of the ESMQL-derived scenarios.

    NOTE: this suite registers entries into [Esm_analysis.Catalog] (as
    bxlint does), so it must stay {e last} in [test_main.ml]: the
    law-inference and lint suites iterate [Catalog.all ()] and expect
    the builtin catalog. *)

open Esm_core
open Esm_analysis
module Rel = Esm_relational
module Ql = Esm_ql

let check = Alcotest.check
let test = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* Shared environment: the employees base, as the esmql CLI seeds it    *)
(* ------------------------------------------------------------------ *)

let bases ?(seed = 42) ?(size = 60) () : Ql.Check.base list =
  [
    {
      Ql.Check.bname = "employees";
      bschema = Rel.Workload.employees_schema;
      bkey = [ "id" ];
      binit = Rel.Workload.employees ~seed ~size;
    };
  ]

let compile ?(mode = Ql.Ast.Strict) src =
  match Ql.Parser.parse src with
  | Error e -> Error e
  | Ok script -> Ql.Check.compile ~mode ~bases:(bases ()) script

let compile_exn ?mode src =
  match compile ?mode src with
  | Ok c -> c
  | Error e -> Alcotest.failf "unexpected rejection: %s" (Error.message e)

let reject ?mode src =
  match compile ?mode src with
  | Ok _ -> Alcotest.failf "script was wrongly accepted: %s" src
  | Error e -> Error.message e

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let assert_contains ~what ~needle hay =
  if not (contains ~needle hay) then
    Alcotest.failf "%s: %S does not mention %S" what hay needle

(* ------------------------------------------------------------------ *)
(* Parsing: units and positioned errors                                 *)
(* ------------------------------------------------------------------ *)

let demo_script =
  {|# the engineering roster
mode fallback;
expect level = commuting;
view eng = employees | where dept = "Engineering" | select id, name, dept;
get eng;
put eng = (1, "ada", "Engineering"), (2, "bob", "Engineering");
delta eng + (7, "grace", "Engineering") - (1, "ada", "Engineering");
|}

let parse_tests =
  [
    test "a representative script parses" `Quick (fun () ->
        match Ql.Parser.parse demo_script with
        | Error e -> Alcotest.failf "parse failed: %s" (Error.message e)
        | Ok s ->
            check Alcotest.int "statement count" 6 (List.length s);
            (match List.nth s 2 with
            | Ql.Ast.View ("eng", _) -> ()
            | _ -> Alcotest.fail "statement 2 is not the view");
            (match List.nth s 5 with
            | Ql.Ast.Delta ("eng", [ Rel.Row_delta.Add _; Rel.Row_delta.Remove _ ])
              -> ()
            | _ -> Alcotest.fail "statement 5 is not the two-edit delta"));
    test "empty put parses as the empty view" `Quick (fun () ->
        match Ql.Parser.parse "put v =;" with
        | Ok [ Ql.Ast.Put ("v", []) ] -> ()
        | _ -> Alcotest.fail "unexpected parse");
    test "esmql errors carry line and column" `Quick (fun () ->
        match Ql.Parser.parse "view v =\n  employees |;" with
        | Ok _ -> Alcotest.fail "wrongly accepted"
        | Error e ->
            assert_contains ~what:"esmql error" ~needle:"line 2, column 14"
              (Error.message e));
    test "query errors carry line and column (shared lexer)" `Quick (fun () ->
        match Rel.Query.parse "employees |" with
        | _ -> Alcotest.fail "wrongly accepted"
        | exception Rel.Query.Parse_error m ->
            assert_contains ~what:"query error" ~needle:"line 1, column 12" m);
    test "the offending token is named" `Quick (fun () ->
        match Ql.Parser.parse "expect level = 3;" with
        | Ok _ -> Alcotest.fail "wrongly accepted"
        | Error e ->
            assert_contains ~what:"esmql error" ~needle:"integer 3"
              (Error.message e));
    test "huge integer literals are a typed error, not Failure" `Quick
      (fun () ->
        match Ql.Parser.parse "put v = (99999999999999999999999999);" with
        | Ok _ -> Alcotest.fail "wrongly accepted"
        | Error e ->
            assert_contains ~what:"esmql error" ~needle:"out of range"
              (Error.message e));
  ]

(* ------------------------------------------------------------------ *)
(* Properties: print/parse round trip and the no-exception fuzz         *)
(* ------------------------------------------------------------------ *)

(* Strings the printer emits literally (no escapes): the round-trip
   property quantifies over these; escaping itself is exercised by the
   fuzz property below. *)
let gen_name = QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (1 -- 6))

let gen_value : Rel.Value.t QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [
      map (fun i -> Rel.Value.Int i) (-1000 -- 1000);
      map (fun s -> Rel.Value.Str s) gen_name;
      map (fun b -> Rel.Value.Bool b) bool;
    ]

let gen_row : Rel.Row.t QCheck.Gen.t =
  QCheck.Gen.(map Rel.Row.of_list (list_size (1 -- 4) gen_value))

let gen_pred : Rel.Pred.t QCheck.Gen.t =
  let open QCheck.Gen in
  let atom =
    oneof
      [
        map (fun i -> Rel.Pred.(col "id" = int i)) small_nat;
        map (fun i -> Rel.Pred.(col "salary" < int i)) small_nat;
        map (fun s -> Rel.Pred.(col "dept" = str s)) gen_name;
        return Rel.Pred.(col "id" <= int 5);
      ]
  in
  let rec go depth =
    if depth = 0 then atom
    else
      frequency
        [
          (3, atom);
          (1, map2 (fun p q -> Rel.Pred.And (p, q)) (go (depth - 1)) atom);
          (1, map2 (fun p q -> Rel.Pred.Or (p, q)) (go (depth - 1)) atom);
          (1, map (fun p -> Rel.Pred.Not p) (go (depth - 1)));
        ]
  in
  go 2

let gen_query : Rel.Query.t QCheck.Gen.t =
  let open QCheck.Gen in
  let rec go depth =
    if depth = 0 then return (Rel.Query.Base "employees")
    else
      frequency
        [
          (2, return (Rel.Query.Base "employees"));
          (2, map2 (fun p q -> Rel.Query.Where (p, q)) gen_pred (go (depth - 1)));
          (1, map (fun q -> Rel.Query.Project ([ "id"; "name" ], q)) (go (depth - 1)));
          (1, map (fun q -> Rel.Query.Rename ([ ("dept", "team") ], q)) (go (depth - 1)));
          (1, map2 (fun a b -> Rel.Query.Union (a, b)) (go (depth - 1)) (go (depth - 1)));
        ]
  in
  go 3

let gen_stmt : Ql.Ast.stmt QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [
      map (fun m -> Ql.Ast.Mode m) (oneofl [ Ql.Ast.Strict; Ql.Ast.Fallback ]);
      map (fun l -> Ql.Ast.Expect l)
        (oneofl [ `Set_bx; `Undoable; `Overwriteable; `Commuting ]);
      map2 (fun v q -> Ql.Ast.View (v, q)) gen_name gen_query;
      map (fun v -> Ql.Ast.Get v) gen_name;
      map2 (fun v rs -> Ql.Ast.Put (v, rs)) gen_name (list_size (0 -- 3) gen_row);
      map2
        (fun v ds -> Ql.Ast.Delta (v, ds))
        gen_name
        (list_size (0 -- 3)
           (map2
              (fun add r ->
                if add then Rel.Row_delta.Add r else Rel.Row_delta.Remove r)
              bool gen_row));
    ]

let gen_script : Ql.Ast.script QCheck.arbitrary =
  QCheck.make ~print:Ql.Ast.to_string
    QCheck.Gen.(list_size (0 -- 8) gen_stmt)

(* Fuzz inputs: mutilated prints plus raw token soup — the parser must
   answer with a typed result on all of them. *)
let gen_garbage : string QCheck.arbitrary =
  let open QCheck.Gen in
  let soup =
    string_size ~gen:(oneofl
      [ 'v'; 'i'; 'e'; 'w'; 'p'; 'u'; 't'; ' '; '\n'; '('; ')'; ','; ';';
        '='; '|'; '<'; '+'; '-'; '"'; '\\'; '#'; '0'; '9'; '\xce' ])
      (0 -- 60)
  in
  let truncated =
    map2
      (fun s n ->
        let s = Ql.Ast.to_string s in
        String.sub s 0 (min n (String.length s)))
      QCheck.Gen.(list_size (0 -- 4) gen_stmt)
      (0 -- 80)
  in
  QCheck.make ~print:String.escaped (oneof [ soup; truncated ])

let prop_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~count:500 ~name:"print then parse is the identity"
        gen_script (fun s ->
          match Ql.Parser.parse (Ql.Ast.to_string s) with
          | Ok s' -> Ql.Ast.equal s s'
          | Error e -> QCheck.Test.fail_reportf "rejected: %s" (Error.message e));
      QCheck.Test.make ~count:1000
        ~name:"fuzz: every input gets a typed result, never an exception"
        gen_garbage (fun src ->
          match Ql.Parser.parse src with
          | Ok _ | Error _ -> true
          | exception e ->
              QCheck.Test.fail_reportf "exception escaped: %s"
                (Printexc.to_string e));
    ]

(* ------------------------------------------------------------------ *)
(* The compile-time gate                                                *)
(* ------------------------------------------------------------------ *)

let eng_view = "view eng = " ^ Ql.Audit.fallback_source ^ ";"
let key_slice = "view ks = " ^ Ql.Audit.strict_source ^ ";"

let gate_tests =
  [
    test "requested <= inferred passes as asked" `Quick (fun () ->
        let c =
          compile_exn ("expect level = overwriteable;\n" ^ key_slice)
        in
        let cv = List.hd c.Ql.Check.views in
        check Alcotest.bool "not downgraded" false cv.Ql.Check.downgraded;
        check Alcotest.string "inferred" "overwriteable"
          (Law_infer.to_string cv.Ql.Check.inferred));
    test "strict mode rejects commuting over a lossy project" `Quick
      (fun () ->
        let msg = reject ("expect level = commuting;\n" ^ eng_view) in
        assert_contains ~what:"rejection" ~needle:"commuting" msg;
        assert_contains ~what:"rejection" ~needle:"set-bx" msg;
        assert_contains ~what:"rejection" ~needle:"strict" msg);
    test "fallback mode downgrades the same script" `Quick (fun () ->
        let c =
          compile_exn ~mode:Ql.Ast.Fallback
            ("expect level = commuting;\n" ^ eng_view)
        in
        let cv = List.hd c.Ql.Check.views in
        check Alcotest.bool "downgraded" true cv.Ql.Check.downgraded;
        check Alcotest.string "inferred" "set-bx"
          (Law_infer.to_string cv.Ql.Check.inferred);
        check Alcotest.string "requested" "commuting"
          (Law_infer.to_string cv.Ql.Check.requested));
    test "a mode statement flips the gate mid-script" `Quick (fun () ->
        let c =
          compile_exn
            ("mode fallback;\nexpect level = commuting;\n" ^ eng_view)
        in
        check Alcotest.bool "downgraded" true
          (List.hd c.Ql.Check.views).Ql.Check.downgraded);
    test "plan-lint errors reject in both modes" `Quick (fun () ->
        let bad = "view v = employees | select id, nope;" in
        assert_contains ~what:"strict" ~needle:"nope" (reject bad);
        assert_contains ~what:"fallback" ~needle:"nope"
          (reject ~mode:Ql.Ast.Fallback bad));
    test "dropping the key rejects in both modes" `Quick (fun () ->
        let bad = "view v = employees | select name, dept;" in
        let msg = reject ~mode:Ql.Ast.Fallback bad in
        assert_contains ~what:"fallback" ~needle:"key" msg);
    test "unknown views and bases are typed errors" `Quick (fun () ->
        assert_contains ~what:"unknown view" ~needle:"no such view"
          (reject "get nosuch;");
        assert_contains ~what:"unknown base" ~needle:"nosuch"
          (reject "view v = nosuch;"));
    test "non-conforming put rows are typed errors" `Quick (fun () ->
        let msg =
          reject
            (eng_view ^ "\nput eng = (1, 2);")
        in
        check Alcotest.bool "mentions the shape problem" true
          (contains ~needle:"conform" msg || contains ~needle:"arity" msg
          || contains ~needle:"row" msg));
    test "the validated fallback preserves put semantics" `Quick (fun () ->
        (* the same edits through the raw delta path (strict, honest
           level) and the runtime-validated oracle path (fallback,
           downgraded) must produce identical views *)
        let script rest = eng_view ^ "\n" ^ rest in
        let edits =
          "put eng = (1, \"ada\", \"Engineering\"), (2, \"bob\", \
           \"Engineering\");\ndelta eng + (9, \"grace\", \"Engineering\");\n\
           get eng;"
        in
        let run mode pre =
          let c = compile_exn ~mode (pre ^ script edits) in
          let t = Ql.Exec.run ~kind:Ql.Backend.Mem c in
          check Alcotest.bool "trace ok" true t.Ql.Exec.ok;
          Ql.Exec.to_json ~backend:Ql.Backend.Mem t
        in
        let raw = run Ql.Ast.Strict "" in
        let validated =
          run Ql.Ast.Fallback "expect level = commuting;\n"
        in
        (* traces differ only in the view-definition step's gate fields *)
        let tail s =
          match String.index_opt s '[' with
          | Some i -> String.sub s i (String.length s - i)
          | None -> s
        in
        let strip s =
          (* drop the Defined step (first element) from the steps array *)
          match String.index_opt (tail s) '}' with
          | Some i ->
              let t = tail s in
              String.sub t i (String.length t - i)
          | None -> s
        in
        check Alcotest.string "same answers" (strip raw) (strip validated));
  ]

(* ------------------------------------------------------------------ *)
(* The cross-backend differential, chaos seeds included                 *)
(* ------------------------------------------------------------------ *)

let diff_script =
  eng_view
  ^ "\nget eng;\nput eng = (1, \"ada\", \"Engineering\"), (2, \"bob\", \
     \"Engineering\");\ndelta eng + (7, \"grace\", \"Engineering\") - (1, \
     \"ada\", \"Engineering\");\nget eng;"

let run_backend ?chaos kind : string =
  let c = compile_exn diff_script in
  let go () = Ql.Exec.run ~kind c in
  let trace =
    match chaos with
    | None -> go ()
    | Some (seed, rate) ->
        (* only the wire sees faults: the differential asserts that
           retry + dedup + resolve heal the remote backend back to the
           exact mem/store answers *)
        Chaos.with_chaos
          (Chaos.make ~rate ~seed ())
          (fun () -> Chaos.at_sites [ "net." ] go)
  in
  check Alcotest.bool
    (Ql.Backend.kind_name kind ^ " trace ok")
    true trace.Ql.Exec.ok;
  (* normalise the backend label so the traces compare byte-for-byte *)
  Ql.Exec.to_json ~backend:Ql.Backend.Mem trace

let differential_tests =
  [
    test "mem, store and remote give identical traces" `Quick (fun () ->
        let mem = run_backend Ql.Backend.Mem in
        check Alcotest.string "store = mem" mem (run_backend Ql.Backend.Store);
        check Alcotest.string "remote = mem" mem (run_backend Ql.Backend.Remote));
  ]
  @ List.map
      (fun seed ->
        test
          (Printf.sprintf "remote under net chaos = mem (seed %d)" seed)
          `Slow
          (fun () ->
            let mem = run_backend Ql.Backend.Mem in
            let remote =
              run_backend ~chaos:(seed, 0.2) Ql.Backend.Remote
            in
            check Alcotest.string "remote = mem" mem remote;
            (* ...and chaos scoped to net.* leaves store untouched too *)
            let store =
              run_backend ~chaos:(seed, 0.2) Ql.Backend.Store
            in
            check Alcotest.string "store = mem" mem store))
      [ 1; 42; 20140328 ]

(* ------------------------------------------------------------------ *)
(* Catalog registration                                                 *)
(* ------------------------------------------------------------------ *)

let catalog_tests =
  [
    test "registration is idempotent and audits clean" `Quick (fun () ->
        Ql.Audit.register_catalog ();
        Ql.Audit.register_catalog ();
        let entries =
          List.filter
            (fun e -> List.mem (Catalog.entry_label e) Ql.Audit.labels)
            (Catalog.all ())
        in
        check Alcotest.int "one entry per label" 2 (List.length entries);
        List.iter
          (fun e ->
            let a = Catalog.audit_entry e in
            check Alcotest.bool
              (a.Catalog.label ^ " audit error-free")
              false
              (Catalog.audit_has_errors a);
            check Alcotest.bool
              (a.Catalog.label ^ " cross-check ok")
              true a.Catalog.cross_check_ok)
          entries);
    test "audits carry requested vs inferred plan levels" `Quick (fun () ->
        Ql.Audit.register_catalog ();
        let audit label =
          Catalog.audit_entry
            (List.find
               (fun e -> Catalog.entry_label e = label)
               (Catalog.all ()))
        in
        let strict = audit Ql.Audit.strict_label in
        check Alcotest.(option string) "strict requested"
          (Some "overwriteable")
          (Option.map Law_infer.to_string strict.Catalog.plan_requested);
        check Alcotest.(option string) "strict inferred" (Some "overwriteable")
          (Option.map Law_infer.to_string strict.Catalog.plan_inferred);
        let fb = audit Ql.Audit.fallback_label in
        check Alcotest.(option string) "fallback requested" (Some "commuting")
          (Option.map Law_infer.to_string fb.Catalog.plan_requested);
        check Alcotest.(option string) "fallback inferred" (Some "set-bx")
          (Option.map Law_infer.to_string fb.Catalog.plan_inferred));
  ]

let suite =
  parse_tests @ prop_tests @ gate_tests @ differential_tests @ catalog_tests
