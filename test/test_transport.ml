(** Transport suite: the real-network layer end to end.

    - {!Esm_sync.Transport.Frame}: length-framed codec roundtrips under
      arbitrary chunking; mutated and truncated byte streams produce
      typed errors, never exceptions, and poison the reader;
    - {!Esm_sync.Transport.Envelope}: request-id envelopes roundtrip;
      arbitrary garbage parses to typed errors;
    - {!Esm_sync.Retry}: bounded attempts, deterministic jitter, overall
      deadline — all against a manual clock, so no test ever waits;
    - {!Esm_core.Error}: [Unix_error] classification into
      transient/permanent transport errors;
    - {!Esm_sync.Transport.Core}: the dedup window (replay answered from
      cache, stale ids refused, both without re-execution), overload
      shedding that leaves dedup untouched, idle-session reaping;
    - {!Esm_sync.Transport.Chaos_net}: scripted half-open/duplicate
      scenarios and a deterministic mini-soak per fixed seed asserting
      the no-lost/no-duplicated-commit accounting and convergence;
    - {!Esm_sync.Transport.Server}: a real Unix-domain socket server
      driven single-threaded through the endpoint's pump hook,
      including shutdown drain. *)

open Esm_core
open Esm_sync
open Esm_sync.Transport
module Rel = Esm_relational

let check = Alcotest.check
let test = Alcotest.test_case

let chaos_seed =
  match Sys.getenv_opt "CHAOS_SEED" with
  | Some s -> ( try int_of_string s with _ -> 42)
  | None -> 42

let eng_lens =
  Rel.Query.lens_of_string ~schema:Rel.Workload.employees_schema
    ~key:[ "id" ]
    {|employees | where dept = "Engineering" | select id, name, dept|}

let make_store ?(seed = 11) ?(size = 24) () : Wire.rstore =
  Store.of_packed ~name:"employees" ~snapshot_every:8
    ~apply_da:Rel.Row_delta.apply_all ~apply_db:Rel.Row_delta.apply_all
    (Concrete.packed_of_lens ~vwb:false
       ~init:(Rel.Workload.employees ~seed ~size)
       ~eq_state:Rel.Table.equal eng_lens)

let view_row i name =
  Rel.Row.of_list
    [ Rel.Value.Int i; Rel.Value.Str name; Rel.Value.Str "Engineering" ]

let base_row i name dept salary =
  Rel.Row.of_list
    [
      Rel.Value.Int i;
      Rel.Value.Str name;
      Rel.Value.Str dept;
      Rel.Value.Int salary;
      Rel.Value.Str (name ^ "@example.com");
    ]

let is_error = function Error _ -> true | Ok _ -> false

let error_kind = function
  | Error (e : Error.t) -> Error.kind_name e.Error.kind
  | Ok _ -> "ok"

(* ------------------------------------------------------------------ *)
(* Frame: codec roundtrip + hardening                                  *)
(* ------------------------------------------------------------------ *)

(* Feed [bytes] to a reader in chunks cut at [cuts] and collect every
   decoded payload. *)
let decode_chunked (bytes : string) (cuts : int list) : string list =
  let r = Frame.reader () in
  let n = String.length bytes in
  let cuts = List.sort_uniq compare (List.map (fun c -> c mod (n + 1)) cuts) in
  let cuts = List.filter (fun c -> c > 0 && c < n) cuts @ [ n ] in
  let out = ref [] in
  let pos = ref 0 in
  List.iter
    (fun c ->
      Frame.push r (String.sub bytes !pos (c - !pos));
      pos := c;
      let rec drain () =
        match Frame.next r with
        | Ok (Some p) ->
            out := p :: !out;
            drain ()
        | Ok None -> ()
        | Error e -> Alcotest.failf "unexpected frame error: %s" (Error.message e)
      in
      drain ())
    cuts;
  (match Frame.eof r with
  | Ok () -> ()
  | Error e -> Alcotest.failf "unexpected eof error: %s" (Error.message e));
  List.rev !out

let gen_payload : string QCheck.Gen.t =
  QCheck.Gen.(string_size ~gen:(char_range '\000' '\255') (int_bound 64))

let frame_property_tests =
  [
    QCheck.Test.make ~count:300
      ~name:"frame decode . encode = id under arbitrary chunking"
      (QCheck.make
         QCheck.Gen.(
           pair
             (list_size (int_bound 5) gen_payload)
             (list_size (int_bound 8) (int_bound 500))))
      (fun (payloads, cuts) ->
        let bytes = String.concat "" (List.map Frame.encode payloads) in
        decode_chunked bytes cuts = payloads);
    QCheck.Test.make ~count:300
      ~name:"truncated frames: typed eof error, no decoded garbage"
      (QCheck.make
         QCheck.Gen.(pair gen_payload (int_range 1 4)))
      (fun (payload, cut) ->
        let bytes = Frame.encode (payload ^ "tail") in
        let keep = String.length bytes - cut in
        let r = Frame.reader () in
        Frame.push r (String.sub bytes 0 keep);
        (* the torn frame must never come out *)
        (match Frame.next r with
        | Ok None -> ()
        | Ok (Some _) -> QCheck.Test.fail_report "decoded a torn frame"
        | Error _ -> QCheck.Test.fail_report "torn tail is not an error yet");
        match Frame.eof r with
        | Error e -> e.Error.kind = Error.Transport `Transient
        | Ok () -> QCheck.Test.fail_report "eof accepted a torn frame");
  ]

let frame_unit_tests =
  [
    test "mangled length header poisons the reader" `Quick (fun () ->
        let r = Frame.reader () in
        (* a header claiming a frame far beyond max_payload *)
        Frame.push r "\xff\xff\xff\xff then some bytes";
        (match Frame.next r with
        | Error e ->
            check Alcotest.string "kind" "transport.permanent"
              (Error.kind_name e.Error.kind)
        | Ok _ -> Alcotest.fail "oversized header accepted");
        (* poisoned: pushing a valid frame afterwards cannot resync *)
        Frame.push r (Frame.encode "valid");
        check Alcotest.bool "still poisoned" true (is_error (Frame.next r));
        check Alcotest.bool "eof also fails" true (is_error (Frame.eof r)));
    test "reader compacts its consumed prefix" `Quick (fun () ->
        let r = Frame.reader () in
        for _ = 1 to 100 do
          Frame.push r (Frame.encode (String.make 200 'x'));
          match Frame.next r with
          | Ok (Some _) -> ()
          | _ -> Alcotest.fail "frame lost"
        done;
        check Alcotest.int "nothing buffered" 0 (Frame.buffered r));
    test "encode refuses oversized payloads" `Quick (fun () ->
        match Frame.encode (String.make (Frame.max_payload + 1) 'x') with
        | _ -> Alcotest.fail "oversized payload encoded"
        | exception Invalid_argument _ -> ());
  ]

(* ------------------------------------------------------------------ *)
(* Envelope: roundtrip + garbage never raises                          *)
(* ------------------------------------------------------------------ *)

let envelope_property_tests =
  [
    QCheck.Test.make ~count:300 ~name:"request envelope roundtrips"
      (QCheck.make
         QCheck.Gen.(
           triple (int_bound 1_000_000)
             (string_size ~gen:(char_range 'a' 'z') (int_range 1 8))
             (string_size ~gen:(oneofl [ 'a'; ' '; '@'; '7' ]) (int_range 1 12))))
      (fun (id, session, body) ->
        let body = String.trim body in
        QCheck.assume (body <> "");
        match Envelope.(parse_req (render_req { id; session; body })) with
        | Ok r -> r = { Envelope.id; session; body }
        | Error _ -> false);
    QCheck.Test.make ~count:300 ~name:"response envelope roundtrips"
      (QCheck.make
         QCheck.Gen.(
           pair (int_bound 1_000_000)
             (string_size ~gen:(oneofl [ 'o'; 'k'; ' '; '4' ]) (int_range 1 12))))
      (fun (rid, body) ->
        let body = String.trim body in
        QCheck.assume (body <> "");
        match Envelope.(parse_resp (render_resp { rid; body })) with
        | Ok r -> r = { Envelope.rid; body }
        | Error _ -> false);
    QCheck.Test.make ~count:500
      ~name:"garbage envelopes parse to typed errors, never exceptions"
      (QCheck.make
         QCheck.Gen.(string_size ~gen:(char_range '\000' '\255') (int_bound 40)))
      (fun s ->
        (match Envelope.parse_req s with Ok _ | Error _ -> true)
        && match Envelope.parse_resp s with Ok _ | Error _ -> true);
  ]

(* ------------------------------------------------------------------ *)
(* Wire-codec hardening: mutated frames through the whole decode path  *)
(* ------------------------------------------------------------------ *)

(* A well-formed request envelope frame, with one byte of the payload
   mutated: decoding through Frame + Envelope + Wire.parse_request must
   end in Ok or a typed bx error — any other exception fails. *)
let wire_mutation_tests =
  [
    QCheck.Test.make ~count:500
      ~name:"mutated request frames decode to typed errors only"
      (QCheck.make
         QCheck.Gen.(
           triple (int_bound 1000) (int_bound 10_000) (int_bound 255)))
      (fun (id, at, byte) ->
        let body =
          Wire.render_request (Wire.Batch [ Rel.Row_delta.Add (view_row 9 "q") ])
        in
        let payload =
          Envelope.render_req { Envelope.id; session = "s"; body }
        in
        let p = Bytes.of_string payload in
        Bytes.set p (at mod Bytes.length p) (Char.chr byte);
        let payload = Bytes.to_string p in
        let r = Frame.reader () in
        Frame.push r (Frame.encode payload);
        match Frame.next r with
        | Ok (Some got) -> (
            got = payload
            &&
            match Envelope.parse_req got with
            | Error _ -> true
            | Ok { body; _ } -> (
                match Wire.parse_request body with
                | _ -> true
                | exception exn -> Error.is_bx_exn exn))
        | Ok None | Error _ -> QCheck.Test.fail_report "whole frame lost");
  ]

(* ------------------------------------------------------------------ *)
(* Retry: bounded backoff against the fake clock                       *)
(* ------------------------------------------------------------------ *)

let transient e = Error.is_transient e

let retry_tests =
  [
    test "bounded attempts, jittered exponential waits" `Quick (fun () ->
        let policy =
          { (Retry.default ~seed:7 ()) with Retry.max_attempts = 4 }
        in
        let clock = Retry.manual_clock () in
        let calls = ref 0 in
        let r =
          Retry.run ~policy ~clock ~key:"k" ~retryable:transient
            (fun ~attempt ->
              incr calls;
              check Alcotest.int "attempts count up" !calls attempt;
              Error (Error.v (Error.Transport `Transient) ~op:"t" "down"))
        in
        check Alcotest.int "exactly max_attempts calls" 4 !calls;
        check Alcotest.string "last error surfaces" "transport.transient"
          (error_kind r);
        let expect =
          List.fold_left
            (fun acc a -> acc +. Retry.delay policy ~key:"k" ~attempt:a)
            0.0 [ 1; 2; 3 ]
        in
        check (Alcotest.float 1e-9) "slept the jittered schedule" expect
          (clock.Retry.now ()));
    test "jitter is deterministic per (seed, key, attempt)" `Quick (fun () ->
        let p = Retry.default ~seed:chaos_seed () in
        for attempt = 1 to 6 do
          check (Alcotest.float 0.0) "same delay twice"
            (Retry.delay p ~key:"s1" ~attempt)
            (Retry.delay p ~key:"s1" ~attempt)
        done;
        (* distinct keys de-synchronise: not every delay can coincide *)
        let same =
          List.for_all
            (fun attempt ->
              Retry.delay p ~key:"s1" ~attempt
              = Retry.delay p ~key:"s2" ~attempt)
            [ 1; 2; 3; 4; 5; 6 ]
        in
        check Alcotest.bool "keys jitter apart" false same;
        (* and the factor stays inside [1-j, 1+j] of the raw backoff *)
        List.iter
          (fun attempt ->
            let raw =
              Float.min
                (p.Retry.base_delay
                *. (p.Retry.multiplier ** float_of_int (attempt - 1)))
                p.Retry.max_delay
            in
            let d = Retry.delay p ~key:"s1" ~attempt in
            check Alcotest.bool "within jitter band" true
              (d >= raw *. (1.0 -. p.Retry.jitter)
              && d <= raw *. (1.0 +. p.Retry.jitter)))
          [ 1; 2; 3; 4; 5; 6 ]);
    test "overall deadline surfaces as Error.Timeout" `Quick (fun () ->
        let policy =
          {
            (Retry.default ~seed:1 ()) with
            Retry.max_attempts = 1000;
            deadline = 0.5;
          }
        in
        let clock = Retry.manual_clock () in
        let calls = ref 0 in
        let r =
          Retry.run ~policy ~clock ~key:"k" ~retryable:transient
            (fun ~attempt:_ ->
              incr calls;
              Error (Error.v Error.Overload ~op:"t" "shed"))
        in
        check Alcotest.string "timeout kind" "timeout" (error_kind r);
        check Alcotest.bool "stopped well before 1000 attempts" true
          (!calls < 1000);
        check Alcotest.bool "clock stayed within the deadline" true
          (clock.Retry.now () <= 0.5));
    test "non-retryable errors fail fast" `Quick (fun () ->
        let clock = Retry.manual_clock () in
        let calls = ref 0 in
        let r =
          Retry.run
            ~policy:(Retry.default ())
            ~clock ~key:"k" ~retryable:transient
            (fun ~attempt:_ ->
              incr calls;
              Error (Error.v Error.Shape ~op:"t" "bad view"))
        in
        check Alcotest.int "one attempt" 1 !calls;
        check Alcotest.string "original error" "shape" (error_kind r);
        check (Alcotest.float 0.0) "no sleeping" 0.0 (clock.Retry.now ()));
    test "success stops retrying" `Quick (fun () ->
        let clock = Retry.manual_clock () in
        let r =
          Retry.run
            ~policy:(Retry.default ())
            ~clock ~key:"k" ~retryable:transient
            (fun ~attempt ->
              if attempt < 3 then
                Error (Error.v Error.Timeout ~op:"t" "slow")
              else Ok attempt)
        in
        check Alcotest.bool "third attempt wins" true (r = Ok 3));
  ]

(* ------------------------------------------------------------------ *)
(* Unix_error classification                                           *)
(* ------------------------------------------------------------------ *)

let classify_tests =
  [
    test "Unix_error classifies into Transport transient/permanent" `Quick
      (fun () ->
        let kind_of e =
          match Error.of_exn (Unix.Unix_error (e, "connect", "peer")) with
          | Some err -> Error.kind_name err.Error.kind
          | None -> "unclassified"
        in
        List.iter
          (fun e ->
            check Alcotest.string "transient" "transport.transient" (kind_of e))
          [
            Unix.ECONNRESET;
            Unix.ECONNREFUSED;
            Unix.EPIPE;
            Unix.ETIMEDOUT;
            Unix.EAGAIN;
            Unix.EINTR;
            Unix.ENETDOWN;
          ];
        List.iter
          (fun e ->
            check Alcotest.string "permanent" "transport.permanent" (kind_of e))
          [ Unix.ENOENT; Unix.EACCES; Unix.EBADF; Unix.EINVAL ]);
    test "transient/retryable split drives the idempotency contract" `Quick
      (fun () ->
        let t flag = Error.v (Error.Transport flag) ~op:"t" "x" in
        (* transient: outcome unknown, retry under the SAME envelope id *)
        check Alcotest.bool "transient is transient" true
          (Error.is_transient (t `Transient));
        check Alcotest.bool "timeout is transient" true
          (Error.is_transient (Error.v Error.Timeout ~op:"t" "x"));
        check Alcotest.bool "overload is transient" true
          (Error.is_transient (Error.v Error.Overload ~op:"t" "x"));
        (* retryable-but-not-transient: definitely rolled back, retry
           under a FRESH id *)
        let conflict = Error.v Error.Conflict ~op:"t" "x" in
        check Alcotest.bool "conflict retries" true (Error.retryable conflict);
        check Alcotest.bool "conflict is not transient" false
          (Error.is_transient conflict);
        (* permanent transport errors do not retry at all *)
        check Alcotest.bool "permanent fails fast" false
          (Error.retryable (t `Permanent)));
  ]

(* ------------------------------------------------------------------ *)
(* Core: the dedup window, overload shedding, reaping                  *)
(* ------------------------------------------------------------------ *)

let send (core : Core.t) ?(pending = 0) ?(now = 0.0) ~id ~session body =
  let payload =
    Envelope.render_req { Envelope.id; session; body }
  in
  match Envelope.parse_resp (Core.handle_payload core ~now ~pending payload) with
  | Ok { rid; body } ->
      check Alcotest.int "response echoes the request id" id rid;
      Wire.parse_response body
  | Error e -> Alcotest.failf "bad response envelope: %s" (Error.message e)

let hello core ~session ~side =
  match
    send core ~id:1 ~session (Wire.render_request (Wire.Hello (session, side)))
  with
  | Wire.Resp_ok _ -> ()
  | r -> Alcotest.failf "hello failed: %s" (Wire.render_response r)

let core_tests =
  [
    test "replayed ids answer from cache without re-execution" `Quick
      (fun () ->
        let store = make_store () in
        let core = Core.create (Wire.serve store) in
        hello core ~session:"s1" ~side:`B;
        let body =
          Wire.render_request (Wire.Batch [ Rel.Row_delta.Add (view_row 900 "nu") ])
        in
        let v0 = Store.version store in
        let first = send core ~id:2 ~session:"s1" body in
        check Alcotest.int "commit applied" (v0 + 1) (Store.version store);
        let executed = (Core.stats core).Core.executed in
        (* the retransmit: same id, byte-identical answer, no execution *)
        let again = send core ~id:2 ~session:"s1" body in
        check Alcotest.bool "cached answer is identical" true (first = again);
        check Alcotest.int "no re-execution" executed
          (Core.stats core).Core.executed;
        check Alcotest.int "exactly one commit" (v0 + 1) (Store.version store);
        check Alcotest.int "dedup hit counted" 1
          (Core.stats core).Core.dedup_hits;
        (* a THIRD copy still dedups — the window is not one-shot *)
        ignore (send core ~id:2 ~session:"s1" body);
        check Alcotest.int "still one commit" (v0 + 1) (Store.version store));
    test "stale ids are refused, not executed" `Quick (fun () ->
        let store = make_store () in
        let core = Core.create (Wire.serve store) in
        hello core ~session:"s1" ~side:`B;
        let commit i id =
          send core ~id ~session:"s1"
            (Wire.render_request
               (Wire.Batch [ Rel.Row_delta.Add (view_row i "nu") ]))
        in
        ignore (commit 901 2);
        ignore (commit 902 3);
        let v = Store.version store in
        (* a floating duplicate of id 2 arrives after id 3 committed *)
        match commit 903 2 with
        | Wire.Resp_error (Error.Transport `Permanent, _) ->
            check Alcotest.int "nothing applied" v (Store.version store);
            check Alcotest.int "stale counted" 1 (Core.stats core).Core.stale
        | r -> Alcotest.failf "expected stale refusal, got %s"
                 (Wire.render_response r));
    test "dedup windows are per session" `Quick (fun () ->
        let store = make_store () in
        let core = Core.create (Wire.serve store) in
        hello core ~session:"s1" ~side:`B;
        hello core ~session:"s2" ~side:`B;
        (* both sessions use id 2 independently *)
        let r1 =
          send core ~id:2 ~session:"s1"
            (Wire.render_request
               (Wire.Batch [ Rel.Row_delta.Add (view_row 910 "nu") ]))
        in
        let r2 =
          send core ~id:2 ~session:"s2"
            (Wire.render_request
               (Wire.Batch [ Rel.Row_delta.Add (view_row 911 "xi") ]))
        in
        (match (r1, r2) with
        | Wire.Resp_ok a, Wire.Resp_ok b ->
            check Alcotest.bool "both executed" true (a <> b)
        | _ -> Alcotest.fail "a session's id leaked into another window"));
    test "overload sheds unexecuted and leaves dedup intact" `Quick
      (fun () ->
        let store = make_store () in
        let core = Core.create ~max_pending:4 (Wire.serve store) in
        hello core ~session:"s1" ~side:`B;
        let body =
          Wire.render_request (Wire.Batch [ Rel.Row_delta.Add (view_row 920 "nu") ])
        in
        let v = Store.version store in
        (match send core ~pending:5 ~id:2 ~session:"s1" body with
        | Wire.Resp_error (Error.Overload, _) -> ()
        | r -> Alcotest.failf "expected overload, got %s" (Wire.render_response r));
        check Alcotest.int "shed, not executed" v (Store.version store);
        check Alcotest.int "overload counted" 1
          (Core.stats core).Core.overloads;
        (* the retry, same id, quieter moment: executes normally *)
        (match send core ~pending:0 ~id:2 ~session:"s1" body with
        | Wire.Resp_ok _ -> ()
        | r -> Alcotest.failf "retry after shed failed: %s"
                 (Wire.render_response r));
        check Alcotest.int "retry applied once" (v + 1) (Store.version store));
    test "the reaper drops idle sessions and their windows" `Quick (fun () ->
        let store = make_store () in
        let core = Core.create (Wire.serve store) in
        hello core ~session:"fresh" ~side:`A;
        Core.touch core ~session:"fresh" ~now:100.0;
        hello core ~session:"idle" ~side:`B;
        Core.touch core ~session:"idle" ~now:10.0;
        let reaped = Core.reap core ~now:100.0 ~idle_timeout:30.0 in
        check (Alcotest.list Alcotest.string) "idle reaped" [ "idle" ] reaped;
        check (Alcotest.list Alcotest.string) "binding dropped" [ "fresh" ]
          (Wire.session_names (Core.wire core));
        check Alcotest.int "reap counted" 1 (Core.stats core).Core.reaped;
        (* the reaped session's window is gone: its old id executes anew *)
        hello core ~session:"idle" ~side:`B;
        match
          send core ~id:2 ~session:"idle"
            (Wire.render_request
               (Wire.Batch [ Rel.Row_delta.Add (view_row 930 "nu") ]))
        with
        | Wire.Resp_ok _ -> ()
        | r -> Alcotest.failf "post-reap id refused: %s" (Wire.render_response r));
    test "garbage request envelopes answer on id 0" `Quick (fun () ->
        let store = make_store () in
        let core = Core.create (Wire.serve store) in
        match
          Envelope.parse_resp
            (Core.handle_payload core ~now:0.0 ~pending:0 "not an envelope")
        with
        | Ok { rid; body } -> (
            check Alcotest.int "id 0" 0 rid;
            match Wire.parse_response body with
            | Wire.Resp_error (Error.Parse, _) -> ()
            | r -> Alcotest.failf "expected parse error, got %s"
                     (Wire.render_response r))
        | Error e -> Alcotest.failf "unparseable: %s" (Error.message e));
  ]

(* ------------------------------------------------------------------ *)
(* addr parsing                                                        *)
(* ------------------------------------------------------------------ *)

let addr_tests =
  [
    test "addr_of_string grammar" `Quick (fun () ->
        (match addr_of_string "unix:/tmp/x.sock" with
        | Ok (Unix.ADDR_UNIX p) -> check Alcotest.string "path" "/tmp/x.sock" p
        | _ -> Alcotest.fail "unix: not parsed");
        (match addr_of_string "127.0.0.1:7000" with
        | Ok (Unix.ADDR_INET (ip, port)) ->
            check Alcotest.string "ip" "127.0.0.1" (Unix.string_of_inet_addr ip);
            check Alcotest.int "port" 7000 port
        | _ -> Alcotest.fail "host:port not parsed");
        (match addr_of_string ":7001" with
        | Ok (Unix.ADDR_INET (ip, 7001)) ->
            check Alcotest.string "loopback" "127.0.0.1"
              (Unix.string_of_inet_addr ip)
        | _ -> Alcotest.fail ":port not parsed");
        List.iter
          (fun s ->
            check Alcotest.bool s true (is_error (addr_of_string s)))
          [ "nonsense"; "host:"; "host:notaport"; "" ];
        match addr_of_string "unix:/tmp/y.sock" with
        | Ok a -> check Alcotest.string "roundtrip" "unix:/tmp/y.sock"
                    (string_of_addr a)
        | Error _ -> Alcotest.fail "roundtrip failed");
  ]

(* ------------------------------------------------------------------ *)
(* Chaos_net: scripted idempotency + the deterministic mini-soak       *)
(* ------------------------------------------------------------------ *)

let chaos_net_tests =
  [
    test "submit retried across a perfect in-process net" `Quick (fun () ->
        (* no chaos installed: the shim must behave as a perfect network *)
        let store = make_store () in
        let net = Chaos_net.create (Wire.serve store) in
        let clock = Chaos_net.clock net in
        match
          Remote_session.bind ~clock (Chaos_net.endpoint net) ~name:"c1"
            ~side:`B
        with
        | Error e -> Alcotest.failf "bind failed: %s" (Error.message e)
        | Ok s -> (
            (match
               Remote_session.submit s
                 (`Batch [ Rel.Row_delta.Add (view_row 940 "nu") ])
             with
            | Ok v -> check Alcotest.int "committed" (Store.version store) v
            | Error e -> Alcotest.failf "submit failed: %s" (Error.message e));
            (match Remote_session.view s with
            | Ok (_, rows) ->
                check Alcotest.bool "row visible" true
                  (List.exists (fun r -> Rel.Row.equal r (view_row 940 "nu")) rows)
            | Error e -> Alcotest.failf "view failed: %s" (Error.message e));
            match Remote_session.ping s with
            | Ok () -> ()
            | Error e -> Alcotest.failf "ping failed: %s" (Error.message e)));
    test "duplicate submit after a half-open connection applies once"
      `Quick (fun () ->
        (* The scripted half-open: responses vanish, so the client's
           submit times out in doubt; the resend of the SAME id after
           reconnecting must be answered from the dedup cache. *)
        let store = make_store () in
        let net = Chaos_net.create (Wire.serve store) in
        let clock = Chaos_net.clock net in
        let chaos = Chaos.make ~rate:1.0 ~seed:chaos_seed () in
        let policy =
          {
            (Retry.default ~seed:chaos_seed ()) with
            Retry.max_attempts = 2;
            attempt_timeout = 0.2;
            base_delay = 0.01;
          }
        in
        let s =
          match
            Remote_session.bind ~policy ~clock (Chaos_net.endpoint net)
              ~name:"c1" ~side:`B
          with
          | Ok s -> s
          | Error e -> Alcotest.failf "bind failed: %s" (Error.message e)
        in
        let v0 = Store.version store in
        (* only net.halfopen fires inside this window *)
        let result =
          Chaos.with_chaos chaos (fun () ->
              Chaos.at_sites [ "net.halfopen" ] (fun () ->
                  Remote_session.submit s
                    (`Batch [ Rel.Row_delta.Add (view_row 950 "nu") ])))
        in
        check Alcotest.bool "submit failed transiently" true
          (match result with
          | Error e -> Error.is_transient e
          | Ok _ -> false);
        (* the request DID reach the server: the commit is in doubt *)
        Chaos_net.drain net;
        check Alcotest.int "applied exactly once server-side" (v0 + 1)
          (Store.version store);
        (* settle: resend the same id on a healed net — cached answer *)
        (match Remote_session.resolve s with
        | Ok (Wire.Resp_ok v) -> check Alcotest.int "acked version" (v0 + 1) v
        | Ok r -> Alcotest.failf "unexpected resolve: %s" (Wire.render_response r)
        | Error e -> Alcotest.failf "resolve failed: %s" (Error.message e));
        check Alcotest.int "still exactly once" (v0 + 1) (Store.version store);
        check Alcotest.bool "the duplicate hit the dedup cache" true
          ((Core.stats (Chaos_net.core net)).Core.dedup_hits >= 1));
  ]

(* The mini-soak: a remote-session workload through the chaos net under
   a fixed seed.  Asserts the transport's headline properties exactly:
   every acked commit is in the oplog once (head = acked), and after
   the net heals every session converges to the head. *)
let chaos_soak_case seed =
  test (Printf.sprintf "chaos-net soak converges (seed %d)" seed) `Slow
    (fun () ->
      let store = make_store ~size:32 () in
      let net = Chaos_net.create (Wire.serve store) in
      let clock = Chaos_net.clock net in
      let policy =
        {
          (Retry.default ~seed ()) with
          Retry.max_attempts = 8;
          base_delay = 0.02;
          attempt_timeout = 0.5;
          deadline = 60.0;
        }
      in
      let chaos = Chaos.make ~rate:0.12 ~seed () in
      let sessions =
        List.init 4 (fun i ->
            let side = if i mod 2 = 0 then `A else `B in
            match
              Remote_session.bind ~policy ~clock (Chaos_net.endpoint net)
                ~name:(Printf.sprintf "m%d" (i + 1))
                ~side
            with
            | Ok s -> s
            | Error e -> Alcotest.failf "bind failed: %s" (Error.message e))
      in
      let r = Rel.Workload.rng ~seed in
      let fresh = ref 0 in
      let acked = ref 0 and rejected = ref 0 in
      Chaos.with_chaos chaos (fun () ->
          Chaos.at_sites
            [
              "net.drop";
              "net.dup";
              "net.reorder";
              "net.truncate";
              "net.delay";
              "net.halfopen";
            ]
            (fun () ->
              for _ = 1 to 60 do
                let s =
                  List.nth sessions (Rel.Workload.int r (List.length sessions))
                in
                incr fresh;
                let row =
                  match Remote_session.side s with
                  | `A ->
                      base_row (5000 + !fresh)
                        ("nu" ^ string_of_int !fresh)
                        "Engineering" 50_000
                  | `B ->
                      view_row (5000 + !fresh) ("nu" ^ string_of_int !fresh)
                in
                match Remote_session.submit s (`Batch [ Rel.Row_delta.Add row ]) with
                | Ok _ -> incr acked
                | Error e when Error.is_transient e -> (
                    (* settle the in-doubt commit on a healed net *)
                    Chaos_net.drain net;
                    match
                      Chaos.protected (fun () -> Remote_session.resolve s)
                    with
                    | Ok (Wire.Resp_ok _) -> incr acked
                    | Ok _ -> incr rejected
                    | Error e ->
                        Alcotest.failf "unresolvable in-doubt commit: %s"
                          (Error.message e))
                | Error _ -> incr rejected
              done));
      Chaos_net.drain net;
      (* no lost, no duplicated: one oplog entry per acked commit *)
      check Alcotest.int "head = acked commits" !acked (Store.version store);
      (* convergence on the healed net *)
      Chaos.protected (fun () ->
          List.iter
            (fun s ->
              match Remote_session.pull s with
              | Ok (v, _) ->
                  check Alcotest.int
                    (Remote_session.name s ^ " at head")
                    (Store.version store) v
              | Error e ->
                  Alcotest.failf "%s final pull failed: %s"
                    (Remote_session.name s) (Error.message e))
            sessions);
      (* the sites really fired: a soak that never hurt anything would
         prove nothing *)
      let st = Chaos_net.stats net in
      check Alcotest.bool "faults were injected" true
        (st.Chaos_net.dropped + st.duped + st.truncated + st.delayed
         + st.half_opened + st.reordered
        > 0))

let chaos_soak_tests = [ chaos_soak_case 1; chaos_soak_case chaos_seed ]

(* ------------------------------------------------------------------ *)
(* The real socket server, driven single-threaded via the pump hook    *)
(* ------------------------------------------------------------------ *)

let with_unix_server (f : Server.t -> Unix.sockaddr -> unit) : unit =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "esm-test-%d.sock" (Unix.getpid ()))
  in
  let store = make_store () in
  let srv =
    Server.listen
      ~config:{ Server.default_config with idle_timeout = 5.0 }
      (Unix.ADDR_UNIX path) (Wire.serve store)
  in
  Fun.protect
    ~finally:(fun () ->
      Server.close srv;
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () -> f srv (Server.addr srv))

let server_tests =
  [
    test "unix-domain server: bind, submit, pull, bye" `Quick (fun () ->
        with_unix_server (fun srv addr ->
            let pump () = Server.step srv ~timeout:0.0 in
            let ep = Remote_session.tcp_endpoint ~pump addr in
            match Remote_session.bind ep ~name:"u1" ~side:`B with
            | Error e -> Alcotest.failf "bind failed: %s" (Error.message e)
            | Ok s ->
                check Alcotest.int "one connection" 1 (Server.conn_count srv);
                (match
                   Remote_session.submit s
                     (`Batch [ Rel.Row_delta.Add (view_row 960 "nu") ])
                 with
                | Ok v -> check Alcotest.bool "version advanced" true (v > 0)
                | Error e -> Alcotest.failf "submit failed: %s" (Error.message e));
                (match Remote_session.pull s with
                | Ok (v, _) ->
                    check Alcotest.int "pulled to head" v (Remote_session.base s)
                | Error e -> Alcotest.failf "pull failed: %s" (Error.message e));
                (match Remote_session.bye s with
                | Ok () -> ()
                | Error e -> Alcotest.failf "bye failed: %s" (Error.message e));
                Remote_session.close s));
    test "several sessions multiplex over one server" `Quick (fun () ->
        with_unix_server (fun srv addr ->
            let pump () = Server.step srv ~timeout:0.0 in
            let sessions =
              List.init 8 (fun i ->
                  let ep = Remote_session.tcp_endpoint ~pump addr in
                  let side = if i mod 2 = 0 then `A else `B in
                  match
                    Remote_session.bind ep
                      ~name:(Printf.sprintf "mux%d" (i + 1))
                      ~side
                  with
                  | Ok s -> s
                  | Error e -> Alcotest.failf "bind failed: %s" (Error.message e))
            in
            check Alcotest.int "eight connections" 8 (Server.conn_count srv);
            List.iteri
              (fun i s ->
                let row =
                  match Remote_session.side s with
                  | `A -> base_row (6000 + i) "mux" "Engineering" 51_000
                  | `B -> view_row (6000 + i) "mux"
                in
                match Remote_session.submit s (`Batch [ Rel.Row_delta.Add row ]) with
                | Ok _ -> ()
                | Error e -> Alcotest.failf "submit failed: %s" (Error.message e))
              sessions;
            let head =
              Store.version (Wire.store (Core.wire (Server.core srv)))
            in
            check Alcotest.int "all commits landed" 8 head;
            List.iter
              (fun s ->
                match Remote_session.pull s with
                | Ok (v, _) -> check Alcotest.int "converged" head v
                | Error e -> Alcotest.failf "pull failed: %s" (Error.message e))
              sessions;
            List.iter Remote_session.close sessions));
    test "shutdown drains queued responses, then run returns" `Quick
      (fun () ->
        with_unix_server (fun srv addr ->
            let pump () = Server.step srv ~timeout:0.0 in
            let ep = Remote_session.tcp_endpoint ~pump addr in
            (match Remote_session.bind ep ~name:"d1" ~side:`B with
            | Ok s ->
                (match
                   Remote_session.submit s
                     (`Batch [ Rel.Row_delta.Add (view_row 970 "nu") ])
                 with
                | Ok _ -> ()
                | Error e -> Alcotest.failf "submit failed: %s" (Error.message e));
                Remote_session.close s
            | Error e -> Alcotest.failf "bind failed: %s" (Error.message e));
            Server.request_shutdown srv;
            check Alcotest.bool "shutting down" true (Server.shutting_down srv);
            (* single-threaded: run must drain and return promptly *)
            Server.run srv;
            check Alcotest.int "all connections closed" 0
              (Server.conn_count srv)));
  ]

let suite =
  frame_unit_tests @ retry_tests @ classify_tests @ core_tests @ addr_tests
  @ chaos_net_tests @ chaos_soak_tests @ server_tests
  @ Helpers.q
      (frame_property_tests @ envelope_property_tests @ wire_mutation_tests)
