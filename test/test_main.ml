let () =
  Alcotest.run "entangled"
    [
      ("monad", Test_monad.suite);
      ("lens", Test_lens.suite);
      ("tree", Test_tree.suite);
      ("symlens", Test_symlens.suite);
      ("algbx", Test_algbx.suite);
      ("relational", Test_relational.suite);
      ("rlens", Test_rlens.suite);
      ("of_lens (Lemma 4)", Test_of_lens.suite);
      ("of_algebraic (Lemma 5)", Test_of_algebraic.suite);
      ("of_symmetric (Lemma 6)", Test_of_symmetric.suite);
      ("translate (Lemmas 1-3)", Test_translate.suite);
      ("entanglement (S3.4)", Test_entanglement.suite);
      ("effectful (S4)", Test_effectful.suite);
      ("compose", Test_compose.suite);
      ("program", Test_program.suite);
      ("journal", Test_journal.suite);
      ("equivalence", Test_equivalence.suite);
      ("nondet (S5)", Test_nondet.suite);
      ("partial (S5)", Test_partial.suite);
      ("multiway", Test_multiway.suite);
      ("prob (S5)", Test_prob.suite);
      ("two-cell theory (S2)", Test_two_cell.suite);
      ("modelbx (MDE)", Test_modelbx.suite);
      ("span", Test_span.suite);
      ("undo", Test_undo.suite);
      ("minimize (quotient)", Test_minimize.suite);
      ("delta lens", Test_delta_lens.suite);
      ("fd", Test_fd.suite);
      ("query", Test_query.suite);
      ("certify", Test_certify.suite);
      ("config lens", Test_config_lens.suite);
      ("dml", Test_dml.suite);
      ("row delta (incremental put)", Test_row_delta.suite);
      ("command optimizer", Test_command.suite);
      ("law inference", Test_law_infer.suite);
      ("lint", Test_lint.suite);
      ("integration", Test_integration.suite);
      ("chaos (atomic + fault injection)", Test_atomic.suite);
      ("sync (replicated store)", Test_sync.suite);
      ("transport (real net + chaos net)", Test_transport.suite);
      ("durable log", Test_durable_log.suite);
      ("shard (gossip + compaction)", Test_shard.suite);
      ("incr (reactive recomputation)", Test_incr.suite);
      (* last: registers into the shared catalog (see its header note) *)
      ("esmql (law-checked query front-end)", Test_ql.suite);
    ]
