(** The journalled bx: a lawful set-bx with richer witness structure
    (edit history in the hidden state), per the paper's conclusions.
    Well-behaved — including the journal in state equality — but not
    overwriteable. *)

open Esm_core

let base = Concrete.of_algebraic Fixtures.parity_undoable

let journalled =
  Journal.journalled ~eq_a:Int.equal ~eq_b:Int.equal base

let eq_state =
  Journal.equal_state ~eq_a:Int.equal ~eq_b:Int.equal
    ~eq_s:Esm_laws.Equality.(pair int int)

(* States reached by journaling a random walk from a consistent pair. *)
let gen_state : (int, int, int * int) Journal.state QCheck.arbitrary =
  QCheck.make
    ~print:(fun st -> Printf.sprintf "%d edits" (List.length st.Journal.log))
    QCheck.Gen.(
      let* s0 = Fixtures.gen_parity_consistent.QCheck.gen in
      let* walk = list_size (int_bound 5) (pair bool small_signed_int) in
      return
        (List.fold_left
           (fun st (side, v) ->
             if side then journalled.Concrete.set_a v st
             else journalled.Concrete.set_b v st)
           (Journal.initial s0) walk))

let cfg =
  Concrete_laws.config ~name:"journalled(parity)" ~gen_state
    ~gen_a:Helpers.small_int ~gen_b:Helpers.small_int ~eq_a:Int.equal
    ~eq_b:Int.equal ~eq_state ()

let law_tests = Concrete_laws.well_behaved cfg journalled

let negative_tests =
  [
    Helpers.expect_law_failure
      "journalled bx is not overwriteable (history grows)"
      (Concrete_laws.ss_a cfg journalled);
  ]

let unit_tests =
  let open Alcotest in
  [
    test_case "history records effective edits in order" `Quick (fun () ->
        let st =
          Journal.initial (0, 0)
          |> journalled.Concrete.set_a 2
          |> journalled.Concrete.set_b 5
          |> journalled.Concrete.set_b 5 (* no-op: not recorded *)
        in
        match Journal.history st with
        | [ Journal.Edited_a 2; Journal.Edited_b 5 ] -> ()
        | h -> Alcotest.failf "unexpected history of length %d" (List.length h));
    test_case "no-op sets leave the state untouched" `Quick (fun () ->
        let st = Journal.initial (4, 6) in
        let st' = journalled.Concrete.set_a 4 st in
        check bool "unchanged" true (eq_state st st'));
    test_case "views ignore the journal" `Quick (fun () ->
        let st = journalled.Concrete.set_a 8 (Journal.initial (1, 1)) in
        check int "a view" 8 (journalled.Concrete.get_a st);
        check bool "b repaired underneath" true
          (journalled.Concrete.get_b st mod 2 = 0));
  ]

(* Regression: the journal must witness only edits that actually took
   effect in the inner bx.  A hardened (Atomic) inner bx swallows
   failing sets by returning the state unchanged; the old journalling
   code logged the edit anyway — a phantom entry describing an update
   that never happened, breaking undo and state equality. *)
let phantom_tests =
  let failing : (int, int, int * int) Concrete.set_bx =
    {
      base with
      Concrete.name = "failing";
      set_a =
        (fun a st ->
          if a < 0 then
            Error.raise_error Error.Shape ~op:"set_a" "negative update %d" a
          else base.Concrete.set_a a st);
    }
  in
  let hardened = Journal.journalled ~eq_a:Int.equal ~eq_b:Int.equal
      (Atomic.harden failing)
  in
  let open Alcotest in
  [
    test_case "swallowed failures leave no phantom journal entry" `Quick
      (fun () ->
        let st = Journal.initial (0, 0) in
        let st' = hardened.Concrete.set_a (-3) st in
        check int "no phantom entry" 0 (List.length (Journal.history st'));
        check bool "state unchanged" true (eq_state st st'));
    test_case "effective edits through the hardened bx still record" `Quick
      (fun () ->
        let st = hardened.Concrete.set_a 6 (Journal.initial (0, 0)) in
        check int "one entry" 1 (List.length (Journal.history st)));
    test_case "undo never snapshots a swallowed failure" `Quick (fun () ->
        let undoable =
          Journal.Undo.wrap ~eq_a:Int.equal ~eq_b:Int.equal
            (Atomic.harden failing)
        in
        let st = Journal.Undo.initial (0, 0) in
        let st = undoable.Concrete.set_a 6 st in
        let st = undoable.Concrete.set_a (-3) st (* swallowed *) in
        match Journal.Undo.undo st with
        | Some st' ->
            (* one undo steps over the effective edit, not the phantom *)
            check int "back to the initial a" 0
              (undoable.Concrete.get_a st')
        | None -> Alcotest.fail "expected one undoable step");
  ]

(* Wrappers stack: an effectful (trace-printing) bx OVER a journalled
   bx — two layers of witness structure, still lawful. *)
module Stacked = Esm_core.Effectful.Make (struct
  type ta = int
  type tb = int
  type ts = (int, int, int * int) Journal.state

  let bx = journalled
  let equal_a = Int.equal
  let equal_b = Int.equal
  let equal_s = eq_state
  let message_a = "audit A"
  let message_b = "audit B"
end)

module Stacked_laws = Esm_core.Bx_laws.Set_bx (Stacked)

let stacked_tests =
  Stacked_laws.well_behaved
    (Stacked_laws.config ~count:200 ~name:"effectful(journalled(parity))"
       ~gen_state:gen_state ~gen_a:Helpers.small_int ~gen_b:Helpers.small_int
       ~eq_a:Int.equal ~eq_b:Int.equal ())

let stacked_unit_tests =
  [
    Alcotest.test_case "stacked wrappers: trace AND journal record a change"
      `Quick
      (fun () ->
        let ((), st), trace =
          Stacked.run (Stacked.set_a 2) (Journal.initial (0, 0))
        in
        Alcotest.(check (list string)) "trace" [ "audit A" ] trace;
        Alcotest.(check int) "journal" 1 (List.length (Journal.history st)));
    Alcotest.test_case "stacked wrappers: no-op is silent in both layers"
      `Quick
      (fun () ->
        let ((), st), trace =
          Stacked.run (Stacked.set_a 0) (Journal.initial (0, 0))
        in
        Alcotest.(check (list string)) "trace" [] trace;
        Alcotest.(check int) "journal" 0 (List.length (Journal.history st)));
  ]

let suite =
  unit_tests @ phantom_tests @ stacked_unit_tests
  @ Helpers.q (law_tests @ stacked_tests)
  @ negative_tests
