(** Sync suite: the replicated store end to end.

    - {!Esm_sync.Oplog}: dense versioning, suffix reads, snapshots;
    - {!Esm_sync.Store}: transactional commits (a failing update
      appends nothing), optimistic conflicts, batched delta bursts as
      one oplog record, crash + replay recovery;
    - {!Esm_sync.Session}: side enforcement, pull/rebase;
    - {!Esm_sync.Wire}: codec roundtrips and the in-process server;
    - chaos properties: recovery reproduces the uncrashed store, a
      batched commit equals one-at-a-time commits, and sessions
      converge under fixed fault seeds.

    Like the chaos suite, the base seed comes from [CHAOS_SEED] when
    set, and each property case derives its own instance seed. *)

open Esm_core
open Esm_sync
module Rel = Esm_relational

let check = Alcotest.check
let test = Alcotest.test_case

let chaos_seed =
  match Sys.getenv_opt "CHAOS_SEED" with
  | Some s -> ( try int_of_string s with _ -> 42)
  | None -> 42

let next_case = ref 0

let case_chaos ~rate () =
  incr next_case;
  Chaos.make ~rate ~seed:(chaos_seed + (1000 * !next_case)) ()

(* ------------------------------------------------------------------ *)
(* The store under test: employees behind a where|select lens          *)
(* ------------------------------------------------------------------ *)

let eng_lens =
  Rel.Query.lens_of_string ~schema:Rel.Workload.employees_schema
    ~key:[ "id" ]
    {|employees | where dept = "Engineering" | select id, name, dept|}

let make_store ?(seed = 11) ?(size = 24) ?(snapshot_every = 4) () :
    Wire.rstore =
  Store.of_packed ~name:"employees" ~snapshot_every
    ~apply_da:Rel.Row_delta.apply_all ~apply_db:Rel.Row_delta.apply_all
    (Concrete.packed_of_lens ~vwb:false
       ~init:(Rel.Workload.employees ~seed ~size)
       ~eq_state:Rel.Table.equal eng_lens)

let view_row i name =
  Rel.Row.of_list
    [ Rel.Value.Int i; Rel.Value.Str name; Rel.Value.Str "Engineering" ]

let base_row i name dept =
  Rel.Row.of_list
    [
      Rel.Value.Int i;
      Rel.Value.Str name;
      Rel.Value.Str dept;
      Rel.Value.Int 50_000;
      Rel.Value.Str (name ^ "@example.com");
    ]

let kind_of = function
  | Ok _ -> None
  | Error (e : Error.t) -> Some e.Error.kind

(* ------------------------------------------------------------------ *)
(* Oplog                                                               *)
(* ------------------------------------------------------------------ *)

let oplog_tests =
  [
    test "versions are dense and suffix reads are ordered" `Quick (fun () ->
        let log = Oplog.create ~snapshot_every:2 ~init:"s0" () in
        check Alcotest.int "empty head" 0 (Oplog.head_version log);
        let v1 = Oplog.append log ~session:"x" "op1" in
        let v2 = Oplog.append log ~session:"y" "op2" in
        let v3 = Oplog.append log ~session:"x" "op3" in
        check Alcotest.(list int) "dense" [ 1; 2; 3 ] [ v1; v2; v3 ];
        check
          Alcotest.(list string)
          "suffix oldest first" [ "op2"; "op3" ]
          (List.map
             (fun (e : _ Oplog.entry) -> e.Oplog.op)
             (Oplog.entries_since log 1));
        check
          Alcotest.(list string)
          "sessions sorted" [ "x"; "y" ] (Oplog.sessions log));
    test "snapshots seed at version 0 and record on period" `Quick (fun () ->
        let log = Oplog.create ~snapshot_every:2 ~init:"s0" () in
        check Alcotest.(pair int string) "seed" (0, "s0")
          (Oplog.latest_snapshot log);
        ignore (Oplog.append log ~session:"x" "op1");
        check Alcotest.bool "not due at 1" false (Oplog.snapshot_due log);
        ignore (Oplog.append log ~session:"x" "op2");
        check Alcotest.bool "due at 2" true (Oplog.snapshot_due log);
        Oplog.record_snapshot log 2 "s2";
        check Alcotest.(pair int string) "latest" (2, "s2")
          (Oplog.latest_snapshot log));
    test "create rejects a non-positive snapshot period" `Quick (fun () ->
        match Oplog.create ~snapshot_every:0 ~init:() () with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
  ]

(* ------------------------------------------------------------------ *)
(* Store: commits, conflicts, transactionality                         *)
(* ------------------------------------------------------------------ *)

let store_tests =
  [
    test "commit advances the version and both views" `Quick (fun () ->
        let store = make_store () in
        let d = Rel.Row_delta.Add (view_row 9001 "nina") in
        (match Store.commit ~session:"b1" store (Store.Batch_b [ d ]) with
        | Ok v -> check Alcotest.int "version 1" 1 v
        | Error e -> Alcotest.failf "commit failed: %s" (Error.message e));
        check Alcotest.bool "row in B view" true
          (List.exists
             (Rel.Row.equal (view_row 9001 "nina"))
             (Rel.Table.rows (Store.view_b store)));
        check Alcotest.bool "row propagated to A view" true
          (List.exists
             (fun r -> List.hd (Rel.Row.to_list r) = Rel.Value.Int 9001)
             (Rel.Table.rows (Store.view_a store))));
    test "stale optimistic check yields Conflict naming the winner" `Quick
      (fun () ->
        let store = make_store () in
        let s1 = Session.bind store ~name:"s1" ~side:`B in
        let s2 = Session.bind store ~name:"s2" ~side:`B in
        (match
           Session.submit s1
             (Store.Batch_b [ Rel.Row_delta.Add (view_row 9001 "nina") ])
         with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "s1 failed: %s" (Error.message e));
        let res =
          Session.submit s2
            (Store.Batch_b [ Rel.Row_delta.Add (view_row 9002 "omar") ])
        in
        check Alcotest.bool "Conflict kind" true
          (kind_of res = Some Error.Conflict);
        (match res with
        | Error e ->
            check Alcotest.bool "names the winner" true
              (let detail = Error.message e in
               let rec contains i =
                 i + 2 <= String.length detail
                 && (String.sub detail i 2 = "s1" || contains (i + 1))
               in
               contains 0)
        | Ok _ -> assert false);
        check Alcotest.int "loser appended nothing" 1 (Store.version store);
        (* the loser rebases: pull the winning entries, resubmit on top *)
        match
          Session.submit_rebase s2
            (Store.Batch_b [ Rel.Row_delta.Add (view_row 9002 "omar") ])
        with
        | Ok (v, rebased) ->
            check Alcotest.int "rebased to 2" 2 v;
            check Alcotest.int "saw one winning entry" 1 (List.length rebased);
            check Alcotest.bool "both rows present" true
              (let rows = Rel.Table.rows (Store.view_b store) in
               List.exists (Rel.Row.equal (view_row 9001 "nina")) rows
               && List.exists (Rel.Row.equal (view_row 9002 "omar")) rows)
        | Error e -> Alcotest.failf "rebase failed: %s" (Error.message e));
    test "a failing update rolls back and appends nothing" `Quick (fun () ->
        let store = make_store () in
        let before = Store.view_b store in
        (* a view row outside the lens predicate is not puttable *)
        let bad =
          Rel.Row.of_list
            [
              Rel.Value.Int 9003;
              Rel.Value.Str "zoe";
              Rel.Value.Str "Sales";
            ]
        in
        let res =
          Store.commit ~session:"b1" store
            (Store.Batch_b [ Rel.Row_delta.Add bad ])
        in
        check Alcotest.bool "typed error" true (Result.is_error res);
        check Alcotest.int "version unchanged" 0 (Store.version store);
        check Alcotest.int "oplog empty" 0
          (List.length (Store.entries_since store 0));
        check Alcotest.bool "view unchanged" true
          (Rel.Table.equal before (Store.view_b store)));
    test "a batched burst is one oplog record" `Quick (fun () ->
        let store = make_store () in
        let ds =
          [
            Rel.Row_delta.Add (view_row 9001 "nina");
            Rel.Row_delta.Add (view_row 9002 "omar");
            Rel.Row_delta.Remove (view_row 9001 "nina");
          ]
        in
        (match Store.commit ~session:"b1" store (Store.Batch_b ds) with
        | Ok v -> check Alcotest.int "one version" 1 v
        | Error e -> Alcotest.failf "commit failed: %s" (Error.message e));
        check Alcotest.int "one entry" 1
          (List.length (Store.entries_since store 0));
        check Alcotest.bool "net effect applied" true
          (let rows = Rel.Table.rows (Store.view_b store) in
           List.exists (Rel.Row.equal (view_row 9002 "omar")) rows
           && not (List.exists (Rel.Row.equal (view_row 9001 "nina")) rows)));
    test "missing delta applier is a typed error, not a crash" `Quick
      (fun () ->
        let store : Wire.rstore =
          Store.of_packed ~name:"no-applier"
            (Concrete.packed_of_lens ~vwb:false
               ~init:(Rel.Workload.employees ~seed:3 ~size:4)
               ~eq_state:Rel.Table.equal eng_lens)
        in
        let res =
          Store.commit ~session:"b1" store
            (Store.Batch_b [ Rel.Row_delta.Add (view_row 9001 "nina") ])
        in
        check Alcotest.bool "Other kind" true (kind_of res = Some Error.Other));
    test "crashed store refuses commits until recover" `Quick (fun () ->
        let store = make_store ~snapshot_every:4 () in
        for i = 1 to 5 do
          match
            Store.commit ~session:"b1" store
              (Store.Batch_b [ Rel.Row_delta.Add (view_row (9000 + i) "r") ])
          with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "commit %d failed: %s" i (Error.message e)
        done;
        let va = Store.view_a store and vb = Store.view_b store in
        Store.crash store;
        check Alcotest.int "woke at snapshot 4" 4 (Store.version store);
        check Alcotest.int "oplog head still 5" 5 (Store.head_version store);
        let refused =
          Store.commit ~session:"b1" store
            (Store.Batch_b [ Rel.Row_delta.Add (view_row 9999 "late") ])
        in
        check Alcotest.bool "refused" true
          (kind_of refused = Some Error.Other);
        Store.recover store;
        check Alcotest.int "caught up" 5 (Store.version store);
        check Alcotest.bool "A view reproduced" true
          (Rel.Table.equal va (Store.view_a store));
        check Alcotest.bool "B view reproduced" true
          (Rel.Table.equal vb (Store.view_b store)));
    test "replicated pedigree preserves the base law level" `Quick (fun () ->
        let store = make_store () in
        (match Store.pedigree store with
        | Pedigree.Replicated _ -> ()
        | p -> Alcotest.failf "unexpected pedigree %s" (Pedigree.to_string p));
        check Alcotest.bool "level preserved" true
          (Esm_analysis.Law_infer.level (Store.pedigree store)
          = Esm_analysis.Law_infer.level (Pedigree.Of_lens { name = "x"; vwb = false }));
        check Alcotest.bool "rollback protected" true
          (Esm_analysis.Law_infer.rollback_protected (Store.pedigree store));
        check Alcotest.bool "not fallible" true
          (not (Esm_analysis.Law_infer.fallible (Store.pedigree store))));
  ]

(* ------------------------------------------------------------------ *)
(* Session: side enforcement                                           *)
(* ------------------------------------------------------------------ *)

let session_tests =
  [
    test "an op against the unbound side is a protocol error" `Quick
      (fun () ->
        let store = make_store () in
        let sa = Session.bind store ~name:"a1" ~side:`A in
        let res =
          Session.submit sa
            (Store.Batch_b [ Rel.Row_delta.Add (view_row 9001 "nina") ])
        in
        check Alcotest.bool "Other kind" true (kind_of res = Some Error.Other);
        check Alcotest.int "store untouched" 0 (Store.version store));
    test "pull returns the suffix and advances the base" `Quick (fun () ->
        let store = make_store () in
        let sa = Session.bind store ~name:"a1" ~side:`A in
        let sb = Session.bind store ~name:"b1" ~side:`B in
        (match
           Session.submit sb
             (Store.Batch_b [ Rel.Row_delta.Add (view_row 9001 "nina") ])
         with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "submit failed: %s" (Error.message e));
        check Alcotest.int "behind" 0 (Session.base sa);
        let entries = Session.pull sa in
        check Alcotest.int "one entry" 1 (List.length entries);
        check Alcotest.int "caught up" 1 (Session.base sa);
        check Alcotest.int "idempotent" 0 (List.length (Session.pull sa)));
  ]

(* ------------------------------------------------------------------ *)
(* Wire codec                                                          *)
(* ------------------------------------------------------------------ *)

(* Strings exercising every delimiter and escape the codec handles. *)
let gen_nasty_string : string QCheck.Gen.t =
  QCheck.Gen.(
    string_size ~gen:(oneofl [ 'a'; 'z'; '"'; '\\'; ','; ';'; ' '; '+' ])
      (int_bound 8))

let gen_wire_row : Rel.Row.t QCheck.arbitrary =
  QCheck.make ~print:Rel.Row.to_string
    QCheck.Gen.(
      let* n = int_range 1 4 in
      let* vs =
        flatten_l
          (List.init n (fun _ ->
               oneof
                 [
                   map (fun i -> Rel.Value.Int i) small_signed_int;
                   map (fun b -> Rel.Value.Bool b) bool;
                   map (fun s -> Rel.Value.Str s) gen_nasty_string;
                 ]))
      in
      return (Rel.Row.of_list vs))

let wire_property_tests =
  [
    QCheck.Test.make ~count:500 ~name:"wire row codec roundtrips" gen_wire_row
      (fun r -> Rel.Row.equal (Wire.parse_row (Wire.render_row r)) r);
    QCheck.Test.make ~count:500 ~name:"wire request codec roundtrips"
      (QCheck.make
         ~print:(fun r -> Wire.render_request r)
         QCheck.Gen.(
           let* rows = list_size (int_bound 3) (QCheck.gen gen_wire_row) in
           oneofl
             [
               Wire.Hello ("sess", `A);
               Wire.Hello ("sess", `B);
               Wire.Get;
               Wire.Set rows;
               Wire.Batch
                 (List.map (fun r -> Rel.Row_delta.Add r) rows
                 @ List.map (fun r -> Rel.Row_delta.Remove r) rows);
               Wire.Pull;
               Wire.Ping;
               Wire.Crash;
               Wire.Recover;
               Wire.Bye;
             ]))
      (fun req -> Wire.parse_request (Wire.render_request req) = req);
  ]

let wire_unit_tests =
  [
    test "response codec roundtrips" `Quick (fun () ->
        List.iter
          (fun resp ->
            check Alcotest.bool
              (Wire.render_response resp)
              true
              (Wire.parse_response (Wire.render_response resp) = resp))
          [
            Wire.Resp_ok 7;
            Wire.Resp_conflict (3, "s1 got there first");
            Wire.Resp_error (Error.Conflict, "stale base");
            Wire.Resp_error (Error.Shape, "bad view");
            Wire.Resp_error (Error.Transport `Transient, "conn reset");
            Wire.Resp_error (Error.Transport `Permanent, "bad frame");
            Wire.Resp_error (Error.Timeout, "no response");
            Wire.Resp_error (Error.Overload, "queue full");
            Wire.Resp_view (2, [ view_row 1 {|quo"te|}; view_row 2 "b;c" ]);
            Wire.Resp_update (5, 2);
            Wire.Resp_pong;
          ]);
    test "malformed input raises a typed Parse error" `Quick (fun () ->
        List.iter
          (fun line ->
            match Wire.parse_request line with
            | _ -> Alcotest.failf "accepted %S" line
            | exception Error.Bx_error e ->
                check Alcotest.bool line true (e.Error.kind = Error.Parse))
          [ "frobnicate"; "hello x"; "hello x c"; "batch ~1, 2"; "" ]);
    test "server turns bx failures into error responses" `Quick (fun () ->
        let srv = Wire.serve (make_store ()) in
        (match Wire.handle srv ~session:"b1" (Wire.Hello ("b1", `B)) with
        | Wire.Resp_ok 0 -> ()
        | r -> Alcotest.failf "hello: %s" (Wire.render_response r));
        (* predicate-violating put comes back as an error response *)
        (match
           Wire.handle srv ~session:"b1"
             (Wire.Batch
                [
                  Rel.Row_delta.Add
                    (Rel.Row.of_list
                       [
                         Rel.Value.Int 1;
                         Rel.Value.Str "zoe";
                         Rel.Value.Str "Sales";
                       ]);
                ])
         with
        | Wire.Resp_error (_, _) -> ()
        | r -> Alcotest.failf "bad batch: %s" (Wire.render_response r));
        (* an unbound session is an error, not an exception *)
        match Wire.handle srv ~session:"ghost" Wire.Get with
        | Wire.Resp_error (_, _) -> ()
        | r -> Alcotest.failf "ghost: %s" (Wire.render_response r));
  ]

(* ------------------------------------------------------------------ *)
(* Chaos properties                                                    *)
(* ------------------------------------------------------------------ *)

let fresh = ref 100_000

let random_deltas r (sess : Wire.rsession) =
  let view =
    Chaos.protected (fun () ->
        match Session.view sess with `A t | `B t -> t)
  in
  let rows = Rel.Table.rows view in
  let n = 1 + Rel.Workload.int r 3 in
  List.init n (fun _ ->
      if rows = [] || Rel.Workload.int r 3 = 0 then (
        incr fresh;
        match Session.side sess with
        | `A ->
            Rel.Row_delta.Add
              (base_row !fresh
                 ("w" ^ string_of_int !fresh)
                 (Rel.Workload.pick r [ "Engineering"; "Sales"; "Ops" ]))
        | `B ->
            Rel.Row_delta.Add (view_row !fresh ("w" ^ string_of_int !fresh)))
      else Rel.Row_delta.Remove (Rel.Workload.pick r rows))

let run_workload r store ~ops =
  let sa = Session.bind store ~name:"a1" ~side:`A in
  let sb = Session.bind store ~name:"b1" ~side:`B in
  for _ = 1 to ops do
    let sess = if Rel.Workload.int r 2 = 0 then sa else sb in
    let ds = random_deltas r sess in
    let op =
      match Session.side sess with
      | `A -> Store.Batch_a ds
      | `B -> Store.Batch_b ds
    in
    (* failures (injected faults, FD violations) roll back — allowed *)
    ignore (Session.submit_rebase sess op)
  done

let recovery_prop seed =
  let c = case_chaos ~rate:0.2 () in
  Chaos.with_chaos c (fun () ->
      let store = make_store ~snapshot_every:3 () in
      let r = Rel.Workload.rng ~seed in
      run_workload r store ~ops:10;
      let va, vb, v =
        Chaos.protected (fun () ->
            (Store.view_a store, Store.view_b store, Store.version store))
      in
      Store.crash store;
      Store.recover store;
      Chaos.protected (fun () ->
          Store.version store = v
          && Rel.Table.equal (Store.view_a store) va
          && Rel.Table.equal (Store.view_b store) vb))

let batch_oracle_prop seed =
  let c = case_chaos ~rate:0.2 () in
  let store = make_store () in
  let oracle = make_store () in
  let r = Rel.Workload.rng ~seed in
  let sb = Session.bind store ~name:"b1" ~side:`B in
  let ds = random_deltas r sb in
  let res =
    Chaos.with_chaos c (fun () ->
        Store.commit ~session:"b1" store (Store.Batch_b ds))
  in
  match res with
  | Error _ ->
      (* transactional: the failed batch left no trace *)
      Store.version store = 0
      && Rel.Table.equal (Store.view_b store) (Store.view_b oracle)
  | Ok _ ->
      List.iter
        (fun d ->
          match Store.commit ~session:"b1" oracle (Store.Batch_b [ d ]) with
          | Ok _ -> ()
          | Error e ->
              Alcotest.failf "one-at-a-time oracle failed: %s"
                (Error.message e))
        ds;
      Rel.Table.equal (Store.view_a store) (Store.view_a oracle)
      && Rel.Table.equal (Store.view_b store) (Store.view_b oracle)

let chaos_property_tests =
  [
    QCheck.Test.make ~count:60
      ~name:"recovery under chaos reproduces the uncrashed store"
      QCheck.small_nat recovery_prop;
    QCheck.Test.make ~count:60
      ~name:"a batched commit equals one-at-a-time commits"
      QCheck.small_nat batch_oracle_prop;
  ]

(* Convergence under two fixed fault seeds: after a chaotic multi-session
   workload with a crash in the middle, every session pulls to the store
   head. *)
let convergence_case fault_seed =
  test
    (Printf.sprintf "sessions converge under chaos seed %d" fault_seed)
    `Quick
    (fun () ->
      let c = Chaos.make ~rate:0.1 ~seed:fault_seed () in
      Chaos.with_chaos c (fun () ->
          let store = make_store ~snapshot_every:4 () in
          let sessions =
            List.init 4 (fun i ->
                Session.bind store
                  ~name:(Printf.sprintf "s%d" (i + 1))
                  ~side:(if i mod 2 = 0 then `A else `B))
          in
          let r = Rel.Workload.rng ~seed:fault_seed in
          for i = 1 to 30 do
            let sess = Rel.Workload.pick r sessions in
            let ds = random_deltas r sess in
            let op =
              match Session.side sess with
              | `A -> Store.Batch_a ds
              | `B -> Store.Batch_b ds
            in
            ignore (Session.submit_rebase sess op);
            if i = 15 then (
              Store.crash store;
              Store.recover store)
          done;
          List.iter
            (fun sess ->
              ignore (Session.pull sess);
              check Alcotest.int
                (Session.name sess ^ " at head")
                (Store.version store) (Session.base sess))
            sessions))

let convergence_tests = [ convergence_case 1; convergence_case 20140328 ]

let suite =
  oplog_tests @ store_tests @ session_tests @ wire_unit_tests
  @ convergence_tests
  @ Helpers.q (wire_property_tests @ chaos_property_tests)
