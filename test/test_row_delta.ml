(** Oracle tests for the incremental relational path: {!Rlens.put_delta}
    against the full [put], {!Dml.delta}/[through_delta] against
    [apply]/[through], {!Row_delta.diff} round trips, and the {!Table}
    index/merge primitives against list-based references. *)

open Esm_relational
open Esm_lens

let check = Alcotest.check
let test = Alcotest.test_case

let schema = Workload.employees_schema
let eng = Pred.(col "dept" = str "Engineering")

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let gen_table : Table.t QCheck.arbitrary =
  QCheck.make ~print:Table.to_string
    QCheck.Gen.(
      let* seed = int_bound 10_000 in
      let* size = int_bound 25 in
      return (Workload.employees ~seed ~size))

let gen_table_pair : (Table.t * Table.t) QCheck.arbitrary =
  QCheck.pair gen_table gen_table

(* A fresh employees row with a large id (absent from generated
   tables), in the given department. *)
let fresh_row ~id ~dept =
  Row.of_list
    [
      Value.Int (10_000 + id);
      Value.Str ("fresh" ^ string_of_int id);
      Value.Str dept;
      Value.Int 42_000;
      Value.Str "fresh@x";
    ]

(* View deltas against [view]: adds of fresh in-domain rows (built by
   [make_add]) and removes of present and absent view rows. *)
let gen_deltas ~(make_add : int -> Row.t) (view : Table.t) :
    Row_delta.t list QCheck.Gen.t =
  QCheck.Gen.(
    let rows = Table.rows view in
    let n = List.length rows in
    let* ops = list_size (int_bound 6) (int_bound 2) in
    let pick_remove i =
      if n = 0 then Row_delta.Add (make_add (900 + i))
      else Row_delta.Remove (List.nth rows (i mod n))
    in
    return
      (List.mapi
         (fun i -> function
           | 0 -> Row_delta.Add (make_add i)
           | 1 -> pick_remove i
           | _ ->
               (* removing an absent row must be a no-op on both paths *)
               Row_delta.Remove (make_add (500 + i)))
         ops))

(* Source table plus deltas against the dlens's view of it. *)
let gen_source_and_deltas ~(make_add : int -> Row.t) (dl : Rlens.dlens) :
    (Table.t * Row_delta.t list) QCheck.arbitrary =
  QCheck.make
    ~print:(fun (t, ds) ->
      Table.to_string t ^ "\ndeltas: "
      ^ String.concat "; " (List.map Row_delta.to_string ds))
    QCheck.Gen.(
      let* source = QCheck.gen gen_table in
      let* deltas = gen_deltas ~make_add (Lens.get dl.Rlens.lens source) in
      return (source, deltas))

(* The oracle: pushing deltas through [put_delta] lands on the same
   table as applying them to the view and running the full [put]. *)
let put_delta_oracle (dl : Rlens.dlens) (source, deltas) =
  let view = Lens.get dl.Rlens.lens source in
  let incremental = Rlens.put_delta dl source deltas in
  let full = Lens.put dl.Rlens.lens source (Row_delta.apply_all view deltas) in
  Table.equal incremental full

(* ------------------------------------------------------------------ *)
(* put_delta vs put                                                    *)
(* ------------------------------------------------------------------ *)

let dl_select = Rlens.dselect eng

let dl_project =
  Rlens.dproject ~keep:[ "id"; "name"; "dept" ] ~key:[ "id" ] schema

let dl_pipeline =
  Query.dlens_of_string ~schema ~key:[ "id" ]
    {|employees | where dept = "Engineering" | select id, name, dept | rename name as who|}

let eng_add i = fresh_row ~id:i ~dept:"Engineering"

let put_delta_tests =
  [
    QCheck.Test.make ~count:250 ~name:"select: put_delta agrees with put"
      (gen_source_and_deltas ~make_add:eng_add dl_select)
      (put_delta_oracle dl_select);
    QCheck.Test.make ~count:250 ~name:"project: put_delta agrees with put"
      (gen_source_and_deltas
         ~make_add:(fun i ->
           Row.project schema [ "id"; "name"; "dept" ] (eng_add i))
         dl_project)
      (put_delta_oracle dl_project);
    QCheck.Test.make ~count:250
      ~name:"where|select|rename pipeline: put_delta agrees with put"
      (gen_source_and_deltas
         ~make_add:(fun i ->
           Row.project schema [ "id"; "name"; "dept" ] (eng_add i))
         dl_pipeline)
      (put_delta_oracle dl_pipeline);
    QCheck.Test.make ~count:250 ~name:"put_delta with no deltas is a no-op"
      gen_table
      (fun t -> Table.equal (Rlens.put_delta dl_pipeline t []) t);
  ]

let put_delta_unit_tests =
  [
    test "select put_delta rejects predicate-violating adds" `Quick (fun () ->
        let t = Workload.employees ~seed:1 ~size:5 in
        match
          Rlens.put_delta dl_select t
            [ Row_delta.Add (fresh_row ~id:1 ~dept:"Sales") ]
        with
        | _ -> Alcotest.fail "expected Shape_error"
        | exception Lens.Shape_error _ -> ());
    test "select put_delta drops removes outside the view" `Quick (fun () ->
        let t = Workload.employees ~seed:1 ~size:8 in
        let sales_row =
          List.find
            (fun r -> not (Pred.eval schema eng r))
            (Table.rows t)
        in
        let t' = Rlens.put_delta dl_select t [ Row_delta.Remove sales_row ] in
        check Helpers.table "source untouched" t t');
  ]

(* ------------------------------------------------------------------ *)
(* Dml.delta and through_delta                                         *)
(* ------------------------------------------------------------------ *)

let gen_stmt : Dml.t QCheck.Gen.t =
  QCheck.Gen.(
    let* k = int_bound 2 in
    match k with
    | 0 ->
        let* i = int_bound 30 in
        return (Dml.Insert (fresh_row ~id:i ~dept:"Engineering"))
    | 1 ->
        let* s = int_bound 120 in
        return (Dml.Delete Pred.(col "salary" < int (40_000 + (s * 500))))
    | _ ->
        let* s = int_bound 120 in
        return
          (Dml.Update
             ( Pred.(col "salary" < int (40_000 + (s * 500))),
               [ ("name", Pred.Lit (Value.Str "renamed")) ] )))

let gen_table_and_stmt : (Table.t * Dml.t) QCheck.arbitrary =
  QCheck.make
    ~print:(fun (t, stmt) ->
      Table.to_string t ^ "\n" ^ Format.asprintf "%a" Dml.pp stmt)
    QCheck.Gen.(
      let* t = QCheck.gen gen_table in
      let* stmt = gen_stmt in
      return (t, stmt))

let dml_delta_tests =
  [
    QCheck.Test.make ~count:250 ~name:"Dml.delta reproduces Dml.apply"
      gen_table_and_stmt
      (fun (t, stmt) ->
        Table.equal (Dml.apply t stmt)
          (Row_delta.apply_all t (Dml.delta t stmt)));
    QCheck.Test.make ~count:250
      ~name:"through_delta agrees with through (select view)"
      gen_table_and_stmt
      (fun (t, stmt) ->
        Table.equal
          (Dml.through_delta dl_select stmt t)
          (Dml.through dl_select.Rlens.lens stmt t));
    QCheck.Test.make ~count:200 ~name:"swap update lands on the right set"
      gen_table
      (fun t ->
        (* permuting a column through delta application must not lose
           rows: removals precede additions *)
        let stmt =
          Dml.Update (Pred.Const true, [ ("salary", Pred.Lit (Value.Int 1)) ])
        in
        Table.equal (Dml.apply t stmt)
          (Row_delta.apply_all t (Dml.delta t stmt)));
  ]

(* ------------------------------------------------------------------ *)
(* Row_delta.diff                                                      *)
(* ------------------------------------------------------------------ *)

let diff_tests =
  [
    QCheck.Test.make ~count:250 ~name:"diff/apply_all round trip"
      gen_table_pair
      (fun (t1, t2) -> Table.equal (Row_delta.apply_all t1 (Row_delta.diff t1 t2)) t2);
    QCheck.Test.make ~count:200 ~name:"diff to self is empty" gen_table
      (fun t -> Row_delta.diff t t = []);
    QCheck.Test.make ~count:200 ~name:"diff size bounds the edit"
      gen_table_pair
      (fun (t1, t2) ->
        List.length (Row_delta.diff t1 t2)
        <= Table.cardinality t1 + Table.cardinality t2);
  ]

(* ------------------------------------------------------------------ *)
(* Table index and merge primitives vs list references                 *)
(* ------------------------------------------------------------------ *)

let rows_of t = Table.rows t
let mem_list rows r = List.exists (Row.equal r) rows

let table_primitive_tests =
  [
    QCheck.Test.make ~count:250 ~name:"mem agrees with a linear scan"
      gen_table_pair
      (fun (t1, t2) ->
        List.for_all
          (fun r -> Table.mem t1 r = mem_list (rows_of t1) r)
          (rows_of t2 @ rows_of t1));
    QCheck.Test.make ~count:250 ~name:"union/inter/diff agree with references"
      gen_table_pair
      (fun (t1, t2) ->
        let reference f =
          Table.of_rows schema
            (List.filter f (rows_of t1 @ rows_of t2))
        in
        Table.equal (Table.union t1 t2) (Table.of_rows schema (rows_of t1 @ rows_of t2))
        && Table.equal (Table.inter t1 t2)
             (reference (fun r -> mem_list (rows_of t1) r && mem_list (rows_of t2) r))
        && Table.equal (Table.diff t1 t2)
             (Table.of_rows schema
                (List.filter (fun r -> not (mem_list (rows_of t2) r)) (rows_of t1))))
    ;
    QCheck.Test.make ~count:250 ~name:"insert/delete vs of_rows"
      gen_table
      (fun t ->
        let r = fresh_row ~id:7 ~dept:"Ops" in
        let inserted = Table.insert t r in
        let deleted = Table.delete inserted r in
        Table.equal inserted (Table.of_rows schema (r :: rows_of t))
        && Table.equal deleted t
        && Table.equal (Table.insert inserted r) inserted
        && Table.equal (Table.delete t r) t);
    QCheck.Test.make ~count:250 ~name:"find_by_key agrees with a linear scan"
      gen_table
      (fun t ->
        let key = [ Schema.index schema "id" ] in
        List.for_all
          (fun r ->
            let k = Table.key_of_row key r in
            match Table.find_by_key t ~key k with
            | Some r' -> Row.equal r r'
            | None -> false)
          (rows_of t)
        && Table.find_by_key t ~key [ Value.Int (-1) ] = None);
  ]

let suite =
  Helpers.q
    (put_delta_tests @ dml_delta_tests @ diff_tests @ table_primitive_tests)
  @ put_delta_unit_tests
