(** Tests for the MDE substrate: object models, metamodel conformance,
    diff/apply, and QVT-R-lite correspondences as algebraic bx — lifted
    through Lemma 5 into an entangled state monad over model pairs. *)

open Esm_modelbx

let check = Alcotest.check
let test = Alcotest.test_case

let model_t : Model.t Alcotest.testable =
  Alcotest.testable (fun fmt m -> Model.pp fmt m) Model.equal

(* ------------------------------------------------------------------ *)
(* Models                                                              *)
(* ------------------------------------------------------------------ *)

let o1 = Model.obj ~id:1 ~cls:"Class" [ ("name", Model.Vstr "Order"); ("abstract", Model.Vbool false); ("doc", Model.Vstr "an order") ]
let o2 = Model.obj ~id:2 ~cls:"Class" [ ("name", Model.Vstr "Item"); ("abstract", Model.Vbool true); ("doc", Model.Vstr "") ]
let m12 = Model.of_objects [ o2; o1 ]

let model_tests =
  [
    test "of_objects canonicalises order" `Quick (fun () ->
        match Model.objects m12 with
        | [ a; b ] ->
            check Alcotest.int "first" 1 a.Model.id;
            check Alcotest.int "second" 2 b.Model.id
        | _ -> Alcotest.fail "expected two objects");
    test "of_objects rejects duplicate ids" `Quick (fun () ->
        match Model.of_objects [ o1; o1 ] with
        | _ -> Alcotest.fail "expected Model_error"
        | exception Model.Model_error _ -> ());
    test "attrs are sorted so equality is canonical" `Quick (fun () ->
        let a =
          Model.obj ~id:7 ~cls:"C" [ ("z", Model.Vint 1); ("a", Model.Vint 2) ]
        in
        let b =
          Model.obj ~id:7 ~cls:"C" [ ("a", Model.Vint 2); ("z", Model.Vint 1) ]
        in
        check Alcotest.bool "equal" true (Model.equal_obj a b));
    test "update replaces in place" `Quick (fun () ->
        let m' = Model.update m12 (Model.set_attr o1 "doc" (Model.Vstr "x")) in
        check Alcotest.bool "doc updated" true
          (match Model.attr (Option.get (Model.find m' 1)) "doc" with
          | Some (Model.Vstr "x") -> true
          | _ -> false));
    test "next_id is one past the max" `Quick (fun () ->
        check Alcotest.int "next" 3 (Model.next_id m12);
        check Alcotest.int "empty" 1 (Model.next_id Model.empty));
    test "of_class filters" `Quick (fun () ->
        check Alcotest.int "classes" 2 (List.length (Model.of_class m12 "Class"));
        check Alcotest.int "none" 0 (List.length (Model.of_class m12 "Other")));
  ]

(* ------------------------------------------------------------------ *)
(* Metamodels                                                          *)
(* ------------------------------------------------------------------ *)

let class_mm =
  Metamodel.v
    [
      {
        Metamodel.cls_name = "Class";
        attributes =
          [ ("name", Metamodel.Tstr); ("abstract", Metamodel.Tbool); ("doc", Metamodel.Tstr) ];
      };
      {
        Metamodel.cls_name = "Attr";
        attributes =
          [ ("name", Metamodel.Tstr); ("owner", Metamodel.Tref "Class") ];
      };
    ]

let table_mm =
  Metamodel.v
    [
      {
        Metamodel.cls_name = "Table";
        attributes =
          [ ("name", Metamodel.Tstr); ("persistent", Metamodel.Tbool); ("engine", Metamodel.Tstr) ];
      };
    ]

let metamodel_tests =
  [
    test "conforming model passes" `Quick (fun () ->
        check Alcotest.(list string) "no violations" [] (Metamodel.check class_mm m12));
    test "missing attribute is reported" `Quick (fun () ->
        let bad = Model.of_objects [ Model.obj ~id:1 ~cls:"Class" [ ("name", Model.Vstr "X") ] ] in
        check Alcotest.bool "violations" false (Metamodel.conforms class_mm bad));
    test "dangling reference is reported" `Quick (fun () ->
        let bad =
          Model.of_objects
            [
              Model.obj ~id:1 ~cls:"Attr"
                [ ("name", Model.Vstr "f"); ("owner", Model.Vref 99) ];
            ]
        in
        check Alcotest.bool "violations" false (Metamodel.conforms class_mm bad));
    test "reference to the right class passes" `Quick (fun () ->
        let ok =
          Model.of_objects
            [
              o1;
              Model.obj ~id:5 ~cls:"Attr"
                [ ("name", Model.Vstr "total"); ("owner", Model.Vref 1) ];
            ]
        in
        check Alcotest.(list string) "no violations" [] (Metamodel.check class_mm ok));
    test "undefined class in metamodel ref is rejected" `Quick (fun () ->
        match
          Metamodel.v
            [ { Metamodel.cls_name = "X"; attributes = [ ("r", Metamodel.Tref "Nope") ] } ]
        with
        | _ -> Alcotest.fail "expected Metamodel_error"
        | exception Metamodel.Metamodel_error _ -> ());
    test "fresh_object conforms" `Quick (fun () ->
        let o = Metamodel.fresh_object table_mm ~cls:"Table" ~id:4 in
        check Alcotest.(list string) "no violations" []
          (Metamodel.check table_mm (Model.of_objects [ o ])));
  ]

(* ------------------------------------------------------------------ *)
(* Diff / apply                                                        *)
(* ------------------------------------------------------------------ *)

let names_pool = [ "Order"; "Item"; "User"; "Invoice"; "Line" ]

(* Small conformant Class models with unique ids and unique names. *)
let gen_class_model : Model.t QCheck.arbitrary =
  QCheck.make
    ~print:Model.to_string
    QCheck.Gen.(
      let* n = int_bound (List.length names_pool) in
      let* flags = flatten_l (List.init n (fun _ -> bool)) in
      let* docs = flatten_l (List.init n (fun _ -> string_size ~gen:(char_range 'a' 'z') (int_bound 5))) in
      return
        (Model.of_objects
           (List.mapi
              (fun i ((name, abstract), doc) ->
                Model.obj ~id:(i + 1) ~cls:"Class"
                  [
                    ("name", Model.Vstr name);
                    ("abstract", Model.Vbool abstract);
                    ("doc", Model.Vstr doc);
                  ])
              (List.combine
                 (List.combine (List.filteri (fun i _ -> i < n) names_pool) flags)
                 docs))))

let diff_tests =
  [
    QCheck.Test.make ~count:300 ~name:"diff/apply round trip"
      (QCheck.pair gen_class_model gen_class_model)
      (fun (m1, m2) -> Model.equal (Diff.apply m1 (Diff.diff m1 m2)) m2);
    QCheck.Test.make ~count:300 ~name:"diff to self is empty"
      gen_class_model
      (fun m -> Diff.diff m m = []);
    QCheck.Test.make ~count:300 ~name:"distance is symmetric in emptiness"
      gen_class_model
      (fun m -> (Diff.distance m m = 0) && Diff.distance Model.empty m = Model.size m);
    (* The batched-commit equivalence Esm_sync relies on: coalescing a
       valid burst never changes its effect, and never grows it.  A
       chained diff (m1 -> m2 -> m3) yields bursts with genuine
       supersessions and add/remove cancellations. *)
    QCheck.Test.make ~count:300 ~name:"coalesce preserves apply on bursts"
      (QCheck.triple gen_class_model gen_class_model gen_class_model)
      (fun (m1, m2, m3) ->
        let burst = Diff.diff m1 m2 @ Diff.diff m2 m3 in
        Model.equal (Diff.apply m1 (Diff.coalesce burst)) (Diff.apply m1 burst)
        && List.length (Diff.coalesce burst) <= List.length burst);
  ]

let coalesce_unit_tests =
  let open Alcotest in
  [
    test_case "coalesce drops a superseded attribute write" `Quick (fun () ->
        let es =
          [
            Diff.Set_attr (1, "name", Model.Vstr "x");
            Diff.Set_attr (1, "doc", Model.Vstr "keep");
            Diff.Set_attr (1, "name", Model.Vstr "y");
          ]
        in
        (match Diff.coalesce es with
        | [ Diff.Set_attr (1, "doc", _); Diff.Set_attr (1, "name", Model.Vstr "y") ] -> ()
        | es' -> failf "unexpected coalesce of length %d" (List.length es'));
        ());
    test_case "coalesce cancels an add against its remove" `Quick (fun () ->
        let o = Model.obj ~id:7 ~cls:"Class" [ ("name", Model.Vstr "tmp") ] in
        let es =
          [
            Diff.Add_object o;
            Diff.Set_attr (7, "doc", Model.Vstr "ephemeral");
            Diff.Remove_object 7;
            Diff.Set_attr (1, "name", Model.Vstr "z");
          ]
        in
        match Diff.coalesce es with
        | [ Diff.Set_attr (1, "name", Model.Vstr "z") ] -> ()
        | es' -> failf "unexpected coalesce of length %d" (List.length es'));
    test_case "an object-level edit blocks attribute supersession" `Quick
      (fun () ->
        let o = Model.obj ~id:1 ~cls:"Class" [ ("name", Model.Vstr "n") ] in
        let es =
          [
            Diff.Set_attr (1, "name", Model.Vstr "x");
            Diff.Remove_object 1;
            Diff.Add_object o;
            Diff.Set_attr (1, "name", Model.Vstr "y");
          ]
        in
        check int "nothing dropped" (List.length es)
          (List.length (Diff.coalesce es)));
  ]

(* ------------------------------------------------------------------ *)
(* Correspondences: Class <-> Table                                    *)
(* ------------------------------------------------------------------ *)

let spec =
  Mbx.v ~name:"class<->table" ~left_mm:class_mm ~right_mm:table_mm
    [
      {
        Mbx.left_class = "Class";
        right_class = "Table";
        key = [ ("name", "name") ];
        synced = [ ("abstract", "persistent") ];
      };
    ]

let bx = Mbx.to_algbx spec

let gen_pair = QCheck.pair gen_class_model gen_class_model

let gen_consistent : (Model.t * Model.t) QCheck.arbitrary =
  QCheck.map
    ~rev:Fun.id
    (fun (left, seed_right) ->
      (* make a consistent pair whose right side has non-default private
         attributes where possible *)
      let right = Mbx.fwd spec left seed_right in
      (left, right))
    gen_pair

let algbx_law_tests =
  List.concat
    [
      Esm_algbx.Algbx_laws.correct ~count:150 ~name:"mbx class<->table" bx
        ~gen_a:gen_class_model ~gen_b:gen_class_model;
      Esm_algbx.Algbx_laws.hippocratic ~count:150 ~name:"mbx class<->table" bx
        ~gen_consistent ~eq_a:Model.equal ~eq_b:Model.equal;
    ]

(* Lemma 5 applied to the MDE bx: the entangled state monad over
   consistent model pairs. *)
module Mde_bx = Esm_core.Of_algebraic.Make (struct
  type ta = Model.t
  type tb = Model.t

  let bx = bx
  let equal_a = Model.equal
  let equal_b = Model.equal
end)

module Mde_laws = Esm_core.Bx_laws.Set_bx (Mde_bx)

let set_bx_law_tests =
  Mde_laws.well_behaved
    (Mde_laws.config ~count:100 ~name:"of_algebraic(mbx)"
       ~gen_state:gen_consistent ~gen_a:gen_class_model
       ~gen_b:(QCheck.map (fun (_, r) -> r) gen_consistent)
       ~eq_a:Model.equal ~eq_b:Model.equal ())

let scenario_tests =
  [
    test "editing the class model creates/updates/deletes tables" `Quick
      (fun () ->
        let left = m12 in
        let right = Mbx.fwd spec left Model.empty in
        check Alcotest.int "two tables" 2 (Model.size right);
        (* rename Item -> Product on the left; sync *)
        let left' =
          Model.update left
            (Model.set_attr o2 "name" (Model.Vstr "Product"))
        in
        let right' = Mbx.fwd spec left' right in
        let names =
          List.filter_map
            (fun o -> match Model.attr o "name" with
              | Some (Model.Vstr s) -> Some s
              | _ -> None)
            (Model.of_class right' "Table")
        in
        check
          Alcotest.(slist string String.compare)
          "tables follow" [ "Order"; "Product" ] names);
    test "private attributes survive synchronisation" `Quick (fun () ->
        let left = m12 in
        let right0 = Mbx.fwd spec left Model.empty in
        (* DBA sets a custom engine on the Order table *)
        let order_table =
          List.find
            (fun o -> Model.attr o "name" = Some (Model.Vstr "Order"))
            (Model.objects right0)
        in
        let right1 =
          Model.update right0
            (Model.set_attr order_table "engine" (Model.Vstr "innodb"))
        in
        (* developer flips abstract on the left; sync again *)
        let left' =
          Model.update left (Model.set_attr o1 "abstract" (Model.Vbool true))
        in
        let right2 = Mbx.fwd spec left' right1 in
        let order_table' =
          List.find
            (fun o -> Model.attr o "name" = Some (Model.Vstr "Order"))
            (Model.objects right2)
        in
        check Alcotest.bool "engine kept" true
          (Model.attr order_table' "engine" = Some (Model.Vstr "innodb"));
        check Alcotest.bool "persistent followed" true
          (Model.attr order_table' "persistent" = Some (Model.Vbool true)));
    test "bwd repairs the class model from the schema" `Quick (fun () ->
        let left = m12 in
        let right = Mbx.fwd spec left Model.empty in
        (* drop the Item table; bwd must drop the Item class *)
        let item_table =
          List.find
            (fun o -> Model.attr o "name" = Some (Model.Vstr "Item"))
            (Model.objects right)
        in
        let right' = Model.remove right item_table.Model.id in
        let left' = Mbx.bwd spec left right' in
        check Alcotest.int "one class left" 1 (Model.size left');
        (* the surviving class keeps its doc (private attribute) *)
        let survivor = List.hd (Model.objects left') in
        check Alcotest.bool "doc kept" true
          (Model.attr survivor "doc" = Some (Model.Vstr "an order")));
    test "restored models conform to their metamodels" `Quick (fun () ->
        let right = Mbx.fwd spec m12 Model.empty in
        check Alcotest.(list string) "right conforms" []
          (Metamodel.check table_mm right));
    test "fwd reaches a consistent pair" `Quick (fun () ->
        let right = Mbx.fwd spec m12 Model.empty in
        check Alcotest.bool "consistent" true (Mbx.consistent spec m12 right));
  ]

(* ------------------------------------------------------------------ *)
(* fwd_delta vs fwd: incremental propagation oracle                    *)
(* ------------------------------------------------------------------ *)

(* A random one-object edit of a class model, keeping keys (names)
   unique so the spec's precondition holds.  Returns the edited model
   (equal to the original when no edit applies, e.g. removing from an
   empty model). *)
let gen_one_edit (m : Model.t) : Model.t QCheck.Gen.t =
  QCheck.Gen.(
    let objs = Model.objects m in
    let n = List.length objs in
    let unused_names =
      List.filter
        (fun name ->
          not
            (List.exists
               (fun o -> Model.attr o "name" = Some (Model.Vstr name))
               objs))
        (names_pool @ [ "Ledger"; "Receipt"; "Shipment" ])
    in
    let* k = int_bound 4 in
    match k with
    | 0 when unused_names <> [] ->
        (* add a class with a fresh key *)
        let* name = oneofl unused_names in
        let* abstract = bool in
        return
          (Model.add m
             (Model.obj ~id:(Model.next_id m) ~cls:"Class"
                [
                  ("name", Model.Vstr name);
                  ("abstract", Model.Vbool abstract);
                  ("doc", Model.Vstr "new");
                ]))
    | 1 when n > 0 ->
        (* remove a class *)
        let* i = int_bound (n - 1) in
        return (Model.remove m (List.nth objs i).Model.id)
    | 2 when n > 0 ->
        (* flip a synced attribute *)
        let* i = int_bound (n - 1) in
        let o = List.nth objs i in
        let flipped =
          match Model.attr o "abstract" with
          | Some (Model.Vbool b) -> Model.Vbool (not b)
          | _ -> Model.Vbool true
        in
        return (Model.update m (Model.set_attr o "abstract" flipped))
    | 3 when n > 0 ->
        (* edit a private attribute (invisible to the correspondence) *)
        let* i = int_bound (n - 1) in
        let o = List.nth objs i in
        return (Model.update m (Model.set_attr o "doc" (Model.Vstr "edited")))
    | _ when n > 0 && unused_names <> [] ->
        (* change a key: rename to a fresh name *)
        let* i = int_bound (n - 1) in
        let* name = oneofl unused_names in
        let o = List.nth objs i in
        return (Model.update m (Model.set_attr o "name" (Model.Vstr name)))
    | _ -> return m)

(* (old_left, right) consistent, plus an edited left model one object
   edit away from old_left. *)
let gen_delta_case : (Model.t * Model.t * Model.t) QCheck.arbitrary =
  QCheck.make
    ~print:(fun (old_left, left, right) ->
      Printf.sprintf "old_left:\n%s\nleft:\n%s\nright:\n%s"
        (Model.to_string old_left) (Model.to_string left)
        (Model.to_string right))
    QCheck.Gen.(
      let* old_left, right =
        map
          (fun (l, seed) -> (l, Mbx.fwd spec l seed))
          (QCheck.gen gen_pair)
      in
      let* left = gen_one_edit old_left in
      return (old_left, left, right))

let fwd_delta_tests =
  [
    QCheck.Test.make ~count:300 ~name:"fwd_delta agrees with fwd on one-object edits"
      gen_delta_case
      (fun (old_left, left, right) ->
        Model.equal
          (Mbx.fwd_delta spec ~old_left left right)
          (Mbx.fwd spec left right));
    QCheck.Test.make ~count:200 ~name:"fwd_delta restores consistency"
      gen_delta_case
      (fun (old_left, left, right) ->
        Mbx.consistent spec left (Mbx.fwd_delta spec ~old_left left right));
    QCheck.Test.make ~count:200 ~name:"fwd_delta of no edit is the identity"
      gen_consistent
      (fun (left, right) ->
        Mbx.fwd_delta spec ~old_left:left left right == right);
  ]

let _ = model_t

let suite =
  model_tests @ metamodel_tests @ coalesce_unit_tests
  @ Helpers.q
      (diff_tests @ algbx_law_tests @ set_bx_law_tests @ fwd_delta_tests)
  @ scenario_tests
