(** The law-level lint (Esm_analysis.Lint): every rule fires on a
    minimal program and stays silent on the law-repaired version, the
    known optimize_unsafe_commuting miscompilation from test_command.ml
    is rejected statically exactly when it miscompiles dynamically, and
    — property-tested — a lint pass with no errors means the commuting
    optimizer is semantics-preserving on the entangled parity bx. *)

open Esm_core
open Esm_analysis

let check = Alcotest.check
let test = Alcotest.test_case

let level : Law_infer.level Alcotest.testable =
  Alcotest.testable Law_infer.pp (fun l1 l2 -> Law_infer.compare l1 l2 = 0)

let lint_cmd ?(requested = `Commuting) ?(inferred = `Commuting) cmd =
  Lint.lint_command ~requested ~inferred ~eq_a:Int.equal ~eq_b:Int.equal cmd

let lint_ops ?(requested = `Commuting) ?(inferred = `Commuting) ops =
  Lint.lint_program ~requested ~inferred ~eq_a:Int.equal ~eq_b:Int.equal ops

let lint_puts ?(requested = `Commuting) ?(inferred = `Commuting) ops =
  Lint.lint_puts ~requested ~inferred ~eq_a:Int.equal ~eq_b:Int.equal ops

let has rule ds = List.exists (fun d -> d.Lint.rule = rule) ds

let requires_of rule ds =
  List.filter_map
    (fun d -> if d.Lint.rule = rule then Some d.Lint.requires else None)
    ds

let suite =
  [
    (* ---------------------- (GS) dead sets ----------------------- *)
    test "dead-set fires on a re-set of the known value" `Quick (fun () ->
        let ds = lint_cmd Command.(Seq (Set_a 3, Set_a 3)) in
        check Alcotest.bool "fires" true (has (Lint.Dead_set Lint.A) ds);
        check (Alcotest.list level) "requires only set-bx" [ `Set_bx ]
          (requires_of (Lint.Dead_set Lint.A) ds);
        let ds = lint_cmd Command.(Seq (Set_b 2, Set_b 2)) in
        check Alcotest.bool "b side too" true (has (Lint.Dead_set Lint.B) ds));
    test "dead-set is silent once the value changes" `Quick (fun () ->
        let ds = lint_cmd Command.(Seq (Set_a 3, Set_a 4)) in
        check Alcotest.bool "silent" false (has (Lint.Dead_set Lint.A) ds));
    test "dead-set across an opposite-side write requires commutation" `Quick
      (fun () ->
        let ds = lint_cmd Command.(Seq (Set_a 3, Seq (Set_b 4, Set_a 3))) in
        check (Alcotest.list level) "requires commuting" [ `Commuting ]
          (requires_of (Lint.Dead_set Lint.A) ds);
        let ds = lint_cmd Command.(Seq (Set_a 3, Seq (Set_b 4, Set_a 5))) in
        check Alcotest.bool "silent once the value changes" false
          (has (Lint.Dead_set Lint.A) ds));
    (* --------------------- (SG) foldable reads ------------------- *)
    test "foldable-read fires on reads of a known value" `Quick (fun () ->
        let ds =
          lint_cmd Command.(Seq (Set_a 4, Modify_a (fun x -> x + 1)))
        in
        check (Alcotest.list level) "modify folds at set-bx" [ `Set_bx ]
          (requires_of (Lint.Foldable_read Lint.A) ds);
        let ds =
          lint_cmd
            Command.(Seq (Set_a 4, If_a ((fun x -> x > 0), Skip, Skip)))
        in
        check Alcotest.bool "guard folds" true
          (has (Lint.Foldable_read Lint.A) ds);
        let ds = lint_ops Program.[ Set_b 3; Get_b ] in
        check Alcotest.bool "get folds" true
          (has (Lint.Foldable_read Lint.B) ds));
    test "foldable-read is silent on an unknown value" `Quick (fun () ->
        let ds = lint_cmd Command.(Modify_a (fun x -> x + 1)) in
        check Alcotest.bool "modify of unknown" false
          (has (Lint.Foldable_read Lint.A) ds);
        let ds = lint_ops Program.[ Get_a ] in
        check Alcotest.bool "get of unknown" false
          (has (Lint.Foldable_read Lint.A) ds));
    test "foldable-read across an opposite-side write requires commutation"
      `Quick (fun () ->
        let ds =
          lint_cmd
            Command.(Seq (Set_a 4, Seq (Set_b 9, Modify_a (fun x -> x + 1))))
        in
        check (Alcotest.list level) "requires commuting" [ `Commuting ]
          (requires_of (Lint.Foldable_read Lint.A) ds);
        let ds =
          lint_cmd Command.(Seq (Set_a 4, Modify_a (fun x -> x + 1)))
        in
        check (Alcotest.list level) "repaired: no opposite write in between"
          [ `Set_bx ]
          (requires_of (Lint.Foldable_read Lint.A) ds));
    (* ---------------------- (SS) collapses ----------------------- *)
    test "collapsible-set fires on an unread overwritten set" `Quick
      (fun () ->
        let ds = lint_cmd Command.(Seq (Set_a 1, Set_a 2)) in
        check (Alcotest.list level) "requires overwriteability"
          [ `Overwriteable ]
          (requires_of (Lint.Collapsible_set Lint.A) ds);
        (match ds with
        | d :: _ -> check Alcotest.int "flags the first set" 0 d.Lint.at
        | [] -> Alcotest.fail "no diagnostics");
        let ds = lint_ops Program.[ Set_a 1; Set_a 2 ] in
        check Alcotest.bool "op language too" true
          (has (Lint.Collapsible_set Lint.A) ds));
    test "collapsible-set is silent when the first set is read" `Quick
      (fun () ->
        let ds = lint_ops Program.[ Set_a 1; Get_a; Set_a 2 ] in
        check Alcotest.bool "read makes the set live" false
          (has (Lint.Collapsible_set Lint.A) ds));
    test "collapsible-set is silent across an unfolded branch" `Quick
      (fun () ->
        (* the optimizer never collapses across a branch it cannot fold,
           so neither does the lint *)
        let p x = x > 0 in
        let ds =
          lint_cmd Command.(Seq (If_a (p, Set_a 1, Set_a 1), Set_a 2)) in
        check Alcotest.bool "no collapse claimed" false
          (has (Lint.Collapsible_set Lint.A) ds));
    test "reorder-collapse fires across opposite-side writes" `Quick
      (fun () ->
        let ds = lint_ops Program.[ Set_a 1; Set_b 5; Set_a 2 ] in
        check (Alcotest.list level) "requires commutation" [ `Commuting ]
          (requires_of (Lint.Reorder_collapse Lint.A) ds);
        let ds = lint_ops Program.[ Set_a 1; Get_a; Set_b 5; Set_a 2 ] in
        check Alcotest.bool "silent when the first set is read" false
          (has (Lint.Reorder_collapse Lint.A) ds));
    (* ---------------------- severity policy ---------------------- *)
    test "severity: fires+unsound=error, fires+sound=info, else warn/info"
      `Quick (fun () ->
        let sev = Lint.decide_severity in
        check Alcotest.string "miscompile" "error"
          (Lint.severity_name
             (sev ~requested:`Commuting ~inferred:`Overwriteable
                ~requires:`Commuting));
        check Alcotest.string "applied soundly" "info"
          (Lint.severity_name
             (sev ~requested:`Commuting ~inferred:`Commuting
                ~requires:`Commuting));
        check Alcotest.string "left on the table" "warning"
          (Lint.severity_name
             (sev ~requested:`Set_bx ~inferred:`Overwriteable
                ~requires:`Overwriteable));
        check Alcotest.string "not justifiable, not firing" "info"
          (Lint.severity_name
             (sev ~requested:`Overwriteable ~inferred:`Overwriteable
                ~requires:`Commuting)));
    test "level-mismatch is the global precondition" `Quick (fun () ->
        (match
           Lint.check_level ~requested:`Commuting ~inferred:`Set_bx
             ~subject:"s"
         with
        | Some d ->
            check Alcotest.bool "is an error" true (Lint.is_error d);
            check Alcotest.bool "is the mismatch rule" true
              (d.Lint.rule = Lint.Level_mismatch)
        | None -> Alcotest.fail "mismatch not reported");
        check Alcotest.bool "requested <= inferred is fine" true
          (Lint.check_level ~requested:`Overwriteable ~inferred:`Commuting
             ~subject:"s"
          = None));
    (* --------------- the known miscompilation, statically --------- *)
    test "the optimize_commuting miscompilation is rejected statically"
      `Quick (fun () ->
        let ds = Catalog.known_miscompilation () in
        check Alcotest.bool "has errors" true (Lint.has_errors ds);
        check Alcotest.bool "points at a commutation-requiring rewrite" true
          (List.exists
             (fun d ->
               Lint.is_error d
               && Law_infer.compare d.Lint.requires `Commuting = 0
               && d.Lint.rule <> Lint.Level_mismatch)
             ds);
        (* ...and it really is the dynamic counterexample: the commuting
           optimizer changes the meaning of this exact program on
           parity, while the inferred (overwriteable) level preserves
           it. *)
        let cmd = Command.(Seq (Set_a 3, Seq (Set_b 4, Set_a 3))) in
        let bx = Concrete.of_algebraic Fixtures.parity_undoable in
        let s0 = (0, 0) in
        let opt_comm =
          Command.optimize_unsafe_commuting ~eq_a:Int.equal ~eq_b:Int.equal
        in
        let opt_ss =
          Command.optimize_overwriteable ~eq_a:Int.equal ~eq_b:Int.equal
        in
        check Alcotest.bool "commuting level miscompiles dynamically" false
          (Command.exec bx (opt_comm cmd) s0 = Command.exec bx cmd s0);
        check Alcotest.bool "inferred level is dynamically sound" true
          (Command.exec bx (opt_ss cmd) s0 = Command.exec bx cmd s0);
        let at_inferred =
          lint_cmd ~requested:`Overwriteable ~inferred:`Overwriteable cmd
        in
        check Alcotest.bool "no errors at the inferred level" false
          (Lint.has_errors at_inferred));
    test "the same program on the commuting pair bx is accepted" `Quick
      (fun () ->
        let cmd = Command.(Seq (Set_a 3, Seq (Set_b 4, Set_a 3))) in
        let ds = lint_cmd ~requested:`Commuting ~inferred:`Commuting cmd in
        check Alcotest.bool "no errors" false (Lint.has_errors ds);
        check Alcotest.bool "still reports the (sound) rewrites" true
          (has (Lint.Dead_set Lint.A) ds));
    (* ------------------- put-presentation lint -------------------- *)
    test "dead-put fires on re-putting the current view" `Quick (fun () ->
        let ds = lint_puts [ Lint.Put_ab 3; Lint.Put_ab 3 ] in
        check Alcotest.bool "fires" true (has (Lint.Dead_put Lint.A) ds);
        check (Alcotest.list level) "requires only set-bx" [ `Set_bx ]
          (requires_of (Lint.Dead_put Lint.A) ds);
        let ds = lint_puts [ Lint.Put_ba 2; Lint.Put_ba 2 ] in
        check Alcotest.bool "b direction too" true
          (has (Lint.Dead_put Lint.B) ds));
    test "dead-put across an opposite put requires commutation" `Quick
      (fun () ->
        let ds = lint_puts [ Lint.Put_ab 3; Lint.Put_ba 2; Lint.Put_ab 3 ] in
        check (Alcotest.list level) "commuting-level dead put" [ `Commuting ]
          (requires_of (Lint.Dead_put Lint.A) ds));
    test "a get after a put re-reads the returned view ((PG))" `Quick
      (fun () ->
        let ds = lint_puts [ Lint.Put_ab 3; Lint.Pget_b ] in
        check (Alcotest.list level) "foldable at set-bx" [ `Set_bx ]
          (requires_of (Lint.Foldable_read Lint.B) ds);
        let ds = lint_puts [ Lint.Put_ba 2; Lint.Pget_a ] in
        check (Alcotest.list level) "other direction" [ `Set_bx ]
          (requires_of (Lint.Foldable_read Lint.A) ds));
    test "unobserved same-direction puts collapse ((PP))" `Quick (fun () ->
        let ds = lint_puts [ Lint.Put_ab 3; Lint.Put_ab 4 ] in
        check (Alcotest.list level) "overwriteable collapse"
          [ `Overwriteable ]
          (requires_of (Lint.Collapsible_put Lint.A) ds));
    test "an intervening read saves the first put" `Quick (fun () ->
        let ds = lint_puts [ Lint.Put_ab 3; Lint.Pget_b; Lint.Put_ab 4 ] in
        check Alcotest.bool "no collapse" false
          (has (Lint.Collapsible_put Lint.A) ds));
    test "a collapse across opposite puts requires commutation" `Quick
      (fun () ->
        let ds = lint_puts [ Lint.Put_ab 3; Lint.Put_ba 2; Lint.Put_ab 4 ] in
        check Alcotest.bool "reorder-collapse, not (PP)" true
          (has (Lint.Reorder_collapse Lint.A) ds
          && not (has (Lint.Collapsible_put Lint.A) ds));
        check (Alcotest.list level) "commuting required" [ `Commuting ]
          (requires_of (Lint.Reorder_collapse Lint.A) ds));
    test "put-lint severity follows the level lattice" `Quick (fun () ->
        (* (PP) on a set-bx-only pedigree: requested high = error,
           requested low = the rewrite is off, info only *)
        let prog = [ Lint.Put_ab 3; Lint.Put_ab 4 ] in
        check Alcotest.bool "fires unsound: error" true
          (Lint.has_errors
             (lint_puts ~requested:`Overwriteable ~inferred:`Set_bx prog));
        check Alcotest.bool "off at set-bx: no error" false
          (Lint.has_errors
             (lint_puts ~requested:`Set_bx ~inferred:`Set_bx prog)));
    test "puts_have_sets distinguishes readers from writers" `Quick
      (fun () ->
        check Alcotest.bool "gets only" false
          (Lint.puts_have_sets [ Lint.Pget_a; Lint.Pget_b ]);
        check Alcotest.bool "a put writes" true
          (Lint.puts_have_sets [ Lint.Pget_a; Lint.Put_ba 2 ]));
    (* -------------------- undo-law cancellations ------------------ *)
    test "undo-cancel fires when a set restores the pre-value" `Quick
      (fun () ->
        let ds = lint_cmd Command.(Seq (Set_a 1, Seq (Set_a 2, Set_a 1))) in
        check (Alcotest.list level) "requires only the undo law"
          [ `Undoable ]
          (requires_of (Lint.Undo_cancel Lint.A) ds);
        (match
           List.find_opt (fun d -> d.Lint.rule = Lint.Undo_cancel Lint.A) ds
         with
        | Some d -> check Alcotest.int "flags the undone set" 1 d.Lint.at
        | None -> Alcotest.fail "undo-cancel missing");
        let ds = lint_ops Program.[ Set_b 1; Set_b 2; Set_b 1 ] in
        check Alcotest.bool "b side, op language" true
          (has (Lint.Undo_cancel Lint.B) ds));
    test "undo-cancel is silent when the restore misses" `Quick (fun () ->
        let ds = lint_cmd Command.(Seq (Set_a 1, Seq (Set_a 2, Set_a 3))) in
        check Alcotest.bool "different value: plain (SS) only" false
          (has (Lint.Undo_cancel Lint.A) ds);
        check Alcotest.bool "(SS) still reported" true
          (has (Lint.Collapsible_set Lint.A) ds);
        (* no knowledge of the pre-value: nothing to cancel against *)
        let ds = lint_cmd Command.(Seq (Set_a 2, Set_a 1)) in
        check Alcotest.bool "unknown pre-value" false
          (has (Lint.Undo_cancel Lint.A) ds));
    test "undo-cancel is silent when the overwritten set was read" `Quick
      (fun () ->
        let ds = lint_ops Program.[ Set_a 1; Set_a 2; Get_a; Set_a 1 ] in
        check Alcotest.bool "read makes the set live" false
          (has (Lint.Undo_cancel Lint.A) ds));
    test "an undo across an opposite-side write needs commutation" `Quick
      (fun () ->
        let ds = lint_ops Program.[ Set_a 1; Set_a 2; Set_b 5; Set_a 1 ] in
        check Alcotest.bool "reorder-collapse, not undo-cancel" true
          (has (Lint.Reorder_collapse Lint.A) ds
          && not (has (Lint.Undo_cancel Lint.A) ds)));
    test "undo-cancel matches the optimizer's undo peephole dynamically"
      `Quick (fun () ->
        let cmd = Command.(Seq (Set_a 1, Seq (Set_a 2, Set_a 1))) in
        let opt =
          Command.optimize_undoable ~eq_a:Int.equal ~eq_b:Int.equal cmd
        in
        let bx = Concrete.of_algebraic Fixtures.parity_undoable in
        List.iter
          (fun s0 ->
            check Alcotest.bool "undoable bx: peephole is sound" true
              (Command.exec bx opt s0 = Command.exec bx cmd s0))
          [ (0, 0); (1, 1); (4, 2) ];
        (* ...and at the requested `Undoable level against a set-bx-only
           pedigree the same cancellation is an error: the sticky parity
           restorer genuinely violates the undo law *)
        let ds = lint_cmd ~requested:`Undoable ~inferred:`Set_bx cmd in
        check Alcotest.bool "firing above the inferred level is an error"
          true
          (List.exists
             (fun d ->
               Lint.is_error d && d.Lint.rule = Lint.Undo_cancel Lint.A)
             ds);
        let sticky = Concrete.of_algebraic Fixtures.parity_sticky in
        check Alcotest.bool "and it is a real dynamic miscompilation" true
          (List.exists
             (fun s0 ->
               Command.exec sticky
                 (Command.optimize_undoable ~eq_a:Int.equal ~eq_b:Int.equal
                    cmd)
                 s0
               <> Command.exec sticky cmd s0)
             [ (0, 0); (1, 1); (4, 2) ]));
    (* ------------------------- plan lint -------------------------- *)
    test "plan: an implied where folds, a contradicted one is dead" `Quick
      (fun () ->
        let module Rq = Esm_relational.Query in
        let module Rp = Esm_relational.Pred in
        let schema = Esm_relational.Workload.employees_schema in
        let lint_plan = Lint.lint_plan ~schema ~key:[ "id" ] in
        let le c n = Rp.(col c <= int n) in
        (* id <= 4 then id <= 6: the outer filter is implied *)
        let ds =
          lint_plan (Rq.Where (le "id" 6, Rq.Where (le "id" 4, Rq.Base "t")))
        in
        check Alcotest.bool "implied where folds" true
          (has Lint.Foldable_where ds);
        check Alcotest.bool "no dead where" false (has Lint.Dead_where ds);
        (* id <= 2 then id = 5: contradiction *)
        let ds =
          lint_plan
            (Rq.Where
               ( Rp.(col "id" = int 5),
                 Rq.Where (le "id" 2, Rq.Base "t") ))
        in
        check Alcotest.bool "contradicted where is dead" true
          (has Lint.Dead_where ds);
        (* contradictory conjuncts inside one clause *)
        let ds =
          lint_plan
            (Rq.Where
               ( Rp.(col "id" = int 1 && col "id" = int 2),
                 Rq.Base "t" ))
        in
        check Alcotest.bool "intra-clause contradiction" true
          (has Lint.Dead_where ds);
        (* a genuinely undecided filter is silent *)
        let ds = lint_plan (Rq.Where (le "id" 4, Rq.Base "t")) in
        check Alcotest.bool "undecided filter is silent" false
          (has Lint.Dead_where ds || has Lint.Foldable_where ds));
    test "plan: trivial stages fold, schema violations are errors" `Quick
      (fun () ->
        let module Rq = Esm_relational.Query in
        let schema = Esm_relational.Workload.employees_schema in
        let lint_plan = Lint.lint_plan ~schema ~key:[ "id" ] in
        let all_cols = Esm_relational.Schema.column_names schema in
        let ds = lint_plan (Rq.Project (all_cols, Rq.Base "t")) in
        check Alcotest.bool "select of every column folds" true
          (has Lint.Foldable_stage ds);
        let ds = lint_plan (Rq.Rename ([ ("id", "id") ], Rq.Base "t")) in
        check Alcotest.bool "identity rename folds" true
          (has Lint.Foldable_stage ds);
        let ds =
          lint_plan
            (Rq.Where (Esm_relational.Pred.(col "wages" = int 1), Rq.Base "t"))
        in
        check Alcotest.bool "unknown column is an error" true
          (has Lint.Unknown_column ds && Lint.has_errors ds);
        let ds = lint_plan (Rq.Project ([ "name"; "dept" ], Rq.Base "t")) in
        check Alcotest.bool "dropping the key is an error" true
          (has Lint.Dropped_key ds && Lint.has_errors ds);
        (* a key-keeping projection of a strict subset is clean *)
        let ds = lint_plan (Rq.Project ([ "id"; "name" ], Rq.Base "t")) in
        check Alcotest.bool "key-keeping projection is clean" true (ds = []));
    test "plan: renames carry facts and keys; joins are flagged" `Quick
      (fun () ->
        let module Rq = Esm_relational.Query in
        let module Rp = Esm_relational.Pred in
        let schema = Esm_relational.Workload.employees_schema in
        let lint_plan = Lint.lint_plan ~schema ~key:[ "id" ] in
        (* the fact about id survives the rename to eid *)
        let ds =
          lint_plan
            (Rq.Where
               ( Rp.(col "eid" <= int 6),
                 Rq.Rename
                   ( [ ("id", "eid") ],
                     Rq.Where (Rp.(col "id" <= int 4), Rq.Base "t") ) ))
        in
        check Alcotest.bool "fact follows the rename" true
          (has Lint.Foldable_where ds);
        (* dropping the renamed key is still caught *)
        let ds =
          lint_plan
            (Rq.Project
               ([ "name" ], Rq.Rename ([ ("id", "eid") ], Rq.Base "t")))
        in
        check Alcotest.bool "renamed key still tracked" true
          (has Lint.Dropped_key ds);
        let ds = lint_plan (Rq.Join (Rq.Base "l", Rq.Base "r")) in
        check (Alcotest.list level) "join flagged at the undo level"
          [ `Undoable ]
          (requires_of Lint.Unproven_join ds);
        check Alcotest.bool "but only as info" false (Lint.has_errors ds));
    test "plan: every compiled catalog plan lints without errors" `Quick
      (fun () ->
        List.iter
          (fun a ->
            check Alcotest.bool
              (a.Catalog.label ^ ": plan diagnostics are error-free")
              false
              (Lint.has_errors a.Catalog.plan_diagnostics))
          (Catalog.audit_all ()));
  ]
  @ Helpers.q
      [
        (* The teeth of the analysis: if the lint reports NO errors for a
           command at the `Commuting level against an `Overwriteable
           pedigree, then running the commuting optimizer on that
           command is in fact semantics-preserving on the entangled
           parity bx.  (The converse need not hold — the lint is
           conservative.) *)
        QCheck.Test.make ~count:800
          ~name:"lint-clean at `Commuting implies opt_commuting is safe"
          (QCheck.pair Test_command.gen_cmd Fixtures.gen_parity_consistent)
          (fun (c, s) ->
            let ds =
              lint_cmd ~requested:`Commuting ~inferred:`Overwriteable c
            in
            Lint.has_errors ds
            ||
            let bx = Concrete.of_algebraic Fixtures.parity_undoable in
            Command.exec bx
              (Command.optimize_unsafe_commuting ~eq_a:Int.equal
                 ~eq_b:Int.equal c)
              s
            = Command.exec bx c s);
        (* The same teeth at the new intermediate lattice point: if the
           lint reports NO errors for a command at `Undoable against a
           set-bx-only pedigree, then the undo-cancelling optimizer is
           semantics-preserving even on the sticky parity bx — whose
           restorer genuinely violates the undo law. *)
        QCheck.Test.make ~count:800
          ~name:"lint-clean at `Undoable implies optimize_undoable is safe"
          (QCheck.pair Test_command.gen_cmd Fixtures.gen_parity_consistent)
          (fun (c, s) ->
            let ds = lint_cmd ~requested:`Undoable ~inferred:`Set_bx c in
            Lint.has_errors ds
            ||
            let bx = Concrete.of_algebraic Fixtures.parity_sticky in
            Command.exec bx
              (Command.optimize_at `Undoable ~eq_a:Int.equal ~eq_b:Int.equal
                 c)
              s
            = Command.exec bx c s);
        (* Running the optimizer at (or below) the inferred level never
           produces an error diagnostic. *)
        QCheck.Test.make ~count:400
          ~name:"requested <= inferred yields no errors"
          Test_command.gen_cmd
          (fun c ->
            (not
               (Lint.has_errors
                  (lint_cmd ~requested:`Overwriteable
                     ~inferred:`Overwriteable c)))
            && not
                 (Lint.has_errors
                    (lint_cmd ~requested:`Set_bx ~inferred:`Set_bx c)));
      ]
