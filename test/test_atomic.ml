(** Chaos suite: the robustness layer end to end.

    - {!Esm_core.Error}: classification of every legacy bx exception
      into the typed taxonomy;
    - {!Esm_core.Atomic}: all-or-nothing sets — any failure (genuine
      shape error or injected fault) rolls the state back to the
      pre-call snapshot, and leaves the memoized table indexes valid;
    - {!Esm_core.Chaos}: deterministic seed-keyed fault injection;
    - delta-path graceful degradation: under injected faults (and after
      outright index corruption) [Rlens.put_delta] and [Mbx.fwd_delta]
      still agree with the full put/fwd oracle by falling back.

    The chaos seed is taken from the [CHAOS_SEED] environment variable
    when set (the CI chaos job runs the suite under several fixed
    seeds); each property case derives its own instance seed from it so
    one run explores many fault schedules. *)

open Esm_core
module Rel = Esm_relational
module Lens = Esm_lens.Lens
module Mbx = Esm_modelbx.Mbx
module Model = Esm_modelbx.Model

let check = Alcotest.check
let test = Alcotest.test_case

let chaos_seed =
  match Sys.getenv_opt "CHAOS_SEED" with
  | Some s -> ( try int_of_string s with _ -> 42)
  | None -> 42

(* A fresh per-case chaos instance: same base seed, distinct fault
   schedule per case. *)
let next_case = ref 0

let case_chaos ~rate () =
  incr next_case;
  Chaos.make ~rate ~seed:(chaos_seed + (1000 * !next_case)) ()

(* ------------------------------------------------------------------ *)
(* Error taxonomy                                                      *)
(* ------------------------------------------------------------------ *)

let kind_of_exn e =
  match Error.of_exn e with Some err -> Some err.Error.kind | None -> None

let error_tests =
  [
    test "legacy exceptions classify into the taxonomy" `Quick (fun () ->
        let cases =
          [
            (Rel.Table.Table_error "of_rows: bad row", Error.Table);
            (Rel.Schema.Schema_error "no column x", Error.Schema);
            (Model.Model_error "duplicate object id 3", Error.Model);
            ( Esm_modelbx.Metamodel.Metamodel_error "unknown class C",
              Error.Metamodel );
            (Lens.Shape_error "select lens: bad view", Error.Shape);
            (Rel.Query.Parse_error "expected ')'", Error.Parse);
          ]
        in
        List.iter
          (fun (exn, kind) ->
            check Alcotest.bool
              (Printexc.to_string exn)
              true
              (kind_of_exn exn = Some kind))
          cases);
    test "non-bx exceptions are not classified" `Quick (fun () ->
        check Alcotest.bool "Failure" true (kind_of_exn (Failure "x") = None);
        check Alcotest.bool "Invalid_argument" true
          (kind_of_exn (Invalid_argument "x") = None));
    test "raising through the rerouted errorf stays catchable" `Quick
      (fun () ->
        (* compatibility: the legacy constructors still match *)
        match Rel.Table.of_rows Rel.Workload.employees_schema
                [ Rel.Row.of_list [ Rel.Value.Int 1 ] ]
        with
        | _ -> Alcotest.fail "expected Table_error"
        | exception Rel.Table.Table_error _ -> ());
    test "of_message recovers the operation name" `Quick (fun () ->
        let e = Error.of_message Error.Table "of_rows: row [1] bad" in
        check Alcotest.string "op" "of_rows" e.Error.op;
        check Alcotest.string "detail" "row [1] bad" e.Error.detail;
        (* prefixes containing spaces are not operation names *)
        let e2 = Error.of_message Error.Shape "select lens: view bad" in
        check Alcotest.string "no op" "" e2.Error.op);
    test "degradable = fault or index" `Quick (fun () ->
        let mk kind = Error.v kind ~op:"t" "d" in
        check Alcotest.bool "fault" true (Error.is_degradable (mk Error.Fault));
        check Alcotest.bool "index" true (Error.is_degradable (mk Error.Index));
        check Alcotest.bool "shape" false
          (Error.is_degradable (mk Error.Shape));
        check Alcotest.bool "table" false
          (Error.is_degradable (mk Error.Table)));
  ]

(* ------------------------------------------------------------------ *)
(* Chaos determinism                                                   *)
(* ------------------------------------------------------------------ *)

let count_injected ~seed ~rate n =
  let c = Chaos.make ~rate ~seed () in
  Chaos.with_chaos c (fun () ->
      for _ = 1 to n do
        try Chaos.point "site" with Error.Bx_error _ -> ()
      done);
  Chaos.injected c

let chaos_tests =
  [
    test "same seed, same fault schedule" `Quick (fun () ->
        let a = count_injected ~seed:chaos_seed ~rate:0.05 500 in
        let b = count_injected ~seed:chaos_seed ~rate:0.05 500 in
        check Alcotest.int "replay" a b;
        check Alcotest.bool "some faults at 5% over 500 visits" true (a > 0));
    test "rate 1.0 always fires, rate 0.0 never" `Quick (fun () ->
        check Alcotest.int "all" 500
          (count_injected ~seed:chaos_seed ~rate:1.0 500);
        check Alcotest.int "none" 0
          (count_injected ~seed:chaos_seed ~rate:0.0 500));
    test "no instance installed: points are no-ops" `Quick (fun () ->
        Chaos.point "site" (* must not raise *));
    test "protected suppresses injection and restores it" `Quick (fun () ->
        let c = Chaos.make ~rate:1.0 ~seed:chaos_seed () in
        Chaos.with_chaos c (fun () ->
            Chaos.protected (fun () -> Chaos.point "site");
            check Alcotest.int "suppressed" 0 (Chaos.injected c);
            match Chaos.point "site" with
            | () -> Alcotest.fail "expected an injected fault"
            | exception Error.Bx_error e ->
                check Alcotest.bool "fault kind" true (Error.is_fault e)));
    test "injected faults carry the site as op" `Quick (fun () ->
        let c = Chaos.make ~rate:1.0 ~seed:chaos_seed () in
        Chaos.with_chaos c (fun () ->
            match Chaos.point "table.key_index" with
            | () -> Alcotest.fail "expected an injected fault"
            | exception Error.Bx_error e ->
                check Alcotest.string "op" "table.key_index" e.Error.op));
  ]

(* ------------------------------------------------------------------ *)
(* Atomic: unit behaviour                                              *)
(* ------------------------------------------------------------------ *)

let account_lens : (int * string, string) Lens.t =
  Lens.v ~name:"snd"
    ~get:(fun (_, s) -> s)
    ~put:(fun (n, _) s ->
      if String.length s > 8 then Lens.shape_errorf "name too long: %s" s;
      (n, s))
    ()

let atomic_tests =
  [
    test "run: success threads the new state" `Quick (fun () ->
        let m s = (s + 1, s * 2) in
        match Atomic.run m 10 with
        | Ok 11, 20 -> ()
        | _ -> Alcotest.fail "expected (Ok 11, 20)");
    test "run: a bx failure rolls back to the snapshot" `Quick (fun () ->
        let m _ = Lens.shape_errorf "boom: mid-update" in
        match Atomic.run m 10 with
        | Error e, 10 ->
            check Alcotest.bool "shape" true (e.Error.kind = Error.Shape)
        | _ -> Alcotest.fail "expected rollback to 10");
    test "run: non-bx exceptions propagate" `Quick (fun () ->
        match Atomic.run (fun _ -> failwith "programming error") 0 with
        | _ -> Alcotest.fail "expected Failure to escape"
        | exception Failure _ -> ());
    test "set_b: in-domain commits, out-of-domain reports" `Quick (fun () ->
        let bx = Concrete.of_lens account_lens in
        (match Atomic.set_b bx "ada" (1, "x") with
        | Ok (1, "ada") -> ()
        | _ -> Alcotest.fail "expected commit");
        match Atomic.set_b bx "far-too-long-name" (1, "x") with
        | Error e -> check Alcotest.bool "shape" true (e.Error.kind = Error.Shape)
        | Ok _ -> Alcotest.fail "expected a shape error");
    test "harden: failing sets become no-ops" `Quick (fun () ->
        let bx = Atomic.harden (Concrete.of_lens account_lens) in
        check Alcotest.bool "name wrapped" true
          (bx.Concrete.name = "atomic(of_lens snd)");
        let s = (1, "x") in
        check Alcotest.bool "commit" true
          (bx.Concrete.set_b "ada" s = (1, "ada"));
        check Alcotest.bool "rollback" true
          (bx.Concrete.set_b "far-too-long-name" s = s));
    test "harden_packed records the Atomic pedigree" `Quick (fun () ->
        let p =
          Atomic.harden_packed
            (Concrete.packed_of_lens ~vwb:true ~init:(1, "x")
               ~eq_state:(fun (a, b) (c, d) -> a = c && String.equal b d)
               account_lens)
        in
        match Concrete.pedigree p with
        | Pedigree.Atomic (Pedigree.Of_lens { vwb = true; _ }) -> ()
        | ped ->
            Alcotest.failf "unexpected pedigree %s" (Pedigree.to_string ped));
    test "exec_command rolls back the whole command" `Quick (fun () ->
        let bx = Concrete.of_lens account_lens in
        let cmd =
          Command.(Seq (Set_b "ok", Set_b "far-too-long-name"))
        in
        match Atomic.exec_command bx cmd (1, "x") with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected the command to fail");
  ]

(* ------------------------------------------------------------------ *)
(* Relational chaos properties                                         *)
(* ------------------------------------------------------------------ *)

let schema = Rel.Workload.employees_schema
let key = [ "id" ]

let eng_view_lens : (Rel.Table.t, Rel.Table.t) Lens.t =
  Rel.Query.lens_of_string ~schema ~key
    {|employees | where dept = "Engineering" | select id, name, dept|}

let eng_select_lens : (Rel.Table.t, Rel.Table.t) Lens.t =
  Rel.Query.lens_of_string ~schema ~key
    {|employees | where dept = "Engineering"|}

let gen_source : Rel.Table.t QCheck.arbitrary =
  QCheck.make ~print:Rel.Table.to_string
    QCheck.Gen.(
      let* seed = int_bound 10_000 in
      let* size = int_bound 25 in
      return (Rel.Workload.employees ~seed ~size))

let gen_source_and_view : (Rel.Table.t * Rel.Table.t) QCheck.arbitrary =
  QCheck.make
    ~print:(fun (s, v) ->
      Rel.Table.to_string s ^ "\nview:\n" ^ Rel.Table.to_string v)
    QCheck.Gen.(
      let* sseed = int_bound 10_000 in
      let* ssize = int_bound 25 in
      let* vseed = int_bound 10_000 in
      let* vsize = int_bound 20 in
      return
        ( Rel.Workload.employees ~seed:sseed ~size:ssize,
          Rel.Workload.engineering_view ~seed:vseed ~size:vsize ))

(* (a) through [atomic], an injected fault leaves the state equal to the
   snapshot, memoized indexes valid, and the update replayable; without
   a fault the transactional run equals the fault-free oracle. *)
let atomic_rollback_prop (source, view) =
  let bx = Concrete.of_lens eng_view_lens in
  let oracle = Lens.put eng_view_lens source view in
  let c = case_chaos ~rate:0.05 () in
  let result = Chaos.with_chaos c (fun () -> Atomic.set_b bx view source) in
  match result with
  | Ok s' -> Rel.Table.equal s' oracle
  | Error e ->
      Error.is_fault e
      && Rel.Table.validate_indexes source
      && Rel.Table.equal (Lens.put eng_view_lens source view) oracle

(* Satellite wording: every Shape_error raised under chaos leaves the
   state equal to the pre-call snapshot through [atomic].  The view
   deliberately violates the selection predicate, so the fault-free
   outcome is itself a shape error. *)
let atomic_shape_error_prop (source, bad_view) =
  let bx = Concrete.of_lens eng_select_lens in
  let c = case_chaos ~rate:0.05 () in
  let result =
    Chaos.with_chaos c (fun () -> Atomic.set_b bx bad_view source)
  in
  match result with
  | Ok s' ->
      (* all bad rows happened to be filtered out is impossible here:
         put either raises or commits the union — accept only when the
         view really was in-domain *)
      Rel.Table.equal s'
        (Lens.put eng_select_lens source bad_view)
  | Error e ->
      (e.Error.kind = Error.Shape || Error.is_fault e)
      && Rel.Table.validate_indexes source

(* (b) delta-path fallback: under injected faults, [put_delta] equals
   the full put oracle (computed fault-free). *)
let fresh_source_row i =
  Rel.Row.of_list
    [
      Rel.Value.Int (10_000 + i);
      Rel.Value.Str ("fresh" ^ string_of_int i);
      Rel.Value.Str "Engineering";
      Rel.Value.Int 42_000;
      Rel.Value.Str "fresh@x";
    ]

let fresh_view_row i =
  Rel.Row.of_list
    [
      Rel.Value.Int (10_000 + i);
      Rel.Value.Str ("fresh" ^ string_of_int i);
      Rel.Value.Str "Engineering";
    ]

let gen_deltas ~(make_add : int -> Rel.Row.t) (view : Rel.Table.t) :
    Rel.Row_delta.t list QCheck.Gen.t =
  QCheck.Gen.(
    let rows = Rel.Table.rows view in
    let n = List.length rows in
    let* ops = list_size (int_bound 6) (int_bound 2) in
    return
      (List.mapi
         (fun i -> function
           | 0 -> Rel.Row_delta.Add (make_add i)
           | 1 ->
               if n = 0 then Rel.Row_delta.Add (make_add (900 + i))
               else Rel.Row_delta.Remove (List.nth rows (i mod n))
           | _ -> Rel.Row_delta.Remove (make_add (500 + i)))
         ops))

let gen_delta_case ~make_add (dl : Rel.Rlens.dlens) :
    (Rel.Table.t * Rel.Row_delta.t list) QCheck.arbitrary =
  QCheck.make
    ~print:(fun (t, ds) ->
      Rel.Table.to_string t
      ^ "\ndeltas: "
      ^ String.concat "; " (List.map Rel.Row_delta.to_string ds))
    QCheck.Gen.(
      let* source = QCheck.gen gen_source in
      let* deltas = gen_deltas ~make_add (Lens.get dl.Rel.Rlens.lens source) in
      return (source, deltas))

let delta_fallback_prop (dl : Rel.Rlens.dlens) (source, deltas) =
  let oracle =
    let view = Lens.get dl.Rel.Rlens.lens source in
    Lens.put dl.Rel.Rlens.lens source (Rel.Row_delta.apply_all view deltas)
  in
  let c = case_chaos ~rate:0.25 () in
  let incremental =
    Chaos.with_chaos c (fun () -> Rel.Rlens.put_delta dl source deltas)
  in
  Rel.Table.equal incremental oracle

let dl_where : Rel.Rlens.dlens =
  Rel.Query.dlens_of_string ~schema ~key
    {|employees | where dept = "Engineering"|}

let dl_pipeline : Rel.Rlens.dlens =
  Rel.Query.dlens_of_string ~schema ~key
    {|employees | where dept = "Engineering" | select id, name, dept|}

let relational_chaos_tests =
  [
    QCheck.Test.make ~count:300
      ~name:"atomic set_b under chaos: commit equals oracle, faults roll back"
      gen_source_and_view atomic_rollback_prop;
    QCheck.Test.make ~count:150
      ~name:"shape errors under chaos roll back and keep indexes valid"
      (QCheck.pair gen_source gen_source)
      atomic_shape_error_prop;
    QCheck.Test.make ~count:150
      ~name:"put_delta under chaos equals the full put oracle (where)"
      (gen_delta_case ~make_add:fresh_source_row dl_where)
      (delta_fallback_prop dl_where);
    QCheck.Test.make ~count:150
      ~name:"put_delta under chaos equals the full put oracle (where|select)"
      (gen_delta_case ~make_add:fresh_view_row dl_pipeline)
      (delta_fallback_prop dl_pipeline);
  ]

(* Outright index corruption (no chaos): the checked index detects it,
   put_delta falls back to the oracle, and the corrupt memo is dropped.
   A project-only pipeline is used so the project stage's translate
   consults the base table's memo directly (under [dcompose], inner
   stages see freshly computed intermediate tables). *)
let dl_project : Rel.Rlens.dlens =
  Rel.Query.dlens_of_string ~schema ~key {|employees | select id, name, dept|}

let index_corruption_tests =
  [
    test "corrupted memoized index degrades to the full put" `Quick
      (fun () ->
        let source = Rel.Workload.employees ~seed:5 ~size:12 in
        let deltas = [ Rel.Row_delta.Add (fresh_view_row 1) ] in
        let oracle =
          let view = Lens.get dl_project.Rel.Rlens.lens source in
          Lens.put dl_project.Rel.Rlens.lens source
            (Rel.Row_delta.apply_all view deltas)
        in
        (* warm the memo, then corrupt it behind the table's back *)
        let id_pos = Rel.Schema.index schema "id" in
        let idx = Rel.Table.key_index source [ id_pos ] in
        Hashtbl.reset idx;
        check Alcotest.bool "corruption detectable" false
          (Rel.Table.validate_indexes source);
        let before = Chaos.fallbacks_total () in
        let result = Rel.Rlens.put_delta dl_project source deltas in
        check Helpers.table "fallback equals oracle" oracle result;
        check Alcotest.bool "fallback recorded" true
          (Chaos.fallbacks_total () > before);
        (* revalidation dropped the corrupt memo: it is rebuilt healthy *)
        check Alcotest.bool "memo healthy again" true
          (Rel.Table.validate_indexes source));
    test "revalidate_indexes reports and repairs" `Quick (fun () ->
        let t = Rel.Workload.employees ~seed:9 ~size:10 in
        let id_pos = Rel.Schema.index schema "id" in
        check Alcotest.bool "fresh memo is healthy" true
          (ignore (Rel.Table.key_index t [ id_pos ]);
           Rel.Table.revalidate_indexes t);
        Hashtbl.reset (Rel.Table.key_index t [ id_pos ]);
        check Alcotest.bool "corrupt memo reported" false
          (Rel.Table.revalidate_indexes t);
        check Alcotest.bool "rebuilt on next use" true
          (ignore (Rel.Table.key_index t [ id_pos ]);
           Rel.Table.validate_indexes t));
  ]

(* ------------------------------------------------------------------ *)
(* MDE chaos properties                                                *)
(* ------------------------------------------------------------------ *)

(* Reuse the class<->table spec and generators of the modelbx suite
   (same test executable). *)
let spec = Test_modelbx.spec

let mde_atomic_prop (left, other) =
  (* start from a consistent pair, then transactionally replace the
     whole left model with an unrelated one *)
  let right0 = Mbx.fwd spec left other in
  let bx = Concrete.of_algebraic (Mbx.to_algbx spec) in
  let s0 = (left, right0) in
  let a2, b2 = bx.Concrete.set_a other s0 in
  let c = case_chaos ~rate:0.05 () in
  match Chaos.with_chaos c (fun () -> Atomic.set_a bx other s0) with
  | Ok (a1, b1) -> Model.equal a1 a2 && Model.equal b1 b2
  | Error e -> Error.is_fault e

let mde_delta_fallback_prop (old_left, left, right) =
  let oracle = Mbx.fwd spec left right in
  let c = case_chaos ~rate:0.25 () in
  let incremental =
    Chaos.with_chaos c (fun () -> Mbx.fwd_delta spec ~old_left left right)
  in
  Model.equal incremental oracle

let mde_chaos_tests =
  [
    QCheck.Test.make ~count:150
      ~name:"MDE atomic set_a under chaos: commit equals oracle, faults roll \
             back"
      Test_modelbx.gen_pair mde_atomic_prop;
    QCheck.Test.make ~count:150
      ~name:"fwd_delta under chaos equals the full fwd oracle"
      Test_modelbx.gen_delta_case mde_delta_fallback_prop;
  ]

(* ------------------------------------------------------------------ *)

let suite =
  error_tests @ chaos_tests @ atomic_tests
  @ Helpers.q (relational_chaos_tests @ mde_chaos_tests)
  @ index_corruption_tests
