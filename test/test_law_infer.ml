(** Static law-level inference (Esm_analysis.Law_infer) against the
    sampling certifier: on every packed instance built from the shared
    fixtures, the statically inferred level must never exceed what
    Certify sampling supports — and where the fixture's laws are known
    exactly, the two verdicts must coincide. *)

open Esm_core
open Esm_analysis

let check = Alcotest.check
let test = Alcotest.test_case

let level : Law_infer.level Alcotest.testable =
  Alcotest.testable Law_infer.pp (fun l1 l2 -> Law_infer.compare l1 l2 = 0)

(* ------------------------------------------------------------------ *)
(* The fixture instances, packed with their honest pedigrees            *)
(* ------------------------------------------------------------------ *)

type inst =
  | Inst : {
      label : string;
      packed : ('a, 'b) Concrete.packed;
      expected : Law_infer.level;
          (** What the pedigree lemmas must infer. *)
      exact : bool;
          (** Whether sampling is expected to observe exactly [expected]
              (true for fixtures whose law status is fully known; false
              where the pedigree is legitimately conservative, e.g. a
              symmetric lens that happens to sample overwriteable). *)
      values_a : 'a list;
      values_b : 'b list;
      eq_a : 'a -> 'a -> bool;
      eq_b : 'b -> 'b -> bool;
      show_a : 'a -> string;
      show_b : 'b -> string;
    }
      -> inst

let ints = [ -3; 0; 1; 2; 7 ]

let persons =
  Fixtures.
    [
      { name = "ada"; age = 36; email = "ada@lovelace.example" };
      { name = "emmy"; age = 53; email = "emmy@noether.example" };
      { name = "kurt"; age = 71; email = "kurt@goedel.example" };
    ]

let show_person (p : Fixtures.person) =
  Printf.sprintf "{name=%s; age=%d}" p.Fixtures.name p.Fixtures.age

let int_inst ?(exact = true) ?(values_b = ints) label expected packed =
  Inst
    {
      label;
      packed;
      expected;
      exact;
      values_a = ints;
      values_b;
      eq_a = Int.equal;
      eq_b = Int.equal;
      show_a = string_of_int;
      show_b = string_of_int;
    }

let instances : inst list =
  [
    int_inst "pair (S3.4)" `Commuting (Fixtures.packed_pair ());
    int_inst "parity-undoable (Lemma 5)" `Overwriteable
      (Fixtures.packed_parity_undoable ());
    int_inst "parity-sticky (Lemma 5, not undoable)" `Set_bx
      (Fixtures.packed_parity_sticky ());
    (* the doubling iso is only lawful on even views *)
    int_inst "double iso (Lemma 6)" ~exact:false
      ~values_b:[ -6; 0; 2; 4; 14 ] `Set_bx
      (Fixtures.packed_double_iso ());
    int_inst "journalled parity (journal breaks (SS))" `Set_bx
      (Fixtures.packed_journalled_parity ());
    int_inst "identity (overwriteable, one shared cell)" `Overwriteable
      (Fixtures.packed_identity ());
    (* the meet is conservative here: parity's entanglement is with the
       hidden middle view, so the composite happens to sample commuting *)
    int_inst "parity >>> pair (composition meet)" ~exact:false `Overwriteable
      (Fixtures.packed_parity_then_pair ());
    (* ...whereas chaining two parities surfaces the entanglement
       end-to-end, and the meet is observed exactly *)
    int_inst "parity >>> parity (composition meet, tight)" `Overwriteable
      (Fixtures.packed_parity_twice ());
    Inst
      {
        label = "person.name vwb lens (Lemma 4)";
        packed = Fixtures.packed_name_lens ();
        expected = `Overwriteable;
        exact = true;
        values_a = persons;
        values_b = [ "grace"; "alan"; "ada" ];
        eq_a = Fixtures.equal_person;
        eq_b = String.equal;
        show_a = show_person;
        show_b = Fun.id;
      };
    Inst
      {
        label = "counted lens (wb, not vwb)";
        packed = Fixtures.packed_counted_lens ();
        expected = `Set_bx;
        exact = true;
        values_a =
          Fixtures.
            [
              { value = 0; writes = 0 };
              { value = 3; writes = 1 };
              { value = -2; writes = 4 };
            ];
        values_b = ints;
        eq_a = Fixtures.equal_counted;
        eq_b = Int.equal;
        show_a =
          (fun c ->
            Printf.sprintf "{value=%d; writes=%d}" c.Fixtures.value
              c.Fixtures.writes);
        show_b = string_of_int;
      };
  ]

let certify_inst (Inst i) =
  Certify.certify ~values_a:i.values_a ~values_b:i.values_b ~eq_a:i.eq_a
    ~eq_b:i.eq_b ~show_a:i.show_a ~show_b:i.show_b i.packed

let suite =
  [
    test "inferred level matches the lemma table on every fixture" `Quick
      (fun () ->
        List.iter
          (fun (Inst i as inst) ->
            ignore (certify_inst inst);
            check level i.label i.expected (Law_infer.of_packed i.packed))
          instances);
    test "static level never exceeds the sampled level (cross-check)" `Quick
      (fun () ->
        List.iter
          (fun (Inst i as inst) ->
            let report = certify_inst inst in
            let static = Law_infer.of_packed i.packed in
            let observed = Certify.observed_level report in
            check Alcotest.bool
              (i.label ^ ": static <= sampled")
              true
              (Law_infer.consistent_with_observation ~static ~observed);
            if i.exact then
              check
                (Alcotest.option level)
                (i.label ^ ": sampling observes exactly the inferred level")
                (Some i.expected) observed)
          instances);
    test "an over-claimed pedigree is refuted by sampling" `Quick (fun () ->
        let packed = Fixtures.packed_overclaimed_broken () in
        let report =
          Certify.certify ~values_a:persons ~values_b:ints
            ~eq_a:Fixtures.equal_person ~eq_b:Int.equal ~show_a:show_person
            ~show_b:string_of_int packed
        in
        check
          (Alcotest.option level)
          "broken lens fails a required law" None
          (Certify.observed_level report);
        check Alcotest.bool "cross-check refutes the vwb claim" false
          (Law_infer.consistent_with_observation
             ~static:(Law_infer.of_packed packed)
             ~observed:(Certify.observed_level report)));
    test "lattice: meet is the minimum of the total order" `Quick (fun () ->
        let all = [ `Set_bx; `Undoable; `Overwriteable; `Commuting ] in
        List.iter
          (fun l1 ->
            List.iter
              (fun l2 ->
                let m = Law_infer.meet l1 l2 in
                check Alcotest.bool "meet <= l1" true (Law_infer.leq m l1);
                check Alcotest.bool "meet <= l2" true (Law_infer.leq m l2);
                check Alcotest.bool "meet is one of the args" true
                  (Law_infer.compare m l1 = 0 || Law_infer.compare m l2 = 0))
              all)
          all;
        check level "commuting is top" `Commuting
          (Law_infer.meet `Commuting `Commuting);
        check level "set-bx is bottom" `Set_bx
          (Law_infer.meet `Set_bx `Commuting);
        check level "undoable sits below overwriteable" `Undoable
          (Law_infer.meet `Undoable `Overwriteable);
        check Alcotest.bool "set-bx ⊑ undoable ⊑ overwriteable ⊑ commuting"
          true
          (Law_infer.leq `Set_bx `Undoable
          && Law_infer.leq `Undoable `Overwriteable
          && Law_infer.leq `Overwriteable `Commuting
          && not (Law_infer.leq `Overwriteable `Undoable)));
    test "wrappers and unknowns floor the level" `Quick (fun () ->
        let parity =
          Pedigree.Of_algebraic { name = "parity"; undoable = true }
        in
        check level "flip preserves" (Law_infer.level parity)
          (Law_infer.level (Pedigree.Flip parity));
        check level "journalling floors to set-bx" `Set_bx
          (Law_infer.level (Pedigree.Journalled Pedigree.Pair));
        check level "effectful floors to set-bx" `Set_bx
          (Law_infer.level (Pedigree.Effectful { name = "logged" }));
        check level "opaque floors to set-bx" `Set_bx
          (Law_infer.level (Pedigree.opaque "unknown"));
        check level "composition takes the meet" `Set_bx
          (Law_infer.level
             (Pedigree.Compose (Pedigree.Pair, Pedigree.opaque "unknown"))));
    test "optimizer levels round-trip through law levels" `Quick (fun () ->
        List.iter
          (fun l ->
            check level "of o to = id" l
              (Law_infer.of_command_level (Law_infer.to_command_level l)))
          [ `Set_bx; `Undoable; `Overwriteable; `Commuting ]);
    test "relational lemma table" `Quick (fun () ->
        let open Pedigree in
        check level "key-preserving select is overwriteable" `Overwriteable
          (Law_infer.level
             (Select { pred = "id <= 4"; key_preserving = true }));
        check level "general select keeps only the undo law" `Undoable
          (Law_infer.level
             (Select { pred = "dept = e"; key_preserving = false }));
        check level "lossless project is overwriteable" `Overwriteable
          (Law_infer.level
             (Project
                { keep = [ "id"; "name" ]; key = [ "id" ]; lossless = true }));
        check level "lossy project is set-bx" `Set_bx
          (Law_infer.level
             (Project { keep = [ "id" ]; key = [ "id" ]; lossless = false }));
        check level "rename is overwriteable" `Overwriteable
          (Law_infer.level (Rename [ ("email", "contact") ]));
        check level "fd-proven join is undoable" `Undoable
          (Law_infer.level (Join { on = [ "id" ]; fd_proven = true }));
        check level "unproven join is set-bx" `Set_bx
          (Law_infer.level (Join { on = [ "id" ]; fd_proven = false }));
        check level "dcompose takes the meet" `Undoable
          (Law_infer.level
             (Dcompose
                ( Select { pred = "p"; key_preserving = false },
                  Rename [ ("a", "b") ] )));
        check level "delta_of passes the base level through" `Undoable
          (Law_infer.level (Delta_of (Join { on = [ "id" ]; fd_proven = true })));
        check level "plan passes the body level through" `Overwriteable
          (Law_infer.level (Plan { query = "q"; body = Rename [ ("a", "b") ] })));
    test "fallibility and rollback protection follow the pedigree" `Quick
      (fun () ->
        let open Pedigree in
        let owner = Of_lens { name = "owner"; vwb = true } in
        let parity = Of_algebraic { name = "parity"; undoable = true } in
        check Alcotest.bool "replicated commits are transactional" false
          (Law_infer.fallible (Replicated parity));
        check Alcotest.bool "replicated is rollback-protected" true
          (Law_infer.rollback_protected (Replicated parity));
        check Alcotest.bool "atomic over a flipped fallible base is sealed"
          false
          (Law_infer.fallible (Atomic (Flip owner)));
        check Alcotest.bool "atomic (flip _) is rollback-protected" true
          (Law_infer.rollback_protected (Atomic (Flip owner)));
        check Alcotest.bool "flip alone protects nothing" false
          (Law_infer.rollback_protected (Flip owner));
        (* the relational lenses validate rows, keys and schemas in put *)
        List.iter
          (fun (lbl, p) ->
            check Alcotest.bool (lbl ^ " is fallible") true
              (Law_infer.fallible p))
          [
            ("select", Select { pred = "p"; key_preserving = true });
            ( "project",
              Project { keep = [ "id" ]; key = [ "id" ]; lossless = false } );
            ("rename", Rename [ ("a", "b") ]);
            ("join", Join { on = [ "id" ]; fd_proven = true });
            ( "dcompose",
              Dcompose
                ( Rename [ ("a", "b") ],
                  Select { pred = "p"; key_preserving = false } ) );
            ("delta_of", Delta_of (Rename [ ("a", "b") ]));
            ("plan", Plan { query = "q"; body = Rename [ ("a", "b") ] });
          ];
        check Alcotest.bool "plan passes protection through" true
          (Law_infer.rollback_protected
             (Plan { query = "q"; body = Atomic (Rename [ ("a", "b") ]) }));
        check Alcotest.bool "atomic seals a fallible plan" false
          (Law_infer.fallible
             (Atomic
                (Plan
                   { query = "q"; body = Join { on = [ "id" ]; fd_proven = false } }))));
    test "inferred-infallible bx never raise under fault-free chaos" `Quick
      (fun () ->
        (* the chaos harness installed with fault-free schedules (rate 0)
           must be invisible: every catalog bx whose pedigree infers
           infallible sweeps all sample pairs without raising *)
        List.iter
          (fun seed ->
            let chaos = Chaos.make ~rate:0.0 ~seed () in
            Chaos.with_chaos chaos (fun () ->
                List.iter
                  (fun (Catalog.Entry s) ->
                    let ped = Concrete.pedigree s.Catalog.packed in
                    if not (Law_infer.fallible ped) then
                      let (Concrete.Packed r) = s.Catalog.packed in
                      let bx = r.Concrete.bx in
                      List.iter
                        (fun a ->
                          List.iter
                            (fun b ->
                              let st =
                                bx.Concrete.set_a a
                                  (bx.Concrete.set_b b r.Concrete.init)
                              in
                              ignore (bx.Concrete.get_a st);
                              ignore (bx.Concrete.get_b st))
                            s.Catalog.values_b)
                        s.Catalog.values_a)
                  (Catalog.all ()));
            check Alcotest.int
              (Printf.sprintf "seed %d injected nothing" seed)
              0 (Chaos.injected chaos))
          [ 1; 7; 42 ]);
    test "compiled catalog plans keep their provenance" `Quick (fun () ->
        let with_plans =
          List.filter
            (fun (Catalog.Entry s) -> s.Catalog.plan <> None)
            (Catalog.all ())
        in
        check Alcotest.bool "the catalog carries compiled plans" true
          (List.length with_plans >= 4);
        List.iter
          (fun (Catalog.Entry s) ->
            let ped = Concrete.pedigree s.Catalog.packed in
            check Alcotest.bool
              (s.Catalog.label ^ ": pedigree is opaque-free")
              false
              (Pedigree.has_opaque ped);
            (* the inferred level has a lemma chain behind it: explain
               must cite a construction, not the opaque fallback *)
            let rationale = Law_infer.explain ped in
            check Alcotest.bool
              (s.Catalog.label ^ ": rationale is lemma-backed")
              false
              (String.length rationale >= 7
              && String.sub rationale 0 7 = "unknown"))
          with_plans);
    test "the example catalog audits clean" `Quick (fun () ->
        let audits = Catalog.audit_all () in
        check Alcotest.bool "catalog is non-trivial" true
          (List.length audits >= 5);
        List.iter
          (fun a ->
            check Alcotest.bool
              (a.Catalog.label ^ ": cross-check ok")
              true a.Catalog.cross_check_ok;
            List.iter
              (fun p ->
                check Alcotest.bool
                  (a.Catalog.label ^ "/" ^ p.Catalog.subject ^ ": no errors")
                  false
                  (Lint.has_errors p.Catalog.diagnostics))
              a.Catalog.pipelines)
          audits);
  ]
