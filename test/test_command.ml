(** The command-language optimizer: each optimization level preserves
    semantics exactly on the instances with the matching laws, and
    miscompiles (detectably) on instances without them. *)

open Esm_core

let parity_bx = Concrete.of_algebraic Fixtures.parity_undoable
let pair_bx : (int, int, int * int) Concrete.set_bx = Concrete.pair ()

let journal_bx =
  Journal.journalled ~eq_a:Int.equal ~eq_b:Int.equal parity_bx

let check = Alcotest.check
let test = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* A generator of commands over ints, with named functions/predicates
   so counterexamples print readably.                                   *)
(* ------------------------------------------------------------------ *)

let fns = [ (fun x -> x + 1); (fun x -> x * 2); (fun _ -> 7); (fun x -> x) ]
let preds = [ (fun x -> x > 0); (fun x -> x mod 2 = 0); (fun x -> x < 5) ]

let gen_cmd : (int, int) Command.t QCheck.arbitrary =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        return Command.Skip;
        map (fun a -> Command.Set_a a) small_signed_int;
        map (fun b -> Command.Set_b b) small_signed_int;
        map (fun i -> Command.Modify_a (List.nth fns (i mod 4))) small_nat;
        map (fun i -> Command.Modify_b (List.nth fns (i mod 4))) small_nat;
      ]
  in
  let rec go depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (3, leaf);
          (2, map2 (fun a b -> Command.Seq (a, b)) (go (depth - 1)) (go (depth - 1)));
          ( 1,
            map3
              (fun i c1 c2 -> Command.If_a (List.nth preds (i mod 3), c1, c2))
              small_nat (go (depth - 1)) (go (depth - 1)) );
          ( 1,
            map3
              (fun i c1 c2 -> Command.If_b (List.nth preds (i mod 3), c1, c2))
              small_nat (go (depth - 1)) (go (depth - 1)) );
        ]
  in
  let rec print = function
    | Command.Skip -> "skip"
    | Command.Seq (a, b) -> print a ^ "; " ^ print b
    | Command.Set_a a -> Printf.sprintf "set_a %d" a
    | Command.Set_b b -> Printf.sprintf "set_b %d" b
    | Command.Modify_a _ -> "modify_a <fn>"
    | Command.Modify_b _ -> "modify_b <fn>"
    | Command.If_a (_, c1, c2) ->
        "if_a <p> {" ^ print c1 ^ "} {" ^ print c2 ^ "}"
    | Command.If_b (_, c1, c2) ->
        "if_b <p> {" ^ print c1 ^ "} {" ^ print c2 ^ "}"
  in
  QCheck.make ~print (go 3)

let opt = Command.optimize ~eq_a:Int.equal ~eq_b:Int.equal
let opt_ss = Command.optimize_overwriteable ~eq_a:Int.equal ~eq_b:Int.equal
let opt_comm = Command.optimize_unsafe_commuting ~eq_a:Int.equal ~eq_b:Int.equal

let prop_tests =
  [
    (* Level `Any` is sound on EVERY lawful instance — including the
       non-overwriteable journal. *)
    QCheck.Test.make ~count:800
      ~name:"optimize preserves semantics on the entangled parity bx"
      (QCheck.pair gen_cmd Fixtures.gen_parity_consistent)
      (fun (c, s) -> Command.exec parity_bx (opt c) s = Command.exec parity_bx c s);
    QCheck.Test.make ~count:800
      ~name:"optimize preserves semantics on the pair bx"
      (QCheck.pair gen_cmd (QCheck.pair Helpers.small_int Helpers.small_int))
      (fun (c, s) -> Command.exec pair_bx (opt c) s = Command.exec pair_bx c s);
    QCheck.Test.make ~count:800
      ~name:"optimize preserves semantics on the journalled bx (incl. history)"
      (QCheck.pair gen_cmd Fixtures.gen_parity_consistent)
      (fun (c, s0) ->
        let st = Journal.initial s0 in
        Journal.equal_state ~eq_a:Int.equal ~eq_b:Int.equal
          ~eq_s:Esm_laws.Equality.(pair int int)
          (Command.exec journal_bx (opt c) st)
          (Command.exec journal_bx c st));
    (* Level `Overwriteable` is sound on overwriteable instances... *)
    QCheck.Test.make ~count:800
      ~name:"optimize_overwriteable preserves semantics on parity"
      (QCheck.pair gen_cmd Fixtures.gen_parity_consistent)
      (fun (c, s) ->
        Command.exec parity_bx (opt_ss c) s = Command.exec parity_bx c s);
    (* Level `Commuting` is sound on the independent pair bx... *)
    QCheck.Test.make ~count:800
      ~name:"optimize_commuting preserves semantics on the pair bx"
      (QCheck.pair gen_cmd (QCheck.pair Helpers.small_int Helpers.small_int))
      (fun (c, s) ->
        Command.exec pair_bx (opt_comm c) s = Command.exec pair_bx c s);
    (* ...and never increases the worst-case operation count. *)
    QCheck.Test.make ~count:800 ~name:"optimization never increases cost"
      gen_cmd
      (fun c ->
        Command.cost (opt c) <= Command.cost c
        && Command.cost (opt_ss c) <= Command.cost c);
  ]

let negative_tests =
  [
    (* (SS)-based collapsing miscompiles the journalled bx. *)
    Helpers.expect_law_failure
      "optimize_overwriteable is unsound on the journalled bx"
      (QCheck.Test.make ~count:800 ~name:"(expected failure)"
         (QCheck.pair gen_cmd Fixtures.gen_parity_consistent)
         (fun (c, s0) ->
           let st = Journal.initial s0 in
           Journal.equal_state ~eq_a:Int.equal ~eq_b:Int.equal
             ~eq_s:Esm_laws.Equality.(pair int int)
             (Command.exec journal_bx (opt_ss c) st)
             (Command.exec journal_bx c st)));
    (* Assuming commutation miscompiles the entangled parity bx. *)
    Helpers.expect_law_failure
      "optimize_commuting is unsound on the entangled parity bx"
      (QCheck.Test.make ~count:800 ~name:"(expected failure)"
         (QCheck.pair gen_cmd Fixtures.gen_parity_consistent)
         (fun (c, s) ->
           Command.exec parity_bx (opt_comm c) s = Command.exec parity_bx c s));
  ]

let unit_tests =
  [
    test "GS: re-setting a known value is deleted" `Quick (fun () ->
        match opt (Command.Seq (Command.Set_a 3, Command.Set_a 3)) with
        | Command.Set_a 3 -> ()
        | _ -> Alcotest.fail "expected a single set");
    test "SG: a branch after a set is folded" `Quick (fun () ->
        match
          opt
            (Command.Seq
               ( Command.Set_a 4,
                 Command.If_a ((fun x -> x > 0), Command.Set_b 1, Command.Set_b 2) ))
        with
        | Command.Seq (Command.Set_a 4, Command.Set_b 1) -> ()
        | _ -> Alcotest.fail "expected the true branch");
    test "entanglement: a set_b invalidates knowledge of A" `Quick (fun () ->
        (* set_a 3; set_b 4; set_a 3 must NOT lose the second set_a at
           level `Any`/`Overwriteable` (set_b 4 breaks parity with 3, so
           the final set_a genuinely repairs) *)
        let c =
          Command.Seq
            (Command.Set_a 3, Command.Seq (Command.Set_b 4, Command.Set_a 3))
        in
        let kept_second_set =
          match opt c with
          | Command.Seq (Command.Set_a 3, Command.Seq (Command.Set_b 4, Command.Set_a 3)) -> true
          | _ -> false
        in
        check Alcotest.bool "conservative" true kept_second_set;
        (* the commuting optimizer deletes it — and is wrong on parity *)
        let miscompiled = opt_comm c in
        check Alcotest.bool "commuting drops it" true
          (Command.cost miscompiled < Command.cost c);
        let direct = Command.exec parity_bx c (0, 0) in
        let wrong = Command.exec parity_bx miscompiled (0, 0) in
        check Alcotest.bool "observable miscompilation" false (direct = wrong));
    test "SS: adjacent sets collapse only at the overwriteable level" `Quick
      (fun () ->
        let c = Command.Seq (Command.Set_a 1, Command.Set_a 2) in
        check Alcotest.int "kept at `Any`" 2 (Command.cost (opt c));
        check Alcotest.int "collapsed with (SS)" 1 (Command.cost (opt_ss c)));
    test "modify after set becomes a constant set" `Quick (fun () ->
        let c = Command.Seq (Command.Set_a 3, Command.Modify_a (fun x -> x * 2)) in
        match opt_ss c with
        | Command.Set_a 6 -> ()
        | _ -> Alcotest.fail "expected set_a 6");
  ]

(* ------------------------------------------------------------------ *)
(* Pedigree-directed optimization (Esm_analysis.Optimize): the level is
   picked from the packed bx, so the unsafe rewrites are unreachable.   *)
(* ------------------------------------------------------------------ *)

let optimize_packed_tests =
  let open Esm_analysis in
  let entangling =
    (* set_a 3; set_b 4; set_a 3 — the known-miscompilation shape *)
    Command.Seq (Command.Set_a 3, Command.Seq (Command.Set_b 4, Command.Set_a 3))
  in
  let opt_packed packed c =
    Optimize.optimize_packed packed ~eq_a:Int.equal ~eq_b:Int.equal c
  in
  [
    test "level_for follows the pedigree lemmas" `Quick (fun () ->
        let lvl = Alcotest.of_pp (fun fmt l ->
            Format.pp_print_string fmt
              (match (l : Command.level) with
              | `Any -> "any"
              | `Undoable -> "undoable"
              | `Overwriteable -> "overwriteable"
              | `Commuting -> "commuting"))
        in
        check lvl "pair commutes" `Commuting
          (Optimize.level_for (Fixtures.packed_pair ()));
        check lvl "undoable parity overwrites" `Overwriteable
          (Optimize.level_for (Fixtures.packed_parity_undoable ()));
        check lvl "sticky parity floors" `Any
          (Optimize.level_for (Fixtures.packed_parity_sticky ())));
    test "commuting rewrite fires only where the pedigree commutes" `Quick
      (fun () ->
        (* on the pair bx the dead first set_a is deleted... *)
        check Alcotest.int "pair: collapsed" 2
          (Command.cost (opt_packed (Fixtures.packed_pair ()) entangling));
        (* ...on parity the same program is untouched: the unsafe level
           is unreachable through optimize_packed *)
        check Alcotest.int "parity: kept" 3
          (Command.cost
             (opt_packed (Fixtures.packed_parity_undoable ()) entangling)));
    test "the cap can only lower the level" `Quick (fun () ->
        let ss = Command.Seq (Command.Set_a 1, Command.Set_a 2) in
        check Alcotest.int "parity collapses (SS)" 1
          (Command.cost (opt_packed (Fixtures.packed_parity_undoable ()) ss));
        check Alcotest.int "capped at set-bx it is kept" 2
          (Command.cost
             (Optimize.optimize_packed ~cap:`Set_bx
                (Fixtures.packed_parity_undoable ())
                ~eq_a:Int.equal ~eq_b:Int.equal ss));
        check Alcotest.int "a cap above the inferred level is a no-op" 1
          (Command.cost
             (Optimize.optimize_packed ~cap:`Commuting
                (Fixtures.packed_parity_undoable ())
                ~eq_a:Int.equal ~eq_b:Int.equal ss)));
  ]

let optimize_packed_prop_tests =
  let open Esm_analysis in
  [
    QCheck.Test.make ~count:800
      ~name:"optimize_packed preserves semantics on parity (auto level)"
      (QCheck.pair gen_cmd Fixtures.gen_parity_consistent)
      (fun (c, s) ->
        let c' =
          Optimize.optimize_packed
            (Fixtures.packed_parity_undoable ())
            ~eq_a:Int.equal ~eq_b:Int.equal c
        in
        Command.exec parity_bx c' s = Command.exec parity_bx c s);
    QCheck.Test.make ~count:800
      ~name:"optimize_packed preserves semantics on the pair bx (auto level)"
      (QCheck.pair gen_cmd (QCheck.pair Helpers.small_int Helpers.small_int))
      (fun (c, s) ->
        let c' =
          Optimize.optimize_packed (Fixtures.packed_pair ()) ~eq_a:Int.equal
            ~eq_b:Int.equal c
        in
        Command.exec pair_bx c' s = Command.exec pair_bx c s);
  ]

let suite =
  unit_tests @ Helpers.q prop_tests @ negative_tests @ optimize_packed_tests
  @ Helpers.q optimize_packed_prop_tests
