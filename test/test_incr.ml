(** Incremental recomputation suite: the reactive layer and the caches
    wired through the hot paths (see [docs/PERFORMANCE.md]).

    - {!Esm_incr.Signal} / {!Esm_incr.Memo}: recompute only on upstream
      change, with {e backdating} — a recomputation that round-trips to
      a structurally identical value does not dirty downstream;
    - {!Esm_relational.Table.hash}: incrementally maintained across
      insert/delete, consistent with a from-scratch rebuild;
    - {!Esm_relational.Query.to_dlens}: the plan cache is transparent —
      a memo hit carries exactly the pedigree (and inferred law level)
      of a cold compile, for every catalog entry with a plan;
    - {!Esm_relational.Rlens.get_memo} and the {!Esm_sync.Store} /
      {!Esm_sync.Session} caches: memoized reads/polls equal the
      unmemoized reference on randomized edit scripts, including the
      net-zero (backdating) case and across crash/recover;
    - chaos at the ["incr.hash"] site: a poisoned or fault-injected
      cache degrades to a full recomputation — extra misses, never a
      stale value.

    Like the chaos suite, the base seed comes from [CHAOS_SEED] when
    set, and each property case derives its own instance seed. *)

open Esm_core
open Esm_sync
module Rel = Esm_relational
module Incr = Esm_incr
module Cat = Esm_analysis.Catalog
module Law = Esm_analysis.Law_infer

let check = Alcotest.check
let test = Alcotest.test_case

let chaos_seed =
  match Sys.getenv_opt "CHAOS_SEED" with
  | Some s -> ( try int_of_string s with _ -> 42)
  | None -> 42

let next_case = ref 0

let case_chaos ~rate () =
  incr next_case;
  Chaos.make ~rate ~seed:(chaos_seed + (1000 * !next_case)) ()

(* ------------------------------------------------------------------ *)
(* Signal / Memo units                                                 *)
(* ------------------------------------------------------------------ *)

let int_list_signal v = Incr.Signal.create ~hash:Shash.of_value v

(* A two-memo pipeline over an int-list signal: sort, then sum.  The
   sort absorbs permutations — the backdating case. *)
let pipeline () =
  let s = int_list_signal [ 3; 1; 2 ] in
  let runs1 = ref 0 and runs2 = ref 0 in
  let m1 =
    Incr.Memo.create ~name:"t.sorted" ~hash:Shash.of_value
      ~deps:[ Incr.Signal.dep s ]
      (fun () ->
        incr runs1;
        List.sort compare (Incr.Signal.get s))
  in
  let m2 =
    Incr.Memo.create ~name:"t.sum" ~hash:Shash.of_value
      ~deps:[ Incr.Memo.dep m1 ]
      (fun () ->
        incr runs2;
        List.fold_left ( + ) 0 (Incr.Memo.force m1))
  in
  (s, m1, m2, runs1, runs2)

let signal_memo_tests =
  [
    test "a signal backdates a structurally equal write" `Quick (fun () ->
        let s = int_list_signal [ 1; 2; 3 ] in
        let v0 = Incr.Signal.version s in
        Incr.Signal.set s [ 1; 2; 3 ];
        check Alcotest.int "backdated version" v0 (Incr.Signal.version s);
        Incr.Signal.set s [ 1; 2; 4 ];
        check Alcotest.int "changed version" (v0 + 1) (Incr.Signal.version s);
        check
          Alcotest.(list int)
          "changed value" [ 1; 2; 4 ] (Incr.Signal.get s));
    test "a memo recomputes only when a dependency changed" `Quick (fun () ->
        let s, _m1, m2, runs1, runs2 = pipeline () in
        check Alcotest.int "first force" 6 (Incr.Memo.force m2);
        check Alcotest.int "first force again" 6 (Incr.Memo.force m2);
        check Alcotest.int "one sort run" 1 !runs1;
        check Alcotest.int "one sum run" 1 !runs2;
        Incr.Signal.set s [ 10; 1 ];
        check Alcotest.int "after change" 11 (Incr.Memo.force m2);
        check Alcotest.int "sort re-ran" 2 !runs1;
        check Alcotest.int "sum re-ran" 2 !runs2);
    test "a backdated recomputation does not dirty downstream" `Quick
      (fun () ->
        Incr.Stats.reset ();
        let s, _m1, m2, runs1, runs2 = pipeline () in
        check Alcotest.int "first force" 6 (Incr.Memo.force m2);
        (* a permutation: new hash upstream, identical sorted result *)
        Incr.Signal.set s [ 2; 3; 1 ];
        check Alcotest.int "same sum" 6 (Incr.Memo.force m2);
        check Alcotest.int "sort re-ran" 2 !runs1;
        check Alcotest.int "sum did not" 1 !runs2;
        check Alcotest.int "backdate counted" 1
          (Incr.Stats.backdates "t.sorted"));
    test "a poisoned memo recomputes — never a stale value" `Quick (fun () ->
        let s = int_list_signal [ 5 ] in
        let runs = ref 0 in
        let m =
          Incr.Memo.create ~name:"t.double" ~hash:Shash.of_value
            ~deps:[ Incr.Signal.dep s ]
            (fun () ->
              incr runs;
              List.map (fun x -> 2 * x) (Incr.Signal.get s))
        in
        check Alcotest.(list int) "cold" [ 10 ] (Incr.Memo.force m);
        Incr.Memo.poison m;
        check Alcotest.(list int) "after poison" [ 10 ] (Incr.Memo.force m);
        check Alcotest.int "poison cost a recomputation" 2 !runs;
        Incr.Signal.set s [ 7 ];
        Incr.Memo.poison m;
        check
          Alcotest.(list int)
          "poison plus change" [ 14 ] (Incr.Memo.force m));
  ]

(* ------------------------------------------------------------------ *)
(* Table structural hash                                               *)
(* ------------------------------------------------------------------ *)

let rebuilt_hash t = Rel.Table.(hash (of_rows (schema t) (rows t)))

let base_row i name dept =
  Rel.Row.of_list
    [
      Rel.Value.Int i;
      Rel.Value.Str name;
      Rel.Value.Str dept;
      Rel.Value.Int 50_000;
      Rel.Value.Str (name ^ "@example.com");
    ]

let table_hash_tests =
  [
    test "the incremental hash matches a from-scratch rebuild" `Quick
      (fun () ->
        let t = ref (Rel.Workload.employees ~seed:5 ~size:16) in
        ignore (Rel.Table.hash !t);
        let fresh = ref 9_000 in
        for step = 1 to 40 do
          (if step mod 3 = 0 then
             match Rel.Table.rows !t with
             | [] -> ()
             | rows ->
                 t := Rel.Table.delete !t (List.nth rows (step mod List.length rows))
           else (
             incr fresh;
             t :=
               Rel.Table.insert !t
                 (base_row !fresh
                    (Printf.sprintf "w%d" step)
                    (if step mod 2 = 0 then "Engineering" else "Sales"))));
          check Alcotest.int
            (Printf.sprintf "step %d" step)
            (rebuilt_hash !t) (Rel.Table.hash !t)
        done);
  ]

let table_hash_props =
  [
    QCheck.Test.make ~count:100
      ~name:"equal tables hash equal (row order notwithstanding)"
      QCheck.(pair (int_bound 1000) (int_range 0 24))
      (fun (seed, size) ->
        let t = Rel.Workload.employees ~seed ~size in
        let t' =
          Rel.Table.of_rows (Rel.Table.schema t)
            (List.rev (Rel.Table.rows t))
        in
        Rel.Table.equal t t' && Rel.Table.hash t = Rel.Table.hash t');
    QCheck.Test.make ~count:100
      ~name:"a differing hash implies inequality (rejection is sound)"
      QCheck.(pair (int_bound 1000) (int_bound 1000))
      (fun (s1, s2) ->
        let t1 = Rel.Workload.employees ~seed:s1 ~size:12 in
        let t2 = Rel.Workload.employees ~seed:s2 ~size:12 in
        if Rel.Table.hash t1 <> Rel.Table.hash t2 then
          not (Rel.Table.equal t1 t2)
        else true);
  ]

(* ------------------------------------------------------------------ *)
(* Plan cache: memoization and law-level parity                        *)
(* ------------------------------------------------------------------ *)

let eng_query_src =
  {|employees | where dept = "Engineering" | select id, name, dept|}

let plan_cache_tests =
  [
    test "to_dlens memoizes: a repeated compile is the same plan" `Quick
      (fun () ->
        Rel.Query.clear_plan_cache ();
        Incr.Stats.reset ();
        let q = Rel.Query.parse eng_query_src in
        let dl1 =
          Rel.Query.to_dlens ~schema:Rel.Workload.employees_schema
            ~key:[ "id" ] q
        in
        let dl2 =
          Rel.Query.to_dlens ~schema:Rel.Workload.employees_schema
            ~key:[ "id" ] q
        in
        check Alcotest.bool "physically shared" true (dl1 == dl2);
        check
          Alcotest.(pair int int)
          "one miss then one hit" (1, 1)
          (Incr.Stats.counts "query.plan"));
    test "law-level parity: every catalog plan's cache hit = cold compile"
      `Quick (fun () ->
        let checked = ref 0 in
        List.iter
          (fun (Cat.Entry sc) ->
            match sc.Cat.plan with
            | None -> ()
            | Some p ->
                incr checked;
                let compile f =
                  f ~schema:p.Cat.plan_schema ~key:p.Cat.plan_key
                    p.Cat.plan_query
                in
                match compile Rel.Query.to_dlens_uncached with
                | cold ->
                    (* warm the cache, then take the guaranteed hit *)
                    ignore (compile Rel.Query.to_dlens);
                    let hot = compile Rel.Query.to_dlens in
                    check Alcotest.string
                      (sc.Cat.label ^ ": inferred level")
                      (Law.to_string (Law.level cold.Rel.Rlens.pedigree))
                      (Law.to_string (Law.level hot.Rel.Rlens.pedigree));
                    check Alcotest.string
                      (sc.Cat.label ^ ": rationale")
                      (Law.explain cold.Rel.Rlens.pedigree)
                      (Law.explain hot.Rel.Rlens.pedigree)
                | exception Rel.Query.Not_updatable _ -> (
                    (* parity of failure: the cached path must reject
                       the very same shapes the cold compiler does *)
                    match compile Rel.Query.to_dlens with
                    | _ ->
                        Alcotest.failf "%s: cached compile accepted a plan %s"
                          sc.Cat.label "the cold compiler rejects"
                    | exception Rel.Query.Not_updatable _ -> ()))
          (Cat.all ());
        check Alcotest.bool "catalog has plans to check" true (!checked > 0));
  ]

(* ------------------------------------------------------------------ *)
(* Rlens.get_memo                                                      *)
(* ------------------------------------------------------------------ *)

let eng_dlens () =
  Rel.Query.to_dlens_uncached ~schema:Rel.Workload.employees_schema
    ~key:[ "id" ]
    (Rel.Query.parse eng_query_src)

let rlens_memo_tests =
  [
    test "get_memo hits on an unchanged source and matches the oracle"
      `Quick (fun () ->
        Incr.Stats.reset ();
        let dl = eng_dlens () in
        let src = Rel.Workload.employees ~seed:3 ~size:20 in
        let v1 = Rel.Rlens.get_memo dl src in
        let v2 = Rel.Rlens.get_memo dl src in
        check Alcotest.bool "physically shared" true (v1 == v2);
        check Alcotest.bool "oracle" true
          (Rel.Table.equal v1 (Esm_lens.Lens.get dl.Rel.Rlens.lens src));
        check
          Alcotest.(pair int int)
          "one miss then one hit" (1, 1)
          (Incr.Stats.counts "rlens.view"));
    test "get_memo verifies a hash match on a physically new source" `Quick
      (fun () ->
        Incr.Stats.reset ();
        let dl = eng_dlens () in
        let src = Rel.Workload.employees ~seed:3 ~size:20 in
        let v1 = Rel.Rlens.get_memo dl src in
        let src' =
          Rel.Table.of_rows (Rel.Table.schema src)
            (List.rev (Rel.Table.rows src))
        in
        let v2 = Rel.Rlens.get_memo dl src' in
        check Alcotest.bool "hit via hash + verify" true (v1 == v2);
        check
          Alcotest.(pair int int)
          "miss, hit" (1, 1)
          (Incr.Stats.counts "rlens.view"));
    test "an edited source misses and rematerializes" `Quick (fun () ->
        let dl = eng_dlens () in
        let src = Rel.Workload.employees ~seed:3 ~size:20 in
        ignore (Rel.Rlens.get_memo dl src);
        let src' = Rel.Table.insert src (base_row 777 "nova" "Engineering") in
        let v = Rel.Rlens.get_memo dl src' in
        check Alcotest.bool "fresh view" true
          (Rel.Table.equal v (Esm_lens.Lens.get dl.Rel.Rlens.lens src')));
  ]

(* ------------------------------------------------------------------ *)
(* Store / Session: memoized reads equal the unmemoized reference      *)
(* ------------------------------------------------------------------ *)

let eng_lens =
  Rel.Query.lens_of_string ~schema:Rel.Workload.employees_schema
    ~key:[ "id" ] eng_query_src

let make_store ?(seed = 11) ?(size = 20) () =
  Store.of_packed ~name:"employees" ~snapshot_every:4
    ~apply_da:Rel.Row_delta.apply_all ~apply_db:Rel.Row_delta.apply_all
    (Concrete.packed_of_lens ~vwb:false
       ~init:(Rel.Workload.employees ~seed ~size)
       ~eq_state:Rel.Table.equal eng_lens)

let view_row i name =
  Rel.Row.of_list
    [ Rel.Value.Int i; Rel.Value.Str name; Rel.Value.Str "Engineering" ]

type sop =
  | Add_row of int
  | Remove_existing of int
  | Net_zero of int
  | Poll
  | Crash_recover

let sop_to_string = function
  | Add_row i -> Printf.sprintf "Add_row %d" i
  | Remove_existing i -> Printf.sprintf "Remove_existing %d" i
  | Net_zero i -> Printf.sprintf "Net_zero %d" i
  | Poll -> "Poll"
  | Crash_recover -> "Crash_recover"

let gen_sop =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun i -> Add_row i) (int_bound 1000));
        (3, map (fun i -> Remove_existing i) (int_bound 50));
        (2, map (fun i -> Net_zero i) (int_bound 1000));
        (3, return Poll);
        (1, return Crash_recover);
      ])

let arb_script =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map sop_to_string ops))
    QCheck.Gen.(list_size (int_range 5 25) gen_sop)

(* Run a script against one store, comparing every memoized read with
   its uncached reference after every operation. *)
let memo_store_prop script =
  let store = make_store () in
  let sess = Session.bind store ~name:"watcher" ~side:`B in
  let fresh = ref 100_000 in
  let ok = ref true in
  let views_agree () =
    ok :=
      !ok
      && Rel.Table.equal (Store.view_a store) (Store.view_a_uncached store)
      && Rel.Table.equal (Store.view_b store) (Store.view_b_uncached store)
  in
  List.iter
    (fun op ->
      (match op with
      | Add_row i ->
          incr fresh;
          let r = view_row !fresh (Printf.sprintf "w%d" i) in
          ignore
            (Store.commit ~session:"editor" store
               (Store.Batch_b [ Rel.Row_delta.Add r ]))
      | Remove_existing i -> (
          match Rel.Table.rows (Store.view_b store) with
          | [] -> ()
          | rows ->
              let r = List.nth rows (i mod List.length rows) in
              ignore
                (Store.commit ~session:"editor" store
                   (Store.Batch_b [ Rel.Row_delta.Remove r ])))
      | Net_zero i ->
          incr fresh;
          let r = view_row !fresh (Printf.sprintf "z%d" i) in
          let before = Store.view_b store in
          ignore
            (Store.commit ~session:"editor" store
               (Store.Batch_b Rel.Row_delta.[ Add r; Remove r ]));
          (* the round trip is a net no-op: the view must be unchanged *)
          ok := !ok && Rel.Table.equal before (Store.view_b store)
      | Poll ->
          let expected =
            List.length (Store.entries_since store (Session.base sess))
          in
          let pulled = List.length (Session.pull sess) in
          (* a second poll of the unchanged store must short-circuit *)
          ok := !ok && expected = pulled && Session.pull sess = []
      | Crash_recover ->
          Store.crash store;
          Store.recover store);
      views_agree ())
    script;
  !ok

let store_oracle_props =
  [
    QCheck.Test.make ~count:60
      ~name:"memoized store views and polls equal the uncached reference"
      arb_script memo_store_prop;
  ]

(* ------------------------------------------------------------------ *)
(* Chaos at incr.hash: degrade to recomputation, never staleness       *)
(* ------------------------------------------------------------------ *)

let chaos_tests =
  [
    test "an injected fault at incr.hash degrades a memo hit" `Quick
      (fun () ->
        let s = int_list_signal [ 21 ] in
        let runs = ref 0 in
        let m =
          Incr.Memo.create ~name:"t.chaos" ~hash:Shash.of_value
            ~deps:[ Incr.Signal.dep s ]
            (fun () ->
              incr runs;
              List.map (fun x -> 2 * x) (Incr.Signal.get s))
        in
        check Alcotest.(list int) "cold" [ 42 ] (Incr.Memo.force m);
        let c = Chaos.make ~rate:1.0 ~seed:chaos_seed () in
        Chaos.with_chaos c (fun () ->
            check
              Alcotest.(list int)
              "degraded hit is still correct" [ 42 ] (Incr.Memo.force m));
        check Alcotest.int "the hit recomputed" 2 !runs;
        check Alcotest.bool "fallback recorded" true (Chaos.fallbacks c >= 1));
    test "memo reads under chaos always equal the oracle" `Quick (fun () ->
        let s = int_list_signal [ 0 ] in
        let m =
          Incr.Memo.create ~name:"t.chaos2" ~hash:Shash.of_value
            ~deps:[ Incr.Signal.dep s ]
            (fun () -> List.map (fun x -> x + 1) (Incr.Signal.get s))
        in
        let c = case_chaos ~rate:0.4 () in
        Chaos.with_chaos c (fun () ->
            for i = 1 to 30 do
              if i mod 5 = 0 then Incr.Memo.poison m;
              Incr.Signal.set s [ i mod 7 ];
              check
                Alcotest.(list int)
                (Printf.sprintf "read %d" i)
                [ (i mod 7) + 1 ]
                (Incr.Memo.force m)
            done));
    test "get_memo under chaos matches the protected oracle" `Quick
      (fun () ->
        let dl =
          Rel.Query.to_dlens_uncached ~schema:Rel.Workload.employees_schema
            ~key:[ "id" ]
            (Rel.Query.parse {|employees | where dept = "Engineering"|})
        in
        let c = case_chaos ~rate:0.3 () in
        Chaos.with_chaos c (fun () ->
            for i = 1 to 12 do
              let src = Rel.Workload.employees ~seed:(i / 3) ~size:16 in
              let v = Rel.Rlens.get_memo dl src in
              let oracle =
                Chaos.protected (fun () ->
                    Esm_lens.Lens.get dl.Rel.Rlens.lens src)
              in
              check Alcotest.bool
                (Printf.sprintf "read %d" i)
                true
                (Rel.Table.equal v oracle)
            done));
    test "store reads under chaos equal the protected oracle" `Quick
      (fun () ->
        let store = make_store ~seed:17 () in
        let sess = Session.bind store ~name:"watcher" ~side:`B in
        let c = case_chaos ~rate:0.2 () in
        Chaos.with_chaos c (fun () ->
            for i = 1 to 25 do
              (* commits may fail whole under injected faults — that is
                 their transactional contract, reads must stay coherent *)
              ignore
                (Store.commit ~session:"editor" store
                   (Store.Batch_b
                      [ Rel.Row_delta.Add (view_row (200_000 + i) "c") ]));
              ignore (Session.pull sess);
              let vb = Store.view_b store in
              let va = Store.view_a store in
              let ob =
                Chaos.protected (fun () -> Store.view_b_uncached store)
              in
              let oa =
                Chaos.protected (fun () -> Store.view_a_uncached store)
              in
              check Alcotest.bool
                (Printf.sprintf "step %d" i)
                true
                (Rel.Table.equal vb ob && Rel.Table.equal va oa)
            done))
  ]

(* ------------------------------------------------------------------ *)

let suite =
  signal_memo_tests @ table_hash_tests @ plan_cache_tests @ rlens_memo_tests
  @ chaos_tests
  @ Helpers.q (table_hash_props @ store_oracle_props)
