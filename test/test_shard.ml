(** Shard suite: sharded stores with gossip replication and
    snapshot-anchored log compaction (see [docs/SYNC.md], "Sharding and
    compaction").

    - horizon edge cases ([Oplog]): exactly-at-snapshot-version is
      servable, strictly-below a positive horizon is a typed answer
      ([entries_since] raises [Corrupt], [read_since] says [`Resync]),
      the empty-log/version-0 boundaries stay total;
    - store compaction: views/version unchanged, durable ordering
      (snapshot first, then the log rewrite), reopen of a compacted
      directory, a compacted directory whose snapshot vanished is a
      typed [Corrupt], stale [log.bin.tmp] is discarded on reopen;
    - the torn-compaction crash matrix: kill at {e every} tick of the
      compaction path (tmp record writes, fsync, rename, fd
      switch-over) and reopen recovers the exact pre-kill head — the
      in-process complement of [esm_syncd --kill-at];
    - session resync: a session whose base fell below the horizon
      pulls through the typed resync and lands on the head;
    - routers: [route_op] partitioning (whole-view sets reach every
      shard, deltas only their owners, [Exec] is typed-unroutable),
      hash and range routers;
    - gossip: convergence once rounds quiesce, resync of a follower
      that fell below a peer's compaction horizon, and the chaos seed
      matrix — N shards, interleaved sessions, faults at the gossip /
      append / durable sites, per-shard crash+recover and periodic
      compaction, with cross-shard convergence and exact per-shard
      head accounting asserted once gossip quiesces on a healed net. *)

open Esm_core
open Esm_sync
module Rel = Esm_relational

let check = Alcotest.check
let test = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* Temp dirs and the store under test                                  *)
(* ------------------------------------------------------------------ *)

let tmp_count = ref 0

let with_tmp_dir (f : string -> 'a) : 'a =
  incr tmp_count;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "esm-shard-%d-%d" (Unix.getpid ()) !tmp_count)
  in
  let rec rm path =
    if Sys.is_directory path then (
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path)
    else Sys.remove path
  in
  if Sys.file_exists dir then rm dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let eng_lens =
  Rel.Query.lens_of_string ~schema:Rel.Workload.employees_schema
    ~key:[ "id" ]
    {|employees | where dept = "Engineering" | select id, name, dept|}

let schema_b =
  Rel.Table.schema
    (Esm_lens.Lens.get eng_lens (Rel.Workload.employees ~seed:1 ~size:1))

let codec =
  Wire.durable_op_codec ~schema_a:Rel.Workload.employees_schema ~schema_b

let packed ?(init = Rel.Workload.employees ~seed:11 ~size:16) () =
  Concrete.packed_of_lens ~vwb:false ~init ~eq_state:Rel.Table.equal eng_lens

let make_store ?init ?persist ?(name = "employees") () : Wire.rstore =
  Store.of_packed ~name ~snapshot_every:8 ~apply_da:Rel.Row_delta.apply_all
    ~apply_db:Rel.Row_delta.apply_all ?persist (packed ?init ())

let make_pstore ~dir () : Wire.rstore =
  make_store ~persist:(Store.persist ~fsync:Durable_log.Fsync_always ~dir codec) ()

let reopen ?init ~dir () : (Wire.rstore, Error.t) result =
  Store.reopen ~name:"employees" ~snapshot_every:8
    ~apply_da:Rel.Row_delta.apply_all ~apply_db:Rel.Row_delta.apply_all ~codec
    ~dir
    (packed ?init ())

let base_row i name dept =
  Rel.Row.of_list
    [
      Rel.Value.Int i;
      Rel.Value.Str name;
      Rel.Value.Str dept;
      Rel.Value.Int 50_000;
      Rel.Value.Str (name ^ "@x.com");
    ]

let view_row i name =
  Rel.Row.of_list
    [ Rel.Value.Int i; Rel.Value.Str name; Rel.Value.Str "Engineering" ]

(* n fresh A-side add commits, ids disjoint from the seeded table *)
let commit_n ?(start = 1_000) store n =
  for i = start to start + n - 1 do
    match
      Store.commit ~session:"w" store
        (Store.Batch_a [ Rel.Row_delta.Add (base_row i "add" "Engineering") ])
    with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "commit %d failed: %s" i (Error.message e)
  done

let table = Alcotest.testable Rel.Table.pp Rel.Table.equal

let is_corrupt = function
  | Error.Bx_error e -> e.Error.kind = Error.Corrupt
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Oplog horizon edge cases                                            *)
(* ------------------------------------------------------------------ *)

let oplog_tests =
  [
    test "fresh log: version 0 and below are servable, head is 0" `Quick
      (fun () ->
        let l = Oplog.create ~init:0 () in
        check Alcotest.int "head" 0 (Oplog.head_version l);
        check Alcotest.int "horizon" 0 (Oplog.horizon l);
        check Alcotest.int "since 0" 0 (List.length (Oplog.entries_since l 0));
        (* horizon 0: total for every integer, even negative *)
        check Alcotest.int "since -3" 0
          (List.length (Oplog.entries_since l (-3)));
        match Oplog.read_since l 0 with
        | `Entries [] -> ()
        | _ -> Alcotest.fail "expected `Entries [] on a fresh log");
    test "seeded horizon: at serves, below answers typed resync" `Quick
      (fun () ->
        let l = Oplog.create ~horizon:5 ~init:"s5" () in
        check Alcotest.int "head = horizon while empty" 5
          (Oplog.head_version l);
        check Alcotest.int "exactly-at is servable" 0
          (List.length (Oplog.entries_since l 5));
        (try
           ignore (Oplog.entries_since l 4);
           Alcotest.fail "entries_since below horizon must raise"
         with e when is_corrupt e -> ());
        (match Oplog.read_since l 3 with
        | `Resync (5, "s5") -> ()
        | `Resync (v, s) -> Alcotest.failf "resync at (%d, %s)" v s
        | `Entries _ -> Alcotest.fail "expected `Resync below horizon");
        check Alcotest.int "append continues above horizon" 6
          (Oplog.append l ~session:"a" 60);
        match Oplog.entries_since l 5 with
        | [ { Oplog.version = 6; op = 60; _ } ] -> ()
        | _ -> Alcotest.fail "suffix above the seeded horizon");
    test "compact: drops the snapshot prefix, head unchanged, idempotent"
      `Quick (fun () ->
        let l = Oplog.create ~init:"s0" () in
        for i = 1 to 10 do
          ignore (Oplog.append l ~session:"a" (10 * i))
        done;
        Oplog.record_snapshot l 8 "s8";
        check Alcotest.int "dropped" 8 (Oplog.compact l);
        check Alcotest.int "horizon" 8 (Oplog.horizon l);
        check Alcotest.int "head unchanged" 10 (Oplog.head_version l);
        check Alcotest.int "retained" 2 (Oplog.length l);
        (* exactly-at-horizon yields the full retained log *)
        check
          Alcotest.(list int)
          "suffix at horizon" [ 90; 100 ]
          (List.map (fun e -> e.Oplog.op) (Oplog.entries_since l 8));
        (try
           ignore (Oplog.entries_since l 7);
           Alcotest.fail "below horizon must raise"
         with e when is_corrupt e -> ());
        (match Oplog.read_since l 2 with
        | `Resync (8, "s8") -> ()
        | _ -> Alcotest.fail "resync from the compaction snapshot");
        check Alcotest.int "idempotent" 0 (Oplog.compact l);
        check Alcotest.int "head still" 10 (Oplog.head_version l));
    test "compact with no post-snapshot entries leaves head = horizon"
      `Quick (fun () ->
        let l = Oplog.create ~init:"s0" () in
        for i = 1 to 8 do
          ignore (Oplog.append l ~session:"a" i)
        done;
        Oplog.record_snapshot l 8 "s8";
        check Alcotest.int "dropped" 8 (Oplog.compact l);
        check Alcotest.int "empty head = horizon" 8 (Oplog.head_version l);
        check Alcotest.int "since head" 0
          (List.length (Oplog.entries_since l 8));
        check Alcotest.int "far above head" 0
          (List.length (Oplog.entries_since l 99)));
    test "create rejects a negative horizon" `Quick (fun () ->
        match Oplog.create ~horizon:(-1) ~init:"x" () with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
  ]

(* ------------------------------------------------------------------ *)
(* Store compaction                                                    *)
(* ------------------------------------------------------------------ *)

let store_tests =
  [
    test "in-memory compact: views and version unchanged" `Quick (fun () ->
        let s = make_store () in
        commit_n s 12;
        let va = Store.view_a s and vb = Store.view_b s in
        let v = Store.version s in
        (match Store.compact s with
        | Ok n -> check Alcotest.int "dropped the snapshot prefix" 8 n
        | Error e -> Alcotest.failf "compact failed: %s" (Error.message e));
        check Alcotest.int "horizon" 8 (Store.horizon s);
        check Alcotest.int "version" v (Store.version s);
        check table "A view" va (Store.view_a s);
        check table "B view" vb (Store.view_b s);
        (* crash recovery now starts from the horizon snapshot *)
        Store.crash s;
        Store.recover s;
        check Alcotest.int "recovered version" v (Store.version s);
        check table "recovered A view" va (Store.view_a s);
        (try
           ignore (Store.entries_since s 7);
           Alcotest.fail "below horizon must raise"
         with e when is_corrupt e -> ());
        match Store.read_since s 3 with
        | `Resync (8, _) -> ()
        | _ -> Alcotest.fail "read_since below horizon must resync");
    test "session below the horizon resyncs through pull" `Quick (fun () ->
        let s = make_store () in
        let sess = Session.bind s ~name:"lagger" ~side:`A in
        commit_n s 12;
        (match Store.compact s with
        | Ok 8 -> ()
        | Ok n -> Alcotest.failf "dropped %d" n
        | Error e -> Alcotest.failf "compact: %s" (Error.message e));
        (* the session's base (0) fell below the horizon (8): pull must
           answer the retained suffix, not raise, and land on the head *)
        let entries = Session.pull sess in
        check Alcotest.int "suffix length" 4 (List.length entries);
        check Alcotest.int "based at head" (Store.version s)
          (Session.base sess));
    test "persisted compact: snapshot-anchored, reopen reaches the head"
      `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let s = make_pstore ~dir () in
            commit_n s 12;
            let va = Store.view_a s and vb = Store.view_b s in
            (match Store.compact s with
            | Ok 8 -> ()
            | Ok n -> Alcotest.failf "dropped %d" n
            | Error e -> Alcotest.failf "compact: %s" (Error.message e));
            (* the log may be rewritten below the snapshot, never past it *)
            (match Durable_log.load ~dir with
            | Error e -> Alcotest.failf "load: %s" (Error.message e)
            | Ok r ->
                check Alcotest.int "on-disk horizon" 8 r.Durable_log.horizon;
                List.iter
                  (fun (e : Durable_log.raw_entry) ->
                    if e.Durable_log.version <= 8 then
                      Alcotest.failf "retained entry %d below the horizon"
                        e.Durable_log.version)
                  r.Durable_log.entries;
                match r.Durable_log.snapshot with
                | Some (sv, _) when sv >= 8 -> ()
                | Some (sv, _) ->
                    Alcotest.failf "snapshot %d below the horizon" sv
                | None -> Alcotest.fail "no snapshot behind the horizon");
            (* the writer keeps appending through the switched fd *)
            commit_n ~start:2_000 s 3;
            let v = Store.version s in
            let va' = Store.view_a s and vb' = Store.view_b s in
            ignore (va, vb);
            Store.close s;
            match reopen ~dir () with
            | Error e -> Alcotest.failf "reopen: %s" (Error.message e)
            | Ok s' ->
                check Alcotest.int "reopened head" v (Store.version s');
                check table "reopened A" va' (Store.view_a s');
                check table "reopened B" vb' (Store.view_b s');
                check Alcotest.int "reopened horizon" 8 (Store.horizon s');
                Store.close s'));
    test "compacted directory without its snapshot is typed Corrupt" `Quick
      (fun () ->
        with_tmp_dir (fun dir ->
            let s = make_pstore ~dir () in
            commit_n s 12;
            (match Store.compact s with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "compact: %s" (Error.message e));
            Store.close s;
            Sys.remove (Durable_log.snapshot_file dir);
            match reopen ~dir () with
            | Ok _ ->
                Alcotest.fail
                  "reopen must refuse a horizon with no snapshot behind it"
            | Error e ->
                check Alcotest.bool "kind" true (e.Error.kind = Error.Corrupt)));
    test "stale log.bin.tmp from a torn compaction is discarded" `Quick
      (fun () ->
        with_tmp_dir (fun dir ->
            let s = make_pstore ~dir () in
            commit_n s 10;
            let v = Store.version s in
            Store.close s;
            write_file (Durable_log.log_file dir ^ ".tmp") "torn garbage";
            (match reopen ~dir () with
            | Error e -> Alcotest.failf "reopen: %s" (Error.message e)
            | Ok s' ->
                check Alcotest.int "head" v (Store.version s');
                Store.close s');
            check Alcotest.bool "tmp removed" false
              (Sys.file_exists (Durable_log.log_file dir ^ ".tmp"))));
  ]

(* ------------------------------------------------------------------ *)
(* The torn-compaction crash matrix                                    *)
(* ------------------------------------------------------------------ *)

exception Killed

let copy_dir src dst =
  List.iter
    (fun f ->
      let p = Filename.concat src f in
      if Sys.file_exists p then write_file (Filename.concat dst f) (read_file p))
    [ "log.bin"; "snapshot.bin" ]

(* Kill at every tick of the compaction path — the snapshot write, each
   tmp record write, the fsync, the rename and the fd switch-over — and
   recovery must reach the exact pre-kill head from whichever of the
   old or new log the crash left behind. *)
let crash_matrix_test () =
  with_tmp_dir (fun base ->
      let s = make_pstore ~dir:base () in
      commit_n s 12;
      let v = Store.version s in
      let va = Store.view_a s and vb = Store.view_b s in
      Store.close s;
      let completed = ref 0 in
      for kill_at = 1 to 24 do
        with_tmp_dir (fun dir ->
            copy_dir base dir;
            match reopen ~dir () with
            | Error e -> Alcotest.failf "reopen: %s" (Error.message e)
            | Ok s ->
                Durable_log.set_kill_at ~exit:(fun () -> raise Killed)
                  (Some kill_at);
                (match Store.compact s with
                | Ok _ -> incr completed
                | Error e ->
                    Alcotest.failf "kill_at=%d: typed error instead of kill: %s"
                      kill_at (Error.message e)
                | exception Killed -> ()
                | exception e ->
                    Durable_log.set_kill_at None;
                    raise e);
                Durable_log.set_kill_at None;
                (* the killed writer is dead; recovery reopens the dir *)
                (match reopen ~dir () with
                | Error e ->
                    Alcotest.failf "kill_at=%d: recovery failed: %s" kill_at
                      (Error.message e)
                | Ok s' ->
                    if Store.version s' <> v then
                      Alcotest.failf "kill_at=%d: recovered %d, expected %d"
                        kill_at (Store.version s') v;
                    check table
                      (Printf.sprintf "kill_at=%d A view" kill_at)
                      va (Store.view_a s');
                    check table
                      (Printf.sprintf "kill_at=%d B view" kill_at)
                      vb (Store.view_b s');
                    Store.close s');
                (* not [Store.close s]: its fd died mid-compaction *)
                ignore s)
      done;
      (* the matrix must include kill points past the end of the path —
         i.e. compactions that ran to completion untouched *)
      check Alcotest.bool "matrix covers completion" true (!completed > 0))

let crash_tests =
  [ test "torn-compaction kill matrix recovers the pre-kill head" `Quick
      crash_matrix_test ]

(* ------------------------------------------------------------------ *)
(* Routers                                                             *)
(* ------------------------------------------------------------------ *)

let shard_of_row ~shards row =
  match Rel.Row.to_list row with
  | Rel.Value.Int id :: _ -> ((id mod shards) + shards) mod shards
  | _ -> 0

let router_tests =
  [
    test "route_op: whole-view sets reach every shard" `Quick (fun () ->
        let tbl =
          Rel.Table.of_rows Rel.Workload.employees_schema
            [ base_row 3 "a" "Engineering"; base_row 6 "b" "Engineering" ]
        in
        let parts =
          Shard.Relational.route_op ~shards:3
            ~shard_of_row:(shard_of_row ~shards:3)
            (Store.Set_a tbl)
        in
        check Alcotest.int "all shards addressed" 3 (List.length parts);
        List.iter
          (fun (i, op) ->
            match op with
            | Store.Set_a p ->
                List.iter
                  (fun r ->
                    check Alcotest.int "row at its owner" i
                      (shard_of_row ~shards:3 r))
                  (Rel.Table.rows p)
            | _ -> Alcotest.fail "Set_a must stay Set_a")
          parts;
        (* shard 1 owns nothing here, but must still be overwritten *)
        match List.assoc 1 parts with
        | Store.Set_a p ->
            check Alcotest.int "empty partition still shipped" 0
              (List.length (Rel.Table.rows p))
        | _ -> Alcotest.fail "missing shard 1");
    test "route_op: delta bursts reach only their owners" `Quick (fun () ->
        let parts =
          Shard.Relational.route_op ~shards:3
            ~shard_of_row:(shard_of_row ~shards:3)
            (Store.Batch_a
               [
                 Rel.Row_delta.Add (base_row 3 "a" "Engineering");
                 Rel.Row_delta.Remove (base_row 9 "b" "Engineering");
               ])
        in
        (match parts with
        | [ (0, Store.Batch_a ds) ] ->
            check Alcotest.int "both deltas at shard 0" 2 (List.length ds)
        | _ -> Alcotest.fail "expected one part at shard 0");
        let parts =
          Shard.Relational.route_op ~shards:3
            ~shard_of_row:(shard_of_row ~shards:3)
            (Store.Batch_b
               [
                 Rel.Row_delta.Add (view_row 4 "c");
                 Rel.Row_delta.Add (view_row 5 "d");
               ])
        in
        check Alcotest.int "two owners" 2 (List.length parts));
    test "route_op: Exec is typed-unroutable" `Quick (fun () ->
        try
          ignore
            (Shard.Relational.route_op ~shards:2
               ~shard_of_row:(shard_of_row ~shards:2)
               (Store.Exec
                  (Command.Set_b
                     (Rel.Table.of_rows schema_b [ view_row 1 "x" ]))));
          Alcotest.fail "Exec must raise"
        with Error.Bx_error e ->
          check Alcotest.bool "typed Other" true (e.Error.kind = Error.Other));
    test "hash router: total, stable, in range" `Quick (fun () ->
        let route =
          Shard.Relational.hash_router ~shards:4 ~key:[ "id" ]
            Rel.Workload.employees_schema
        in
        List.iter
          (fun i ->
            let r = base_row i "n" "Sales" in
            let j = route r in
            check Alcotest.bool "in range" true (j >= 0 && j < 4);
            check Alcotest.int "stable" j (route r);
            (* key-only: the other columns must not matter *)
            check Alcotest.int "key-determined" j
              (route (base_row i "other" "Engineering")))
          [ 0; 1; 7; 42; 1000; -3 ]);
    test "range router: shard = bounds at or below the key" `Quick (fun () ->
        let route =
          Shard.Relational.range_router
            ~bounds:[ Rel.Value.Int 20; Rel.Value.Int 40 ]
            ~key:"id" Rel.Workload.employees_schema
        in
        check Alcotest.int "below both" 0 (route (base_row 5 "a" "Sales"));
        check Alcotest.int "at the first bound" 1
          (route (base_row 20 "b" "Sales"));
        check Alcotest.int "between" 1 (route (base_row 39 "c" "Sales"));
        check Alcotest.int "at the second" 2 (route (base_row 40 "d" "Sales"));
        check Alcotest.int "above both" 2 (route (base_row 99 "e" "Sales")));
  ]

(* ------------------------------------------------------------------ *)
(* Gossip and cross-shard convergence                                  *)
(* ------------------------------------------------------------------ *)

let make_group ?dirs ~shards () : Shard.Relational.rt =
  let init = Rel.Workload.employees ~seed:11 ~size:24 in
  let buckets = Array.make shards [] in
  List.iter
    (fun r ->
      let i = shard_of_row ~shards r in
      buckets.(i) <- r :: buckets.(i))
    (Rel.Table.rows init);
  let stores =
    Array.init shards (fun i ->
        let persist =
          match dirs with
          | None -> None
          | Some ds ->
              Some
                (Store.persist ~fsync:(Durable_log.Fsync_every 4) ~dir:ds.(i)
                   codec)
        in
        make_store
          ~init:
            (Rel.Table.of_rows Rel.Workload.employees_schema
               (List.rev buckets.(i)))
          ?persist
          ~name:(Printf.sprintf "employees-%d" i)
          ())
  in
  Shard.make ~stores
    ~route:
      (Shard.Relational.route_op ~shards ~shard_of_row:(shard_of_row ~shards))
    ()

let submit_ok g ~session op =
  List.iter
    (fun (i, outcome) ->
      match outcome with
      | Ok _ -> ()
      | Error e ->
          Alcotest.failf "shard %d rejected: %s" i (Error.message e))
    (Shard.submit g ~session op)

let gossip_tests =
  [
    test "gossip quiesces and the shards converge" `Quick (fun () ->
        let g = make_group ~shards:3 () in
        for i = 1 to 30 do
          submit_ok g
            ~session:(Printf.sprintf "s%d" (1 + (i mod 3)))
            (Store.Batch_a
               [ Rel.Row_delta.Add (base_row (500 + i) "gg" "Engineering") ])
        done;
        check Alcotest.bool "quiesced" true (Shard.gossip_until_quiescent g);
        check Alcotest.bool "converged" true (Shard.Relational.converged g);
        (* every shard reconstructs the same authoritative union *)
        let a = Shard.Relational.authoritative_a g in
        for i = 0 to Shard.shards g - 1 do
          check table
            (Printf.sprintf "full view of shard %d" i)
            a
            (Shard.Relational.full_view_a g i)
        done);
    test "a follower below a peer's horizon resyncs through gossip" `Quick
      (fun () ->
        let g = make_group ~shards:2 () in
        (* shard 0 runs ahead and compacts before any gossip: shard 1's
           replica (still at 0) has fallen below the horizon *)
        for i = 1 to 12 do
          submit_ok g ~session:"s1"
            (Store.Batch_a
               (* ids ≡ 0 (mod 2): every one of these lives at shard 0 *)
               [ Rel.Row_delta.Add (base_row (600 + (2 * i)) "r" "Engineering") ])
        done;
        (match Store.compact (Shard.store g 0) with
        | Ok n -> check Alcotest.bool "dropped something" true (n > 0)
        | Error e -> Alcotest.failf "compact: %s" (Error.message e));
        check Alcotest.bool "quiesced" true (Shard.gossip_until_quiescent g);
        let st = Shard.stats g in
        check Alcotest.bool "a resync happened" true (st.Shard.resyncs > 0);
        check Alcotest.bool "converged after resync" true
          (Shard.Relational.converged g));
  ]

(* The chaos seed matrix: interleaved sessions, faults on, per-shard
   crash+recover and periodic compaction, then a healed-net quiesce
   with convergence and exact head accounting. *)
let chaos_matrix_prop ~shards ~seed () =
  let g = make_group ~shards () in
  let stores = Array.init shards (Shard.store g) in
  let acked = Array.make shards 0 in
  let r = Rel.Workload.rng ~seed in
  let c = Chaos.make ~rate:0.08 ~seed () in
  Chaos.with_chaos c (fun () ->
      for i = 1 to 120 do
        let session = Printf.sprintf "s%d" (1 + (i mod 4)) in
        let id = 700 + Rel.Workload.int r 500 in
        let op =
          if Rel.Workload.int r 2 = 0 then
            Store.Batch_a [ Rel.Row_delta.Add (base_row id "cm" "Engineering") ]
          else Store.Batch_b [ Rel.Row_delta.Add (view_row id "cm") ]
        in
        List.iter
          (fun (j, outcome) ->
            match outcome with
            | Ok _ -> acked.(j) <- acked.(j) + 1
            | Error _ -> (* rolled back at that shard only *) ())
          (Shard.submit g ~session op);
        if i mod 15 = 0 then Shard.gossip_round g;
        if i mod 30 = 0 then
          Array.iter
            (function
              | Ok _ -> () | Error _ -> (* absorbed, retried later *) ())
            (Shard.compact g);
        if i mod 40 = 0 then
          Array.iter
            (fun st ->
              let v = Store.version st in
              Store.crash st;
              Store.recover st;
              if Store.version st <> v then
                Alcotest.failf "seed %d: recovery lost versions" seed)
            stores
      done);
  (* healed net: gossip must quiesce and lift the invariant *)
  Array.iteri
    (fun j st ->
      if Store.version st <> acked.(j) then
        Alcotest.failf "seed %d: shard %d head %d <> %d acked" seed j
          (Store.version st) acked.(j))
    stores;
  check Alcotest.bool
    (Printf.sprintf "seed %d quiesced" seed)
    true
    (Shard.gossip_until_quiescent ~max_rounds:(8 * shards) g);
  check Alcotest.bool
    (Printf.sprintf "seed %d converged" seed)
    true
    (Shard.Relational.converged g)

let chaos_tests =
  List.map
    (fun seed ->
      test
        (Printf.sprintf "chaos matrix: 3 shards, seed %d" seed)
        `Quick
        (chaos_matrix_prop ~shards:3 ~seed))
    [ 1; 7; 42; 20140328 ]
  @ [ test "chaos matrix: 2 shards, seed 42" `Quick
        (chaos_matrix_prop ~shards:2 ~seed:42) ]

let suite =
  oplog_tests @ store_tests @ crash_tests @ router_tests @ gossip_tests
  @ chaos_tests
