(** Durable-log suite: the on-disk oplog format and crash-point
    exhaustive recovery (see [docs/SYNC.md], "Durability").

    - format units: CRC vector, fresh-log shape, header validation;
    - crash-point matrix: for a generated 64-commit workload, truncate
      the log at {e every} record and mid-record boundary and assert
      [Store.reopen] lands on exactly the committed version the valid
      prefix holds — no partial commit ever observable — under all
      three fsync policies, with and without the snapshot file;
    - crash artifacts: duplicated tail after a re-append, missing and
      stale snapshot files;
    - corruption fuzz: random byte flips / splices either recover a
      committed prefix or return a typed [Corrupt] — never an
      unclassified exception, never a wrong state;
    - golden files: checked-in fixtures under [fixtures/durable/] parse
      byte-for-byte and today's writer reproduces them exactly
      (regenerate with [DURABLE_FIXTURE_OUT=<dir> dune exec
      test/test_main.exe -- test durable]);
    - [Oplog.entries_since] against a list-filter reference for
      arguments below the latest snapshot version and above head;
    - chaos: commits under fault injection at [sync.durable.write]
      keep disk and memory agreeing (reopen = live store).

    Like the chaos suite, the base seed comes from [CHAOS_SEED]. *)

open Esm_core
open Esm_sync
module Rel = Esm_relational

let check = Alcotest.check
let test = Alcotest.test_case

let chaos_seed =
  match Sys.getenv_opt "CHAOS_SEED" with
  | Some s -> ( try int_of_string s with _ -> 42)
  | None -> 42

(* ------------------------------------------------------------------ *)
(* Temp dirs and file helpers                                          *)
(* ------------------------------------------------------------------ *)

let tmp_count = ref 0

let with_tmp_dir (f : string -> 'a) : 'a =
  incr tmp_count;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "esm-durable-%d-%d" (Unix.getpid ()) !tmp_count)
  in
  let rec rm path =
    if Sys.is_directory path then (
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path)
    else Sys.remove path
  in
  if Sys.file_exists dir then rm dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* Lay out a log directory from raw bytes (snapshot optional). *)
let make_dir ~dir ~log ~snapshot =
  write_file (Durable_log.log_file dir) log;
  (match snapshot with
  | Some s -> write_file (Durable_log.snapshot_file dir) s
  | None ->
      if Sys.file_exists (Durable_log.snapshot_file dir) then
        Sys.remove (Durable_log.snapshot_file dir))

(* ------------------------------------------------------------------ *)
(* The store under test (as in test_sync: employees where|select)      *)
(* ------------------------------------------------------------------ *)

let eng_lens =
  Rel.Query.lens_of_string ~schema:Rel.Workload.employees_schema
    ~key:[ "id" ]
    {|employees | where dept = "Engineering" | select id, name, dept|}

let schema_b =
  Rel.Table.schema
    (Esm_lens.Lens.get eng_lens (Rel.Workload.employees ~seed:1 ~size:1))

let codec =
  Wire.durable_op_codec ~schema_a:Rel.Workload.employees_schema ~schema_b

let packed ?(seed = 11) ?(size = 16) () =
  Concrete.packed_of_lens ~vwb:false
    ~init:(Rel.Workload.employees ~seed ~size)
    ~eq_state:Rel.Table.equal eng_lens

let make_pstore ?(seed = 11) ?(size = 16) ?(snapshot_every = 8)
    ?(fsync = Durable_log.Fsync_never) ~dir () : Wire.rstore =
  Store.of_packed ~name:"employees" ~snapshot_every
    ~apply_da:Rel.Row_delta.apply_all ~apply_db:Rel.Row_delta.apply_all
    ~persist:(Store.persist ~fsync ~dir codec)
    (packed ~seed ~size ())

let reopen ?(snapshot_every = 8) ~dir () :
    (Wire.rstore, Error.t) result =
  Store.reopen ~name:"employees" ~snapshot_every
    ~apply_da:Rel.Row_delta.apply_all ~apply_db:Rel.Row_delta.apply_all
    ~codec ~dir (packed ())

let view_row i name =
  Rel.Row.of_list
    [ Rel.Value.Int i; Rel.Value.Str name; Rel.Value.Str "Engineering" ]

let base_row i name dept =
  Rel.Row.of_list
    [
      Rel.Value.Int i;
      Rel.Value.Str name;
      Rel.Value.Str dept;
      Rel.Value.Int 50_000;
      Rel.Value.Str (name ^ "@example.com");
    ]

(* A deterministic workload of [commits] committed operations (every
   one succeeds), returning the committed history: [history.(v)] is
   (A view, B view) at version [v]. *)
let run_workload ?(seed = 7) ~commits (store : Wire.rstore) :
    (Rel.Table.t * Rel.Table.t) array =
  let r = Rel.Workload.rng ~seed in
  let fresh = ref 90_000 in
  let history = Array.make (commits + 1) (Store.view_a store, Store.view_b store) in
  for v = 1 to commits do
    let b_rows = Rel.Table.rows (Store.view_b store) in
    let op =
      match Rel.Workload.int r 4 with
      | 0 ->
          incr fresh;
          Store.Batch_a
            [
              Rel.Row_delta.Add
                (base_row !fresh
                   ("a" ^ string_of_int !fresh)
                   (Rel.Workload.pick r [ "Engineering"; "Sales" ]));
            ]
      | 1 when b_rows <> [] ->
          Store.Batch_b [ Rel.Row_delta.Remove (Rel.Workload.pick r b_rows) ]
      | 2 ->
          incr fresh;
          Store.Set_b
            (Rel.Table.insert (Store.view_b store)
               (view_row !fresh ("s" ^ string_of_int !fresh)))
      | _ ->
          incr fresh;
          Store.Batch_b
            [
              Rel.Row_delta.Add (view_row !fresh ("b" ^ string_of_int !fresh));
              Rel.Row_delta.Add
                (view_row (!fresh + 100_000) ("c" ^ string_of_int !fresh));
            ]
    in
    (match Store.commit ~session:(if v mod 2 = 0 then "s1" else "s2") store op with
    | Ok v' -> check Alcotest.int "dense commit" v v'
    | Error e -> Alcotest.failf "workload commit %d failed: %s" v (Error.message e));
    history.(v) <- (Store.view_a store, Store.view_b store)
  done;
  history

let check_reopened ~msg (history : (Rel.Table.t * Rel.Table.t) array)
    (store : Wire.rstore) : unit =
  let v = Store.version store in
  check Alcotest.int (msg ^ ": version = head") (Store.head_version store) v;
  if v < 0 || v >= Array.length history then
    Alcotest.failf "%s: recovered version %d outside committed range" msg v;
  let va, vb = history.(v) in
  check Alcotest.bool (msg ^ ": A view committed") true
    (Rel.Table.equal va (Store.view_a store));
  check Alcotest.bool (msg ^ ": B view committed") true
    (Rel.Table.equal vb (Store.view_b store))

(* Record boundaries of a log byte string: the offsets where each
   record starts, plus the end offset. *)
let record_offsets (log : string) : int list =
  let rec go off acc =
    if off + 9 > String.length log then List.rev (off :: acc)
    else
      let len = Int32.to_int (String.get_int32_le log (off + 1)) in
      go (off + 9 + len) (off :: acc)
  in
  go 8 []

(* ------------------------------------------------------------------ *)
(* Format units                                                        *)
(* ------------------------------------------------------------------ *)

let format_tests =
  [
    test "crc32 matches the IEEE check vector" `Quick (fun () ->
        check Alcotest.int32 "123456789" 0xCBF43926l
          (Durable_log.crc32 "123456789");
        check Alcotest.int32 "empty" 0l (Durable_log.crc32 ""));
    test "a fresh log is header-only and loads empty" `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let w = Durable_log.create ~dir ~fsync:Durable_log.Fsync_never () in
            Durable_log.close w;
            let bytes = read_file (Durable_log.log_file dir) in
            check Alcotest.int "8-byte header" 8 (String.length bytes);
            check Alcotest.string "magic" "ESMLOG" (String.sub bytes 0 6);
            check Alcotest.int "format version byte"
              Durable_log.format_version
              (Char.code bytes.[6]);
            match Durable_log.load ~dir with
            | Ok r ->
                check Alcotest.int "no entries" 0 (List.length r.Durable_log.entries);
                check Alcotest.bool "no snapshot" true (r.Durable_log.snapshot = None)
            | Error e -> Alcotest.failf "load failed: %s" (Error.message e)));
    test "a missing log directory is a typed Corrupt" `Quick (fun () ->
        match Durable_log.load ~dir:"/nonexistent/esm-durable" with
        | Ok _ -> Alcotest.fail "expected Corrupt"
        | Error e -> check Alcotest.bool "kind" true (e.Error.kind = Error.Corrupt));
    test "a bumped format version byte is refused as Corrupt" `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let store = make_pstore ~dir () in
            let _ = run_workload ~commits:3 store in
            Store.close store;
            let log = read_file (Durable_log.log_file dir) in
            let bumped = Bytes.of_string log in
            Bytes.set bumped 6 (Char.chr (Durable_log.format_version + 1));
            make_dir ~dir ~log:(Bytes.to_string bumped) ~snapshot:None;
            match reopen ~dir () with
            | Ok _ -> Alcotest.fail "expected Corrupt"
            | Error e ->
                check Alcotest.bool "kind" true (e.Error.kind = Error.Corrupt)));
    test "corrupt error kind has a wire name" `Quick (fun () ->
        check Alcotest.string "name" "corrupt" (Error.kind_name Error.Corrupt);
        match
          Wire.parse_response
            (Wire.render_response (Wire.Resp_error (Error.Corrupt, "boom")))
        with
        | Wire.Resp_error (Error.Corrupt, "boom") -> ()
        | r -> Alcotest.failf "roundtrip lost: %s" (Wire.render_response r));
  ]

(* ------------------------------------------------------------------ *)
(* Basic persistence roundtrip                                         *)
(* ------------------------------------------------------------------ *)

let roundtrip_tests =
  [
    test "reopen reproduces the live store exactly" `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let store = make_pstore ~dir ~snapshot_every:4 () in
            let history = run_workload ~commits:10 store in
            Store.close store;
            match reopen ~snapshot_every:4 ~dir () with
            | Error e -> Alcotest.failf "reopen failed: %s" (Error.message e)
            | Ok r ->
                check Alcotest.int "head" 10 (Store.head_version r);
                check_reopened ~msg:"roundtrip" history r;
                check
                  Alcotest.(list string)
                  "sessions preserved" [ "s1"; "s2" ] (Store.log_sessions r);
                Store.close r));
    test "a reopened store keeps committing and reopens again" `Quick
      (fun () ->
        with_tmp_dir (fun dir ->
            let store = make_pstore ~dir ~snapshot_every:4 () in
            let _ = run_workload ~commits:6 store in
            Store.close store;
            let r1 =
              match reopen ~snapshot_every:4 ~dir () with
              | Ok r -> r
              | Error e -> Alcotest.failf "reopen 1: %s" (Error.message e)
            in
            (match
               Store.commit ~session:"s3" r1
                 (Store.Batch_b [ Rel.Row_delta.Add (view_row 77_001 "new") ])
             with
            | Ok v -> check Alcotest.int "continues at 7" 7 v
            | Error e -> Alcotest.failf "commit after reopen: %s" (Error.message e));
            let va = Store.view_a r1 and vb = Store.view_b r1 in
            Store.close r1;
            match reopen ~snapshot_every:4 ~dir () with
            | Error e -> Alcotest.failf "reopen 2: %s" (Error.message e)
            | Ok r2 ->
                check Alcotest.int "head 7" 7 (Store.head_version r2);
                check Alcotest.bool "A view" true
                  (Rel.Table.equal va (Store.view_a r2));
                check Alcotest.bool "B view" true
                  (Rel.Table.equal vb (Store.view_b r2));
                Store.close r2));
    test "persist starts fresh: an existing log is truncated" `Quick
      (fun () ->
        with_tmp_dir (fun dir ->
            let s1 = make_pstore ~dir () in
            let _ = run_workload ~commits:5 s1 in
            Store.close s1;
            let s2 = make_pstore ~dir () in
            check Alcotest.bool "persisted" true (Store.persisted s2);
            Store.close s2;
            match reopen ~dir () with
            | Ok r ->
                check Alcotest.int "empty again" 0 (Store.head_version r);
                Store.close r
            | Error e -> Alcotest.failf "reopen: %s" (Error.message e)));
    test "an in-memory store is not persisted" `Quick (fun () ->
        let store : Wire.rstore =
          Store.of_packed ~name:"mem" ~apply_db:Rel.Row_delta.apply_all
            (packed ())
        in
        check Alcotest.bool "not persisted" false (Store.persisted store);
        Store.flush store;
        Store.close store);
    test "Exec ops refuse to persist with a typed error" `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let store = make_pstore ~dir () in
            let res =
              Store.commit ~session:"s1" store
                (Store.Exec (Command.Set_b (Store.view_b store)))
            in
            (match res with
            | Ok _ -> Alcotest.fail "expected a typed error"
            | Error e ->
                check Alcotest.bool "Other kind" true (e.Error.kind = Error.Other));
            check Alcotest.int "nothing committed" 0 (Store.version store);
            Store.close store;
            match reopen ~dir () with
            | Ok r ->
                check Alcotest.int "nothing on disk" 0 (Store.head_version r);
                Store.close r
            | Error e -> Alcotest.failf "reopen: %s" (Error.message e)));
  ]

(* ------------------------------------------------------------------ *)
(* Crash-point matrix                                                  *)
(* ------------------------------------------------------------------ *)

(* Truncate the committed log at every record boundary and a spread of
   mid-record offsets; each prefix must reopen to exactly the committed
   version it holds. *)
let crash_point_matrix ~fsync ~with_snapshot () =
  with_tmp_dir (fun dir ->
      let store = make_pstore ~dir ~fsync ~snapshot_every:8 () in
      let history = run_workload ~commits:64 store in
      Store.close store;
      let log = read_file (Durable_log.log_file dir) in
      let snapshot =
        let path = Durable_log.snapshot_file dir in
        if with_snapshot && Sys.file_exists path then Some (read_file path)
        else None
      in
      let offsets = record_offsets log in
      let boundaries = Array.of_list offsets in
      let n_records = Array.length boundaries - 1 in
      check Alcotest.int "one record per commit" 64 n_records;
      check Alcotest.int "offsets end at the file size" (String.length log)
        boundaries.(n_records);
      let checked = ref 0 in
      with_tmp_dir (fun scratch ->
          let try_at ~expect_head cut =
            make_dir ~dir:scratch ~log:(String.sub log 0 cut) ~snapshot;
            (match reopen ~snapshot_every:8 ~dir:scratch () with
            | Error e ->
                Alcotest.failf "cut at %d (%s): reopen failed: %s" cut
                  (Durable_log.fsync_name fsync) (Error.message e)
            | Ok r ->
                check Alcotest.int
                  (Printf.sprintf "cut at %d: head" cut)
                  expect_head (Store.head_version r);
                check_reopened
                  ~msg:(Printf.sprintf "cut at %d" cut)
                  history r;
                Store.close r);
            incr checked
          in
          for i = 0 to n_records do
            let b = boundaries.(i) in
            (* the clean boundary: exactly i complete records *)
            try_at ~expect_head:i b;
            if i < n_records then begin
              let next = boundaries.(i + 1) in
              (* torn header, torn payload start, torn mid-payload,
                 one byte short of complete *)
              try_at ~expect_head:i (b + 1);
              try_at ~expect_head:i (min next (b + 9));
              try_at ~expect_head:i (b + ((next - b) / 2));
              try_at ~expect_head:i (next - 1)
            end
          done);
      check Alcotest.bool "matrix visited every boundary" true (!checked > 4 * 64))

let matrix_tests =
  List.concat_map
    (fun fsync ->
      [
        test
          (Printf.sprintf
             "crash-point matrix (64 commits, fsync=%s, with snapshot)"
             (Durable_log.fsync_name fsync))
          `Slow
          (crash_point_matrix ~fsync ~with_snapshot:true);
      ])
    [ Durable_log.Fsync_always; Durable_log.Fsync_every 8; Durable_log.Fsync_never ]
  @ [
      test "crash-point matrix without a snapshot file (full replay)" `Slow
        (crash_point_matrix ~fsync:Durable_log.Fsync_never
           ~with_snapshot:false);
    ]

(* ------------------------------------------------------------------ *)
(* Crash artifacts: duplicated tail, stale snapshot                    *)
(* ------------------------------------------------------------------ *)

let artifact_tests =
  [
    test "a duplicated tail after a re-append deduplicates" `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let store = make_pstore ~dir ~snapshot_every:4 () in
            let history = run_workload ~commits:9 store in
            Store.close store;
            let log = read_file (Durable_log.log_file dir) in
            let offsets = Array.of_list (record_offsets log) in
            let n = Array.length offsets - 1 in
            (* re-append the last two records verbatim *)
            let tail =
              String.sub log offsets.(n - 2) (offsets.(n) - offsets.(n - 2))
            in
            make_dir ~dir ~log:(log ^ tail)
              ~snapshot:
                (let p = Durable_log.snapshot_file dir in
                 if Sys.file_exists p then Some (read_file p) else None);
            (match Durable_log.load ~dir with
            | Ok r ->
                check Alcotest.int "two duplicates dropped" 2 r.Durable_log.duplicates
            | Error e -> Alcotest.failf "load: %s" (Error.message e));
            match reopen ~snapshot_every:4 ~dir () with
            | Error e -> Alcotest.failf "reopen: %s" (Error.message e)
            | Ok r ->
                check Alcotest.int "head still 9" 9 (Store.head_version r);
                check_reopened ~msg:"dup tail" history r;
                Store.close r));
    test "a snapshot ahead of a truncated log is ignored" `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let store = make_pstore ~dir ~snapshot_every:4 () in
            let history = run_workload ~commits:10 store in
            Store.close store;
            let log = read_file (Durable_log.log_file dir) in
            let offsets = Array.of_list (record_offsets log) in
            (* keep only 2 records: below the version-8 snapshot *)
            make_dir ~dir
              ~log:(String.sub log 0 offsets.(2))
              ~snapshot:(Some (read_file (Durable_log.snapshot_file dir)));
            match reopen ~snapshot_every:4 ~dir () with
            | Error e -> Alcotest.failf "reopen: %s" (Error.message e)
            | Ok r ->
                check Alcotest.int "head 2" 2 (Store.head_version r);
                check_reopened ~msg:"stale snapshot" history r;
                Store.close r));
    test "a garbled snapshot file falls back to full replay" `Quick (fun () ->
        with_tmp_dir (fun dir ->
            let store = make_pstore ~dir ~snapshot_every:4 () in
            let history = run_workload ~commits:10 store in
            Store.close store;
            let snap = read_file (Durable_log.snapshot_file dir) in
            let garbled = Bytes.of_string snap in
            Bytes.set garbled (String.length snap / 2)
              (Char.chr
                 ((Char.code snap.[String.length snap / 2] + 1) land 0xFF));
            write_file (Durable_log.snapshot_file dir) (Bytes.to_string garbled);
            match reopen ~snapshot_every:4 ~dir () with
            | Error e -> Alcotest.failf "reopen: %s" (Error.message e)
            | Ok r ->
                check Alcotest.int "head 10" 10 (Store.head_version r);
                check_reopened ~msg:"garbled snapshot" history r;
                Store.close r));
  ]

(* ------------------------------------------------------------------ *)
(* Corruption fuzz                                                     *)
(* ------------------------------------------------------------------ *)

(* One prepared valid log (bytes + committed history), shared across
   fuzz cases. *)
let fuzz_fixture =
  lazy
    (with_tmp_dir (fun dir ->
         let store = make_pstore ~dir ~snapshot_every:8 () in
         let history = run_workload ~commits:24 store in
         Store.close store;
         let log = read_file (Durable_log.log_file dir) in
         let snap = read_file (Durable_log.snapshot_file dir) in
         (log, snap, history)))

let fuzz_prop (case_seed : int) : bool =
  let log, snap, history = Lazy.force fuzz_fixture in
  let r = Rel.Workload.rng ~seed:(chaos_seed + (7919 * case_seed)) in
  let mutate (s : string) : string =
    match Rel.Workload.int r 3 with
    | 0 ->
        (* flip one byte anywhere (header included) *)
        let i = Rel.Workload.int r (String.length s) in
        let b = Bytes.of_string s in
        Bytes.set b i (Char.chr (Char.code s.[i] lxor (1 + Rel.Workload.int r 255)));
        Bytes.to_string b
    | 1 ->
        (* splice garbage at a random offset *)
        let i = Rel.Workload.int r (String.length s + 1) in
        let n = 1 + Rel.Workload.int r 16 in
        let garbage = String.init n (fun _ -> Char.chr (Rel.Workload.int r 256)) in
        String.sub s 0 i ^ garbage ^ String.sub s i (String.length s - i)
    | _ ->
        (* overwrite a short run in place *)
        let n = 1 + Rel.Workload.int r 8 in
        let i = Rel.Workload.int r (max 1 (String.length s - n)) in
        let b = Bytes.of_string s in
        for j = i to min (String.length s - 1) (i + n - 1) do
          Bytes.set b j (Char.chr (Rel.Workload.int r 256))
        done;
        Bytes.to_string b
  in
  with_tmp_dir (fun dir ->
      make_dir ~dir ~log:(mutate log) ~snapshot:(Some snap);
      match reopen ~snapshot_every:8 ~dir () with
      | Ok r ->
          (* recovered: must be exactly some committed prefix *)
          let v = Store.version r in
          let ok =
            v = Store.head_version r
            && v >= 0
            && v < Array.length history
            &&
            let va, vb = history.(v) in
            Rel.Table.equal va (Store.view_a r)
            && Rel.Table.equal vb (Store.view_b r)
          in
          Store.close r;
          ok
      | Error e -> e.Error.kind = Error.Corrupt
      | exception exn ->
          Alcotest.failf "unclassified exception: %s" (Printexc.to_string exn))

let fuzz_tests =
  [
    QCheck.Test.make ~count:150
      ~name:"corruption fuzz: reopen recovers a committed prefix or is Corrupt"
      QCheck.small_nat fuzz_prop;
  ]

(* ------------------------------------------------------------------ *)
(* Golden format fixtures                                              *)
(* ------------------------------------------------------------------ *)

(* The canonical fixture store: fixed seed/size, snapshot at 4, five
   commits with every persistable op shape and a nasty string. *)
let fixture_commits (store : Wire.rstore) : unit =
  let commit session op =
    match Store.commit ~session store op with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "fixture commit failed: %s" (Error.message e)
  in
  commit "alice" (Store.Batch_b [ Rel.Row_delta.Add (view_row 9001 "nina") ]);
  commit "bob"
    (Store.Batch_a
       [
         Rel.Row_delta.Add (base_row 9002 {|o"mar; x|} "Engineering");
         Rel.Row_delta.Add (base_row 9003 "pia" "Sales");
       ]);
  commit "alice" (Store.Batch_b [ Rel.Row_delta.Remove (view_row 9001 "nina") ]);
  commit "alice" (Store.Set_b (Rel.Table.insert (Store.view_b store) (view_row 9004 "quinn")));
  commit "bob" (Store.Batch_b [ Rel.Row_delta.Add (view_row 9005 "rosa") ])

let build_fixture (dir : string) : unit =
  let store = make_pstore ~seed:11 ~size:8 ~snapshot_every:4 ~dir () in
  fixture_commits store;
  Store.close store

let fixture_dir = Filename.concat "fixtures" "durable"

let golden_tests =
  [
    test "golden log parses to the expected entries" `Quick (fun () ->
        with_tmp_dir (fun dir ->
            make_dir ~dir
              ~log:(read_file (Filename.concat fixture_dir "v1.log"))
              ~snapshot:
                (Some (read_file (Filename.concat fixture_dir "v1.snapshot")));
            (match Durable_log.load ~dir with
            | Error e -> Alcotest.failf "load: %s" (Error.message e)
            | Ok r ->
                check Alcotest.int "five entries" 5
                  (List.length r.Durable_log.entries);
                check Alcotest.int "no torn bytes" 0 r.Durable_log.torn_bytes;
                check
                  Alcotest.(list (pair int string))
                  "versions and sessions"
                  [ (1, "alice"); (2, "bob"); (3, "alice"); (4, "alice"); (5, "bob") ]
                  (List.map
                     (fun (e : Durable_log.raw_entry) ->
                       (e.Durable_log.version, e.Durable_log.session))
                     r.Durable_log.entries);
                (match r.Durable_log.snapshot with
                | Some (4, _) -> ()
                | Some (v, _) -> Alcotest.failf "snapshot at %d, expected 4" v
                | None -> Alcotest.fail "snapshot missing");
                check Alcotest.bool "ops decode" true
                  (List.for_all
                     (fun (e : Durable_log.raw_entry) ->
                       match codec.Store.decode_op e.Durable_log.payload with
                       | _ -> true
                       | exception _ -> false)
                     r.Durable_log.entries));
            match reopen ~snapshot_every:4 ~dir () with
            | Error e -> Alcotest.failf "reopen: %s" (Error.message e)
            | Ok r ->
                check Alcotest.int "head 5" 5 (Store.head_version r);
                check Alcotest.bool "nasty string survived" true
                  (List.exists
                     (fun row ->
                       List.exists
                         (fun v -> v = Rel.Value.Str {|o"mar; x|})
                         (Rel.Row.to_list row))
                     (Rel.Table.rows (Store.view_a r)));
                Store.close r));
    test "today's writer reproduces the golden files byte-for-byte" `Quick
      (fun () ->
        (* regeneration hook: DURABLE_FIXTURE_OUT=<dir> writes fresh
           fixtures instead of comparing — used when the format or the
           canonical workload changes deliberately *)
        (match Sys.getenv_opt "DURABLE_FIXTURE_OUT" with
        | Some out ->
            with_tmp_dir (fun dir ->
                build_fixture dir;
                let cp src dst =
                  write_file (Filename.concat out dst)
                    (read_file (Filename.concat dir src))
                in
                cp "log.bin" "v1.log";
                cp "snapshot.bin" "v1.snapshot";
                (* derived crash artifacts: a torn tail (last 5 bytes
                   lost) and a flipped byte inside entry 2's payload *)
                let log = read_file (Filename.concat dir "log.bin") in
                write_file (Filename.concat out "torn.log")
                  (String.sub log 0 (String.length log - 5));
                let offsets = Array.of_list (record_offsets log) in
                let b = Bytes.of_string log in
                let mid = offsets.(1) + 9 + ((offsets.(2) - offsets.(1) - 9) / 2) in
                Bytes.set b mid (Char.chr (Char.code log.[mid] lxor 0x20));
                write_file (Filename.concat out "corrupt.log") (Bytes.to_string b))
        | None -> ());
        with_tmp_dir (fun dir ->
            build_fixture dir;
            check Alcotest.string "log bytes"
              (read_file (Filename.concat fixture_dir "v1.log"))
              (read_file (Filename.concat dir "log.bin"));
            check Alcotest.string "snapshot bytes"
              (read_file (Filename.concat fixture_dir "v1.snapshot"))
              (read_file (Filename.concat dir "snapshot.bin"))));
    test "golden torn log truncates to four entries" `Quick (fun () ->
        with_tmp_dir (fun dir ->
            make_dir ~dir
              ~log:(read_file (Filename.concat fixture_dir "torn.log"))
              ~snapshot:None;
            match Durable_log.load ~dir with
            | Error e -> Alcotest.failf "load: %s" (Error.message e)
            | Ok r ->
                check Alcotest.int "four entries" 4
                  (List.length r.Durable_log.entries);
                check Alcotest.bool "torn bytes reported" true
                  (r.Durable_log.torn_bytes > 0)));
    test "golden corrupt log is a typed Corrupt" `Quick (fun () ->
        with_tmp_dir (fun dir ->
            make_dir ~dir
              ~log:(read_file (Filename.concat fixture_dir "corrupt.log"))
              ~snapshot:None;
            match Durable_log.load ~dir with
            | Ok _ -> Alcotest.fail "expected Corrupt"
            | Error e ->
                check Alcotest.bool "kind" true (e.Error.kind = Error.Corrupt)));
  ]

(* ------------------------------------------------------------------ *)
(* Oplog.entries_since against a reference implementation             *)
(* ------------------------------------------------------------------ *)

(* The reference: a plain list filter over everything appended, oldest
   first — no early exit, no assumptions. *)
let entries_since_prop (seed : int) : bool =
  let r = Rel.Workload.rng ~seed in
  let n = Rel.Workload.int r 30 in
  let log = Oplog.create ~snapshot_every:3 ~init:"s0" () in
  let appended = ref [] in
  for i = 1 to n do
    let op = Printf.sprintf "op%d" i in
    let session = Rel.Workload.pick r [ "x"; "y"; "z" ] in
    let v = Oplog.append log ~session op in
    appended := (v, op) :: !appended;
    if Oplog.snapshot_due log then
      Oplog.record_snapshot log v (Printf.sprintf "s%d" v)
  done;
  let reference v =
    List.filter (fun (v', _) -> v' > v) (List.rev !appended)
  in
  (* sweep far below 0 (and below the latest snapshot version) to far
     above head *)
  List.for_all
    (fun v ->
      let got =
        List.map
          (fun (e : _ Oplog.entry) -> (e.Oplog.version, e.Oplog.op))
          (Oplog.entries_since log v)
      in
      got = reference v)
    (List.init (n + 11) (fun i -> i - 5))

let entries_since_qcheck =
  [
    QCheck.Test.make ~count:200
      ~name:"Oplog.entries_since equals the list-filter reference everywhere"
      QCheck.small_nat entries_since_prop;
  ]

let entries_since_tests =
  [
    test "entries_since is total out of range" `Quick (fun () ->
        let log = Oplog.create ~snapshot_every:2 ~init:"s0" () in
        for i = 1 to 6 do
          let v = Oplog.append log ~session:"x" (Printf.sprintf "op%d" i) in
          if Oplog.snapshot_due log then
            Oplog.record_snapshot log v (Printf.sprintf "s%d" v)
        done;
        let snap_v, _ = Oplog.latest_snapshot log in
        check Alcotest.int "snapshot recorded at 6" 6 snap_v;
        check Alcotest.int "below latest snapshot: full suffix" 4
          (List.length (Oplog.entries_since log 2));
        check Alcotest.int "far below zero: everything" 6
          (List.length (Oplog.entries_since log (-100)));
        check Alcotest.int "at head: nothing" 0
          (List.length (Oplog.entries_since log 6));
        check Alcotest.int "far above head: nothing" 0
          (List.length (Oplog.entries_since log 1000)));
  ]

(* ------------------------------------------------------------------ *)
(* Chaos: the persistence path under fault injection                   *)
(* ------------------------------------------------------------------ *)

let next_case = ref 0

let durable_chaos_prop (seed : int) : bool =
  incr next_case;
  let c = Chaos.make ~rate:0.2 ~seed:(chaos_seed + (1000 * !next_case)) () in
  with_tmp_dir (fun dir ->
      let store = make_pstore ~dir ~snapshot_every:3 () in
      let fresh = ref (50_000 + (100 * seed)) in
      Chaos.with_chaos c (fun () ->
          for _ = 1 to 15 do
            incr fresh;
            (* failed commits (injected faults, durable-write faults
               included) must abort whole — allowed here *)
            ignore
              (Store.commit ~session:"s1" store
                 (Store.Batch_b
                    [ Rel.Row_delta.Add (view_row !fresh ("w" ^ string_of_int !fresh)) ]))
          done);
      let va = Store.view_a store and vb = Store.view_b store in
      let v = Store.version store in
      Store.close store;
      match reopen ~snapshot_every:3 ~dir () with
      | Error e -> Alcotest.failf "reopen after chaos: %s" (Error.message e)
      | Ok rstore ->
          let ok =
            Store.version rstore = v
            && Rel.Table.equal va (Store.view_a rstore)
            && Rel.Table.equal vb (Store.view_b rstore)
          in
          Store.close rstore;
          ok)

let chaos_tests =
  [
    QCheck.Test.make ~count:40
      ~name:"chaos at sync.durable.write keeps disk and memory agreeing"
      QCheck.small_nat durable_chaos_prop;
  ]

let suite =
  format_tests @ roundtrip_tests @ matrix_tests @ artifact_tests
  @ golden_tests @ entries_since_tests
  @ Helpers.q (entries_since_qcheck @ fuzz_tests @ chaos_tests)
