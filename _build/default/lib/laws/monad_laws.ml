(** Property-based checkers for the three monad laws of Section 2 of the
    paper:

    - left unit:  [return a >>= f  =  f a]
    - right unit: [ma >>= return  =  ma]
    - associativity: [ma >>= (fun a -> f a >>= g)  =  (ma >>= f) >>= g]

    Equality of computations is read extensionally: both sides are [run]
    against sampled worlds and the observable results compared. *)

module Make (M : Runnable.RUNNABLE) = struct
  let default_count = 500

  let left_unit ?(count = default_count) ~name ~(gen_a : 'a QCheck.arbitrary)
      ~(gen_world : M.world QCheck.arbitrary) ~(f : 'a -> 'b M.t)
      ~(eq_b : 'b Equality.t) () : QCheck.Test.t =
    QCheck.Test.make ~count ~name:(name ^ ": return a >>= f = f a")
      (QCheck.pair gen_a gen_world)
      (fun (a, w) ->
        M.equal_result eq_b
          (M.run (M.bind (M.return a) f) w)
          (M.run (f a) w))

  let right_unit ?(count = default_count) ~name
      ~(gen_ma : 'a M.t QCheck.arbitrary)
      ~(gen_world : M.world QCheck.arbitrary) ~(eq_a : 'a Equality.t) () :
      QCheck.Test.t =
    QCheck.Test.make ~count ~name:(name ^ ": ma >>= return = ma")
      (QCheck.pair gen_ma gen_world)
      (fun (ma, w) ->
        M.equal_result eq_a (M.run (M.bind ma M.return) w) (M.run ma w))

  let assoc ?(count = default_count) ~name ~(gen_ma : 'a M.t QCheck.arbitrary)
      ~(gen_world : M.world QCheck.arbitrary) ~(f : 'a -> 'b M.t)
      ~(g : 'b -> 'c M.t) ~(eq_c : 'c Equality.t) () : QCheck.Test.t =
    QCheck.Test.make ~count
      ~name:(name ^ ": (ma >>= f) >>= g = ma >>= (f >=> g)")
      (QCheck.pair gen_ma gen_world)
      (fun (ma, w) ->
        M.equal_result eq_c
          (M.run (M.bind (M.bind ma f) g) w)
          (M.run (M.bind ma (fun a -> M.bind (f a) g)) w))
end
