lib/laws/runnable.ml:
