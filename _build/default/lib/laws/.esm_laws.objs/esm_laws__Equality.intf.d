lib/laws/equality.mli:
