lib/laws/cell_laws.ml: Equality QCheck Runnable
