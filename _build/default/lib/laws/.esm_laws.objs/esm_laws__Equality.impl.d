lib/laws/equality.ml: Bool Int List String
