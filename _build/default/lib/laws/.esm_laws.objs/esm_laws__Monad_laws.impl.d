lib/laws/monad_laws.ml: Equality QCheck Runnable
