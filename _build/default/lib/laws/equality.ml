(** Equality-function combinators used when instantiating law checkers. *)

type 'a t = 'a -> 'a -> bool

let unit : unit t = fun () () -> true
let int : int t = Int.equal
let bool : bool t = Bool.equal
let string : string t = String.equal
let poly : 'a t = fun a b -> a = b

let pair (eq_a : 'a t) (eq_b : 'b t) : ('a * 'b) t =
 fun (a1, b1) (a2, b2) -> eq_a a1 a2 && eq_b b1 b2

let triple (eq_a : 'a t) (eq_b : 'b t) (eq_c : 'c t) : ('a * 'b * 'c) t =
 fun (a1, b1, c1) (a2, b2, c2) -> eq_a a1 a2 && eq_b b1 b2 && eq_c c1 c2

let option (eq_a : 'a t) : 'a option t =
 fun o1 o2 ->
  match (o1, o2) with
  | None, None -> true
  | Some a1, Some a2 -> eq_a a1 a2
  | None, Some _ | Some _, None -> false

let list (eq_a : 'a t) : 'a list t =
 fun l1 l2 ->
  List.length l1 = List.length l2 && List.for_all2 eq_a l1 l2

(** Equality up to a projection: compare the images. *)
let by (f : 'a -> 'b) (eq_b : 'b t) : 'a t = fun a1 a2 -> eq_b (f a1) (f a2)
