(** Property-based checkers for the four laws of a single mutable cell
    (paper, Section 2), applied to anything matching
    {!Runnable.RUNNABLE_CELL}:

    - (GG) [get >>= fun s -> get >>= fun s' -> k s s'  =  get >>= fun s -> k s s]
    - (GS) [get >>= set  =  return ()]
    - (SG) [set s >> get  =  set s >> return s]
    - (SS) [set s >> set s'  =  set s']

    The same functor checks the A-side and B-side laws of a set-bx
    (Section 3.1), since each side is exactly a cell structure over the
    shared entangled world.

    For (GG) we check the law at the universal continuation
    [k s s' = return (s, s')]: every other continuation factors through it
    by a further [bind], and [bind] preserves extensional equality of
    computations in all runnable monads considered here, so this single
    instance implies the general law. *)

module Make (C : Runnable.RUNNABLE_CELL) = struct
  open C

  type config = {
    name : string;  (** prefix for test names, e.g. ["of_lens.A"] *)
    count : int;
    gen_world : world QCheck.arbitrary;
    gen_value : value QCheck.arbitrary;
    eq_value : value Equality.t;
  }

  let config ?(count = 500) ~name ~gen_world ~gen_value ~eq_value () =
    { name; count; gen_world; gen_value; eq_value }

  let ( >>= ) = bind
  let ( >> ) ma mb = ma >>= fun _ -> mb

  let gg cfg : QCheck.Test.t =
    QCheck.Test.make ~count:cfg.count ~name:(cfg.name ^ " (GG)") cfg.gen_world
      (fun w ->
        let lhs = get >>= fun s -> get >>= fun s' -> return (s, s') in
        let rhs = get >>= fun s -> return (s, s) in
        equal_result
          (Equality.pair cfg.eq_value cfg.eq_value)
          (run lhs w) (run rhs w))

  let gs cfg : QCheck.Test.t =
    QCheck.Test.make ~count:cfg.count ~name:(cfg.name ^ " (GS)") cfg.gen_world
      (fun w ->
        equal_result Equality.unit (run (get >>= set) w) (run (return ()) w))

  let sg cfg : QCheck.Test.t =
    QCheck.Test.make ~count:cfg.count ~name:(cfg.name ^ " (SG)")
      (QCheck.pair cfg.gen_world cfg.gen_value)
      (fun (w, s) ->
        equal_result cfg.eq_value
          (run (set s >> get) w)
          (run (set s >> return s) w))

  let ss cfg : QCheck.Test.t =
    QCheck.Test.make ~count:cfg.count ~name:(cfg.name ^ " (SS)")
      (QCheck.triple cfg.gen_world cfg.gen_value cfg.gen_value)
      (fun (w, s, s') ->
        equal_result Equality.unit
          (run (set s >> set s') w)
          (run (set s') w))

  (** The three laws required of each side of a set-bx. *)
  let well_behaved cfg : QCheck.Test.t list = [ gg cfg; gs cfg; sg cfg ]

  (** The well-behaved laws plus (SS) — the "overwriteable" package. *)
  let overwriteable cfg : QCheck.Test.t list = well_behaved cfg @ [ ss cfg ]
end
