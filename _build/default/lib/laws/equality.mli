(** Equality-function combinators used when instantiating law checkers. *)

type 'a t = 'a -> 'a -> bool

val unit : unit t
val int : int t
val bool : bool t
val string : string t

val poly : 'a t
(** Structural equality; avoid on values containing closures. *)

val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t
val option : 'a t -> 'a option t
val list : 'a t -> 'a list t

val by : ('a -> 'b) -> 'b t -> 'a t
(** Equality up to a projection: compare the images. *)
