(** Signatures for "runnable" monads — monads whose computations can be
    executed against a world (an initial state, an input queue, …) to yield
    an observable result.

    The paper's equational laws are universally quantified equations
    between computations; executing both sides against sampled worlds and
    comparing the observable results is the standard extensional reading,
    and is exactly what the law checkers in this library do. *)

(** A monad whose computations run against a [world] to an observable
    ['a result].  Pure monads use [world = unit]. *)
module type RUNNABLE = sig
  type 'a t
  type world
  type 'a result

  val return : 'a -> 'a t
  val bind : 'a t -> ('a -> 'b t) -> 'b t
  val run : 'a t -> world -> 'a result

  val equal_result : ('a -> 'a -> bool) -> 'a result -> 'a result -> bool
  (** Equality of observations, given equality of returned values.  The
      implementor bakes in equality of whatever else the result carries
      (final state, output trace, …). *)
end

(** A runnable monad exposing one updateable cell of type [value] — the
    shape shared by the state monad itself and by {e each side} of a
    set-bx (where [value] is [a] or [b] and [world] is the entangled
    state). *)
module type RUNNABLE_CELL = sig
  include RUNNABLE

  type value

  val get : value t
  val set : value -> unit t
end
