(** Object models: the "models" of model-driven development that motivate
    the paper.  A model is a set of typed objects with numeric ids, class
    names and attribute records (possibly referencing other objects).
    Models are canonical — objects sorted by id, attributes by name — so
    structural equality is model equality. *)

type oid = int

type value = Vstr of string | Vint of int | Vbool of bool | Vref of oid

val equal_value : value -> value -> bool
val value_to_string : value -> string

type obj = {
  id : oid;
  cls : string;
  attrs : (string * value) list;  (** sorted by attribute name *)
}

val obj : id:oid -> cls:string -> (string * value) list -> obj
(** Build an object (attributes are sorted). *)

val attr : obj -> string -> value option
val set_attr : obj -> string -> value -> obj
val remove_attr : obj -> string -> obj
val equal_obj : obj -> obj -> bool

type t

exception Model_error of string

val errorf : ('a, Format.formatter, unit, 'b) format4 -> 'a

val of_objects : obj list -> t
(** Build a model; raises {!Model_error} on duplicate ids. *)

val empty : t
val objects : t -> obj list
val size : t -> int
val find : t -> oid -> obj option
val mem : t -> oid -> bool

val add : t -> obj -> t
(** Raises {!Model_error} if the id is taken. *)

val remove : t -> oid -> t

val update : t -> obj -> t
(** Replace the object with the same id (which must exist). *)

val of_class : t -> string -> obj list
val classes : t -> string list

val next_id : t -> oid
(** One past the largest id (1 on the empty model). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
