lib/modelbx/metamodel.mli: Format Model
