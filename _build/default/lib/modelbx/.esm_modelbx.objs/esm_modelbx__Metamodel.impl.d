lib/modelbx/metamodel.ml: Format List Model Option Printf String
