lib/modelbx/model.ml: Bool Format Int List Option Printf String
