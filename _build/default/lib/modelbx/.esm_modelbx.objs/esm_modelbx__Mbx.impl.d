lib/modelbx/mbx.ml: Esm_algbx List Metamodel Model Option String
