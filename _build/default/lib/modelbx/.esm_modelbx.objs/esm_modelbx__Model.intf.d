lib/modelbx/model.mli: Format
