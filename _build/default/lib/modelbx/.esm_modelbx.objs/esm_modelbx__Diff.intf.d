lib/modelbx/diff.mli: Format Model
