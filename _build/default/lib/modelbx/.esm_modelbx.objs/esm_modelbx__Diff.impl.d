lib/modelbx/diff.ml: Format Hashtbl List Model Option String
