lib/modelbx/mbx.mli: Esm_algbx Metamodel Model
