(** Model-to-model bidirectional transformations, QVT-R style — the
    setting of Stevens' algebraic bx (reference [5] of the paper), which
    Lemma 5 turns into an entangled state monad.

    A {e correspondence} declares that objects of one class in the left
    model relate to objects of another class in the right model: objects
    correspond when their {e key} attributes agree, and corresponding
    objects must also agree on the {e synced} attributes.  A {!spec} is
    a set of correspondences; it induces

    - a consistency relation on pairs of models, and
    - forward/backward restorers that create, update and delete objects
      on one side to match the other (attributes outside the
      correspondence are preserved on surviving objects and defaulted on
      created ones, per the target metamodel).

    The restorers are Correct and Hippocratic by construction (checked
    by property tests), so {!to_algbx} feeds directly into
    {!Esm_core.Of_algebraic}: editing either model through the resulting
    set-bx silently repairs the other — entanglement at MDE scale. *)

type correspondence = {
  left_class : string;
  right_class : string;
  key : (string * string) list;
      (** (left attr, right attr) pairs identifying corresponding
          objects; key values are required unique per side *)
  synced : (string * string) list;
      (** (left attr, right attr) pairs kept equal *)
}

type spec = {
  name : string;
  left_mm : Metamodel.t;
  right_mm : Metamodel.t;
  correspondences : correspondence list;
}

let v ?(name = "<mbx>") ~left_mm ~right_mm correspondences =
  { name; left_mm; right_mm; correspondences }

(* Key of an object on the chosen side: the list of key attribute
   values, or None if any is missing. *)
let key_of (side : [ `Left | `Right ]) (c : correspondence) (o : Model.obj) :
    Model.value list option =
  let names =
    List.map (match side with `Left -> fst | `Right -> snd) c.key
  in
  let values = List.map (Model.attr o) names in
  if List.for_all Option.is_some values then Some (List.map Option.get values)
  else None

let equal_key k1 k2 =
  List.length k1 = List.length k2 && List.for_all2 Model.equal_value k1 k2

let synced_values (side : [ `Left | `Right ]) (c : correspondence)
    (o : Model.obj) : Model.value option list =
  let names =
    List.map (match side with `Left -> fst | `Right -> snd) c.synced
  in
  List.map (Model.attr o) names

(* The partner of [o] in the opposite model, by key. *)
let partner (side : [ `Left | `Right ]) (c : correspondence)
    (o : Model.obj) (opposite : Model.t) : Model.obj option =
  let opposite_side = match side with `Left -> `Right | `Right -> `Left in
  let opposite_class =
    match side with `Left -> c.right_class | `Right -> c.left_class
  in
  match key_of side c o with
  | None -> None
  | Some k ->
      List.find_opt
        (fun o' ->
          match key_of opposite_side c o' with
          | Some k' -> equal_key k k'
          | None -> false)
        (Model.of_class opposite opposite_class)

(* One correspondence is consistent when the key-indexed objects match
   both ways and synced attributes agree. *)
let correspondence_consistent (c : correspondence) (left : Model.t)
    (right : Model.t) : bool =
  let check_side side model opposite =
    List.for_all
      (fun o ->
        match partner side c o opposite with
        | None -> false
        | Some o' ->
            let mine = synced_values side c o in
            let theirs =
              synced_values
                (match side with `Left -> `Right | `Right -> `Left)
                c o'
            in
            List.for_all2
              (fun v v' ->
                match (v, v') with
                | Some v, Some v' -> Model.equal_value v v'
                | _ -> false)
              mine theirs)
      (Model.of_class model
         (match side with `Left -> c.left_class | `Right -> c.right_class))
  in
  check_side `Left left right && check_side `Right right left

let consistent (spec : spec) (left : Model.t) (right : Model.t) : bool =
  List.for_all
    (fun c -> correspondence_consistent c left right)
    spec.correspondences

(* Restore the target model to match the source, for one correspondence:
   update synced attrs on partnered objects, create missing partners
   (fresh ids, defaults from the target metamodel), delete unmatched
   target objects of the corresponded class. *)
let restore_correspondence ~(source_side : [ `Left | `Right ]) (spec : spec)
    (c : correspondence) (source : Model.t) (target : Model.t) : Model.t =
  let target_side = match source_side with `Left -> `Right | `Right -> `Left in
  let source_class, target_class, target_mm =
    match source_side with
    | `Left -> (c.left_class, c.right_class, spec.right_mm)
    | `Right -> (c.right_class, c.left_class, spec.left_mm)
  in
  let source_objs = Model.of_class source source_class in
  (* 1. delete target objects with no source partner *)
  let target1 =
    List.fold_left
      (fun acc (o : Model.obj) ->
        if
          String.equal o.Model.cls target_class
          && Option.is_none (partner target_side c o source)
        then Model.remove acc o.Model.id
        else acc)
      target (Model.objects target)
  in
  (* 2. update or create a partner for each source object *)
  List.fold_left
    (fun acc (o : Model.obj) ->
      match key_of source_side c o with
      | None -> acc (* malformed source object: nothing to mirror *)
      | Some k ->
          let sync_onto (o' : Model.obj) : Model.obj =
            List.fold_left2
              (fun o' (ln, rn) v ->
                let target_attr =
                  match source_side with `Left -> rn | `Right -> ln
                in
                match v with
                | Some v -> Model.set_attr o' target_attr v
                | None -> o')
              o' c.synced
              (synced_values source_side c o)
          in
          let with_key (o' : Model.obj) : Model.obj =
            List.fold_left2
              (fun o' (ln, rn) v ->
                let target_attr =
                  match source_side with `Left -> rn | `Right -> ln
                in
                Model.set_attr o' target_attr v)
              o' c.key k
          in
          (match partner source_side c o acc with
          | Some existing -> Model.update acc (sync_onto existing)
          | None ->
              let fresh =
                Metamodel.fresh_object target_mm ~cls:target_class
                  ~id:(Model.next_id acc)
              in
              Model.add acc (sync_onto (with_key fresh))))
    target1 source_objs

let fwd (spec : spec) (left : Model.t) (right : Model.t) : Model.t =
  if consistent spec left right then right
  else
    List.fold_left
      (fun right c -> restore_correspondence ~source_side:`Left spec c left right)
      right spec.correspondences

let bwd (spec : spec) (left : Model.t) (right : Model.t) : Model.t =
  if consistent spec left right then left
  else
    List.fold_left
      (fun left c -> restore_correspondence ~source_side:`Right spec c right left)
      left spec.correspondences

(** The induced algebraic bx (feed into {!Esm_core.Of_algebraic} /
    {!Esm_core.Concrete.of_algebraic} for the entangled state monad). *)
let to_algbx (spec : spec) : (Model.t, Model.t) Esm_algbx.Algbx.t =
  Esm_algbx.Algbx.v ~name:spec.name ~consistent:(consistent spec)
    ~fwd:(fwd spec) ~bwd:(bwd spec) ()
