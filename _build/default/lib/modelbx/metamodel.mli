(** Metamodels: class definitions that models conform to — the MDE
    analogue of a database schema. *)

type attr_ty =
  | Tstr
  | Tint
  | Tbool
  | Tref of string  (** reference to an instance of the named class *)

val attr_ty_to_string : attr_ty -> string

type class_def = { cls_name : string; attributes : (string * attr_ty) list }

type t

exception Metamodel_error of string

val errorf : ('a, Format.formatter, unit, 'b) format4 -> 'a

val v : class_def list -> t
(** Build a metamodel; rejects duplicate classes and references to
    undefined classes. *)

val class_def : t -> string -> class_def option
val class_names : t -> string list

val default_of_ty : attr_ty -> Model.value
(** A default value of each attribute type (references default to the
    null id 0). *)

val value_matches : Model.t -> attr_ty -> Model.value -> bool
(** Does the value inhabit the type, in the context of the model (for
    reference targets)? *)

val check : t -> Model.t -> string list
(** Conformance violations; empty means the model conforms. *)

val conforms : t -> Model.t -> bool

val fresh_object : t -> cls:string -> id:Model.oid -> Model.obj
(** A conformant object of the named class with default attributes. *)
