(** Model differencing: compute and apply edit scripts.  [apply m (diff
    m m') = m'] exactly (property-tested). *)

type edit =
  | Add_object of Model.obj
  | Remove_object of Model.oid
  | Set_attr of Model.oid * string * Model.value
  | Remove_attr of Model.oid * string

val pp_edit : Format.formatter -> edit -> unit
val equal_edit : edit -> edit -> bool

val diff : Model.t -> Model.t -> edit list
(** Edit script transforming the first model into the second (removals,
    updates, additions; id lookups are hash-indexed). *)

val apply_edit : Model.t -> edit -> Model.t
val apply : Model.t -> edit list -> Model.t

val distance : Model.t -> Model.t -> int
(** Length of {!diff} — a crude model distance. *)
