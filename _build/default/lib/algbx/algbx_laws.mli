(** QCheck law suites for algebraic bx: (Correct), (Hippocratic) and
    (Undoable), each in both directions.  The conditional laws take a
    generator of already-consistent pairs ({!gen_consistent_of} builds
    one by repairing arbitrary pairs). *)

val default_count : int

val correct :
  ?count:int ->
  name:string ->
  ('a, 'b) Algbx.t ->
  gen_a:'a QCheck.arbitrary ->
  gen_b:'b QCheck.arbitrary ->
  QCheck.Test.t list

val hippocratic :
  ?count:int ->
  name:string ->
  ('a, 'b) Algbx.t ->
  gen_consistent:('a * 'b) QCheck.arbitrary ->
  eq_a:'a Esm_laws.Equality.t ->
  eq_b:'b Esm_laws.Equality.t ->
  QCheck.Test.t list

val undoable :
  ?count:int ->
  name:string ->
  ('a, 'b) Algbx.t ->
  gen_consistent:('a * 'b) QCheck.arbitrary ->
  gen_a:'a QCheck.arbitrary ->
  gen_b:'b QCheck.arbitrary ->
  eq_a:'a Esm_laws.Equality.t ->
  eq_b:'b Esm_laws.Equality.t ->
  QCheck.Test.t list

val well_behaved :
  ?count:int ->
  name:string ->
  ('a, 'b) Algbx.t ->
  gen_a:'a QCheck.arbitrary ->
  gen_b:'b QCheck.arbitrary ->
  gen_consistent:('a * 'b) QCheck.arbitrary ->
  eq_a:'a Esm_laws.Equality.t ->
  eq_b:'b Esm_laws.Equality.t ->
  QCheck.Test.t list
(** (Correct) + (Hippocratic). *)

val gen_consistent_of :
  ('a, 'b) Algbx.t ->
  'a QCheck.arbitrary ->
  'b QCheck.arbitrary ->
  ('a * 'b) QCheck.arbitrary
