(** QCheck law suites for algebraic bx: (Correct), (Hippocratic) and
    (Undoable), each in both directions.

    Hippocraticness and undoability are conditional on consistency, so a
    naive generator may produce vacuously-true samples only.  Callers
    therefore supply [gen_consistent], a generator of already-consistent
    pairs (typically built by repairing arbitrary pairs with
    {!Algbx.repair_fwd}). *)

let default_count = 500

let correct ?(count = default_count) ~name (t : ('a, 'b) Algbx.t)
    ~(gen_a : 'a QCheck.arbitrary) ~(gen_b : 'b QCheck.arbitrary) :
    QCheck.Test.t list =
  [
    QCheck.Test.make ~count ~name:(name ^ " (Correct fwd)")
      (QCheck.pair gen_a gen_b)
      (fun (a, b) -> Algbx.correct_fwd_at t a b);
    QCheck.Test.make ~count ~name:(name ^ " (Correct bwd)")
      (QCheck.pair gen_a gen_b)
      (fun (a, b) -> Algbx.correct_bwd_at t a b);
  ]

let hippocratic ?(count = default_count) ~name (t : ('a, 'b) Algbx.t)
    ~(gen_consistent : ('a * 'b) QCheck.arbitrary)
    ~(eq_a : 'a Esm_laws.Equality.t) ~(eq_b : 'b Esm_laws.Equality.t) :
    QCheck.Test.t list =
  [
    QCheck.Test.make ~count ~name:(name ^ " (Hippocratic fwd)")
      gen_consistent
      (fun (a, b) -> Algbx.hippocratic_fwd_at ~eq_b t a b);
    QCheck.Test.make ~count ~name:(name ^ " (Hippocratic bwd)")
      gen_consistent
      (fun (a, b) -> Algbx.hippocratic_bwd_at ~eq_a t a b);
  ]

let undoable ?(count = default_count) ~name (t : ('a, 'b) Algbx.t)
    ~(gen_consistent : ('a * 'b) QCheck.arbitrary)
    ~(gen_a : 'a QCheck.arbitrary) ~(gen_b : 'b QCheck.arbitrary)
    ~(eq_a : 'a Esm_laws.Equality.t) ~(eq_b : 'b Esm_laws.Equality.t) :
    QCheck.Test.t list =
  [
    QCheck.Test.make ~count ~name:(name ^ " (Undoable fwd)")
      (QCheck.pair gen_consistent gen_a)
      (fun ((a, b), a') -> Algbx.undoable_fwd_at ~eq_b t a a' b);
    QCheck.Test.make ~count ~name:(name ^ " (Undoable bwd)")
      (QCheck.pair gen_consistent gen_b)
      (fun ((a, b), b') -> Algbx.undoable_bwd_at ~eq_a t a b b');
  ]

(** (Correct) + (Hippocratic): the paper's requirements on an algebraic
    bx. *)
let well_behaved ?count ~name t ~gen_a ~gen_b ~gen_consistent ~eq_a ~eq_b :
    QCheck.Test.t list =
  correct ?count ~name t ~gen_a ~gen_b
  @ hippocratic ?count ~name t ~gen_consistent ~eq_a ~eq_b

(** A generator of consistent pairs obtained by repairing arbitrary
    pairs. *)
let gen_consistent_of (t : ('a, 'b) Algbx.t) (gen_a : 'a QCheck.arbitrary)
    (gen_b : 'b QCheck.arbitrary) : ('a * 'b) QCheck.arbitrary =
  QCheck.map ~rev:Fun.id (Algbx.repair_fwd t) (QCheck.pair gen_a gen_b)
