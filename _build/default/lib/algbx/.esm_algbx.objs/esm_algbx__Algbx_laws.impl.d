lib/algbx/algbx_laws.ml: Algbx Esm_laws Fun QCheck
