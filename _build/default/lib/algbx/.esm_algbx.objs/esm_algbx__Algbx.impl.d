lib/algbx/algbx.ml: Esm_lens Printf
