lib/algbx/algbx_laws.mli: Algbx Esm_laws QCheck
