lib/algbx/algbx.mli: Esm_lens
