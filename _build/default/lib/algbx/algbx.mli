(** Algebraic bidirectional transformations in the style of Stevens
    (SoSyM 2010) — reference [5] of the paper and the input to its
    Lemma 5.

    An algebraic bx between ['a] and ['b] is a decidable consistency
    relation together with two consistency restorers, required to satisfy

    - (Correct)     [consistent a (fwd a b)] (and symmetrically for bwd)
    - (Hippocratic) [consistent a b] implies [fwd a b = b] (and symm.)

    and optionally

    - (Undoable)    [consistent a b] implies [fwd a (fwd a' b) = b]
      (and symmetrically).

    Lemma 5 turns any algebraic bx into a set-bx over consistent pairs
    ({!Esm_core.Of_algebraic}); undoability yields overwriteability. *)

type ('a, 'b) t = {
  name : string;
  consistent : 'a -> 'b -> bool;
  fwd : 'a -> 'b -> 'b;  (** the paper's [→R]: repair B after A changed *)
  bwd : 'a -> 'b -> 'a;  (** the paper's [←R]: repair A after B changed *)
}

val v :
  ?name:string ->
  consistent:('a -> 'b -> bool) ->
  fwd:('a -> 'b -> 'b) ->
  bwd:('a -> 'b -> 'a) ->
  unit ->
  ('a, 'b) t

val name : ('a, 'b) t -> string
val consistent : ('a, 'b) t -> 'a -> 'b -> bool
val fwd : ('a, 'b) t -> 'a -> 'b -> 'b
val bwd : ('a, 'b) t -> 'a -> 'b -> 'a

val repair_fwd : ('a, 'b) t -> 'a * 'b -> 'a * 'b
(** Make an arbitrary pair consistent by repairing the B side. *)

val repair_bwd : ('a, 'b) t -> 'a * 'b -> 'a * 'b
(** Make an arbitrary pair consistent by repairing the A side. *)

(** {1 Constructions} *)

val identity : eq:('a -> 'a -> bool) -> ('a, 'a) t
(** Consistency is equality; restoration is copying. *)

val converse : ('a, 'b) t -> ('b, 'a) t
(** Swap the two sides. *)

val product : ('a1, 'b1) t -> ('a2, 'b2) t -> ('a1 * 'a2, 'b1 * 'b2) t
(** Componentwise product. *)

val trivial : unit -> ('a, 'b) t
(** Universally-true consistency: no restoration ever needed.  The
    algebraic-bx account of the plain state monad on [A * B] (paper,
    Section 3.4). *)

val of_lens : eq_v:('v -> 'v -> bool) -> ('s, 'v) Esm_lens.Lens.t -> ('s, 'v) t
(** From a well-behaved asymmetric lens: [s] is consistent with [v] iff
    [get s = v]. *)

val compose_via :
  mid_of_a:('a -> 'm) -> mid_of_b:('b -> 'm) ->
  ('a, 'm) t -> ('m, 'b) t -> ('a, 'b) t
(** Sequential composition in the special case where the middle value is
    functionally determined from each side.  (General relational
    composition is not definable — the paper lists composition as an
    open problem.) *)

(** {1 Pointwise law checks} (QCheck suites live in {!Algbx_laws}) *)

val correct_fwd_at : ('a, 'b) t -> 'a -> 'b -> bool
val correct_bwd_at : ('a, 'b) t -> 'a -> 'b -> bool
val hippocratic_fwd_at : eq_b:('b -> 'b -> bool) -> ('a, 'b) t -> 'a -> 'b -> bool
val hippocratic_bwd_at : eq_a:('a -> 'a -> bool) -> ('a, 'b) t -> 'a -> 'b -> bool

val undoable_fwd_at :
  eq_b:('b -> 'b -> bool) -> ('a, 'b) t -> 'a -> 'a -> 'b -> bool
(** [undoable_fwd_at ~eq_b t a a' b]: assuming [consistent a b], check
    [fwd a (fwd a' b) = b]. *)

val undoable_bwd_at :
  eq_a:('a -> 'a -> bool) -> ('a, 'b) t -> 'a -> 'b -> 'b -> bool
