(** Algebraic bidirectional transformations in the style of Stevens
    (SoSyM 2010) — reference [5] of the paper and the input to its Lemma 5.

    An algebraic bx between ['a] and ['b] consists of a consistency
    relation [R ⊆ A × B] (here a decidable predicate) and two consistency
    restorers

    - [fwd : 'a -> 'b -> 'b]  (the paper's [→R]: fix up B after A changed)
    - [bwd : 'a -> 'b -> 'a]  (the paper's [←R]: fix up A after B changed)

    required to satisfy

    - (Correct)     [consistent a (fwd a b)]  (and symmetrically for bwd)
    - (Hippocratic) [consistent a b] implies [fwd a b = b]  (and symm.)

    and optionally

    - (Undoable)    [consistent a b] implies [fwd a (fwd a' b) = b]
      (and symmetrically).

    Lemma 5 turns any algebraic bx into a set-bx over the state of
    consistent pairs ({!Esm_core.Of_algebraic}); undoability yields
    overwriteability. *)

type ('a, 'b) t = {
  name : string;
  consistent : 'a -> 'b -> bool;
  fwd : 'a -> 'b -> 'b;  (** restore consistency by changing the B side *)
  bwd : 'a -> 'b -> 'a;  (** restore consistency by changing the A side *)
}

let v ?(name = "<algbx>") ~consistent ~fwd ~bwd () =
  { name; consistent; fwd; bwd }

let name t = t.name
let consistent t a b = t.consistent a b
let fwd t a b = t.fwd a b
let bwd t a b = t.bwd a b

(** Restore consistency starting from an arbitrary pair, by repairing the
    B side. *)
let repair_fwd t (a, b) = (a, t.fwd a b)

(** Restore consistency starting from an arbitrary pair, by repairing the
    A side. *)
let repair_bwd t (a, b) = (t.bwd a b, b)

(* ------------------------------------------------------------------ *)
(* Constructions                                                       *)
(* ------------------------------------------------------------------ *)

(** Identity bx on a type with decidable equality: consistency is
    equality, restoration is copying. *)
let identity ~(eq : 'a -> 'a -> bool) : ('a, 'a) t =
  {
    name = "identity";
    consistent = eq;
    fwd = (fun a _ -> a);
    bwd = (fun _ b -> b);
  }

(** Swap the two sides. *)
let converse (t : ('a, 'b) t) : ('b, 'a) t =
  {
    name = "converse " ^ t.name;
    consistent = (fun b a -> t.consistent a b);
    fwd = (fun b a -> t.bwd a b);
    bwd = (fun b a -> t.fwd a b);
  }

(** Componentwise product of two bx. *)
let product (t1 : ('a1, 'b1) t) (t2 : ('a2, 'b2) t) :
    ('a1 * 'a2, 'b1 * 'b2) t =
  {
    name = Printf.sprintf "(%s * %s)" t1.name t2.name;
    consistent =
      (fun (a1, a2) (b1, b2) -> t1.consistent a1 b1 && t2.consistent a2 b2);
    fwd = (fun (a1, a2) (b1, b2) -> (t1.fwd a1 b1, t2.fwd a2 b2));
    bwd = (fun (a1, a2) (b1, b2) -> (t1.bwd a1 b1, t2.bwd a2 b2));
  }

(** The trivial bx whose consistency relation is universally true: no
    restoration is ever needed.  This is the algebraic-bx account of the
    plain state monad on [A * B] from Section 3.4 of the paper. *)
let trivial () : ('a, 'b) t =
  {
    name = "trivial";
    consistent = (fun _ _ -> true);
    fwd = (fun _ b -> b);
    bwd = (fun a _ -> a);
  }

(** An algebraic bx from a well-behaved asymmetric lens: [a] is consistent
    with [b] iff [get a = b]; [fwd] recomputes the view, [bwd] puts the
    view back. *)
let of_lens ~(eq_v : 'v -> 'v -> bool) (l : ('s, 'v) Esm_lens.Lens.t) :
    ('s, 'v) t =
  {
    name = "of_lens " ^ Esm_lens.Lens.name l;
    consistent = (fun s v -> eq_v (Esm_lens.Lens.get l s) v);
    fwd = (fun s _ -> Esm_lens.Lens.get l s);
    bwd = (fun s v -> Esm_lens.Lens.put l s v);
  }

(** Sequential composition through a middle type, given a function
    [mid : 'a -> 'c -> 'b] choosing a witness... composition of relational
    bx is not definable in general (the paper lists composition of
    entangled state monads as an open problem); here we provide the
    special case where the middle value is {e functionally determined}
    from each side by [mid_of_a] and [mid_of_b], which covers compositions
    of lens-like bx.  Laws are preserved when the determination functions
    agree on consistent pairs ([consistent a b] in the composite means
    there is a middle [m] with [consistent1 a m] and [consistent2 m b]). *)
let compose_via ~(mid_of_a : 'a -> 'm) ~(mid_of_b : 'b -> 'm)
    (t1 : ('a, 'm) t) (t2 : ('m, 'b) t) : ('a, 'b) t =
  {
    name = t1.name ^ " ; " ^ t2.name;
    consistent =
      (fun a b ->
        let m = mid_of_a a in
        t1.consistent a m && t2.consistent m b);
    fwd =
      (fun a b ->
        let m = mid_of_a a in
        t2.fwd m b);
    bwd =
      (fun a b ->
        let m = mid_of_b b in
        t1.bwd a m);
  }

(* ------------------------------------------------------------------ *)
(* Pointwise law checks (QCheck suites live in Algbx_laws)             *)
(* ------------------------------------------------------------------ *)

let correct_fwd_at t a b = t.consistent a (t.fwd a b)
let correct_bwd_at t a b = t.consistent (t.bwd a b) b

let hippocratic_fwd_at ~eq_b t a b =
  (not (t.consistent a b)) || eq_b (t.fwd a b) b

let hippocratic_bwd_at ~eq_a t a b =
  (not (t.consistent a b)) || eq_a (t.bwd a b) a

let undoable_fwd_at ~eq_b t a a' b =
  (not (t.consistent a b)) || eq_b (t.fwd a (t.fwd a' b)) b

let undoable_bwd_at ~eq_a t a b b' =
  (not (t.consistent a b)) || eq_a (t.bwd (t.bwd a b') b) a
