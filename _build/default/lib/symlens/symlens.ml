(** Symmetric lenses (Hofmann, Pierce, Wagner; POPL 2011) — reference [2]
    of the paper and the input to its Lemma 6.

    A symmetric lens between ['a] and ['b] consists of a complement type
    ['c], an initial complement, and two functions

    - [put_r : 'a -> 'c -> 'b * 'c]
    - [put_l : 'b -> 'c -> 'a * 'c]

    satisfying

    - (PutRL) [put_r a c = (b, c')] implies [put_l b c' = (a, c')]
    - (PutLR) [put_l b c = (a, c')] implies [put_r a c' = (b, c')]

    The complement type is existential: a first-class lens hides it behind
    a GADT constructor.  An equality on complements is carried alongside so
    that the laws (which assert complement stability) remain checkable.

    {!to_instance} re-exposes the complement as a module, which is the form
    consumed by {!Esm_core.Of_symmetric} (the paper's Lemma 6 needs the
    complement visible to build the state monad over consistent triples). *)

(** Module form: complement visible as an abstract type. *)
module type INSTANCE = sig
  type a
  type b
  type c

  val name : string

  val init : c
  (** The "missing" complement used before any synchronisation. *)

  val put_r : a -> c -> b * c
  val put_l : b -> c -> a * c
  val equal_c : c -> c -> bool
end

(** The visible-complement representation underlying the first-class
    form. *)
type ('a, 'b, 'c) repr = {
  name : string;
  init : 'c;
  put_r : 'a -> 'c -> 'b * 'c;
  put_l : 'b -> 'c -> 'a * 'c;
  equal_c : 'c -> 'c -> bool;
}

(** First-class form: the complement is existentially quantified. *)
type ('a, 'b) t = Sym : ('a, 'b, 'c) repr -> ('a, 'b) t

let name (Sym l) = l.name

let v ?(name = "<symlens>") ~init ~put_r ~put_l ~equal_c () =
  Sym { name; init; put_r; put_l; equal_c }

let to_instance (type x y) (sym : (x, y) t) :
    (module INSTANCE with type a = x and type b = y) =
  match sym with
  | Sym (type c0) (l : (x, y, c0) repr) ->
      (module struct
        type a = x
        type b = y
        type c = c0

        let name = l.name
        let init = l.init
        let put_r = l.put_r
        let put_l = l.put_l
        let equal_c = l.equal_c
      end
      : INSTANCE with type a = x and type b = y)

let of_instance (type x y) (module I : INSTANCE with type a = x and type b = y)
    : (x, y) t =
  Sym
    {
      name = I.name;
      init = I.init;
      put_r = I.put_r;
      put_l = I.put_l;
      equal_c = I.equal_c;
    }

(* ------------------------------------------------------------------ *)
(* Driving a symmetric lens: a pure synchroniser that hides the
   complement behind a corecursive closure.                             *)
(* ------------------------------------------------------------------ *)

(** A running synchroniser: push an update in from either side and receive
    the propagated value on the other side plus the next synchroniser. *)
type ('a, 'b) sync = {
  push_r : 'a -> 'b * ('a, 'b) sync;
  push_l : 'b -> 'a * ('a, 'b) sync;
}

let start (Sym l : ('a, 'b) t) : ('a, 'b) sync =
  let rec at c =
    {
      push_r =
        (fun a ->
          let b, c' = l.put_r a c in
          (b, at c'));
      push_l =
        (fun b ->
          let a, c' = l.put_l b c in
          (a, at c'));
    }
  in
  at l.init

(* ------------------------------------------------------------------ *)
(* Constructions                                                       *)
(* ------------------------------------------------------------------ *)

(** The identity symmetric lens (trivial complement). *)
let id () : ('a, 'a) t =
  Sym
    {
      name = "id";
      init = ();
      put_r = (fun a () -> (a, ()));
      put_l = (fun a () -> (a, ()));
      equal_c = (fun () () -> true);
    }

(** Reverse the orientation. *)
let inv (Sym l : ('a, 'b) t) : ('b, 'a) t =
  Sym
    {
      name = "inv " ^ l.name;
      init = l.init;
      put_r = l.put_l;
      put_l = l.put_r;
      equal_c = l.equal_c;
    }

(** A symmetric lens from a bijection. *)
let of_iso ?(name = "iso") (fwd : 'a -> 'b) (bwd : 'b -> 'a) : ('a, 'b) t =
  Sym
    {
      name;
      init = ();
      put_r = (fun a () -> (fwd a, ()));
      put_l = (fun b () -> (bwd b, ()));
      equal_c = (fun () () -> true);
    }

(** Embed an asymmetric lens (HPW, Section 4 of their paper): the
    complement remembers the last source, so [put_l] can use [Esm_lens.Lens.put];
    [create] builds a source from scratch when the view arrives before any
    source has been seen. *)
let of_lens ?(name : string option) ~(create : 'v -> 's)
    ~(eq_s : 's -> 's -> bool) (l : ('s, 'v) Esm_lens.Lens.t) : ('s, 'v) t =
  let name = match name with Some n -> n | None -> "of_lens " ^ Esm_lens.Lens.name l in
  Sym
    {
      name;
      init = None;
      put_r = (fun s _ -> (Esm_lens.Lens.get l s, Some s));
      put_l =
        (fun v c ->
          let s =
            match c with Some s -> Esm_lens.Lens.put l s v | None -> create v
          in
          (s, Some s));
      equal_c = Esm_laws.Equality.option eq_s;
    }

(** The terminal lens into [unit]: the complement stores the whole ['a]
    so that [put_l] can restore it. *)
let term ~(default : 'a) ~(eq : 'a -> 'a -> bool) : ('a, unit) t =
  Sym
    {
      name = "term";
      init = default;
      put_r = (fun a _ -> ((), a));
      put_l = (fun () c -> (c, c));
      equal_c = eq;
    }

(** The fully disconnected lens: updates on either side do not propagate;
    the complement stores both current values. *)
let disconnect ~(default_a : 'a) ~(default_b : 'b) ~(eq_a : 'a -> 'a -> bool)
    ~(eq_b : 'b -> 'b -> bool) : ('a, 'b) t =
  Sym
    {
      name = "disconnect";
      init = (default_a, default_b);
      put_r = (fun a (_, b) -> (b, (a, b)));
      put_l = (fun b (a, _) -> (a, (a, b)));
      equal_c = Esm_laws.Equality.pair eq_a eq_b;
    }

(** Sequential composition: complements pair up. *)
let compose (Sym l1 : ('a, 'b) t) (Sym l2 : ('b, 'c) t) : ('a, 'c) t =
  Sym
    {
      name = l1.name ^ " ; " ^ l2.name;
      init = (l1.init, l2.init);
      put_r =
        (fun a (c1, c2) ->
          let b, c1' = l1.put_r a c1 in
          let x, c2' = l2.put_r b c2 in
          (x, (c1', c2')));
      put_l =
        (fun x (c1, c2) ->
          let b, c2' = l2.put_l x c2 in
          let a, c1' = l1.put_l b c1 in
          (a, (c1', c2')));
      equal_c = Esm_laws.Equality.pair l1.equal_c l2.equal_c;
    }

(** Tensor product: synchronise two pairs componentwise. *)
let tensor (Sym l1 : ('a1, 'b1) t) (Sym l2 : ('a2, 'b2) t) :
    ('a1 * 'a2, 'b1 * 'b2) t =
  Sym
    {
      name = Printf.sprintf "(%s (x) %s)" l1.name l2.name;
      init = (l1.init, l2.init);
      put_r =
        (fun (a1, a2) (c1, c2) ->
          let b1, c1' = l1.put_r a1 c1 in
          let b2, c2' = l2.put_r a2 c2 in
          ((b1, b2), (c1', c2')));
      put_l =
        (fun (b1, b2) (c1, c2) ->
          let a1, c1' = l1.put_l b1 c1 in
          let a2, c2' = l2.put_l b2 c2 in
          ((a1, a2), (c1', c2')));
      equal_c = Esm_laws.Equality.pair l1.equal_c l2.equal_c;
    }

(* ------------------------------------------------------------------ *)
(* Observational runs (used by tests and by Symlens_laws)              *)
(* ------------------------------------------------------------------ *)

(** A single update pushed in from one side. *)
type ('a, 'b) step = Push_r of 'a | Push_l of 'b

(** Run a sequence of steps from the initial complement, collecting the
    values that emerge on the opposite side. *)
let run (lens : ('a, 'b) t) (steps : ('a, 'b) step list) :
    ('a, 'b) step list =
  let _, outputs =
    List.fold_left
      (fun (sync, acc) step ->
        match step with
        | Push_r a ->
            let b, sync' = sync.push_r a in
            (sync', Push_l b :: acc)
        | Push_l b ->
            let a, sync' = sync.push_l b in
            (sync', Push_r a :: acc))
      (start lens, []) steps
  in
  List.rev outputs

let equal_step ~eq_a ~eq_b s1 s2 =
  match (s1, s2) with
  | Push_r a1, Push_r a2 -> eq_a a1 a2
  | Push_l b1, Push_l b2 -> eq_b b1 b2
  | Push_r _, Push_l _ | Push_l _, Push_r _ -> false

(* ------------------------------------------------------------------ *)
(* Pointwise law checks (on complements reached by a given walk)       *)
(* ------------------------------------------------------------------ *)

(** Check (PutRL) at the complement reached from [init] by [steps], with
    the fresh update [a]:
    [put_r a c = (b, c')] must imply [put_l b c' = (a, c')]. *)
let put_rl_at ~(eq_a : 'a -> 'a -> bool) (Sym l : ('a, 'b) t)
    (steps : ('a, 'b) step list) (a : 'a) : bool =
  let c =
    List.fold_left
      (fun c -> function
        | Push_r a -> snd (l.put_r a c)
        | Push_l b -> snd (l.put_l b c))
      l.init steps
  in
  let b, c' = l.put_r a c in
  let a', c'' = l.put_l b c' in
  eq_a a a' && l.equal_c c' c''

(** Check (PutLR) symmetrically. *)
let put_lr_at ~(eq_b : 'b -> 'b -> bool) (Sym l : ('a, 'b) t)
    (steps : ('a, 'b) step list) (b : 'b) : bool =
  let c =
    List.fold_left
      (fun c -> function
        | Push_r a -> snd (l.put_r a c)
        | Push_l b -> snd (l.put_l b c))
      l.init steps
  in
  let a, c' = l.put_l b c in
  let b', c'' = l.put_r a c' in
  eq_b b b' && l.equal_c c' c''

(** Map a symmetric lens over lists, elementwise (HPW's list mapping
    lens).  The complement is a list of element complements; when one
    side grows, fresh elements run against the lens's initial complement;
    when it shrinks, trailing complements are discarded.  (PutRL)/(PutLR)
    hold because a re-pushed list has the same length as the one that
    just emerged. *)
let list_map (Sym l : ('a, 'b) t) : ('a list, 'b list) t =
  let rec zip_with_init step xs cs =
    match (xs, cs) with
    | [], _ -> ([], [])
    | x :: xs', c :: cs' ->
        let y, c1 = step x c in
        let ys, cs1 = zip_with_init step xs' cs' in
        (y :: ys, c1 :: cs1)
    | x :: xs', [] ->
        let y, c1 = step x l.init in
        let ys, cs1 = zip_with_init step xs' [] in
        (y :: ys, c1 :: cs1)
  in
  Sym
    {
      name = "list_map " ^ l.name;
      init = [];
      put_r = (fun xs cs -> zip_with_init l.put_r xs cs);
      put_l = (fun ys cs -> zip_with_init l.put_l ys cs);
      equal_c = Esm_laws.Equality.list l.equal_c;
    }

(** Sum of two symmetric lenses: synchronise [Either] values, switching
    lens by the constructor.  Both complements are retained so that
    switching back and forth does not lose either side's memory. *)
let sum (Sym l1 : ('a1, 'b1) t) (Sym l2 : ('a2, 'b2) t) :
    (('a1, 'a2) Either.t, ('b1, 'b2) Either.t) t =
  Sym
    {
      name = Printf.sprintf "(%s (+) %s)" l1.name l2.name;
      init = (l1.init, l2.init);
      put_r =
        (fun x (c1, c2) ->
          match x with
          | Either.Left a ->
              let b, c1' = l1.put_r a c1 in
              (Either.Left b, (c1', c2))
          | Either.Right a ->
              let b, c2' = l2.put_r a c2 in
              (Either.Right b, (c1, c2')));
      put_l =
        (fun y (c1, c2) ->
          match y with
          | Either.Left b ->
              let a, c1' = l1.put_l b c1 in
              (Either.Left a, (c1', c2))
          | Either.Right b ->
              let a, c2' = l2.put_l b c2 in
              (Either.Right a, (c1, c2')));
      equal_c = Esm_laws.Equality.pair l1.equal_c l2.equal_c;
    }

(* ------------------------------------------------------------------ *)
(* Observational equivalence                                           *)
(* ------------------------------------------------------------------ *)

(** Do the two lenses produce the same outputs on this step sequence
    (run from each lens's own initial complement)?  HPW quotient
    symmetric lenses by exactly this observational equivalence so that
    composition is associative and [id] is a unit; agreement on all
    finite step sequences is the definition, and sampling sequences
    gives the practical check ({!Symlens_laws} offers the QCheck
    wrapper). *)
let equivalent_on ~(eq_a : 'a -> 'a -> bool) ~(eq_b : 'b -> 'b -> bool)
    (l1 : ('a, 'b) t) (l2 : ('a, 'b) t) (steps : ('a, 'b) step list) : bool =
  Esm_laws.Equality.list (equal_step ~eq_a ~eq_b) (run l1 steps)
    (run l2 steps)
