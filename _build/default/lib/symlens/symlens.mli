(** Symmetric lenses (Hofmann, Pierce, Wagner; POPL 2011) — reference [2]
    of the paper and the input to its Lemma 6.

    A symmetric lens between ['a] and ['b] consists of a complement type
    ['c], an initial complement, and two propagation functions

    - [put_r : 'a -> 'c -> 'b * 'c]
    - [put_l : 'b -> 'c -> 'a * 'c]

    satisfying

    - (PutRL) [put_r a c = (b, c')] implies [put_l b c' = (a, c')]
    - (PutLR) [put_l b c = (a, c')] implies [put_r a c' = (b, c')].

    The complement type is existential in the first-class form; an
    equality on complements travels with the lens so the laws (which
    assert complement stability) remain checkable.  {!to_instance}
    re-exposes the complement as a module, the form consumed by
    {!Esm_core.Of_symmetric} (Lemma 6 needs the complement visible to
    build the state monad over consistent triples). *)

(** Module form: complement visible as an abstract type. *)
module type INSTANCE = sig
  type a
  type b
  type c

  val name : string

  val init : c
  (** The "missing" complement used before any synchronisation. *)

  val put_r : a -> c -> b * c
  val put_l : b -> c -> a * c
  val equal_c : c -> c -> bool
end

(** The visible-complement representation underlying the first-class
    form. *)
type ('a, 'b, 'c) repr = {
  name : string;
  init : 'c;
  put_r : 'a -> 'c -> 'b * 'c;
  put_l : 'b -> 'c -> 'a * 'c;
  equal_c : 'c -> 'c -> bool;
}

(** First-class form: the complement is existentially quantified. *)
type ('a, 'b) t = Sym : ('a, 'b, 'c) repr -> ('a, 'b) t

val name : ('a, 'b) t -> string

val v :
  ?name:string ->
  init:'c ->
  put_r:('a -> 'c -> 'b * 'c) ->
  put_l:('b -> 'c -> 'a * 'c) ->
  equal_c:('c -> 'c -> bool) ->
  unit ->
  ('a, 'b) t

val to_instance :
  ('a, 'b) t -> (module INSTANCE with type a = 'a and type b = 'b)

val of_instance :
  (module INSTANCE with type a = 'a and type b = 'b) -> ('a, 'b) t

(** {1 Driving a lens} *)

(** A running synchroniser: push an update in from either side, receive
    the propagated value and the next synchroniser.  Hides the
    complement behind a corecursive closure. *)
type ('a, 'b) sync = {
  push_r : 'a -> 'b * ('a, 'b) sync;
  push_l : 'b -> 'a * ('a, 'b) sync;
}

val start : ('a, 'b) t -> ('a, 'b) sync

(** A single update pushed in from one side. *)
type ('a, 'b) step = Push_r of 'a | Push_l of 'b

val run : ('a, 'b) t -> ('a, 'b) step list -> ('a, 'b) step list
(** Run a sequence of steps from the initial complement, collecting the
    values that emerge on the opposite side (as opposite-tagged steps). *)

val equal_step :
  eq_a:('a -> 'a -> bool) ->
  eq_b:('b -> 'b -> bool) ->
  ('a, 'b) step -> ('a, 'b) step -> bool

(** {1 Constructions} *)

val id : unit -> ('a, 'a) t
(** The identity lens (trivial complement). *)

val inv : ('a, 'b) t -> ('b, 'a) t
(** Reverse the orientation. *)

val of_iso : ?name:string -> ('a -> 'b) -> ('b -> 'a) -> ('a, 'b) t
(** A symmetric lens from a bijection. *)

val of_lens :
  ?name:string ->
  create:('v -> 's) ->
  eq_s:('s -> 's -> bool) ->
  ('s, 'v) Esm_lens.Lens.t ->
  ('s, 'v) t
(** Embed an asymmetric lens: the complement remembers the last source;
    [create] builds one when a view arrives before any source. *)

val term : default:'a -> eq:('a -> 'a -> bool) -> ('a, unit) t
(** The terminal lens into [unit]; the complement stores the whole
    value so it can be restored. *)

val disconnect :
  default_a:'a ->
  default_b:'b ->
  eq_a:('a -> 'a -> bool) ->
  eq_b:('b -> 'b -> bool) ->
  ('a, 'b) t
(** No propagation in either direction; the complement stores both
    current values. *)

val compose : ('a, 'b) t -> ('b, 'c) t -> ('a, 'c) t
(** Sequential composition; complements pair up. *)

val tensor : ('a1, 'b1) t -> ('a2, 'b2) t -> ('a1 * 'a2, 'b1 * 'b2) t
(** Componentwise synchronisation of pairs. *)

val list_map : ('a, 'b) t -> ('a list, 'b list) t
(** Elementwise synchronisation of lists; fresh elements run against the
    initial complement, shrinking discards trailing complements. *)

val sum :
  ('a1, 'b1) t -> ('a2, 'b2) t ->
  (('a1, 'a2) Either.t, ('b1, 'b2) Either.t) t
(** Synchronise [Either] values, switching lens by constructor; both
    complements are retained across switches. *)

(** {1 Pointwise law checks}

    Evaluated at the complement reached from [init] by a given walk;
    used by the QCheck suites in {!Symlens_laws}. *)

val put_rl_at :
  eq_a:('a -> 'a -> bool) -> ('a, 'b) t -> ('a, 'b) step list -> 'a -> bool

val put_lr_at :
  eq_b:('b -> 'b -> bool) -> ('a, 'b) t -> ('a, 'b) step list -> 'b -> bool

val equivalent_on :
  eq_a:('a -> 'a -> bool) ->
  eq_b:('b -> 'b -> bool) ->
  ('a, 'b) t -> ('a, 'b) t -> ('a, 'b) step list -> bool
(** Observational agreement on one step sequence (run from each lens's
    initial complement) — the equivalence HPW quotient by.  Sample
    sequences (e.g. with {!Symlens_laws.gen_steps}) to test it. *)
