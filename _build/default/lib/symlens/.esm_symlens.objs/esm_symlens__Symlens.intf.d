lib/symlens/symlens.mli: Either Esm_lens
