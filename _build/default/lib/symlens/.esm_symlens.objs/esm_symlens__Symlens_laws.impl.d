lib/symlens/symlens_laws.ml: Esm_laws Gen QCheck Symlens
