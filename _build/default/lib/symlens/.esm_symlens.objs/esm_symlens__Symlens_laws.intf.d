lib/symlens/symlens_laws.mli: Esm_laws QCheck Symlens
