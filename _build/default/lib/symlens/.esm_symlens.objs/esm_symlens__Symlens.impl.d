lib/symlens/symlens.ml: Either Esm_laws Esm_lens List Printf
